package fault

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"radshield/internal/mem"
)

func TestKindAndOutcomeStrings(t *testing.T) {
	if SEU.String() != "SEU" || MBU.String() != "MBU" || SEL.String() != "SEL" || Kind(9).String() != "unknown" {
		t.Fatal("Kind strings wrong")
	}
	if Corrected.String() != "Corrected" || NoEffect.String() != "No Effect" ||
		DetectedError.String() != "Error" || SDC.String() != "SDC" || Outcome(9).String() != "unknown" {
		t.Fatal("Outcome strings wrong")
	}
}

func TestScheduleRateMatchesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	env := Environment{SEUPerDay: 1.6}
	days := 200
	events := env.Schedule(rng, time.Duration(days)*24*time.Hour)
	got := float64(len(events))
	want := 1.6 * float64(days)
	// Poisson with mean 320: 4σ ≈ 72.
	if math.Abs(got-want) > 72 {
		t.Fatalf("events = %v, want ≈%v", got, want)
	}
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatal("events not sorted")
		}
	}
}

func TestScheduleMixesKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	events := DeepSpace.Schedule(rng, 365*24*time.Hour)
	var seu, mbu, sel int
	for _, e := range events {
		switch e.Kind {
		case SEU:
			seu++
		case MBU:
			mbu++
		case SEL:
			sel++
			if e.Amps < DeepSpace.SELAmpsMin || e.Amps > DeepSpace.SELAmpsMax {
				t.Fatalf("SEL amps %v outside [%v,%v]", e.Amps, DeepSpace.SELAmpsMin, DeepSpace.SELAmpsMax)
			}
		}
	}
	if seu == 0 || mbu == 0 || sel == 0 {
		t.Fatalf("expected all kinds over a year: seu=%d mbu=%d sel=%d", seu, mbu, sel)
	}
	// MBUs ≈ 10% of upsets.
	frac := float64(mbu) / float64(seu+mbu)
	if frac < 0.03 || frac > 0.25 {
		t.Fatalf("MBU fraction = %.3f, want ≈0.10", frac)
	}
}

func TestScheduleEmptyEnvironment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if events := (Environment{}).Schedule(rng, time.Hour); len(events) != 0 {
		t.Fatalf("empty environment produced %d events", len(events))
	}
}

func TestSeaLevelVastlyQuieterThanSpace(t *testing.T) {
	ratio := DeepSpace.SEUPerDay / SeaLevel.SEUPerDay
	if ratio < 600000 || ratio > 800000 {
		t.Fatalf("deep-space/sea-level SEU ratio = %v, want ≈700,000", ratio)
	}
}

func TestRandomFlipBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		f := RandomFlip(rng, 100)
		if f.Offset >= 100 || f.Bit > 7 {
			t.Fatalf("flip out of bounds: %+v", f)
		}
	}
}

func TestRandomFlipEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomFlip(0) did not panic")
		}
	}()
	RandomFlip(rand.New(rand.NewSource(1)), 0)
}

func TestMBUFlipsAdjacent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		fs := MBUFlips(rng, 64)
		if fs[0].Offset != fs[1].Offset {
			t.Fatal("MBU flips not in same byte")
		}
		if fs[0].Bit == fs[1].Bit {
			t.Fatal("MBU flips identical")
		}
	}
}

func TestInjectIntoDRAM(t *testing.T) {
	d := mem.NewDRAM(256, false)
	d.Write(64, []byte{0})
	if err := Inject(d, 64, BitFlip{Offset: 0, Bit: 1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	d.Read(64, buf)
	if buf[0] != 2 {
		t.Fatalf("injected byte = %#x, want 0x02", buf[0])
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	tl.Add(Corrected)
	tl.Add(NoEffect)
	tl.Add(NoEffect)
	tl.Add(SDC)
	if tl.Total() != 4 {
		t.Fatalf("Total = %d", tl.Total())
	}
	if tl.Counts[NoEffect] != 2 || tl.Counts[SDC] != 1 || tl.Counts[DetectedError] != 0 {
		t.Fatalf("counts = %+v", tl.Counts)
	}
	if tl.String() == "" {
		t.Error("empty String")
	}
}

func TestTallyInvalidOutcomePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid outcome did not panic")
		}
	}()
	var tl Tally
	tl.Add(Outcome(7))
}

func TestProtectedAreaFractionTable4(t *testing.T) {
	// Paper Table 4 exactly.
	cases := []struct {
		scheme Scheme
		want   float64
	}{
		{SchemeNone, 0},
		{SchemeUnprotectedParallel, 0.75},
		{SchemeSerial3MR, 1.0},
		{SchemeEMR, 1.0},
	}
	for _, c := range cases {
		if got := ProtectedAreaFraction(c.scheme, Snapdragon845Areas); got != c.want {
			t.Errorf("%v: protected = %v, want %v", c.scheme, got, c.want)
		}
	}
	if got := ProtectedAreaFraction(Scheme(99), Snapdragon845Areas); got != 0 {
		t.Errorf("unknown scheme protected = %v", got)
	}
}

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeNone:                "None",
		SchemeUnprotectedParallel: "Unprotected parallel 3-MR",
		SchemeSerial3MR:           "3-MR",
		SchemeEMR:                 "EMR",
		Scheme(42):                "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestWindowOfVulnerabilityPaperExample(t *testing.T) {
	// §4.2.6: EMR uses 2× the area for 0.4× the runtime → 0.8 relative.
	if got := WindowOfVulnerability(2, 0.4); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("WoV = %v, want 0.8", got)
	}
	if got := WindowOfVulnerability(-1, 0.5); got != 0 {
		t.Fatalf("negative area WoV = %v, want 0", got)
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	a := DeepSpace.Schedule(rand.New(rand.NewSource(77)), 30*24*time.Hour)
	b := DeepSpace.Schedule(rand.New(rand.NewSource(77)), 30*24*time.Hour)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
