// Package fault models the space radiation environment and provides the
// fault injectors the ground evaluation uses (the software analogue of
// the paper's potentiometer for SELs and GDB/QEMU tool for SEUs).
//
// Two error classes matter to operators (paper §2):
//
//   - SEU: a transient single-bit flip in memory, cache, or pipeline
//     state. MBUs (multi-bit upsets) flip two bits at once.
//   - SEL: a latchup — a persistent, localized short-circuit that adds a
//     small current draw and thermally destroys the chip in ~5 minutes
//     unless power cycled. Modern process nodes produce micro-SELs as
//     small as +0.07 A.
//
// Key types: Environment holds per-orbit SEU/SEL rates (LEO, GEO, deep
// space presets) and draws Poisson event schedules; BitFlip/Flipper/
// Inject place a single flip into anything that can flip a bit; Scheme
// enumerates the protection schemes the evaluation compares (none,
// unprotected parallel, serial 3-MR, EMR, checksum guard); Outcome and
// Tally classify injection results into the paper's Table 7 columns
// (corrected / no effect / detected error / SDC); DieFractions and
// ProtectedAreaFraction reproduce the Table 4 die-area accounting.
//
// Invariants: event schedules are deterministic given a seed and
// duration; an Outcome is assigned by comparing against a golden run,
// never by inspecting the injector's own bookkeeping (the classification
// cannot cheat); rates are per-device-per-time, so scaling mission
// length scales event counts linearly in expectation.
package fault
