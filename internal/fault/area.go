package fault

// Die-area model after the paper's Table 4, which is "based on die areas
// on a Snapdragon 845": of the silicon relevant to computation, roughly
// three quarters is core logic (pipelines, private caches, register
// files) and one quarter is the shared last-level cache. A redundancy
// scheme "protects" an area when an upset there is detected or masked.

// DieFractions are the area fractions of the compute-relevant silicon.
type DieFractions struct {
	Cores       float64 // per-core pipelines and private arrays
	SharedCache float64 // shared L2/L3 (no ECC on commodity parts)
}

// Snapdragon845Areas is the paper's reference die.
var Snapdragon845Areas = DieFractions{Cores: 0.75, SharedCache: 0.25}

// Scheme identifies a redundancy strategy for area accounting. The
// numeric values order Table 4's rows.
type Scheme int

const (
	// SchemeNone runs the computation once, unprotected.
	SchemeNone Scheme = iota
	// SchemeUnprotectedParallel is parallel 3-MR without cache
	// discipline: core-local upsets are outvoted, shared-cache upsets
	// defeat multiple executors at once.
	SchemeUnprotectedParallel
	// SchemeSerial3MR runs the computation three times sequentially,
	// clearing the cache between runs.
	SchemeSerial3MR
	// SchemeEMR is Radshield's conflict-aware parallel redundancy.
	SchemeEMR
	// SchemeChecksum is the checksum-guard alternative the paper's §2.2
	// surveys: single execution with read-time verification of input
	// memory. It catches memory corruption but not pipeline faults.
	SchemeChecksum
)

// String returns the Table 4 row label.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "None"
	case SchemeUnprotectedParallel:
		return "Unprotected parallel 3-MR"
	case SchemeSerial3MR:
		return "3-MR"
	case SchemeEMR:
		return "EMR"
	case SchemeChecksum:
		return "Checksum"
	default:
		return "unknown"
	}
}

// ProtectedAreaFraction reproduces Table 4: the fraction of
// compute-relevant die area on which an upset is caught by the scheme.
func ProtectedAreaFraction(s Scheme, die DieFractions) float64 {
	switch s {
	case SchemeNone:
		return 0
	case SchemeUnprotectedParallel:
		// Core upsets hit one executor and are outvoted; shared-cache
		// upsets can reach several executors and go undetected.
		return die.Cores
	case SchemeSerial3MR, SchemeEMR:
		// Serial re-execution (cache cleared between runs) and EMR's
		// jobset discipline both confine any upset to one executor.
		return die.Cores + die.SharedCache
	case SchemeChecksum:
		// Read-time verification catches corrupted memory arrays (the
		// shared cache) but nothing that happens inside the pipelines.
		return die.SharedCache
	default:
		return 0
	}
}

// WindowOfVulnerability implements the Borchert et al. estimate the paper
// uses in §4.2.6: in a uniform radiation environment the probability an
// upset strikes a run scales with (active die area) × (runtime). Both
// arguments are relative to a baseline scheme; the result is the relative
// strike probability.
func WindowOfVulnerability(relativeArea, relativeRuntime float64) float64 {
	if relativeArea < 0 || relativeRuntime < 0 {
		return 0
	}
	return relativeArea * relativeRuntime
}
