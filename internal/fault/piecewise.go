package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Piecewise scheduling: mission phases swing flux by orders of
// magnitude (an SAA crossing, a solar-storm window), so a single
// constant-rate Poisson draw cannot represent a flight profile. A
// RateWindow scales the environment's rates over one half-open span of
// mission time; SchedulePiecewise draws each window independently and
// merges the arrivals into one timeline.

// RateWindow scales an Environment's rates over [Start, Start+Duration).
// The half-open convention is what makes contiguous windows safe: an
// event can land in exactly one window, so phase boundaries never drop
// or double-count arrivals.
type RateWindow struct {
	Start    time.Duration
	Duration time.Duration
	// SEU, MBU and SEL are dimensionless multipliers over the base
	// environment's SEUPerDay, MBUFrac and SELPerYear. The scaled MBU
	// fraction is clamped to 1 (it is a probability).
	SEU float64
	MBU float64
	SEL float64
}

// End returns the exclusive end of the window.
func (w RateWindow) End() time.Duration { return w.Start + w.Duration }

// validateWindows rejects windows a profile generator could not have
// produced: negative spans, negative multipliers, or overlap (two
// windows claiming the same instant would double-count flux).
func validateWindows(windows []RateWindow) error {
	for i, w := range windows {
		if w.Start < 0 || w.Duration < 0 {
			return fmt.Errorf("fault: window %d has negative start or duration", i)
		}
		if w.SEU < 0 || w.MBU < 0 || w.SEL < 0 {
			return fmt.Errorf("fault: window %d has a negative rate multiplier", i)
		}
		if i > 0 && w.Start < windows[i-1].End() {
			return fmt.Errorf("fault: window %d overlaps window %d", i, i-1)
		}
	}
	return nil
}

// SchedulePiecewise draws a Poisson event timeline whose rates vary by
// window: within window w the environment's SEU/MBU/SEL rates are
// scaled by w's multipliers. Windows must be sorted by Start and must
// not overlap (gaps are fine — no flux is drawn there). Deterministic
// per rng seed: windows are consumed in order, each through the same
// sequential draw Schedule uses, so a given (seed, windows) pair always
// yields the same timeline. Zero-duration windows consume no
// randomness. The returned events are sorted by time.
func (e Environment) SchedulePiecewise(rng *rand.Rand, windows []RateWindow) ([]Event, error) {
	if err := validateWindows(windows); err != nil {
		return nil, err
	}
	var events []Event
	for _, w := range windows {
		if w.Duration == 0 {
			continue
		}
		scaled := e
		scaled.SEUPerDay *= w.SEU
		scaled.SELPerYear *= w.SEL
		scaled.MBUFrac *= w.MBU
		if scaled.MBUFrac > 1 {
			scaled.MBUFrac = 1
		}
		for _, ev := range scaled.Schedule(rng, w.Duration) {
			ev.T += w.Start
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events, nil
}
