package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Kind is the class of radiation event.
type Kind int

const (
	// SEU is a single-event upset: one bit flip.
	SEU Kind = iota
	// MBU is a multi-bit upset: two adjacent bit flips.
	MBU
	// SEL is a single-event latchup.
	SEL
)

// String returns the event-kind name.
func (k Kind) String() string {
	switch k {
	case SEU:
		return "SEU"
	case MBU:
		return "MBU"
	case SEL:
		return "SEL"
	default:
		return "unknown"
	}
}

// Event is one scheduled radiation strike.
type Event struct {
	T    time.Duration // offset from campaign start
	Kind Kind
	// Amps is the added latchup current for SEL events (zero otherwise).
	Amps float64
}

// Environment describes radiation intensity for an orbit/location. Rates
// are per-device expectations, matching how the paper reports them
// (e.g. "1.6 bit flips per day on the Snapdragon 801").
type Environment struct {
	Name       string
	SEUPerDay  float64 // expected upsets per day hitting the device
	MBUFrac    float64 // fraction of upsets that are multi-bit
	SELPerYear float64 // expected latchups per year
	// SELAmpsMin/Max bound the uniform micro-latchup current increase.
	SELAmpsMin float64
	SELAmpsMax float64
}

// Preset environments. SEU rates follow the paper's CRÈME-MC-derived
// figure for a Snapdragon-class SoC (1.6 bits/day in deep space); LEO
// sits lower thanks to residual geomagnetic shielding; sea level is the
// paper's 700,000× reduction.
var (
	DeepSpace = Environment{Name: "deep-space", SEUPerDay: 1.6, MBUFrac: 0.1, SELPerYear: 2.0, SELAmpsMin: 0.07, SELAmpsMax: 0.25}
	LEO       = Environment{Name: "leo", SEUPerDay: 0.4, MBUFrac: 0.08, SELPerYear: 0.8, SELAmpsMin: 0.07, SELAmpsMax: 0.25}
	Mars      = Environment{Name: "mars-surface", SEUPerDay: 1.0, MBUFrac: 0.1, SELPerYear: 1.2, SELAmpsMin: 0.07, SELAmpsMax: 0.25}
	SeaLevel  = Environment{Name: "sea-level", SEUPerDay: 1.6 / 700000, MBUFrac: 0.02, SELPerYear: 0, SELAmpsMin: 0, SELAmpsMax: 0}
)

// Schedule draws a Poisson-process event timeline for the duration. The
// returned events are sorted by time. Deterministic per rng seed.
func (e Environment) Schedule(rng *rand.Rand, dur time.Duration) []Event {
	var events []Event
	day := float64(24 * time.Hour)
	year := 365.25 * day

	appendArrivals := func(ratePerNano float64, mk func() Event) {
		if ratePerNano <= 0 {
			return
		}
		t := 0.0
		for {
			t += rng.ExpFloat64() / ratePerNano
			if t >= float64(dur) {
				return
			}
			ev := mk()
			ev.T = time.Duration(t)
			events = append(events, ev)
		}
	}

	appendArrivals(e.SEUPerDay/day, func() Event {
		if rng.Float64() < e.MBUFrac {
			return Event{Kind: MBU}
		}
		return Event{Kind: SEU}
	})
	appendArrivals(e.SELPerYear/year, func() Event {
		amps := e.SELAmpsMin
		if e.SELAmpsMax > e.SELAmpsMin {
			amps += rng.Float64() * (e.SELAmpsMax - e.SELAmpsMin)
		}
		return Event{Kind: SEL, Amps: amps}
	})

	sort.Slice(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}

// BitFlip addresses one bit inside a byte-addressed target.
type BitFlip struct {
	Offset uint64 // byte offset within the target
	Bit    uint   // bit within the byte, 0..7
}

// RandomFlip draws a uniformly random bit position within size bytes.
// It panics on size 0 — there is nothing to strike.
func RandomFlip(rng *rand.Rand, size uint64) BitFlip {
	if size == 0 {
		//radlint:allow nopanic an empty strike target is an experiment-setup bug, not a runtime condition
		panic("fault: RandomFlip over empty target")
	}
	return BitFlip{
		Offset: uint64(rng.Int63n(int64(size))),
		Bit:    uint(rng.Intn(8)),
	}
}

// MBUFlips draws two adjacent-bit flips (same byte where possible),
// modelling a multi-bit upset from a single particle track.
func MBUFlips(rng *rand.Rand, size uint64) [2]BitFlip {
	f := RandomFlip(rng, size)
	second := BitFlip{Offset: f.Offset, Bit: (f.Bit + 1) % 8}
	return [2]BitFlip{f, second}
}

// Flipper is anything whose stored bits a particle can strike.
// mem.DRAM and mem.Storage satisfy it directly.
type Flipper interface {
	FlipBit(addr uint64, bit uint) error
}

// Inject applies a flip to a target at the given base address.
func Inject(target Flipper, base uint64, f BitFlip) error {
	return target.FlipBit(base+f.Offset, f.Bit)
}

// Outcome classifies the end state of one fault-injection run, the
// categories of the paper's Table 7.
type Outcome int

const (
	// Corrected: redundancy masked the fault; output correct, error
	// observed and outvoted.
	Corrected Outcome = iota
	// NoEffect: the flip landed in dead data or was absorbed by ECC;
	// output correct, nothing observed.
	NoEffect
	// DetectedError: the run failed visibly (crash, vote tie, ECC
	// machine check) — recoverable by retry.
	DetectedError
	// SDC: silent data corruption — wrong output, no indication. The
	// failure mode Radshield exists to prevent.
	SDC
)

// String returns the Table 7 column name for the outcome.
func (o Outcome) String() string {
	switch o {
	case Corrected:
		return "Corrected"
	case NoEffect:
		return "No Effect"
	case DetectedError:
		return "Error"
	case SDC:
		return "SDC"
	default:
		return "unknown"
	}
}

// Tally accumulates outcomes across a campaign (one Table 7 row).
type Tally struct {
	Counts [4]int
}

// Add records one outcome.
func (t *Tally) Add(o Outcome) {
	if o < 0 || int(o) >= len(t.Counts) {
		//radlint:allow nopanic an out-of-range outcome enum is a programming error
		panic(fmt.Sprintf("fault: invalid outcome %d", o))
	}
	t.Counts[o]++
}

// Total returns the number of runs recorded.
func (t *Tally) Total() int {
	sum := 0
	for _, c := range t.Counts {
		sum += c
	}
	return sum
}

// String formats the tally as a Table 7 row fragment.
func (t *Tally) String() string {
	return fmt.Sprintf("Corrected=%d NoEffect=%d Error=%d SDC=%d",
		t.Counts[Corrected], t.Counts[NoEffect], t.Counts[DetectedError], t.Counts[SDC])
}
