package fault

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// countKinds tallies a timeline by kind.
func countKinds(events []Event) map[Kind]int {
	n := make(map[Kind]int)
	for _, ev := range events {
		n[ev.Kind]++
	}
	return n
}

// TestSchedulePiecewiseMatchesIntegratedFlux is the satellite property
// test: over many seeds, the mean event count per window must match the
// window's integrated flux (rate × multiplier × duration) within
// Monte-Carlo tolerance, independently per phase.
func TestSchedulePiecewiseMatchesIntegratedFlux(t *testing.T) {
	env := Environment{Name: "test", SEUPerDay: 48, MBUFrac: 0.1, SELPerYear: 0, SELAmpsMin: 0.07, SELAmpsMax: 0.25}
	windows := []RateWindow{
		{Start: 0, Duration: 6 * time.Hour, SEU: 1, MBU: 1, SEL: 1},
		{Start: 6 * time.Hour, Duration: 2 * time.Hour, SEU: 30, MBU: 1, SEL: 1},
		{Start: 8 * time.Hour, Duration: 4 * time.Hour, SEU: 0.5, MBU: 1, SEL: 1},
	}
	const runs = 300
	perWindow := make([]float64, len(windows))
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		events, err := env.SchedulePiecewise(rng, windows)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			placed := false
			for i, w := range windows {
				if ev.T >= w.Start && ev.T < w.End() {
					perWindow[i]++
					placed = true
					break
				}
			}
			if !placed {
				t.Fatalf("event at %v falls outside every window", ev.T)
			}
		}
	}
	day := float64(24 * time.Hour)
	for i, w := range windows {
		lambda := env.SEUPerDay / day * w.SEU * float64(w.Duration)
		mean := perWindow[i] / runs
		// Poisson mean estimate over `runs` trials: σ = sqrt(λ/runs);
		// allow 5σ so the test stays deterministic-in-practice.
		tol := 5 * math.Sqrt(lambda/runs)
		if math.Abs(mean-lambda) > tol {
			t.Errorf("window %d: mean count %.2f, want %.2f ± %.2f (integrated flux)", i, mean, lambda, tol)
		}
	}
}

// TestSchedulePiecewiseSingleWindowMatchesSchedule pins the identity
// that a one-window profile at unit multipliers is exactly the
// constant-rate scheduler: byte-identical events for the same seed.
func TestSchedulePiecewiseSingleWindowMatchesSchedule(t *testing.T) {
	const dur = 12 * time.Hour
	want := DeepSpace.Schedule(rand.New(rand.NewSource(7)), dur)
	got, err := DeepSpace.SchedulePiecewise(rand.New(rand.NewSource(7)),
		[]RateWindow{{Start: 0, Duration: dur, SEU: 1, MBU: 1, SEL: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("piecewise drew %d events, flat schedule %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestSchedulePiecewiseBoundaries is the no-drop/no-duplicate property:
// with contiguous half-open windows, every seeded event lands strictly
// inside exactly one window, and splicing zero-duration windows into
// the schedule (phase boundaries of measure zero) changes nothing —
// they consume no randomness.
func TestSchedulePiecewiseBoundaries(t *testing.T) {
	env := Environment{Name: "test", SEUPerDay: 200, MBUFrac: 0.2, SELPerYear: 400, SELAmpsMin: 0.07, SELAmpsMax: 0.25}
	windows := []RateWindow{
		{Start: 0, Duration: time.Hour, SEU: 1, MBU: 1, SEL: 1},
		{Start: time.Hour, Duration: time.Hour, SEU: 10, MBU: 1, SEL: 10},
		{Start: 2 * time.Hour, Duration: time.Hour, SEU: 1, MBU: 1, SEL: 1},
	}
	for seed := int64(0); seed < 50; seed++ {
		events, err := env.SchedulePiecewise(rand.New(rand.NewSource(seed)), windows)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(events); i++ {
			if events[i].T < events[i-1].T {
				t.Fatalf("seed %d: events out of order at %d", seed, i)
			}
		}
		for _, ev := range events {
			owners := 0
			for _, w := range windows {
				if ev.T >= w.Start && ev.T < w.End() {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("seed %d: event at %v owned by %d windows, want exactly 1", seed, ev.T, owners)
			}
		}

		spliced := []RateWindow{
			{Start: 0, Duration: 0, SEU: 99, MBU: 99, SEL: 99}, // measure-zero: must contribute nothing
			windows[0],
			{Start: time.Hour, Duration: 0, SEU: 99, MBU: 99, SEL: 99},
			windows[1],
			windows[2],
			{Start: 3 * time.Hour, Duration: 0, SEU: 99, MBU: 99, SEL: 99},
		}
		again, err := env.SchedulePiecewise(rand.New(rand.NewSource(seed)), spliced)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(events) {
			t.Fatalf("seed %d: zero-duration boundaries changed the event count: %d vs %d", seed, len(again), len(events))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("seed %d: zero-duration boundaries changed event %d", seed, i)
			}
		}
	}
}

// TestSchedulePiecewiseValidation rejects malformed windows.
func TestSchedulePiecewiseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]RateWindow{
		{{Start: -time.Second, Duration: time.Hour, SEU: 1, MBU: 1, SEL: 1}},
		{{Start: 0, Duration: -time.Hour, SEU: 1, MBU: 1, SEL: 1}},
		{{Start: 0, Duration: time.Hour, SEU: -1, MBU: 1, SEL: 1}},
		{
			{Start: 0, Duration: time.Hour, SEU: 1, MBU: 1, SEL: 1},
			{Start: 30 * time.Minute, Duration: time.Hour, SEU: 1, MBU: 1, SEL: 1},
		},
	}
	for i, ws := range cases {
		if _, err := LEO.SchedulePiecewise(rng, ws); err == nil {
			t.Errorf("case %d: malformed windows accepted", i)
		}
	}
}

// TestSchedulePiecewiseMBUClamp: a large MBU multiplier saturates the
// multi-bit fraction at 1 — every upset drawn in the window is an MBU,
// and the scheduler neither panics nor produces SEUs there.
func TestSchedulePiecewiseMBUClamp(t *testing.T) {
	env := Environment{Name: "test", SEUPerDay: 500, MBUFrac: 0.5, SELPerYear: 0}
	events, err := env.SchedulePiecewise(rand.New(rand.NewSource(3)),
		[]RateWindow{{Start: 0, Duration: 24 * time.Hour, SEU: 1, MBU: 10, SEL: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events drawn")
	}
	if n := countKinds(events); n[SEU] != 0 {
		t.Errorf("clamped MBU fraction still drew %d SEUs", n[SEU])
	}
}
