package downlink

import (
	"fmt"
	"time"
)

// Policy selects which virtual channel the transmitter serves next
// when several have frames ready. The campaign sweeps all three.
type Policy int

const (
	// PolicyPriority always drains the lowest-numbered (highest
	// priority) channel first — the flight default.
	PolicyPriority Policy = iota
	// PolicyRoundRobin rotates across non-empty channels, one frame
	// each.
	PolicyRoundRobin
	// PolicyFIFO ignores priority and sends in global enqueue order.
	PolicyFIFO

	policyCount
)

// String names the policy for tables.
func (p Policy) String() string {
	switch p {
	case PolicyPriority:
		return "priority"
	case PolicyRoundRobin:
		return "round_robin"
	case PolicyFIFO:
		return "fifo"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// TxConfig tunes the transmitter.
type TxConfig struct {
	// Link identifies this spacecraft in every frame header.
	Link uint16
	// Window is the go-back-N window per virtual channel: how many
	// frames may be outstanding (sent, unacknowledged) at once.
	Window int
	// RTO is the initial retransmission timeout. On each consecutive
	// timeout of the same window it doubles, deterministically, up to
	// RTOMax.
	RTO    time.Duration
	RTOMax time.Duration
	// Policy picks the channel-service order.
	Policy Policy
	// RingCap bounds the flight recorder (records).
	RingCap int
	// BeaconEvery is the heartbeat cadence in beacon mode.
	BeaconEvery time.Duration
	// Instruments, when non-nil, receives downlink_* metrics.
	Instruments *Instruments
}

// DefaultTxConfig returns the flight operating point: an 8-frame
// window, 1 s initial RTO backing off to 30 s, strict priority, a
// 4096-record recorder, 10 s beacons.
func DefaultTxConfig(link uint16) TxConfig {
	return TxConfig{
		Link:        link,
		Window:      8,
		RTO:         time.Second,
		RTOMax:      30 * time.Second,
		Policy:      PolicyPriority,
		RingCap:     4096,
		BeaconEvery: 10 * time.Second,
	}
}

// vcState is the volatile per-channel ARQ state. A power cycle wipes
// it; the flight recorder (NVRAM) rebuilds the windows.
type vcState struct {
	sent     int           // frames outstanding from the window base
	attempts int           // consecutive timeouts of the current window
	deadline time.Duration // retransmit deadline; valid when sent > 0
	maxSent  uint32        // one past the highest seq ever transmitted
	everSent bool
}

// TxStats are the transmitter's cumulative tallies.
type TxStats struct {
	Sent        uint64 // data frames handed to the link
	Retransmits uint64 // subset that were re-sends
	Acked       uint64 // records released by ACKs
	Beacons     uint64 // beacon frames sent
	Timeouts    uint64 // go-back-N window resets
	DupAcks     uint64 // ACKs that released nothing
}

// Transmitter is the flight-side sender: a priority-queue scheduler
// over the flight recorder with per-channel go-back-N ARQ, driven
// entirely by explicit simulated timestamps. It is not safe for
// concurrent use.
type Transmitter struct {
	cfg  TxConfig
	rec  *Recorder
	link *Link
	vc   [NumVC]vcState

	beacon      bool
	beaconSince time.Duration
	beaconDwell time.Duration
	nextBeacon  time.Duration
	beaconSeq   uint32
	rr          int // round-robin position, persists across ticks
	stats       TxStats
	ins         *Instruments
	lastTick    time.Duration
	powerCycles int
}

// NewTransmitter validates cfg and binds the transmitter to its link.
func NewTransmitter(link *Link, cfg TxConfig) (*Transmitter, error) {
	if link == nil {
		return nil, fmt.Errorf("downlink: nil link")
	}
	if cfg.Window < 1 {
		return nil, fmt.Errorf("downlink: window %d must be ≥ 1", cfg.Window)
	}
	if cfg.RTO <= 0 || cfg.RTOMax < cfg.RTO {
		return nil, fmt.Errorf("downlink: RTO %v must be > 0 and ≤ RTOMax %v", cfg.RTO, cfg.RTOMax)
	}
	if cfg.Policy < 0 || cfg.Policy >= policyCount {
		return nil, fmt.Errorf("downlink: unknown policy %d", cfg.Policy)
	}
	if cfg.BeaconEvery <= 0 {
		return nil, fmt.Errorf("downlink: BeaconEvery %v must be > 0", cfg.BeaconEvery)
	}
	rec, err := NewRecorder(cfg.RingCap)
	if err != nil {
		return nil, err
	}
	rec.setInstruments(cfg.Instruments)
	link.SetInstruments(cfg.Instruments)
	return &Transmitter{cfg: cfg, rec: rec, link: link, ins: cfg.Instruments}, nil
}

// Enqueue stores payload on vc for transmission. Eviction of an
// already-sent frame shrinks that channel's outstanding window so the
// ARQ base stays aligned with the recorder.
func (t *Transmitter) Enqueue(vc uint8, payload []byte, now time.Duration) error {
	_, evicted, err := t.rec.Enqueue(vc, payload, now)
	if err != nil {
		return err
	}
	if evicted != nil && t.vc[evicted.VC].sent > 0 {
		t.vc[evicted.VC].sent--
	}
	return nil
}

// SetBeacon switches degraded beacon mode. The guard supervisor's
// step-down drives this (see guard.Supervisor.OnModeChange): in beacon
// mode only channel 0 flows, plus a periodic heartbeat, so a sick
// spacecraft still gets its highest-priority events down.
func (t *Transmitter) SetBeacon(on bool, now time.Duration, reason string) {
	if on == t.beacon {
		return
	}
	t.beacon = on
	if on {
		t.beaconSince = now
		t.nextBeacon = now
	} else {
		t.beaconDwell += now - t.beaconSince
	}
	t.ins.beaconModeChange(now, on, reason)
}

// Beacon reports whether beacon mode is engaged.
func (t *Transmitter) Beacon() bool { return t.beacon }

// BeaconDwell returns the total simulated time spent in beacon mode up
// to instant now.
func (t *Transmitter) BeaconDwell(now time.Duration) time.Duration {
	d := t.beaconDwell
	if t.beacon {
		d += now - t.beaconSince
	}
	return d
}

// PowerCycle models a board reboot at instant now: all volatile ARQ
// state (windows, timers, beacon engagement) is lost; the flight
// recorder — NVRAM — survives, so unacknowledged frames retransmit
// from scratch after the restart.
func (t *Transmitter) PowerCycle(now time.Duration) {
	for i := range t.vc {
		t.vc[i].sent = 0
		t.vc[i].attempts = 0
		t.vc[i].deadline = 0
	}
	t.rr = 0
	if t.beacon {
		t.beaconDwell += now - t.beaconSince
		t.beacon = false
		t.ins.beaconModeChange(now, false, "power_cycle")
	}
	t.powerCycles++
}

// PowerCycles returns how many reboots the transmitter has survived.
func (t *Transmitter) PowerCycles() int { return t.powerCycles }

// Pending returns the flight-recorder backlog (unacknowledged
// records).
func (t *Transmitter) Pending() int { return t.rec.Len() }

// PendingVC returns one channel's unacknowledged record count.
func (t *Transmitter) PendingVC(vc uint8) int { return len(t.rec.Pending(vc)) }

// Evicted returns how many records the recorder overwrote.
func (t *Transmitter) Evicted() uint64 { return t.rec.Evicted() }

// Done reports whether every enqueued record has been acknowledged.
func (t *Transmitter) Done() bool { return t.rec.Len() == 0 }

// Stats returns the cumulative tallies.
func (t *Transmitter) Stats() TxStats { return t.stats }

// rto returns the deterministic backoff for the given timeout count:
// RTO << attempts, capped at RTOMax.
func (t *Transmitter) rto(attempts int) time.Duration {
	d := t.cfg.RTO
	for i := 0; i < attempts && d < t.cfg.RTOMax; i++ {
		d *= 2
	}
	if d > t.cfg.RTOMax {
		d = t.cfg.RTOMax
	}
	return d
}

// Tick advances the transmitter to instant now: ACKs are absorbed,
// expired windows reset (go-back-N), and as much of the backlog as
// policy and bandwidth allow is (re)transmitted. Ticks must be
// monotone.
func (t *Transmitter) Tick(now time.Duration) error {
	if now < t.lastTick {
		return fmt.Errorf("downlink: Tick(%v) before %v — simulated time may not move backwards", now, t.lastTick)
	}
	t.lastTick = now

	// 1. Absorb the up-pipe: cumulative ACKs advance the windows.
	for _, raw := range t.link.RecvUp(now) {
		f, _, err := DecodeFrame(raw)
		if err != nil {
			continue // a mangled ACK is just a lost ACK; ARQ recovers
		}
		if f.Type != FrameAck {
			continue
		}
		next, err := AckValue(f)
		if err != nil {
			continue
		}
		t.handleAck(f.VC, next, now)
	}

	// 2. Expired windows: go back N — every outstanding frame on the
	// channel re-enters the unsent set and the backoff doubles.
	for vc := 0; vc < NumVC; vc++ {
		st := &t.vc[vc]
		if st.sent > 0 && now >= st.deadline {
			st.sent = 0
			st.attempts++
			st.deadline = now + t.rto(st.attempts)
			t.stats.Timeouts++
		}
	}

	// 3. Beacon heartbeat.
	if t.beacon && now >= t.nextBeacon {
		if raw, err := EncodeBeacon(t.cfg.Link, t.beaconSeq, true, uint32(t.rec.Len())); err == nil {
			if t.link.CanSendDown(len(raw), now) && t.link.SendDown(raw, now) {
				t.beaconSeq++
				t.stats.Beacons++
				t.ins.beaconSent()
				t.nextBeacon = now + t.cfg.BeaconEvery
			}
		}
	}

	// 4. Transmit new (and go-back-N re-queued) frames under the
	// bandwidth budget. The round-robin position persists across ticks:
	// on a starved link that affords one frame per tick, resetting it
	// would collapse round robin into strict priority.
	for {
		vc, ok := t.pick(t.rr)
		if !ok {
			return nil
		}
		st := &t.vc[vc]
		recs := t.rec.Pending(uint8(vc))
		r := recs[st.sent]
		// The window-base frame carries FlagBase so the station can
		// distinguish "frames still in flight below this sequence" from
		// "the recorder evicted them" and skip an unrecoverable gap.
		var flags uint8
		if st.sent == 0 {
			flags = FlagBase
		}
		raw, err := EncodeFrame(Frame{Type: FrameData, Link: t.cfg.Link, VC: uint8(vc), Flags: flags, Seq: r.Seq, Payload: r.Payload})
		if err != nil {
			return err // recorder-validated payload: should be impossible
		}
		if !t.link.CanSendDown(len(raw), now) {
			return nil // starved; resume next tick
		}
		t.link.SendDown(raw, now)
		if t.cfg.Policy == PolicyRoundRobin {
			// Rotate only after a frame actually went out — advancing on
			// a starved attempt would hand the next affordable slot to an
			// arbitrary channel.
			t.rr = (vc + 1) % NumVC
		}
		retransmit := st.everSent && r.Seq < st.maxSent
		if !retransmit {
			st.maxSent = r.Seq + 1
			st.everSent = true
		}
		if st.sent == 0 {
			st.deadline = now + t.rto(st.attempts)
		}
		st.sent++
		t.stats.Sent++
		if retransmit {
			t.stats.Retransmits++
		}
		t.ins.frameSent(len(raw), retransmit)
	}
}

// handleAck advances vc's window to the cumulative acknowledgement.
func (t *Transmitter) handleAck(vc uint8, nextExpected uint32, now time.Duration) {
	if vc >= NumVC {
		return
	}
	released := t.rec.Ack(vc, nextExpected)
	st := &t.vc[vc]
	if released == 0 {
		t.stats.DupAcks++
		return
	}
	st.sent -= released
	if st.sent < 0 {
		st.sent = 0
	}
	// Forward progress resets the backoff and re-arms the timer for
	// whatever is still outstanding.
	st.attempts = 0
	if st.sent > 0 {
		st.deadline = now + t.rto(0)
	}
	t.stats.Acked += uint64(released)
	t.ins.framesAcked(released)
}

// pick returns the next channel to serve under the configured policy,
// or ok=false when nothing is eligible. rrStart seeds the round-robin
// scan so consecutive picks within one tick rotate.
func (t *Transmitter) pick(rrStart int) (int, bool) {
	eligible := func(vc int) bool {
		if t.beacon && vc != 0 {
			return false
		}
		st := &t.vc[vc]
		return st.sent < t.cfg.Window && st.sent < len(t.rec.Pending(uint8(vc)))
	}
	switch t.cfg.Policy {
	case PolicyRoundRobin:
		for i := 0; i < NumVC; i++ {
			vc := (rrStart + i) % NumVC
			if eligible(vc) {
				return vc, true
			}
		}
	case PolicyFIFO:
		best, bestAt := -1, time.Duration(0)
		for vc := 0; vc < NumVC; vc++ {
			if !eligible(vc) {
				continue
			}
			at := t.rec.Pending(uint8(vc))[t.vc[vc].sent].Enqueued
			if best < 0 || at < bestAt {
				best, bestAt = vc, at
			}
		}
		if best >= 0 {
			return best, true
		}
	default: // PolicyPriority
		for vc := 0; vc < NumVC; vc++ {
			if eligible(vc) {
				return vc, true
			}
		}
	}
	return 0, false
}
