package downlink

import (
	"fmt"
	"time"
)

// Record is one payload held by the flight recorder until the ground
// acknowledges it.
type Record struct {
	VC       uint8
	Seq      uint32
	Payload  []byte
	Enqueued time.Duration // simulated enqueue time
}

// Recorder is the store-and-forward flight-recorder ring: a bounded,
// priority-partitioned buffer that owns every payload from enqueue to
// acknowledgement. It models NVRAM — a power cycle resets the
// transmitter's volatile ARQ state but never the recorder — so events
// captured mid-blackout survive to the next contact window.
//
// Capacity is a total record count. When full, Enqueue evicts the
// oldest record of the lowest-priority non-empty channel (the highest
// VC number), even if unacknowledged: bulk telemetry is sacrificed
// first and priority-0 events are the last to go. Evictions are
// counted and reported so silent loss is impossible.
//
// Recorder is not safe for concurrent use; the Transmitter serializes
// access.
type Recorder struct {
	capacity int
	perVC    [NumVC][]Record // unacked records in seq order
	nextSeq  [NumVC]uint32
	count    int
	evicted  uint64
	ins      *Instruments
}

// NewRecorder returns a ring holding up to capacity records in total.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("downlink: recorder capacity %d must be ≥ 1", capacity)
	}
	return &Recorder{capacity: capacity}, nil
}

// setInstruments attaches the transmitter's metric handles.
func (r *Recorder) setInstruments(ins *Instruments) { r.ins = ins }

// Enqueue stores payload on vc, assigning the channel's next sequence
// number. A full ring evicts before storing; the evicted record (if
// any) is returned so callers can log the loss.
func (r *Recorder) Enqueue(vc uint8, payload []byte, now time.Duration) (Record, *Record, error) {
	if vc >= NumVC {
		return Record{}, nil, fmt.Errorf("%w: %d", ErrBadVC, vc)
	}
	if len(payload) > MaxPayload {
		return Record{}, nil, fmt.Errorf("%w: %d bytes", ErrBadLength, len(payload))
	}
	var evicted *Record
	if r.count >= r.capacity {
		ev := r.evictOldestLowest()
		evicted = &ev
	}
	rec := Record{
		VC:       vc,
		Seq:      r.nextSeq[vc],
		Payload:  append([]byte(nil), payload...),
		Enqueued: now,
	}
	r.nextSeq[vc]++
	r.perVC[vc] = append(r.perVC[vc], rec)
	r.count++
	r.ins.ringDepth(r.count)
	return rec, evicted, nil
}

// evictOldestLowest removes the oldest record from the lowest-priority
// non-empty channel. The ring is only ever full when at least one
// channel has records, so a victim always exists.
func (r *Recorder) evictOldestLowest() Record {
	for vc := NumVC - 1; vc >= 0; vc-- {
		q := r.perVC[vc]
		if len(q) == 0 {
			continue
		}
		victim := q[0]
		r.perVC[vc] = q[1:]
		r.count--
		r.evicted++
		r.ins.ringEvicted()
		return victim
	}
	// Unreachable: count >= capacity ≥ 1 implies a non-empty channel.
	return Record{}
}

// Ack drops every record on vc with Seq < nextExpected and reports how
// many were released. Acknowledgement is cumulative (go-back-N).
func (r *Recorder) Ack(vc uint8, nextExpected uint32) int {
	if vc >= NumVC {
		return 0
	}
	q := r.perVC[vc]
	n := 0
	for n < len(q) && q[n].Seq < nextExpected {
		n++
	}
	if n == 0 {
		return 0
	}
	r.perVC[vc] = q[n:]
	r.count -= n
	r.ins.ringDepth(r.count)
	return n
}

// Pending returns vc's unacknowledged records in sequence order. The
// slice aliases the ring; callers must not retain it across Enqueue or
// Ack.
func (r *Recorder) Pending(vc uint8) []Record {
	if vc >= NumVC {
		return nil
	}
	return r.perVC[vc]
}

// Len returns the total number of unacknowledged records.
func (r *Recorder) Len() int { return r.count }

// Evicted returns how many unacknowledged records the ring has ever
// overwritten.
func (r *Recorder) Evicted() uint64 { return r.evicted }
