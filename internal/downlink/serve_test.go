package downlink

import (
	"bufio"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer spins up a Server on a loopback listener and returns the
// dial address plus a shutdown func.
func startServer(t *testing.T, st *Station, workers int) (string, *Server, func()) {
	t.Helper()
	srv, err := NewServer(st, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), srv, func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestServerConcurrentLinks streams frames from several simulated
// spacecraft at once — each its own TCP connection — and verifies every
// frame lands exactly once with an ACK flowing back. Run under -race
// this doubles as the station's concurrency test.
func TestServerConcurrentLinks(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	addr, _, shutdown := startServer(t, st, 4)
	defer shutdown()

	const links, frames = 5, 40
	var wg sync.WaitGroup
	errs := make(chan error, links)
	for li := 0; li < links; li++ {
		wg.Add(1)
		go func(link uint16) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			for seq := uint32(0); seq < frames; seq++ {
				raw, err := EncodeFrame(Frame{
					Type: FrameData, Link: link, VC: 0,
					Seq: seq, Payload: []byte(fmt.Sprintf("link%d-frame%d", link, seq)),
				})
				if err != nil {
					errs <- err
					return
				}
				if _, err := conn.Write(raw); err != nil {
					errs <- err
					return
				}
				// Wait for the cumulative ACK so the stream stays in
				// lockstep (the test's flow control, not the protocol's).
				ackRaw, err := ReadFrame(br)
				if err != nil {
					errs <- fmt.Errorf("link %d ack read: %w", link, err)
					return
				}
				f, _, err := DecodeFrame(ackRaw)
				if err != nil {
					errs <- err
					return
				}
				if next, _ := AckValue(f); next != seq+1 {
					errs <- fmt.Errorf("link %d: ack %d after frame %d", link, next, seq)
					return
				}
			}
		}(uint16(li + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for li := 1; li <= links; li++ {
		if got := st.Delivered(uint16(li), 0); got != frames {
			t.Fatalf("link %d delivered %d, want %d", li, got, frames)
		}
	}
}

// TestServerResyncsAfterGarbage interleaves line noise with valid
// frames on one stream; ReadFrame must skip the noise and recover every
// real frame.
func TestServerResyncsAfterGarbage(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	addr, _, shutdown := startServer(t, st, 1)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for seq := uint32(0); seq < 3; seq++ {
		conn.Write([]byte(strings.Repeat("\xFF\x00noise", 7)))
		raw, _ := EncodeFrame(Frame{Type: FrameData, Link: 2, VC: 0, Seq: seq, Payload: []byte("real")})
		conn.Write(raw)
		if _, err := ReadFrame(br); err != nil {
			t.Fatalf("ack %d: %v", seq, err)
		}
	}
	if got := st.Delivered(2, 0); got != 3 {
		t.Fatalf("delivered %d, want 3", got)
	}
}

func TestServerHTTPState(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	st.Ingest(encData(t, 4, 0, 0, "hello ground"), time.Second)
	srv, err := NewServer(st, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.HTTPHandler())
	defer hs.Close()

	resp, err := hs.Client().Get(hs.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	body := string(buf[:n])
	if resp.StatusCode != 200 || !strings.Contains(body, `"link": 4`) {
		t.Fatalf("GET /state: %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(body, "hello ground") {
		t.Fatalf("recent payload missing from state: %q", body)
	}
}

func TestServerCloseIsIdempotent(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	_, srv, shutdown := startServer(t, st, 2)
	shutdown()
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := srv.Serve(nil); err != nil {
		t.Fatalf("Serve on a closed server should exit cleanly: %v", err)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, 1, nil); err == nil {
		t.Fatal("nil station accepted")
	}
}
