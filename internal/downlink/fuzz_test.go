package downlink

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameRoundTrip checks that any encodable frame decodes back to
// itself bit-for-bit: the codec must never lose or mutate telemetry on
// the way to the ground.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint16(1), uint8(0), uint8(0), uint32(0), []byte("hello"))
	f.Add(uint8(1), uint16(0xBEEF), uint8(3), uint8(1), uint32(0xFFFFFFFF), []byte{})
	f.Add(uint8(2), uint16(7), uint8(0), uint8(0), uint32(42), []byte{0x01, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, typ uint8, link uint16, vc, flags uint8, seq uint32, payload []byte) {
		in := Frame{Type: FrameType(typ), Link: link, VC: vc, Flags: flags, Seq: seq, Payload: payload}
		raw, err := EncodeFrame(in)
		if err != nil {
			// Rejections must be for a documented reason.
			if !errors.Is(err, ErrBadType) && !errors.Is(err, ErrBadVC) && !errors.Is(err, ErrBadLength) {
				t.Fatalf("unexpected encode error: %v", err)
			}
			return
		}
		out, n, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("decode of a frame we just encoded: %v", err)
		}
		if n != len(raw) {
			t.Fatalf("consumed %d of %d", n, len(raw))
		}
		if out.Type != in.Type || out.Link != in.Link || out.VC != in.VC ||
			out.Flags != in.Flags || out.Seq != in.Seq {
			t.Fatalf("round trip mutated header: %+v -> %+v", in, out)
		}
		if len(in.Payload) == 0 {
			if len(out.Payload) != 0 {
				t.Fatalf("payload appeared: % x", out.Payload)
			}
		} else if !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("payload mutated: % x -> % x", in.Payload, out.Payload)
		}
	})
}

// FuzzFrameDecode throws arbitrary bytes at the codec's trust boundary:
// it must classify them — never panic, never claim progress it did not
// make — because this is exactly what a corrupted radio channel feeds
// the ground station.
func FuzzFrameDecode(f *testing.F) {
	good, _ := EncodeFrame(Frame{Type: FrameData, Link: 1, VC: 0, Seq: 9, Payload: []byte("seed")})
	f.Add(good)
	flipped := append([]byte(nil), good...)
	flipped[HeaderLen] ^= 0x80
	f.Add(flipped)
	f.Add([]byte{magic0, magic1, version, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{magic0}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to the exact consumed bytes.
		re, encErr := EncodeFrame(fr)
		if encErr != nil {
			t.Fatalf("decoded frame does not re-encode: %v", encErr)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in  % x\n out % x", data[:n], re)
		}
	})
}
