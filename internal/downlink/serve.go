package downlink

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"radshield/internal/sched"
	"radshield/internal/telemetry"
)

// Server exposes a Station over TCP: each accepted connection is one
// spacecraft link's frame stream, handled by its own goroutine
// pipeline (read → ingest → ACK write-back), with total concurrency
// bounded by the sched pool width. An HTTP handler serves the
// aggregated mission state and the telemetry snapshot.
type Server struct {
	st  *Station
	reg *telemetry.Registry

	// sem bounds concurrent link pipelines (sched.Workers sizing).
	sem chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// ingestSeq is the receive-side clock surrogate for real
	// transports: campaigns pass simulated time into Station.Ingest
	// directly, but a TCP server has no simclock, so "now" is a
	// monotone ingest counter — deterministic, and still orders
	// last-seen across links.
	ingestSeq atomic.Int64
}

// NewServer wraps st. workers bounds the concurrent link pipelines
// (<= 0: one per CPU, via sched.Workers). reg, when non-nil, is served
// at /telemetry.
func NewServer(st *Station, workers int, reg *telemetry.Registry) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("downlink: nil station")
	}
	return &Server{
		st:    st,
		reg:   reg,
		sem:   make(chan struct{}, sched.Workers(workers)),
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Station returns the wrapped station.
func (s *Server) Station() *Station { return s.st }

// Serve accepts link connections on ln until Close. It blocks; run it
// in a goroutine and call Close to stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		// Close won the race against the Serve goroutine starting; that
		// is a clean shutdown, not an error.
		s.mu.Unlock()
		if ln != nil {
			ln.Close()
		}
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.sem <- struct{}{} // pipeline slot
			defer func() { <-s.sem }()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live link, and waits for the
// pipelines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one link pipeline: frames in, ACKs out.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 4*MaxFrameLen)
	for {
		raw, err := ReadFrame(br)
		if err != nil {
			return // EOF, closed, or an unrecoverable protocol violation
		}
		now := time.Duration(s.ingestSeq.Add(1))
		acks := s.st.Ingest(raw, now)
		for _, ack := range acks {
			if _, err := conn.Write(ack); err != nil {
				return
			}
		}
	}
}

// ReadFrame extracts the next frame's raw bytes from a stream,
// resynchronizing on the magic bytes after line noise. The returned
// slice still carries the CRC trailer — validation stays in
// DecodeFrame / Station.Ingest.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	for {
		hdr, err := br.Peek(HeaderLen)
		if err != nil {
			return nil, err
		}
		if hdr[0] != magic0 || hdr[1] != magic1 {
			if _, err := br.Discard(1); err != nil {
				return nil, err
			}
			continue
		}
		plen := int(binary.LittleEndian.Uint16(hdr[12:]))
		if plen > MaxPayload {
			// Corrupt length field: skip the magic and rescan.
			if _, err := br.Discard(2); err != nil {
				return nil, err
			}
			continue
		}
		buf := make([]byte, HeaderLen+plen+TrailerLen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
}

// HTTPHandler serves the ground segment's operator surface:
//
//	GET /state      aggregated per-link mission state (JSON)
//	GET /telemetry  groundstation_* metrics snapshot (when a registry
//	                was attached)
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/state", func(w http.ResponseWriter, _ *http.Request) {
		b, err := s.st.StateJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	if s.reg != nil {
		mux.Handle("/telemetry", s.reg.Handler())
	}
	return mux
}
