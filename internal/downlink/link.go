package downlink

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// LinkConfig describes the radio channel between one spacecraft and
// the ground station.
type LinkConfig struct {
	// RateBps / AckRateBps cap the space-to-ground and ground-to-space
	// directions in bytes per second of simulated time (token bucket,
	// one MaxFrameLen of burst).
	RateBps    int
	AckRateBps int
	// Latency is the one-way propagation delay, applied to both
	// directions.
	Latency time.Duration
	// Seed drives the loss model. Two links with the same seed and the
	// same call sequence behave identically.
	Seed int64
}

// DefaultLinkConfig models a bandwidth-starved LEO UHF link: 4 KiB/s
// down, 1 KiB/s up, 200 ms one-way latency.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		RateBps:    4096,
		AckRateBps: 1024,
		Latency:    200 * time.Millisecond,
	}
}

// LinkFault is a scheduled impairment window: within [Start,
// Start+Duration) each traversing frame is independently dropped,
// bit-corrupted, or held back one extra latency (reordered) with the
// given probabilities. Duration 0 means the window never closes.
type LinkFault struct {
	Start    time.Duration
	Duration time.Duration
	Drop     float64
	Corrupt  float64
	Reorder  float64
}

// active reports whether the window covers instant t.
func (f LinkFault) active(t time.Duration) bool {
	return t >= f.Start && (f.Duration <= 0 || t < f.Start+f.Duration)
}

// Blackout is a scheduled loss-of-contact window: every frame
// transmitted in either direction within it is lost. Mission traces
// turn their non-contact arcs into blackout schedules.
type Blackout struct {
	Start    time.Duration
	Duration time.Duration
}

func (b Blackout) active(t time.Duration) bool {
	return t >= b.Start && t < b.Start+b.Duration
}

// delivery is one frame in flight.
type delivery struct {
	due  time.Duration
	id   int // insertion order, for stable same-instant ordering
	data []byte
}

// pipe is one direction of the link.
type pipe struct {
	rateBps  int
	latency  time.Duration
	rng      *rand.Rand
	budget   int64 // bytes × nanoseconds still spendable
	lastNow  time.Duration
	inflight []delivery
	nextID   int

	dropped      uint64
	corrupted    uint64
	reordered    uint64
	blackoutLost uint64
}

// LinkStats are the loss model's cumulative tallies, summed over both
// directions.
type LinkStats struct {
	Dropped      uint64
	Corrupted    uint64
	Reordered    uint64
	BlackoutLost uint64
}

// Link is the seeded, deterministic lossy radio: a down pipe for data
// frames and an up pipe for ACKs, sharing the fault and blackout
// schedules. Link is not safe for concurrent use; each simulated
// spacecraft owns one.
type Link struct {
	cfg       LinkConfig
	down, up  *pipe
	faults    []LinkFault
	blackouts []Blackout
	ins       *Instruments

	// Transition latches for KindLinkFault events: windows are checked
	// lazily at send time, so an onset is stamped with the first frame
	// that met it.
	faultOpen    bool
	blackoutOpen bool
}

// NewLink validates cfg and builds the channel.
func NewLink(cfg LinkConfig) (*Link, error) {
	if cfg.RateBps < 1 || cfg.AckRateBps < 1 {
		return nil, fmt.Errorf("downlink: link rates %d/%d must be ≥ 1 B/s", cfg.RateBps, cfg.AckRateBps)
	}
	if cfg.Latency < 0 {
		return nil, fmt.Errorf("downlink: negative link latency %v", cfg.Latency)
	}
	return &Link{
		cfg:  cfg,
		down: &pipe{rateBps: cfg.RateBps, latency: cfg.Latency, rng: rand.New(rand.NewSource(cfg.Seed))},
		up:   &pipe{rateBps: cfg.AckRateBps, latency: cfg.Latency, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5AD5))},
	}, nil
}

// SetInstruments attaches metric handles for the loss tallies.
func (l *Link) SetInstruments(ins *Instruments) { l.ins = ins }

// ScheduleLinkFault registers an impairment window.
func (l *Link) ScheduleLinkFault(f LinkFault) error {
	if f.Start < 0 || f.Duration < 0 {
		return fmt.Errorf("downlink: link fault start %v / duration %v must be ≥ 0", f.Start, f.Duration)
	}
	for _, p := range []float64{f.Drop, f.Corrupt, f.Reorder} {
		if p < 0 || p > 1 {
			return fmt.Errorf("downlink: link fault probability %v outside [0, 1]", p)
		}
	}
	l.faults = append(l.faults, f)
	return nil
}

// ScheduleBlackout registers a loss-of-contact window.
func (l *Link) ScheduleBlackout(b Blackout) error {
	if b.Start < 0 || b.Duration <= 0 {
		return fmt.Errorf("downlink: blackout start %v must be ≥ 0 and duration %v > 0", b.Start, b.Duration)
	}
	l.blackouts = append(l.blackouts, b)
	return nil
}

// InBlackout reports whether the link is out of contact at instant t.
func (l *Link) InBlackout(t time.Duration) bool {
	for _, b := range l.blackouts {
		if b.active(t) {
			return true
		}
	}
	return false
}

// fault returns the combined impairment probabilities at instant t
// (windows stack additively, capped at 1).
func (l *Link) fault(t time.Duration) (drop, corrupt, reorder float64) {
	for _, f := range l.faults {
		if f.active(t) {
			drop += f.Drop
			corrupt += f.Corrupt
			reorder += f.Reorder
		}
	}
	cap1 := func(p float64) float64 {
		if p > 1 {
			return 1
		}
		return p
	}
	return cap1(drop), cap1(corrupt), cap1(reorder)
}

// CanSendDown reports whether the down pipe's bandwidth budget admits
// an n-byte frame at instant now. Transmitters poll this before
// consuming a frame so bandwidth starvation delays rather than drops.
func (l *Link) CanSendDown(n int, now time.Duration) bool {
	return l.down.canSend(n, now)
}

// SendDown transmits an encoded frame space-to-ground. The return
// value reports whether the pipe accepted the bytes (false = no
// bandwidth; the caller retries later). An accepted frame may still be
// lost or mangled by the loss model — that is what ARQ is for.
func (l *Link) SendDown(b []byte, now time.Duration) bool {
	return l.send(l.down, b, now, true)
}

// RecvDown returns the frames arriving at the ground at or before now,
// in deterministic arrival order.
func (l *Link) RecvDown(now time.Duration) [][]byte {
	return l.down.recv(now)
}

// SendUp transmits an encoded frame ground-to-space (ACKs).
func (l *Link) SendUp(b []byte, now time.Duration) bool {
	return l.send(l.up, b, now, false)
}

// RecvUp returns the frames arriving at the spacecraft at or before
// now.
func (l *Link) RecvUp(now time.Duration) [][]byte {
	return l.up.recv(now)
}

// Stats sums the loss tallies over both directions.
func (l *Link) Stats() LinkStats {
	return LinkStats{
		Dropped:      l.down.dropped + l.up.dropped,
		Corrupted:    l.down.corrupted + l.up.corrupted,
		Reordered:    l.down.reordered + l.up.reordered,
		BlackoutLost: l.down.blackoutLost + l.up.blackoutLost,
	}
}

// send pushes b through p, applying blackout and fault windows.
func (l *Link) send(p *pipe, b []byte, now time.Duration, downDir bool) bool {
	if !p.canSend(len(b), now) {
		return false
	}
	p.budget -= int64(len(b)) * int64(time.Second)
	l.noteWindows(now)
	if l.InBlackout(now) {
		p.blackoutLost++
		l.ins.linkBlackoutLost()
		return true
	}
	drop, corrupt, reorder := l.fault(now)
	// One uniform draw per hazard keeps the stream deterministic and
	// makes the hazards independent, matching the sweep's loss grid.
	if drop > 0 && p.rng.Float64() < drop {
		p.dropped++
		l.ins.linkDropped()
		return true
	}
	data := append([]byte(nil), b...)
	if corrupt > 0 && p.rng.Float64() < corrupt {
		bit := p.rng.Intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
		p.corrupted++
		l.ins.linkCorrupted()
	}
	due := now + p.latency
	if reorder > 0 && p.rng.Float64() < reorder {
		due += p.latency // held one extra propagation slot
		p.reordered++
		l.ins.linkReordered()
	}
	p.deliver(delivery{due: due, data: data})
	_ = downDir
	return true
}

// noteWindows emits a link_fault event when a scheduled impairment or
// blackout window transitions, as observed by traffic.
func (l *Link) noteWindows(now time.Duration) {
	if l.ins == nil {
		return
	}
	if blackout := l.InBlackout(now); blackout != l.blackoutOpen {
		l.blackoutOpen = blackout
		l.ins.linkWindow(now, "blackout", blackout)
	}
	d, c, r := l.fault(now)
	if faulty := d > 0 || c > 0 || r > 0; faulty != l.faultOpen {
		l.faultOpen = faulty
		l.ins.linkWindow(now, "fault", faulty)
	}
}

// canSend accrues the token bucket to now and checks the budget.
func (p *pipe) canSend(n int, now time.Duration) bool {
	if now > p.lastNow {
		p.budget += int64(now-p.lastNow) * int64(p.rateBps)
		if burst := int64(MaxFrameLen) * int64(time.Second); p.budget > burst {
			p.budget = burst
		}
		p.lastNow = now
	}
	return p.budget >= int64(n)*int64(time.Second)
}

// deliver inserts d keeping inflight sorted by (due, insertion id).
func (p *pipe) deliver(d delivery) {
	d.id = p.nextID
	p.nextID++
	i := sort.Search(len(p.inflight), func(i int) bool {
		f := p.inflight[i]
		return f.due > d.due || (f.due == d.due && f.id > d.id)
	})
	p.inflight = append(p.inflight, delivery{})
	copy(p.inflight[i+1:], p.inflight[i:])
	p.inflight[i] = d
}

// recv pops every delivery due at or before now.
func (p *pipe) recv(now time.Duration) [][]byte {
	n := 0
	for n < len(p.inflight) && p.inflight[n].due <= now {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		out[i] = p.inflight[i].data
	}
	p.inflight = p.inflight[n:]
	return out
}
