// Package downlink is the deterministic spacecraft-to-ground comms
// subsystem: it moves Radshield's telemetry (ILD verdicts, guard
// degradation events, EMR vote outcomes, metric snapshots) over a
// lossy, bandwidth-starved, blackout-prone radio link and reassembles
// it on the ground.
//
// The layer stack, bottom up:
//
//   - Frame codec (frame.go): CCSDS-style fixed-header packetization.
//     Every frame carries a link (spacecraft) id, a virtual channel
//     (0 = highest priority: SEL/guard events; 3 = bulk), a per-channel
//     sequence number, a bounded payload, and a CRC-32 trailer. A
//     corrupted frame is discarded by CRC at the receiver and recovered
//     by ARQ, mirroring the SEU-hardened framing space telemetry buses
//     use.
//
//   - Flight recorder (ring.go): a bounded store-and-forward ring that
//     owns every frame until it is acknowledged. The ring models
//     NVRAM: it survives simulated power cycles, so an SEL event
//     captured mid-blackout is still on board when contact resumes.
//     When full it evicts oldest-first from the lowest-priority
//     channel, so priority-0 events are the last to go.
//
//   - Lossy link (link.go): a seeded, fully deterministic radio model —
//     token-bucket bandwidth cap, propagation latency, scheduled
//     drop/corrupt/reorder fault windows (ScheduleLinkFault) and
//     ground-contact blackouts (ScheduleBlackout). Both directions
//     share the fault schedule; ACKs can be lost too.
//
//   - Transmitter (transmitter.go): a priority-queue sender running
//     go-back-N ARQ per virtual channel with deterministic exponential
//     retransmission backoff. When the guard supervisor steps down
//     (see internal/guard) the transmitter degrades to a low-rate
//     beacon mode that keeps only channel 0 flowing.
//
//   - Station (station.go, serve.go): the ground side — reassembles
//     and deduplicates frames from many spacecraft concurrently,
//     generates cumulative ACKs, aggregates per-link mission state,
//     and serves it over TCP (frame transport) and HTTP (state +
//     telemetry). cmd/groundstation is the thin binary wrapper.
//
// Everything on the flight side is driven by explicit simulated
// timestamps (simclock time) — no host-clock reads — so a campaign
// replays byte-for-byte at any scheduler width. TELEMETRY.md catalogs
// the downlink_* and groundstation_* metric families; DOWNLINK.md
// documents the frame format and the ARQ state machine.
package downlink
