package downlink

import (
	"bytes"
	"testing"
	"time"

	"radshield/internal/telemetry"
)

func mustFrame(t *testing.T, vc uint8, seq uint32, payload string) []byte {
	t.Helper()
	raw, err := EncodeFrame(Frame{Type: FrameData, Link: 1, VC: vc, Seq: seq, Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestLinkValidation(t *testing.T) {
	if _, err := NewLink(LinkConfig{RateBps: 0, AckRateBps: 1}); err == nil {
		t.Fatal("accepted zero rate")
	}
	if _, err := NewLink(LinkConfig{RateBps: 1, AckRateBps: 1, Latency: -time.Second}); err == nil {
		t.Fatal("accepted negative latency")
	}
	l, _ := NewLink(DefaultLinkConfig())
	if err := l.ScheduleLinkFault(LinkFault{Drop: 1.5}); err == nil {
		t.Fatal("accepted probability > 1")
	}
	if err := l.ScheduleLinkFault(LinkFault{Start: -1}); err == nil {
		t.Fatal("accepted negative start")
	}
	if err := l.ScheduleBlackout(Blackout{Duration: 0}); err == nil {
		t.Fatal("accepted zero-length blackout")
	}
}

func TestLinkBandwidthBudget(t *testing.T) {
	l, _ := NewLink(LinkConfig{RateBps: 1000, AckRateBps: 1000})
	raw := mustFrame(t, 0, 0, "0123456789") // 28 bytes encoded

	// The bucket starts empty: nothing is affordable at t=0.
	if l.CanSendDown(len(raw), 0) {
		t.Fatal("empty bucket admitted a frame")
	}
	// At 1000 B/s the 28-byte frame is affordable after 28 ms.
	if l.CanSendDown(len(raw), 27*time.Millisecond) {
		t.Fatal("frame admitted before its byte budget accrued")
	}
	if !l.CanSendDown(len(raw), 28*time.Millisecond) {
		t.Fatal("frame still denied after its byte budget accrued")
	}
	if !l.SendDown(raw, 28*time.Millisecond) {
		t.Fatal("SendDown refused an affordable frame")
	}
	// The spend drains the bucket: a second frame must wait again.
	if l.SendDown(raw, 28*time.Millisecond) {
		t.Fatal("second frame sent without budget")
	}
	// The bucket caps at one MaxFrameLen of burst.
	if l.CanSendDown(MaxFrameLen+1, time.Hour) {
		t.Fatal("burst exceeded MaxFrameLen")
	}
	if !l.CanSendDown(MaxFrameLen, time.Hour) {
		t.Fatal("full burst denied after a long idle")
	}
}

func TestLinkLatencyAndOrdering(t *testing.T) {
	l, _ := NewLink(LinkConfig{RateBps: 1 << 20, AckRateBps: 1 << 20, Latency: 100 * time.Millisecond})
	a := mustFrame(t, 0, 0, "a")
	b := mustFrame(t, 0, 1, "b")
	if !l.SendDown(a, 10*time.Millisecond) || !l.SendDown(b, 20*time.Millisecond) {
		t.Fatal("sends refused")
	}
	if got := l.RecvDown(100 * time.Millisecond); got != nil {
		t.Fatalf("delivery before latency elapsed: %d frames", len(got))
	}
	got := l.RecvDown(110 * time.Millisecond)
	if len(got) != 1 || !bytes.Equal(got[0], a) {
		t.Fatalf("first delivery wrong: %d frames", len(got))
	}
	got = l.RecvDown(200 * time.Millisecond)
	if len(got) != 1 || !bytes.Equal(got[0], b) {
		t.Fatalf("second delivery wrong: %d frames", len(got))
	}
}

func TestLinkDropWindow(t *testing.T) {
	l, _ := NewLink(LinkConfig{RateBps: 1 << 20, AckRateBps: 1 << 20, Seed: 1})
	if err := l.ScheduleLinkFault(LinkFault{Start: 0, Duration: time.Second, Drop: 1}); err != nil {
		t.Fatal(err)
	}
	raw := mustFrame(t, 0, 0, "x")
	if !l.SendDown(raw, 100*time.Millisecond) {
		t.Fatal("send refused")
	}
	if got := l.RecvDown(time.Hour); got != nil {
		t.Fatalf("dropped frame delivered: %d", len(got))
	}
	if l.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d", l.Stats().Dropped)
	}
	// Outside the window the frame goes through.
	if !l.SendDown(raw, 2*time.Second) {
		t.Fatal("post-window send refused")
	}
	if got := l.RecvDown(time.Hour); len(got) != 1 {
		t.Fatalf("post-window frame lost: %d", len(got))
	}
}

func TestLinkCorruptWindowIsCaughtByCRC(t *testing.T) {
	l, _ := NewLink(LinkConfig{RateBps: 1 << 20, AckRateBps: 1 << 20, Seed: 7})
	l.ScheduleLinkFault(LinkFault{Start: 0, Corrupt: 1}) // never closes
	raw := mustFrame(t, 0, 0, "payload under test")
	if !l.SendDown(raw, time.Millisecond) {
		t.Fatal("send refused")
	}
	got := l.RecvDown(time.Hour)
	if len(got) != 1 {
		t.Fatalf("corrupted frame should still arrive, got %d", len(got))
	}
	if bytes.Equal(got[0], raw) {
		t.Fatal("frame not actually corrupted")
	}
	if _, _, err := DecodeFrame(got[0]); err == nil {
		t.Fatal("single-bit corruption slipped past the CRC")
	}
	if l.Stats().Corrupted != 1 {
		t.Fatalf("Corrupted = %d", l.Stats().Corrupted)
	}
}

func TestLinkReorderWindow(t *testing.T) {
	l, _ := NewLink(LinkConfig{RateBps: 1 << 20, AckRateBps: 1 << 20, Latency: 100 * time.Millisecond, Seed: 3})
	l.ScheduleLinkFault(LinkFault{Start: 0, Duration: 50 * time.Millisecond, Reorder: 1})
	a := mustFrame(t, 0, 0, "a") // inside the window: held one extra latency
	b := mustFrame(t, 0, 1, "b") // outside: normal latency
	l.SendDown(a, 10*time.Millisecond)
	l.SendDown(b, 60*time.Millisecond)
	got := l.RecvDown(170 * time.Millisecond) // b due at 160, a due at 210
	if len(got) != 1 || !bytes.Equal(got[0], b) {
		t.Fatalf("expected b first, got %d frames", len(got))
	}
	got = l.RecvDown(220 * time.Millisecond)
	if len(got) != 1 || !bytes.Equal(got[0], a) {
		t.Fatalf("expected delayed a, got %d frames", len(got))
	}
	if l.Stats().Reordered != 1 {
		t.Fatalf("Reordered = %d", l.Stats().Reordered)
	}
}

func TestLinkBlackoutLosesBothDirections(t *testing.T) {
	l, _ := NewLink(LinkConfig{RateBps: 1 << 20, AckRateBps: 1 << 20})
	l.ScheduleBlackout(Blackout{Start: 0, Duration: time.Second})
	if !l.InBlackout(500 * time.Millisecond) {
		t.Fatal("InBlackout false inside the window")
	}
	if l.InBlackout(time.Second) {
		t.Fatal("InBlackout true at the window's end")
	}
	raw := mustFrame(t, 0, 0, "x")
	ack, _ := EncodeAck(1, 0, 1)
	if !l.SendDown(raw, 500*time.Millisecond) || !l.SendUp(ack, 500*time.Millisecond) {
		t.Fatal("blackout sends should consume the frame")
	}
	if l.RecvDown(time.Hour) != nil || l.RecvUp(time.Hour) != nil {
		t.Fatal("blackout frames delivered")
	}
	if l.Stats().BlackoutLost != 2 {
		t.Fatalf("BlackoutLost = %d", l.Stats().BlackoutLost)
	}
}

func TestLinkFaultWindowsStack(t *testing.T) {
	l, _ := NewLink(LinkConfig{RateBps: 1, AckRateBps: 1})
	l.ScheduleLinkFault(LinkFault{Start: 0, Drop: 0.7})
	l.ScheduleLinkFault(LinkFault{Start: 0, Drop: 0.7})
	drop, _, _ := l.fault(0)
	if drop != 1 {
		t.Fatalf("stacked drop = %v, want capped at 1", drop)
	}
}

// TestLinkDeterminism runs an identical traffic pattern through two
// same-seeded links and demands identical outcomes — the property every
// campaign's paired arms rely on.
func TestLinkDeterminism(t *testing.T) {
	run := func() (LinkStats, [][]byte) {
		cfg := LinkConfig{RateBps: 4096, AckRateBps: 1024, Latency: 50 * time.Millisecond, Seed: 99}
		l, err := NewLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l.ScheduleLinkFault(LinkFault{Start: 0, Duration: 10 * time.Second, Drop: 0.3, Corrupt: 0.2, Reorder: 0.1})
		var delivered [][]byte
		for i := 0; i < 200; i++ {
			now := time.Duration(i) * 50 * time.Millisecond
			raw := mustFrame(t, uint8(i%NumVC), uint32(i), "deterministic payload")
			l.SendDown(raw, now)
			delivered = append(delivered, l.RecvDown(now)...)
		}
		delivered = append(delivered, l.RecvDown(time.Hour)...)
		return l.Stats(), delivered
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(d1) != len(d2) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if !bytes.Equal(d1[i], d2[i]) {
			t.Fatalf("delivery %d diverged", i)
		}
	}
}

func TestLinkWindowEvents(t *testing.T) {
	reg := telemetry.NewRegistry(32)
	l, err := NewLink(LinkConfig{RateBps: 1 << 20, AckRateBps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	l.SetInstruments(NewInstruments(reg))
	if err := l.ScheduleLinkFault(LinkFault{Start: time.Second, Duration: time.Second, Drop: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := l.ScheduleBlackout(Blackout{Start: 3 * time.Second, Duration: time.Second}); err != nil {
		t.Fatal(err)
	}
	// Traffic before, inside, and after each window: the transitions
	// are observed lazily by the frames that meet them.
	for i, at := range []time.Duration{
		500 * time.Millisecond, 1500 * time.Millisecond, 2500 * time.Millisecond,
		3500 * time.Millisecond, 4500 * time.Millisecond,
	} {
		l.SendDown(mustFrame(t, 0, uint32(i), "probe"), at)
	}
	var got []string
	for _, ev := range reg.EventsSince(0) {
		if ev.Kind != telemetry.KindLinkFault {
			continue
		}
		got = append(got, ev.Fields["window"].(string)+":"+ev.Fields["phase"].(string))
	}
	want := []string{"fault:onset", "fault:clear", "blackout:onset", "blackout:clear"}
	if len(got) != len(want) {
		t.Fatalf("link_fault events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("link_fault events = %v, want %v", got, want)
		}
	}
}
