package downlink

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: FrameData, Link: 1, VC: 0, Seq: 0, Payload: []byte("hello")},
		{Type: FrameData, Link: 0xBEEF, VC: 3, Seq: 0xFFFFFFFF, Payload: nil},
		{Type: FrameData, Link: 7, VC: 2, Seq: 42, Payload: bytes.Repeat([]byte{0xA5}, MaxPayload)},
		{Type: FrameAck, Link: 9, VC: 1, Seq: 5, Payload: []byte{5, 0, 0, 0}},
		{Type: FrameBeacon, Link: 2, VC: 0, Seq: 11, Payload: []byte{1, 9, 0, 0, 0}},
	}
	for _, want := range cases {
		raw, err := EncodeFrame(want)
		if err != nil {
			t.Fatalf("EncodeFrame(%+v): %v", want, err)
		}
		if len(raw) != HeaderLen+len(want.Payload)+TrailerLen {
			t.Fatalf("encoded length %d, want %d", len(raw), HeaderLen+len(want.Payload)+TrailerLen)
		}
		got, n, err := DecodeFrame(raw)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if n != len(raw) {
			t.Fatalf("consumed %d of %d bytes", n, len(raw))
		}
		if got.Type != want.Type || got.Link != want.Link || got.VC != want.VC || got.Seq != want.Seq {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("payload mismatch: got % x want % x", got.Payload, want.Payload)
		}
	}
}

func TestDecodeFrameStream(t *testing.T) {
	// Two frames back to back parse in sequence off one buffer.
	a, _ := EncodeFrame(Frame{Type: FrameData, Link: 1, VC: 0, Seq: 0, Payload: []byte("a")})
	b, _ := EncodeFrame(Frame{Type: FrameData, Link: 1, VC: 1, Seq: 7, Payload: []byte("bb")})
	buf := append(append([]byte{}, a...), b...)

	f1, n1, err := DecodeFrame(buf)
	if err != nil || n1 != len(a) || f1.VC != 0 {
		t.Fatalf("first frame: %+v n=%d err=%v", f1, n1, err)
	}
	f2, n2, err := DecodeFrame(buf[n1:])
	if err != nil || n2 != len(b) || f2.Seq != 7 {
		t.Fatalf("second frame: %+v n=%d err=%v", f2, n2, err)
	}
}

func TestEncodeFrameRejects(t *testing.T) {
	if _, err := EncodeFrame(Frame{Type: frameTypeCount}); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: %v", err)
	}
	if _, err := EncodeFrame(Frame{VC: NumVC}); !errors.Is(err, ErrBadVC) {
		t.Fatalf("bad vc: %v", err)
	}
	if _, err := EncodeFrame(Frame{Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrBadLength) {
		t.Fatalf("oversize payload: %v", err)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	good, _ := EncodeFrame(Frame{Type: FrameData, Link: 3, VC: 1, Seq: 9, Payload: []byte("payload")})

	t.Run("truncated", func(t *testing.T) {
		_, n, err := DecodeFrame(good[:HeaderLen+TrailerLen-1])
		if !errors.Is(err, ErrTruncated) || n != 0 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		_, n, err = DecodeFrame(good[:len(good)-1])
		if !errors.Is(err, ErrTruncated) || n != 0 {
			t.Fatalf("short body: n=%d err=%v", n, err)
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xFF
		if _, n, err := DecodeFrame(bad); !errors.Is(err, ErrBadMagic) || n != 0 {
			t.Fatalf("n=%d err=%v", n, err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2] = version + 1
		if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err=%v", err)
		}
	})
	t.Run("crc", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[HeaderLen] ^= 0x01 // flip one payload bit
		_, n, err := DecodeFrame(bad)
		if !errors.Is(err, ErrBadCRC) {
			t.Fatalf("err=%v", err)
		}
		// CRC failures still consume the whole frame so a stream parser
		// can resynchronize past it.
		if n != len(good) {
			t.Fatalf("consumed %d, want %d", n, len(good))
		}
	})
	t.Run("length", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[12], bad[13] = 0xFF, 0xFF
		if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrBadLength) {
			t.Fatalf("err=%v", err)
		}
	})
}

func TestAckRoundTrip(t *testing.T) {
	raw, err := EncodeAck(5, 2, 1234)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameAck || f.Link != 5 || f.VC != 2 {
		t.Fatalf("ack frame %+v", f)
	}
	next, err := AckValue(f)
	if err != nil || next != 1234 {
		t.Fatalf("AckValue = %d, %v", next, err)
	}
	if _, err := AckValue(Frame{Type: FrameData}); err == nil {
		t.Fatal("AckValue accepted a data frame")
	}
	if _, err := AckValue(Frame{Type: FrameAck, Payload: []byte{1}}); err == nil {
		t.Fatal("AckValue accepted a short payload")
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	raw, err := EncodeBeacon(8, 3, true, 77)
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	deg, pending, err := BeaconValue(f)
	if err != nil || !deg || pending != 77 {
		t.Fatalf("BeaconValue = %v, %d, %v", deg, pending, err)
	}
	if _, _, err := BeaconValue(Frame{Type: FrameData}); err == nil {
		t.Fatal("BeaconValue accepted a data frame")
	}
}

func TestFrameTypeString(t *testing.T) {
	if FrameData.String() != "data" || FrameAck.String() != "ack" || FrameBeacon.String() != "beacon" {
		t.Fatal("frame type names changed")
	}
	if FrameType(99).String() != "type(99)" {
		t.Fatalf("unknown type: %s", FrameType(99).String())
	}
}
