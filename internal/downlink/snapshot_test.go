package downlink

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// loadedRecorder builds a recorder with records across several channels,
// some acknowledged history, and an eviction, so snapshots cover every
// state field.
func loadedRecorder(t testing.TB) *Recorder {
	t.Helper()
	r, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // 12 > capacity: forces evictions
		vc := uint8(i % NumVC)
		payload := []byte{byte(i), byte(i * 3), 0xAB}
		if _, _, err := r.Enqueue(vc, payload, time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	r.Ack(0, 1) // acked records leave the ring; cursors stay advanced
	return r
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := loadedRecorder(t)
	page := r.Snapshot()

	fresh, err := NewRecorder(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(page); err != nil {
		t.Fatalf("restore of a page we just snapshotted: %v", err)
	}
	if fresh.Len() != r.Len() || fresh.Evicted() != r.Evicted() {
		t.Fatalf("restored len/evicted = %d/%d, want %d/%d",
			fresh.Len(), fresh.Evicted(), r.Len(), r.Evicted())
	}
	for vc := uint8(0); vc < NumVC; vc++ {
		want, got := r.Pending(vc), fresh.Pending(vc)
		if len(want) != len(got) {
			t.Fatalf("vc %d: %d pending, want %d", vc, len(got), len(want))
		}
		for i := range want {
			if got[i].Seq != want[i].Seq || got[i].Enqueued != want[i].Enqueued ||
				!bytes.Equal(got[i].Payload, want[i].Payload) {
				t.Fatalf("vc %d record %d mutated: %+v -> %+v", vc, i, want[i], got[i])
			}
		}
	}
	// Canonical encoding: restore-then-snapshot is byte-identical.
	if !bytes.Equal(fresh.Snapshot(), page) {
		t.Fatal("restore-then-snapshot is not byte-identical")
	}
	// Sequence cursors survive: a new enqueue must not reuse a seq.
	rec, _, err := fresh.Enqueue(0, []byte("next"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq < 1 {
		t.Fatalf("post-restore seq %d reuses acked history", rec.Seq)
	}
}

func TestRestoreEmptySnapshot(t *testing.T) {
	empty, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	page := empty.Snapshot()
	r := loadedRecorder(t)
	if err := r.Restore(page); err != nil {
		t.Fatalf("restore of an empty page: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("recorder holds %d records after restoring an empty page", r.Len())
	}
}

// TestRestoreCorruptPageDegradesToEmpty is the recorder's core safety
// contract: any damaged page — torn, bit-flipped, truncated, foreign —
// is detected and the recorder left verifiably empty. Wrong replay of a
// mission record is worse than no replay.
func TestRestoreCorruptPageDegradesToEmpty(t *testing.T) {
	good := loadedRecorder(t).Snapshot()
	rng := rand.New(rand.NewSource(5))
	pages := map[string][]byte{
		"torn":      CorruptSnapshot(good, rng, "torn"),
		"bitflip":   CorruptSnapshot(good, rng, "bitflip"),
		"truncate":  good[:len(good)-3],
		"empty":     {},
		"foreign":   append([]byte("RSRC0001"), good[8:]...),
		"badlength": append(append([]byte(nil), good[:8]...), 0xFF, 0xFF, 0xFF, 0xFF),
	}
	for name, page := range pages {
		if bytes.Equal(page, good) {
			t.Fatalf("%s: corruption was a no-op", name)
		}
		r := loadedRecorder(t)
		err := r.Restore(page)
		if err == nil {
			t.Fatalf("%s: corrupt page accepted", name)
		}
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrSnapshotCorrupt", name, err)
		}
		if r.Len() != 0 || r.Evicted() != 0 {
			t.Fatalf("%s: rejected page left len=%d evicted=%d", name, r.Len(), r.Evicted())
		}
		fresh, _ := NewRecorder(8)
		if !bytes.Equal(r.Snapshot(), fresh.Snapshot()) {
			t.Fatalf("%s: recorder not verifiably empty after rejection", name)
		}
	}
}

// TestRestoreRejectsOverCapacityPage: a page from a larger recorder must
// not overfill a smaller one — capacity is a boot-time invariant.
func TestRestoreRejectsOverCapacityPage(t *testing.T) {
	big, err := NewRecorder(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, _, err := big.Enqueue(0, []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	small, err := NewRecorder(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Restore(big.Snapshot()); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("over-capacity page: err = %v, want ErrSnapshotCorrupt", err)
	}
	if small.Len() != 0 {
		t.Fatal("over-capacity page left records behind")
	}
}

func TestCorruptSnapshotModesDeterministic(t *testing.T) {
	good := loadedRecorder(t).Snapshot()
	for _, mode := range []string{"torn", "bitflip", "truncate"} {
		a := CorruptSnapshot(good, rand.New(rand.NewSource(9)), mode)
		b := CorruptSnapshot(good, rand.New(rand.NewSource(9)), mode)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s damage not deterministic for equal seeds", mode)
		}
	}
	if got := CorruptSnapshot(nil, rand.New(rand.NewSource(9)), "torn"); len(got) != 0 {
		t.Fatalf("empty page grew to %d bytes", len(got))
	}
}

// FuzzRecorderSnapshot throws arbitrary bytes at the NVRAM trust
// boundary. Whatever the flash hands back after an OS-level fault, the
// recorder must never panic, never hold state from a rejected page, and
// only accept pages that re-encode byte-identically (no stale or
// invented frames can hide in a non-canonical encoding).
func FuzzRecorderSnapshot(f *testing.F) {
	r, err := NewRecorder(8)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := r.Enqueue(uint8(i%NumVC), []byte{byte(i), 0x5A}, time.Duration(i)*time.Millisecond); err != nil {
			f.Fatal(err)
		}
	}
	good := r.Snapshot()
	f.Add(good)
	f.Add(good[:len(good)/2]) // truncated
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped) // bit-flipped payload
	foreign := append([]byte(nil), good...)
	copy(foreign, "RSRC0001") // resultcache-record magic, wrong surface
	f.Add(foreign)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := NewRecorder(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := rec.Restore(data); err != nil {
			if !errors.Is(err, ErrSnapshotCorrupt) {
				t.Fatalf("rejection %v does not wrap ErrSnapshotCorrupt", err)
			}
			fresh, _ := NewRecorder(8)
			if rec.Len() != 0 || !bytes.Equal(rec.Snapshot(), fresh.Snapshot()) {
				t.Fatal("rejected page left the recorder non-empty")
			}
			return
		}
		if !bytes.Equal(rec.Snapshot(), data) {
			t.Fatalf("accepted page is not canonical:\n in  % x\n out % x", data, rec.Snapshot())
		}
	})
}
