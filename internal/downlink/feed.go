package downlink

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Feed is the flight-side TCP client for a ground station: a
// Transmitter whose radio is a real socket. Frames still pass through a
// (clean, generous) Link so the ARQ machinery, the flight-recorder ring
// and beacon mode behave exactly as in simulation, but the down pipe's
// output is written to the connection and ACKs are read back from it.
//
// TCP is reliable and ordered, so the feed reads exactly one ACK,
// synchronously, for every data frame it writes: the pump stays
// deterministic and needs no wall-clock waits. Simulated time is still
// the caller's: every method takes an explicit now.
type Feed struct {
	conn net.Conn
	br   *bufio.Reader
	link *Link
	tx   *Transmitter
}

// DialFeed connects to a ground station and builds the flight pipeline
// for the given link id.
func DialFeed(addr string, link uint16) (*Feed, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("downlink: dialing ground station: %w", err)
	}
	// The socket provides the loss model (none); the in-sim link only
	// needs to never be the bottleneck.
	lcfg := LinkConfig{RateBps: 1 << 30, AckRateBps: 1 << 30}
	l, err := NewLink(lcfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	tx, err := NewTransmitter(l, DefaultTxConfig(link))
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Feed{conn: conn, br: bufio.NewReaderSize(conn, 4*MaxFrameLen), link: l, tx: tx}, nil
}

// Enqueue records a payload on a virtual channel (0 highest priority).
func (f *Feed) Enqueue(vc uint8, payload []byte, now time.Duration) error {
	return f.tx.Enqueue(vc, payload, now)
}

// SetBeacon switches beacon-mode degradation (guard step-down hook).
func (f *Feed) SetBeacon(on bool, now time.Duration, reason string) {
	f.tx.SetBeacon(on, now, reason)
}

// Stats exposes the transmitter's counters.
func (f *Feed) Stats() TxStats { return f.tx.Stats() }

// Pending reports frames not yet acknowledged by the ground.
func (f *Feed) Pending() int { return f.tx.Pending() }

// Tick advances the ARQ machine one step at simulated time now: frames
// the transmitter releases go out over the socket, and each data
// frame's ACK is read back synchronously and fed to the transmitter.
func (f *Feed) Tick(now time.Duration) error {
	if err := f.tx.Tick(now); err != nil {
		return err
	}
	expectAcks := 0
	for _, raw := range f.link.RecvDown(now) {
		fr, _, err := DecodeFrame(raw)
		if err != nil {
			return fmt.Errorf("downlink: feed produced an undecodable frame: %w", err)
		}
		if _, err := f.conn.Write(raw); err != nil {
			return fmt.Errorf("downlink: writing to ground station: %w", err)
		}
		if fr.Type == FrameData {
			expectAcks++ // beacons are unacknowledged
		}
	}
	for i := 0; i < expectAcks; i++ {
		ack, err := ReadFrame(f.br)
		if err != nil {
			return fmt.Errorf("downlink: reading ACK: %w", err)
		}
		f.link.SendUp(ack, now)
	}
	return nil
}

// Drain keeps ticking past the mission until every queued frame is
// acknowledged, advancing simulated time by step up to the deadline.
// It returns the time of the last tick.
func (f *Feed) Drain(from, deadline, step time.Duration) (time.Duration, error) {
	now := from
	for ; now <= deadline; now += step {
		if err := f.Tick(now); err != nil {
			return now, err
		}
		if f.tx.Done() {
			return now, nil
		}
	}
	if !f.tx.Done() {
		return now, fmt.Errorf("downlink: %d frames still unacknowledged at drain deadline", f.tx.Pending())
	}
	return now, nil
}

// Close shuts the socket. Call Drain first if losing queued frames
// matters.
func (f *Feed) Close() error { return f.conn.Close() }
