package downlink

import (
	"fmt"
	"testing"
	"time"

	"radshield/internal/telemetry"
)

// newTestPair wires a transmitter and a station over one lossy link.
func newTestPair(t *testing.T, lcfg LinkConfig, txcfg func(*TxConfig)) (*Transmitter, *Station, *Link) {
	t.Helper()
	link, err := NewLink(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTxConfig(1)
	if txcfg != nil {
		txcfg(&cfg)
	}
	tx, err := NewTransmitter(link, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tx, NewStation(DefaultStationConfig()), link
}

// pump advances one simulated instant: the transmitter ticks, frames
// arriving at the ground are ingested, and the station's ACKs head back
// up the link.
func pump(t *testing.T, tx *Transmitter, st *Station, link *Link, now time.Duration) {
	t.Helper()
	if err := tx.Tick(now); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, raw := range link.RecvDown(now) {
		buf = append(buf, raw...)
	}
	if len(buf) == 0 {
		return
	}
	for _, ack := range st.Ingest(buf, now) {
		link.SendUp(ack, now)
	}
}

// drainUntil pumps in fixed steps until the transmitter's backlog is
// fully acknowledged, failing the test at the deadline.
func drainUntil(t *testing.T, tx *Transmitter, st *Station, link *Link, from, deadline, step time.Duration) time.Duration {
	t.Helper()
	for now := from; now <= deadline; now += step {
		pump(t, tx, st, link, now)
		if tx.Done() {
			return now
		}
	}
	t.Fatalf("backlog not drained by %v: pending=%d stats=%+v link=%+v",
		deadline, tx.Pending(), tx.Stats(), link.Stats())
	return 0
}

func TestARQCleanLinkDeliversInOrder(t *testing.T) {
	// Generous rates in both directions: the default AckRateBps starves
	// the up pipe early on (the bucket starts empty), which loses ACKs
	// and provokes retransmits this test asserts never happen.
	tx, st, link := newTestPair(t, LinkConfig{RateBps: 1 << 16, AckRateBps: 1 << 16, Latency: 50 * time.Millisecond}, nil)
	var want []string
	for i := 0; i < 20; i++ {
		vc := uint8(i % NumVC)
		p := fmt.Sprintf("vc%d-msg%d", vc, i)
		if vc == 0 {
			want = append(want, p)
		}
		if err := tx.Enqueue(vc, []byte(p), 0); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	st.cfg.Sink = func(link uint16, vc uint8, seq uint32, payload []byte) {
		if vc == 0 {
			got = append(got, string(payload))
		}
	}
	drainUntil(t, tx, st, link, 10*time.Millisecond, 30*time.Second, 10*time.Millisecond)
	for vc := uint8(0); vc < NumVC; vc++ {
		if n := st.Delivered(1, vc); n != 5 {
			t.Fatalf("vc%d delivered %d, want 5", vc, n)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("sink saw %d vc0 payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vc0 payload %d = %q, want %q (order broken)", i, got[i], want[i])
		}
	}
	if s := tx.Stats(); s.Retransmits != 0 || s.Timeouts != 0 {
		t.Fatalf("clean link retransmitted: %+v", s)
	}
}

// TestARQDuplicateAck replays a stale cumulative ACK and checks the
// window neither regresses nor double-releases records.
func TestARQDuplicateAck(t *testing.T) {
	tx, st, link := newTestPair(t, LinkConfig{RateBps: 1 << 16, AckRateBps: 1 << 16, Latency: 10 * time.Millisecond}, nil)
	for i := 0; i < 4; i++ {
		tx.Enqueue(0, []byte{byte(i)}, 0)
	}
	end := drainUntil(t, tx, st, link, 10*time.Millisecond, 10*time.Second, 10*time.Millisecond)
	acked := tx.Stats().Acked

	// Replay an old ACK (next-expected 2 when all 4 are released).
	stale, err := EncodeAck(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	link.SendUp(stale, end+time.Second)
	if err := tx.Tick(end + 2*time.Second); err != nil {
		t.Fatal(err)
	}
	s := tx.Stats()
	if s.DupAcks == 0 {
		t.Fatal("stale ACK not counted as duplicate")
	}
	if s.Acked != acked {
		t.Fatalf("stale ACK released records: %d -> %d", acked, s.Acked)
	}
	// The channel still works afterwards.
	tx.Enqueue(0, []byte("after"), end+2*time.Second)
	drainUntil(t, tx, st, link, end+2*time.Second+10*time.Millisecond, end+20*time.Second, 10*time.Millisecond)
	if st.Delivered(1, 0) != 5 {
		t.Fatalf("post-dup delivery broken: %d", st.Delivered(1, 0))
	}
}

// TestARQRetransmitOfRetransmit forces two consecutive losses of the
// same frame: the second retransmission must go out with a doubled
// backoff and still deliver exactly once.
func TestARQRetransmitOfRetransmit(t *testing.T) {
	tx, st, link := newTestPair(t,
		LinkConfig{RateBps: 1 << 16, AckRateBps: 1 << 16, Latency: 10 * time.Millisecond, Seed: 5},
		func(c *TxConfig) { c.RTO = time.Second; c.RTOMax = 30 * time.Second })
	// Every frame sent in the first 3.5 s is dropped: the original send
	// (~t=10ms) and the first retransmission (~t=1s) both die; the
	// second retransmission (~t=3s, after the doubled 2 s backoff) dies
	// too; the third (~t=7s) finally crosses.
	if err := link.ScheduleLinkFault(LinkFault{Start: 0, Duration: 3500 * time.Millisecond, Drop: 1}); err != nil {
		t.Fatal(err)
	}
	tx.Enqueue(0, []byte("persistent"), 0)
	drainUntil(t, tx, st, link, 10*time.Millisecond, time.Minute, 10*time.Millisecond)

	s := tx.Stats()
	if s.Timeouts < 2 {
		t.Fatalf("Timeouts = %d, want ≥ 2 (retransmit of a retransmit)", s.Timeouts)
	}
	if s.Retransmits < 2 {
		t.Fatalf("Retransmits = %d, want ≥ 2", s.Retransmits)
	}
	if st.Delivered(1, 0) != 1 {
		t.Fatalf("delivered %d copies, want exactly 1", st.Delivered(1, 0))
	}
	// Deterministic doubling: 1s, 2s, 4s, ... capped at RTOMax.
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		if got := tx.rto(i); got != want {
			t.Fatalf("rto(%d) = %v, want %v", i, got, want)
		}
	}
	if got := tx.rto(40); got != 30*time.Second {
		t.Fatalf("rto cap = %v, want 30s", got)
	}
}

// TestARQCorruptUntilBlackoutEnds is the pathological pass: every
// attempt is bit-corrupted (CRC rejects it on the ground), then the
// link goes fully black, and only after the blackout clears does a
// clean attempt land. The frame must survive all of it.
func TestARQCorruptUntilBlackoutEnds(t *testing.T) {
	tx, _, link := newTestPair(t,
		LinkConfig{RateBps: 1 << 16, AckRateBps: 1 << 16, Latency: 10 * time.Millisecond, Seed: 11},
		func(c *TxConfig) { c.RTO = 500 * time.Millisecond; c.RTOMax = 2 * time.Second })
	reg := telemetry.NewRegistry(0)
	scfg := DefaultStationConfig()
	scfg.Instruments = NewStationInstruments(reg)
	st := NewStation(scfg)
	rejectedTotal := scfg.Instruments.Rejected
	// Corrupt every frame until the blackout opens; the blackout then
	// swallows everything until t=8s.
	if err := link.ScheduleLinkFault(LinkFault{Start: 0, Duration: 4 * time.Second, Corrupt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := link.ScheduleBlackout(Blackout{Start: 4 * time.Second, Duration: 4 * time.Second}); err != nil {
		t.Fatal(err)
	}
	tx.Enqueue(0, []byte("survivor"), 0)

	var delivered []string
	st.cfg.Sink = func(_ uint16, _ uint8, _ uint32, p []byte) { delivered = append(delivered, string(p)) }
	drainUntil(t, tx, st, link, 10*time.Millisecond, time.Minute, 10*time.Millisecond)

	if len(delivered) != 1 || delivered[0] != "survivor" {
		t.Fatalf("delivered %q, want exactly one intact copy", delivered)
	}
	ls := link.Stats()
	if ls.Corrupted == 0 {
		t.Fatal("corrupt window never fired")
	}
	if ls.BlackoutLost == 0 {
		t.Fatal("blackout never swallowed an attempt")
	}
	if tx.Stats().Retransmits == 0 {
		t.Fatal("frame claimed to deliver without retransmission")
	}
	// Corrupted copies reached the station and were rejected by CRC.
	// (They stay unattributed in the per-link report — no valid frame
	// had established the link yet — so check the global counter.)
	if rejectedTotal.Value() == 0 {
		t.Fatal("corrupted frames were never rejected at the station")
	}
}

// TestARQRingOverwriteOfUnackedFrames fills a tiny recorder during a
// blackout so bulk frames — already transmitted but never acknowledged
// — get evicted, then verifies (a) priority 0 survives untouched,
// (b) the transmitter's window realigns, and (c) the station skips the
// unrecoverable gap via the window-base flag instead of wedging.
func TestARQRingOverwriteOfUnackedFrames(t *testing.T) {
	tx, st, link := newTestPair(t,
		LinkConfig{RateBps: 1 << 16, AckRateBps: 1 << 16, Latency: 10 * time.Millisecond},
		func(c *TxConfig) { c.RingCap = 4; c.RTO = 500 * time.Millisecond })
	// No contact for the first 10 s: frames transmit into the void.
	if err := link.ScheduleBlackout(Blackout{Start: 0, Duration: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	tx.Enqueue(0, []byte("critical"), 0)
	tx.Enqueue(3, []byte("bulk0"), 0)
	tx.Enqueue(3, []byte("bulk1"), 0)
	tx.Enqueue(3, []byte("bulk2"), 0)
	// Let the transmitter send the backlog into the blackout so the
	// bulk channel has sent-but-unacked frames.
	pump(t, tx, st, link, 100*time.Millisecond)
	if tx.Stats().Sent == 0 {
		t.Fatal("nothing transmitted before the overwrite")
	}
	// The ring is at capacity 4: two more bulk enqueues overwrite the
	// two oldest unacked bulk frames.
	tx.Enqueue(3, []byte("bulk3"), 200*time.Millisecond)
	tx.Enqueue(3, []byte("bulk4"), 200*time.Millisecond)
	if tx.Evicted() != 2 {
		t.Fatalf("Evicted = %d, want 2", tx.Evicted())
	}
	if tx.PendingVC(0) != 1 {
		t.Fatal("priority-0 record was evicted")
	}

	drainUntil(t, tx, st, link, time.Second, 2*time.Minute, 50*time.Millisecond)

	if st.Delivered(1, 0) != 1 {
		t.Fatalf("vc0 delivered %d, want 1", st.Delivered(1, 0))
	}
	// bulk0 and bulk1 are gone forever; bulk2..4 must arrive, and the
	// station must record the two-frame skip rather than lose it
	// silently.
	rep := st.Report()
	if len(rep) != 1 {
		t.Fatalf("links = %d", len(rep))
	}
	vc3 := rep[0].VC[3]
	if vc3.Delivered != 3 {
		t.Fatalf("vc3 delivered %d, want 3 (bulk2..bulk4)", vc3.Delivered)
	}
	if vc3.Skipped != 2 {
		t.Fatalf("vc3 skipped %d, want 2 (the evicted frames)", vc3.Skipped)
	}
}

// TestARQPowerCycleMidTransfer reboots the transmitter with half the
// backlog acknowledged: volatile window state dies, the NVRAM recorder
// survives, and everything still unacked is retransmitted.
func TestARQPowerCycleMidTransfer(t *testing.T) {
	tx, st, link := newTestPair(t,
		LinkConfig{RateBps: 64, AckRateBps: 64, Latency: 100 * time.Millisecond}, nil)
	for i := 0; i < 10; i++ {
		tx.Enqueue(0, []byte(fmt.Sprintf("rec%02d", i)), 0)
	}
	// Run until part of the backlog — not all of it — is acknowledged.
	var now time.Duration
	for now = 50 * time.Millisecond; now < 30*time.Second; now += 50 * time.Millisecond {
		pump(t, tx, st, link, now)
		if tx.Stats().Acked >= 3 {
			break
		}
	}
	if tx.Done() || tx.Pending() == 10 {
		t.Fatalf("want a half-drained backlog, pending=%d", tx.Pending())
	}
	pendingBefore := tx.Pending()

	tx.PowerCycle(now)
	if tx.PowerCycles() != 1 {
		t.Fatal("power cycle not counted")
	}
	if tx.Pending() != pendingBefore {
		t.Fatalf("reboot lost recorder contents: %d -> %d", pendingBefore, tx.Pending())
	}

	drainUntil(t, tx, st, link, now+50*time.Millisecond, now+2*time.Minute, 50*time.Millisecond)
	if st.Delivered(1, 0) != 10 {
		t.Fatalf("delivered %d, want all 10", st.Delivered(1, 0))
	}
}

// TestARQBeaconMode checks degraded mode: only channel 0 flows, the
// heartbeat carries the backlog, and leaving beacon mode resumes bulk.
func TestARQBeaconMode(t *testing.T) {
	tx, st, link := newTestPair(t,
		LinkConfig{RateBps: 1 << 16, AckRateBps: 1 << 16, Latency: 10 * time.Millisecond},
		func(c *TxConfig) { c.BeaconEvery = time.Second })
	tx.Enqueue(0, []byte("event"), 0)
	tx.Enqueue(3, []byte("bulk"), 0)

	tx.SetBeacon(true, 0, "guard_stepdown")
	if !tx.Beacon() {
		t.Fatal("beacon mode not engaged")
	}
	var now time.Duration
	for now = 10 * time.Millisecond; now < 5*time.Second; now += 10 * time.Millisecond {
		pump(t, tx, st, link, now)
	}
	if st.Delivered(1, 0) != 1 {
		t.Fatalf("vc0 delivered %d in beacon mode, want 1", st.Delivered(1, 0))
	}
	if st.Delivered(1, 3) != 0 {
		t.Fatal("bulk flowed during beacon mode")
	}
	rep := st.Report()
	if rep[0].Beacons == 0 {
		t.Fatal("no heartbeat reached the ground")
	}
	if tx.Stats().Beacons == 0 {
		t.Fatal("transmitter sent no beacons")
	}
	if tx.BeaconDwell(now) == 0 {
		t.Fatal("beacon dwell not accounted")
	}

	tx.SetBeacon(false, now, "recovered")
	drainUntil(t, tx, st, link, now+10*time.Millisecond, now+30*time.Second, 10*time.Millisecond)
	if st.Delivered(1, 3) != 1 {
		t.Fatal("bulk did not resume after beacon mode")
	}
}

func TestTransmitterMonotoneTicks(t *testing.T) {
	tx, _, _ := newTestPair(t, DefaultLinkConfig(), nil)
	if err := tx.Tick(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := tx.Tick(500 * time.Millisecond); err == nil {
		t.Fatal("backwards tick accepted")
	}
}

func TestTransmitterConfigValidation(t *testing.T) {
	link, _ := NewLink(DefaultLinkConfig())
	bad := []func(*TxConfig){
		func(c *TxConfig) { c.Window = 0 },
		func(c *TxConfig) { c.RTO = 0 },
		func(c *TxConfig) { c.RTOMax = c.RTO / 2 },
		func(c *TxConfig) { c.Policy = policyCount },
		func(c *TxConfig) { c.RingCap = 0 },
		func(c *TxConfig) { c.BeaconEvery = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultTxConfig(1)
		mut(&cfg)
		if _, err := NewTransmitter(link, cfg); err == nil {
			t.Fatalf("case %d: bad config accepted", i)
		}
	}
	if _, err := NewTransmitter(nil, DefaultTxConfig(1)); err == nil {
		t.Fatal("nil link accepted")
	}
}

// TestPolicies drives each service policy over a mixed backlog on a
// starved link and checks the characteristic order.
func TestPolicies(t *testing.T) {
	type arrival struct {
		vc  uint8
		seq uint32
	}
	run := func(p Policy) []arrival {
		tx, st, link := newTestPair(t,
			// ~1 small frame per 100 ms: policy choice is visible.
			LinkConfig{RateBps: 300, AckRateBps: 1 << 16, Latency: 10 * time.Millisecond},
			func(c *TxConfig) { c.Policy = p })
		var got []arrival
		st.cfg.Sink = func(_ uint16, vc uint8, seq uint32, _ []byte) {
			got = append(got, arrival{vc, seq})
		}
		// Enqueue bulk first so FIFO and priority disagree.
		tx.Enqueue(3, []byte("b0"), 0)
		tx.Enqueue(3, []byte("b1"), time.Millisecond)
		tx.Enqueue(0, []byte("p0"), 2*time.Millisecond)
		tx.Enqueue(0, []byte("p1"), 3*time.Millisecond)
		drainUntil(t, tx, st, link, 10*time.Millisecond, 2*time.Minute, 10*time.Millisecond)
		return got
	}

	if got := run(PolicyPriority); got[0] != (arrival{0, 0}) || got[1] != (arrival{0, 1}) {
		t.Fatalf("priority order %+v: vc0 must go first", got)
	}
	if got := run(PolicyFIFO); got[0] != (arrival{3, 0}) || got[1] != (arrival{3, 1}) {
		t.Fatalf("fifo order %+v: oldest enqueue must go first", got)
	}
	got := run(PolicyRoundRobin)
	if got[0].vc == got[1].vc {
		t.Fatalf("round robin order %+v: first two arrivals on one channel", got)
	}

	names := map[Policy]string{PolicyPriority: "priority", PolicyRoundRobin: "round_robin", PolicyFIFO: "fifo"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("policy %d name %q, want %q", p, p.String(), want)
		}
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy name changed")
	}
}
