package downlink

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"radshield/internal/telemetry"
)

func encData(t *testing.T, link uint16, vc uint8, seq uint32, payload string) []byte {
	t.Helper()
	raw, err := EncodeFrame(Frame{Type: FrameData, Link: link, VC: vc, Seq: seq, Payload: []byte(payload)})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestStationInOrderDelivery(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	acks := st.Ingest(encData(t, 1, 0, 0, "a"), time.Second)
	if len(acks) != 1 {
		t.Fatalf("acks = %d", len(acks))
	}
	f, _, err := DecodeFrame(acks[0])
	if err != nil {
		t.Fatal(err)
	}
	next, err := AckValue(f)
	if err != nil || next != 1 || f.VC != 0 || f.Link != 1 {
		t.Fatalf("ack %+v next=%d err=%v", f, next, err)
	}
	if st.Delivered(1, 0) != 1 {
		t.Fatal("frame not delivered")
	}
}

func TestStationBatchedIngestAcksOncePerChannel(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	var buf []byte
	for seq := uint32(0); seq < 3; seq++ {
		buf = append(buf, encData(t, 1, 0, seq, "x")...)
	}
	buf = append(buf, encData(t, 1, 2, 0, "y")...)
	acks := st.Ingest(buf, 0)
	if len(acks) != 2 {
		t.Fatalf("acks = %d, want one per touched channel", len(acks))
	}
	f0, _, _ := DecodeFrame(acks[0])
	if n, _ := AckValue(f0); f0.VC != 0 || n != 3 {
		t.Fatalf("first ack %+v: cumulative ACK should cover the batch", f0)
	}
}

func TestStationDedupAndOutOfOrder(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	st.Ingest(encData(t, 1, 0, 0, "a"), 0)

	// Duplicate: re-ACKed, not redelivered.
	acks := st.Ingest(encData(t, 1, 0, 0, "a"), 0)
	if len(acks) != 1 {
		t.Fatal("duplicate not re-ACKed")
	}
	if st.Delivered(1, 0) != 1 {
		t.Fatal("duplicate delivered twice")
	}

	// Out-of-order (no base flag): discarded, expectation re-ACKed.
	acks = st.Ingest(encData(t, 1, 0, 5, "future"), 0)
	f, _, _ := DecodeFrame(acks[0])
	if n, _ := AckValue(f); n != 1 {
		t.Fatalf("out-of-order re-ACK = %d, want 1", n)
	}
	rep := st.Report()
	if rep[0].VC[0].Dups != 1 || rep[0].VC[0].OutOfOrd != 1 {
		t.Fatalf("counters %+v", rep[0].VC[0])
	}
}

func TestStationBaseFlagSkipsUnrecoverableGap(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	st.Ingest(encData(t, 1, 3, 0, "a"), 0)
	// Sender's recorder evicted seqs 1-4: the new base arrives flagged.
	raw, err := EncodeFrame(Frame{Type: FrameData, Link: 1, VC: 3, Flags: FlagBase, Seq: 5, Payload: []byte("f")})
	if err != nil {
		t.Fatal(err)
	}
	acks := st.Ingest(raw, 0)
	f, _, _ := DecodeFrame(acks[0])
	if n, _ := AckValue(f); n != 6 {
		t.Fatalf("post-skip ACK = %d, want 6", n)
	}
	rep := st.Report()
	if rep[0].VC[3].Skipped != 4 || rep[0].VC[3].Delivered != 2 {
		t.Fatalf("skip accounting %+v", rep[0].VC[3])
	}
}

func TestStationIgnoresAcksAndReadsBeacons(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	ack, _ := EncodeAck(1, 0, 7)
	if got := st.Ingest(ack, 0); got != nil {
		t.Fatal("station ACKed an ACK")
	}
	b, _ := EncodeBeacon(1, 0, true, 42)
	if got := st.Ingest(b, 0); got != nil {
		t.Fatal("station ACKed a beacon")
	}
	rep := st.Report()
	if len(rep) != 1 || !rep[0].Degraded || rep[0].Backlog != 42 || rep[0].Beacons != 1 {
		t.Fatalf("beacon state %+v", rep)
	}
	// A delivered data frame clears the degraded latch.
	st.Ingest(encData(t, 1, 0, 0, "alive"), 0)
	if st.Report()[0].Degraded {
		t.Fatal("degraded latch not cleared by data")
	}
}

func TestStationRejectAttribution(t *testing.T) {
	reg := telemetry.NewRegistry(0)
	cfg := DefaultStationConfig()
	cfg.Instruments = NewStationInstruments(reg)
	st := NewStation(cfg)
	st.Ingest(encData(t, 9, 0, 0, "establish"), 0)

	// Corrupt a payload bit: CRC fails but the header still names link 9.
	bad := encData(t, 9, 0, 1, "corrupt-me")
	bad[HeaderLen] ^= 0x01
	st.Ingest(bad, 0)
	rep := st.Report()
	if rep[0].Rejected != 1 {
		t.Fatalf("rejection not attributed: %+v", rep[0])
	}
	if cfg.Instruments.Rejected.Value() != 1 {
		t.Fatal("global rejected counter not bumped")
	}

	// Garbage prefix: unattributable, counted globally, ingest stops.
	st.Ingest([]byte("not a frame at all........................."), 0)
	if cfg.Instruments.Rejected.Value() != 2 {
		t.Fatal("garbage not counted")
	}
}

func TestStationKeepPayloadsBound(t *testing.T) {
	cfg := DefaultStationConfig()
	cfg.KeepPayloads = 2
	st := NewStation(cfg)
	for seq := uint32(0); seq < 5; seq++ {
		st.Ingest(encData(t, 1, 0, seq, strings.Repeat("p", int(seq)+1)), 0)
	}
	rep := st.Report()
	if len(rep[0].RecentP0) != 2 {
		t.Fatalf("kept %d payloads, want 2", len(rep[0].RecentP0))
	}
	if rep[0].RecentP0[1] != "ppppp" {
		t.Fatalf("kept wrong tail: %q", rep[0].RecentP0)
	}
}

func TestStationStateJSONDeterministic(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	// Touch links in a scrambled order; serialization must sort them.
	for _, link := range []uint16{7, 2, 9, 1} {
		st.Ingest(encData(t, link, 0, 0, "x"), 0)
	}
	b1, err := st.StateJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := st.StateJSON()
	if string(b1) != string(b2) {
		t.Fatal("StateJSON not stable")
	}
	var parsed struct {
		Links []struct {
			Link uint16 `json:"link"`
		} `json:"links"`
	}
	if err := json.Unmarshal(b1, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Links) != 4 {
		t.Fatalf("links = %d", len(parsed.Links))
	}
	for i := 1; i < len(parsed.Links); i++ {
		if parsed.Links[i-1].Link >= parsed.Links[i].Link {
			t.Fatalf("links unsorted: %+v", parsed.Links)
		}
	}
	if got := st.Links(); len(got) != 4 || got[0] != 1 || got[3] != 9 {
		t.Fatalf("Links() = %v", got)
	}
}

// TestStationRecoveryCounters: delivered payloads carrying the OS-fault
// campaign's telemetry prefixes are tallied per link, so /state exposes
// each spacecraft's watchdog-reset and recorder-recovery history.
func TestStationRecoveryCounters(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	st.Ingest(encData(t, 3, 1, 0, "watchdog_reset count=2 classes=5"), 0)
	st.Ingest(encData(t, 3, 1, 1, "recorder_recovered count=14 classes=5"), 0)
	st.Ingest(encData(t, 3, 1, 2, "watchdog_reset count=1 classes=1"), 0)
	st.Ingest(encData(t, 3, 0, 0, "campaign_complete campaign=oskernel verdict=protected"), 0)
	// A duplicate must not double-count.
	st.Ingest(encData(t, 3, 1, 2, "watchdog_reset count=1 classes=1"), 0)
	// Near-miss payloads (no trailing space / different link) stay out.
	st.Ingest(encData(t, 3, 1, 3, "watchdog_resets=9"), 0)
	st.Ingest(encData(t, 4, 1, 0, "plain telemetry"), 0)

	rep := st.Report()
	if len(rep) != 2 {
		t.Fatalf("links = %d, want 2", len(rep))
	}
	if rep[0].Link != 3 || rep[0].WatchdogResets != 2 || rep[0].RecorderRecoveries != 1 {
		t.Fatalf("link 3 counters = %d resets / %d recoveries, want 2/1",
			rep[0].WatchdogResets, rep[0].RecorderRecoveries)
	}
	if rep[1].WatchdogResets != 0 || rep[1].RecorderRecoveries != 0 {
		t.Fatalf("link 4 inherited recovery counts: %+v", rep[1])
	}

	b, err := st.StateJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Links []struct {
			WatchdogResets     uint64 `json:"watchdog_resets"`
			RecorderRecoveries uint64 `json:"recorder_recoveries"`
		} `json:"links"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Links[0].WatchdogResets != 2 || parsed.Links[0].RecorderRecoveries != 1 {
		t.Fatalf("/state counters = %+v, want 2/1", parsed.Links[0])
	}
}

// TestStationMissionState: delivered "mission_phase" / "adapt_level"
// payloads update the per-link phase and adapt mode, so /state answers
// "where is this spacecraft and how hard is its protection working"
// with the latest word from the flight software.
func TestStationMissionState(t *testing.T) {
	st := NewStation(DefaultStationConfig())
	st.Ingest(encData(t, 5, 0, 0, "mission_phase leo_cruise t=0s"), 0)
	st.Ingest(encData(t, 5, 0, 1, "adapt_level nominal t=0s"), 0)
	st.Ingest(encData(t, 5, 0, 2, "mission_phase saa_crossing t=30m0s"), 0)
	st.Ingest(encData(t, 5, 0, 3, "adapt_level elevated t=31m0s"), 0)
	// Out-of-order (discarded) frames must not advance the state, and
	// near-miss payloads stay out.
	st.Ingest(encData(t, 5, 0, 9, "mission_phase geo_cruise t=99m0s"), 0)
	st.Ingest(encData(t, 5, 0, 4, "mission_phased wrong"), 0)
	st.Ingest(encData(t, 6, 0, 0, "plain telemetry"), 0)

	rep := st.Report()
	if len(rep) != 2 {
		t.Fatalf("links = %d, want 2", len(rep))
	}
	if rep[0].Link != 5 || rep[0].CurrentPhase != "saa_crossing" || rep[0].AdaptMode != "elevated" {
		t.Fatalf("link 5 state = %q/%q, want saa_crossing/elevated",
			rep[0].CurrentPhase, rep[0].AdaptMode)
	}
	if rep[1].CurrentPhase != "" || rep[1].AdaptMode != "" {
		t.Fatalf("link 6 inherited mission state: %+v", rep[1])
	}

	b, err := st.StateJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Links []struct {
			CurrentPhase string `json:"current_phase"`
			AdaptMode    string `json:"adapt_mode"`
		} `json:"links"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Links[0].CurrentPhase != "saa_crossing" || parsed.Links[0].AdaptMode != "elevated" {
		t.Fatalf("/state mission fields = %+v, want saa_crossing/elevated", parsed.Links[0])
	}
}
