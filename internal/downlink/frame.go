package downlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame format (CCSDS-style transfer frame, little-endian):
//
//	offset  len  field
//	0       2    magic 0x5A 0xD5
//	2       1    version (1)
//	3       1    type (data / ack / beacon)
//	4       2    link id (spacecraft)
//	6       1    virtual channel (0..NumVC-1; 0 is highest priority)
//	7       1    flags (bit 0: window base, see FlagBase)
//	8       4    sequence number (per link × channel)
//	12      2    payload length (0..MaxPayload)
//	14      N    payload
//	14+N    4    CRC-32 (IEEE) over bytes [0, 14+N)
//
// The codec is the trust boundary of the subsystem: every byte arriving
// from the radio goes through DecodeFrame, which must reject anything
// malformed without panicking (FuzzFrameDecode enforces this).

const (
	magic0  = 0x5A
	magic1  = 0xD5
	version = 1

	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 14
	// TrailerLen is the CRC-32 trailer size in bytes.
	TrailerLen = 4
	// MaxPayload bounds a frame's payload so one frame never monopolizes
	// a bandwidth-starved link.
	MaxPayload = 1008
	// MaxFrameLen is the largest possible encoded frame.
	MaxFrameLen = HeaderLen + MaxPayload + TrailerLen

	// NumVC is the number of virtual channels (priority classes).
	NumVC = 4
)

// Frame flags (header byte 7).
const (
	// FlagBase marks a data frame as the sender's current window base:
	// the lowest sequence number still held by the flight recorder on
	// that channel. A base-flagged frame whose sequence is above the
	// station's expectation proves the gap is unrecoverable — the
	// recorder evicted those frames — so the station jumps forward
	// (counting the skip) instead of wedging go-back-N on data that no
	// longer exists.
	FlagBase uint8 = 1 << 0
)

// FrameType discriminates the three frame roles.
type FrameType uint8

const (
	// FrameData carries a telemetry payload on its virtual channel.
	FrameData FrameType = iota
	// FrameAck is a ground-to-space cumulative acknowledgement: its
	// 4-byte payload is the next sequence number the station expects on
	// the frame's virtual channel.
	FrameAck
	// FrameBeacon is the low-rate carrier heartbeat sent while the
	// transmitter is degraded: its payload is a 1-byte degradation flag
	// plus the 4-byte count of frames waiting in the flight recorder.
	FrameBeacon

	frameTypeCount
)

// String names the frame type for tables and events.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FrameBeacon:
		return "beacon"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Frame is one decoded transfer frame.
type Frame struct {
	Type    FrameType
	Link    uint16
	VC      uint8
	Flags   uint8
	Seq     uint32
	Payload []byte
}

// Codec errors. DecodeFrame wraps them with positional context;
// errors.Is works against these sentinels.
var (
	ErrTruncated  = errors.New("downlink: frame truncated")
	ErrBadMagic   = errors.New("downlink: bad frame magic")
	ErrBadVersion = errors.New("downlink: unsupported frame version")
	ErrBadType    = errors.New("downlink: unknown frame type")
	ErrBadVC      = errors.New("downlink: virtual channel out of range")
	ErrBadLength  = errors.New("downlink: payload length out of range")
	ErrBadCRC     = errors.New("downlink: CRC mismatch")
)

// EncodeFrame serializes f. It fails on payloads over MaxPayload, an
// out-of-range virtual channel, or an unknown type — oversized
// telemetry must be chunked by the caller, never silently truncated.
func EncodeFrame(f Frame) ([]byte, error) {
	if f.Type >= frameTypeCount {
		return nil, fmt.Errorf("%w: %d", ErrBadType, f.Type)
	}
	if f.VC >= NumVC {
		return nil, fmt.Errorf("%w: %d", ErrBadVC, f.VC)
	}
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadLength, len(f.Payload))
	}
	b := make([]byte, HeaderLen+len(f.Payload)+TrailerLen)
	b[0], b[1] = magic0, magic1
	b[2] = version
	b[3] = byte(f.Type)
	binary.LittleEndian.PutUint16(b[4:], f.Link)
	b[6] = f.VC
	b[7] = f.Flags
	binary.LittleEndian.PutUint32(b[8:], f.Seq)
	binary.LittleEndian.PutUint16(b[12:], uint16(len(f.Payload)))
	copy(b[HeaderLen:], f.Payload)
	crc := crc32.ChecksumIEEE(b[:HeaderLen+len(f.Payload)])
	binary.LittleEndian.PutUint32(b[HeaderLen+len(f.Payload):], crc)
	return b, nil
}

// DecodeFrame parses one frame from the front of b and returns it with
// the number of bytes consumed. It never panics on hostile input: any
// malformed prefix yields an error (and, for framing errors where the
// payload length field is readable, the consumed count still advances
// past the bad frame so stream parsers can resynchronize).
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderLen+TrailerLen {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if b[0] != magic0 || b[1] != magic1 {
		return Frame{}, 0, fmt.Errorf("%w: % x", ErrBadMagic, b[:2])
	}
	if b[2] != version {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadVersion, b[2])
	}
	plen := int(binary.LittleEndian.Uint16(b[12:]))
	if plen > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes", ErrBadLength, plen)
	}
	total := HeaderLen + plen + TrailerLen
	if len(b) < total {
		return Frame{}, 0, fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, total, len(b))
	}
	wantCRC := binary.LittleEndian.Uint32(b[HeaderLen+plen:])
	if crc32.ChecksumIEEE(b[:HeaderLen+plen]) != wantCRC {
		return Frame{}, total, ErrBadCRC
	}
	f := Frame{
		Type:  FrameType(b[3]),
		Link:  binary.LittleEndian.Uint16(b[4:]),
		VC:    b[6],
		Flags: b[7],
		Seq:   binary.LittleEndian.Uint32(b[8:]),
	}
	if f.Type >= frameTypeCount {
		return Frame{}, total, fmt.Errorf("%w: %d", ErrBadType, b[3])
	}
	if f.VC >= NumVC {
		return Frame{}, total, fmt.Errorf("%w: %d", ErrBadVC, f.VC)
	}
	if plen > 0 {
		f.Payload = append([]byte(nil), b[HeaderLen:HeaderLen+plen]...)
	}
	return f, total, nil
}

// EncodeAck builds the cumulative acknowledgement for vc: nextExpected
// is the lowest sequence number the station has not yet delivered.
func EncodeAck(link uint16, vc uint8, nextExpected uint32) ([]byte, error) {
	payload := make([]byte, 4)
	binary.LittleEndian.PutUint32(payload, nextExpected)
	return EncodeFrame(Frame{Type: FrameAck, Link: link, VC: vc, Seq: nextExpected, Payload: payload})
}

// AckValue extracts the cumulative acknowledgement carried by an ACK
// frame.
func AckValue(f Frame) (uint32, error) {
	if f.Type != FrameAck {
		return 0, fmt.Errorf("downlink: AckValue on %v frame", f.Type)
	}
	if len(f.Payload) != 4 {
		return 0, fmt.Errorf("%w: ack payload %d bytes", ErrBadLength, len(f.Payload))
	}
	return binary.LittleEndian.Uint32(f.Payload), nil
}

// EncodeBeacon builds the degraded-mode heartbeat: pending is the
// flight-recorder backlog at send time.
func EncodeBeacon(link uint16, seq uint32, degraded bool, pending uint32) ([]byte, error) {
	payload := make([]byte, 5)
	if degraded {
		payload[0] = 1
	}
	binary.LittleEndian.PutUint32(payload[1:], pending)
	return EncodeFrame(Frame{Type: FrameBeacon, Link: link, VC: 0, Seq: seq, Payload: payload})
}

// BeaconValue extracts the degradation flag and backlog from a beacon
// frame.
func BeaconValue(f Frame) (degraded bool, pending uint32, err error) {
	if f.Type != FrameBeacon {
		return false, 0, fmt.Errorf("downlink: BeaconValue on %v frame", f.Type)
	}
	if len(f.Payload) != 5 {
		return false, 0, fmt.Errorf("%w: beacon payload %d bytes", ErrBadLength, len(f.Payload))
	}
	return f.Payload[0] == 1, binary.LittleEndian.Uint32(f.Payload[1:]), nil
}
