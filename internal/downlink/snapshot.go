package downlink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"

	"radshield/internal/resultcache"
)

// This file is the recorder's NVRAM persistence surface. The flight
// recorder models non-volatile storage ("a power cycle resets the
// transmitter but never the recorder"), which means its contents cross
// reboots through a persisted page — and a persisted page is exactly
// what an OS-level filesystem-corruption fault damages (torn write
// under an IO-error burst, bit flips in flash, truncation). The page
// format is therefore defensive: versioned magic, explicit length,
// CRC-32 over the payload, and strict semantic validation on restore.
// A damaged page is *detected and degraded* — Restore leaves the
// recorder verifiably empty rather than replaying wrong state.

// snapshotMagic identifies a recorder NVRAM page; the last byte is the
// format version. Bumping the version makes old pages fail loudly at
// the magic check instead of misdecoding.
var snapshotMagic = [8]byte{'R', 'D', 'N', 'V', 0, 0, 0, 1}

// snapshotHeaderLen is magic + payload length (u32le) + CRC-32 (u32le).
const snapshotHeaderLen = len(snapshotMagic) + 8

// ErrSnapshotCorrupt is returned by Restore when the page fails any
// integrity check. Callers match it with errors.Is; after the error the
// recorder is empty.
var ErrSnapshotCorrupt = errors.New("downlink: corrupt recorder snapshot")

// Snapshot encodes the recorder's full state — per-channel sequence
// cursors, eviction count, and every unacknowledged record — as one
// self-validating NVRAM page. The encoding is canonical: restoring a
// snapshot and snapshotting again yields identical bytes.
func (r *Recorder) Snapshot() []byte {
	var e resultcache.Enc
	e.Uint(r.evicted)
	for vc := 0; vc < NumVC; vc++ {
		e.Uint(uint64(r.nextSeq[vc]))
		e.Uint(uint64(len(r.perVC[vc])))
		for _, rec := range r.perVC[vc] {
			e.Uint(uint64(rec.Seq))
			e.Duration(rec.Enqueued)
			e.Blob(rec.Payload)
		}
	}
	payload := e.Bytes()
	out := make([]byte, 0, snapshotHeaderLen+len(payload))
	out = append(out, snapshotMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	r.ins.snapshotSaved()
	return out
}

// snapshotState is the staging area decodeSnapshot fills: restore is
// all-or-nothing, so nothing lands in the recorder until the whole page
// has validated.
type snapshotState struct {
	evicted uint64
	perVC   [NumVC][]Record
	nextSeq [NumVC]uint32
	count   int
}

// Restore replaces the recorder's state with the contents of an NVRAM
// page produced by Snapshot. The recorder is wiped first; if the page
// fails any integrity check the error wraps ErrSnapshotCorrupt and the
// recorder stays verifiably empty — a corrupt page must never replay
// stale or invented frames.
func (r *Recorder) Restore(data []byte) error {
	r.wipe()
	st, err := r.decodeSnapshot(data)
	if err != nil {
		r.ins.snapshotCorrupt()
		return fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	r.evicted = st.evicted
	r.perVC = st.perVC
	r.nextSeq = st.nextSeq
	r.count = st.count
	r.ins.snapshotRestored()
	r.ins.ringDepth(r.count)
	return nil
}

// wipe empties the recorder (sequence cursors included).
func (r *Recorder) wipe() {
	r.perVC = [NumVC][]Record{}
	r.nextSeq = [NumVC]uint32{}
	r.count = 0
	r.evicted = 0
	r.ins.ringDepth(0)
}

// decodeSnapshot validates and decodes one NVRAM page. Every check is
// strict: framing, CRC, record count against capacity, per-channel
// sequence monotonicity against the cursor, and payload bounds. The
// decoder must never panic on hostile input — that is FuzzRecorderSnapshot's
// contract.
func (r *Recorder) decodeSnapshot(data []byte) (snapshotState, error) {
	var st snapshotState
	if len(data) < snapshotHeaderLen {
		return st, fmt.Errorf("page truncated at %d bytes", len(data))
	}
	if string(data[:len(snapshotMagic)]) != string(snapshotMagic[:]) {
		return st, fmt.Errorf("bad magic %x", data[:len(snapshotMagic)])
	}
	plen := binary.LittleEndian.Uint32(data[len(snapshotMagic):])
	crc := binary.LittleEndian.Uint32(data[len(snapshotMagic)+4:])
	payload := data[snapshotHeaderLen:]
	if uint64(len(payload)) != uint64(plen) {
		return st, fmt.Errorf("payload length %d, header says %d", len(payload), plen)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return st, fmt.Errorf("CRC mismatch")
	}
	d := resultcache.NewDec(payload)
	st.evicted = d.Uint()
	for vc := 0; vc < NumVC; vc++ {
		next := d.Uint()
		if next > math.MaxUint32 {
			return snapshotState{}, fmt.Errorf("vc %d: sequence cursor %d overflows", vc, next)
		}
		st.nextSeq[vc] = uint32(next)
		n := d.Uint()
		if d.Err() != nil {
			return snapshotState{}, d.Err()
		}
		if n > uint64(r.capacity) {
			return snapshotState{}, fmt.Errorf("vc %d: %d records exceeds capacity %d", vc, n, r.capacity)
		}
		prevSeq := int64(-1)
		for i := uint64(0); i < n; i++ {
			seq := d.Uint()
			enq := d.Duration()
			pay := d.Blob()
			if d.Err() != nil {
				return snapshotState{}, d.Err()
			}
			if seq > math.MaxUint32 || seq >= next {
				return snapshotState{}, fmt.Errorf("vc %d: record seq %d outside cursor %d", vc, seq, next)
			}
			if int64(seq) <= prevSeq {
				return snapshotState{}, fmt.Errorf("vc %d: sequence not increasing at %d", vc, seq)
			}
			if len(pay) > MaxPayload {
				return snapshotState{}, fmt.Errorf("vc %d: payload %d bytes exceeds %d", vc, len(pay), MaxPayload)
			}
			prevSeq = int64(seq)
			st.perVC[vc] = append(st.perVC[vc], Record{
				VC:       uint8(vc),
				Seq:      uint32(seq),
				Payload:  append([]byte(nil), pay...),
				Enqueued: enq,
			})
			st.count++
		}
	}
	if err := d.Close(); err != nil {
		return snapshotState{}, err
	}
	if st.count > r.capacity {
		return snapshotState{}, fmt.Errorf("%d records exceeds capacity %d", st.count, r.capacity)
	}
	return st, nil
}

// CorruptSnapshot returns a damaged copy of an NVRAM page, modelling
// the filesystem-corruption fault class. mode selects the damage
// pattern: "torn" zeroes the page's tail from a random offset (a write
// interrupted by power loss), "bitflip" flips three random bits
// (radiation-struck flash), "truncate" cuts the page short at a random
// length. Damage draws come from rng so campaigns stay deterministic.
// An empty page is returned unchanged (nothing to damage).
func CorruptSnapshot(data []byte, rng *rand.Rand, mode string) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	switch mode {
	case "torn":
		from := rng.Intn(len(out))
		for i := from; i < len(out); i++ {
			out[i] = 0
		}
	case "bitflip":
		for i := 0; i < 3; i++ {
			bit := rng.Intn(len(out) * 8)
			out[bit/8] ^= 1 << (bit % 8)
		}
	case "truncate":
		out = out[:rng.Intn(len(out))]
	}
	return out
}
