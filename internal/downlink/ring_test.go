package downlink

import (
	"bytes"
	"testing"
	"time"
)

func TestRecorderSequencesPerChannel(t *testing.T) {
	r, err := NewRecorder(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec, ev, err := r.Enqueue(0, []byte{byte(i)}, time.Duration(i))
		if err != nil || ev != nil {
			t.Fatalf("enqueue %d: rec=%+v ev=%v err=%v", i, rec, ev, err)
		}
		if rec.Seq != uint32(i) {
			t.Fatalf("vc0 seq %d, want %d", rec.Seq, i)
		}
	}
	rec, _, err := r.Enqueue(2, []byte("x"), 0)
	if err != nil || rec.Seq != 0 {
		t.Fatalf("vc2 starts at seq %d (err %v), want 0", rec.Seq, err)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
}

func TestRecorderRejects(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("accepted zero capacity")
	}
	r, _ := NewRecorder(4)
	if _, _, err := r.Enqueue(NumVC, nil, 0); err == nil {
		t.Fatal("accepted out-of-range channel")
	}
	if _, _, err := r.Enqueue(0, make([]byte, MaxPayload+1), 0); err == nil {
		t.Fatal("accepted oversize payload")
	}
}

func TestRecorderCumulativeAck(t *testing.T) {
	r, _ := NewRecorder(16)
	for i := 0; i < 5; i++ {
		r.Enqueue(1, []byte{byte(i)}, 0)
	}
	if n := r.Ack(1, 3); n != 3 {
		t.Fatalf("Ack released %d, want 3", n)
	}
	if n := r.Ack(1, 3); n != 0 {
		t.Fatalf("duplicate Ack released %d, want 0", n)
	}
	pend := r.Pending(1)
	if len(pend) != 2 || pend[0].Seq != 3 {
		t.Fatalf("pending %+v", pend)
	}
	if r.Ack(NumVC, 10) != 0 {
		t.Fatal("Ack on bad channel released records")
	}
}

func TestRecorderEvictsLowestPriorityFirst(t *testing.T) {
	r, _ := NewRecorder(4)
	r.Enqueue(0, []byte("p0"), 0)
	r.Enqueue(3, []byte("bulk0"), 1)
	r.Enqueue(3, []byte("bulk1"), 2)
	r.Enqueue(1, []byte("p1"), 3)

	// Full: the next enqueue must evict vc3's oldest record, never vc0.
	_, ev, err := r.Enqueue(0, []byte("p0b"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.VC != 3 || !bytes.Equal(ev.Payload, []byte("bulk0")) {
		t.Fatalf("evicted %+v, want vc3 bulk0", ev)
	}
	if r.Evicted() != 1 {
		t.Fatalf("Evicted = %d", r.Evicted())
	}

	// Drain vc3 entirely; with only vc0/vc1 left, vc1 is the victim.
	_, ev, _ = r.Enqueue(0, []byte("p0c"), 5)
	if ev == nil || ev.VC != 3 {
		t.Fatalf("second eviction %+v, want vc3", ev)
	}
	_, ev, _ = r.Enqueue(0, []byte("p0d"), 6)
	if ev == nil || ev.VC != 1 {
		t.Fatalf("third eviction %+v, want vc1", ev)
	}
	// Only priority-0 records remain: they are the last to go.
	_, ev, _ = r.Enqueue(0, []byte("p0e"), 7)
	if ev == nil || ev.VC != 0 || !bytes.Equal(ev.Payload, []byte("p0")) {
		t.Fatalf("fourth eviction %+v, want oldest vc0", ev)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
}

func TestRecorderPayloadIsCopied(t *testing.T) {
	r, _ := NewRecorder(4)
	src := []byte("abc")
	r.Enqueue(0, src, 0)
	src[0] = 'X'
	if got := r.Pending(0)[0].Payload; !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("recorder aliases caller payload: % x", got)
	}
}
