package downlink

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sink receives every newly delivered (in-order, deduplicated) payload.
// It runs under the station lock; keep it fast.
type Sink func(link uint16, vc uint8, seq uint32, payload []byte)

// StationConfig tunes the ground station.
type StationConfig struct {
	// KeepPayloads bounds how many recent channel-0 payloads are kept
	// per link for the aggregated mission state (0 = keep none).
	KeepPayloads int
	// Sink, when non-nil, observes every delivery.
	Sink Sink
	// Instruments, when non-nil, receives groundstation_* metrics.
	Instruments *StationInstruments
}

// DefaultStationConfig keeps the last 64 priority-0 payloads per link.
func DefaultStationConfig() StationConfig {
	return StationConfig{KeepPayloads: 64}
}

// vcRecv is one link × channel's receive state.
type vcRecv struct {
	Expected  uint32 `json:"next_expected"`
	Delivered uint64 `json:"delivered"`
	Dups      uint64 `json:"duplicates"`
	OutOfOrd  uint64 `json:"out_of_order"`
	Skipped   uint64 `json:"skipped"`
}

// linkState aggregates one spacecraft's downlink.
type linkState struct {
	vc       [NumVC]vcRecv
	rejected uint64
	beacons  uint64
	degraded bool
	backlog  uint32 // last beacon-reported flight-recorder depth
	lastSeen time.Duration
	p0       [][]byte // recent channel-0 payloads (bounded)
	// Recovery accounting: deliveries whose payloads announce a
	// watchdog reset or a recovered recorder page (the oskernel
	// campaign's telemetry prefixes).
	wdResets      uint64
	recRecoveries uint64
	// Mission-state accounting: the last announced mission phase and
	// adaptive protection level (the mission/adapt telemetry prefixes).
	phase     string
	adaptMode string
}

// LinkReport is one link's row in the aggregated mission state.
type LinkReport struct {
	Link     uint16        `json:"link"`
	VC       [NumVC]vcRecv `json:"vc"`
	Rejected uint64        `json:"rejected"`
	Beacons  uint64        `json:"beacons"`
	Degraded bool          `json:"degraded"`
	Backlog  uint32        `json:"backlog"`
	LastSeen time.Duration `json:"last_seen_ns"`
	// WatchdogResets and RecorderRecoveries count delivered payloads
	// carrying the "watchdog_reset " / "recorder_recovered " prefixes
	// the OS-fault campaign emits, so operators can read a link's
	// recovery history straight off /state.
	WatchdogResets     uint64 `json:"watchdog_resets"`
	RecorderRecoveries uint64 `json:"recorder_recoveries"`
	// CurrentPhase and AdaptMode track the last delivered
	// "mission_phase " / "adapt_level " payloads, so operators can read
	// where each spacecraft is in its mission — and how hard its
	// protection stack is working — straight off /state.
	CurrentPhase string   `json:"current_phase,omitempty"`
	AdaptMode    string   `json:"adapt_mode,omitempty"`
	RecentP0     []string `json:"recent_p0,omitempty"`
}

// Station is the ground side: it ingests raw frame bytes from many
// spacecraft links, validates, deduplicates and reorders them into
// per-channel in-order streams, and answers with cumulative ACKs.
// Station is safe for concurrent use — each TCP connection feeds it
// from its own goroutine.
type Station struct {
	cfg   StationConfig
	mu    sync.Mutex
	links map[uint16]*linkState
	ins   *StationInstruments
}

// NewStation builds an empty station.
func NewStation(cfg StationConfig) *Station {
	if cfg.KeepPayloads < 0 {
		cfg.KeepPayloads = 0
	}
	return &Station{cfg: cfg, links: make(map[uint16]*linkState), ins: cfg.Instruments}
}

// Ingest parses every frame in raw (frames are self-delimiting) and
// returns the encoded ACK frames to send back. now is the receiver's
// clock — simulated time in campaigns, a frame-count surrogate over
// real transports. Malformed bytes are counted and skipped; the
// go-back-N contract means a re-ACK of the current expectation always
// resynchronizes the sender.
func (s *Station) Ingest(raw []byte, now time.Duration) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var acks [][]byte
	touched := map[[2]uint32]bool{} // link, vc pairs needing an ACK
	var order [][2]uint32
	for len(raw) > 0 {
		f, n, err := DecodeFrame(raw)
		if err != nil {
			if n == 0 {
				// Unparseable prefix (bad magic / truncated): the rest of
				// the buffer is garbage — count one rejection and stop.
				s.reject(raw)
				break
			}
			s.reject(raw)
			raw = raw[n:]
			continue
		}
		raw = raw[n:]
		key := [2]uint32{uint32(f.Link), uint32(f.VC)}
		if s.ingestFrame(f, now) && !touched[key] {
			touched[key] = true
			order = append(order, key)
		}
	}
	for _, key := range order {
		link, vc := uint16(key[0]), uint8(key[1])
		ls := s.links[link]
		ack, err := EncodeAck(link, vc, ls.vc[vc].Expected)
		if err != nil {
			continue
		}
		acks = append(acks, ack)
		if s.ins != nil {
			s.ins.AcksSent.Inc()
		}
	}
	return acks
}

// ingestFrame processes one decoded frame and reports whether its
// link × channel should be (re-)acknowledged.
func (s *Station) ingestFrame(f Frame, now time.Duration) bool {
	ls := s.links[f.Link]
	if ls == nil {
		ls = &linkState{}
		s.links[f.Link] = ls
		if s.ins != nil {
			s.ins.Links.Set(float64(len(s.links)))
		}
	}
	ls.lastSeen = now
	if s.ins != nil {
		s.ins.FramesReceived.Inc()
	}
	switch f.Type {
	case FrameBeacon:
		ls.beacons++
		if deg, backlog, err := BeaconValue(f); err == nil {
			ls.degraded = deg
			ls.backlog = backlog
		}
		if s.ins != nil {
			s.ins.BeaconsSeen.Inc()
		}
		return false
	case FrameAck:
		return false // stations do not receive ACKs
	}
	st := &ls.vc[f.VC]
	if f.Seq > st.Expected && f.Flags&FlagBase != 0 {
		// The sender's window base is above our expectation: the flight
		// recorder evicted the missing frames, so no retransmission will
		// ever fill the gap. Jump forward and account the loss — silent
		// gaps would read as "nothing happened" in the mission record.
		gap := uint64(f.Seq - st.Expected)
		st.Skipped += gap
		st.Expected = f.Seq
		if s.ins != nil {
			s.ins.Skipped.Add(gap)
		}
	}
	switch {
	case f.Seq == st.Expected:
		st.Expected++
		st.Delivered++
		ls.degraded = false
		if bytes.HasPrefix(f.Payload, []byte("watchdog_reset ")) {
			ls.wdResets++
		}
		if bytes.HasPrefix(f.Payload, []byte("recorder_recovered ")) {
			ls.recRecoveries++
		}
		if v, ok := payloadField(f.Payload, "mission_phase "); ok {
			ls.phase = v
		}
		if v, ok := payloadField(f.Payload, "adapt_level "); ok {
			ls.adaptMode = v
		}
		if f.VC == 0 && s.cfg.KeepPayloads > 0 {
			ls.p0 = append(ls.p0, append([]byte(nil), f.Payload...))
			if len(ls.p0) > s.cfg.KeepPayloads {
				ls.p0 = ls.p0[len(ls.p0)-s.cfg.KeepPayloads:]
			}
		}
		if s.ins != nil {
			s.ins.FramesDelivered.Inc()
		}
		if s.cfg.Sink != nil {
			s.cfg.Sink(f.Link, f.VC, f.Seq, f.Payload)
		}
	case f.Seq < st.Expected:
		// Duplicate of an already-delivered frame (a lost ACK made the
		// sender repeat itself). Re-ACK so the window advances.
		st.Dups++
		if s.ins != nil {
			s.ins.Duplicates.Inc()
		}
	default:
		// Go-back-N receiver: out-of-order frames are discarded — the
		// sender will replay them — but the current expectation is
		// re-ACKed to hurry it along.
		st.OutOfOrd++
		if s.ins != nil {
			s.ins.OutOfOrder.Inc()
		}
	}
	return true
}

// payloadField extracts the first space-delimited token after a
// "key " prefix — the value in the flight software's "key value k=v…"
// telemetry idiom.
func payloadField(payload []byte, prefix string) (string, bool) {
	if !bytes.HasPrefix(payload, []byte(prefix)) {
		return "", false
	}
	rest := payload[len(prefix):]
	if i := bytes.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	if len(rest) == 0 {
		return "", false
	}
	return string(rest), true
}

// reject counts a frame that failed decoding. Attribution is best
// effort: if the header's link-id bytes were readable the rejection is
// charged to that link (a CRC-failed frame usually still names its
// sender), otherwise it stays unattributed.
func (s *Station) reject(raw []byte) {
	if s.ins != nil {
		s.ins.Rejected.Inc()
	}
	if len(raw) >= 6 {
		link := uint16(raw[4]) | uint16(raw[5])<<8
		if ls := s.links[link]; ls != nil {
			ls.rejected++
		}
	}
}

// Delivered returns one link × channel's delivered in-order frame
// count.
func (s *Station) Delivered(link uint16, vc uint8) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.links[link]
	if ls == nil || vc >= NumVC {
		return 0
	}
	return ls.vc[vc].Delivered
}

// Links returns the known link ids in ascending order.
func (s *Station) Links() []uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint16, 0, len(s.links))
	for id := range s.links {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Report renders the aggregated mission state, links in ascending id
// order so serialization is deterministic.
func (s *Station) Report() []LinkReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint16, 0, len(s.links))
	for id := range s.links {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]LinkReport, 0, len(ids))
	for _, id := range ids {
		ls := s.links[id]
		r := LinkReport{
			Link: id, VC: ls.vc, Rejected: ls.rejected,
			Beacons: ls.beacons, Degraded: ls.degraded, Backlog: ls.backlog,
			LastSeen: ls.lastSeen, WatchdogResets: ls.wdResets,
			RecorderRecoveries: ls.recRecoveries,
			CurrentPhase:       ls.phase, AdaptMode: ls.adaptMode,
		}
		for _, p := range ls.p0 {
			r.RecentP0 = append(r.RecentP0, string(p))
		}
		out = append(out, r)
	}
	return out
}

// StateJSON serializes the aggregated mission state.
func (s *Station) StateJSON() ([]byte, error) {
	rep := s.Report()
	b, err := json.MarshalIndent(struct {
		Links []LinkReport `json:"links"`
	}{Links: rep}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("downlink: state: %w", err)
	}
	return b, nil
}
