package downlink

import (
	"time"

	"radshield/internal/telemetry"
)

// Instruments bundles the flight side's metric handles (transmitter +
// recorder + link loss model). Construct with NewInstruments and pass
// through TxConfig; nil disables instrumentation. TELEMETRY.md
// catalogs every name.
type Instruments struct {
	reg *telemetry.Registry

	FramesSent    *telemetry.Counter
	BytesSent     *telemetry.Counter
	Retransmits   *telemetry.Counter
	FramesAcked   *telemetry.Counter
	Beacons       *telemetry.Counter
	RingDepth     *telemetry.Gauge
	RingEvicted   *telemetry.Counter
	BeaconMode    *telemetry.Gauge
	LinkDropped   *telemetry.Counter
	LinkCorrupted *telemetry.Counter
	LinkReordered *telemetry.Counter
	BlackoutLost  *telemetry.Counter
	// Snapshot counters cover the recorder's NVRAM persistence path:
	// pages encoded, pages restored intact, and pages rejected as
	// corrupt (CRC, framing, or semantic validation failure).
	SnapshotSaved    *telemetry.Counter
	SnapshotRestored *telemetry.Counter
	SnapshotCorrupt  *telemetry.Counter
}

// NewInstruments registers the downlink metric set on reg. A nil
// registry yields nil (instrumentation disabled).
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		reg:           reg,
		FramesSent:    reg.Counter("downlink_frames_sent_total", "frames"),
		BytesSent:     reg.Counter("downlink_bytes_sent_total", "bytes"),
		Retransmits:   reg.Counter("downlink_frames_retransmitted_total", "frames"),
		FramesAcked:   reg.Counter("downlink_frames_acked_total", "frames"),
		Beacons:       reg.Counter("downlink_beacons_sent_total", "frames"),
		RingDepth:     reg.Gauge("downlink_ring_depth", "records"),
		RingEvicted:   reg.Counter("downlink_ring_evicted_total", "records"),
		BeaconMode:    reg.Gauge("downlink_beacon_mode", "bool"),
		LinkDropped:   reg.Counter("downlink_link_dropped_total", "frames"),
		LinkCorrupted: reg.Counter("downlink_link_corrupted_total", "frames"),
		LinkReordered: reg.Counter("downlink_link_reordered_total", "frames"),
		BlackoutLost:  reg.Counter("downlink_blackout_lost_total", "frames"),

		SnapshotSaved:    reg.Counter("recorder_snapshot_saved_total", "snapshots"),
		SnapshotRestored: reg.Counter("recorder_snapshot_restored_total", "snapshots"),
		SnapshotCorrupt:  reg.Counter("recorder_snapshot_corrupt_total", "snapshots"),
	}
}

func (ins *Instruments) frameSent(n int, retransmit bool) {
	if ins == nil {
		return
	}
	ins.FramesSent.Inc()
	ins.BytesSent.Add(uint64(n))
	if retransmit {
		ins.Retransmits.Inc()
	}
}

func (ins *Instruments) framesAcked(n int) {
	if ins == nil || n <= 0 {
		return
	}
	ins.FramesAcked.Add(uint64(n))
}

func (ins *Instruments) beaconSent() {
	if ins == nil {
		return
	}
	ins.Beacons.Inc()
}

func (ins *Instruments) ringDepth(n int) {
	if ins == nil {
		return
	}
	ins.RingDepth.Set(float64(n))
}

func (ins *Instruments) ringEvicted() {
	if ins == nil {
		return
	}
	ins.RingEvicted.Inc()
}

func (ins *Instruments) snapshotSaved() {
	if ins == nil {
		return
	}
	ins.SnapshotSaved.Inc()
}

func (ins *Instruments) snapshotRestored() {
	if ins == nil {
		return
	}
	ins.SnapshotRestored.Inc()
}

func (ins *Instruments) snapshotCorrupt() {
	if ins == nil {
		return
	}
	ins.SnapshotCorrupt.Inc()
}

// beaconModeChange records a degradation transition with a structured
// event, timestamped in simulated mission time.
func (ins *Instruments) beaconModeChange(t time.Duration, on bool, reason string) {
	if ins == nil {
		return
	}
	v := 0.0
	if on {
		v = 1
	}
	ins.BeaconMode.Set(v)
	ins.reg.Emit(telemetry.Event{
		T:    t,
		Kind: telemetry.KindBeaconMode,
		Fields: map[string]any{
			"on":     on,
			"reason": reason,
		},
	})
}

// linkWindow records a scheduled-window transition with a structured
// event (fields per TELEMETRY.md's event catalog).
func (ins *Instruments) linkWindow(t time.Duration, window string, open bool) {
	if ins == nil {
		return
	}
	phase := "clear"
	if open {
		phase = "onset"
	}
	ins.reg.Emit(telemetry.Event{
		T:    t,
		Kind: telemetry.KindLinkFault,
		Fields: map[string]any{
			"window": window,
			"phase":  phase,
		},
	})
}

func (ins *Instruments) linkDropped() {
	if ins == nil {
		return
	}
	ins.LinkDropped.Inc()
}

func (ins *Instruments) linkCorrupted() {
	if ins == nil {
		return
	}
	ins.LinkCorrupted.Inc()
}

func (ins *Instruments) linkReordered() {
	if ins == nil {
		return
	}
	ins.LinkReordered.Inc()
}

func (ins *Instruments) linkBlackoutLost() {
	if ins == nil {
		return
	}
	ins.BlackoutLost.Inc()
}

// StationInstruments bundles the ground side's metric handles.
// TELEMETRY.md catalogs every name.
type StationInstruments struct {
	FramesReceived  *telemetry.Counter
	FramesDelivered *telemetry.Counter
	Duplicates      *telemetry.Counter
	OutOfOrder      *telemetry.Counter
	Rejected        *telemetry.Counter
	Skipped         *telemetry.Counter
	AcksSent        *telemetry.Counter
	BeaconsSeen     *telemetry.Counter
	Links           *telemetry.Gauge
}

// NewStationInstruments registers the ground-station metric set on
// reg. A nil registry yields nil.
func NewStationInstruments(reg *telemetry.Registry) *StationInstruments {
	if reg == nil {
		return nil
	}
	return &StationInstruments{
		FramesReceived:  reg.Counter("groundstation_frames_received_total", "frames"),
		FramesDelivered: reg.Counter("groundstation_frames_delivered_total", "frames"),
		Duplicates:      reg.Counter("groundstation_frames_duplicate_total", "frames"),
		OutOfOrder:      reg.Counter("groundstation_frames_out_of_order_total", "frames"),
		Rejected:        reg.Counter("groundstation_frames_rejected_total", "frames"),
		Skipped:         reg.Counter("groundstation_frames_skipped_total", "frames"),
		AcksSent:        reg.Counter("groundstation_acks_sent_total", "frames"),
		BeaconsSeen:     reg.Counter("groundstation_beacons_total", "frames"),
		Links:           reg.Gauge("groundstation_links", "links"),
	}
}
