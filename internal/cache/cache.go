package cache

import (
	"fmt"
	"sync"

	"radshield/internal/mem"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// Stats counts cache events. Hit rate feeds the ILD feature vector; flush
// counts feed the EMR cost model.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	LinesFlushed  uint64
	FlipsInjected uint64
	// FlipsAbsorbed counts strikes corrected in hardware on an
	// ECC-protected cache (see SetECCProtected).
	FlipsAbsorbed uint64
}

// HitRate returns hits / (hits + misses), or 0 before any access.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type line struct {
	valid   bool
	tag     uint64 // line number (addr / LineSize)
	data    [LineSize]byte
	lastUse uint64
}

// Cache is a set-associative, write-through cache over a backing Memory.
// It is safe for concurrent use by the parallel EMR executors.
type Cache struct {
	mu      sync.Mutex
	backing mem.Memory
	sets    int
	ways    int
	lines   []line // sets × ways
	useTick uint64
	stats   Stats
	ecc     bool
}

// SetECCProtected marks the cache array as SECDED-protected (some SoCs
// ship ECC in their last-level cache though never in the pipelines,
// paper §3.2). On a protected cache, injected single-bit strikes are
// corrected in hardware and never reach readers.
func (c *Cache) SetECCProtected(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ecc = on
}

// Reset invalidates every line and clears the LRU clock and statistics,
// returning the cache to its freshly-constructed state. Geometry, ECC
// protection, and the backing device are kept: the EMR runtime pool
// resets the cache between campaign trials so a reused device is
// indistinguishable from a newly built one.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.lines)
	c.useTick = 0
	c.stats = Stats{}
}

// New returns a cache with the given geometry over backing. sets and ways
// must be positive; sets must be a power of two so the set index is a
// simple mask.
func New(backing mem.Memory, sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 {
		//radlint:allow nopanic cache geometry is fixed at machine construction; a bad shape is a build bug
		panic(fmt.Sprintf("cache: invalid geometry %d sets × %d ways", sets, ways))
	}
	if sets&(sets-1) != 0 {
		//radlint:allow nopanic cache geometry is fixed at machine construction; a bad shape is a build bug
		panic(fmt.Sprintf("cache: sets (%d) must be a power of two", sets))
	}
	return &Cache{
		backing: backing,
		sets:    sets,
		ways:    ways,
		lines:   make([]line, sets*ways),
	}
}

// SizeBytes returns the cache capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * LineSize }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Read fills dst from addr, reading through the cache: lines already
// present are served from the (unprotected, possibly upset) cached copy;
// missing lines are fetched from backing memory and installed.
func (c *Cache) Read(addr uint64, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := uint64(len(dst))
	if n == 0 {
		return nil
	}
	for off := uint64(0); off < n; {
		lineNo := (addr + off) / LineSize
		inLine := (addr + off) % LineSize
		chunk := LineSize - inLine
		if chunk > n-off {
			chunk = n - off
		}
		ln, err := c.lookupOrFetch(lineNo)
		if err != nil {
			return err
		}
		copy(dst[off:off+chunk], ln.data[inLine:inLine+chunk])
		off += chunk
	}
	return nil
}

// Write stores src to backing memory (write-through) and updates any
// cached copies so subsequent reads observe the new data.
func (c *Cache) Write(addr uint64, src []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.backing.Write(addr, src); err != nil {
		return err
	}
	n := uint64(len(src))
	for off := uint64(0); off < n; {
		lineNo := (addr + off) / LineSize
		inLine := (addr + off) % LineSize
		chunk := LineSize - inLine
		if chunk > n-off {
			chunk = n - off
		}
		if ln := c.peek(lineNo); ln != nil {
			copy(ln.data[inLine:inLine+chunk], src[off:off+chunk])
		}
		off += chunk
	}
	return nil
}

// FlushRange invalidates every cached line overlapping [addr, addr+n) and
// returns the number of lines flushed (the EMR cost model charges per
// line). The backing copy is authoritative (write-through), so flushing
// discards any upsets the cached copies had absorbed.
func (c *Cache) FlushRange(addr, n uint64) int {
	if n == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	first := addr / LineSize
	last := (addr + n - 1) / LineSize
	flushed := 0
	for lineNo := first; lineNo <= last; lineNo++ {
		if ln := c.peek(lineNo); ln != nil {
			ln.valid = false
			flushed++
		}
	}
	c.stats.LinesFlushed += uint64(flushed)
	return flushed
}

// FlushAll invalidates the whole cache and returns the number of valid
// lines discarded.
func (c *Cache) FlushAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	flushed := 0
	for i := range c.lines {
		if c.lines[i].valid {
			c.lines[i].valid = false
			flushed++
		}
	}
	c.stats.LinesFlushed += uint64(flushed)
	return flushed
}

// FlipBit flips bit (0..7) of the cached byte holding addr, if that line
// is currently resident. It reports whether a resident line was struck.
// The backing memory is untouched: this models an upset in the cache
// array itself.
func (c *Cache) FlipBit(addr uint64, bit uint) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ln := c.peek(addr / LineSize)
	if ln == nil {
		return false
	}
	if c.ecc {
		// The strike lands but per-line SECDED corrects it before any
		// reader consumes the word.
		c.stats.FlipsAbsorbed++
		return true
	}
	ln.data[addr%LineSize] ^= 1 << (bit & 7)
	c.stats.FlipsInjected++
	return true
}

// Contains reports whether the line holding addr is resident.
func (c *Cache) Contains(addr uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peek(addr/LineSize) != nil
}

// ResidentLines returns the number of currently valid lines.
func (c *Cache) ResidentLines() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// set returns the slice of ways for the set holding lineNo.
func (c *Cache) set(lineNo uint64) []line {
	idx := int(lineNo) & (c.sets - 1)
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// peek returns the resident line for lineNo, or nil, without fetching.
func (c *Cache) peek(lineNo uint64) *line {
	set := c.set(lineNo)
	for i := range set {
		if set[i].valid && set[i].tag == lineNo {
			return &set[i]
		}
	}
	return nil
}

// lookupOrFetch returns the line for lineNo, fetching from backing on a
// miss and evicting the LRU way if the set is full.
func (c *Cache) lookupOrFetch(lineNo uint64) (*line, error) {
	c.useTick++
	if ln := c.peek(lineNo); ln != nil {
		c.stats.Hits++
		ln.lastUse = c.useTick
		return ln, nil
	}
	c.stats.Misses++
	set := c.set(lineNo)
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lastUse < victim.lastUse {
			victim = &set[i]
		}
	}
	if victim.valid {
		c.stats.Evictions++
	}
	base := lineNo * LineSize
	// Clamp the fetch to the device: the final partial line reads short.
	span := uint64(LineSize)
	if base+span > c.backing.Size() {
		if base >= c.backing.Size() {
			return nil, &mem.BoundsError{Device: "cache-fetch", Addr: base, Len: LineSize, Size: c.backing.Size()}
		}
		span = c.backing.Size() - base
	}
	var buf [LineSize]byte
	if err := c.backing.Read(base, buf[:span]); err != nil {
		return nil, err
	}
	victim.valid = true
	victim.tag = lineNo
	victim.data = buf
	victim.lastUse = c.useTick
	return victim, nil
}

var _ mem.Memory = (*Cache)(nil)

// Size implements mem.Memory by delegating to the backing device, so a
// Cache can stand wherever a Memory is expected (executors read inputs
// through it transparently).
func (c *Cache) Size() uint64 { return c.backing.Size() }
