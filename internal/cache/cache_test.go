package cache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"radshield/internal/mem"
)

func newBacked(t *testing.T, size uint64, sets, ways int) (*mem.DRAM, *Cache) {
	t.Helper()
	d := mem.NewDRAM(size, false)
	return d, New(d, sets, ways)
}

func TestReadThroughAndHit(t *testing.T) {
	d, c := newBacked(t, 4096, 8, 2)
	src := []byte("radshield cache line contents for the read-through test!")
	if err := d.Write(100, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := c.Read(100, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("read-through mismatch: %q", dst)
	}
	st := c.Stats()
	if st.Misses == 0 || st.Hits != 0 {
		t.Fatalf("first read stats = %+v, want only misses", st)
	}
	if err := c.Read(100, dst); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Hits == 0 {
		t.Fatalf("second read produced no hits: %+v", st)
	}
}

func TestCachedReadIgnoresBackingChange(t *testing.T) {
	// The defining property of a cache: once resident, reads come from the
	// cached copy, not the backing store.
	d, c := newBacked(t, 4096, 8, 2)
	d.Write(0, []byte{1})
	buf := make([]byte, 1)
	c.Read(0, buf)
	d.Write(0, []byte{2}) // direct write, bypassing the cache
	c.Read(0, buf)
	if buf[0] != 1 {
		t.Fatalf("read = %d, want stale cached 1", buf[0])
	}
}

func TestWriteThroughUpdatesBothCopies(t *testing.T) {
	d, c := newBacked(t, 4096, 8, 2)
	d.Write(0, []byte{1})
	buf := make([]byte, 1)
	c.Read(0, buf) // install line
	if err := c.Write(0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	c.Read(0, buf)
	if buf[0] != 9 {
		t.Fatalf("cached copy = %d, want 9", buf[0])
	}
	d.Read(0, buf)
	if buf[0] != 9 {
		t.Fatalf("backing copy = %d, want 9", buf[0])
	}
}

func TestFlipBitCorruptsSharedLine(t *testing.T) {
	// The EMR hazard: two readers of the same line both see the upset.
	d, c := newBacked(t, 4096, 8, 2)
	d.Write(0, []byte{0x00})
	buf := make([]byte, 1)
	c.Read(0, buf) // reader A installs the line
	if !c.FlipBit(0, 4) {
		t.Fatal("FlipBit missed a resident line")
	}
	c.Read(0, buf) // reader B
	if buf[0] != 0x10 {
		t.Fatalf("reader B sees %#x, want corrupted 0x10", buf[0])
	}
	// Backing store is clean: flushing removes the corruption.
	if n := c.FlushRange(0, 1); n != 1 {
		t.Fatalf("FlushRange flushed %d lines, want 1", n)
	}
	c.Read(0, buf)
	if buf[0] != 0x00 {
		t.Fatalf("post-flush read = %#x, want clean 0x00", buf[0])
	}
}

func TestFlipBitOnNonResidentLine(t *testing.T) {
	_, c := newBacked(t, 4096, 8, 2)
	if c.FlipBit(128, 0) {
		t.Fatal("FlipBit claimed to strike a non-resident line")
	}
	if c.Stats().FlipsInjected != 0 {
		t.Fatal("FlipsInjected counted a miss")
	}
}

func TestFlushRangeCountsOnlyResident(t *testing.T) {
	d, c := newBacked(t, 4096, 8, 2)
	d.Write(0, make([]byte, 256))
	buf := make([]byte, 128)
	c.Read(0, buf) // lines 0,1 resident
	if n := c.FlushRange(0, 256); n != 2 {
		t.Fatalf("FlushRange = %d, want 2", n)
	}
	if got := c.ResidentLines(); got != 0 {
		t.Fatalf("ResidentLines after flush = %d", got)
	}
}

func TestFlushAll(t *testing.T) {
	_, c := newBacked(t, 4096, 8, 2)
	buf := make([]byte, 64)
	c.Read(0, buf)
	c.Read(1024, buf)
	if n := c.FlushAll(); n != 2 {
		t.Fatalf("FlushAll = %d, want 2", n)
	}
	if n := c.FlushAll(); n != 0 {
		t.Fatalf("second FlushAll = %d, want 0", n)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set × 2 ways: three distinct lines mapping to the same set must
	// evict the least recently used.
	d := mem.NewDRAM(4096, false)
	c := New(d, 1, 2)
	buf := make([]byte, 1)
	c.Read(0, buf)   // line 0
	c.Read(64, buf)  // line 1
	c.Read(0, buf)   // touch line 0 (now MRU)
	c.Read(128, buf) // line 2 evicts line 1
	if !c.Contains(0) {
		t.Error("line 0 (MRU) was evicted")
	}
	if c.Contains(64) {
		t.Error("line 1 (LRU) survived eviction")
	}
	if !c.Contains(128) {
		t.Error("line 2 not installed")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestUncorrectableBackingErrorPropagates(t *testing.T) {
	d := mem.NewDRAM(4096, true)
	c := New(d, 8, 2)
	d.Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	d.FlipBit(0, 0)
	d.FlipBit(0, 1)
	err := c.Read(0, make([]byte, 8))
	if err == nil {
		t.Fatal("cache fetch of uncorrectable word succeeded")
	}
}

func TestReadPastDeviceFails(t *testing.T) {
	_, c := newBacked(t, 128, 8, 2)
	if err := c.Read(4096, make([]byte, 1)); err == nil {
		t.Fatal("read far past device succeeded")
	}
}

func TestPartialFinalLine(t *testing.T) {
	// Device sizes that are not line multiples must still be readable up
	// to the last byte.
	d := mem.NewDRAM(96, false) // 1.5 lines
	c := New(d, 2, 1)
	d.Write(90, []byte{7})
	buf := make([]byte, 1)
	if err := c.Read(90, buf); err != nil {
		t.Fatalf("partial-line read: %v", err)
	}
	if buf[0] != 7 {
		t.Fatalf("partial-line read = %d, want 7", buf[0])
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty HitRate != 0")
	}
	s.Hits, s.Misses = 3, 1
	if got := s.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	d := mem.NewDRAM(64, false)
	for _, g := range []struct{ sets, ways int }{{0, 1}, {1, 0}, {3, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", g.sets, g.ways)
				}
			}()
			New(d, g.sets, g.ways)
		}()
	}
}

func TestConcurrentReaders(t *testing.T) {
	d, c := newBacked(t, 1<<16, 16, 4)
	src := make([]byte, 1<<16)
	rand.New(rand.NewSource(5)).Read(src)
	d.Write(0, src)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			buf := make([]byte, 256)
			for i := 0; i < 200; i++ {
				off := uint64((g*13 + i*97) % (1<<16 - 256))
				if err := c.Read(off, buf); err != nil {
					done <- err
					return
				}
				if !bytes.Equal(buf, src[off:off+256]) {
					done <- &mem.BoundsError{Device: "mismatch"}
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent reader failed: %v", err)
		}
	}
}

// Property: reading any range through the cache equals reading it from
// clean backing memory, regardless of access order.
func TestPropertyCacheTransparency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := mem.NewDRAM(8192, false)
		src := make([]byte, 8192)
		r.Read(src)
		d.Write(0, src)
		c := New(d, 4, 2) // tiny cache: lots of evictions
		for i := 0; i < 50; i++ {
			n := r.Intn(300) + 1
			off := uint64(r.Intn(8192 - n))
			buf := make([]byte, n)
			if err := c.Read(off, buf); err != nil {
				return false
			}
			if !bytes.Equal(buf, src[off:off+uint64(n)]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCachedRead(b *testing.B) {
	d := mem.NewDRAM(1<<20, false)
	c := New(d, 256, 8)
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Read(uint64(i%1024)*64, buf)
	}
}

// ECC-protected mode: the cache+ECC interaction (absorbed strikes,
// protection toggling) is cache behaviour, so its tests live here
// rather than in a separate file that suggested a different package.
func TestECCProtectedCacheAbsorbsFlips(t *testing.T) {
	d := mem.NewDRAM(4096, false)
	d.Write(0, []byte{0x5A})
	c := New(d, 8, 2)
	c.SetECCProtected(true)
	buf := make([]byte, 1)
	c.Read(0, buf)
	if !c.FlipBit(0, 3) {
		t.Fatal("strike on resident line not acknowledged")
	}
	c.Read(0, buf)
	if buf[0] != 0x5A {
		t.Fatalf("ECC cache leaked corruption: %#x", buf[0])
	}
	st := c.Stats()
	if st.FlipsAbsorbed != 1 || st.FlipsInjected != 0 {
		t.Fatalf("stats = %+v, want 1 absorbed, 0 injected", st)
	}
	// Non-resident strikes still miss.
	if c.FlipBit(2048, 0) {
		t.Fatal("non-resident strike acknowledged on ECC cache")
	}
	// Turning protection off restores the raw behaviour.
	c.SetECCProtected(false)
	if !c.FlipBit(0, 3) {
		t.Fatal("unprotected strike missed")
	}
	c.Read(0, buf)
	if buf[0] == 0x5A {
		t.Fatal("unprotected strike had no effect")
	}
}

func TestSizeAccessors(t *testing.T) {
	d := mem.NewDRAM(4096, false)
	c := New(d, 8, 2)
	if got := c.SizeBytes(); got != 8*2*LineSize {
		t.Fatalf("SizeBytes = %d", got)
	}
	if got := c.Size(); got != 4096 {
		t.Fatalf("Size = %d (must mirror backing device)", got)
	}
}
