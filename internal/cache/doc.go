// Package cache models the shared, unprotected CPU cache of a commodity
// SoC. Commodity compute pipelines and caches lack ECC (paper §2.2), so a
// single-event upset that lands in a cached line silently corrupts every
// subsequent read of that line — by any core — until the line is flushed.
//
// This is exactly the hazard EMR's conflict-aware scheduling removes: if
// two redundant executors read the same input bytes while they sit in the
// shared cache, one upset defeats both copies and the corruption outvotes
// the remaining correct executor... or at best ties it. The cache is
// therefore the centrepiece of the SEU experiments (paper Table 7).
//
// Cache is a write-through, set-associative cache over a backing
// mem.Memory; all traffic moves in LineSize (64-byte) lines. Stats
// counts hits, misses, evictions, flushed lines, and the two
// fault-injection outcomes the experiments classify: FlipsInjected (an
// upset landed in a resident, unprotected line) and FlipsAbsorbed (the
// line was ECC-protected via SetECCProtected, so hardware corrected the
// strike — the ablate-cacheecc comparison).
//
// Invariants: writes always reach the backing store (write-through, so
// a flush never loses data — it only discards the cache copy and
// whatever corruption resides there); FlipBit mutates only the cached
// copy, never the backing store, mirroring a cache-cell strike;
// FlushAll and FlushRange drop lines without writeback, which is EMR's
// "cache clear" discipline between redundant executions.
package cache
