package cache

import (
	"testing"

	"radshield/internal/mem"
)

func TestECCProtectedCacheAbsorbsFlips(t *testing.T) {
	d := mem.NewDRAM(4096, false)
	d.Write(0, []byte{0x5A})
	c := New(d, 8, 2)
	c.SetECCProtected(true)
	buf := make([]byte, 1)
	c.Read(0, buf)
	if !c.FlipBit(0, 3) {
		t.Fatal("strike on resident line not acknowledged")
	}
	c.Read(0, buf)
	if buf[0] != 0x5A {
		t.Fatalf("ECC cache leaked corruption: %#x", buf[0])
	}
	st := c.Stats()
	if st.FlipsAbsorbed != 1 || st.FlipsInjected != 0 {
		t.Fatalf("stats = %+v, want 1 absorbed, 0 injected", st)
	}
	// Non-resident strikes still miss.
	if c.FlipBit(2048, 0) {
		t.Fatal("non-resident strike acknowledged on ECC cache")
	}
	// Turning protection off restores the raw behaviour.
	c.SetECCProtected(false)
	if !c.FlipBit(0, 3) {
		t.Fatal("unprotected strike missed")
	}
	c.Read(0, buf)
	if buf[0] == 0x5A {
		t.Fatal("unprotected strike had no effect")
	}
}

func TestSizeAccessors(t *testing.T) {
	d := mem.NewDRAM(4096, false)
	c := New(d, 8, 2)
	if got := c.SizeBytes(); got != 8*2*LineSize {
		t.Fatalf("SizeBytes = %d", got)
	}
	if got := c.Size(); got != 4096 {
		t.Fatalf("Size = %d (must mirror backing device)", got)
	}
}
