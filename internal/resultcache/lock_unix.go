//go:build unix

package resultcache

import (
	"errors"
	"os"
	"syscall"
)

// flockTry takes an exclusive, non-blocking advisory lock on f. It
// returns ErrLocked when another process already holds the lock —
// flock(2) is inherited across fork but not duplicated by open, so one
// cache directory admits one writer process at a time.
func flockTry(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return ErrLocked
	}
	return err
}

// flockRelease drops the advisory lock. Closing the file would release
// it too; the explicit unlock keeps Close's ordering obvious.
func flockRelease(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}

// flockSupported reports whether this platform enforces the advisory
// lock (tests skip contention checks where it cannot).
func flockSupported() bool { return true }
