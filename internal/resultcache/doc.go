// Package resultcache is the content-addressed campaign result store:
// a compact binary on-disk cache that turns a re-run of an already-flown
// campaign arm into a replay.
//
// # Addressing
//
// Every entry is addressed by a 32-byte key,
//
//	key = SHA-256(fingerprint ‖ 0x00 ‖ domain ‖ 0x00 ‖ payload)
//
// where payload is the canonical deterministic encoding (package codec,
// [Enc]) of everything the arm's result depends on — the arm
// configuration, the seed, and the trial identity — and fingerprint is
// the code-version fingerprint of the running binary ([Fingerprint]):
// the VCS revision from debug/buildinfo when the build is clean, else a
// SHA-256 of the executable itself. A rebuilt binary therefore never
// replays stale arms: its keys simply do not match, and the old entries
// age out unused.
//
// The soundness of replaying a cached result rests on the determinism
// contract of DESIGN.md §9: a campaign arm is a pure function of
// (config, seed), machine-checked whole-program by radlint's armpurity
// analyzer. Only armpurity-proven entry points may consult this store —
// see RESULTCACHE.md for the full argument and the contract test that
// enforces cached ⊆ proven.
//
// # On-disk format
//
// A cache directory holds three files:
//
//	cache.data   append-only record log
//	cache.index  key → (offset, length) table, atomically replaced
//	cache.lock   advisory flock target (empty)
//
// The data file opens with an 8-byte magic header and then holds
// length-prefixed records, each individually checksummed:
//
//	key[32] | payloadLen uint32 LE | crc32(payload) uint32 LE | payload
//
// The index file is a sorted table with a trailing CRC-32 over its
// entire contents, committed by write-to-temp + atomic rename. The
// index is strictly an optimization: if it is missing, stale, or fails
// its checksum, [Open] rebuilds it by scanning the data file. Records
// appended after the last index commit (a crash before [Store.Flush])
// are recovered by the same tail scan; trailing garbage from a torn
// write is truncated.
//
// Corruption anywhere degrades to a miss, never to a wrong replay:
// [Store.Get] re-verifies the stored key and per-record CRC on every
// read, and a mismatch drops the entry so the arm recomputes.
//
// # Concurrency
//
// A Store is safe for concurrent use by the scheduler's workers
// (internal/sched); a single mutex guards the in-memory index and the
// append path — arm compute time dwarfs it. Cross-process safety is
// advisory file locking on cache.lock: [Open] takes an exclusive
// non-blocking flock and returns [ErrLocked] when another process holds
// the directory, so callers degrade to running uncached rather than
// interleaving appends.
//
// A nil *Store is a valid "caching disabled" handle: Get always misses
// and Put is a no-op, so campaign code never guards against a missing
// cache.
package resultcache
