//go:build !unix

package resultcache

import "os"

// Non-unix platforms get no advisory locking: single-process use stays
// correct (the in-process mutex covers it); concurrent processes fall
// outside the supported envelope there. The CI and flight targets are
// all unix.
func flockTry(f *os.File) error { return nil }

func flockRelease(f *os.File) error { return nil }

func flockSupported() bool { return false }
