package resultcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openTest opens a store in dir with a pinned fingerprint so tests are
// independent of how the test binary was built.
func openTest(t *testing.T, dir, fp string) *Store {
	t.Helper()
	s, err := Open(dir, WithFingerprint(fp))
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func testKey(s *Store, trial int64) Key {
	var e Enc
	e.Int(trial)
	return s.Key("test/v1", &e)
}

func payloadFor(trial int64) []byte {
	return []byte(fmt.Sprintf("result-%d", trial))
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")

	k := testKey(s, 1)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(k, payloadFor(1))
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payloadFor(1)) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", st.HitRate())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestStoreReopenWithIndex(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")
	for i := int64(0); i < 20; i++ {
		s.Put(testKey(s, i), payloadFor(i))
	}
	if err := s.Close(); err != nil { // commits the index
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, indexFileName)); err != nil {
		t.Fatalf("index not committed: %v", err)
	}

	s = openTest(t, dir, "fp1")
	defer s.Close()
	for i := int64(0); i < 20; i++ {
		got, ok := s.Get(testKey(s, i))
		if !ok || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("trial %d after reopen: %q, %v", i, got, ok)
		}
	}
}

func TestStoreRecoversUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")
	s.Put(testKey(s, 1), payloadFor(1))
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Appended after the last index commit — simulates a crash before
	// Flush: release the lock without committing.
	s.Put(testKey(s, 2), payloadFor(2))
	s.mu.Lock()
	s.data.Close()
	flockRelease(s.lockFile)
	s.lockFile.Close()
	s.mu.Unlock()

	s = openTest(t, dir, "fp1")
	defer s.Close()
	for i := int64(1); i <= 2; i++ {
		got, ok := s.Get(testKey(s, i))
		if !ok || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("trial %d after crash recovery: %q, %v", i, got, ok)
		}
	}
}

func TestStoreCorruptIndexFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")
	for i := int64(0); i < 5; i++ {
		s.Put(testKey(s, i), payloadFor(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	idx := filepath.Join(dir, indexFileName)
	raw, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40 // break the index checksum
	if err := os.WriteFile(idx, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s = openTest(t, dir, "fp1")
	defer s.Close()
	for i := int64(0); i < 5; i++ {
		got, ok := s.Get(testKey(s, i))
		if !ok || !bytes.Equal(got, payloadFor(i)) {
			t.Fatalf("trial %d after index corruption: %q, %v", i, got, ok)
		}
	}
}

func TestStoreBitFlipIsCleanMiss(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")
	k := testKey(s, 7)
	s.Put(k, payloadFor(7))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip one payload bit on disk: the record tail is the payload.
	data := filepath.Join(dir, dataFileName)
	raw, err := os.ReadFile(data)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(data, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s = openTest(t, dir, "fp1")
	defer s.Close()
	if got, ok := s.Get(k); ok {
		t.Fatalf("bit-flipped record replayed as %q", got)
	}
	// The arm recomputes and re-caches; the new record must win.
	s.Put(k, payloadFor(7))
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, payloadFor(7)) {
		t.Fatalf("recompute after corruption: %q, %v", got, ok)
	}
}

func TestStoreTruncatedDataIsCleanMiss(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")
	k1, k2 := testKey(s, 1), testKey(s, 2)
	s.Put(k1, payloadFor(1))
	s.Put(k2, payloadFor(2))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Chop the tail mid-record: the second entry is gone, the first
	// must survive, and Open must not trust index entries past EOF.
	data := filepath.Join(dir, dataFileName)
	fi, err := os.Stat(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(data, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s = openTest(t, dir, "fp1")
	defer s.Close()
	if got, ok := s.Get(k1); !ok || !bytes.Equal(got, payloadFor(1)) {
		t.Fatalf("intact record lost: %q, %v", got, ok)
	}
	if _, ok := s.Get(k2); ok {
		t.Fatal("truncated record replayed")
	}
}

func TestStoreForeignFileResets(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, dataFileName), []byte("not a cache at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, "fp1")
	defer s.Close()
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("foreign file produced %d entries", st.Entries)
	}
	k := testKey(s, 1)
	s.Put(k, payloadFor(1))
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, payloadFor(1)) {
		t.Fatalf("store unusable after reset: %q, %v", got, ok)
	}
}

func TestFingerprintChangeInvalidates(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "build-A")
	// The key embeds the fingerprint, so "the same arm" under a new
	// build hashes differently and misses.
	kA := testKey(s, 3)
	s.Put(kA, payloadFor(3))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = openTest(t, dir, "build-B")
	defer s.Close()
	kB := testKey(s, 3)
	if kA == kB {
		t.Fatal("keys identical across fingerprints")
	}
	if _, ok := s.Get(kB); ok {
		t.Fatal("stale arm replayed across a code change")
	}
	// The old entry is still present (keyed by build-A), just unmatched.
	if got, ok := s.Get(kA); !ok || !bytes.Equal(got, payloadFor(3)) {
		t.Fatalf("old-build entry lost: %q, %v", got, ok)
	}
}

func TestKeySensitivity(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")
	defer s.Close()

	base := func() *Enc {
		var e Enc
		e.Int(42)      // seed
		e.Float(1.5)   // rate boost
		e.Str("leo-6") // environment
		return &e
	}
	k0 := s.Key("mission/v1", base())

	e := base()
	e.Int(0) // extra field
	if s.Key("mission/v1", e) == k0 {
		t.Fatal("extra field did not change the key")
	}
	var e2 Enc
	e2.Int(43)
	e2.Float(1.5)
	e2.Str("leo-6")
	if s.Key("mission/v1", &e2) == k0 {
		t.Fatal("changed seed did not change the key")
	}
	if s.Key("table7/v1", base()) == k0 {
		t.Fatal("changed domain did not change the key")
	}
}

func TestNilStoreIsDisabled(t *testing.T) {
	var s *Store
	if _, ok := s.Get(Key{}); ok {
		t.Fatal("nil store hit")
	}
	s.Put(Key{}, []byte("x"))
	if err := s.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if s.FingerprintID() != "" {
		t.Fatal("nil FingerprintID non-empty")
	}
}

func TestDuplicatePutFirstWins(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")
	defer s.Close()
	k := testKey(s, 1)
	s.Put(k, []byte("first"))
	s.Put(k, []byte("second"))
	got, ok := s.Get(k)
	if !ok || string(got) != "first" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("Entries = %d", st.Entries)
	}
}

func TestFingerprintStable(t *testing.T) {
	a, err := Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	b, err := Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	if a != b || a == "" {
		t.Fatalf("Fingerprint unstable or empty: %q vs %q", a, b)
	}
}

func TestOpenSecondHandleLocked(t *testing.T) {
	if !flockSupported() {
		t.Skip("no advisory locking on this platform")
	}
	dir := t.TempDir()
	s := openTest(t, dir, "fp1")
	defer s.Close()
	if _, err := Open(dir, WithFingerprint("fp1")); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
}
