package resultcache

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	var e Enc
	e.Bool(true)
	e.Bool(false)
	e.Int(-42)
	e.Int(1 << 60)
	e.Uint(0)
	e.Uint(^uint64(0))
	e.Float(3.14159)
	e.Float(-0.0)
	e.Duration(90 * 24 * time.Hour)
	e.Str("")
	e.Str("EMR+MBU")
	e.Blob(nil)
	e.Blob([]byte{0, 1, 2, 255})

	d := NewDec(e.Bytes())
	if got := d.Bool(); got != true {
		t.Errorf("Bool #1 = %v", got)
	}
	if got := d.Bool(); got != false {
		t.Errorf("Bool #2 = %v", got)
	}
	if got := d.Int(); got != -42 {
		t.Errorf("Int #1 = %d", got)
	}
	if got := d.Int(); got != 1<<60 {
		t.Errorf("Int #2 = %d", got)
	}
	if got := d.Uint(); got != 0 {
		t.Errorf("Uint #1 = %d", got)
	}
	if got := d.Uint(); got != ^uint64(0) {
		t.Errorf("Uint #2 = %d", got)
	}
	if got := d.Float(); got != 3.14159 {
		t.Errorf("Float #1 = %v", got)
	}
	if got := d.Float(); got != 0 {
		t.Errorf("Float #2 = %v", got)
	}
	if got := d.Duration(); got != 90*24*time.Hour {
		t.Errorf("Duration = %v", got)
	}
	if got := d.Str(); got != "" {
		t.Errorf("Str #1 = %q", got)
	}
	if got := d.Str(); got != "EMR+MBU" {
		t.Errorf("Str #2 = %q", got)
	}
	if got := d.Blob(); len(got) != 0 {
		t.Errorf("Blob #1 = %v", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{0, 1, 2, 255}) {
		t.Errorf("Blob #2 = %v", got)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestCodecDeterministic(t *testing.T) {
	enc := func() []byte {
		var e Enc
		e.Int(7)
		e.Str("mission")
		e.Float(1.5)
		out := make([]byte, e.Len())
		copy(out, e.Bytes())
		return out
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("identical inputs encoded to different bytes")
	}
}

func TestDecTagMismatch(t *testing.T) {
	var e Enc
	e.Int(5)
	d := NewDec(e.Bytes())
	if got := d.Str(); got != "" {
		t.Errorf("mismatched read returned %q", got)
	}
	if !errors.Is(d.Err(), ErrCodec) {
		t.Fatalf("Err = %v, want ErrCodec", d.Err())
	}
	// Sticky: subsequent reads stay zero, no panic.
	if got := d.Int(); got != 0 {
		t.Errorf("read after error = %d", got)
	}
}

func TestDecTruncated(t *testing.T) {
	var e Enc
	e.Str("hello world")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDec(full[:cut])
		d.Str()
		if d.Err() == nil && cut != len(full) {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecTrailingBytes(t *testing.T) {
	var e Enc
	e.Bool(true)
	e.Int(1)
	d := NewDec(e.Bytes())
	d.Bool()
	if err := d.Close(); !errors.Is(err, ErrCodec) {
		t.Fatalf("Close with unread tail = %v, want ErrCodec", err)
	}
}

func TestDecHostileLength(t *testing.T) {
	// A string header claiming 4 GiB must not allocate or read out of
	// bounds.
	raw := []byte{tagString, 0xff, 0xff, 0xff, 0xff, 'x'}
	d := NewDec(raw)
	if got := d.Str(); got != "" {
		t.Errorf("hostile length returned %q", got)
	}
	if !errors.Is(d.Err(), ErrCodec) {
		t.Fatalf("Err = %v, want ErrCodec", d.Err())
	}
}
