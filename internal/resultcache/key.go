package resultcache

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"runtime/debug"
)

// Key addresses one cached arm result: a SHA-256 over the code-version
// fingerprint, a domain string naming the campaign and its encoding
// version, and the canonical encoding of the arm's inputs.
type Key [sha256.Size]byte

// String renders the key as hex for logs and diagnostics.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Fingerprint identifies the code version of the running binary. Keys
// mix it in so a rebuilt binary never replays arms flown by different
// code: stale entries simply stop matching.
//
// When debug/buildinfo carries a VCS revision and the working tree was
// clean at build time, the fingerprint is "vcs:<revision>" — stable
// across rebuilds of the same commit, which is what lets CI reuse a
// persisted cache. A dirty tree (or a build without VCS stamping, such
// as a test binary) falls back to "exe:<sha256 of the executable>", so
// any change to the binary's bytes invalidates the cache.
func Fingerprint() (string, error) {
	if rev, ok := vcsRevision(); ok {
		return "vcs:" + rev, nil
	}
	return exeFingerprint()
}

// vcsRevision extracts a usable revision from build info: present and
// built from a clean tree. A dirty build must not key on the revision —
// two dirty builds of the same commit can run different code.
func vcsRevision() (string, bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	var rev string
	modified := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev == "" || modified {
		return "", false
	}
	return rev, true
}

// exeFingerprint hashes the running executable's bytes.
func exeFingerprint() (string, error) {
	path, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return "exe:" + hex.EncodeToString(h.Sum(nil)), nil
}
