package resultcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzEntryRoundTrip drives arbitrary payloads through the full record
// path — Put, in-memory Get, index commit, reopen, tail-scan Get — and
// asserts byte-identical replay. Any divergence would be a wrong-replay
// bug, the one failure mode the cache must never have.
func FuzzEntryRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("result-1"))
	f.Add([]byte{0x00, 0xff, 0x00, 0xff})
	f.Add(bytes.Repeat([]byte{0xa5}, 4096))
	f.Fuzz(func(t *testing.T, payload []byte) {
		dir := t.TempDir()
		s, err := Open(dir, WithFingerprint("fuzz"))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		var e Enc
		e.Blob(payload)
		k := s.Key("fuzz/v1", &e)
		s.Put(k, payload)
		if err := s.Err(); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("in-memory Get = %v, %v", got, ok)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		s, err = Open(dir, WithFingerprint("fuzz"))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer s.Close()
		got, ok = s.Get(k)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("replayed Get = %v, %v", got, ok)
		}
	})
}

// FuzzIndexDecode feeds arbitrary bytes to the index loader (and, via
// Open, the tail scanner) over a small valid data file. Whatever the
// bytes, Open must neither panic nor produce a store that replays wrong
// data — a hostile index degrades to a rescan, a hostile data tail to a
// truncation.
func FuzzIndexDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(indexMagic))
	f.Add([]byte("RSIX\x00\x00\x00\x01\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add(bytes.Repeat([]byte{0x00}, headerLen+8+indexEntryLen+4))
	f.Fuzz(func(t *testing.T, idx []byte) {
		dir := t.TempDir()
		s, err := Open(dir, WithFingerprint("fuzz"))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		var keys []Key
		for i := int64(0); i < 3; i++ {
			var e Enc
			e.Int(i)
			k := s.Key("fuzz/v1", &e)
			s.Put(k, payloadFor(i))
			keys = append(keys, k)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, indexFileName), idx, 0o644); err != nil {
			t.Fatal(err)
		}

		s, err = Open(dir, WithFingerprint("fuzz"))
		if err != nil {
			t.Fatalf("Open with fuzzed index: %v", err)
		}
		defer s.Close()
		for i, k := range keys {
			if got, ok := s.Get(k); ok && !bytes.Equal(got, payloadFor(int64(i))) {
				t.Fatalf("wrong replay for trial %d: %q", i, got)
			}
		}
	})
}
