package resultcache

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// The two-process contention test re-execs the test binary: the child
// (selected by RESULTCACHE_LOCK_CHILD) opens the store and holds it
// until released, while the parent proves that a concurrent Open from a
// genuinely different process observes ErrLocked.

const (
	lockChildEnv = "RESULTCACHE_LOCK_CHILD"
	readyFile    = "child-ready"
	releaseFile  = "child-release"
)

func TestMain(m *testing.M) {
	if dir := os.Getenv(lockChildEnv); dir != "" {
		os.Exit(lockChildMain(dir))
	}
	os.Exit(m.Run())
}

// lockChildMain is the child process body: hold the cache directory's
// lock, signal readiness, wait for the parent's release.
func lockChildMain(dir string) int {
	s, err := Open(dir, WithFingerprint("child"))
	if err != nil {
		return 1
	}
	defer s.Close()
	if err := os.WriteFile(filepath.Join(dir, readyFile), nil, 0o644); err != nil {
		return 1
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(filepath.Join(dir, releaseFile)); err == nil {
			return 0
		}
		time.Sleep(10 * time.Millisecond)
	}
	return 2 // parent never released us
}

func TestTwoProcessLockContention(t *testing.T) {
	if !flockSupported() {
		t.Skip("no advisory locking on this platform")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	child := exec.Command(exe, "-test.run=TestTwoProcessLockContention")
	child.Env = append(os.Environ(), lockChildEnv+"="+dir)
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	released := false
	defer func() {
		if !released {
			os.WriteFile(filepath.Join(dir, releaseFile), nil, 0o644)
		}
		child.Wait()
	}()

	// Wait for the child to hold the lock.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, readyFile)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never signalled ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Contended: our Open must fail fast with ErrLocked, not block.
	if _, err := Open(dir, WithFingerprint("parent")); !errors.Is(err, ErrLocked) {
		t.Fatalf("Open while child holds lock = %v, want ErrLocked", err)
	}

	// Release the child; once it exits the lock must be free again.
	if err := os.WriteFile(filepath.Join(dir, releaseFile), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	released = true
	if err := child.Wait(); err != nil {
		t.Fatalf("child: %v", err)
	}
	s, err := Open(dir, WithFingerprint("parent"))
	if err != nil {
		t.Fatalf("Open after child exit: %v", err)
	}
	s.Close()
}
