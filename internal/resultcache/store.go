package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"radshield/internal/telemetry"
)

const (
	dataFileName  = "cache.data"
	indexFileName = "cache.index"
	lockFileName  = "cache.lock"

	// Magic headers version the on-disk format; bump the trailing byte
	// on any layout change so old stores are discarded, not misread.
	dataMagic  = "RSRC\x00\x00\x00\x01"
	indexMagic = "RSIX\x00\x00\x00\x01"

	headerLen = 8
	// Record layout: key[32] | payloadLen uint32 | crc32(payload) uint32.
	recHeaderLen = KeySize + 8
	// indexEntryLen is key[32] | offset uint64 | payloadLen uint32.
	indexEntryLen = KeySize + 12

	// maxPayload bounds a single record so a corrupted length field
	// cannot drive a giant allocation during recovery scans.
	maxPayload = 1 << 30
)

// KeySize is the byte length of a cache Key.
const KeySize = sha256.Size

// ErrLocked reports that another process holds the cache directory's
// advisory lock. Callers should degrade to running uncached.
var ErrLocked = errors.New("resultcache: cache directory locked by another process")

// Stats is a point-in-time summary of store activity.
type Stats struct {
	Hits    uint64 // Get calls satisfied from the store
	Misses  uint64 // Get calls that fell through to recompute
	Entries int    // records addressable right now
	Bytes   int64  // data file size
}

// HitRate returns hits/(hits+misses), 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entryRef struct {
	off int64
	n   uint32
}

// Store is an open cache directory. See the package documentation for
// the on-disk format and concurrency contract. A nil *Store disables
// caching: Get misses, Put and Flush are no-ops.
type Store struct {
	mu       sync.Mutex
	dir      string
	fp       string
	data     *os.File
	lockFile *os.File
	index    map[Key]entryRef
	size     int64 // data file length
	appended bool  // records appended since the last index commit
	putErr   error // first append failure; writes disable, reads continue

	hits, misses uint64
	hitsC        *telemetry.Counter
	missesC      *telemetry.Counter
	bytesG       *telemetry.Gauge
}

type options struct {
	fp  string
	tel *telemetry.Registry
}

// Option configures Open.
type Option func(*options)

// WithTelemetry attaches a registry; the store maintains
// resultcache_hits_total, resultcache_misses_total and
// resultcache_bytes.
func WithTelemetry(r *telemetry.Registry) Option {
	return func(o *options) { o.tel = r }
}

// WithFingerprint overrides the code-version fingerprint normally
// derived by Fingerprint. Tests use it to simulate a code change
// without rebuilding the binary.
func WithFingerprint(fp string) Option {
	return func(o *options) { o.fp = fp }
}

// Open opens (creating if needed) the cache directory at dir, takes its
// exclusive advisory lock, and loads the index — falling back to a full
// scan of the data file when the index is missing or fails its
// checksum, and recovering any records appended after the last index
// commit. Returns ErrLocked when another process holds the directory.
func Open(dir string, opts ...Option) (*Store, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.fp == "" {
		fp, err := Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("resultcache: fingerprint: %w", err)
		}
		o.fp = fp
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lockFile, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockTry(lockFile); err != nil {
		lockFile.Close()
		return nil, err
	}
	data, err := os.OpenFile(filepath.Join(dir, dataFileName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		lockFile.Close()
		return nil, err
	}
	s := &Store{
		dir:      dir,
		fp:       o.fp,
		data:     data,
		lockFile: lockFile,
		index:    make(map[Key]entryRef),
		hitsC:    o.tel.Counter("resultcache_hits_total", "lookups"),
		missesC:  o.tel.Counter("resultcache_misses_total", "lookups"),
		bytesG:   o.tel.Gauge("resultcache_bytes", "bytes"),
	}
	if err := s.load(); err != nil {
		data.Close()
		lockFile.Close()
		return nil, err
	}
	s.bytesG.Set(float64(s.size))
	return s, nil
}

// load initializes the in-memory index from disk: verify the data
// header (resetting a foreign or corrupted file — it is only a cache),
// adopt the committed index if it checks out, then scan the tail for
// records appended after the last commit, truncating torn trailing
// bytes.
func (s *Store) load() error {
	fi, err := s.data.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	if size < headerLen || !s.headerOK() {
		if err := s.reset(); err != nil {
			return err
		}
		size = headerLen
	}
	s.size = size

	scanFrom := int64(headerLen)
	if refs, covered, ok := s.loadIndex(); ok {
		s.index = refs
		scanFrom = covered
	}
	return s.scanTail(scanFrom)
}

// headerOK reports whether the data file starts with our magic.
func (s *Store) headerOK() bool {
	var hdr [headerLen]byte
	if _, err := s.data.ReadAt(hdr[:], 0); err != nil {
		return false
	}
	return string(hdr[:]) == dataMagic
}

// reset truncates the data file to a fresh header. Cached results are
// reproducible by construction, so destroying an unreadable store is
// always safe — the arms recompute.
func (s *Store) reset() error {
	if err := s.data.Truncate(0); err != nil {
		return err
	}
	if _, err := s.data.WriteAt([]byte(dataMagic), 0); err != nil {
		return err
	}
	return nil
}

// loadIndex reads the committed index file. It returns the decoded
// references, the data-file offset the index covers up to, and whether
// the index was usable. Any defect — bad magic, short file, checksum
// mismatch, out-of-bounds entry — discards the index in favor of a
// scan; the index is an optimization, never the source of truth.
func (s *Store) loadIndex() (map[Key]entryRef, int64, bool) {
	raw, err := os.ReadFile(filepath.Join(s.dir, indexFileName))
	if err != nil {
		return nil, 0, false
	}
	if len(raw) < headerLen+8+4 || string(raw[:headerLen]) != indexMagic {
		return nil, 0, false
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, 0, false
	}
	count := binary.LittleEndian.Uint64(body[headerLen:])
	entries := body[headerLen+8:]
	if uint64(len(entries)) != count*indexEntryLen {
		return nil, 0, false
	}
	refs := make(map[Key]entryRef, count)
	covered := int64(headerLen)
	for i := uint64(0); i < count; i++ {
		e := entries[i*indexEntryLen:]
		var k Key
		copy(k[:], e[:KeySize])
		off := int64(binary.LittleEndian.Uint64(e[KeySize:]))
		n := binary.LittleEndian.Uint32(e[KeySize+8:])
		end := off + recHeaderLen + int64(n)
		if off < headerLen || n > maxPayload || end > s.size {
			return nil, 0, false
		}
		refs[k] = entryRef{off: off, n: n}
		if end > covered {
			covered = end
		}
	}
	return refs, covered, true
}

// scanTail walks records from off to the end of the data file, adding
// each valid record to the index. The first invalid record marks a torn
// or corrupted tail; the file is truncated there so future appends
// start from a clean boundary.
func (s *Store) scanTail(off int64) error {
	for off < s.size {
		var hdr [recHeaderLen]byte
		if _, err := s.data.ReadAt(hdr[:], off); err != nil {
			return s.truncateAt(off)
		}
		n := binary.LittleEndian.Uint32(hdr[KeySize:])
		sum := binary.LittleEndian.Uint32(hdr[KeySize+4:])
		end := off + recHeaderLen + int64(n)
		if n > maxPayload || end > s.size {
			return s.truncateAt(off)
		}
		payload := make([]byte, n)
		if _, err := s.data.ReadAt(payload, off+recHeaderLen); err != nil {
			return s.truncateAt(off)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return s.truncateAt(off)
		}
		var k Key
		copy(k[:], hdr[:KeySize])
		s.index[k] = entryRef{off: off, n: n}
		s.appended = true // recovered records are not yet in the committed index
		off = end
	}
	return nil
}

// truncateAt discards the data file tail from off on and records the
// new size.
func (s *Store) truncateAt(off int64) error {
	if err := s.data.Truncate(off); err != nil {
		return err
	}
	s.size = off
	return nil
}

// Key derives the cache key for one arm: SHA-256 over the store's
// code-version fingerprint, the domain (campaign name + encoding
// version, e.g. "mission/v1"), and the canonical encoding of the arm's
// inputs. Keys from stores with different fingerprints never collide in
// practice, which is the whole invalidation story — see RESULTCACHE.md.
func (s *Store) Key(domain string, enc *Enc) Key {
	h := sha256.New()
	h.Write([]byte(s.fp))
	h.Write([]byte{0})
	h.Write([]byte(domain))
	h.Write([]byte{0})
	h.Write(enc.Bytes())
	var k Key
	h.Sum(k[:0])
	return k
}

// Get returns the payload stored under k. Every read re-verifies the
// record's stored key and CRC; a mismatch (bit rot, torn write) drops
// the entry and reports a miss so the arm recomputes — corruption can
// cost time, never correctness. Safe on a nil receiver (always a miss).
func (s *Store) Get(k Key) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ref, ok := s.index[k]
	if !ok {
		return s.miss()
	}
	buf := make([]byte, recHeaderLen+int64(ref.n))
	if _, err := s.data.ReadAt(buf, ref.off); err != nil {
		delete(s.index, k)
		return s.miss()
	}
	var stored Key
	copy(stored[:], buf[:KeySize])
	n := binary.LittleEndian.Uint32(buf[KeySize:])
	sum := binary.LittleEndian.Uint32(buf[KeySize+4:])
	payload := buf[recHeaderLen:]
	if stored != k || n != ref.n || crc32.ChecksumIEEE(payload) != sum {
		delete(s.index, k)
		return s.miss()
	}
	s.hits++
	s.hitsC.Inc()
	return payload, true
}

// miss tallies a failed lookup. Callers hold s.mu.
func (s *Store) miss() ([]byte, bool) {
	s.misses++
	s.missesC.Inc()
	return nil, false
}

// Put appends payload under k. Put never fails the caller: an append
// error is recorded (see Err), writes disable, and the campaign flies
// on uncached. Duplicate keys are ignored — the first write wins, which
// keeps concurrent workers racing on the same arm benign. Safe on a nil
// receiver (no-op).
func (s *Store) Put(k Key, payload []byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.putErr != nil {
		return
	}
	if _, dup := s.index[k]; dup {
		return
	}
	if len(payload) > maxPayload {
		s.putErr = fmt.Errorf("resultcache: payload %d bytes exceeds limit", len(payload))
		return
	}
	rec := make([]byte, 0, recHeaderLen+len(payload))
	rec = append(rec, k[:]...)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if _, err := s.data.WriteAt(rec, s.size); err != nil {
		s.putErr = err
		// Best effort: drop the torn record so the on-disk tail stays
		// parseable. A failure here is recovered by the next Open's scan.
		_ = s.data.Truncate(s.size)
		return
	}
	s.index[k] = entryRef{off: s.size, n: uint32(len(payload))}
	s.size += int64(len(rec))
	s.appended = true
	s.bytesG.Set(float64(s.size))
}

// Err returns the first append failure, nil while all writes landed.
func (s *Store) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putErr
}

// Flush commits the in-memory index: entries are serialized sorted by
// key with a trailing CRC-32, written to a temporary file in the cache
// directory, synced, and atomically renamed over cache.index. A crash
// at any point leaves either the old or the new index, never a torn
// one. No-op when nothing was appended, and on a nil receiver.
func (s *Store) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.appended {
		return nil
	}
	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	body := make([]byte, 0, headerLen+8+len(keys)*indexEntryLen+4)
	body = append(body, indexMagic...)
	body = binary.LittleEndian.AppendUint64(body, uint64(len(keys)))
	for _, k := range keys {
		ref := s.index[k]
		body = append(body, k[:]...)
		body = binary.LittleEndian.AppendUint64(body, uint64(ref.off))
		body = binary.LittleEndian.AppendUint32(body, ref.n)
	}
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))

	tmp, err := os.CreateTemp(s.dir, indexFileName+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexFileName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.appended = false
	return nil
}

// Close flushes the index, releases the directory lock, and closes the
// files. The store is unusable afterwards. Safe on a nil receiver.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	flushErr := s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	syncErr := s.data.Sync()
	closeErr := s.data.Close()
	_ = flockRelease(s.lockFile)
	lockErr := s.lockFile.Close()
	for _, err := range []error{flushErr, syncErr, closeErr, lockErr} {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a point-in-time activity summary. Safe on a nil
// receiver (all zeros).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:    s.hits,
		Misses:  s.misses,
		Entries: len(s.index),
		Bytes:   s.size,
	}
}

// FingerprintID returns the code-version fingerprint this store keys
// on.
func (s *Store) FingerprintID() string {
	if s == nil {
		return ""
	}
	return s.fp
}
