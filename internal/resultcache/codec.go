package resultcache

import (
	"encoding/binary"
	"errors"
	"math"
	"time"
)

// The codec is a tagged, fixed-width, little-endian binary encoding.
// Determinism is the whole point: the same Go values always produce the
// same bytes, on every platform, so they can feed a content hash.
// Every value carries a one-byte type tag so a decoder reading a
// corrupted or mismatched payload fails cleanly instead of
// reinterpreting bytes.
const (
	tagBool byte = iota + 1
	tagInt
	tagUint
	tagFloat
	tagDuration
	tagString
	tagBlob
)

// ErrCodec is the sticky error reported by a Dec that read malformed,
// truncated, or type-mismatched data.
var ErrCodec = errors.New("resultcache: malformed payload")

// Enc builds a canonical binary encoding. The zero value is ready to
// use; values append in call order, and the order is part of the
// format — encoder and decoder must agree field for field.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded buffer. The slice aliases the encoder's
// internal storage; it is valid until the next append.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Enc) Len() int { return len(e.buf) }

// Bool appends a boolean.
func (e *Enc) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, tagBool, b)
}

// Int appends a signed integer as 8 fixed bytes.
func (e *Enc) Int(v int64) {
	e.buf = append(e.buf, tagInt)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
}

// Uint appends an unsigned integer as 8 fixed bytes.
func (e *Enc) Uint(v uint64) {
	e.buf = append(e.buf, tagUint)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Float appends a float64 by its IEEE-754 bit pattern.
func (e *Enc) Float(v float64) {
	e.buf = append(e.buf, tagFloat)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Duration appends a time.Duration as its nanosecond count.
func (e *Enc) Duration(d time.Duration) {
	e.buf = append(e.buf, tagDuration)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(d.Nanoseconds()))
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.buf = append(e.buf, tagString)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(p []byte) {
	e.buf = append(e.buf, tagBlob)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(p)))
	e.buf = append(e.buf, p...)
}

// Dec reads values back out of an encoded buffer. Errors are sticky:
// after the first malformed read every subsequent call returns the zero
// value, so decode sequences read straight through and check Err (or
// Close) once at the end. A Dec never panics on hostile input — every
// read is bounds- and tag-checked.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over p. The decoder aliases p; the caller
// must not mutate it while decoding.
func NewDec(p []byte) *Dec { return &Dec{buf: p} }

// Err returns the sticky decode error, nil while all reads succeeded.
func (d *Dec) Err() error { return d.err }

// Close verifies the payload was fully consumed and returns the sticky
// error. Trailing bytes are malformed: a shorter-than-expected struct
// would silently zero-fill its tail otherwise.
func (d *Dec) Close() error {
	if d.err == nil && d.off != len(d.buf) {
		d.err = ErrCodec
	}
	return d.err
}

// need consumes the tag byte plus n payload bytes and returns the
// payload start offset, or -1 after recording the sticky error.
func (d *Dec) need(tag byte, n int) int {
	if d.err != nil {
		return -1
	}
	if d.off >= len(d.buf) || d.buf[d.off] != tag || len(d.buf)-d.off-1 < n {
		d.err = ErrCodec
		return -1
	}
	start := d.off + 1
	d.off = start + n
	return start
}

// Bool reads a boolean.
func (d *Dec) Bool() bool {
	i := d.need(tagBool, 1)
	if i < 0 {
		return false
	}
	switch d.buf[i] {
	case 0:
		return false
	case 1:
		return true
	}
	d.err = ErrCodec
	return false
}

// Int reads a signed integer.
func (d *Dec) Int() int64 {
	i := d.need(tagInt, 8)
	if i < 0 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(d.buf[i:]))
}

// Uint reads an unsigned integer.
func (d *Dec) Uint() uint64 {
	i := d.need(tagUint, 8)
	if i < 0 {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[i:])
}

// Float reads a float64.
func (d *Dec) Float() float64 {
	i := d.need(tagFloat, 8)
	if i < 0 {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[i:]))
}

// Duration reads a time.Duration.
func (d *Dec) Duration() time.Duration {
	i := d.need(tagDuration, 8)
	if i < 0 {
		return 0
	}
	return time.Duration(binary.LittleEndian.Uint64(d.buf[i:]))
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	p := d.prefixed(tagString)
	if p == nil {
		return ""
	}
	return string(p)
}

// Blob reads a length-prefixed byte slice. The result is a copy.
func (d *Dec) Blob() []byte {
	p := d.prefixed(tagBlob)
	if p == nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// prefixed reads a tag + uint32 length + payload, bounds-checked
// against the remaining buffer so a hostile length cannot allocate or
// read out of range.
func (d *Dec) prefixed(tag byte) []byte {
	i := d.need(tag, 4)
	if i < 0 {
		return nil
	}
	n := binary.LittleEndian.Uint32(d.buf[i:])
	if uint32(len(d.buf)-d.off) < n {
		d.err = ErrCodec
		return nil
	}
	start := d.off
	d.off += int(n)
	return d.buf[start:d.off]
}
