package emr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"radshield/internal/mem"
)

// Journal is EMR's checkpoint log: voted outputs are appended to a
// region of flash storage (always inside the reliability frontier) as
// they complete, so that a reboot — e.g. an ILD-commanded power cycle
// killing a long localization run — resumes from the last completed job
// instead of starting over. The paper's abstract calls this out as part
// of the runtime ("automatically manages and optimizes 3-MR and
// checkpointing"); spacecraft lose power unpredictably, so flight
// software checkpoints aggressively.
//
// Record layout (all little-endian):
//
//	u32 dataset index | u32 output length | u32 CRC32(output) | bytes
//
// A record is trusted only if its CRC matches — torn writes from a
// mid-append power cut are discarded, as is anything after them.
type Journal struct {
	rt     *Runtime
	region mem.Region
	used   uint64
}

const journalHeader = 12 // idx + len + crc

// NewJournal allocates a journal of the given byte capacity on the
// runtime's storage device.
func (r *Runtime) NewJournal(capacity uint64) (*Journal, error) {
	if capacity < journalHeader+1 {
		return nil, fmt.Errorf("emr: journal capacity %d too small", capacity)
	}
	addr, err := r.storage.Alloc(capacity)
	if err != nil {
		return nil, fmt.Errorf("emr: allocating journal: %w", err)
	}
	return &Journal{
		rt:     r,
		region: mem.Region{Addr: r.storageBase + addr, Len: capacity},
	}, nil
}

// append persists one completed output. A full journal returns an error;
// the caller keeps computing (checkpointing is best-effort).
func (j *Journal) append(idx int, out []byte) error {
	need := uint64(journalHeader + len(out))
	if j.used+need > j.region.Len {
		return fmt.Errorf("emr: journal full (%d of %d bytes used)", j.used, j.region.Len)
	}
	rec := make([]byte, need)
	binary.LittleEndian.PutUint32(rec[0:], uint32(idx))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(out)))
	binary.LittleEndian.PutUint32(rec[8:], crc32.ChecksumIEEE(out))
	copy(rec[journalHeader:], out)
	if err := j.rt.bus.Write(j.region.Addr+j.used, rec); err != nil {
		return err
	}
	j.used += need
	return nil
}

// Load scans the journal from the start, returning every intact record.
// Scanning stops at the first corrupt or truncated record (everything
// after a torn write is untrustworthy).
func (j *Journal) Load() (map[int][]byte, error) {
	out := make(map[int][]byte)
	off := uint64(0)
	var hdr [journalHeader]byte
	for off+journalHeader <= j.region.Len {
		if err := j.rt.bus.Read(j.region.Addr+off, hdr[:]); err != nil {
			return out, err
		}
		length := uint64(binary.LittleEndian.Uint32(hdr[4:]))
		if length == 0 || off+journalHeader+length > j.region.Len {
			break // end of log (or truncated tail)
		}
		body := make([]byte, length)
		if err := j.rt.bus.Read(j.region.Addr+off+journalHeader, body); err != nil {
			return out, err
		}
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[8:]) {
			break // torn write: discard this and everything after
		}
		out[int(binary.LittleEndian.Uint32(hdr[0:]))] = body
		off += journalHeader + length
		j.used = off
	}
	return out, nil
}

// Used returns the journal bytes consumed so far.
func (j *Journal) Used() uint64 { return j.used }

// RunJournaled executes the spec with checkpoint/resume semantics:
// datasets whose outputs are already in the journal are skipped (their
// outputs served from the checkpoint), the rest execute under the
// configured scheme, and every newly voted output is appended. The
// returned Result covers all datasets. Report.Datasets counts only the
// datasets actually executed this run.
func (r *Runtime) RunJournaled(spec Spec, j *Journal) (*Result, error) {
	if j == nil {
		return r.Run(spec)
	}
	done, err := j.Load()
	if err != nil {
		return nil, err
	}
	// Reboot semantics: whatever the cache held is gone.
	r.cache.FlushAll()

	var pendingIdx []int
	var pending []Dataset
	for i, ds := range spec.Datasets {
		if _, ok := done[i]; !ok {
			pendingIdx = append(pendingIdx, i)
			pending = append(pending, ds)
		}
	}

	full := &Result{
		Outputs:    make([][]byte, len(spec.Datasets)),
		PerDataset: make([]DatasetResult, len(spec.Datasets)),
	}
	for i, out := range done {
		full.Outputs[i] = out
		full.PerDataset[i] = DatasetResult{Output: out}
	}
	if len(pending) == 0 {
		full.Report.Scheme = r.cfg.Scheme
		full.Report.Frontier = r.cfg.Frontier
		return full, nil
	}

	sub := spec
	sub.Datasets = pending
	if spec.ExtraConflict != nil {
		orig := spec.ExtraConflict
		sub.ExtraConflict = func(a, b int) bool { return orig(pendingIdx[a], pendingIdx[b]) }
	}
	if spec.Hook != nil {
		orig := spec.Hook
		sub.Hook = func(hp *HookPoint) {
			mapped := *hp
			mapped.Dataset = pendingIdx[hp.Dataset]
			orig(&mapped)
			hp.Output = mapped.Output
			hp.Fail = mapped.Fail
		}
	}
	res, err := r.Run(sub)
	if err != nil {
		return nil, err
	}
	for si, origIdx := range pendingIdx {
		full.Outputs[origIdx] = res.Outputs[si]
		full.PerDataset[origIdx] = res.PerDataset[si]
		if res.Outputs[si] != nil {
			if err := j.append(origIdx, res.Outputs[si]); err != nil {
				// Best-effort: a full journal does not fail the run.
				break
			}
		}
	}
	full.Report = res.Report
	return full, nil
}
