package emr

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"radshield/internal/fault"
	"radshield/internal/mem"
)

// sumJob adds all input bytes into a 4-byte big-endian checksum — a
// minimal deterministic job whose output changes if any input bit flips.
func sumJob(inputs [][]byte) ([]byte, error) {
	var sum uint32
	for _, in := range inputs {
		for _, b := range in {
			sum = sum*31 + uint32(b)
		}
	}
	return []byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)}, nil
}

// newRuntime builds a runtime with the given scheme, failing the test on
// error.
func newRuntime(t *testing.T, scheme fault.Scheme) *Runtime {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// chunkedSpec loads n×chunk bytes and declares one dataset per chunk,
// optionally sharing a common key region across all datasets.
// mustSlice wraps InputRef.Slice for fixtures whose offsets are known
// in-range; a failure aborts the test. It is a plain function (not
// t-based) so quick.Check closures, benchmarks, and Examples can share it.
func mustSlice(ref InputRef, off, n uint64) InputRef {
	s, err := ref.Slice(off, n)
	if err != nil {
		panic(err)
	}
	return s
}

func chunkedSpec(t *testing.T, rt *Runtime, n, chunk int, withKey bool) Spec {
	t.Helper()
	data := make([]byte, n*chunk)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	ref, err := rt.LoadInput("data", data)
	if err != nil {
		t.Fatal(err)
	}
	var keyRef InputRef
	if withKey {
		key := make([]byte, 32)
		for i := range key {
			key[i] = byte(0xA0 + i)
		}
		keyRef, err = rt.LoadInput("key", key)
		if err != nil {
			t.Fatal(err)
		}
	}
	datasets := make([]Dataset, n)
	for i := 0; i < n; i++ {
		inputs := []InputRef{mustSlice(ref, uint64(i*chunk), uint64(chunk))}
		if withKey {
			inputs = append(inputs, keyRef)
		}
		datasets[i] = Dataset{Inputs: inputs}
	}
	return Spec{Name: "chunked", Datasets: datasets, Job: sumJob, CyclesPerByte: 10}
}

// golden computes reference outputs with an unprotected single run.
func golden(t *testing.T, n, chunk int, withKey bool) [][]byte {
	t.Helper()
	rt := newRuntime(t, fault.SchemeNone)
	res, err := rt.Run(chunkedSpec(t, rt, n, chunk, withKey))
	if err != nil {
		t.Fatal(err)
	}
	return res.Outputs
}

func TestEMRProducesCorrectOutputs(t *testing.T) {
	want := golden(t, 16, 256, false)
	rt := newRuntime(t, fault.SchemeEMR)
	res, err := rt.Run(chunkedSpec(t, rt, 16, 256, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(res.Outputs[i], want[i]) {
			t.Fatalf("dataset %d output mismatch", i)
		}
	}
	rep := res.Report
	if rep.Votes.Unanimous != 16 || rep.Votes.Corrected != 0 || rep.Votes.Failed != 0 {
		t.Fatalf("votes = %+v, want 16 unanimous", rep.Votes)
	}
	// Non-overlapping chunks: a single jobset suffices.
	if rep.Jobsets != 1 {
		t.Fatalf("jobsets = %d, want 1", rep.Jobsets)
	}
	if rep.Datasets != 16 {
		t.Fatalf("Datasets = %d", rep.Datasets)
	}
}

func TestAllSchemesAgreeOnOutputs(t *testing.T) {
	want := golden(t, 8, 128, true)
	for _, scheme := range []fault.Scheme{fault.SchemeEMR, fault.SchemeSerial3MR, fault.SchemeUnprotectedParallel} {
		rt := newRuntime(t, scheme)
		res, err := rt.Run(chunkedSpec(t, rt, 8, 128, true))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		for i := range want {
			if !bytes.Equal(res.Outputs[i], want[i]) {
				t.Fatalf("%v: dataset %d mismatch", scheme, i)
			}
		}
	}
}

func TestSharedKeyIsReplicated(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	res, err := rt.Run(chunkedSpec(t, rt, 8, 128, true))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.ReplicatedRegions != 1 {
		t.Fatalf("ReplicatedRegions = %d, want 1 (the key)", rep.ReplicatedRegions)
	}
	if rep.ReplicaBytes != 3*32 {
		t.Fatalf("ReplicaBytes = %d, want 96", rep.ReplicaBytes)
	}
	// With the key replicated, chunks are disjoint → one jobset.
	if rep.Jobsets != 1 {
		t.Fatalf("jobsets = %d, want 1", rep.Jobsets)
	}
}

func TestDisabledReplicationSerializesSharedKey(t *testing.T) {
	// Threshold > 1 disables replication; the shared key makes every
	// pair of datasets conflict → every jobset is a singleton → EMR
	// degenerates to sequential 3-MR (paper: "0% replication amounts to
	// serial 3-MR").
	cfg := DefaultConfig()
	cfg.ReplicationThreshold = 2
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(chunkedSpec(t, rt, 8, 128, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobsets != 8 {
		t.Fatalf("jobsets = %d, want 8 singletons", res.Report.Jobsets)
	}
	if res.Report.ReplicatedRegions != 0 {
		t.Fatalf("replication happened despite disabled threshold")
	}
}

func TestOverlappingDatasetsConflict(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	data := make([]byte, 1024)
	ref, err := rt.LoadInput("img", data)
	if err != nil {
		t.Fatal(err)
	}
	// Sliding window with 50% overlap: adjacent datasets conflict, so a
	// proper 2-coloring (even/odd jobsets) is expected from the greedy
	// packer.
	var datasets []Dataset
	for off := uint64(0); off+256 <= 1024; off += 128 {
		datasets = append(datasets, Dataset{Inputs: []InputRef{mustSlice(ref, off, 256)}})
	}
	res, err := rt.Run(Spec{Name: "overlap", Datasets: datasets, Job: sumJob, CyclesPerByte: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobsets != 2 {
		t.Fatalf("jobsets = %d, want 2 (even/odd windows)", res.Report.Jobsets)
	}
	if res.Report.ConflictPairs == 0 {
		t.Fatal("no conflicts recorded for overlapping windows")
	}
}

func TestExtraConflictRespected(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 6, 64, false)
	// Developer-declared conflicts: make everything conflict (e.g. the
	// DEFLATE back-reference dependency the memory regions cannot show).
	spec.ExtraConflict = func(i, j int) bool { return true }
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobsets != 6 {
		t.Fatalf("jobsets = %d, want 6 singletons", res.Report.Jobsets)
	}
}

func TestMakespanOrdering(t *testing.T) {
	// Serial 3-MR must be slowest; EMR should approach the unprotected
	// parallel bound (paper Figure 11: 7–77% over it).
	mk := func(scheme fault.Scheme) *Report {
		rt := newRuntime(t, scheme)
		res, err := rt.Run(chunkedSpec(t, rt, 32, 4096, true))
		if err != nil {
			t.Fatal(err)
		}
		return &res.Report
	}
	unprot := mk(fault.SchemeUnprotectedParallel)
	emr := mk(fault.SchemeEMR)
	serial := mk(fault.SchemeSerial3MR)
	if !(unprot.Makespan < emr.Makespan && emr.Makespan < serial.Makespan) {
		t.Fatalf("makespan ordering violated: unprot=%v emr=%v serial=%v",
			unprot.Makespan, emr.Makespan, serial.Makespan)
	}
	ratio := float64(emr.Makespan) / float64(unprot.Makespan)
	if ratio > 2.0 {
		t.Fatalf("EMR/unprotected ratio = %.2f, want < 2 (paper: 1.07–1.77)", ratio)
	}
	serialRatio := float64(serial.Makespan) / float64(unprot.Makespan)
	if serialRatio < 2.2 {
		t.Fatalf("serial/unprotected ratio = %.2f, want ≈3", serialRatio)
	}
}

func TestEnergyOrdering(t *testing.T) {
	// Paper Figure 14: EMR uses far less energy than serial 3-MR on
	// conflict-light workloads (idle power over the long serial makespan
	// dominates).
	mk := func(scheme fault.Scheme) float64 {
		rt := newRuntime(t, scheme)
		res, err := rt.Run(chunkedSpec(t, rt, 32, 4096, true))
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.EnergyJ
	}
	emr := mk(fault.SchemeEMR)
	serial := mk(fault.SchemeSerial3MR)
	if emr >= serial {
		t.Fatalf("EMR energy %.2fJ not below serial 3-MR %.2fJ", emr, serial)
	}
}

func TestStorageFrontierSlowerAndChargedToDisk(t *testing.T) {
	mkCfg := func(f Frontier) Config {
		cfg := DefaultConfig()
		cfg.Frontier = f
		if f == FrontierStorage {
			cfg.DRAMECC = false
		}
		return cfg
	}
	run := func(f Frontier) *Report {
		rt, err := New(mkCfg(f))
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(chunkedSpec(t, rt, 16, 2048, true))
		if err != nil {
			t.Fatal(err)
		}
		return &res.Report
	}
	dram := run(FrontierDRAM)
	disk := run(FrontierStorage)
	if disk.Makespan <= dram.Makespan {
		t.Fatalf("storage frontier (%v) not slower than DRAM (%v)", disk.Makespan, dram.Makespan)
	}
	if disk.DiskReadTime <= dram.DiskReadTime {
		t.Fatalf("storage frontier disk time (%v) not above DRAM frontier (%v)", disk.DiskReadTime, dram.DiskReadTime)
	}
}

func TestVoteMajority(t *testing.T) {
	a, b := []byte{1}, []byte{2}
	if w, u, ok := majority([][]byte{a, a, a}); !ok || !u || !bytes.Equal(w, a) {
		t.Fatal("unanimous vote failed")
	}
	if w, u, ok := majority([][]byte{a, b, a}); !ok || u || !bytes.Equal(w, a) {
		t.Fatal("2-of-3 vote failed")
	}
	if _, _, ok := majority([][]byte{{1}, {2}, {3}}); ok {
		t.Fatal("3-way disagreement produced a winner")
	}
	if w, _, ok := majority([][]byte{a, a}); !ok || !bytes.Equal(w, a) {
		t.Fatal("2-of-2 vote failed")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Executors = 0 },
		func(c *Config) { c.Executors = 1 },   // EMR needs ≥ 2 (DMR floor)
		func(c *Config) { c.DRAMECC = false }, // DRAM frontier requires ECC
		func(c *Config) { c.DRAMSize = 0 },
		func(c *Config) { c.CacheSets = 0 },
		func(c *Config) { c.ReplicationThreshold = -1 },
		func(c *Config) { c.Cost.CoreFreqHz = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	if _, err := rt.Run(Spec{Name: "x", Job: sumJob, CyclesPerByte: 1}); err == nil {
		t.Error("empty datasets accepted")
	}
	ref, _ := rt.LoadInput("d", []byte{1, 2, 3})
	ds := []Dataset{{Inputs: []InputRef{ref}}}
	if _, err := rt.Run(Spec{Name: "x", Datasets: ds, CyclesPerByte: 1}); err == nil {
		t.Error("nil job accepted")
	}
	if _, err := rt.Run(Spec{Name: "x", Datasets: ds, Job: sumJob}); err == nil {
		t.Error("zero CyclesPerByte accepted")
	}
}

func TestLoadInputValidation(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	if _, err := rt.LoadInput("empty", nil); err == nil {
		t.Error("empty input accepted")
	}
	// Exhaust frontier memory.
	cfg := DefaultConfig()
	cfg.DRAMSize = 4096
	small, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.LoadInput("big", make([]byte, 1<<20)); err == nil {
		t.Error("oversized input accepted")
	}
}

func TestSliceValidation(t *testing.T) {
	ref := InputRef{Name: "x", Region: mem.Region{Addr: 0, Len: 100}}
	got, err := ref.Slice(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got.Region.Addr != 10 || got.Region.Len != 20 {
		t.Fatalf("Slice = %+v", got.Region)
	}
	// Out-of-range and overflowing windows are rejected with errors, not
	// panics: flight software computes offsets from (possibly upset) data
	// and must be able to refuse them gracefully.
	if _, err := ref.Slice(90, 20); err == nil {
		t.Error("Slice(90, 20) past the region end was accepted")
	}
	if _, err := ref.Slice(^uint64(0)-5, 10); err == nil {
		t.Error("overflowing Slice window was accepted")
	}
}

func TestJobErrorDetected(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	ref, _ := rt.LoadInput("d", make([]byte, 64))
	boom := errors.New("boom")
	calls := 0
	spec := Spec{
		Name:     "failing",
		Datasets: []Dataset{{Inputs: []InputRef{ref}}},
		Job: func(inputs [][]byte) ([]byte, error) {
			calls++
			if calls == 1 {
				return nil, boom // first executor visit crashes
			}
			return sumJob(inputs)
		},
		CyclesPerByte: 1,
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// One executor failed; the other two agree → corrected.
	if res.Report.ExecErrors != 1 {
		t.Fatalf("ExecErrors = %d, want 1", res.Report.ExecErrors)
	}
	if res.Outputs[0] == nil {
		t.Fatal("majority output lost despite 2 healthy executors")
	}
	if res.Report.Votes.Corrected != 1 {
		t.Fatalf("votes = %+v, want 1 corrected", res.Report.Votes)
	}
}

func TestFrontierStrings(t *testing.T) {
	if FrontierDRAM.String() != "dram" || FrontierStorage.String() != "storage" || Frontier(9).String() != "unknown" {
		t.Fatal("Frontier strings wrong")
	}
}

func TestReportString(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	res, err := rt.Run(chunkedSpec(t, rt, 4, 64, false))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Report.String()
	if s == "" || len(s) < 50 {
		t.Fatalf("Report.String too short: %q", s)
	}
}

func TestSpecThresholdOverride(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR) // config threshold 0.01 would replicate
	spec := chunkedSpec(t, rt, 8, 128, true)
	off := 2.0 // disable
	spec.ReplicationThreshold = &off
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ReplicatedRegions != 0 {
		t.Fatal("spec override ignored")
	}
}

func TestPeakMemoryAccounting(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	res, err := rt.Run(chunkedSpec(t, rt, 8, 128, true))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	wantInput := uint64(8*128 + 32)
	if rep.InputBytes != wantInput {
		t.Fatalf("InputBytes = %d, want %d", rep.InputBytes, wantInput)
	}
	if rep.PeakMemoryBytes < rep.InputBytes+rep.ReplicaBytes {
		t.Fatalf("PeakMemoryBytes = %d too small", rep.PeakMemoryBytes)
	}
}

func ExampleRuntime_Run() {
	cfg := DefaultConfig()
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	ref, err := rt.LoadInput("telemetry", []byte("four byte chunks!!!!"))
	if err != nil {
		panic(err)
	}
	spec := Spec{
		Name: "checksum",
		Datasets: []Dataset{
			{Inputs: []InputRef{mustSlice(ref, 0, 10)}},
			{Inputs: []InputRef{mustSlice(ref, 10, 10)}},
		},
		Job: func(inputs [][]byte) ([]byte, error) {
			var sum byte
			for _, b := range inputs[0] {
				sum += b
			}
			return []byte{sum}, nil
		},
		CyclesPerByte: 8,
	}
	res, err := rt.Run(spec)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Outputs), res.Report.Votes.Unanimous)
	// Output: 2 2
}
