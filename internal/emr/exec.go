package emr

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"radshield/internal/cache"
	"radshield/internal/fault"
	"radshield/internal/mem"
)

// cacheLineSize aliases the cache geometry for fetch accounting.
const cacheLineSize = cache.LineSize

// Phase marks where in a job's lifecycle a hook fires.
type Phase int

const (
	// PhaseBeforeRead fires before an executor fetches its input regions
	// — flips injected here land in whatever the cache currently holds.
	PhaseBeforeRead Phase = iota
	// PhaseAfterRead fires once the executor's input lines are resident
	// in the shared cache but before the job consumes them — the window
	// in which a cache SEU corrupts the data an executor computes on.
	// Under EMR's flush discipline only this executor is reading those
	// lines; under unprotected parallel 3-MR the same lines feed every
	// executor.
	PhaseAfterRead
	// PhaseAfterJob fires after an executor computed its output but
	// before it is recorded; hooks may corrupt Output (modelling a
	// pipeline SEU) or set Fail (modelling a corrupted job descriptor —
	// the paper's segfault case).
	PhaseAfterJob
)

// HookPoint is the context handed to a fault-injection hook.
type HookPoint struct {
	Phase    Phase
	Jobset   int // -1 for schemes without jobsets
	Dataset  int
	Executor int
	// Regions are the input regions this executor will read / has read,
	// with replicas resolved to their private addresses.
	Regions []mem.Region
	// Output is the executor's freshly computed output (PhaseAfterJob
	// only); hooks may mutate it in place.
	Output []byte
	// Fail, when set by the hook, aborts this executor's job with the
	// given error.
	Fail error
	// Stall, when set by the hook, adds virtual elapsed time to this
	// visit — modelling a replica that hangs (an irradiated core stuck
	// in a livelock) rather than computing wrong bytes. Stall composes
	// with Fail: a replica can hang and then crash. A configured Watcher
	// sees the stalled elapsed time and may kill the visit.
	Stall time.Duration
}

// Hook observes and perturbs execution at defined points. A nil hook is
// a no-op. Hooks run synchronously; execution is deterministic.
type Hook func(*HookPoint)

// Spec describes one computation: the datasets, the job function, and
// its cost characteristics (paper Figure 7's InputData + job function +
// dtss_compute triple).
type Spec struct {
	Name     string
	Datasets []Dataset
	Job      JobFunc
	// CyclesPerByte models the job's compute intensity for the virtual
	// clock (e.g. ≈20 for AES, hundreds for DNN inference).
	CyclesPerByte float64
	// ExtraConflict lets developers declare algorithm-specific conflicts
	// EMR cannot see in the memory regions (paper §3.2).
	ExtraConflict func(i, j int) bool
	// ReplicationThreshold overrides the runtime's threshold when
	// non-nil (used by the Figure 13 sweep).
	ReplicationThreshold *float64
	// Hook receives fault-injection callbacks.
	Hook Hook
}

// VoteStats counts voting outcomes across a run's datasets.
type VoteStats struct {
	Unanimous int // all executors agreed
	Corrected int // one executor outvoted (error masked)
	Failed    int // no majority / too few valid outputs
}

// DatasetResult is the per-dataset outcome.
type DatasetResult struct {
	Output       []byte
	Err          error
	Disagreement bool // executors disagreed (even if corrected)
}

// Result is what Run returns.
type Result struct {
	Outputs    [][]byte // voted output per dataset (nil on failure)
	PerDataset []DatasetResult
	Report     Report
}

// errVoteFailed is the dataset error when voting finds no majority.
var errVoteFailed = fmt.Errorf("emr: executors disagree with no majority")

// Run executes the spec under the runtime's scheme and returns outputs
// plus the full accounting report. Execution is deterministic: redundant
// copies are interleaved in a fixed schedule whose parallel makespan is
// accounted by the virtual cost model.
func (r *Runtime) Run(spec Spec) (*Result, error) {
	if len(spec.Datasets) == 0 {
		return nil, fmt.Errorf("emr: Run(%q): no datasets", spec.Name)
	}
	if spec.Job == nil {
		return nil, fmt.Errorf("emr: Run(%q): nil job function", spec.Name)
	}
	if spec.CyclesPerByte <= 0 {
		return nil, fmt.Errorf("emr: Run(%q): CyclesPerByte (%v) must be positive", spec.Name, spec.CyclesPerByte)
	}

	switch r.cfg.Scheme {
	case fault.SchemeEMR:
		if r.cfg.CacheECC {
			// Cache ECC closes the shared-cache hazard in hardware; the
			// paper's prescription is to revert to plain parallel 3-MR.
			return r.runUnprotected(&spec)
		}
		return r.runEMR(&spec)
	case fault.SchemeUnprotectedParallel:
		return r.runUnprotected(&spec)
	case fault.SchemeSerial3MR:
		return r.runSerial(&spec)
	case fault.SchemeNone:
		return r.runNone(&spec)
	case fault.SchemeChecksum:
		return r.runChecksummed(&spec)
	default:
		return nil, fmt.Errorf("emr: unknown scheme %v", r.cfg.Scheme)
	}
}

// visitIO summarizes one visit's data movement for the cost model.
type visitIO struct {
	total   uint64        // bytes the job consumed (drives compute time)
	fetched uint64        // bytes actually fetched from the frontier (cache misses × line size)
	stall   time.Duration // hook-injected hang time (HookPoint.Stall)
}

// Watcher observes every executor visit as it completes — the guard
// watchdog's attachment point (see internal/guard). VisitDone receives
// the visit's virtual elapsed time (compute + fetch + flush + any
// hook-injected stall) and the visit's error; it returns the duration
// to charge to the accounting (a killed hung visit is billed only up to
// its deadline) and the error to record in the vote (non-nil
// invalidates the visit's output). Watchers are always invoked from the
// sequential, deterministic collection path, in (jobset, round,
// executor) order, regardless of ParallelExecution.
type Watcher interface {
	VisitDone(executor, dataset int, elapsed time.Duration, visitErr error) (time.Duration, error)
}

// watchVisit reports one finished visit to the configured watcher and
// applies its verdict. With no watcher the visit passes through
// untouched.
func (r *Runtime) watchVisit(executor, dataset int, v visitParts, visitErr error) (visitParts, error) {
	if r.cfg.Watch == nil {
		return v, visitErr
	}
	charged, err := r.cfg.Watch.VisitDone(executor, dataset, v.total(), visitErr)
	if d := charged - v.total(); d != 0 {
		v.compute += d
	}
	return v, err
}

// visit performs one executor's processing of one dataset: resolve
// regions, fire the pre-read hook, fetch bytes through the shared cache,
// run the job, fire the post-job hook. It returns the output, the IO
// summary, and an error if the job failed. Fetch volume comes from the
// cache's real miss count, so schemes that keep data resident
// (unprotected sharing, per-pass reuse, replicas) are charged less than
// EMR's deliberate flush-and-refetch — exactly the trade the paper
// measures.
func (r *Runtime) visit(spec *Spec, a *analysis, jobset, dsIdx, executor int) (out []byte, io visitIO, err error) {
	ds := spec.Datasets[dsIdx]
	regions := make([]mem.Region, len(ds.Inputs))
	for i, in := range ds.Inputs {
		if a != nil {
			regions[i] = a.executorRegion(executor, in)
		} else {
			regions[i] = in.Region
		}
	}
	if spec.Hook != nil {
		hp := &HookPoint{Phase: PhaseBeforeRead, Jobset: jobset, Dataset: dsIdx, Executor: executor, Regions: regions}
		spec.Hook(hp)
		io.stall += hp.Stall
		if hp.Fail != nil {
			r.ins.hookAbort()
			return nil, io, hp.Fail
		}
	}
	// First pass: fetch the input lines into the shared cache. This
	// establishes residency; the bytes the job actually consumes are read
	// in the second pass, so an upset striking the cached lines in
	// between (PhaseAfterRead) corrupts what this executor computes on —
	// the realistic compute-time vulnerability window.
	missesBefore := r.cache.Stats().Misses
	inputs := make([][]byte, len(regions))
	for i, reg := range regions {
		buf := make([]byte, reg.Len)
		if err := r.cache.Read(reg.Addr, buf); err != nil {
			// An uncorrectable ECC machine check is a detected error.
			return nil, io, fmt.Errorf("emr: executor %d reading %q: %w", executor, ds.Inputs[i].Name, err)
		}
		inputs[i] = buf
		io.total += reg.Len
	}
	io.fetched = (r.cache.Stats().Misses - missesBefore) * cacheLineSize
	r.ins.visit(io.fetched)
	if spec.Hook != nil {
		hp := &HookPoint{Phase: PhaseAfterRead, Jobset: jobset, Dataset: dsIdx, Executor: executor, Regions: regions}
		spec.Hook(hp)
		io.stall += hp.Stall
		if hp.Fail != nil {
			r.ins.hookAbort()
			return nil, io, hp.Fail
		}
		// Second pass: re-read through the cache so injected line upsets
		// reach the job. Skipped when no hook is installed — the reread
		// is observationally identical then.
		for i, reg := range regions {
			if err := r.cache.Read(reg.Addr, inputs[i]); err != nil {
				return nil, io, fmt.Errorf("emr: executor %d re-reading %q: %w", executor, ds.Inputs[i].Name, err)
			}
		}
	}
	out, err = spec.Job(inputs)
	if err != nil {
		return nil, io, err
	}
	if spec.Hook != nil {
		hp := &HookPoint{Phase: PhaseAfterJob, Jobset: jobset, Dataset: dsIdx, Executor: executor, Regions: regions, Output: out}
		spec.Hook(hp)
		io.stall += hp.Stall
		if hp.Fail != nil {
			r.ins.hookAbort()
			return nil, io, hp.Fail
		}
		out = hp.Output
	}
	return out, io, nil
}

// flushShared invalidates the cached lines of a dataset's non-replicated
// regions and returns the number of lines flushed.
func (r *Runtime) flushShared(a *analysis, dsIdx int) int {
	lines := 0
	for _, reg := range a.conflictRegions[dsIdx] {
		lines += r.cache.FlushRange(reg.Addr, reg.Len)
	}
	r.ins.flush(lines)
	return lines
}

// runEMR executes under the conflict-aware scheme: jobsets run with the
// executors staggered so no two redundant copies of the same dataset are
// ever in flight together, and each visit flushes its shared lines.
func (r *Runtime) runEMR(spec *Spec) (*Result, error) {
	a, err := r.plan(spec)
	if err != nil {
		return nil, err
	}
	n := len(spec.Datasets)
	ex := r.cfg.Executors
	acct := r.newAccounting(spec, a)
	outputs := make([][][]byte, n) // dataset → executor → output
	errs := make([]error, n*ex)
	for i := range outputs {
		outputs[i] = make([][]byte, ex)
	}

	parallel := r.cfg.ParallelExecution && spec.Hook == nil && ex > 1
	for js, set := range a.jobsets {
		k := len(set)
		// Stagger starting positions so executors occupy distinct
		// datasets each round (for k ≥ ex the offsets are distinct).
		var visits []visitParts
		for t := 0; t < k; t++ {
			type visitResult struct {
				out   []byte
				io    visitIO
				lines int
				err   error
			}
			results := make([]visitResult, ex)
			runOne := func(e int) {
				d := set[(t+e*k/ex)%k]
				out, io, err := r.visit(spec, a, js, d, e)
				lines := r.flushShared(a, d)
				results[e] = visitResult{out: out, io: io, lines: lines, err: err}
			}
			if parallel && k >= ex {
				// Each executor is on a distinct dataset this round, so
				// real goroutines are safe: the shared cache is locked
				// per access and flush ranges are disjoint.
				var wg sync.WaitGroup
				for e := 0; e < ex; e++ {
					wg.Add(1)
					//radlint:allow schedonly executors write disjoint position-indexed result slots and join at the WaitGroup barrier before any read, so collection order is defined
					go func(e int) {
						defer wg.Done()
						runOne(e)
					}(e)
				}
				wg.Wait()
			} else {
				for e := 0; e < ex; e++ {
					runOne(e)
				}
			}
			for e := 0; e < ex; e++ {
				d := set[(t+e*k/ex)%k]
				res := results[e]
				v := r.parts(spec, res.io.total, res.io.fetched, res.lines)
				v.compute += res.io.stall
				v, verr := r.watchVisit(e, d, v, res.err)
				visits = append(visits, v)
				outputs[d][e] = res.out
				errs[d*ex+e] = verr
			}
		}
		acct.addJobsetMakespan(visits, k, ex)
	}

	res := r.vote(spec, outputs, errs, acct)
	res.Report.Jobsets = len(a.jobsets)
	res.Report.ConflictPairs = a.conflictPairs
	return res, nil
}

// runUnprotected executes parallel 3-MR without cache discipline: the
// redundant copies of each dataset run simultaneously sharing the cache,
// and nothing is flushed.
func (r *Runtime) runUnprotected(spec *Spec) (*Result, error) {
	n := len(spec.Datasets)
	ex := r.cfg.Executors
	acct := r.newAccounting(spec, nil)
	outputs := make([][][]byte, n)
	errs := make([]error, n*ex)
	for i := range outputs {
		outputs[i] = make([][]byte, ex)
	}
	for d := 0; d < n; d++ {
		var total, fetched uint64
		var extra time.Duration // lockstep: the slowest copy gates the round
		for e := 0; e < ex; e++ {
			out, io, err := r.visit(spec, nil, -1, d, e)
			base := r.parts(spec, io.total, io.fetched, 0)
			ve := base
			ve.compute += io.stall
			ve, err = r.watchVisit(e, d, ve, err)
			if adj := ve.total() - base.total(); adj > extra {
				extra = adj
			}
			outputs[d][e] = out
			errs[d*ex+e] = err
			total = io.total
			fetched += io.fetched // later copies mostly hit the shared lines
		}
		// All copies run in lockstep on separate cores: elapsed is one
		// visit's compute plus the (shared) fetch.
		v := r.parts(spec, total, fetched, 0)
		v.compute += extra
		acct.addVisit(v)
		acct.makespan += v.total()
		acct.busy += time.Duration(ex)*v.compute + v.fetch
	}
	return r.vote(spec, outputs, errs, acct), nil
}

// runSerial executes classic sequential 3-MR: three full passes over all
// datasets on one core, with a full cache clear between passes.
func (r *Runtime) runSerial(spec *Spec) (*Result, error) {
	n := len(spec.Datasets)
	ex := r.cfg.Executors
	acct := r.newAccounting(spec, nil)
	// Each pass re-stages inputs from disk (the paper's Table 6 charges
	// serial 3-MR three disk reads).
	acct.diskRead = time.Duration(float64(ex) * float64(r.diskLoaded) / r.cfg.Cost.DiskBytesPerSec * float64(time.Second))
	outputs := make([][][]byte, n)
	errs := make([]error, n*ex)
	for i := range outputs {
		outputs[i] = make([][]byte, ex)
	}
	for pass := 0; pass < ex; pass++ {
		for d := 0; d < n; d++ {
			out, io, err := r.visit(spec, nil, -1, d, pass)
			v := r.parts(spec, io.total, io.fetched, 0)
			v.compute += io.stall
			v, err = r.watchVisit(pass, d, v, err)
			outputs[d][pass] = out
			errs[d*ex+pass] = err
			acct.addVisit(v)
			acct.makespan += v.total()
			acct.busy += v.total()
		}
		lines := r.cache.FlushAll()
		flushDur := time.Duration(lines) * r.cfg.Cost.FlushLineCost
		acct.makespan += flushDur
		acct.flush += flushDur
		acct.busy += flushDur
	}
	return r.vote(spec, outputs, errs, acct), nil
}

// runNone executes once with no redundancy.
func (r *Runtime) runNone(spec *Spec) (*Result, error) {
	n := len(spec.Datasets)
	acct := r.newAccounting(spec, nil)
	outputs := make([][][]byte, n)
	errs := make([]error, n)
	for d := 0; d < n; d++ {
		out, io, err := r.visit(spec, nil, -1, d, 0)
		v := r.parts(spec, io.total, io.fetched, 0)
		v.compute += io.stall
		v, err = r.watchVisit(0, d, v, err)
		outputs[d] = [][]byte{out}
		errs[d] = err
		acct.addVisit(v)
		acct.makespan += v.total()
		acct.busy += v.total()
	}
	return r.vote(spec, outputs, errs, acct), nil
}

// vote tallies executor outputs into per-dataset results and writes the
// winning outputs back inside the reliability frontier.
func (r *Runtime) vote(spec *Spec, outputs [][][]byte, errs []error, acct *accounting) *Result {
	n := len(outputs)
	res := &Result{
		Outputs:    make([][]byte, n),
		PerDataset: make([]DatasetResult, n),
	}
	res.Report.Datasets = n
	ex := len(outputs[0])
	for d := 0; d < n; d++ {
		var valid [][]byte
		var hadError bool
		for e := 0; e < ex; e++ {
			var err error
			if r.cfg.Scheme == fault.SchemeNone {
				err = errs[d]
			} else {
				err = errs[d*ex+e]
			}
			if err != nil {
				hadError = true
				res.Report.ExecErrors++
				continue
			}
			valid = append(valid, outputs[d][e])
		}
		dr := &res.PerDataset[d]
		switch {
		case ex == 1: // SchemeNone
			if hadError {
				dr.Err = errs[d]
			} else {
				dr.Output = valid[0]
			}
		case len(valid) < 2:
			dr.Err = fmt.Errorf("emr: %d of %d executors failed", ex-len(valid), ex)
			acct.votes.Failed++
		default:
			winner, unanimous, ok := majority(valid)
			switch {
			case !ok:
				dr.Err = errVoteFailed
				dr.Disagreement = true
				acct.votes.Failed++
				r.ins.voteMismatch(d, false)
			case unanimous && !hadError && len(valid) == ex:
				dr.Output = winner
				acct.votes.Unanimous++
			default:
				dr.Output = winner
				dr.Disagreement = !unanimous
				acct.votes.Corrected++
				if !unanimous {
					r.ins.voteMismatch(d, true)
				}
			}
		}
		if dr.Output != nil {
			res.Outputs[d] = dr.Output
			acct.outputBytes += uint64(len(dr.Output))
			// Persist the voted output inside the frontier.
			if addr, err := r.frontierAlloc(uint64(len(dr.Output))); err == nil {
				if werr := r.bus.Write(addr, dr.Output); werr != nil {
					dr.Err = werr
					dr.Output = nil
					res.Outputs[d] = nil
				}
			}
		}
	}
	res.Report = acct.finish(r, res.Report)
	return res
}

// majority finds a value shared by at least two outputs. It returns the
// winner, whether all outputs were identical, and whether a majority
// exists at all.
func majority(valid [][]byte) (winner []byte, unanimous, ok bool) {
	for i := 0; i < len(valid); i++ {
		matches := 1
		for j := 0; j < len(valid); j++ {
			if i != j && bytes.Equal(valid[i], valid[j]) {
				matches++
			}
		}
		if matches >= 2 || len(valid) == 1 {
			return valid[i], matches == len(valid), true
		}
	}
	return nil, false, false
}
