package emr

import (
	"bytes"
	"errors"
	"testing"

	"radshield/internal/fault"
)

func TestJournalRoundTrip(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	j, err := rt.NewJournal(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(3, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := j.append(7, []byte("world!")); err != nil {
		t.Fatal(err)
	}
	got, err := j.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[3]) != "hello" || string(got[7]) != "world!" {
		t.Fatalf("Load = %v", got)
	}
}

func TestJournalTornWriteDiscardsTail(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	j, err := rt.NewJournal(4096)
	if err != nil {
		t.Fatal(err)
	}
	j.append(0, []byte("first"))
	j.append(1, []byte("second"))
	// Corrupt the second record's body (simulating a torn write or a
	// flash upset that escaped correction).
	// Record 0 occupies 12+5 bytes; record 1's body starts at 17+12.
	rt.storage.FlipBit(j.region.Addr-rt.storageBase+29, 2)
	rt.storage.FlipBit(j.region.Addr-rt.storageBase+29, 3)
	// (two flips in one word defeat SECDED; Load must stop at the CRC)
	got, err := j.Load()
	if err == nil && len(got) > 1 {
		t.Fatalf("corrupt tail survived: %v", got)
	}
	if _, ok := got[0]; !ok && err == nil {
		t.Fatal("intact first record lost")
	}
}

func TestJournalCapacityValidation(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	if _, err := rt.NewJournal(4); err == nil {
		t.Fatal("tiny journal accepted")
	}
}

func TestJournalFullIsBestEffort(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	j, err := rt.NewJournal(20) // fits one 5-byte record, not two
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(0, []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := j.append(1, []byte("12345")); err == nil {
		t.Fatal("overfull append succeeded")
	}
}

func TestRunJournaledResumesAfterReboot(t *testing.T) {
	// First run: a "power cut" (job descriptor corruption) kills every
	// executor visit from dataset 5 onward. Second run on the same
	// hardware resumes from the journal and computes only the remainder.
	want := golden(t, 10, 256, false)

	rt := newRuntime(t, fault.SchemeEMR)
	j, err := rt.NewJournal(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	spec := chunkedSpec(t, rt, 10, 256, false)
	cut := errors.New("power cut")
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase == PhaseBeforeRead && hp.Dataset >= 5 {
			hp.Fail = cut
		}
	}
	first, err := rt.RunJournaled(spec, j)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for _, out := range first.Outputs {
		if out != nil {
			completed++
		}
	}
	if completed != 5 {
		t.Fatalf("first run completed %d datasets, want 5", completed)
	}

	// "Reboot": same storage, fresh journal view, no more faults.
	spec.Hook = nil
	second, err := rt.RunJournaled(spec, j)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(second.Outputs[i], want[i]) {
			t.Fatalf("dataset %d wrong after resume", i)
		}
	}
	// Only the 5 missing datasets were executed in the second run.
	if second.Report.Datasets != 5 {
		t.Fatalf("resume executed %d datasets, want 5", second.Report.Datasets)
	}
	// A third run finds everything checkpointed and executes nothing.
	third, err := rt.RunJournaled(spec, j)
	if err != nil {
		t.Fatal(err)
	}
	if third.Report.Datasets != 0 {
		t.Fatalf("third run executed %d datasets, want 0", third.Report.Datasets)
	}
	for i := range want {
		if !bytes.Equal(third.Outputs[i], want[i]) {
			t.Fatalf("dataset %d wrong from pure checkpoint", i)
		}
	}
}

func TestRunJournaledNilJournalFallsBack(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 4, 128, false)
	res, err := rt.RunJournaled(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Datasets != 4 {
		t.Fatalf("Datasets = %d", res.Report.Datasets)
	}
}

func TestRunJournaledHookIndexMapping(t *testing.T) {
	// Hooks during a resumed run must see ORIGINAL dataset indices.
	rt := newRuntime(t, fault.SchemeEMR)
	j, err := rt.NewJournal(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	spec := chunkedSpec(t, rt, 6, 128, false)
	// Pre-checkpoint datasets 0..2 via a first faulty run.
	cut := errors.New("cut")
	spec.Hook = func(hp *HookPoint) {
		if hp.Dataset >= 3 {
			hp.Fail = cut
		}
	}
	if _, err := rt.RunJournaled(spec, j); err != nil {
		t.Fatal(err)
	}
	var seen []int
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase == PhaseBeforeRead && hp.Executor == 0 {
			seen = append(seen, hp.Dataset)
		}
	}
	if _, err := rt.RunJournaled(spec, j); err != nil {
		t.Fatal(err)
	}
	for _, d := range seen {
		if d < 3 || d > 5 {
			t.Fatalf("hook saw dataset %d, want original indices 3..5", d)
		}
	}
	if len(seen) == 0 {
		t.Fatal("hook never fired on resume")
	}
}
