package emr

import (
	"fmt"
	"hash/crc32"

	"radshield/internal/mem"
)

// regionsOf returns a dataset's raw input regions (no replica
// resolution: the checksum scheme never replicates).
func regionsOf(ds Dataset) []mem.Region {
	regions := make([]mem.Region, len(ds.Inputs))
	for i, in := range ds.Inputs {
		regions[i] = in.Region
	}
	return regions
}

// This file implements the checksum-guard baseline the paper discusses
// in §2.2: "storing checksums of critical memory values, which are
// recomputed every time memory is written to and verified every time the
// memory location is read" (Borchert et al. style). It executes each job
// ONCE, verifying input integrity by checksum at read time.
//
// The scheme catches memory-resident corruption (frontier, cache) the
// moment it is consumed, but — as the paper argues — it cannot catch
// faults in the compute pipeline itself: a flipped ALU result passes
// every memory checksum and reaches the output silently. The Table 7
// extension campaign demonstrates exactly that gap.

// checksums records the CRC of every loaded input region at staging
// time. Region granularity matches LoadInput calls; Slice()d datasets
// verify against the parent region.
type checksumStore struct {
	crcs map[regionKey]uint32
}

// ErrChecksumMismatch is wrapped in the dataset error when a verified
// read disagrees with the stored checksum (a detected error).
var ErrChecksumMismatch = fmt.Errorf("emr: input checksum mismatch")

// runChecksummed executes each dataset once, verifying every input
// region's CRC over the bytes actually delivered through the cache.
func (r *Runtime) runChecksummed(spec *Spec) (*Result, error) {
	n := len(spec.Datasets)
	acct := r.newAccounting(spec, nil)
	outputs := make([][][]byte, n)
	errs := make([]error, n)

	// Baseline CRCs come from the pristine frontier contents at run
	// start: the guard's "recompute on write" bookkeeping.
	store, err := r.checksumDatasets(spec)
	if err != nil {
		return nil, err
	}

	for d := 0; d < n; d++ {
		out, io, err := r.visitChecksummed(spec, store, d)
		v := r.parts(spec, io.total, io.fetched, 0)
		v.compute += io.stall
		v, err = r.watchVisit(0, d, v, err)
		outputs[d] = [][]byte{out}
		errs[d] = err
		// Checksum maintenance costs one extra pass over the bytes at
		// memory bandwidth.
		verify := r.parts(spec, 0, io.total, 0).fetch
		acct.addVisit(v)
		acct.makespan += v.total() + verify
		acct.busy += v.total() + verify
	}
	return r.vote(spec, outputs, errs, acct), nil
}

// checksumDatasets snapshots the CRC of each dataset input region from
// the frontier, bypassing the cache (the guard's metadata lives inside
// the frontier).
func (r *Runtime) checksumDatasets(spec *Spec) (*checksumStore, error) {
	store := &checksumStore{crcs: make(map[regionKey]uint32)}
	buf := []byte(nil)
	for _, ds := range spec.Datasets {
		for _, in := range ds.Inputs {
			k := regionKey{in.Region.Addr, in.Region.Len}
			if _, ok := store.crcs[k]; ok {
				continue
			}
			if uint64(cap(buf)) < in.Region.Len {
				buf = make([]byte, in.Region.Len)
			}
			buf = buf[:in.Region.Len]
			if err := r.bus.Read(in.Region.Addr, buf); err != nil {
				return nil, fmt.Errorf("emr: checksumming %q: %w", in.Name, err)
			}
			store.crcs[k] = crc32.ChecksumIEEE(buf)
		}
	}
	return store, nil
}

// visitChecksummed is the single-execution visit with read-time CRC
// verification.
func (r *Runtime) visitChecksummed(spec *Spec, store *checksumStore, dsIdx int) (out []byte, io visitIO, err error) {
	ds := spec.Datasets[dsIdx]
	if spec.Hook != nil {
		hp := &HookPoint{Phase: PhaseBeforeRead, Jobset: -1, Dataset: dsIdx, Executor: 0, Regions: regionsOf(ds)}
		spec.Hook(hp)
		io.stall += hp.Stall
		if hp.Fail != nil {
			r.ins.hookAbort()
			return nil, io, hp.Fail
		}
	}
	missesBefore := r.cache.Stats().Misses
	inputs := make([][]byte, len(ds.Inputs))
	for i, in := range ds.Inputs {
		buf := make([]byte, in.Region.Len)
		if err := r.cache.Read(in.Region.Addr, buf); err != nil {
			return nil, io, fmt.Errorf("emr: reading %q: %w", in.Name, err)
		}
		inputs[i] = buf
		io.total += in.Region.Len
	}
	io.fetched = (r.cache.Stats().Misses - missesBefore) * cacheLineSize
	r.ins.visit(io.fetched)
	if spec.Hook != nil {
		hp := &HookPoint{Phase: PhaseAfterRead, Jobset: -1, Dataset: dsIdx, Executor: 0, Regions: regionsOf(ds)}
		spec.Hook(hp)
		io.stall += hp.Stall
		if hp.Fail != nil {
			r.ins.hookAbort()
			return nil, io, hp.Fail
		}
		// Re-read so injected cache upsets reach the consumed bytes (the
		// same compute-window modelling as visit()).
		for i, in := range ds.Inputs {
			if err := r.cache.Read(in.Region.Addr, inputs[i]); err != nil {
				return nil, io, err
			}
		}
	}
	// Verify the consumed bytes against the stored CRCs: this is the
	// guard's read-path check, and it sees exactly what the job sees.
	for i, in := range ds.Inputs {
		k := regionKey{in.Region.Addr, in.Region.Len}
		want, ok := store.crcs[k]
		if !ok {
			return nil, io, fmt.Errorf("emr: no checksum for %q", in.Name)
		}
		if got := crc32.ChecksumIEEE(inputs[i]); got != want {
			r.ins.checksumMiss(dsIdx, in.Name)
			return nil, io, fmt.Errorf("%w: %q", ErrChecksumMismatch, in.Name)
		}
	}
	out, err = spec.Job(inputs)
	if err != nil {
		return nil, io, err
	}
	if spec.Hook != nil {
		hp := &HookPoint{Phase: PhaseAfterJob, Jobset: -1, Dataset: dsIdx, Executor: 0, Regions: regionsOf(ds), Output: out}
		spec.Hook(hp)
		io.stall += hp.Stall
		if hp.Fail != nil {
			r.ins.hookAbort()
			return nil, io, hp.Fail
		}
		out = hp.Output
	}
	return out, io, nil
}
