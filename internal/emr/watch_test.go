package emr

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"radshield/internal/fault"
)

// recordingWatcher logs every VisitDone call and optionally kills
// visits whose elapsed exceeds a deadline, billing them at the deadline.
type recordingWatcher struct {
	deadline time.Duration
	calls    []watchCall
	kills    int
}

type watchCall struct {
	executor, dataset int
	elapsed           time.Duration
	err               error
}

var errWatchKill = errors.New("watchdog: visit deadline exceeded")

func (w *recordingWatcher) VisitDone(executor, dataset int, elapsed time.Duration, visitErr error) (time.Duration, error) {
	w.calls = append(w.calls, watchCall{executor, dataset, elapsed, visitErr})
	if w.deadline > 0 && elapsed > w.deadline && visitErr == nil {
		w.kills++
		return w.deadline, errWatchKill
	}
	return elapsed, visitErr
}

func TestWatcherSeesEveryVisit(t *testing.T) {
	for _, scheme := range []fault.Scheme{
		fault.SchemeEMR, fault.SchemeUnprotectedParallel, fault.SchemeSerial3MR,
		fault.SchemeNone, fault.SchemeChecksum,
	} {
		w := &recordingWatcher{}
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		if scheme == fault.SchemeNone || scheme == fault.SchemeChecksum {
			cfg.Executors = 1
		}
		cfg.Watch = w
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Run(chunkedSpec(t, rt, 4, 128, false)); err != nil {
			t.Fatal(err)
		}
		want := 4 * cfg.Executors
		if len(w.calls) != want {
			t.Errorf("%v: watcher saw %d visits, want %d", scheme, len(w.calls), want)
		}
		for _, c := range w.calls {
			if c.elapsed <= 0 {
				t.Errorf("%v: visit (%d,%d) has non-positive elapsed %v", scheme, c.executor, c.dataset, c.elapsed)
			}
		}
	}
}

func TestHookStallExtendsElapsedAndMakespan(t *testing.T) {
	run := func(stall time.Duration) (time.Duration, *recordingWatcher) {
		w := &recordingWatcher{}
		cfg := DefaultConfig()
		cfg.Watch = w
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := chunkedSpec(t, rt, 4, 128, false)
		spec.Hook = func(hp *HookPoint) {
			if hp.Phase == PhaseAfterRead && hp.Executor == 1 && hp.Dataset == 0 {
				hp.Stall = stall
			}
		}
		res, err := rt.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Makespan, w
	}
	base, _ := run(0)
	stalled, w := run(50 * time.Millisecond)
	if stalled <= base {
		t.Fatalf("stalled makespan %v not above base %v", stalled, base)
	}
	var sawStall bool
	for _, c := range w.calls {
		if c.executor == 1 && c.dataset == 0 && c.elapsed >= 50*time.Millisecond {
			sawStall = true
		}
	}
	if !sawStall {
		t.Fatal("watcher never saw the stalled visit's elapsed time")
	}
}

func TestWatcherKillStillVotesWithRemainingReplicas(t *testing.T) {
	w := &recordingWatcher{deadline: 10 * time.Millisecond}
	cfg := DefaultConfig()
	cfg.Watch = w
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := golden(t, 4, 128, false)
	spec := chunkedSpec(t, rt, 4, 128, false)
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase == PhaseAfterRead && hp.Executor == 2 && hp.Dataset == 1 {
			hp.Stall = time.Second // hung replica, far past the deadline
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.kills != 1 {
		t.Fatalf("kills = %d, want 1", w.kills)
	}
	for i := range want {
		if !bytes.Equal(res.Outputs[i], want[i]) {
			t.Fatalf("dataset %d output wrong after watchdog kill", i)
		}
	}
	if res.Report.ExecErrors != 1 {
		t.Fatalf("ExecErrors = %d, want 1 (the killed visit)", res.Report.ExecErrors)
	}
	// The hung visit is billed at the deadline, not its full stall.
	if res.Report.Makespan > time.Second {
		t.Fatalf("makespan %v still includes the uncapped hang", res.Report.Makespan)
	}
}

func TestDMRDetectsButCannotCorrect(t *testing.T) {
	// Two agreeing executors produce outputs like TMR.
	cfg := DefaultConfig()
	cfg.Executors = 2
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := golden(t, 4, 128, false)
	res, err := rt.Run(chunkedSpec(t, rt, 4, 128, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(res.Outputs[i], want[i]) {
			t.Fatalf("DMR dataset %d output mismatch", i)
		}
	}

	// A corrupted copy under DMR is detected (vote fails loudly) rather
	// than silently emitted — the guard pairs this with an arbiter.
	rt2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := chunkedSpec(t, rt2, 4, 128, false)
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase == PhaseAfterJob && hp.Executor == 1 && hp.Dataset == 2 {
			hp.Output[0] ^= 0xFF
		}
	}
	res2, err := rt2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outputs[2] != nil {
		t.Fatal("DMR emitted an output despite replica disagreement")
	}
	if !res2.PerDataset[2].Disagreement {
		t.Fatal("disagreement not flagged")
	}
	if res2.Report.Votes.Failed != 1 {
		t.Fatalf("Votes.Failed = %d, want 1", res2.Report.Votes.Failed)
	}
	for _, d := range []int{0, 1, 3} {
		if !bytes.Equal(res2.Outputs[d], want[d]) {
			t.Fatalf("unaffected dataset %d corrupted", d)
		}
	}
}

func TestWatcherErrorPropagatesToVote(t *testing.T) {
	// A watcher that kills every visit of executor 0 leaves TMR as a
	// 2-of-2 vote — still correct outputs.
	kill := fmt.Errorf("core 0 offline")
	w := watcherFunc(func(executor, dataset int, elapsed time.Duration, visitErr error) (time.Duration, error) {
		if executor == 0 {
			return elapsed, kill
		}
		return elapsed, visitErr
	})
	cfg := DefaultConfig()
	cfg.Watch = w
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := golden(t, 4, 128, false)
	res, err := rt.Run(chunkedSpec(t, rt, 4, 128, false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(res.Outputs[i], want[i]) {
			t.Fatalf("dataset %d wrong with executor 0 dead", i)
		}
	}
	if res.Report.ExecErrors != 4 {
		t.Fatalf("ExecErrors = %d, want 4", res.Report.ExecErrors)
	}
}

// watcherFunc adapts a function to the Watcher interface.
type watcherFunc func(executor, dataset int, elapsed time.Duration, visitErr error) (time.Duration, error)

func (f watcherFunc) VisitDone(executor, dataset int, elapsed time.Duration, visitErr error) (time.Duration, error) {
	return f(executor, dataset, elapsed, visitErr)
}
