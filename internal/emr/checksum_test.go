package emr

import (
	"bytes"
	"errors"
	"testing"

	"radshield/internal/fault"
)

func TestChecksumSchemeCleanRun(t *testing.T) {
	want := golden(t, 8, 256, true)
	rt := newRuntime(t, fault.SchemeChecksum)
	res, err := rt.Run(chunkedSpec(t, rt, 8, 256, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(res.Outputs[i], want[i]) {
			t.Fatalf("dataset %d mismatch", i)
		}
	}
	if res.Report.ExecErrors != 0 {
		t.Fatalf("clean run reported %d errors", res.Report.ExecErrors)
	}
}

func TestChecksumSchemeAllowsSingleExecutor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = fault.SchemeChecksum
	cfg.Executors = 1
	if _, err := New(cfg); err != nil {
		t.Fatalf("checksum scheme with 1 executor rejected: %v", err)
	}
}

func TestChecksumCatchesCacheCorruption(t *testing.T) {
	// A cache upset in the consumed bytes disagrees with the stored CRC:
	// detected error, never SDC.
	rt := newRuntime(t, fault.SchemeChecksum)
	spec := chunkedSpec(t, rt, 4, 256, false)
	landed := false
	spec.Hook = cacheFlipHook(rt, 0, 2, &landed)
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !landed {
		t.Fatal("flip did not land")
	}
	if res.Outputs[2] != nil {
		t.Fatal("corrupted dataset still produced an output")
	}
	if !errors.Is(res.PerDataset[2].Err, ErrChecksumMismatch) {
		t.Fatalf("error = %v, want checksum mismatch", res.PerDataset[2].Err)
	}
	// Other datasets unaffected.
	if res.Outputs[0] == nil || res.Outputs[3] == nil {
		t.Fatal("unrelated datasets affected")
	}
}

func TestChecksumMissesPipelineFault(t *testing.T) {
	// The paper's argument against checksum guards: a pipeline fault
	// produces a wrong output from verified-correct inputs — silent.
	want := golden(t, 4, 256, false)
	rt := newRuntime(t, fault.SchemeChecksum)
	spec := chunkedSpec(t, rt, 4, 256, false)
	done := false
	spec.Hook = func(hp *HookPoint) {
		if !done && hp.Phase == PhaseAfterJob && hp.Dataset == 1 {
			done = true
			hp.Output[0] ^= 0x01
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerDataset[1].Err != nil {
		t.Fatalf("pipeline fault was detected (%v) — checksum should be blind to it", res.PerDataset[1].Err)
	}
	if bytes.Equal(res.Outputs[1], want[1]) {
		t.Fatal("output unexpectedly correct")
	}
}

func TestChecksumRuntimeBetweenNoneAndEMR(t *testing.T) {
	mk := func(scheme fault.Scheme) float64 {
		rt := newRuntime(t, scheme)
		res, err := rt.Run(chunkedSpec(t, rt, 16, 1024, false))
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Makespan.Seconds()
	}
	none := mk(fault.SchemeNone)
	sum := mk(fault.SchemeChecksum)
	serial := mk(fault.SchemeSerial3MR)
	if !(none < sum && sum < serial) {
		t.Fatalf("runtime ordering violated: none=%v checksum=%v serial=%v", none, sum, serial)
	}
}

func TestCacheECCRevertsEMRToParallel3MR(t *testing.T) {
	// With an ECC cache the shared-line hazard is gone; EMR executes as
	// plain parallel 3-MR (paper §3.2) and cache upsets are absorbed.
	want := golden(t, 4, 256, false)
	cfg := DefaultConfig()
	cfg.CacheECC = true
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := chunkedSpec(t, rt, 4, 256, false)
	landed := false
	spec.Hook = cacheFlipHook(rt, 0, 2, &landed)
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !landed {
		t.Fatal("flip did not land")
	}
	// Absorbed in hardware: outputs correct and votes unanimous.
	if !bytes.Equal(res.Outputs[2], want[2]) {
		t.Fatal("ECC cache failed to absorb the strike")
	}
	if res.Report.Votes.Unanimous != 4 {
		t.Fatalf("votes = %+v, want all unanimous", res.Report.Votes)
	}
	if res.Report.CacheStats.FlipsAbsorbed != 1 {
		t.Fatalf("FlipsAbsorbed = %d, want 1", res.Report.CacheStats.FlipsAbsorbed)
	}
	// No jobsets / flushes: the run reverted to plain parallelism.
	if res.Report.Jobsets != 0 || res.Report.CacheStats.LinesFlushed != 0 {
		t.Fatalf("jobsets=%d flushed=%d; expected plain parallel execution",
			res.Report.Jobsets, res.Report.CacheStats.LinesFlushed)
	}
}

func TestCacheECCFasterThanEMRFlushing(t *testing.T) {
	run := func(ecc bool) float64 {
		cfg := DefaultConfig()
		cfg.CacheECC = ecc
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(chunkedSpec(t, rt, 32, 2048, false))
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.Makespan.Seconds()
	}
	if withECC, without := run(true), run(false); withECC >= without {
		t.Fatalf("ECC-cache EMR (%v) not faster than flushing EMR (%v)", withECC, without)
	}
}
