package emr

import (
	"bytes"
	"testing"

	"radshield/internal/fault"
)

func TestParallelExecutionMatchesSequential(t *testing.T) {
	seq := newRuntime(t, fault.SchemeEMR)
	seqRes, err := seq.Run(chunkedSpec(t, seq, 24, 1024, true))
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.ParallelExecution = true
	par, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := par.Run(chunkedSpec(t, par, 24, 1024, true))
	if err != nil {
		t.Fatal(err)
	}

	for i := range seqRes.Outputs {
		if !bytes.Equal(seqRes.Outputs[i], parRes.Outputs[i]) {
			t.Fatalf("dataset %d differs between sequential and parallel execution", i)
		}
	}
	if parRes.Report.Votes != seqRes.Report.Votes {
		t.Fatalf("votes differ: %+v vs %+v", parRes.Report.Votes, seqRes.Report.Votes)
	}
	if parRes.Report.Jobsets != seqRes.Report.Jobsets {
		t.Fatalf("jobsets differ: %d vs %d", parRes.Report.Jobsets, seqRes.Report.Jobsets)
	}
}

func TestParallelExecutionRepeatable(t *testing.T) {
	run := func() [][]byte {
		cfg := DefaultConfig()
		cfg.ParallelExecution = true
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(chunkedSpec(t, rt, 16, 512, false))
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(), run()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("parallel outputs differ across runs at dataset %d", i)
		}
	}
}

func TestHookForcesSequential(t *testing.T) {
	// With a hook installed, execution must stay sequential so injection
	// campaigns are exactly reproducible; verify by observing a strict
	// (t, e) visit order.
	cfg := DefaultConfig()
	cfg.ParallelExecution = true
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := chunkedSpec(t, rt, 6, 128, false)
	lastExec := -1
	ordered := true
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase != PhaseBeforeRead {
			return
		}
		next := (lastExec + 1) % 3
		if hp.Executor != next {
			ordered = false
		}
		lastExec = hp.Executor
	}
	if _, err := rt.Run(spec); err != nil {
		t.Fatal(err)
	}
	if !ordered {
		t.Fatal("hooked run did not visit executors in sequential order")
	}
}

func BenchmarkEMRRunSequential(b *testing.B) {
	benchmarkEMRRun(b, false)
}

func BenchmarkEMRRunParallel(b *testing.B) {
	benchmarkEMRRun(b, true)
}

func benchmarkEMRRun(b *testing.B, parallel bool) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.ParallelExecution = parallel
		rt, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, 64*4096)
		ref, err := rt.LoadInput("d", data)
		if err != nil {
			b.Fatal(err)
		}
		datasets := make([]Dataset, 64)
		for j := range datasets {
			datasets[j] = Dataset{Inputs: []InputRef{mustSlice(ref, uint64(j*4096), 4096)}}
		}
		if _, err := rt.Run(Spec{Name: "bench", Datasets: datasets, Job: sumJob, CyclesPerByte: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
