package emr

import (
	"fmt"
	"time"

	"radshield/internal/cache"
	"radshield/internal/fault"
	"radshield/internal/mem"
	"radshield/internal/telemetry"
)

// Frontier selects where the reliability frontier sits (paper Figure 3).
type Frontier int

const (
	// FrontierDRAM: the device has ECC DRAM; inputs/outputs live in DRAM.
	FrontierDRAM Frontier = iota
	// FrontierStorage: DRAM is unprotected (e.g. Snapdragon 801); only
	// flash storage can be trusted, and the page cache must be treated as
	// vulnerable.
	FrontierStorage
)

// String names the frontier placement.
func (f Frontier) String() string {
	switch f {
	case FrontierDRAM:
		return "dram"
	case FrontierStorage:
		return "storage"
	default:
		return "unknown"
	}
}

// CostModel carries the virtual-time and energy coefficients used to
// account runtime and energy for a run. The simulation executes real
// computation over simulated memory but charges time analytically, so
// results are deterministic and hardware-independent.
type CostModel struct {
	CoreFreqHz       float64       // executor core frequency
	DiskBytesPerSec  float64       // storage streaming bandwidth
	DRAMBytesPerSec  float64       // DRAM fetch bandwidth
	AllocBytesPerSec float64       // allocator + memset bandwidth
	FlushLineCost    time.Duration // per cache-line flush cost
	IdleWatts        float64       // board baseline power
	CoreWatts        float64       // one busy executor core
}

// DefaultCostModel is calibrated to a flight-class embedded board: a
// 1.4 GHz core, UFS-class storage, LPDDR4-class DRAM.
func DefaultCostModel() CostModel {
	return CostModel{
		CoreFreqHz:       1.4e9,
		DiskBytesPerSec:  400e6,
		DRAMBytesPerSec:  3.2e9,
		AllocBytesPerSec: 6.4e9,
		FlushLineCost:    40 * time.Nanosecond,
		IdleWatts:        7.75, // 1.55 A × 5 V
		CoreWatts:        3.4,
	}
}

// Config describes the device and scheme a Runtime executes under.
type Config struct {
	Scheme   fault.Scheme
	Frontier Frontier
	// DRAMECC: whether the working DRAM has SECDED. Required true when
	// Frontier is FrontierDRAM (the frontier must be protected).
	DRAMECC     bool
	DRAMSize    uint64
	StorageSize uint64
	CacheSets   int
	CacheWays   int
	Executors   int // redundant copies; the paper uses 3
	// CacheECC marks the shared cache as SECDED-protected. Per the paper
	// §3.2, when cache ECC exists EMR "simply reverts to 3-MR": shared
	// cached data no longer needs replication or flush discipline, so the
	// EMR scheme executes as plain parallel 3-MR while remaining fully
	// protected (single-bit cache upsets are absorbed in hardware).
	CacheECC bool
	// ParallelExecution runs each EMR round's executor visits on real
	// goroutines (the flight implementation pins executors to cores).
	// Outputs are identical to sequential execution — jobs are pure and
	// the cache is coherent — but the virtual cost accounting can vary by
	// a few cache evictions between runs, and fault-injection hooks force
	// sequential execution so campaigns stay exactly reproducible.
	ParallelExecution bool
	// ReplicationThreshold is the fraction of datasets that must share an
	// identical region before it is replicated per-executor (paper
	// default 0.01). Values > 1 disable replication; 0 replicates any
	// region shared by at least two datasets.
	ReplicationThreshold float64
	Cost                 CostModel
	// Watch, when non-nil, observes every executor visit's virtual
	// elapsed time and error, and may kill or re-bill the visit — the
	// guard watchdog's attachment point (see internal/guard). Watchers
	// run on the deterministic sequential collection path regardless of
	// ParallelExecution.
	Watch Watcher
	// Telemetry, when non-nil, receives the runtime's vote/flush/fetch
	// counters, the per-run makespan histogram, and vote-mismatch /
	// checksum-miss events (see TELEMETRY.md). Nil disables
	// instrumentation; the hot path then costs one nil check per
	// accounting step.
	Telemetry *telemetry.Registry
}

// DefaultConfig returns a 3-executor EMR configuration with an ECC-DRAM
// frontier and a 512 KiB shared cache.
func DefaultConfig() Config {
	return Config{
		Scheme:               fault.SchemeEMR,
		Frontier:             FrontierDRAM,
		DRAMECC:              true,
		DRAMSize:             64 << 20,
		StorageSize:          64 << 20,
		CacheSets:            512,
		CacheWays:            16,
		Executors:            3,
		ReplicationThreshold: 0.01,
		Cost:                 DefaultCostModel(),
	}
}

// Runtime owns the simulated device (frontier memory, working DRAM,
// shared cache) and executes Specs under the configured scheme.
type Runtime struct {
	cfg         Config
	bus         *mem.Bus
	storage     *mem.Storage
	dram        *mem.DRAM
	storageBase uint64
	dramBase    uint64
	cache       *cache.Cache

	inputBytes uint64 // bytes staged through LoadInput
	diskLoaded uint64 // bytes pulled from disk during staging

	ins *instruments
}

// New validates the config and builds a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Executors < 1 {
		return nil, fmt.Errorf("emr: Executors = %d, want ≥ 1", cfg.Executors)
	}
	if cfg.Scheme != fault.SchemeNone && cfg.Scheme != fault.SchemeChecksum && cfg.Executors < 2 {
		// Two executors is DMR: disagreement is detected (no silent
		// corruption) but not correctable by vote — the guard layer's
		// degraded mode, which pairs it with a checksum arbiter. Full
		// correction needs three.
		return nil, fmt.Errorf("emr: scheme %v needs ≥ 2 executors, have %d", cfg.Scheme, cfg.Executors)
	}
	if cfg.Frontier == FrontierDRAM && !cfg.DRAMECC {
		return nil, fmt.Errorf("emr: DRAM frontier requires ECC DRAM; set Frontier to storage instead")
	}
	if cfg.DRAMSize == 0 || cfg.StorageSize == 0 {
		return nil, fmt.Errorf("emr: DRAMSize and StorageSize must be nonzero")
	}
	if cfg.CacheSets <= 0 || cfg.CacheWays <= 0 {
		return nil, fmt.Errorf("emr: invalid cache geometry %d×%d", cfg.CacheSets, cfg.CacheWays)
	}
	if cfg.ReplicationThreshold < 0 {
		return nil, fmt.Errorf("emr: negative replication threshold %v", cfg.ReplicationThreshold)
	}
	if cfg.Cost.CoreFreqHz <= 0 || cfg.Cost.DiskBytesPerSec <= 0 ||
		cfg.Cost.DRAMBytesPerSec <= 0 || cfg.Cost.AllocBytesPerSec <= 0 {
		return nil, fmt.Errorf("emr: cost model rates must be positive")
	}

	rt := &Runtime{
		cfg:     cfg,
		bus:     mem.NewBus(),
		storage: mem.NewStorage(cfg.StorageSize),
		dram:    mem.NewDRAM(cfg.DRAMSize, cfg.DRAMECC),
		ins:     newEMRInstruments(cfg.Telemetry),
	}
	rt.storageBase = rt.bus.Map(rt.storage)
	rt.dramBase = rt.bus.Map(rt.dram)
	rt.cache = cache.New(rt.bus, cfg.CacheSets, cfg.CacheWays)
	rt.cache.SetECCProtected(cfg.CacheECC)
	return rt, nil
}

// Reset returns the runtime to its freshly-constructed state so campaign
// schedulers can reuse the device — and its >100 MB of memory arrays —
// across trials instead of rebuilding it per trial (see PERFORMANCE.md).
// Memory contents, ECC codes, allocator watermarks, cache lines, and all
// device statistics are cleared; the configuration, bus mapping, and
// telemetry instruments are kept, exactly as if New had been called with
// the same config. Callers must not reuse a runtime across different
// configs: pool per config instead.
func (r *Runtime) Reset() {
	r.dram.Reset()
	r.storage.Reset()
	r.cache.Reset()
	r.inputBytes = 0
	r.diskLoaded = 0
}

// Config returns the runtime configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Cache exposes the shared cache for fault-injection campaigns.
func (r *Runtime) Cache() *cache.Cache { return r.cache }

// FlipFrontierBit injects a bit flip into frontier memory at a
// bus-relative address (fault campaigns use region addresses from
// InputRefs, which are bus addresses).
func (r *Runtime) FlipFrontierBit(addr uint64, bit uint) error {
	return r.bus.FlipBit(addr, bit)
}

// frontierAlloc reserves n bytes on the frontier device and returns the
// bus address.
func (r *Runtime) frontierAlloc(n uint64) (uint64, error) {
	switch r.cfg.Frontier {
	case FrontierStorage:
		a, err := r.storage.Alloc(n)
		return r.storageBase + a, err
	default:
		a, err := r.dram.Alloc(n)
		return r.dramBase + a, err
	}
}

// workAlloc reserves n bytes of working DRAM (replicas, scratch outputs)
// and returns the bus address.
func (r *Runtime) workAlloc(n uint64) (uint64, error) {
	a, err := r.dram.Alloc(n)
	return r.dramBase + a, err
}

// LoadInput stages data onto the reliability frontier (the paper's
// "input data ... stored within the reliability frontier") and returns a
// reference covering it. Loading is charged as one streaming disk read —
// input data originates from the spacecraft's storage regardless of
// where the frontier sits.
func (r *Runtime) LoadInput(name string, data []byte) (InputRef, error) {
	if len(data) == 0 {
		return InputRef{}, fmt.Errorf("emr: LoadInput(%q): empty input", name)
	}
	addr, err := r.frontierAlloc(uint64(len(data)))
	if err != nil {
		return InputRef{}, fmt.Errorf("emr: LoadInput(%q): %w", name, err)
	}
	if err := r.bus.Write(addr, data); err != nil {
		return InputRef{}, fmt.Errorf("emr: LoadInput(%q): %w", name, err)
	}
	r.inputBytes += uint64(len(data))
	r.diskLoaded += uint64(len(data))
	return InputRef{Name: name, Region: mem.Region{Addr: addr, Len: uint64(len(data))}}, nil
}
