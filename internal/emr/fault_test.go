package emr

import (
	"bytes"
	"errors"
	"testing"

	"radshield/internal/fault"
)

// cacheFlipHook returns a hook that flips one bit in the first input
// region's cached line at the PhaseAfterRead of the given executor and
// dataset — the compute-time cache-SEU window. landed reports whether the
// flip struck a resident line.
func cacheFlipHook(rt *Runtime, executor, dataset int, landed *bool) Hook {
	done := false
	return func(hp *HookPoint) {
		if done || hp.Phase != PhaseAfterRead || hp.Executor != executor || hp.Dataset != dataset {
			return
		}
		done = true
		*landed = rt.Cache().FlipBit(hp.Regions[0].Addr+3, 5)
	}
}

func TestCacheSEUCausesSDCUnderUnprotectedParallel(t *testing.T) {
	// The paper's central hazard (§3.2): in unprotected parallel 3-MR the
	// redundant copies share cached lines, so one upset corrupts several
	// of them and the wrong answer wins the vote — silently.
	want := golden(t, 4, 256, false)

	rt := newRuntime(t, fault.SchemeUnprotectedParallel)
	spec := chunkedSpec(t, rt, 4, 256, false)
	landed := false
	spec.Hook = cacheFlipHook(rt, 0, 2, &landed)
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !landed {
		t.Fatal("flip did not strike a resident line")
	}
	// No error surfaced...
	if res.PerDataset[2].Err != nil || res.Report.Votes.Failed != 0 {
		t.Fatalf("unexpected detected error: %+v", res.PerDataset[2])
	}
	// ...but the output is wrong: silent data corruption.
	if bytes.Equal(res.Outputs[2], want[2]) {
		t.Fatal("expected SDC, got correct output — hazard not reproduced")
	}
	// The corruption reached every copy identically, so the vote looks
	// clean (either unanimous or at worst corrected).
	if res.PerDataset[2].Disagreement && res.Report.Votes.Corrected == 0 {
		t.Fatalf("vote state inconsistent: %+v", res.Report.Votes)
	}
}

func TestCacheSEUMaskedByEMR(t *testing.T) {
	// Same strike under EMR: the flush discipline means the upset line
	// only ever feeds one executor, which the other two outvote.
	want := golden(t, 4, 256, false)

	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 4, 256, false)
	landed := false
	spec.Hook = cacheFlipHook(rt, 0, 2, &landed)
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !landed {
		t.Fatal("flip did not strike a resident line")
	}
	if !bytes.Equal(res.Outputs[2], want[2]) {
		t.Fatal("EMR produced wrong output despite single-executor corruption")
	}
	if res.Report.Votes.Corrected != 1 {
		t.Fatalf("votes = %+v, want exactly 1 corrected", res.Report.Votes)
	}
}

func TestCacheSEUMaskedBySerial3MR(t *testing.T) {
	want := golden(t, 4, 256, false)
	rt := newRuntime(t, fault.SchemeSerial3MR)
	spec := chunkedSpec(t, rt, 4, 256, false)
	landed := false
	spec.Hook = cacheFlipHook(rt, 1, 2, &landed) // strike during pass 1
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !landed {
		t.Fatal("flip did not strike a resident line")
	}
	if !bytes.Equal(res.Outputs[2], want[2]) {
		t.Fatal("serial 3-MR produced wrong output")
	}
	if res.Report.Votes.Corrected != 1 {
		t.Fatalf("votes = %+v, want 1 corrected", res.Report.Votes)
	}
}

func TestCacheSEUCausesSDCUnderNoProtection(t *testing.T) {
	want := golden(t, 4, 256, false)
	rt := newRuntime(t, fault.SchemeNone)
	spec := chunkedSpec(t, rt, 4, 256, false)
	landed := false
	spec.Hook = cacheFlipHook(rt, 0, 1, &landed)
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !landed {
		t.Fatal("flip did not land")
	}
	if bytes.Equal(res.Outputs[1], want[1]) {
		t.Fatal("expected SDC under no protection")
	}
}

func TestPipelineSEUOutvoted(t *testing.T) {
	// An upset in one executor's pipeline manifests as a wrong output
	// from that executor; EMR's vote corrects it.
	want := golden(t, 4, 256, false)
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 4, 256, false)
	done := false
	spec.Hook = func(hp *HookPoint) {
		if !done && hp.Phase == PhaseAfterJob && hp.Executor == 1 && hp.Dataset == 0 {
			done = true
			hp.Output[0] ^= 0x40
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Outputs[0], want[0]) {
		t.Fatal("pipeline SEU not outvoted")
	}
	if res.Report.Votes.Corrected != 1 {
		t.Fatalf("votes = %+v", res.Report.Votes)
	}
}

func TestJobDescriptorCorruptionIsDetectedError(t *testing.T) {
	// The paper's observed case: a corrupted pointer in a job descriptor
	// segfaults the executor — a detected, recoverable error.
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 4, 256, false)
	segv := errors.New("SIGSEGV: corrupted job pointer")
	done := false
	spec.Hook = func(hp *HookPoint) {
		if !done && hp.Phase == PhaseBeforeRead && hp.Executor == 2 && hp.Dataset == 3 {
			done = true
			hp.Fail = segv
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ExecErrors != 1 {
		t.Fatalf("ExecErrors = %d", res.Report.ExecErrors)
	}
	// Two healthy copies remain: output survives, vote is corrected.
	if res.Outputs[3] == nil || res.Report.Votes.Corrected != 1 {
		t.Fatalf("descriptor corruption not recovered: votes=%+v", res.Report.Votes)
	}
}

func TestECCDRAMAbsorbsFrontierSEU(t *testing.T) {
	// A flip on the ECC-DRAM frontier is corrected in hardware: no
	// effect at all (the paper's rationale for the reliability frontier).
	want := golden(t, 4, 256, false)
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 4, 256, false)
	// Flip a bit in dataset 1's frontier region before any execution.
	addr := spec.Datasets[1].Inputs[0].Region.Addr
	if err := rt.FlipFrontierBit(addr, 2); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Outputs[1], want[1]) {
		t.Fatal("ECC frontier flip reached the output")
	}
	if res.Report.Votes.Unanimous != 4 {
		t.Fatalf("votes = %+v, want all unanimous (hardware corrected)", res.Report.Votes)
	}
}

func TestDoubleFrontierFlipIsDetectedNotSilent(t *testing.T) {
	// Two flips in one ECC word: SECDED detects but cannot correct; the
	// read fails as a machine check — a detected error, never SDC.
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 4, 256, false)
	addr := spec.Datasets[1].Inputs[0].Region.Addr
	rt.FlipFrontierBit(addr, 2)
	rt.FlipFrontierBit(addr, 5)
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != nil {
		t.Fatal("uncorrectable word still produced an output — all executors read the same poisoned frontier")
	}
	if res.PerDataset[1].Err == nil {
		t.Fatal("no error recorded for uncorrectable frontier word")
	}
	// Other datasets unaffected.
	if res.Outputs[0] == nil || res.Outputs[2] == nil || res.Outputs[3] == nil {
		t.Fatal("unrelated datasets affected")
	}
}

func TestReplicaSEUAffectsOneExecutor(t *testing.T) {
	// A flip in one executor's private replica (e.g. its copy of the
	// encryption key) corrupts only that executor.
	want := golden(t, 8, 128, true)
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 8, 128, true)
	done := false
	spec.Hook = func(hp *HookPoint) {
		// Regions[1] is the key input; under EMR it resolves to the
		// executor's replica. Flip executor 0's replica in the cache
		// right after it was fetched.
		if !done && hp.Phase == PhaseAfterRead && hp.Executor == 0 && hp.Dataset == 0 {
			done = true
			if !rt.Cache().FlipBit(hp.Regions[1].Addr, 1) {
				t.Error("replica line not resident")
			}
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Outputs[0], want[0]) {
		t.Fatal("replica corruption defeated the vote")
	}
	if res.Report.Votes.Corrected < 1 {
		t.Fatalf("votes = %+v, want at least one corrected", res.Report.Votes)
	}
}
