package emr

import (
	"fmt"
	"sort"

	"radshield/internal/mem"
)

// InputRef names a region of frontier memory a job reads. Refs are plain
// values: workloads slice them up freely to describe datasets.
type InputRef struct {
	Name   string
	Region mem.Region
}

// Slice narrows the ref to [off, off+n) within it. A slice escaping
// the ref is a dataset-construction bug reported as an error: workload
// builders run in flight software, where an out-of-range offset (e.g.
// from a corrupted job descriptor) must surface as a failed run the
// caller can retry, not a process crash.
func (r InputRef) Slice(off, n uint64) (InputRef, error) {
	if off+n > r.Region.Len || off+n < off {
		return InputRef{}, fmt.Errorf("emr: Slice(%d, %d) outside %q of %d bytes", off, n, r.Name, r.Region.Len)
	}
	return InputRef{
		Name:   r.Name,
		Region: mem.Region{Addr: r.Region.Addr + off, Len: n},
	}, nil
}

// Dataset is the set of input regions one job consumes (paper Figure 8:
// "a set of memory regions each computation uses as input").
type Dataset struct {
	Inputs []InputRef
}

// JobFunc computes one job: it receives the dataset's bytes in
// declaration order and returns the output. The bytes come from the
// simulated memory hierarchy, so upsets that reached the executor are
// visible in the slices.
type JobFunc func(inputs [][]byte) ([]byte, error)

// regionKey identifies an exact region (identical pointer and offset, as
// the paper's common-data detection requires).
type regionKey struct {
	addr uint64
	len  uint64
}

// analysis is the pre-execution plan: which regions are replicated,
// which datasets conflict, and the jobset grouping.
type analysis struct {
	replicated map[regionKey]bool
	// replicas[e][key] is the bus address of executor e's private copy.
	replicas []map[regionKey]uint64
	// conflictRegions[i] lists dataset i's non-replicated regions.
	conflictRegions [][]mem.Region
	jobsets         [][]int
	conflictPairs   int
	replicaBytes    uint64
}

// detectCommon counts identical regions across datasets and marks those
// above the replication threshold (paper: "EMR detects this 'common
// data' by looking for datasets within the input data with identical
// pointers and offsets").
func detectCommon(datasets []Dataset, threshold float64) map[regionKey]bool {
	counts := make(map[regionKey]int)
	for _, d := range datasets {
		seen := make(map[regionKey]bool, len(d.Inputs))
		for _, in := range d.Inputs {
			k := regionKey{in.Region.Addr, in.Region.Len}
			if !seen[k] { // count each region once per dataset
				seen[k] = true
				counts[k]++
			}
		}
	}
	replicated := make(map[regionKey]bool)
	if threshold > 1 || len(datasets) == 0 {
		return replicated
	}
	if threshold == 0 {
		// Replicate everything: the fully-protected parallel 3-MR
		// endpoint of the paper's Figure 13 sweep (3× memory, zero
		// conflicts, zero cache clears).
		for k := range counts {
			replicated[k] = true
		}
		return replicated
	}
	need := threshold * float64(len(datasets))
	for k, c := range counts {
		// A region used by a single dataset gains nothing from
		// replication; require sharing.
		if c >= 2 && float64(c) >= need {
			replicated[k] = true
		}
	}
	return replicated
}

// conflict reports whether datasets a and b share any byte through their
// non-replicated regions.
func conflict(a, b []mem.Region) bool {
	for _, ra := range a {
		for _, rb := range b {
			if ra.Overlaps(rb) {
				return true
			}
		}
	}
	return false
}

// buildJobsets greedily assigns each dataset to the first jobset it does
// not conflict with (paper: "EMR greedily creates jobsets by assigning
// jobs to the first available jobset without conflicts").
func buildJobsets(regions [][]mem.Region, extra func(i, j int) bool) (jobsets [][]int, pairs int) {
	for i := range regions {
		placed := false
		for s := range jobsets {
			ok := true
			for _, j := range jobsets[s] {
				if conflict(regions[i], regions[j]) || (extra != nil && extra(i, j)) {
					ok = false
					pairs++
					break
				}
			}
			if ok {
				jobsets[s] = append(jobsets[s], i)
				placed = true
				break
			}
		}
		if !placed {
			jobsets = append(jobsets, []int{i})
		}
	}
	return jobsets, pairs
}

// plan runs replication detection, replica materialization, and jobset
// construction for a spec.
func (r *Runtime) plan(spec *Spec) (*analysis, error) {
	a := &analysis{
		replicated: detectCommon(spec.Datasets, r.effectiveThreshold(spec)),
		replicas:   make([]map[regionKey]uint64, r.cfg.Executors),
	}

	// Materialize per-executor replicas of common regions, copying the
	// canonical bytes from the frontier. Deterministic order keeps
	// allocation layouts stable across runs.
	keys := make([]regionKey, 0, len(a.replicated))
	for k := range a.replicated {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].addr != keys[j].addr {
			return keys[i].addr < keys[j].addr
		}
		return keys[i].len < keys[j].len
	})
	for e := 0; e < r.cfg.Executors; e++ {
		a.replicas[e] = make(map[regionKey]uint64, len(keys))
	}
	buf := make([]byte, 0)
	for _, k := range keys {
		if cap(buf) < int(k.len) {
			buf = make([]byte, k.len)
		}
		buf = buf[:k.len]
		if err := r.bus.Read(k.addr, buf); err != nil {
			return nil, fmt.Errorf("emr: reading common region %#x: %w", k.addr, err)
		}
		for e := 0; e < r.cfg.Executors; e++ {
			addr, err := r.workAlloc(k.len)
			if err != nil {
				return nil, fmt.Errorf("emr: allocating replica: %w", err)
			}
			if err := r.bus.Write(addr, buf); err != nil {
				return nil, fmt.Errorf("emr: writing replica: %w", err)
			}
			a.replicas[e][k] = addr
			a.replicaBytes += k.len
		}
	}

	// Conflict graph over non-replicated regions only.
	a.conflictRegions = make([][]mem.Region, len(spec.Datasets))
	for i, d := range spec.Datasets {
		for _, in := range d.Inputs {
			k := regionKey{in.Region.Addr, in.Region.Len}
			if !a.replicated[k] {
				a.conflictRegions[i] = append(a.conflictRegions[i], in.Region)
			}
		}
	}
	a.jobsets, a.conflictPairs = buildJobsets(a.conflictRegions, spec.ExtraConflict)
	return a, nil
}

// effectiveThreshold resolves the replication threshold for a spec: the
// spec may override the runtime default; zero means "use config".
func (r *Runtime) effectiveThreshold(spec *Spec) float64 {
	if spec.ReplicationThreshold != nil {
		return *spec.ReplicationThreshold
	}
	return r.cfg.ReplicationThreshold
}

// executorRegion resolves the region executor e actually reads for an
// input: the private replica when the region is replicated, the shared
// frontier region otherwise.
func (a *analysis) executorRegion(e int, in InputRef) mem.Region {
	k := regionKey{in.Region.Addr, in.Region.Len}
	if a.replicated[k] {
		return mem.Region{Addr: a.replicas[e][k], Len: in.Region.Len}
	}
	return in.Region
}
