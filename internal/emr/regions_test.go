package emr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"radshield/internal/fault"
	"radshield/internal/mem"
)

func TestDetectCommonThresholds(t *testing.T) {
	mk := func(addr, length uint64) InputRef {
		return InputRef{Region: mem.Region{Addr: addr, Len: length}}
	}
	shared := mk(0, 32)
	datasets := []Dataset{
		{Inputs: []InputRef{mk(100, 10), shared}},
		{Inputs: []InputRef{mk(200, 10), shared}},
		{Inputs: []InputRef{mk(300, 10), shared}},
		{Inputs: []InputRef{mk(400, 10)}},
	}
	// Shared region appears in 3 of 4 datasets = 75 %.
	if got := detectCommon(datasets, 0.5); len(got) != 1 || !got[regionKey{0, 32}] {
		t.Fatalf("threshold 0.5: %v, want the shared region", got)
	}
	if got := detectCommon(datasets, 0.80); len(got) != 0 {
		t.Fatalf("threshold 0.80: %v, want none (75%% < 80%%)", got)
	}
	if got := detectCommon(datasets, 2.0); len(got) != 0 {
		t.Fatalf("disabled threshold: %v", got)
	}
	// Threshold 0: replicate every region, even single-use ones.
	if got := detectCommon(datasets, 0); len(got) != 5 {
		t.Fatalf("threshold 0: %d regions, want all 5", len(got))
	}
	// Duplicate refs inside ONE dataset count once.
	dup := []Dataset{
		{Inputs: []InputRef{shared, shared}},
		{Inputs: []InputRef{mk(100, 10)}},
		{Inputs: []InputRef{mk(200, 10)}},
	}
	if got := detectCommon(dup, 0.5); len(got) != 0 {
		t.Fatalf("intra-dataset duplicates counted as sharing: %v", got)
	}
}

func TestBuildJobsetsProperties(t *testing.T) {
	// Property: no two members of a jobset conflict, and every dataset is
	// placed exactly once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		regions := make([][]mem.Region, n)
		for i := range regions {
			base := uint64(rng.Intn(2000))
			length := uint64(rng.Intn(200) + 1)
			regions[i] = []mem.Region{{Addr: base, Len: length}}
		}
		jobsets, _ := buildJobsets(regions, nil)
		seen := make(map[int]bool)
		for _, set := range jobsets {
			for ai, a := range set {
				if seen[a] {
					return false // placed twice
				}
				seen[a] = true
				for _, b := range set[ai+1:] {
					if conflict(regions[a], regions[b]) {
						return false // conflicting pair co-scheduled
					}
				}
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildJobsetsGreedyFirstFit(t *testing.T) {
	// Deterministic greedy placement: the paper's "first available
	// jobset without conflicts".
	regions := [][]mem.Region{
		{{Addr: 0, Len: 10}},
		{{Addr: 5, Len: 10}},  // conflicts with 0
		{{Addr: 20, Len: 10}}, // fits with 0
		{{Addr: 25, Len: 10}}, // conflicts with 2 → joins 1
	}
	jobsets, pairs := buildJobsets(regions, nil)
	if len(jobsets) != 2 {
		t.Fatalf("jobsets = %v", jobsets)
	}
	if jobsets[0][0] != 0 || jobsets[0][1] != 2 || jobsets[1][0] != 1 || jobsets[1][1] != 3 {
		t.Fatalf("greedy placement = %v, want [[0 2] [1 3]]", jobsets)
	}
	if pairs == 0 {
		t.Fatal("no conflict pairs recorded")
	}
}

// Property: EMR output correctness is invariant to the replication
// threshold — replication changes the schedule and memory, never the
// answer.
func TestPropertyThresholdInvariantOutputs(t *testing.T) {
	f := func(seed int64, thrSeed uint8) bool {
		thresholds := []float64{2.0, 0.5, 0.01, 0.0}
		th := thresholds[int(thrSeed)%len(thresholds)]
		cfg := DefaultConfig()
		cfg.ReplicationThreshold = th
		rt, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		data := make([]byte, n*128)
		rng.Read(data)
		ref, err := rt.LoadInput("d", data)
		if err != nil {
			return false
		}
		key, err := rt.LoadInput("k", []byte{1, 2, 3, 4, 5, 6, 7, 8})
		if err != nil {
			return false
		}
		datasets := make([]Dataset, n)
		for i := range datasets {
			datasets[i] = Dataset{Inputs: []InputRef{mustSlice(ref, uint64(i*128), 128), key}}
		}
		res, err := rt.Run(Spec{Name: "p", Datasets: datasets, Job: sumJob, CyclesPerByte: 3})
		if err != nil {
			return false
		}
		// Compare against direct computation.
		for i := range datasets {
			want, _ := sumJob([][]byte{data[i*128 : (i+1)*128], {1, 2, 3, 4, 5, 6, 7, 8}})
			if !bytes.Equal(res.Outputs[i], want) {
				return false
			}
		}
		return res.Report.Votes.Unanimous == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFiveExecutorEMRToleratesTwoFaults(t *testing.T) {
	// EMR generalizes beyond triple redundancy: with 5 executors, two
	// independent pipeline faults in the same dataset are still outvoted.
	cfg := DefaultConfig()
	cfg.Executors = 5
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := chunkedSpec(t, rt, 4, 256, false)
	corrupted := 0
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase == PhaseAfterJob && hp.Dataset == 1 && (hp.Executor == 0 || hp.Executor == 3) {
			hp.Output[0] ^= byte(0x10 << uint(hp.Executor)) // two *different* corruptions
			corrupted++
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if corrupted != 2 {
		t.Fatalf("corrupted %d executors, want 2", corrupted)
	}
	want := golden(t, 4, 256, false)
	if !bytes.Equal(res.Outputs[1], want[1]) {
		t.Fatal("5-executor vote failed to mask two faults")
	}
	if res.Report.Votes.Corrected != 1 {
		t.Fatalf("votes = %+v", res.Report.Votes)
	}
}

// Property: under at most one corrupted executor per dataset, EMR's
// voted outputs always match the fault-free outputs.
func TestPropertySingleExecutorCorruptionAlwaysMasked(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		data := make([]byte, 6*128)
		rng.Read(data)
		ref, err := rt.LoadInput("d", data)
		if err != nil {
			return false
		}
		datasets := make([]Dataset, 6)
		for i := range datasets {
			datasets[i] = Dataset{Inputs: []InputRef{mustSlice(ref, uint64(i*128), 128)}}
		}
		victim := rng.Intn(3) // one executor corrupted on every dataset
		spec := Spec{
			Name: "p", Datasets: datasets, Job: sumJob, CyclesPerByte: 3,
			Hook: func(hp *HookPoint) {
				if hp.Phase == PhaseAfterJob && hp.Executor == victim {
					hp.Output[rng.Intn(len(hp.Output))] ^= 1 << uint(rng.Intn(8))
				}
			},
		}
		res, err := rt.Run(spec)
		if err != nil {
			return false
		}
		for i := range datasets {
			want, _ := sumJob([][]byte{data[i*128 : (i+1)*128]})
			if !bytes.Equal(res.Outputs[i], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeChecksumInTable4(t *testing.T) {
	if got := fault.ProtectedAreaFraction(fault.SchemeChecksum, fault.Snapdragon845Areas); got != 0.25 {
		t.Fatalf("checksum protected area = %v, want 0.25 (memory only)", got)
	}
	if fault.SchemeChecksum.String() != "Checksum" {
		t.Fatal("scheme name")
	}
}
