package emr

import (
	"fmt"
	"time"

	"radshield/internal/cache"
	"radshield/internal/fault"
)

// Report is the full accounting of one Run: the paper's Table 6 runtime
// breakdown, the Figure 11/12 runtimes, the Figure 13 memory numbers,
// and the Figure 14 energy numbers all come from here.
type Report struct {
	Scheme   fault.Scheme
	Frontier Frontier

	// Structure of the run.
	Datasets          int
	Jobsets           int
	ConflictPairs     int
	ReplicatedRegions int
	ReplicaBytes      uint64
	InputBytes        uint64
	OutputBytes       uint64
	PeakMemoryBytes   uint64

	// Outcomes.
	Votes      VoteStats
	ExecErrors int

	// Virtual-time breakdown (Table 6 rows).
	DiskReadTime time.Duration
	AllocTime    time.Duration
	ComputeTime  time.Duration
	FlushTime    time.Duration
	Makespan     time.Duration // total elapsed (sum of phases)

	// Energy model inputs and result.
	CoreBusy time.Duration // summed busy time across executor cores
	EnergyJ  float64

	CacheStats cache.Stats
}

// String renders the report as a Table 6-style breakdown.
func (r Report) String() string {
	return fmt.Sprintf(
		"%v/%v: datasets=%d jobsets=%d conflicts=%d replicas=%dB\n"+
			"  disk=%v alloc=%v compute=%v flush=%v total=%v\n"+
			"  votes: unanimous=%d corrected=%d failed=%d execErrors=%d\n"+
			"  energy=%.2fJ coreBusy=%v peakMem=%dB",
		r.Scheme, r.Frontier, r.Datasets, r.Jobsets, r.ConflictPairs, r.ReplicaBytes,
		r.DiskReadTime, r.AllocTime, r.ComputeTime, r.FlushTime, r.Makespan,
		r.Votes.Unanimous, r.Votes.Corrected, r.Votes.Failed, r.ExecErrors,
		r.EnergyJ, r.CoreBusy, r.PeakMemoryBytes)
}

// visitParts decomposes one executor-visit's virtual time.
type visitParts struct {
	compute time.Duration
	fetch   time.Duration
	flush   time.Duration
}

func (v visitParts) total() time.Duration { return v.compute + v.fetch + v.flush }

// parts computes the virtual time of one visit: compute over all input
// bytes, frontier fetch of the shared (non-replicated) bytes, and the
// flush of the given line count.
func (r *Runtime) parts(spec *Spec, totalBytes, fetchedBytes uint64, lines int) visitParts {
	c := r.cfg.Cost
	fetchBW := c.DRAMBytesPerSec
	if r.cfg.Frontier == FrontierStorage {
		fetchBW = c.DiskBytesPerSec
	}
	return visitParts{
		compute: time.Duration(float64(totalBytes) * spec.CyclesPerByte / c.CoreFreqHz * float64(time.Second)),
		fetch:   time.Duration(float64(fetchedBytes) / fetchBW * float64(time.Second)),
		flush:   time.Duration(lines) * c.FlushLineCost,
	}
}

// visitTime is the scalar convenience over parts.
func (r *Runtime) visitTime(spec *Spec, totalBytes, fetchedBytes uint64, lines int) time.Duration {
	return r.parts(spec, totalBytes, fetchedBytes, lines).total()
}

// computeTime returns only the compute component for a byte count.
func (r *Runtime) computeTime(spec *Spec, bytes uint64) time.Duration {
	return time.Duration(float64(bytes) * spec.CyclesPerByte / r.cfg.Cost.CoreFreqHz * float64(time.Second))
}

// accounting accumulates virtual time and outcome counters during a run.
type accounting struct {
	diskRead time.Duration
	alloc    time.Duration
	compute  time.Duration
	fetch    time.Duration
	flush    time.Duration
	makespan time.Duration // excludes staging (diskRead/alloc), added in finish
	busy     time.Duration

	votes       VoteStats
	outputBytes uint64
	analysis    *analysis
}

// newAccounting charges the setup phases: staging inputs from disk and
// materializing replicas.
func (r *Runtime) newAccounting(spec *Spec, a *analysis) *accounting {
	c := r.cfg.Cost
	acct := &accounting{analysis: a}
	acct.diskRead = time.Duration(float64(r.diskLoaded) / c.DiskBytesPerSec * float64(time.Second))
	if a != nil && a.replicaBytes > 0 {
		// Replicas: read the canonical copy once and write E copies.
		acct.alloc = time.Duration(float64(a.replicaBytes)/c.AllocBytesPerSec*float64(time.Second)) +
			time.Duration(float64(a.replicaBytes)/float64(r.cfg.Executors)/c.DRAMBytesPerSec*float64(time.Second))
	}
	// Output scratch allocation is charged per byte in finish (outputs
	// are not known yet).
	return acct
}

// addJobsetMakespan folds one jobset's visits into the totals. visits
// holds every executor-visit of the jobset (k datasets × ex executors).
// The jobset's elapsed time is the open-shop makespan lower bound, which
// the staggered round-robin schedule achieves to first order:
//
//	max( per-executor work, ex × costliest dataset visit )
//
// The second term is what serializes conflict-heavy workloads: a jobset
// of one dataset must run its redundant copies back to back (degenerating
// to sequential 3-MR, as the paper notes for 0% replication).
func (a *accounting) addJobsetMakespan(visits []visitParts, k, ex int) {
	if len(visits) == 0 {
		return
	}
	var sum visitParts
	var sumTotal, maxTotal time.Duration
	for _, v := range visits {
		sum.compute += v.compute
		sum.fetch += v.fetch
		sum.flush += v.flush
		sumTotal += v.total()
		if v.total() > maxTotal {
			maxTotal = v.total()
		}
	}
	perExec := sumTotal / time.Duration(ex)
	makespan := perExec
	if m := time.Duration(ex) * maxTotal; m > makespan {
		makespan = m
	}
	a.makespan += makespan
	a.busy += sumTotal
	// Attribute the jobset's elapsed time across categories in
	// proportion to the per-executor shares.
	if sumTotal > 0 {
		scale := float64(makespan) / float64(perExec)
		a.compute += time.Duration(float64(sum.compute) / float64(ex) * scale)
		a.fetch += time.Duration(float64(sum.fetch) / float64(ex) * scale)
		a.flush += time.Duration(float64(sum.flush) / float64(ex) * scale)
	}
}

// addVisit folds one serial visit (non-EMR schemes) into the category
// totals. Callers add to makespan/busy themselves, since lockstep
// parallelism differs per scheme.
func (a *accounting) addVisit(v visitParts) {
	a.compute += v.compute
	a.fetch += v.fetch
	a.flush += v.flush
}

// finish assembles the Report.
func (a *accounting) finish(r *Runtime, base Report) Report {
	c := r.cfg.Cost
	rep := base
	rep.Scheme = r.cfg.Scheme
	rep.Frontier = r.cfg.Frontier
	rep.Votes = a.votes
	rep.InputBytes = r.inputBytes
	rep.OutputBytes = a.outputBytes
	if a.analysis != nil {
		rep.ReplicatedRegions = len(a.analysis.replicated)
		rep.ReplicaBytes = a.analysis.replicaBytes
	}
	rep.PeakMemoryBytes = r.inputBytes + rep.ReplicaBytes + a.outputBytes*uint64(r.cfg.Executors)

	// Output scratch allocation cost.
	scratch := time.Duration(float64(a.outputBytes) * float64(r.cfg.Executors) / c.AllocBytesPerSec * float64(time.Second))
	rep.AllocTime = a.alloc + scratch
	rep.DiskReadTime = a.diskRead
	rep.FlushTime = a.flush
	// Fetch time lands under Disk Read for a storage frontier (the bytes
	// stream from flash) and under Compute otherwise (DRAM stalls).
	if r.cfg.Frontier == FrontierStorage {
		rep.DiskReadTime += a.fetch
		rep.ComputeTime = a.compute
	} else {
		rep.ComputeTime = a.compute + a.fetch
	}
	// Staging (disk load, replica/output allocation) happens before and
	// around execution, serial with it; in-run fetch is already inside
	// a.makespan.
	rep.Makespan = a.makespan + a.diskRead + rep.AllocTime
	rep.CoreBusy = a.busy
	rep.EnergyJ = c.IdleWatts*rep.Makespan.Seconds() + c.CoreWatts*a.busy.Seconds()
	rep.CacheStats = r.cache.Stats()
	rep.Datasets = base.Datasets
	r.ins.finishRun(r, rep)
	return rep
}
