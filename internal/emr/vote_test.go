package emr

import (
	"errors"
	"testing"

	"radshield/internal/fault"
)

func TestAllExecutorsFailIsDetected(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 3, 128, false)
	boom := errors.New("triple failure")
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase == PhaseBeforeRead && hp.Dataset == 1 {
			hp.Fail = boom
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != nil {
		t.Fatal("output produced despite all executors failing")
	}
	if res.PerDataset[1].Err == nil {
		t.Fatal("no error recorded")
	}
	if res.Report.Votes.Failed != 1 || res.Report.ExecErrors != 3 {
		t.Fatalf("votes=%+v errors=%d", res.Report.Votes, res.Report.ExecErrors)
	}
	// Neighbouring datasets unaffected.
	if res.Outputs[0] == nil || res.Outputs[2] == nil {
		t.Fatal("unrelated datasets lost")
	}
}

func TestThreeWayDisagreementIsDetected(t *testing.T) {
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 3, 128, false)
	spec.Hook = func(hp *HookPoint) {
		// Each executor's output corrupted differently on dataset 0.
		if hp.Phase == PhaseAfterJob && hp.Dataset == 0 {
			hp.Output[0] ^= 1 << uint(hp.Executor)
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != nil {
		t.Fatal("three-way disagreement still produced an output")
	}
	if !errors.Is(res.PerDataset[0].Err, errVoteFailed) {
		t.Fatalf("error = %v, want vote failure", res.PerDataset[0].Err)
	}
	if !res.PerDataset[0].Disagreement {
		t.Fatal("disagreement flag not set")
	}
	if res.Report.Votes.Failed != 1 {
		t.Fatalf("votes = %+v", res.Report.Votes)
	}
}

func TestTwoExecutorsFailOneSurvivorIsNotTrusted(t *testing.T) {
	// With only one valid output there is no majority: the dataset fails
	// rather than trusting a single unverified copy.
	rt := newRuntime(t, fault.SchemeEMR)
	spec := chunkedSpec(t, rt, 2, 128, false)
	boom := errors.New("double failure")
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase == PhaseBeforeRead && hp.Dataset == 0 && hp.Executor != 2 {
			hp.Fail = boom
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != nil {
		t.Fatal("single survivor trusted without a majority")
	}
	if res.Report.Votes.Failed != 1 || res.Report.ExecErrors != 2 {
		t.Fatalf("votes=%+v errors=%d", res.Report.Votes, res.Report.ExecErrors)
	}
}

func TestSchemeNoneErrorSurfaces(t *testing.T) {
	rt := newRuntime(t, fault.SchemeNone)
	spec := chunkedSpec(t, rt, 2, 128, false)
	boom := errors.New("solo failure")
	spec.Hook = func(hp *HookPoint) {
		if hp.Phase == PhaseBeforeRead && hp.Dataset == 1 {
			hp.Fail = boom
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != nil || !errors.Is(res.PerDataset[1].Err, boom) {
		t.Fatalf("unprotected failure not surfaced: %+v", res.PerDataset[1])
	}
	if res.Outputs[0] == nil {
		t.Fatal("healthy dataset lost")
	}
}
