package emr

import (
	"bytes"
	"errors"
	"testing"

	"radshield/internal/fault"
)

// Fuzz targets for the two arbitration primitives everything above them
// trusts: the majority vote (exec.go) and the checksum guard
// (checksum.go). Both are invariant checks, not golden tests — any
// input the fuzzer invents must keep the safety properties.
//
// CI runs these as a short smoke (-fuzz -fuzztime 10s); the committed
// seed corpora below keep the deterministic `go test` pass meaningful.

// replicaSet builds the voter's input from up to three fuzzer-chosen
// replicas; the low three bits of keep select which participate.
func replicaSet(a, b, c []byte, keep byte) [][]byte {
	var valid [][]byte
	for i, r := range [][]byte{a, b, c} {
		if keep&(1<<i) != 0 {
			valid = append(valid, r)
		}
	}
	return valid
}

func FuzzMajority(f *testing.F) {
	f.Add([]byte("out"), []byte("out"), []byte("out"), byte(7))
	f.Add([]byte("out"), []byte("out"), []byte("bad"), byte(7))
	f.Add([]byte("a"), []byte("b"), []byte("c"), byte(7))
	f.Add([]byte{}, []byte{}, []byte{0xff}, byte(7))
	f.Add([]byte("solo"), []byte(nil), []byte(nil), byte(1))
	f.Add([]byte(nil), []byte(nil), []byte(nil), byte(0))

	f.Fuzz(func(t *testing.T, a, b, c []byte, keep byte) {
		valid := replicaSet(a, b, c, keep)
		winner, unanimous, ok := majority(valid)

		// The vote is a pure function: a second call must agree.
		w2, u2, ok2 := majority(valid)
		if !bytes.Equal(winner, w2) || unanimous != u2 || ok != ok2 {
			t.Fatalf("vote not deterministic: (%x,%v,%v) then (%x,%v,%v)", winner, unanimous, ok, w2, u2, ok2)
		}

		agreeing := 0
		for _, v := range valid {
			if bytes.Equal(v, winner) {
				agreeing++
			}
		}
		switch {
		case !ok:
			// A failed vote must mean there was genuinely no majority: no
			// pair of replicas may agree, and a lone replica always wins.
			if len(valid) == 1 {
				t.Fatal("single replica rejected")
			}
			for i := range valid {
				for j := i + 1; j < len(valid); j++ {
					if bytes.Equal(valid[i], valid[j]) {
						t.Fatalf("vote failed despite agreeing replicas %d and %d", i, j)
					}
				}
			}
		case len(valid) >= 2:
			// A winner among ≥2 replicas must hold a real majority pair —
			// a single flipped replica can never win the vote.
			if agreeing < 2 {
				t.Fatalf("winner %x has only %d agreeing replicas", winner, agreeing)
			}
		default:
			if agreeing != 1 {
				t.Fatalf("lone replica vote returned a foreign winner %x", winner)
			}
		}
		if unanimous && agreeing != len(valid) {
			t.Fatalf("unanimous with %d/%d agreeing replicas", agreeing, len(valid))
		}
		if !ok && (winner != nil || unanimous) {
			t.Fatalf("failed vote leaked winner %x unanimous=%v", winner, unanimous)
		}
	})
}

func FuzzChecksum(f *testing.F) {
	f.Add([]byte("the quick brown fox"), uint16(3), byte(5), false)
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}, uint16(0), byte(0), true)
	f.Add([]byte{0xff}, uint16(9), byte(7), true)
	f.Add(bytes.Repeat([]byte{0xA5}, 300), uint16(131), byte(2), true)

	f.Fuzz(func(t *testing.T, data []byte, flipOff uint16, flipBit byte, flip bool) {
		if len(data) == 0 {
			t.Skip()
		}
		if len(data) > 4<<10 {
			data = data[:4<<10]
		}
		want, err := sumJob([][]byte{data})
		if err != nil {
			t.Fatal(err)
		}

		cfg := DefaultConfig()
		cfg.Scheme = fault.SchemeChecksum
		cfg.Executors = 1
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := rt.LoadInput("fuzz", data)
		if err != nil {
			t.Fatal(err)
		}
		spec := Spec{
			Name:          "fuzz",
			Datasets:      []Dataset{{Inputs: []InputRef{ref}}},
			Job:           sumJob,
			CyclesPerByte: 10,
		}
		landed := false
		if flip {
			done := false
			spec.Hook = func(hp *HookPoint) {
				if done || hp.Phase != PhaseAfterRead {
					return
				}
				done = true
				addr := hp.Regions[0].Addr + uint64(flipOff)%hp.Regions[0].Len
				landed = rt.Cache().FlipBit(addr, uint(flipBit%8))
			}
		}
		res, err := rt.Run(spec)
		if err != nil {
			t.Fatal(err)
		}

		if landed {
			// A strike in the consumed bytes must surface as a detected
			// checksum mismatch — never a silent wrong output.
			if !errors.Is(res.PerDataset[0].Err, ErrChecksumMismatch) {
				t.Fatalf("corrupted input not detected: err=%v out=%x want=%x",
					res.PerDataset[0].Err, res.Outputs[0], want)
			}
			if res.Outputs[0] != nil {
				t.Fatal("corrupted dataset still produced an output")
			}
			return
		}
		if res.PerDataset[0].Err != nil {
			t.Fatalf("clean run reported error: %v", res.PerDataset[0].Err)
		}
		if !bytes.Equal(res.Outputs[0], want) {
			t.Fatalf("clean output %x, want %x", res.Outputs[0], want)
		}
	})
}
