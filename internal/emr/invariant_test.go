package emr

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"radshield/internal/fault"
)

// mixJob hashes its inputs with avalanche finalization (murmur3-style),
// so distinct corruptions virtually never collide into equal wrong
// outputs. The weaker sumJob (a linear ×31 hash) is unsuitable for the
// no-silent-corruption property below: flipping bit b of the LAST input
// byte shifts the sum by exactly 2^b, which aliases with a pipeline flip
// of the same output bit — two different faults, one identical wrong
// answer, a false counterexample the real workloads (AES, DEFLATE, SAD)
// do not exhibit.
func mixJob(inputs [][]byte) ([]byte, error) {
	var h uint32 = 2166136261
	for _, in := range inputs {
		for _, b := range in {
			h = (h ^ uint32(b)) * 16777619
		}
	}
	// Avalanche finalizer: single-bit input changes flip ~half the output.
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h)}, nil
}

// The strongest guarantee EMR offers, as a property test: under ANY
// number of randomly placed cache strikes and pipeline corruptions, every
// dataset result is either byte-identical to the fault-free output or a
// visibly detected failure (nil output with an error). Silent wrong
// answers require two executors of the same dataset to produce the SAME
// wrong bytes, which the flush discipline (no shared lines) and
// independent corruption (distinct flips) make vanishingly unlikely —
// the residual probability is a hash collision of the job function.
func TestPropertyEMRNeverSilentlyWrong(t *testing.T) {
	goldenOutputs := invariantGolden(t)
	f := func(seed int64, strikes uint8) bool {
		return invariantTrial(goldenOutputs, seed, strikes)
	}
	// Seeded explicitly: quick's default source is time-seeded, which
	// made this test the one nondeterministic entry in the suite.
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(61))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Regression: this seed once produced a silent wrong answer. The rng
// drew the identical (offset 13, bit 1) flip for two executors'
// replicas of the shared input; replicas are never flushed, so both
// corrupted copies persisted across later datasets and the two
// executors outvoted the third with identical wrong bytes. The
// distinct-flip rule in invariantTrial excludes that double-fault.
func TestInvariantReplicaCollisionSeed(t *testing.T) {
	goldenOutputs := invariantGolden(t)
	if !invariantTrial(goldenOutputs, 4474133211735295592, 0x9e) {
		t.Fatal("invariant violated on the pinned replica-collision seed")
	}
}

// invariantTrial runs one fault pattern and reports whether every
// dataset was byte-identical to golden or visibly failed.
func invariantTrial(goldenOutputs [][]byte, seed int64, strikes uint8) bool {
	rng := rand.New(rand.NewSource(seed))
	rt, err := New(DefaultConfig())
	if err != nil {
		return false
	}
	spec := chunkedSpec2(rt, 8, 256, true)
	spec.Job = mixJob
	remaining := int(strikes%24) + 1
	// The invariant holds for DISTINCT faults: two strikes at the
	// same (offset, bit) of two executors' replicas of one input
	// are a two-identical-fault collision — the replicas carry the
	// same wrong bytes, the executors agree, and the vote corrects
	// toward the corruption. No voting scheme detects that, and it
	// is outside the paper's single-upset threat model, so the
	// injector never repeats a landed (offset, bit).
	landed := map[[2]uint64]bool{}
	spec.Hook = func(hp *HookPoint) {
		if remaining <= 0 {
			return
		}
		switch hp.Phase {
		case PhaseAfterRead:
			if rng.Float64() < 0.15 {
				reg := hp.Regions[rng.Intn(len(hp.Regions))]
				fl := fault.RandomFlip(rng, reg.Len)
				key := [2]uint64{fl.Offset, uint64(fl.Bit)}
				if landed[key] {
					return
				}
				if rt.Cache().FlipBit(reg.Addr+fl.Offset, fl.Bit) {
					landed[key] = true
					remaining--
				}
			}
		case PhaseAfterJob:
			if rng.Float64() < 0.05 && len(hp.Output) > 0 {
				hp.Output[rng.Intn(len(hp.Output))] ^= 1 << uint(rng.Intn(8))
				remaining--
			}
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		return false
	}
	for i := range goldenOutputs {
		out := res.Outputs[i]
		if out == nil {
			// Detected failure: must carry an error.
			if res.PerDataset[i].Err == nil {
				return false
			}
			continue
		}
		if !bytes.Equal(out, goldenOutputs[i]) {
			// Silent wrong answer: the invariant is broken.
			return false
		}
	}
	return true
}

// invariantGolden computes the fault-free mixJob outputs.
func invariantGolden(t *testing.T) [][]byte {
	t.Helper()
	rt := newRuntime(t, fault.SchemeNone)
	spec := chunkedSpec2(rt, 8, 256, true)
	spec.Job = mixJob
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Outputs
}

// chunkedSpec2 is chunkedSpec without the *testing.T plumbing, for use
// inside quick.Check closures.
func chunkedSpec2(rt *Runtime, n, chunk int, withKey bool) Spec {
	data := make([]byte, n*chunk)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	ref, err := rt.LoadInput("data", data)
	if err != nil {
		panic(err)
	}
	inputsFor := func(i int) []InputRef {
		return []InputRef{mustSlice(ref, uint64(i*chunk), uint64(chunk))}
	}
	var keyRef InputRef
	if withKey {
		key := make([]byte, 32)
		for i := range key {
			key[i] = byte(0xA0 + i)
		}
		keyRef, err = rt.LoadInput("key", key)
		if err != nil {
			panic(err)
		}
	}
	datasets := make([]Dataset, n)
	for i := 0; i < n; i++ {
		ins := inputsFor(i)
		if withKey {
			ins = append(ins, keyRef)
		}
		datasets[i] = Dataset{Inputs: ins}
	}
	return Spec{Name: "chunked", Datasets: datasets, Job: sumJob, CyclesPerByte: 10}
}

// Contrast property: the same strike pressure against unprotected
// parallel 3-MR DOES produce silent wrong answers (the hazard exists and
// our injection is strong enough to matter).
func TestPropertyUnprotectedEventuallySilentlyWrong(t *testing.T) {
	goldenOutputs := invariantGolden(t)
	sawSDC := false
	for seed := int64(0); seed < 40 && !sawSDC; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.Scheme = fault.SchemeUnprotectedParallel
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := chunkedSpec2(rt, 8, 256, true)
		spec.Job = mixJob
		spec.Hook = func(hp *HookPoint) {
			if hp.Phase == PhaseAfterRead && rng.Float64() < 0.15 {
				reg := hp.Regions[rng.Intn(len(hp.Regions))]
				fl := fault.RandomFlip(rng, reg.Len)
				rt.Cache().FlipBit(reg.Addr+fl.Offset, fl.Bit)
			}
		}
		res, err := rt.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range goldenOutputs {
			if res.Outputs[i] != nil && res.PerDataset[i].Err == nil &&
				!res.PerDataset[i].Disagreement &&
				!bytes.Equal(res.Outputs[i], goldenOutputs[i]) {
				sawSDC = true
			}
		}
	}
	if !sawSDC {
		t.Fatal("no silent corruption under unprotected parallel 3-MR in 40 campaigns — injection too weak to validate the EMR property test")
	}
}
