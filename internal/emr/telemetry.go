package emr

import (
	"radshield/internal/cache"
	"radshield/internal/mem"
	"radshield/internal/telemetry"
)

// instruments holds the EMR runtime's metric handles. A nil
// *instruments (telemetry disabled) makes every method a no-op, so the
// executor hot path pays a single nil check per accounting step.
type instruments struct {
	reg *telemetry.Registry

	runs           *telemetry.Counter   // emr_runs_total
	votesUnanimous *telemetry.Counter   // emr_votes_unanimous_total
	votesCorrected *telemetry.Counter   // emr_votes_corrected_total
	votesFailed    *telemetry.Counter   // emr_votes_failed_total
	execErrors     *telemetry.Counter   // emr_exec_errors_total
	hookAborts     *telemetry.Counter   // emr_hook_aborts_total
	flushLines     *telemetry.Counter   // emr_flush_lines_total
	fetchBytes     *telemetry.Counter   // emr_fetch_bytes_total
	checksumMisses *telemetry.Counter   // emr_checksum_misses_total
	makespan       *telemetry.Histogram // emr_run_makespan_seconds

	// Mirrors of the shared cache and DRAM counters, accumulated as
	// per-run deltas so one registry aggregates any number of runtimes.
	cacheHits     *telemetry.Counter // emr_cache_hits_total
	cacheMisses   *telemetry.Counter // emr_cache_misses_total
	cacheFlipsIn  *telemetry.Counter // emr_cache_flips_injected_total
	cacheFlipsAbs *telemetry.Counter // emr_cache_flips_absorbed_total
	dramCorrected *telemetry.Counter // emr_dram_ecc_corrected_total
	dramUncorr    *telemetry.Counter // emr_dram_ecc_uncorrectable_total

	lastCache cache.Stats
	lastDRAM  mem.Stats
}

// PreRegister creates EMR's metric families on reg without attaching
// them to a runtime, so snapshots from runs that never build an EMR
// runtime still carry the full schema (dashboards and snapshot diff
// tools need a stable shape). Registry lookups are idempotent, so
// runtimes constructed later share these counters. No-op on nil.
func PreRegister(reg *telemetry.Registry) {
	newEMRInstruments(reg)
}

func newEMRInstruments(reg *telemetry.Registry) *instruments {
	if reg == nil {
		return nil
	}
	return &instruments{
		reg:            reg,
		runs:           reg.Counter("emr_runs_total", "runs"),
		votesUnanimous: reg.Counter("emr_votes_unanimous_total", "votes"),
		votesCorrected: reg.Counter("emr_votes_corrected_total", "votes"),
		votesFailed:    reg.Counter("emr_votes_failed_total", "votes"),
		execErrors:     reg.Counter("emr_exec_errors_total", "errors"),
		hookAborts:     reg.Counter("emr_hook_aborts_total", "aborts"),
		flushLines:     reg.Counter("emr_flush_lines_total", "lines"),
		fetchBytes:     reg.Counter("emr_fetch_bytes_total", "bytes"),
		checksumMisses: reg.Counter("emr_checksum_misses_total", "misses"),
		makespan:       reg.Histogram("emr_run_makespan_seconds", "seconds", telemetry.LatencyBuckets()),
		cacheHits:      reg.Counter("emr_cache_hits_total", "hits"),
		cacheMisses:    reg.Counter("emr_cache_misses_total", "misses"),
		cacheFlipsIn:   reg.Counter("emr_cache_flips_injected_total", "flips"),
		cacheFlipsAbs:  reg.Counter("emr_cache_flips_absorbed_total", "flips"),
		dramCorrected:  reg.Counter("emr_dram_ecc_corrected_total", "words"),
		dramUncorr:     reg.Counter("emr_dram_ecc_uncorrectable_total", "words"),
	}
}

// visitIO folds one executor visit's data movement into the counters.
func (ins *instruments) visit(fetchedBytes uint64) {
	if ins == nil {
		return
	}
	ins.fetchBytes.Add(fetchedBytes)
}

func (ins *instruments) flush(lines int) {
	if ins == nil || lines <= 0 {
		return
	}
	ins.flushLines.Add(uint64(lines))
}

func (ins *instruments) hookAbort() {
	if ins == nil {
		return
	}
	ins.hookAborts.Inc()
}

// voteMismatch records one dataset whose executors disagreed; corrected
// reports whether a majority still produced an output.
func (ins *instruments) voteMismatch(dataset int, corrected bool) {
	if ins == nil {
		return
	}
	ins.reg.Emit(telemetry.Event{
		Kind:   telemetry.KindVoteMismatch,
		Fields: map[string]any{"dataset": dataset, "corrected": corrected},
	})
}

func (ins *instruments) checksumMiss(dataset int, region string) {
	if ins == nil {
		return
	}
	ins.checksumMisses.Inc()
	ins.reg.Emit(telemetry.Event{
		Kind:   telemetry.KindChecksumMiss,
		Fields: map[string]any{"dataset": dataset, "region": region},
	})
}

// finishRun folds one completed Run's outcome into the counters: the
// vote tallies, the virtual makespan, and the deltas of the device
// counters since the previous run on this runtime.
func (ins *instruments) finishRun(r *Runtime, rep Report) {
	if ins == nil {
		return
	}
	ins.runs.Inc()
	ins.votesUnanimous.Add(uint64(rep.Votes.Unanimous))
	ins.votesCorrected.Add(uint64(rep.Votes.Corrected))
	ins.votesFailed.Add(uint64(rep.Votes.Failed))
	ins.execErrors.Add(uint64(rep.ExecErrors))
	ins.makespan.Observe(rep.Makespan.Seconds())

	cs := rep.CacheStats
	ins.cacheHits.Add(cs.Hits - ins.lastCache.Hits)
	ins.cacheMisses.Add(cs.Misses - ins.lastCache.Misses)
	ins.cacheFlipsIn.Add(cs.FlipsInjected - ins.lastCache.FlipsInjected)
	ins.cacheFlipsAbs.Add(cs.FlipsAbsorbed - ins.lastCache.FlipsAbsorbed)
	ins.lastCache = cs

	ds := r.dram.Stats()
	ins.dramCorrected.Add(ds.Corrected - ins.lastDRAM.Corrected)
	ins.dramUncorr.Add(ds.Uncorrectable - ins.lastDRAM.Uncorrectable)
	ins.lastDRAM = ds
}
