// Package emr implements Efficient Modular Redundancy, Radshield's SEU
// mitigation (paper §3.2): a runtime that executes every job three times
// across executors while guaranteeing that no single upset — in the CPU
// pipeline, the shared cache, or unprotected DRAM — can corrupt a
// majority of the redundant copies.
//
// The key ideas, all reproduced here:
//
//   - Reliability frontier. Inputs and outputs live on the last
//     ECC-protected level (storage always; DRAM when ECC DRAM is
//     fitted). Only data in flight beyond the frontier needs triple
//     execution.
//   - Conflicts and jobsets. Two jobs whose datasets overlap in memory
//     may be served the same (unprotected) cache line; EMR groups
//     non-conflicting jobs into jobsets and staggers redundant copies so
//     no two executors ever consume the same cached bytes, flushing each
//     job's lines when it completes.
//   - Common-data replication. Regions referenced by ≥ threshold of all
//     datasets (encryption keys, model weights, match images) are copied
//     into per-executor replicas, removing those conflicts without cache
//     clears.
//
// The runtime also implements the paper's baselines — sequential 3-MR and
// unprotected parallel 3-MR — as alternative schemes over the same
// machinery, so the Figure 11–14 comparisons are apples to apples.
//
// Key types: Runtime owns the simulated devices (frontier Storage or
// ECC DRAM, plain DRAM, the shared Cache) and executes Specs; a Spec
// names Datasets (each a list of InputRefs into frontier memory) and a
// JobFunc; Run returns a Result whose Report carries the Table 6-style
// virtual-time breakdown, vote tallies, and energy. Hook/HookPoint is
// the fault-injection seam the Table 7 campaign uses to strike cache
// lines, executor outputs, job descriptors, and frontier words at
// precise phases. Config.Telemetry optionally attaches a
// telemetry.Registry; every Run then feeds the emr_* metrics documented
// in TELEMETRY.md.
//
// Invariants: datasets in one jobset never share a cache line (the
// conflict graph is computed over replica-resolved regions); each
// executor's visit flushes the dataset's lines before the next redundant
// copy may touch them; votes are majority-of-three byte comparisons, so
// a single corrupted copy is always outvoted; all time is virtual
// (CostModel), so reports are deterministic for a given seed and config.
package emr
