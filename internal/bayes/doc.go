// Package bayes implements a Gaussian naive Bayes classifier.
//
// The paper reports that ILD "initially tried classification algorithms
// such as naive bayes and random forest ... but these proved to be
// computationally expensive and imprecise" before settling on a linear
// model. This package exists to reproduce that rejected-alternative
// comparison: the ablate-classifier experiment trains a BayesDetector
// (package ild) on the same quiescent ground data as the linear model
// and shows why the paper discarded it.
//
// The only type is Classifier: Train estimates a per-class mean and
// variance for every feature (with variance smoothing so constant
// features stay usable), Predict returns the argmax of the Gaussian
// log-likelihoods plus log-priors.
//
// Invariants: Train expects equal-length feature vectors and class
// labels in 0..classes-1; Predict must be called with the same
// dimensionality as training. The classifier is deterministic — no
// randomness is used at train or predict time — and immutable after
// Train, so concurrent prediction is safe.
package bayes
