package bayes

import (
	"math/rand"
	"testing"
)

func gaussianBlobs(rng *rand.Rand, n int) ([][]float64, []int) {
	X := make([][]float64, 0, 2*n)
	y := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		X = append(X, []float64{rng.NormFloat64() + 0, rng.NormFloat64() + 0})
		y = append(y, 0)
		X = append(X, []float64{rng.NormFloat64() + 5, rng.NormFloat64() + 5})
		y = append(y, 1)
	}
	return X, y
}

func TestSeparatesGaussianBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := gaussianBlobs(rng, 300)
	c := Train(X, y)
	correct := 0
	for i := 0; i < 200; i++ {
		var x []float64
		want := i % 2
		if want == 0 {
			x = []float64{rng.NormFloat64(), rng.NormFloat64()}
		} else {
			x = []float64{rng.NormFloat64() + 5, rng.NormFloat64() + 5}
		}
		if c.Predict(x) == want {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Fatalf("accuracy = %.3f, want ≥0.95", acc)
	}
}

func TestPriorMatters(t *testing.T) {
	// Heavily imbalanced identical distributions: prediction must follow
	// the prior.
	X := make([][]float64, 0, 100)
	y := make([]int, 0, 100)
	for i := 0; i < 95; i++ {
		X = append(X, []float64{0})
		y = append(y, 0)
	}
	for i := 0; i < 5; i++ {
		X = append(X, []float64{0})
		y = append(y, 1)
	}
	c := Train(X, y)
	if got := c.Predict([]float64{0}); got != 0 {
		t.Fatalf("Predict = %d, want prior-dominant 0", got)
	}
}

func TestZeroVarianceFeatureHandled(t *testing.T) {
	X := [][]float64{{1, 7}, {1, 8}, {2, 7}, {2, 8}}
	y := []int{0, 0, 1, 1}
	c := Train(X, y)
	if got := c.Predict([]float64{1, 7.5}); got != 0 {
		t.Fatalf("Predict = %d, want 0", got)
	}
	if got := c.Predict([]float64{2, 7.5}); got != 1 {
		t.Fatalf("Predict = %d, want 1", got)
	}
}

func TestClasses(t *testing.T) {
	c := Train([][]float64{{0}, {1}, {2}}, []int{0, 1, 2})
	if got := c.Classes(); got != 3 {
		t.Fatalf("Classes = %d, want 3", got)
	}
}

func TestTrainPanicsOnMalformedInput(t *testing.T) {
	cases := []func(){
		func() { Train(nil, nil) },
		func() { Train([][]float64{{1}}, []int{0, 1}) },
		func() { Train([][]float64{{1}, {1, 2}}, []int{0, 1}) },
		func() { Train([][]float64{{1}}, []int{-2}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPredictDimensionPanics(t *testing.T) {
	c := Train([][]float64{{1, 2}}, []int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	c.Predict([]float64{1})
}

func TestMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		for k := 0; k < 3; k++ {
			X = append(X, []float64{rng.NormFloat64() + float64(k*6)})
			y = append(y, k)
		}
	}
	c := Train(X, y)
	for k := 0; k < 3; k++ {
		if got := c.Predict([]float64{float64(k * 6)}); got != k {
			t.Errorf("Predict(center %d) = %d", k, got)
		}
	}
}
