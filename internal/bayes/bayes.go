package bayes

import (
	"fmt"
	"math"
)

// Classifier is a fitted Gaussian naive Bayes model.
type Classifier struct {
	classes  int
	features int
	prior    []float64   // log prior per class
	mean     [][]float64 // class × feature
	variance [][]float64 // class × feature (floored)
}

// varFloor prevents zero variance from producing infinite densities.
const varFloor = 1e-9

// Train fits the classifier on X with integer labels 0..k-1. It panics
// on malformed input, matching package forest's contract.
func Train(X [][]float64, y []int) *Classifier {
	n := len(X)
	if n == 0 || n != len(y) {
		//radlint:allow nopanic malformed training data is a programming error; the doc contract says panic
		panic(fmt.Sprintf("bayes: %d samples vs %d labels", n, len(y)))
	}
	d := len(X[0])
	classes := 0
	for i, label := range y {
		if len(X[i]) != d {
			//radlint:allow nopanic malformed training data is a programming error; the doc contract says panic
			panic(fmt.Sprintf("bayes: row %d has %d features, want %d", i, len(X[i]), d))
		}
		if label < 0 {
			//radlint:allow nopanic malformed training data is a programming error; the doc contract says panic
			panic(fmt.Sprintf("bayes: negative label %d", label))
		}
		if label+1 > classes {
			classes = label + 1
		}
	}

	c := &Classifier{classes: classes, features: d}
	counts := make([]int, classes)
	c.mean = make([][]float64, classes)
	c.variance = make([][]float64, classes)
	for k := 0; k < classes; k++ {
		c.mean[k] = make([]float64, d)
		c.variance[k] = make([]float64, d)
	}
	for i, row := range X {
		k := y[i]
		counts[k]++
		for j, v := range row {
			c.mean[k][j] += v
		}
	}
	for k := 0; k < classes; k++ {
		if counts[k] == 0 {
			continue
		}
		for j := range c.mean[k] {
			c.mean[k][j] /= float64(counts[k])
		}
	}
	for i, row := range X {
		k := y[i]
		for j, v := range row {
			dlt := v - c.mean[k][j]
			c.variance[k][j] += dlt * dlt
		}
	}
	c.prior = make([]float64, classes)
	for k := 0; k < classes; k++ {
		if counts[k] == 0 {
			c.prior[k] = math.Inf(-1)
			continue
		}
		for j := range c.variance[k] {
			c.variance[k][j] = c.variance[k][j]/float64(counts[k]) + varFloor
		}
		c.prior[k] = math.Log(float64(counts[k]) / float64(n))
	}
	return c
}

// Predict returns the most probable class for x.
func (c *Classifier) Predict(x []float64) int {
	best, cls := math.Inf(-1), 0
	for k := 0; k < c.classes; k++ {
		if s := c.logPosterior(k, x); s > best {
			best, cls = s, k
		}
	}
	return cls
}

// logPosterior computes log P(class) + Σ log N(x_j; μ, σ²).
func (c *Classifier) logPosterior(k int, x []float64) float64 {
	if len(x) != c.features {
		//radlint:allow nopanic feature-count mismatch is a plumbing bug; documented panic contract
		panic(fmt.Sprintf("bayes: Predict with %d features, model has %d", len(x), c.features))
	}
	s := c.prior[k]
	for j, v := range x {
		va := c.variance[k][j]
		dlt := v - c.mean[k][j]
		s += -0.5*math.Log(2*math.Pi*va) - dlt*dlt/(2*va)
	}
	return s
}

// Classes returns the number of classes the model was trained with.
func (c *Classifier) Classes() int { return c.classes }
