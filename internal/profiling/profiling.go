// Package profiling wires runtime/pprof's CPU and heap collectors into
// the command-line harnesses (radbench, faultcamp). The profiling
// workflow — which campaigns to profile, how to read the output, and
// what the flagship bottlenecks were — is documented in PERFORMANCE.md.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that finishes the CPU profile and writes a heap profile
// to memPath (when non-empty). Empty paths disable the corresponding
// profile, so callers can pass flag values through unconditionally.
//
// Call stop exactly once, at the end of the run's success path. Error
// exits lose the profiles, which is acceptable for a measurement run —
// a campaign that fails is not the one being measured.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			// Collect before snapshotting so the heap profile shows what
			// the campaign retains, not whatever garbage the last trial
			// left behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
