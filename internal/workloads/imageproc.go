package workloads

import (
	"encoding/binary"
	"fmt"

	"radshield/internal/emr"
)

// Geometry of the global-localization workload (the paper's guiding
// example from the Perseverance rover: match a local map against every
// N×N window of a global map). Datasets are horizontal strips of the
// global map; each job scans all x positions within its strip. Strips
// overlap (stride < template height), which is exactly the red-block
// conflict of the paper's Figure 6; the match template is shared by every
// dataset and gets replicated (Figure 9's optimal scheme).
const (
	imgTemplate = 32 // template is imgTemplate × imgTemplate pixels
	imgStride   = 16 // strip start spacing; < imgTemplate → overlaps
)

// imgParams is the tiny per-dataset parameter block (map width and strip
// origin) stored on the frontier alongside the pixels.
const imgParamsLen = 16

// ImageProcessing builds the map-matching workload. size is interpreted
// as the approximate global map byte count; the map is made square-ish
// with a fixed width.
func ImageProcessing() Builder {
	return Builder{
		Name:          "image-processing",
		CyclesPerByte: 26, // SSE2-class SAD over a 32×32 template per window column
		Build: func(rt *emr.Runtime, size int, seed int64) (emr.Spec, error) {
			const width = 256
			height := size / width
			if height < imgTemplate {
				height = imgTemplate
			}
			global := synthetic(width*height, seed)
			// Plant the template at a known position so there is a true
			// best match.
			template := make([]byte, imgTemplate*imgTemplate)
			for y := 0; y < imgTemplate; y++ {
				for x := 0; x < imgTemplate; x++ {
					template[y*imgTemplate+x] = byte(x*7 ^ y*13)
				}
			}
			plantY := (height / 2 / imgStride) * imgStride
			plantX := 96
			for y := 0; y < imgTemplate; y++ {
				copy(global[(plantY+y)*width+plantX:], template[y*imgTemplate:(y+1)*imgTemplate])
			}

			mapRef, err := rt.LoadInput("global-map", global)
			if err != nil {
				return emr.Spec{}, err
			}
			tmplRef, err := rt.LoadInput("match-image", template)
			if err != nil {
				return emr.Spec{}, err
			}

			var datasets []emr.Dataset
			var params []byte
			nStrips := 0
			for y := 0; y+imgTemplate <= height; y += imgStride {
				nStrips++
				var p [imgParamsLen]byte
				binary.BigEndian.PutUint64(p[0:], uint64(width))
				binary.BigEndian.PutUint64(p[8:], uint64(y))
				params = append(params, p[:]...)
			}
			paramsRef, err := rt.LoadInput("params", params)
			if err != nil {
				return emr.Spec{}, err
			}
			i := 0
			for y := 0; y+imgTemplate <= height; y += imgStride {
				rows, err := mapRef.Slice(uint64(y*width), uint64(imgTemplate*width))
				if err != nil {
					return emr.Spec{}, err
				}
				job, err := paramsRef.Slice(uint64(i*imgParamsLen), imgParamsLen)
				if err != nil {
					return emr.Spec{}, err
				}
				datasets = append(datasets, emr.Dataset{Inputs: []emr.InputRef{rows, job, tmplRef}})
				i++
			}
			return emr.Spec{
				Name:          "image-processing",
				Datasets:      datasets,
				Job:           imageJob,
				CyclesPerByte: 26,
			}, nil
		},
	}
}

// imageJob scans every x offset of the strip for the best (lowest) sum of
// absolute differences against the template, returning
// (bestSAD, globalY, bestX) as three big-endian uint64s.
func imageJob(inputs [][]byte) ([]byte, error) {
	if len(inputs) != 3 {
		return nil, fmt.Errorf("imageproc: want [strip, params, template], got %d inputs", len(inputs))
	}
	strip, params, tmpl := inputs[0], inputs[1], inputs[2]
	if len(params) != imgParamsLen {
		return nil, fmt.Errorf("imageproc: params length %d", len(params))
	}
	width := int(binary.BigEndian.Uint64(params[0:]))
	originY := binary.BigEndian.Uint64(params[8:])
	if width <= 0 || len(strip)%width != 0 {
		return nil, fmt.Errorf("imageproc: strip %d not a multiple of width %d", len(strip), width)
	}
	if len(tmpl) != imgTemplate*imgTemplate {
		return nil, fmt.Errorf("imageproc: template length %d", len(tmpl))
	}
	rows := len(strip) / width
	if rows < imgTemplate {
		return nil, fmt.Errorf("imageproc: strip of %d rows shorter than template", rows)
	}
	bestSAD := ^uint64(0)
	bestX := 0
	for x := 0; x+imgTemplate <= width; x++ {
		var sad uint64
		for ty := 0; ty < imgTemplate && sad < bestSAD; ty++ {
			rowOff := ty*width + x
			trow := tmpl[ty*imgTemplate : (ty+1)*imgTemplate]
			srow := strip[rowOff : rowOff+imgTemplate]
			for tx := 0; tx < imgTemplate; tx++ {
				d := int(srow[tx]) - int(trow[tx])
				if d < 0 {
					d = -d
				}
				sad += uint64(d)
			}
		}
		if sad < bestSAD {
			bestSAD, bestX = sad, x
		}
	}
	return putU64(bestSAD, originY, uint64(bestX)), nil
}

// DecodeMatch unpacks an image-processing job output.
func DecodeMatch(out []byte) (sad, y, x uint64, err error) {
	if len(out) != 24 {
		return 0, 0, 0, fmt.Errorf("imageproc: output length %d, want 24", len(out))
	}
	return binary.BigEndian.Uint64(out[0:]),
		binary.BigEndian.Uint64(out[8:]),
		binary.BigEndian.Uint64(out[16:]), nil
}

// BestMatch folds all dataset outputs into the global best (the final
// localization answer the spacecraft uses).
func BestMatch(outputs [][]byte) (sad, y, x uint64, err error) {
	sad = ^uint64(0)
	for _, out := range outputs {
		if out == nil {
			continue
		}
		s, oy, ox, derr := DecodeMatch(out)
		if derr != nil {
			return 0, 0, 0, derr
		}
		if s < sad {
			sad, y, x = s, oy, ox
		}
	}
	if sad == ^uint64(0) {
		return 0, 0, 0, fmt.Errorf("imageproc: no valid outputs")
	}
	return sad, y, x, nil
}
