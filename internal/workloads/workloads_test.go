package workloads

import (
	"bytes"
	"encoding/binary"
	"testing"

	"radshield/internal/emr"
	"radshield/internal/fault"
)

func runWorkload(t *testing.T, b Builder, scheme fault.Scheme, size int) (*emr.Runtime, *emr.Result) {
	t.Helper()
	cfg := emr.DefaultConfig()
	cfg.Scheme = scheme
	rt, err := emr.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := b.Build(rt, size, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rt, res
}

func TestAllReturnsFiveTable5Workloads(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() = %d workloads, want 5", len(all))
	}
	want := []string{"encryption", "compression", "intrusion-detection", "image-processing", "dnn"}
	for i, b := range all {
		if b.Name != want[i] {
			t.Errorf("workload %d = %q, want %q", i, b.Name, want[i])
		}
		if b.CyclesPerByte <= 0 {
			t.Errorf("%s: CyclesPerByte = %v", b.Name, b.CyclesPerByte)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("encryption"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestEveryWorkloadRunsCleanUnderEMR(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, res := runWorkload(t, b, fault.SchemeEMR, 64<<10)
			rep := res.Report
			if rep.Votes.Failed != 0 || rep.ExecErrors != 0 {
				t.Fatalf("votes = %+v errors = %d", rep.Votes, rep.ExecErrors)
			}
			if rep.Votes.Unanimous != rep.Datasets {
				t.Fatalf("unanimous = %d of %d datasets", rep.Votes.Unanimous, rep.Datasets)
			}
			for i, out := range res.Outputs {
				if out == nil {
					t.Fatalf("dataset %d has no output", i)
				}
			}
		})
	}
}

func TestWorkloadOutputsMatchAcrossSchemes(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, ref := runWorkload(t, b, fault.SchemeNone, 32<<10)
			for _, scheme := range []fault.Scheme{fault.SchemeEMR, fault.SchemeSerial3MR, fault.SchemeUnprotectedParallel} {
				_, res := runWorkload(t, b, scheme, 32<<10)
				if len(res.Outputs) != len(ref.Outputs) {
					t.Fatalf("%v: %d outputs vs %d", scheme, len(res.Outputs), len(ref.Outputs))
				}
				for i := range ref.Outputs {
					if !bytes.Equal(res.Outputs[i], ref.Outputs[i]) {
						t.Fatalf("%v: dataset %d differs", scheme, i)
					}
				}
			}
		})
	}
}

func TestReplicationStrategiesMatchTable5(t *testing.T) {
	// Paper Table 5: encryption/ids/imageproc/dnn replicate their shared
	// block; compression replicates nothing.
	expect := map[string]bool{
		"encryption":          true,
		"compression":         false,
		"intrusion-detection": true,
		"image-processing":    true,
		"dnn":                 true,
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, res := runWorkload(t, b, fault.SchemeEMR, 64<<10)
			replicated := res.Report.ReplicatedRegions > 0
			if replicated != expect[b.Name] {
				t.Fatalf("replicated = %v (regions=%d), want %v",
					replicated, res.Report.ReplicatedRegions, expect[b.Name])
			}
		})
	}
}

func TestAESRoundTrip(t *testing.T) {
	rt, res := runWorkload(t, Encryption(), fault.SchemeEMR, 16<<10)
	_ = rt
	key := synthetic(aesKeySize, 43) // seed+1 of Build's seed 42
	plain := synthetic(len(res.Outputs)*aesChunk, 42)
	for i, ct := range res.Outputs {
		pt, err := AESDecryptECB(ct, key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, plain[i*aesChunk:(i+1)*aesChunk]) {
			t.Fatalf("chunk %d did not round-trip", i)
		}
	}
}

func TestAESJobValidation(t *testing.T) {
	if _, err := aesJob([][]byte{{1}}); err == nil {
		t.Error("single input accepted")
	}
	if _, err := aesJob([][]byte{make([]byte, 15), make([]byte, 32)}); err == nil {
		t.Error("non-block chunk accepted")
	}
	if _, err := aesJob([][]byte{make([]byte, 16), make([]byte, 7)}); err == nil {
		t.Error("bad key size accepted")
	}
}

func TestDeflateRoundTripAndChaining(t *testing.T) {
	cfg := emr.DefaultConfig()
	rt, err := emr.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Compression().Build(rt, 64<<10, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Chained dictionaries make adjacent datasets conflict: more than
	// one jobset, no replication.
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Jobsets < 2 {
		t.Fatalf("jobsets = %d, want ≥ 2 from dictionary chaining", res.Report.Jobsets)
	}
	// Outputs decompress back to the original blocks.
	if len(spec.Datasets) < 2 {
		t.Fatal("need at least 2 blocks")
	}
	// Block 0 has no dictionary.
	out0, err := InflateBlock(res.Outputs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out0) != deflateBlock {
		t.Fatalf("block 0 inflated to %d bytes", len(out0))
	}
	// Compression actually compresses (structured input).
	if len(res.Outputs[0]) >= deflateBlock {
		t.Fatalf("block 0 did not compress: %d bytes", len(res.Outputs[0]))
	}
}

func TestIDSFindsPlantedPatterns(t *testing.T) {
	_, res := runWorkload(t, IntrusionDetection(), fault.SchemeEMR, 64<<10)
	hits := 0
	for _, out := range res.Outputs {
		if binary.BigEndian.Uint32(out) > 0 {
			hits++
		}
	}
	// Build plants a match in every 7th packet.
	wantMin := len(res.Outputs) / 7
	if hits < wantMin {
		t.Fatalf("packets with matches = %d, want ≥ %d", hits, wantMin)
	}
	if hits == len(res.Outputs) {
		t.Fatal("every packet matched; synthetic noise should not match")
	}
}

func TestImageProcessingFindsPlantedTemplate(t *testing.T) {
	_, res := runWorkload(t, ImageProcessing(), fault.SchemeEMR, 64<<10)
	sad, y, x, err := BestMatch(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if sad != 0 {
		t.Fatalf("best SAD = %d, want 0 at the planted location", sad)
	}
	if x != 96 {
		t.Fatalf("best x = %d, want 96", x)
	}
	if y%16 != 0 {
		t.Fatalf("best strip y = %d, want a stride multiple", y)
	}
}

func TestImageProcessingOverlapsConflict(t *testing.T) {
	_, res := runWorkload(t, ImageProcessing(), fault.SchemeEMR, 64<<10)
	// Stride 16 with 32-pixel template: adjacent strips overlap → at
	// least 2 jobsets, like the paper's Figure 6 red blocks.
	if res.Report.Jobsets < 2 {
		t.Fatalf("jobsets = %d, want ≥ 2", res.Report.Jobsets)
	}
	if res.Report.ReplicatedRegions < 1 {
		t.Fatal("match image not replicated")
	}
}

func TestDNNDeterministicClasses(t *testing.T) {
	_, a := runWorkload(t, NeuralNetwork(), fault.SchemeEMR, 16<<10)
	_, b := runWorkload(t, NeuralNetwork(), fault.SchemeSerial3MR, 16<<10)
	for i := range a.Outputs {
		ca, err := DecodeClass(a.Outputs[i])
		if err != nil {
			t.Fatal(err)
		}
		cb, err := DecodeClass(b.Outputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb {
			t.Fatalf("sample %d: class %d vs %d", i, ca, cb)
		}
		if ca < 0 || ca >= dnnOut {
			t.Fatalf("class %d out of range", ca)
		}
	}
}

func TestDecodeHelpersValidate(t *testing.T) {
	if _, _, _, err := DecodeMatch([]byte{1, 2}); err == nil {
		t.Error("short match output accepted")
	}
	if _, err := DecodeClass(nil); err == nil {
		t.Error("nil class output accepted")
	}
	if _, _, _, err := BestMatch(nil); err == nil {
		t.Error("BestMatch with no outputs succeeded")
	}
}
