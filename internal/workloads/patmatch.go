package workloads

import (
	"fmt"
	"regexp"

	"radshield/internal/emr"
)

// packetSize models typical MTU-sized frames inspected by an onboard
// intrusion-detection function.
const packetSize = 1536

// idsPattern is the shared search pattern (Go's regexp package is RE2
// syntax — the same engine family the paper's RE2 workload uses).
const idsPattern = `(?i)(cmd=(reboot|halt|dump))|x{4,}|\x00\x00\x7f`

// IntrusionDetection builds the packet-matching workload: one dataset
// per packet plus the shared pattern region, which replication privatizes
// per executor (the paper's "Replicate search pattern" row).
func IntrusionDetection() Builder {
	return Builder{
		Name:          "intrusion-detection",
		CyclesPerByte: 12, // DFA scan plus per-packet setup
		Build: func(rt *emr.Runtime, size int, seed int64) (emr.Spec, error) {
			n := size / packetSize
			if n < 1 {
				n = 1
			}
			raw := synthetic(n*packetSize, seed)
			// Plant matches in a deterministic subset of packets so the
			// workload has positives to find.
			for i := 0; i < n; i += 7 {
				copy(raw[i*packetSize+100:], []byte("CMD=REBOOT"))
			}
			packets, err := rt.LoadInput("packets", raw)
			if err != nil {
				return emr.Spec{}, err
			}
			pattern, err := rt.LoadInput("pattern", []byte(idsPattern))
			if err != nil {
				return emr.Spec{}, err
			}
			datasets := make([]emr.Dataset, n)
			for i := 0; i < n; i++ {
				packet, err := packets.Slice(uint64(i*packetSize), packetSize)
				if err != nil {
					return emr.Spec{}, err
				}
				datasets[i] = emr.Dataset{Inputs: []emr.InputRef{packet, pattern}}
			}
			return emr.Spec{
				Name:          "intrusion-detection",
				Datasets:      datasets,
				Job:           idsJob,
				CyclesPerByte: 12,
			}, nil
		},
	}
}

// idsJob compiles the pattern bytes and counts matches in the packet.
// Compiling from the delivered bytes matters: a corrupted pattern replica
// produces different counts (or a compile error), which the vote catches.
func idsJob(inputs [][]byte) ([]byte, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("ids: want [packet, pattern], got %d inputs", len(inputs))
	}
	re, err := regexp.Compile(string(inputs[1]))
	if err != nil {
		return nil, fmt.Errorf("ids: corrupt pattern: %w", err)
	}
	matches := re.FindAllIndex(inputs[0], -1)
	return putU32(uint32(len(matches))), nil
}
