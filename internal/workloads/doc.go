// Package workloads implements the five spacecraft compute tasks of the
// paper's EMR evaluation (Table 5), each expressed as an EMR Spec over
// frontier memory:
//
//	Encryption          AES-256-ECB    replicate the key
//	Compression         DEFLATE        no replication (chained blocks)
//	Intrusion detection regexp (RE2)   replicate the search pattern
//	Image processing    map matching   replicate the match image
//	Neural networks     MLP inference  replicate weights & biases
//
// The paper uses OpenSSL/Zlib/RE2/OpenCV; this reproduction uses Go's
// stdlib crypto/aes and compress/flate, Go's RE2-syntax regexp, and
// from-scratch implementations of template matching and MLP inference —
// the same compute and data-access patterns that drive EMR's conflict
// graph and replication decisions.
//
// Builder is the unit of registration: Name plus a Build function that
// stages synthetic inputs into an emr.Runtime's frontier and returns the
// Spec (datasets, job function, compute intensity). All and ByName
// enumerate the registry; the Decode*/Best* helpers interpret job
// outputs for verification and for the Table 7 golden-run comparison.
//
// Invariants: Build is deterministic given (size, seed) — the same
// synthetic inputs, dataset layout, and expected outputs every run,
// which the fault-injection campaign's golden-output classification
// depends on; job functions are pure functions of their inputs; shared
// regions (key, pattern, template, weights) are declared via InputRefs
// into one canonical region so EMR's replication analysis sees the
// sharing.
package workloads
