package workloads

import (
	"encoding/binary"
	"strings"
	"testing"
)

// Error-path tests for the job functions: corrupted metadata must fail
// loudly (a detected error for the EMR vote), never panic or mis-answer.

func TestImageJobValidation(t *testing.T) {
	goodParams := make([]byte, imgParamsLen)
	binary.BigEndian.PutUint64(goodParams, 256)
	binary.BigEndian.PutUint64(goodParams[8:], 0)
	strip := make([]byte, 256*imgTemplate)
	tmpl := make([]byte, imgTemplate*imgTemplate)

	cases := []struct {
		name   string
		inputs [][]byte
	}{
		{"wrong arity", [][]byte{strip, goodParams}},
		{"bad params length", [][]byte{strip, make([]byte, 3), tmpl}},
		{"zero width", [][]byte{strip, make([]byte, imgParamsLen), tmpl}},
		{"ragged strip", [][]byte{strip[:100], goodParams, tmpl}},
		{"bad template", [][]byte{strip, goodParams, tmpl[:10]}},
		{"short strip", [][]byte{strip[:256*4], goodParams, tmpl}},
	}
	for _, c := range cases {
		if _, err := imageJob(c.inputs); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if _, err := imageJob([][]byte{strip, goodParams, tmpl}); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
}

func TestDNNJobValidation(t *testing.T) {
	sample := make([]byte, dnnSampleLen)
	weights := make([]byte, dnnWeightsLen)
	if _, err := dnnJob([][]byte{sample}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := dnnJob([][]byte{sample[:8], weights}); err == nil {
		t.Error("short sample accepted")
	}
	if _, err := dnnJob([][]byte{sample, weights[:8]}); err == nil {
		t.Error("short weights accepted")
	}
	out, err := dnnJob([][]byte{sample, weights})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4+4*dnnOut {
		t.Fatalf("output length %d", len(out))
	}
}

func TestIDSJobValidation(t *testing.T) {
	if _, err := idsJob([][]byte{{1}}); err == nil {
		t.Error("wrong arity accepted")
	}
	// A corrupted pattern that no longer compiles is a *detected* error —
	// the property that makes the replicated pattern vote-safe.
	if _, err := idsJob([][]byte{[]byte("payload"), []byte("(unclosed")}); err == nil {
		t.Error("corrupt pattern accepted")
	} else if !strings.Contains(err.Error(), "corrupt pattern") {
		t.Errorf("unexpected error: %v", err)
	}
	out, err := idsJob([][]byte{[]byte("CMD=REBOOT now"), []byte(idsPattern)})
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint32(out) != 1 {
		t.Fatalf("match count = %d, want 1", binary.BigEndian.Uint32(out))
	}
}

func TestDeflateJobValidation(t *testing.T) {
	if _, err := deflateJob([][]byte{{1}, {2}, {3}}); err == nil {
		t.Error("3-input deflate accepted")
	}
	out, err := deflateJob([][]byte{[]byte(strings.Repeat("radshield ", 100))})
	if err != nil {
		t.Fatal(err)
	}
	back, err := InflateBlock(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != strings.Repeat("radshield ", 100) {
		t.Fatal("round trip failed")
	}
}

func TestDeflateDictionaryActuallyHelps(t *testing.T) {
	// Compressing with the preceding window as dictionary must beat
	// compressing cold when the data repeats across the boundary.
	block := []byte(strings.Repeat("telemetry-frame-alpha-bravo ", 80))
	dict := block[:deflateDict]
	withDict, err := deflateJob([][]byte{dict, block})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := deflateJob([][]byte{block})
	if err != nil {
		t.Fatal(err)
	}
	if len(withDict) >= len(cold) {
		t.Fatalf("dictionary did not help: %d vs %d bytes", len(withDict), len(cold))
	}
	// And the dictionary round-trips correctly.
	back, err := InflateBlock(withDict, dict)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(block) {
		t.Fatal("dictionary round trip failed")
	}
}

func TestAESJobDeterministicPerKey(t *testing.T) {
	chunk := make([]byte, 64)
	k1 := make([]byte, 32)
	k2 := make([]byte, 32)
	k2[0] = 1
	a, err := aesJob([][]byte{chunk, k1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := aesJob([][]byte{chunk, k1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := aesJob([][]byte{chunk, k2})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("AES not deterministic")
	}
	if string(a) == string(c) {
		t.Fatal("different keys produced equal ciphertext")
	}
}
