package workloads

import (
	"encoding/binary"
	"fmt"
	"math"

	"radshield/internal/emr"
)

// ImageProcessingNCC is the normalized-cross-correlation variant of the
// global-localization workload — the matching method the paper's flight
// algorithm family actually uses (SAD, in ImageProcessing, is the cheap
// integer substitute). NCC is illumination-invariant: it finds the
// template even when the map's brightness and contrast differ from the
// capture, at the cost of float math.
//
// Float determinism matters here: EMR votes on output bytes, so the
// redundant executors must produce bit-identical floats. Go guarantees
// that for identical instruction sequences, which the tests verify.
func ImageProcessingNCC() Builder {
	return Builder{
		Name:          "image-processing-ncc",
		CyclesPerByte: 60, // float MADDs + two running sums per pixel
		Build: func(rt *emr.Runtime, size int, seed int64) (emr.Spec, error) {
			spec, err := ImageProcessing().Build(rt, size, seed)
			if err != nil {
				return emr.Spec{}, err
			}
			// Same datasets and staging; only the job and its cost differ.
			spec.Name = "image-processing-ncc"
			spec.Job = nccJob
			spec.CyclesPerByte = 60
			return spec, nil
		},
	}
}

// nccJob scans every x offset of the strip for the highest normalized
// cross-correlation against the template, returning
// (score×1e9 as u64, globalY, bestX).
func nccJob(inputs [][]byte) ([]byte, error) {
	if len(inputs) != 3 {
		return nil, fmt.Errorf("ncc: want [strip, params, template], got %d inputs", len(inputs))
	}
	strip, params, tmpl := inputs[0], inputs[1], inputs[2]
	if len(params) != imgParamsLen {
		return nil, fmt.Errorf("ncc: params length %d", len(params))
	}
	width := int(binary.BigEndian.Uint64(params[0:]))
	originY := binary.BigEndian.Uint64(params[8:])
	if width <= 0 || len(strip)%width != 0 {
		return nil, fmt.Errorf("ncc: strip %d not a multiple of width %d", len(strip), width)
	}
	if len(tmpl) != imgTemplate*imgTemplate {
		return nil, fmt.Errorf("ncc: template length %d", len(tmpl))
	}
	rows := len(strip) / width
	if rows < imgTemplate {
		return nil, fmt.Errorf("ncc: strip of %d rows shorter than template", rows)
	}

	// Template statistics are loop-invariant.
	var tSum, tSumSq float64
	for _, p := range tmpl {
		v := float64(p)
		tSum += v
		tSumSq += v * v
	}
	n := float64(imgTemplate * imgTemplate)
	tMean := tSum / n
	tVar := tSumSq - n*tMean*tMean
	if tVar <= 0 {
		return nil, fmt.Errorf("ncc: degenerate (flat) template")
	}

	bestScore := math.Inf(-1)
	bestX := 0
	for x := 0; x+imgTemplate <= width; x++ {
		var sSum, sSumSq, cross float64
		for ty := 0; ty < imgTemplate; ty++ {
			rowOff := ty*width + x
			srow := strip[rowOff : rowOff+imgTemplate]
			trow := tmpl[ty*imgTemplate : (ty+1)*imgTemplate]
			for tx := 0; tx < imgTemplate; tx++ {
				sv := float64(srow[tx])
				sSum += sv
				sSumSq += sv * sv
				cross += sv * float64(trow[tx])
			}
		}
		sMean := sSum / n
		sVar := sSumSq - n*sMean*sMean
		if sVar <= 0 {
			continue // flat window: correlation undefined
		}
		score := (cross - n*sMean*tMean) / math.Sqrt(sVar*tVar)
		if score > bestScore {
			bestScore, bestX = score, x
		}
	}
	if math.IsInf(bestScore, -1) {
		return nil, fmt.Errorf("ncc: no valid window in strip")
	}
	// Fixed-point encode so voting compares exact bytes.
	return putU64(uint64(int64((bestScore+1)*1e9)), originY, uint64(bestX)), nil
}

// DecodeNCC unpacks an NCC job output into (score in [-1,1], y, x).
func DecodeNCC(out []byte) (score float64, y, x uint64, err error) {
	if len(out) != 24 {
		return 0, 0, 0, fmt.Errorf("ncc: output length %d, want 24", len(out))
	}
	raw := binary.BigEndian.Uint64(out[0:])
	return float64(raw)/1e9 - 1,
		binary.BigEndian.Uint64(out[8:]),
		binary.BigEndian.Uint64(out[16:]), nil
}

// BestNCC folds dataset outputs into the global best match.
func BestNCC(outputs [][]byte) (score float64, y, x uint64, err error) {
	score = math.Inf(-1)
	for _, out := range outputs {
		if out == nil {
			continue
		}
		s, oy, ox, derr := DecodeNCC(out)
		if derr != nil {
			return 0, 0, 0, derr
		}
		if s > score {
			score, y, x = s, oy, ox
		}
	}
	if math.IsInf(score, -1) {
		return 0, 0, 0, fmt.Errorf("ncc: no valid outputs")
	}
	return score, y, x, nil
}
