package workloads

import (
	"crypto/aes"
	"fmt"

	"radshield/internal/emr"
)

// aesChunk is the per-dataset plaintext size. 4 KiB chunks mirror the
// block-parallel structure of bulk spacecraft telemetry encryption.
const aesChunk = 4096

// aesKeySize is AES-256.
const aesKeySize = 32

// Encryption builds the AES-256-ECB workload: every dataset is one
// plaintext chunk plus the shared key. ECB mode (the paper's choice)
// makes blocks independent, so chunks never conflict — only the key is
// shared, and replication removes that conflict entirely.
func Encryption() Builder {
	return Builder{
		Name:          "encryption",
		CyclesPerByte: 2.5, // hardware AES pipeline (NEON/AES-NI class, per the paper §3.2)
		Build: func(rt *emr.Runtime, size int, seed int64) (emr.Spec, error) {
			n := size / aesChunk
			if n < 1 {
				n = 1
			}
			plain, err := rt.LoadInput("plaintext", synthetic(n*aesChunk, seed))
			if err != nil {
				return emr.Spec{}, err
			}
			key, err := rt.LoadInput("key", synthetic(aesKeySize, seed+1))
			if err != nil {
				return emr.Spec{}, err
			}
			datasets := make([]emr.Dataset, n)
			for i := 0; i < n; i++ {
				chunk, err := plain.Slice(uint64(i*aesChunk), aesChunk)
				if err != nil {
					return emr.Spec{}, err
				}
				datasets[i] = emr.Dataset{Inputs: []emr.InputRef{chunk, key}}
			}
			return emr.Spec{
				Name:          "encryption",
				Datasets:      datasets,
				Job:           aesJob,
				CyclesPerByte: 2.5,
			}, nil
		},
	}
}

// aesJob encrypts inputs[0] under key inputs[1] in ECB mode.
func aesJob(inputs [][]byte) ([]byte, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("aes: want [chunk, key], got %d inputs", len(inputs))
	}
	chunk, key := inputs[0], inputs[1]
	if len(chunk)%aes.BlockSize != 0 {
		return nil, fmt.Errorf("aes: chunk size %d not a block multiple", len(chunk))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aes: %w", err)
	}
	out := make([]byte, len(chunk))
	for off := 0; off < len(chunk); off += aes.BlockSize {
		block.Encrypt(out[off:off+aes.BlockSize], chunk[off:off+aes.BlockSize])
	}
	return out, nil
}

// AESDecryptECB is the inverse transform, used by tests to verify that
// voted ciphertext round-trips.
func AESDecryptECB(ciphertext, key []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	if len(ciphertext)%aes.BlockSize != 0 {
		return nil, fmt.Errorf("aes: ciphertext size %d not a block multiple", len(ciphertext))
	}
	out := make([]byte, len(ciphertext))
	for off := 0; off < len(ciphertext); off += aes.BlockSize {
		block.Decrypt(out[off:off+aes.BlockSize], ciphertext[off:off+aes.BlockSize])
	}
	return out, nil
}
