package workloads

import (
	"bytes"
	"compress/flate"
	"fmt"

	"radshield/internal/emr"
)

// Block/dictionary sizes for the compression workload. DEFLATE's
// back-references reach up to 32 KiB into the preceding data; each block
// is compressed with a dictionary drawn from the tail of its predecessor,
// which is exactly the data dependency the paper calls out ("the DEFLATE
// algorithm in our compression benchmark relies on data from the block
// directly preceding it").
const (
	deflateBlock = 16 << 10
	deflateDict  = 2 << 10
)

// Compression builds the DEFLATE workload. Each dataset overlaps its
// predecessor's region (the dictionary window), chaining conflicts so the
// greedy scheduler alternates jobsets — and no region repeats across
// enough datasets to be worth replicating (the paper's "No replication"
// row).
func Compression() Builder {
	return Builder{
		Name:          "compression",
		CyclesPerByte: 45, // LZ77 match search dominates (not vectorizable)
		Build: func(rt *emr.Runtime, size int, seed int64) (emr.Spec, error) {
			n := size / deflateBlock
			if n < 1 {
				n = 1
			}
			// Compressible synthetic data: repeat structured records so
			// DEFLATE has real matches to find.
			raw := make([]byte, n*deflateBlock)
			pattern := synthetic(512, seed)
			for off := 0; off < len(raw); off += len(pattern) {
				copy(raw[off:], pattern)
				// Perturb a few bytes per repeat so blocks differ.
				raw[off] = byte(off >> 9)
			}
			data, err := rt.LoadInput("stream", raw)
			if err != nil {
				return emr.Spec{}, err
			}
			datasets := make([]emr.Dataset, n)
			for i := 0; i < n; i++ {
				inputs := []emr.InputRef{}
				if i > 0 {
					dictOff := uint64(i*deflateBlock - deflateDict)
					dict, err := data.Slice(dictOff, deflateDict)
					if err != nil {
						return emr.Spec{}, err
					}
					inputs = append(inputs, dict)
				}
				block, err := data.Slice(uint64(i*deflateBlock), deflateBlock)
				if err != nil {
					return emr.Spec{}, err
				}
				inputs = append(inputs, block)
				datasets[i] = emr.Dataset{Inputs: inputs}
			}
			return emr.Spec{
				Name:          "compression",
				Datasets:      datasets,
				Job:           deflateJob,
				CyclesPerByte: 45,
			}, nil
		},
	}
}

// deflateJob compresses the block (last input) using the preceding
// window (first input, when present) as the dictionary.
func deflateJob(inputs [][]byte) ([]byte, error) {
	var dict, block []byte
	switch len(inputs) {
	case 1:
		block = inputs[0]
	case 2:
		dict, block = inputs[0], inputs[1]
	default:
		return nil, fmt.Errorf("deflate: want [dict?, block], got %d inputs", len(inputs))
	}
	var buf bytes.Buffer
	w, err := flate.NewWriterDict(&buf, flate.DefaultCompression, dict)
	if err != nil {
		return nil, fmt.Errorf("deflate: %w", err)
	}
	if _, err := w.Write(block); err != nil {
		return nil, fmt.Errorf("deflate: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("deflate: %w", err)
	}
	return buf.Bytes(), nil
}

// InflateBlock decompresses one job output, used by tests to verify
// round-trips.
func InflateBlock(compressed, dict []byte) ([]byte, error) {
	r := flate.NewReaderDict(bytes.NewReader(compressed), dict)
	defer r.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
