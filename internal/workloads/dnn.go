package workloads

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"radshield/internal/emr"
)

// MLP geometry for the neural-network workload: a small classifier of
// the kind run on orbital imagery tiles. Weights and biases are a single
// shared blob replicated per executor (the paper's "Replicate model
// weights & biases" row).
const (
	dnnIn     = 64
	dnnHidden = 32
	dnnOut    = 10
)

// dnnWeightsLen is the serialized float32 parameter count.
const dnnWeightsLen = (dnnIn*dnnHidden + dnnHidden + dnnHidden*dnnOut + dnnOut) * 4

// dnnSampleLen is one input vector in bytes.
const dnnSampleLen = dnnIn * 4

// dnnStride is the sliding-window step over the feature stream, in
// bytes. Stride < window: consecutive inference windows share half their
// input, the convolution-style access pattern that makes the DNN the
// conflict-heaviest workload in the paper ("DNNs require more cache
// clears to avoid jobset conflicts", §4.2.5).
const dnnStride = dnnSampleLen / 2

// NeuralNetwork builds the MLP inference workload: each dataset is one
// sliding window over a feature stream plus the shared weight blob.
func NeuralNetwork() Builder {
	return Builder{
		Name:          "dnn",
		CyclesPerByte: 30, // AVX2-class dense GEMV per byte of parameters
		Build: func(rt *emr.Runtime, size int, seed int64) (emr.Spec, error) {
			n := size / dnnSampleLen
			if n < 1 {
				n = 1
			}
			rng := rand.New(rand.NewSource(seed))
			weights := make([]byte, dnnWeightsLen)
			for off := 0; off < dnnWeightsLen; off += 4 {
				binary.BigEndian.PutUint32(weights[off:], math.Float32bits(float32(rng.NormFloat64()*0.3)))
			}
			streamLen := (n-1)*dnnStride + dnnSampleLen
			stream := make([]byte, streamLen)
			for off := 0; off < len(stream); off += 4 {
				binary.BigEndian.PutUint32(stream[off:], math.Float32bits(float32(rng.Float64())))
			}
			wRef, err := rt.LoadInput("weights", weights)
			if err != nil {
				return emr.Spec{}, err
			}
			sRef, err := rt.LoadInput("feature-stream", stream)
			if err != nil {
				return emr.Spec{}, err
			}
			datasets := make([]emr.Dataset, n)
			for i := 0; i < n; i++ {
				sample, err := sRef.Slice(uint64(i*dnnStride), dnnSampleLen)
				if err != nil {
					return emr.Spec{}, err
				}
				datasets[i] = emr.Dataset{Inputs: []emr.InputRef{sample, wRef}}
			}
			return emr.Spec{
				Name:          "dnn",
				Datasets:      datasets,
				Job:           dnnJob,
				CyclesPerByte: 30,
			}, nil
		},
	}
}

// dnnJob runs the forward pass: input → dense(ReLU) → dense → argmax.
// Output is (argmax class, logits bits) so any single-weight corruption
// shows up in the vote.
func dnnJob(inputs [][]byte) ([]byte, error) {
	if len(inputs) != 2 {
		return nil, fmt.Errorf("dnn: want [sample, weights], got %d inputs", len(inputs))
	}
	sample, weights := inputs[0], inputs[1]
	if len(sample) != dnnSampleLen {
		return nil, fmt.Errorf("dnn: sample length %d", len(sample))
	}
	if len(weights) != dnnWeightsLen {
		return nil, fmt.Errorf("dnn: weights length %d", len(weights))
	}
	f32 := func(buf []byte, idx int) float32 {
		return math.Float32frombits(binary.BigEndian.Uint32(buf[idx*4:]))
	}
	// Layer 1: hidden = relu(W1·x + b1).
	w1 := 0
	b1 := dnnIn * dnnHidden
	w2 := b1 + dnnHidden
	b2 := w2 + dnnHidden*dnnOut
	var hidden [dnnHidden]float32
	for h := 0; h < dnnHidden; h++ {
		sum := f32(weights, b1+h)
		for i := 0; i < dnnIn; i++ {
			sum += f32(weights, w1+h*dnnIn+i) * f32(sample, i)
		}
		if sum < 0 {
			sum = 0
		}
		hidden[h] = sum
	}
	// Layer 2: logits = W2·hidden + b2.
	var logits [dnnOut]float32
	for o := 0; o < dnnOut; o++ {
		sum := f32(weights, b2+o)
		for h := 0; h < dnnHidden; h++ {
			sum += f32(weights, w2+o*dnnHidden+h) * hidden[h]
		}
		logits[o] = sum
	}
	best := 0
	for o := 1; o < dnnOut; o++ {
		if logits[o] > logits[best] {
			best = o
		}
	}
	out := make([]byte, 4+4*dnnOut)
	binary.BigEndian.PutUint32(out, uint32(best))
	for o := 0; o < dnnOut; o++ {
		binary.BigEndian.PutUint32(out[4+o*4:], math.Float32bits(logits[o]))
	}
	return out, nil
}

// DecodeClass returns the argmax class from a DNN job output.
func DecodeClass(out []byte) (int, error) {
	if len(out) < 4 {
		return 0, fmt.Errorf("dnn: output too short")
	}
	return int(binary.BigEndian.Uint32(out)), nil
}
