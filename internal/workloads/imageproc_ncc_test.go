package workloads

import (
	"bytes"
	"math"
	"testing"

	"radshield/internal/emr"
	"radshield/internal/fault"
)

func TestNCCFindsPlantedTemplate(t *testing.T) {
	_, res := runWorkload(t, ImageProcessingNCC(), fault.SchemeEMR, 64<<10)
	score, y, x, err := BestNCC(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.999 {
		t.Fatalf("best NCC = %v, want ≈1 at the planted template", score)
	}
	if x != 96 || y%16 != 0 {
		t.Fatalf("best at (x=%d, y=%d), want x=96 on a stride row", x, y)
	}
}

func TestNCCIlluminationInvariance(t *testing.T) {
	// The reason flight software pays for NCC: a brightness/contrast
	// shift of the whole map must not move the fix. Build a custom map
	// with a scaled+offset copy of the template planted.
	cfg := emr.DefaultConfig()
	rt, err := emr.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ImageProcessingNCC().Build(rt, 64<<10, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, y0, x0, err := BestNCC(res.Outputs)
	if err != nil {
		t.Fatal(err)
	}

	// Second runtime: same scene but globally darkened by half. SAD's
	// best position would change (every pixel differs); NCC's must not.
	rt2, err := emr.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := ImageProcessingNCC().Build(rt2, 64<<10, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Darken the strips by patching the staged frontier bytes through a
	// fresh build: emulate by scaling the template instead — NCC is
	// symmetric, so a contrast-scaled template must still match.
	res2, err := rt2.Run(emr.Spec{
		Name:          spec2.Name,
		Datasets:      spec2.Datasets,
		CyclesPerByte: spec2.CyclesPerByte,
		Job: func(inputs [][]byte) ([]byte, error) {
			scaled := make([]byte, len(inputs[2]))
			for i, p := range inputs[2] {
				scaled[i] = p/2 + 40 // contrast ×0.5, brightness +40
			}
			return nccJob([][]byte{inputs[0], inputs[1], scaled})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, y1, x1, err := BestNCC(res2.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if x0 != x1 || y0 != y1 {
		t.Fatalf("illumination shift moved the fix: (%d,%d) → (%d,%d)", x0, y0, x1, y1)
	}
}

func TestNCCDeterministicAcrossSchemes(t *testing.T) {
	// Float outputs must be bit-identical across executors and schemes,
	// or EMR voting would see phantom disagreements.
	_, a := runWorkload(t, ImageProcessingNCC(), fault.SchemeEMR, 32<<10)
	_, b := runWorkload(t, ImageProcessingNCC(), fault.SchemeSerial3MR, 32<<10)
	if a.Report.Votes.Unanimous != a.Report.Datasets {
		t.Fatalf("EMR votes not unanimous: %+v", a.Report.Votes)
	}
	for i := range a.Outputs {
		if !bytes.Equal(a.Outputs[i], b.Outputs[i]) {
			t.Fatalf("dataset %d differs across schemes", i)
		}
	}
}

func TestNCCJobValidation(t *testing.T) {
	if _, err := nccJob([][]byte{{1}}); err == nil {
		t.Error("wrong arity accepted")
	}
	flat := make([]byte, imgTemplate*imgTemplate) // zero variance template
	strip := make([]byte, 256*imgTemplate)
	params := make([]byte, imgParamsLen)
	for i := 0; i < 8; i++ {
		params[i] = 0
	}
	params[7] = 0
	// width=256
	params[6], params[7] = 1, 0
	if _, err := nccJob([][]byte{strip, params, flat}); err == nil {
		t.Error("flat template accepted")
	}
}

func TestDecodeNCCValidation(t *testing.T) {
	if _, _, _, err := DecodeNCC([]byte{1}); err == nil {
		t.Error("short output accepted")
	}
	if _, _, _, err := BestNCC([][]byte{nil}); err == nil {
		t.Error("no outputs accepted")
	}
	out := putU64(uint64(int64((0.5+1)*1e9)), 16, 96)
	s, y, x, err := DecodeNCC(out)
	if err != nil || math.Abs(s-0.5) > 1e-6 || y != 16 || x != 96 {
		t.Fatalf("decode = %v,%v,%v,%v", s, y, x, err)
	}
}
