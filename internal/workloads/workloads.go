package workloads

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"radshield/internal/emr"
)

// Builder constructs one workload's Spec on a runtime.
type Builder struct {
	// Name matches the paper's Table 5 row.
	Name string
	// CyclesPerByte is the virtual compute intensity used by the cost
	// model (not the Go execution time).
	CyclesPerByte float64
	// Build stages inputs into the runtime's frontier and returns the
	// spec. size scales the total input volume in bytes (approximately);
	// seed makes the synthetic data deterministic.
	Build func(rt *emr.Runtime, size int, seed int64) (emr.Spec, error)
}

// All returns the five paper workloads in Table 5 order.
func All() []Builder {
	return []Builder{
		Encryption(),
		Compression(),
		IntrusionDetection(),
		ImageProcessing(),
		NeuralNetwork(),
	}
}

// ByName returns the builder with the given name, covering both the
// Table 5 set and the NCC extension variant.
func ByName(name string) (Builder, error) {
	for _, b := range append(All(), ImageProcessingNCC()) {
		if b.Name == name {
			return b, nil
		}
	}
	return Builder{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// synthetic fills a deterministic pseudo-random buffer.
func synthetic(n int, seed int64) []byte {
	buf := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(buf)
	return buf
}

// putU32/readU32 are the output serialization helpers shared by jobs.
func putU32(v uint32) []byte {
	out := make([]byte, 4)
	binary.BigEndian.PutUint32(out, v)
	return out
}

func putU64(vs ...uint64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint64(out[i*8:], v)
	}
	return out
}
