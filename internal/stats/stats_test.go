package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance(single) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
}

func TestMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Quantile interp = %v, want 3", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", got)
	}
	if got := Correlation(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
}

func TestRollingMinBasic(t *testing.T) {
	xs := []float64{5, 1, 4, 4, 9, 2}
	got := RollingMin(xs, 1, 1)
	want := []float64{1, 1, 1, 4, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RollingMin[%d] = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRollingMinZeroWindowIsIdentity(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	got := RollingMin(xs, 0, 0)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("RollingMin(0,0)[%d] = %v, want %v", i, got[i], xs[i])
		}
	}
}

func TestRollingMinSuppressesSpikes(t *testing.T) {
	// A quiescent 1.5A baseline with µs transient spikes: rolling min must
	// flatten the spikes back to baseline (§3.1 of the paper).
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 1.5
	}
	xs[20], xs[50], xs[51], xs[80] = 2.6, 3.0, 2.9, 2.2
	got := RollingMin(xs, 2, 2)
	for i, v := range got {
		if v != 1.5 {
			t.Fatalf("RollingMin[%d] = %v, spikes not suppressed", i, v)
		}
	}
}

// Property: RollingMin output is pointwise ≤ input and matches the naive
// implementation.
func TestPropertyRollingMinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(n uint8, before, after uint8) bool {
		size := int(n%50) + 1
		b, a := int(before%5), int(after%5)
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		got := RollingMin(xs, b, a)
		for i := range xs {
			lo, hi := i-b, i+a
			if lo < 0 {
				lo = 0
			}
			if hi >= size {
				hi = size - 1
			}
			want := xs[lo]
			for j := lo + 1; j <= hi; j++ {
				if xs[j] < want {
					want = xs[j]
				}
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Record(true, true)   // TP
	c.Record(true, false)  // FP
	c.Record(false, true)  // FN
	c.Record(false, false) // TN
	c.Record(false, false) // TN
	if c.TruePositive != 1 || c.FalsePositive != 1 || c.FalseNegative != 1 || c.TrueNegative != 2 {
		t.Fatalf("confusion counts wrong: %+v", c)
	}
	if got := c.FalseNegativeRate(); got != 0.5 {
		t.Errorf("FNR = %v, want 0.5", got)
	}
	if got := c.FalsePositiveRate(); !almostEqual(got, 1.0/3.0, 1e-12) {
		t.Errorf("FPR = %v, want 1/3", got)
	}
	if got := c.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	if c.String() == "" {
		t.Error("String() empty")
	}
}

func TestConfusionEmptyRates(t *testing.T) {
	var c Confusion
	if c.FalseNegativeRate() != 0 || c.FalsePositiveRate() != 0 {
		t.Fatal("empty confusion rates should be 0")
	}
}

func TestRunningMean(t *testing.T) {
	var r RunningMean
	if r.Mean() != 0 {
		t.Fatal("empty RunningMean.Mean != 0")
	}
	r.Add(1)
	r.Add(2)
	r.Add(6)
	if got := r.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if r.Count() != 3 {
		t.Errorf("Count = %d, want 3", r.Count())
	}
	r.Reset()
	if r.Count() != 0 || r.Mean() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindowMean(3)
	if w.Mean() != 0 || w.Len() != 0 || w.Full() {
		t.Fatal("fresh window not empty")
	}
	w.Add(1)
	w.Add(2)
	if got := w.Mean(); got != 1.5 {
		t.Errorf("partial Mean = %v, want 1.5", got)
	}
	w.Add(3)
	if !w.Full() {
		t.Error("window should be full")
	}
	w.Add(10) // evicts 1
	if got := w.Mean(); got != 5 {
		t.Errorf("Mean after eviction = %v, want 5", got)
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d, want 3", w.Len())
	}
	w.Reset()
	if w.Len() != 0 || w.Full() {
		t.Error("Reset did not empty window")
	}
}

func TestNewWindowMeanInvalidCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindowMean(0) did not panic")
		}
	}()
	NewWindowMean(0)
}

// Property: WindowMean over a stream equals the mean of the trailing k
// elements.
func TestPropertyWindowMeanMatchesNaive(t *testing.T) {
	f := func(vals []float64, capSeed uint8) bool {
		if len(vals) == 0 {
			return true
		}
		capacity := int(capSeed%10) + 1
		w := NewWindowMean(capacity)
		for i, v := range vals {
			w.Add(v)
			lo := i + 1 - capacity
			if lo < 0 {
				lo = 0
			}
			var sum float64
			for _, x := range vals[lo : i+1] {
				sum += x
			}
			want := sum / float64(i+1-lo)
			if math.IsNaN(want) || math.IsInf(want, 0) {
				return true // degenerate float inputs: skip
			}
			if !almostEqual(w.Mean(), want, 1e-6*math.Max(1, math.Abs(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
