// Package stats provides the small set of statistics primitives the
// Radshield experiments need: summary statistics, Pearson correlation,
// rolling-window aggregates, and binary-classification confusion counts.
//
// The free functions (Mean, Variance, StdDev, Min, Max, Quantile,
// Correlation, RollingMin) operate on float64 slices; RollingMin is the
// paper's current-sensor noise filter. RunningMean and WindowMean are
// the streaming aggregates the detector hot path uses: RunningMean is
// O(1) cumulative, WindowMean maintains a fixed-width window with O(1)
// insert (ILD's 3-second residual average). Confusion tallies
// true/false positives/negatives for the Table 2 accuracy columns.
//
// Invariants: all functions are deterministic and allocation-conscious
// (the streaming types never allocate after construction); edge cases
// are explicit — Mean of no samples is 0, Quantile panics on an empty
// slice or an argument outside [0,1] rather than guessing;
// WindowMean.Full reports whether a full window backs the current
// average, which ILD's declaration logic requires before trusting it.
package stats
