package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		//radlint:allow nopanic empty input is a caller bug; documented panic contract
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		//radlint:allow nopanic empty input is a caller bug; documented panic contract
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		//radlint:allow nopanic empty input is a caller bug; documented panic contract
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		//radlint:allow nopanic an out-of-range quantile is a caller bug; documented panic contract
		panic(fmt.Sprintf("stats: Quantile(%v) out of [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient between xs and
// ys. It panics if the slices differ in length; it returns 0 when either
// series has zero variance.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		//radlint:allow nopanic a length mismatch between series is a caller bug; documented panic contract
		panic(fmt.Sprintf("stats: Correlation length mismatch %d vs %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RollingMin computes, for each index i, the minimum of
// xs[max(0,i-before) : min(len,i+after+1)]. This is the transient-spike
// filter ILD applies to current samples (±250 µs in the paper).
func RollingMin(xs []float64, before, after int) []float64 {
	if before < 0 || after < 0 {
		//radlint:allow nopanic a negative window is a caller bug; documented panic contract
		panic("stats: RollingMin: negative window")
	}
	out := make([]float64, len(xs))
	// Monotone deque over window [i-before, i+after].
	type entry struct {
		idx int
		val float64
	}
	var deque []entry
	push := func(i int) {
		v := xs[i]
		for len(deque) > 0 && deque[len(deque)-1].val >= v {
			deque = deque[:len(deque)-1]
		}
		deque = append(deque, entry{i, v})
	}
	next := 0 // next element to push
	for i := range xs {
		hi := i + after
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		for ; next <= hi; next++ {
			push(next)
		}
		lo := i - before
		for len(deque) > 0 && deque[0].idx < lo {
			deque = deque[1:]
		}
		out[i] = deque[0].val
	}
	return out
}

// Confusion accumulates binary-classification outcomes for detector
// accuracy experiments (paper Table 2 and Figure 10).
type Confusion struct {
	TruePositive  int
	TrueNegative  int
	FalsePositive int
	FalseNegative int
}

// Record adds one (predicted, actual) observation.
func (c *Confusion) Record(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TruePositive++
	case predicted && !actual:
		c.FalsePositive++
	case !predicted && actual:
		c.FalseNegative++
	default:
		c.TrueNegative++
	}
}

// FalseNegativeRate returns FN / (FN + TP), or 0 when no positives exist.
func (c *Confusion) FalseNegativeRate() float64 {
	total := c.FalseNegative + c.TruePositive
	if total == 0 {
		return 0
	}
	return float64(c.FalseNegative) / float64(total)
}

// FalsePositiveRate returns FP / (FP + TN), or 0 when no negatives exist.
func (c *Confusion) FalsePositiveRate() float64 {
	total := c.FalsePositive + c.TrueNegative
	if total == 0 {
		return 0
	}
	return float64(c.FalsePositive) / float64(total)
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	return c.TruePositive + c.TrueNegative + c.FalsePositive + c.FalseNegative
}

// String formats the confusion counts and rates for experiment reports.
func (c *Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d (FNR=%.4f FPR=%.4f)",
		c.TruePositive, c.TrueNegative, c.FalsePositive, c.FalseNegative,
		c.FalseNegativeRate(), c.FalsePositiveRate())
}

// RunningMean maintains an O(1)-update mean over an unbounded stream.
type RunningMean struct {
	n   int
	sum float64
}

// Add incorporates x into the mean.
func (r *RunningMean) Add(x float64) { r.n++; r.sum += x }

// Mean returns the current mean, or 0 before any samples.
func (r *RunningMean) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Count returns the number of samples added.
func (r *RunningMean) Count() int { return r.n }

// Reset discards all accumulated samples.
func (r *RunningMean) Reset() { r.n, r.sum = 0, 0 }

// WindowMean maintains a mean over the most recent capacity samples.
// ILD uses it for the "running average difference" between measured and
// predicted current over the 3-second decision window.
type WindowMean struct {
	buf  []float64
	head int
	full bool
	sum  float64
}

// NewWindowMean returns a WindowMean over the given capacity (> 0).
func NewWindowMean(capacity int) *WindowMean {
	if capacity <= 0 {
		//radlint:allow nopanic window capacity is computed from validated detector config
		panic("stats: NewWindowMean: capacity must be positive")
	}
	return &WindowMean{buf: make([]float64, capacity)}
}

// Add pushes x, evicting the oldest sample once the window is full.
func (w *WindowMean) Add(x float64) {
	if w.full {
		w.sum -= w.buf[w.head]
	}
	w.buf[w.head] = x
	w.sum += x
	w.head++
	if w.head == len(w.buf) {
		w.head = 0
		w.full = true
	}
}

// Mean returns the mean of the samples currently in the window.
func (w *WindowMean) Mean() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	return w.sum / float64(n)
}

// Len returns the number of samples currently in the window.
func (w *WindowMean) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.head
}

// Full reports whether the window has reached capacity.
func (w *WindowMean) Full() bool { return w.full }

// Reset empties the window.
func (w *WindowMean) Reset() {
	w.head, w.full, w.sum = 0, false, 0
}
