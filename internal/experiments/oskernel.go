package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"radshield/internal/downlink"
	"radshield/internal/emr"
	"radshield/internal/guard"
	"radshield/internal/ild"
	"radshield/internal/linmodel"
	"radshield/internal/machine"
	"radshield/internal/resultcache"
	"radshield/internal/sched"
	"radshield/internal/trace"
)

// OS-fault campaign: the cross-layer characterization rig for kernel
// failures under Radshield. "Where Linux Breaks Under Radiation"
// (PAPERS.md) finds proton-induced *kernel* failures — panics, hangs,
// IO error storms — dominate on COTS SoCs; this campaign flies each
// class against a guarded arm (hardware watchdog fitted, supervisor
// hang/heartbeat detection on, recorder pages verified) and a bare arm
// (no watchdog, ILD alone, pages trusted blindly), paired on seeds, and
// measures detection latency, recovery time, events lost, and missed
// SELs per class.

// OSFaultCampaignConfig parameterizes the OS-fault sweep.
type OSFaultCampaignConfig struct {
	// SEL supplies the shared campaign parameters: mission Duration,
	// telemetry cadence, latchup period/magnitude, detection Window,
	// Seed, Workers, Telemetry, Cache.
	SEL SELConfig
	// Classes × Onsets is the sweep grid; each (class, onset) pair is
	// one paired trial.
	Classes []machine.OSFaultKind
	// Onsets are the mission times the fault strikes at; FaultDuration
	// bounds the window classes (ioburst, fscorrupt, schedstall). Panics
	// and hangs hold until a power cycle regardless.
	Onsets        []time.Duration
	FaultDuration time.Duration
	// WatchdogTimeout is the guarded arm's hardware watchdog; the bare
	// arm flies without one (the pre-Trikarenos COTS baseline).
	WatchdogTimeout time.Duration
	// IOErrorRate is the per-call failure probability during the
	// io_error_burst window.
	IOErrorRate float64
	// SnapshotEvery is the recorder's NVRAM page cadence —
	// the bounded-loss window a reboot rolls back to. HousekeepEvery is
	// the telemetry-record enqueue cadence; RecorderCap sizes the ring.
	SnapshotEvery  time.Duration
	HousekeepEvery time.Duration
	RecorderCap    int
	// Supervisor tunes the guarded arm's ladder; the campaign expects
	// HangAfter and HeartbeatTimeout enabled.
	Supervisor guard.SupervisorConfig
	// Watchdog, Stall and StallExecutor drive the scheduler_stall
	// class's EMR stage: the guarded runtime attaches the watchdog and
	// kills the starved executor's visits; the bare runtime just waits.
	Watchdog      guard.WatchdogConfig
	Stall         time.Duration
	StallExecutor int
}

// DefaultOSFaultCampaignConfig sweeps all five OS fault classes at two
// onsets — mid-mission and just past the second latchup — with a
// 30-second hardware watchdog on the guarded arm and supervisor
// hang/heartbeat detection enabled.
func DefaultOSFaultCampaignConfig() OSFaultCampaignConfig {
	sel := DefaultSELConfig()
	sel.Duration = 30 * time.Minute
	sel.SELEvery = 8 * time.Minute
	sup := guard.DefaultSupervisorConfig()
	sup.RefireWindow = 10 * time.Minute // covers the 3-minute bubble cadence
	sup.HangAfter = 50                  // half a second of wedged samples
	sup.HeartbeatTimeout = time.Second
	wd := guard.DefaultWatchdogConfig()
	wd.Deadline = 10 * time.Millisecond
	return OSFaultCampaignConfig{
		SEL: sel,
		Classes: []machine.OSFaultKind{
			machine.OSFaultKernelPanic,
			machine.OSFaultKernelHang,
			machine.OSFaultIOErrorBurst,
			machine.OSFaultSchedulerStall,
			machine.OSFaultFSCorruption,
		},
		Onsets:          []time.Duration{10 * time.Minute, 13 * time.Minute},
		FaultDuration:   7 * time.Minute, // spans the 16-minute SEL reboot
		WatchdogTimeout: 30 * time.Second,
		IOErrorRate:     0.9,
		SnapshotEvery:   30 * time.Second,
		HousekeepEvery:  10 * time.Second,
		RecorderCap:     256,
		Supervisor:      sup,
		Watchdog:        wd,
		Stall:           time.Second,
		StallExecutor:   1,
	}
}

// ParseOSFaultClasses resolves a comma-separated list of fault-class
// ids ("panic,hang,ioburst,schedstall,fscorrupt") to kinds; an empty
// string selects the default full grid.
func ParseOSFaultClasses(s string) ([]machine.OSFaultKind, error) {
	if s == "" {
		return DefaultOSFaultCampaignConfig().Classes, nil
	}
	var out []machine.OSFaultKind
	for _, part := range strings.Split(s, ",") {
		k, err := machine.ParseOSFaultKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// OSFaultTrial is one paired sweep point: the same mission flown with
// the full protection stack (guarded arm) and without it (bare arm),
// sharing seeds so the comparison is paired.
type OSFaultTrial struct {
	Class machine.OSFaultKind
	// Onset is the grid point's fault strike time.
	Onset time.Duration

	// DetectLatency is fault onset to the guarded arm's first OS-level
	// detection signal (heartbeat gap, hang cycle, rejected page, IO
	// error); RecoveryTime is onset to the first healthy sample after
	// the fault cleared. -1: never.
	DetectLatency time.Duration
	RecoveryTime  time.Duration

	WatchdogResets int // hardware watchdog firings (guarded arm)
	HangCycles     int // supervisor-commanded cycles for a wedged kernel
	IOErrors       int // injected IO failures seen (guarded arm)
	Recoveries     int // corrupt NVRAM pages detected and degraded

	EventsEnqueued, UnguardedEnqueued int
	EventsLost, UnguardedLost         int
	MissedSELs, UnguardedMissedSELs   int
	PowerCycles, UnguardedCycles      int
	// CleanReplay certifies the recorder invariant held all mission: a
	// failed restore left the recorder verifiably empty, a successful
	// one reproduced the page byte-for-byte — never wrong replay.
	CleanReplay, UnguardedCleanReplay bool
	Survived, UnguardedSurvived       bool

	// scheduler_stall EMR stage: the guarded runtime's watchdog kills
	// and degraded-retry verdicts, and the bare runtime's makespan
	// overrun from just waiting out the stalls.
	Kills          int
	TMRGolden      bool
	DegradedGolden bool
	StallOverrun   time.Duration
}

func encOSFaultTrial(e *resultcache.Enc, t OSFaultTrial) {
	e.Int(int64(t.Class))
	e.Duration(t.Onset)
	e.Duration(t.DetectLatency)
	e.Duration(t.RecoveryTime)
	e.Int(int64(t.WatchdogResets))
	e.Int(int64(t.HangCycles))
	e.Int(int64(t.IOErrors))
	e.Int(int64(t.Recoveries))
	e.Int(int64(t.EventsEnqueued))
	e.Int(int64(t.UnguardedEnqueued))
	e.Int(int64(t.EventsLost))
	e.Int(int64(t.UnguardedLost))
	e.Int(int64(t.MissedSELs))
	e.Int(int64(t.UnguardedMissedSELs))
	e.Int(int64(t.PowerCycles))
	e.Int(int64(t.UnguardedCycles))
	e.Bool(t.CleanReplay)
	e.Bool(t.UnguardedCleanReplay)
	e.Bool(t.Survived)
	e.Bool(t.UnguardedSurvived)
	e.Int(int64(t.Kills))
	e.Bool(t.TMRGolden)
	e.Bool(t.DegradedGolden)
	e.Duration(t.StallOverrun)
}

func decOSFaultTrial(d *resultcache.Dec) OSFaultTrial {
	return OSFaultTrial{
		Class:                machine.OSFaultKind(d.Int()),
		Onset:                d.Duration(),
		DetectLatency:        d.Duration(),
		RecoveryTime:         d.Duration(),
		WatchdogResets:       int(d.Int()),
		HangCycles:           int(d.Int()),
		IOErrors:             int(d.Int()),
		Recoveries:           int(d.Int()),
		EventsEnqueued:       int(d.Int()),
		UnguardedEnqueued:    int(d.Int()),
		EventsLost:           int(d.Int()),
		UnguardedLost:        int(d.Int()),
		MissedSELs:           int(d.Int()),
		UnguardedMissedSELs:  int(d.Int()),
		PowerCycles:          int(d.Int()),
		UnguardedCycles:      int(d.Int()),
		CleanReplay:          d.Bool(),
		UnguardedCleanReplay: d.Bool(),
		Survived:             d.Bool(),
		UnguardedSurvived:    d.Bool(),
		Kills:                int(d.Int()),
		TMRGolden:            d.Bool(),
		DegradedGolden:       d.Bool(),
		StallOverrun:         d.Duration(),
	}
}

// osArmResult is one arm's raw tallies.
type osArmResult struct {
	detectAt    time.Duration // absolute mission time, -1 never
	recoveredAt time.Duration
	recoveries  int
	enqueued    int
	lost        int
	missedSELs  int
	powerCycles int
	wdResets    int
	hangCycles  int
	ioErrors    int
	cleanReplay bool
	survived    bool
}

// OSFaultCampaign sweeps the OS fault classes against the protection
// stack and renders the comparison table. Trials fan out across the
// campaign scheduler; output is byte-identical at any worker width.
func OSFaultCampaign(c OSFaultCampaignConfig) ([]OSFaultTrial, *Table, error) {
	if len(c.Classes) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty OS-fault class grid")
	}
	for _, k := range c.Classes {
		switch k {
		case machine.OSFaultKernelPanic, machine.OSFaultKernelHang,
			machine.OSFaultIOErrorBurst, machine.OSFaultSchedulerStall,
			machine.OSFaultFSCorruption:
		default:
			return nil, nil, fmt.Errorf("experiments: invalid OS fault class %d", int(k))
		}
	}
	if len(c.Onsets) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty OS-fault onset grid")
	}
	for _, onset := range c.Onsets {
		if onset <= 0 {
			return nil, nil, fmt.Errorf("experiments: onset %v must be positive", onset)
		}
	}
	if c.FaultDuration <= 0 {
		return nil, nil, fmt.Errorf("experiments: FaultDuration must be positive")
	}
	if c.WatchdogTimeout <= 0 {
		return nil, nil, fmt.Errorf("experiments: WatchdogTimeout must be positive (the guarded arm's whole point)")
	}
	if !(c.IOErrorRate > 0 && c.IOErrorRate <= 1) {
		return nil, nil, fmt.Errorf("experiments: IOErrorRate %v must be in (0, 1]", c.IOErrorRate)
	}
	if c.SnapshotEvery <= 0 || c.HousekeepEvery <= 0 || c.RecorderCap < 1 {
		return nil, nil, fmt.Errorf("experiments: SnapshotEvery, HousekeepEvery and RecorderCap must be positive")
	}
	if c.Stall <= c.Watchdog.Deadline {
		return nil, nil, fmt.Errorf("experiments: Stall %v must exceed the watchdog deadline %v", c.Stall, c.Watchdog.Deadline)
	}
	if c.StallExecutor < 0 || c.StallExecutor >= emr.DefaultConfig().Executors {
		return nil, nil, fmt.Errorf("experiments: StallExecutor %d out of range", c.StallExecutor)
	}

	// The grid is classes × onsets, onset-major within a class; the
	// trial index participates in the key (the trial seed derives from
	// it), so reordering either axis recomputes — by design.
	grid := len(c.Classes) * len(c.Onsets)
	gridPoint := func(i int) (machine.OSFaultKind, time.Duration) {
		return c.Classes[i/len(c.Onsets)], c.Onsets[i%len(c.Onsets)]
	}
	cache := cacheArms(c.SEL.Cache, "oskernel/v2", grid,
		func(i int, e *resultcache.Enc) {
			class, onset := gridPoint(i)
			encSELConfig(e, c.SEL)
			e.Int(int64(class))
			e.Duration(onset)
			e.Duration(c.FaultDuration)
			e.Duration(c.WatchdogTimeout)
			e.Float(c.IOErrorRate)
			e.Duration(c.SnapshotEvery)
			e.Duration(c.HousekeepEvery)
			e.Int(int64(c.RecorderCap))
			encSupervisorConfig(e, c.Supervisor)
			e.Duration(c.Watchdog.Deadline)
			e.Int(int64(c.Watchdog.MaxStrikes))
			e.Int(int64(c.Watchdog.RetryLimit))
			e.Duration(c.Watchdog.BackoffBase)
			e.Duration(c.Stall)
			e.Int(int64(c.StallExecutor))
			e.Int(int64(i))
		},
		armCodec[OSFaultTrial]{enc: encOSFaultTrial, dec: decOSFaultTrial})

	var model *linmodel.Model
	if !cache.AllHit() {
		base, err := TrainILD(c.SEL)
		if err != nil {
			return nil, nil, err
		}
		model = base.Model()
	}

	trials, err := sched.Map(grid, c.SEL.Workers, func(i int) (OSFaultTrial, error) {
		return cache.CachedArm(i, func() (OSFaultTrial, error) {
			class, onset := gridPoint(i)
			seed := c.SEL.Seed + 5000 + int64(i)*31
			g, err := flyOSFaultArm(c, class, onset, model, seed, true)
			if err != nil {
				return OSFaultTrial{}, err
			}
			u, err := flyOSFaultArm(c, class, onset, model, seed, false)
			if err != nil {
				return OSFaultTrial{}, err
			}
			tr := OSFaultTrial{
				Class:          class,
				Onset:          onset,
				DetectLatency:  latencyFrom(g.detectAt, onset),
				RecoveryTime:   latencyFrom(g.recoveredAt, onset),
				WatchdogResets: g.wdResets, HangCycles: g.hangCycles,
				IOErrors: g.ioErrors, Recoveries: g.recoveries,
				EventsEnqueued: g.enqueued, UnguardedEnqueued: u.enqueued,
				EventsLost: g.lost, UnguardedLost: u.lost,
				MissedSELs: g.missedSELs, UnguardedMissedSELs: u.missedSELs,
				PowerCycles: g.powerCycles, UnguardedCycles: u.powerCycles,
				CleanReplay: g.cleanReplay, UnguardedCleanReplay: u.cleanReplay,
				Survived: g.survived, UnguardedSurvived: u.survived,
			}
			if class == machine.OSFaultSchedulerStall {
				if err := stallEMRStage(c, seed, &tr); err != nil {
					return OSFaultTrial{}, err
				}
			}
			return tr, nil
		})
	}, sched.WithTelemetry(c.SEL.Telemetry))
	if err != nil {
		return nil, nil, err
	}

	tbl := &Table{
		Title: fmt.Sprintf("OS-fault campaign: %v missions, %d onsets, watchdog %v (guarded arm only)",
			c.SEL.Duration, len(c.Onsets), c.WatchdogTimeout),
		Header: []string{"Class", "Onset", "Detect", "Recover", "WdReset", "HangCyc", "IOErr", "PageRecov",
			"Lost g/u", "MissedSEL g/u", "Cycles g/u", "CleanReplay g/u", "Survived g/u", "EMR stage"},
	}
	for _, tr := range trials {
		emrCol := "-"
		if tr.Class == machine.OSFaultSchedulerStall {
			verdict := func(ok bool) string {
				if ok {
					return "golden"
				}
				return "WRONG"
			}
			emrCol = fmt.Sprintf("kills=%d tmr=%s degraded=%s bare-overrun=%v",
				tr.Kills, verdict(tr.TMRGolden), verdict(tr.DegradedGolden), tr.StallOverrun)
		}
		tbl.AddRow(tr.Class.String(), tr.Onset.String(), latencyStr(tr.DetectLatency), latencyStr(tr.RecoveryTime),
			fmt.Sprint(tr.WatchdogResets), fmt.Sprint(tr.HangCycles), fmt.Sprint(tr.IOErrors),
			fmt.Sprint(tr.Recoveries),
			fmt.Sprintf("%d/%d", tr.EventsLost, tr.UnguardedLost),
			fmt.Sprintf("%d/%d", tr.MissedSELs, tr.UnguardedMissedSELs),
			fmt.Sprintf("%d/%d", tr.PowerCycles, tr.UnguardedCycles),
			fmt.Sprintf("%v/%v", tr.CleanReplay, tr.UnguardedCleanReplay),
			fmt.Sprintf("%v/%v", tr.Survived, tr.UnguardedSurvived),
			emrCol)
	}
	return trials, tbl, nil
}

// latencyFrom converts an absolute detection time to a latency from
// onset, preserving the -1 "never" sentinel.
func latencyFrom(at, onset time.Duration) time.Duration {
	if at < 0 {
		return -1
	}
	return at - onset
}

func latencyStr(d time.Duration) string {
	if d < 0 {
		return "never"
	}
	return d.Round(10 * time.Millisecond).String()
}

// flyOSFaultArm flies one mission arm: flight software with bubbles,
// latchups on the campaign period, the scheduled OS fault, and the
// flight recorder persisting NVRAM pages every SnapshotEvery. The
// guarded arm has the hardware watchdog fitted, routes samples through
// the supervisor (hang + heartbeat detection on), verifies every page
// before trusting it, and repairs a corrupt page at boot. The bare arm
// flies the paper's baseline: no watchdog, a lone ILD detector, pages
// written and restored blindly.
func flyOSFaultArm(c OSFaultCampaignConfig, class machine.OSFaultKind, onset time.Duration, model *linmodel.Model, seed int64, guarded bool) (osArmResult, error) {
	res := osArmResult{detectAt: -1, recoveredAt: -1, cleanReplay: true}
	det, err := ild.NewDetector(model, c.SEL.ildConfig())
	if err != nil {
		return res, err
	}
	var sup *guard.Supervisor
	if guarded {
		if sup, err = guard.NewSupervisor(det, c.Supervisor); err != nil {
			return res, err
		}
	}

	mc := c.SEL.machineConfig(seed)
	mc.Telemetry = nil // trials run in parallel; per-trial metrics stay local
	if guarded {
		mc.WatchdogTimeout = c.WatchdogTimeout
	}
	m := machine.New(mc)
	f := machine.OSFault{Kind: class, Start: onset}
	switch class {
	case machine.OSFaultIOErrorBurst:
		f.Duration, f.ErrorRate = c.FaultDuration, c.IOErrorRate
	case machine.OSFaultFSCorruption:
		f.Duration = c.FaultDuration
	case machine.OSFaultSchedulerStall:
		f.Duration, f.Executor = c.FaultDuration, c.StallExecutor
	}
	if err := m.ScheduleOSFault(f); err != nil {
		return res, err
	}

	rng := rand.New(rand.NewSource(seed + 3))
	mission := trace.FlightSoftware(rng, c.SEL.Duration, mc.Cores)
	mission = ild.InjectBubbles(mission, ild.BubblePolicy{
		BubbleLen: c.SEL.ildConfig().SustainFor + time.Second,
		Pause:     3 * time.Minute,
	})

	rec, err := downlink.NewRecorder(c.RecorderCap)
	if err != nil {
		return res, err
	}
	// scratch is the guarded arm's write-verify target: a page is only
	// trusted after it round-trips through the real decoder.
	scratch, err := downlink.NewRecorder(c.RecorderCap)
	if err != nil {
		return res, err
	}
	corrupter := rand.New(rand.NewSource(seed + 17))
	page := rec.Snapshot() // the factory NVRAM image: a valid empty page

	detect := func(t time.Duration) {
		if guarded && res.detectAt < 0 {
			res.detectAt = t
		}
	}

	// reboot reloads the recorder from the NVRAM page — the volatile
	// ring died with the rail. The guarded arm treats a corrupt page as
	// a detection, verifies the degraded (empty) state, and immediately
	// rewrites a fresh page so the corruption cannot re-bite every
	// boot; the bare arm never looks at the error.
	reboot := func(t time.Duration) {
		if err := rec.Restore(page); err != nil {
			if rec.Len() != 0 {
				res.cleanReplay = false
			}
			if guarded {
				detect(t)
				res.recoveries++
				page = rec.Snapshot()
			}
		} else if !bytes.Equal(rec.Snapshot(), page) {
			res.cleanReplay = false
		}
	}

	// save persists one NVRAM page. An injected IO error tears the bare
	// arm's page mid-write; the guarded arm keeps the last good page
	// instead. The fs_corruption window damages the written bytes for
	// both arms — the guarded arm's read-back verification refuses the
	// page, the bare arm trusts it.
	save := func(t time.Duration) {
		fresh := rec.Snapshot()
		if err := m.IOCheck("nvram_write"); err != nil {
			if guarded {
				detect(t)
			} else {
				page = downlink.CorruptSnapshot(fresh, corrupter, "torn")
			}
			return
		}
		written := fresh
		if _, active := m.OSFaultActive(machine.OSFaultFSCorruption); active {
			written = downlink.CorruptSnapshot(written, corrupter, "bitflip")
		}
		if guarded && scratch.Restore(written) != nil {
			detect(t)
			res.recoveries++
			return // keep the last good page
		}
		page = written
	}

	nextSEL := c.SEL.SELEvery
	if class == machine.OSFaultKernelPanic {
		// Prime a latchup right before the panic: the recovery question
		// for this class is whether the watchdog reset clears an SEL the
		// dead board can no longer see, inside the detection window.
		nextSEL = onset - c.SEL.SampleEvery
	}
	selSince := time.Duration(-1)
	missedCounted := false
	knownCycles := 0
	nextSave := c.SnapshotEvery
	nextHousekeep := c.HousekeepEvery
	faultSeen := false
	var hkPayload [8]byte

	m.RunTrace(mission, func(tel machine.Telemetry) {
		// A power cycle is a reboot no matter who commanded it — the
		// hardware watchdog and the supply trip fire inside the machine,
		// so every callback starts by reconciling the cycle count.
		if pc := m.PowerCycles(); pc > knownCycles {
			knownCycles = pc
			reboot(tel.T)
			if guarded {
				sup.NotePowerCycle(tel.T)
			} else {
				det.Reset()
			}
		}
		cycleNow := func() {
			m.PowerCycle()
			knownCycles = m.PowerCycles()
			reboot(tel.T)
			if guarded {
				sup.NotePowerCycle(tel.T)
			} else {
				det.Reset()
			}
		}

		_, active := m.OSFaultActive(class)
		if tel.T >= onset {
			faultSeen = true
		}
		if faultSeen && !active && res.recoveredAt < 0 {
			res.recoveredAt = tel.T
		}

		// Latchup episode bookkeeping: one SEL at a time, the next one
		// a period after the previous clears.
		if selSince >= 0 && !m.SELActive() {
			selSince = -1
			nextSEL = tel.T + c.SEL.SELEvery
		}
		if selSince < 0 && tel.T >= nextSEL && !m.Damaged() {
			injectSEL(m, c.SEL.SELAmps)
			selSince = tel.T
			missedCounted = false
		}
		if selSince >= 0 && !missedCounted && tel.T-selSince > c.SEL.Window {
			res.missedSELs++
			missedCounted = true
		}

		// Housekeeping: one telemetry record per period, plus the EMR
		// frontier read the flight software does on the same tick (an
		// injected failure there just retries next tick; the machine
		// counts it).
		if tel.T >= nextHousekeep {
			nextHousekeep += c.HousekeepEvery
			_ = m.IOCheck("emr_frontier_read")
			binary.LittleEndian.PutUint64(hkPayload[:], uint64(tel.T))
			if _, _, err := rec.Enqueue(0, hkPayload[:], tel.T); err == nil {
				res.enqueued++
			}
		}

		// NVRAM page save. A hung kernel cannot write the page (the
		// syscall never returns); a dead one never reaches this code.
		if tel.T >= nextSave {
			nextSave += c.SnapshotEvery
			if !m.KernelHung() {
				save(tel.T)
			}
		}

		if !guarded {
			if det.Observe(tel) && !m.KernelHung() {
				// A software-commanded power cycle needs a live kernel to
				// run the rail-control code; a hung board cannot save
				// itself. (The guarded arm's supervisor drives an external
				// hardware power switch instead.)
				cycleNow()
			}
			return
		}
		d := sup.Observe(tel)
		// Only the unambiguous OS-level signals count as detection:
		// a heartbeat gap (the board went silent) or a hang cycle (the
		// counter surface wedged). d.Fired is the SEL path doing its
		// ordinary job.
		if d.HangCycle || d.HeartbeatGap {
			detect(tel.T)
		}
		if d.Fired || d.BlindCycle || d.HangCycle {
			cycleNow()
		}
	})

	// End-of-mission sweep: an SEL still burning when the trace ran out
	// (a dead bare board stops sampling but keeps heating) is missed if
	// it outlived the window.
	if selSince >= 0 && !missedCounted && c.SEL.Duration-selSince > c.SEL.Window {
		res.missedSELs++
	}

	res.lost = res.enqueued - rec.Len()
	res.powerCycles = m.PowerCycles()
	res.wdResets = m.WatchdogResets()
	res.ioErrors = m.IOErrors()
	if guarded {
		res.hangCycles = sup.HangCycles()
	}
	res.survived = !m.Damaged()
	return res, nil
}

// stallEMRStage runs the scheduler_stall class's EMR comparison and
// fills the trial's EMR columns: the guarded runtime (watchdog
// attached) kills the starved executor's visits and retries under the
// degraded plan; the bare runtime waits out every stall, and the
// makespan overrun is the price.
func stallEMRStage(c OSFaultCampaignConfig, seed int64, tr *OSFaultTrial) error {
	wc := WatchdogCampaignConfig{
		Datasets: 4,
		Chunk:    256,
		Seed:     seed,
		Watchdog: c.Watchdog,
		Stall:    c.Stall,
	}
	g, err := watchdogTrialArm(wc, c.StallExecutor, "hang")
	if err != nil {
		return err
	}
	tr.Kills = g.Kills
	tr.TMRGolden = g.TMROutputs
	tr.DegradedGolden = g.Degraded
	if tr.Kills > 0 && tr.DetectLatency < 0 {
		// The watchdog's deadline is the detection latency for this
		// class: the first kill fires exactly one deadline into the
		// starved visit.
		tr.DetectLatency = c.Watchdog.Deadline
	}

	// Bare runtime: same stalls, no watchdog. The run still completes —
	// nothing kills the wedged visits — but the makespan absorbs every
	// stall in full.
	healthy, err := stallMakespan(wc, -1, 0)
	if err != nil {
		return err
	}
	stalled, err := stallMakespan(wc, c.StallExecutor, c.Stall)
	if err != nil {
		return err
	}
	tr.StallOverrun = stalled - healthy
	return nil
}

// stallMakespan runs the watchdog campaign's workload on an unwatched
// TMR runtime, stalling every visit of the given executor (-1: none),
// and returns the virtual makespan.
func stallMakespan(wc WatchdogCampaignConfig, executor int, stall time.Duration) (time.Duration, error) {
	rt, err := emr.New(emr.DefaultConfig())
	if err != nil {
		return 0, err
	}
	spec, err := watchdogSpec(rt, wc)
	if err != nil {
		return 0, err
	}
	if executor >= 0 {
		spec.Hook = func(hp *emr.HookPoint) {
			if hp.Phase == emr.PhaseAfterRead && hp.Executor == executor {
				hp.Stall = stall
			}
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		return 0, err
	}
	return res.Report.Makespan, nil
}
