package experiments

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"radshield/internal/downlink"
)

// equivDownlink is a short sweep, still covering loss, a blackout, a
// reboot and a beacon window, sized for test time.
func equivDownlink(workers int) DownlinkCampaignConfig {
	c := DefaultDownlinkCampaignConfig()
	c.Mission = 2 * time.Minute
	c.Drain = 6 * time.Minute
	c.EventEvery = 5 * time.Second
	c.HousekeepingEvery = 2500 * time.Millisecond
	c.BulkEvery = time.Second
	c.LossRates = []float64{0.2}
	c.BlackoutDurations = []time.Duration{0, 30 * time.Second}
	c.PowerCycleAt = 70 * time.Second
	c.BeaconFrom = 30 * time.Second
	c.BeaconFor = 20 * time.Second
	c.Workers = workers
	return c
}

func TestDownlinkCampaignRecoversPriorityZero(t *testing.T) {
	trials, tbl, err := DownlinkCampaign(equivDownlink(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 6 {
		t.Fatalf("trials = %d, want 2 blackouts × 3 policies", len(trials))
	}
	for _, tr := range trials {
		if !tr.P0Recovered {
			t.Errorf("loss=%g blackout=%v policy=%v: lost priority-0 events (%d/%d)",
				tr.Loss, tr.Blackout, tr.Policy, tr.P0Delivered, tr.P0Enqueued)
		}
		if tr.Retransmits == 0 {
			t.Errorf("loss=%g blackout=%v policy=%v: a lossy arm that never retransmitted is not being stressed",
				tr.Loss, tr.Blackout, tr.Policy)
		}
		if tr.DrainedAt < 0 {
			t.Errorf("loss=%g blackout=%v policy=%v: backlog never drained", tr.Loss, tr.Blackout, tr.Policy)
		}
		if tr.CleanDrainedAt < 0 || (tr.DrainedAt >= 0 && tr.CleanDrainedAt > tr.DrainedAt) {
			t.Errorf("clean arm drained at %v, lossy at %v — impairments should never help",
				tr.CleanDrainedAt, tr.DrainedAt)
		}
		if tr.Beacons == 0 {
			t.Errorf("beacon window scheduled but no heartbeat sent")
		}
	}
	if tbl.String() == "" {
		t.Fatal("empty table")
	}
}

func TestDownlinkCampaignValidation(t *testing.T) {
	c := DefaultDownlinkCampaignConfig()
	c.Mission = 0
	if _, _, err := DownlinkCampaign(c); err == nil {
		t.Fatal("zero mission accepted")
	}
	c = DefaultDownlinkCampaignConfig()
	c.LossRates = nil
	if _, _, err := DownlinkCampaign(c); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestParallelEquivalenceDownlinkCampaign(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		_, tbl, err := DownlinkCampaign(equivDownlink(workers))
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

// TestDownlinkEndToEndGroundstation verifies the full chain the
// -downlink flag wires up: a simulated spacecraft (transmitter + lossy
// link) speaking over real TCP to the concurrent ground-station server
// that cmd/groundstation wraps. Every priority-0 event must survive
// drop, corruption and a blackout, end to end, with ACKs riding the
// same socket back.
func TestDownlinkEndToEndGroundstation(t *testing.T) {
	st := downlink.NewStation(downlink.DefaultStationConfig())
	srv, err := downlink.NewServer(st, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// ACKs come back on the same socket, read by a pump goroutine; the
	// simulation loop drains them into the link's up pipe each tick.
	var mu sync.Mutex
	var ackQueue [][]byte
	go func() {
		br := bufio.NewReader(conn)
		for {
			raw, err := downlink.ReadFrame(br)
			if err != nil {
				return
			}
			mu.Lock()
			ackQueue = append(ackQueue, raw)
			mu.Unlock()
		}
	}()

	link, err := downlink.NewLink(downlink.LinkConfig{
		RateBps: 4096, AckRateBps: 1024, Latency: 50 * time.Millisecond, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := link.ScheduleLinkFault(downlink.LinkFault{Start: 0, Duration: 2 * time.Minute, Drop: 0.25, Corrupt: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := link.ScheduleBlackout(downlink.Blackout{Start: 40 * time.Second, Duration: 20 * time.Second}); err != nil {
		t.Fatal(err)
	}
	tx, err := downlink.NewTransmitter(link, downlink.DefaultTxConfig(1))
	if err != nil {
		t.Fatal(err)
	}

	const events = 30
	step := 100 * time.Millisecond
	var enqueued int
	deadline := 20 * time.Minute // simulated
	for now := step; now <= deadline; now += step {
		if enqueued < events && now >= time.Duration(enqueued+1)*2*time.Second {
			if err := tx.Enqueue(0, []byte(time.Duration(enqueued).String()), now); err != nil {
				t.Fatal(err)
			}
			enqueued++
		}
		if err := tx.Tick(now); err != nil {
			t.Fatal(err)
		}
		// Space→ground: frames surviving the lossy link go out over TCP.
		for _, raw := range link.RecvDown(now) {
			if _, err := conn.Write(raw); err != nil {
				t.Fatal(err)
			}
		}
		// Ground→space: ACKs the server produced ride the link's up pipe
		// (they are subject to the same impairments).
		mu.Lock()
		pending := ackQueue
		ackQueue = nil
		mu.Unlock()
		for _, ack := range pending {
			link.SendUp(ack, now)
		}
		if enqueued == events && tx.Done() {
			break
		}
		// Real TCP is in the loop: give the server a moment to answer so
		// the sim does not spin ahead of the socket.
		if now%(time.Second) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	if !tx.Done() {
		t.Fatalf("backlog never drained: pending=%d stats=%+v link=%+v", tx.Pending(), tx.Stats(), link.Stats())
	}
	if got := st.Delivered(1, 0); got != events {
		t.Fatalf("ground delivered %d/%d priority-0 events", got, events)
	}
	if tx.Stats().Retransmits == 0 {
		t.Fatal("lossy end-to-end run never retransmitted — the link was not stressed")
	}
	if ls := link.Stats(); ls.Dropped == 0 || ls.BlackoutLost == 0 {
		t.Fatalf("impairments never fired: %+v", ls)
	}
}
