package experiments

import (
	"testing"
	"time"

	"radshield/internal/guard"
	"radshield/internal/power"
)

// equivGuard is a short guard campaign: a mid-mission permanent fault
// with latchups frequent enough that both arms see episodes before and
// during the sensor outage.
func equivGuard(workers int) GuardCampaignConfig {
	c := DefaultGuardCampaignConfig()
	c.SEL.Duration = 12 * time.Minute
	c.SEL.SELEvery = 2 * time.Minute
	c.SEL.Workers = workers
	c.Kinds = []power.FaultKind{power.FaultStuck, power.FaultDropout}
	c.Onsets = []time.Duration{4 * time.Minute}
	c.FaultDurations = []time.Duration{0}
	return c
}

// TestGuardCampaignStuckSensorAcceptance is the ISSUE acceptance
// criterion: seed a stuck-at current-sensor fault mid-mission and show
// the guard demotes ILD to the static-threshold rung within a bounded
// number of samples, with zero missed SELs attributable to the stuck
// sensor — while the unguarded arm goes blind and loses the board.
func TestGuardCampaignStuckSensorAcceptance(t *testing.T) {
	c := equivGuard(1)
	c.Kinds = []power.FaultKind{power.FaultStuck}
	trials, tbl, err := GuardCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 1 {
		t.Fatalf("trials = %d, want 1", len(trials))
	}
	tr := trials[0]

	// Demotion latency is hard-bounded: StuckAfter repeats to recognise
	// the frozen register plus BadAfter verdicts to walk down a rung.
	bound := c.Supervisor.Health.StuckAfter + c.Supervisor.BadAfter
	if tr.DetectSamples < 0 || tr.DetectSamples > bound {
		t.Fatalf("DetectSamples = %d, want within (0, %d]", tr.DetectSamples, bound)
	}
	// A permanently stuck sensor walks the whole ladder down: the static
	// rung reads the same frozen register.
	if tr.FinalMode != guard.ModeHardwareTrip {
		t.Fatalf("FinalMode = %v, want hardware_trip", tr.FinalMode)
	}
	if tr.BlindCycles == 0 {
		t.Fatal("no precautionary blind cycles during the outage")
	}
	if tr.MissedSELs != 0 {
		t.Fatalf("guarded arm missed %d SELs, want 0", tr.MissedSELs)
	}
	if !tr.Survived {
		t.Fatal("guarded arm lost the board")
	}
	// The unguarded detector is blind behind the frozen reading: the
	// next latchup festers past the window and the board burns.
	if tr.UnguardedMissedSELs == 0 {
		t.Fatal("unguarded arm missed nothing — the fault model has no teeth")
	}
	if tr.UnguardedSurvived {
		t.Fatal("unguarded arm survived a blind permanent latchup")
	}
	if tbl.String() == "" {
		t.Fatal("empty table rendering")
	}
}

// TestGuardCampaignFalseHealthyBounded: the false-healthy window for a
// stuck fault is the recognition run itself, so it cannot exceed
// StuckAfter samples' worth of time.
func TestGuardCampaignFalseHealthyBounded(t *testing.T) {
	c := equivGuard(1)
	c.Kinds = []power.FaultKind{power.FaultStuck}
	trials, _, err := GuardCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	limit := time.Duration(c.Supervisor.Health.StuckAfter+1) * c.SEL.SampleEvery
	if fh := trials[0].FalseHealthy; fh <= 0 || fh > limit {
		t.Fatalf("FalseHealthy = %v, want within (0, %v]", fh, limit)
	}
	if trials[0].DegradedDwell == 0 {
		t.Fatal("permanent fault produced no degraded dwell")
	}
}

// TestWatchdogCampaignDegradesAndRecovers: every executor × cause point
// must keep outputs golden under TMR despite the bad core, settle on
// the DMR+checksum plan, and produce golden outputs again on the
// degraded retry.
func TestWatchdogCampaignDegradesAndRecovers(t *testing.T) {
	c := DefaultWatchdogCampaignConfig()
	trials, tbl, err := WatchdogCampaign(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 6 {
		t.Fatalf("trials = %d, want 3 executors x 2 causes", len(trials))
	}
	for _, tr := range trials {
		if !tr.TMROutputs {
			t.Errorf("executor %d %s: TMR outputs wrong despite 2-of-3 vote", tr.Executor, tr.Cause)
		}
		if !tr.Degraded {
			t.Errorf("executor %d %s: degraded retry outputs wrong", tr.Executor, tr.Cause)
		}
		if tr.Mode != guard.RedundancyDMRChecksum {
			t.Errorf("executor %d %s: mode = %v, want dmr_checksum", tr.Executor, tr.Cause, tr.Mode)
		}
		if tr.Backoff != c.Watchdog.BackoffBase {
			t.Errorf("executor %d %s: backoff = %v, want %v", tr.Executor, tr.Cause, tr.Backoff, c.Watchdog.BackoffBase)
		}
		switch tr.Cause {
		case "hang":
			if tr.Kills != c.Datasets || tr.Crashes != 0 {
				t.Errorf("hang trial executor %d: kills/crashes = %d/%d, want %d/0",
					tr.Executor, tr.Kills, tr.Crashes, c.Datasets)
			}
		case "crash":
			if tr.Crashes != c.Datasets || tr.Kills != 0 {
				t.Errorf("crash trial executor %d: kills/crashes = %d/%d, want 0/%d",
					tr.Executor, tr.Kills, tr.Crashes, c.Datasets)
			}
		}
	}
	if tbl.String() == "" {
		t.Fatal("empty table rendering")
	}
}

func TestParallelEquivalenceGuardCampaign(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		_, tbl, err := GuardCampaign(equivGuard(workers))
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceWatchdogCampaign(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		c := DefaultWatchdogCampaignConfig()
		c.Workers = workers
		_, tbl, err := WatchdogCampaign(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}
