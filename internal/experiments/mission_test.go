package experiments

import (
	"testing"
	"time"
)

func TestMissionSurvivalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo mission campaign")
	}
	c := DefaultMissionConfig()
	c.Missions = 3
	c.Duration = 8 * time.Hour
	protected, unprotected, tbl, err := MissionSurvival(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if protected.Survived != c.Missions {
		t.Errorf("Radshield arm survived %d/%d missions", protected.Survived, c.Missions)
	}
	if protected.LatchupsCleared == 0 {
		t.Error("no latchups cleared — boost rates for a meaningful campaign")
	}
	if unprotected.Survived == c.Missions {
		t.Error("unprotected arm survived everything — environment too gentle")
	}
	if unprotected.LostToLatchup == 0 {
		t.Error("no latchup losses in the unprotected arm")
	}
}
