package experiments

import (
	"bytes"
	"testing"

	"radshield/internal/emr"
	"radshield/internal/telemetry"
	"radshield/internal/workloads"
)

// TestRuntimeResetEquivalence pins the invariant the pool depends on: a
// Reset runtime replays a workload byte-identically to its own fresh
// run — same outputs, same makespan, same vote accounting — so trial
// results cannot depend on whether getRuntime recycled a device.
func TestRuntimeResetEquivalence(t *testing.T) {
	cfg := emr.DefaultConfig()
	rt, err := emr.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *emr.Result {
		spec, err := workloads.ImageProcessing().Build(rt, 32<<10, 2026)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fresh := run()
	rt.Reset()
	reused := run()

	if len(fresh.Outputs) != len(reused.Outputs) {
		t.Fatalf("output counts differ: %d fresh vs %d reused", len(fresh.Outputs), len(reused.Outputs))
	}
	for i := range fresh.Outputs {
		if !bytes.Equal(fresh.Outputs[i], reused.Outputs[i]) {
			t.Errorf("output %d differs between fresh and reset runs", i)
		}
	}
	if fresh.Report.Makespan != reused.Report.Makespan {
		t.Errorf("makespan differs: %v fresh vs %v reused (cache state leaked through Reset?)",
			fresh.Report.Makespan, reused.Report.Makespan)
	}
	if fresh.Report.Votes != reused.Report.Votes {
		t.Errorf("vote accounting differs: %+v fresh vs %+v reused", fresh.Report.Votes, reused.Report.Votes)
	}
}

// TestRuntimePoolCounters checks the hit/miss instrumentation: the first
// getRuntime for a config is a miss, a get after a put is (normally) a
// hit, and hits hand back a device that behaves like new.
func TestRuntimePoolCounters(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.DefaultEventCap)
	cfg := emr.DefaultConfig()
	cfg.DRAMSize = 8 << 20
	cfg.StorageSize = 8 << 20
	cfg.Telemetry = reg

	hits := reg.Counter("emr_pool_hits_total", "runtimes")
	misses := reg.Counter("emr_pool_misses_total", "runtimes")

	rt, err := getRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if misses.Value() != 1 || hits.Value() != 0 {
		t.Fatalf("first get: hits=%d misses=%d, want 0/1", hits.Value(), misses.Value())
	}
	putRuntime(cfg, rt)
	rt2, err := getRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer putRuntime(cfg, rt2)
	// sync.Pool may legally drop the device under GC pressure, so assert
	// accounting consistency rather than a guaranteed hit.
	if hits.Value()+misses.Value() != 2 {
		t.Errorf("after put+get: hits=%d misses=%d, want total 2", hits.Value(), misses.Value())
	}
}
