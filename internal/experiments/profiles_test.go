package experiments

import (
	"testing"
	"time"
)

func TestMissionProfilesDetectionOpportunities(t *testing.T) {
	stats, tbl := MissionProfiles(1, 0)
	t.Logf("\n%s", tbl)
	if len(stats) != 4 {
		t.Fatalf("profiles = %d", len(stats))
	}
	byName := map[string]ProfileStats{}
	for _, s := range stats {
		byName[s.Profile] = s
	}
	// §3.1's premise: every real mission profile has frequent natural
	// quiescence.
	for _, name := range []string{"leo-smallsat", "mars-sol", "deep-space-cruise"} {
		s := byName[name]
		if s.QuiescentFraction < 0.3 {
			t.Errorf("%s: quiescent fraction %.2f unexpectedly low", name, s.QuiescentFraction)
		}
		if s.OpportunitiesPerHour < 10 {
			t.Errorf("%s: %.1f opportunities/hr, want plenty", name, s.OpportunitiesPerHour)
		}
	}
	// Cruise is the quietest profile.
	if byName["deep-space-cruise"].QuiescentFraction <= byName["ground-testbed"].QuiescentFraction {
		t.Error("cruise not quieter than the ground testbed")
	}
	// Bubbles bound the worst gap to ≈ the pause period everywhere.
	for _, s := range stats {
		if s.WorstGapBubbled > 4*time.Minute {
			t.Errorf("%s: bubbled worst gap %v exceeds the pause+bubble bound", s.Profile, s.WorstGapBubbled)
		}
		if s.WorstGapBubbled > s.WorstGap {
			t.Errorf("%s: bubbles worsened the gap (%v → %v)", s.Profile, s.WorstGap, s.WorstGapBubbled)
		}
	}
}
