package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/ild"
	"radshield/internal/linmodel"
	"radshield/internal/machine"
	"radshield/internal/resultcache"
	"radshield/internal/sched"
	"radshield/internal/trace"
)

// ThresholdPoint is one row of the decision-threshold sweep.
type ThresholdPoint struct {
	ThresholdA        float64
	FalseNegativeRate float64 // per SEL episode
	FalsePositiveRate float64 // per clean quiescent sample
}

// ThresholdSweep reproduces the paper's threshold-selection procedure
// (§3.1): "a difference between 0.04A to 0.08A was tested against
// simulated datasets in 0.005A increments, and 0.055A presented no false
// negative rates while minimizing false positive rates."
//
// For each candidate threshold, one detector (same trained model)
// observes clean quiescence (counting per-sample false positives) and
// +0.07 A SEL episodes (counting per-episode misses).
func ThresholdSweep(c SELConfig, episodes int) ([]ThresholdPoint, *Table, error) {
	// Every candidate threshold re-runs the identical campaign (same
	// machine seeds, same traces) with its own detector instance over the
	// shared read-only model, so levels are independent scheduler trials.
	thresholds := []float64{0.040, 0.045, 0.050, 0.055, 0.060, 0.065, 0.070, 0.075, 0.080}

	cache := cacheArms(c.Cache, "threshold/v1", len(thresholds),
		func(ti int, e *resultcache.Enc) {
			encSELConfig(e, c)
			e.Int(int64(episodes))
			e.Float(thresholds[ti])
		},
		armCodec[ThresholdPoint]{
			enc: func(e *resultcache.Enc, p ThresholdPoint) {
				e.Float(p.ThresholdA)
				e.Float(p.FalseNegativeRate)
				e.Float(p.FalsePositiveRate)
			},
			dec: func(d *resultcache.Dec) ThresholdPoint {
				return ThresholdPoint{
					ThresholdA:        d.Float(),
					FalseNegativeRate: d.Float(),
					FalsePositiveRate: d.Float(),
				}
			},
		})

	var model *linmodel.Model
	if !cache.AllHit() {
		base, err := TrainILD(c)
		if err != nil {
			return nil, nil, err
		}
		model = base.Model()
	}

	tbl := &Table{
		Title:  "Decision-threshold sweep (paper §3.1: 0.055 A chosen)",
		Header: []string{"Threshold (A)", "FalseNegRate", "FalsePosRate"},
	}
	points, err := sched.Map(len(thresholds), c.Workers, func(ti int) (ThresholdPoint, error) {
		return cache.CachedArm(ti, func() (ThresholdPoint, error) {
			return thresholdLevel(c, model, thresholds[ti], episodes)
		})
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, nil, err
	}
	for _, p := range points {
		tbl.AddRow(fmt.Sprintf("%.3f", p.ThresholdA), pct(p.FalseNegativeRate), pct(p.FalsePositiveRate))
	}
	return points, tbl, nil
}

// thresholdLevel computes one candidate threshold's campaign arm.
func thresholdLevel(c SELConfig, model *linmodel.Model, th float64, episodes int) (ThresholdPoint, error) {
	cfg := c.ildConfig()
	cfg.ThresholdA = th
	det, err := ild.NewDetector(model, cfg)
	if err != nil {
		return ThresholdPoint{}, err
	}

	// Clean phase: long quiescence, no SEL — count FP samples.
	m := machine.New(c.machineConfig(c.Seed + 700))
	rng := rand.New(rand.NewSource(c.Seed + 701))
	fp, clean := 0, 0
	m.RunTrace(trace.Quiescent(rng, 4*time.Minute, 15*time.Second), func(tel machine.Telemetry) {
		clean++
		if det.Observe(tel) {
			fp++
		}
	})

	// Episode phase: SEL episodes at the paper's minimum magnitude.
	missed := 0
	for ep := 0; ep < episodes; ep++ {
		det.Reset()
		injectSEL(m, c.SELAmps)
		hit := false
		m.RunTrace(trace.Quiescent(rng, time.Minute, 15*time.Second), func(tel machine.Telemetry) {
			if det.Observe(tel) {
				hit = true
			}
		})
		m.ClearSEL()
		det.Reset()
		m.RunTrace(trace.Quiescent(rng, 15*time.Second, 10*time.Second), nil)
		if !hit {
			missed++
		}
	}

	return ThresholdPoint{
		ThresholdA:        th,
		FalseNegativeRate: float64(missed) / float64(episodes),
		FalsePositiveRate: float64(fp) / float64(clean),
	}, nil
}
