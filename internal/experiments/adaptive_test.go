package experiments

import (
	"testing"
	"time"

	"radshield/internal/adapt"
	"radshield/internal/fault"
	"radshield/internal/mission"
)

// equivAdaptiveProfiles are the test-scale mission profiles: one
// SAA-crossing LEO orbit and one storm drill, both ~18 minutes, with
// quiet cruise on either side of the hot phase so the quiet-overhead
// comparison has contacts landing in both buckets.
func equivAdaptiveProfiles() []mission.Profile {
	return []mission.Profile{
		{
			Name: "mini-leo-saa",
			Base: fault.LEO,
			Phase: []mission.Phase{
				mission.NewPhase(mission.PhaseLEO, 6*time.Minute),
				mission.NewPhase(mission.PhaseSAA, 6*time.Minute),
				mission.NewPhase(mission.PhaseLEO, 6*time.Minute),
			},
		},
		{
			Name: "mini-storm",
			Base: fault.LEO,
			Phase: []mission.Phase{
				mission.NewPhase(mission.PhaseLEO, 6*time.Minute),
				mission.NewPhase(mission.PhaseSolarStorm, 5*time.Minute),
				mission.NewPhase(mission.PhaseLEO, 7*time.Minute),
			},
		},
	}
}

// equivAdaptive shrinks the adaptive campaign to test scale: 18-minute
// missions, contacts every 5 minutes, a controller wound tight enough
// (short window, short dwell) that the hot phase drives visible ladder
// moves within the mission.
func equivAdaptive(workers int) AdaptiveCampaignConfig {
	c := DefaultAdaptiveCampaignConfig()
	c.SEL.Workers = workers
	c.Profiles = equivAdaptiveProfiles()
	c.RateBoost = 60000
	c.ContactEvery = 5 * time.Minute
	c.Controller.Window = 4 * time.Minute
	c.Controller.HoldFor = 5 * time.Minute
	c.Drain = 5 * time.Minute
	return c
}

func TestAdaptiveCampaignValidation(t *testing.T) {
	for i, mod := range []func(*AdaptiveCampaignConfig){
		func(c *AdaptiveCampaignConfig) { c.Profiles = nil },
		func(c *AdaptiveCampaignConfig) { c.Profiles = []mission.Profile{{Name: "empty", Base: fault.LEO}} },
		func(c *AdaptiveCampaignConfig) { c.RateBoost = 0 },
		func(c *AdaptiveCampaignConfig) { c.ContactEvery = 0 },
		func(c *AdaptiveCampaignConfig) { c.LinkLoss = 1 },
		func(c *AdaptiveCampaignConfig) { c.LinkLoss = -0.1 },
		func(c *AdaptiveCampaignConfig) { c.Controller.Window = -time.Second },
		func(c *AdaptiveCampaignConfig) { c.Controller.RelaxBelow = c.Controller.EscalateAt },
	} {
		c := DefaultAdaptiveCampaignConfig()
		mod(&c)
		if _, _, err := AdaptiveCampaign(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestAdaptiveCampaignOutcomes is the ISSUE acceptance shape at test
// scale: on every profile the adaptive arm's survival and missed-SEL
// numbers are no worse than the always-max static arm's, while its
// quiet-phase protection overhead (bubble time and payload energy) is
// measurably lower.
func TestAdaptiveCampaignOutcomes(t *testing.T) {
	trials, tbl, err := AdaptiveCampaign(equivAdaptive(0))
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(trials) != 2 {
		t.Fatalf("got %d trials, want 2", len(trials))
	}
	var moves int
	for _, tr := range trials {
		st, ad := tr.Static, tr.Adaptive
		if !st.Survived {
			t.Errorf("%s: static arm lost the board — the testbed is broken", tr.Profile)
		}
		if ad.Survived != st.Survived {
			t.Errorf("%s: adaptive survived=%v, static=%v", tr.Profile, ad.Survived, st.Survived)
		}
		if ad.MissedSELs > st.MissedSELs {
			t.Errorf("%s: adaptive missed %d SELs, static %d", tr.Profile, ad.MissedSELs, st.MissedSELs)
		}
		if ad.SDC && !st.SDC {
			t.Errorf("%s: adaptive arm downlinked corrupt data, static did not", tr.Profile)
		}
		// The overhead claim: measurably cheaper quiet phases.
		if ad.QuietBubble >= st.QuietBubble {
			t.Errorf("%s: adaptive quiet bubble time %v not below static %v",
				tr.Profile, ad.QuietBubble, st.QuietBubble)
		}
		if st.QuietJ > 0 && ad.QuietJ >= st.QuietJ {
			t.Errorf("%s: adaptive quiet payload energy %.1f J not below static %.1f J",
				tr.Profile, ad.QuietJ, st.QuietJ)
		}
		// The static arm's posture never moves; its dwell is all-max.
		if st.FinalLevel != adapt.LevelMax || st.Dwell[adapt.LevelMax] == 0 {
			t.Errorf("%s: static arm dwell %v final %v", tr.Profile, st.Dwell, st.FinalLevel)
		}
		moves += len(tr.Moves)
		for i := 1; i < len(tr.Moves); i++ {
			if tr.Moves[i].T < tr.Moves[i-1].T {
				t.Errorf("%s: decision trace out of order at move %d", tr.Profile, i)
			}
		}
		if ad.P0Enqueued == 0 || st.P0Enqueued == 0 {
			t.Errorf("%s: no priority events enqueued (ad=%d st=%d)", tr.Profile, ad.P0Enqueued, st.P0Enqueued)
		}
	}
	// Across the hot-phase profiles the controller must actually move:
	// an empty campaign-wide trace means the closed loop is dead.
	if moves == 0 {
		t.Error("no ladder moves across any profile — controller never engaged")
	}
}
