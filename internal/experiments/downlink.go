package experiments

import (
	"fmt"
	"time"

	"radshield/internal/downlink"
	"radshield/internal/resultcache"
	"radshield/internal/sched"
	"radshield/internal/telemetry"
)

// Downlink campaign: the comms subsystem under radio stress. Every
// trial flies the same telemetry-producing mission twice — once over a
// lossy link (drop/corrupt/reorder plus a loss-of-contact blackout) and
// once over a clean link with the same seed — and measures what the
// ARQ machinery recovers: the paper's protection story only matters if
// the evidence reaches the ground.

// DownlinkCampaignConfig parameterizes the loss × blackout × policy
// sweep.
type DownlinkCampaignConfig struct {
	// Mission is the on-orbit segment generating telemetry; Drain is the
	// post-mission contact extension in which ARQ may finish; Step is
	// the simulation tick.
	Mission time.Duration
	Drain   time.Duration
	Step    time.Duration

	// Cadences for the three traffic classes: priority-0 events (vc0),
	// housekeeping (vc1), bulk science (vc3). Zero disables a class.
	EventEvery        time.Duration
	HousekeepingEvery time.Duration
	BulkEvery         time.Duration

	// The sweep grid. LossRate r maps to drop r, corrupt r/2, reorder
	// r/4, active for the whole trial (drain included). Blackout 0 means
	// no loss-of-contact window; otherwise one blackout of the given
	// length opens at Mission/3.
	LossRates         []float64
	BlackoutDurations []time.Duration
	Policies          []downlink.Policy

	// Link is the radio operating point; its Seed is overridden per
	// trial so paired arms share one and distinct trials do not.
	Link downlink.LinkConfig
	// Window / RTO / RingCap override the transmitter defaults (zero
	// keeps the default).
	Window  int
	RTO     time.Duration
	RingCap int

	// PowerCycleAt reboots the flight side mid-mission (volatile ARQ
	// state lost, flight recorder kept); 0 disables.
	PowerCycleAt time.Duration
	// BeaconFrom/BeaconFor simulate a guard-supervisor step-down window
	// during which the transmitter degrades to beacon mode; BeaconFor 0
	// disables. (ildmon wires the real supervisor callback; the campaign
	// schedules the window so its cost is measured deterministically.)
	BeaconFrom time.Duration
	BeaconFor  time.Duration

	Seed    int64
	Workers int
	// Telemetry, when non-nil, receives the campaign scheduler's
	// sched_* metrics.
	Telemetry *telemetry.Registry
	// Cache, when non-nil, replays trials whose inputs match a prior
	// run (see internal/resultcache). Must never change results.
	Cache *resultcache.Store
}

// DefaultDownlinkCampaignConfig sweeps light, heavy and severe loss,
// with no blackout, a two-minute and a five-minute blackout, across all
// three service policies, on a 10-minute mission with a mid-mission
// reboot and a 90-second guard step-down window.
func DefaultDownlinkCampaignConfig() DownlinkCampaignConfig {
	return DownlinkCampaignConfig{
		Mission:           10 * time.Minute,
		Drain:             10 * time.Minute,
		Step:              100 * time.Millisecond,
		EventEvery:        10 * time.Second,
		HousekeepingEvery: 5 * time.Second,
		BulkEvery:         2 * time.Second,
		LossRates:         []float64{0.05, 0.2, 0.35},
		BlackoutDurations: []time.Duration{0, 2 * time.Minute, 5 * time.Minute},
		Policies:          []downlink.Policy{downlink.PolicyPriority, downlink.PolicyRoundRobin, downlink.PolicyFIFO},
		Link:              downlink.DefaultLinkConfig(),
		PowerCycleAt:      6 * time.Minute,
		BeaconFrom:        4 * time.Minute,
		BeaconFor:         90 * time.Second,
		Seed:              17,
	}
}

// DownlinkTrial is one paired sweep point.
type DownlinkTrial struct {
	Loss     float64
	Blackout time.Duration
	Policy   downlink.Policy

	// Lossy arm.
	P0Enqueued  uint64
	P0Delivered uint64
	Enqueued    uint64
	Delivered   uint64
	Retransmits uint64
	Timeouts    uint64
	Evicted     uint64
	Skipped     uint64
	Beacons     uint64
	DrainedAt   time.Duration // -1: backlog never fully acknowledged

	// Clean arm (same seed, no impairments).
	CleanDelivered uint64
	CleanDrainedAt time.Duration

	// P0Recovered is the campaign's verdict: every priority-0 event
	// enqueued on the lossy arm was delivered, in order, after ARQ.
	P0Recovered bool
}

// downlinkSpec is one grid point.
type downlinkSpec struct {
	loss     float64
	blackout time.Duration
	policy   downlink.Policy
}

// downlinkArm is one arm's raw tallies.
type downlinkArm struct {
	p0Enq, p0Del  uint64
	enq, del      uint64
	retx, timeout uint64
	evicted       uint64
	skipped       uint64
	beacons       uint64
	drainedAt     time.Duration
}

// DownlinkCampaign sweeps the grid and renders the comparison table.
// Trials fan out across the campaign scheduler; output is
// byte-identical at any worker width.
func DownlinkCampaign(c DownlinkCampaignConfig) ([]DownlinkTrial, *Table, error) {
	if c.Mission <= 0 || c.Step <= 0 || c.Drain < 0 {
		return nil, nil, fmt.Errorf("experiments: downlink campaign needs Mission and Step > 0, Drain ≥ 0")
	}
	var specs []downlinkSpec
	for _, loss := range c.LossRates {
		for _, b := range c.BlackoutDurations {
			for _, p := range c.Policies {
				specs = append(specs, downlinkSpec{loss: loss, blackout: b, policy: p})
			}
		}
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty downlink sweep grid")
	}

	// The trial seed derives from the grid index, so the index is part
	// of each arm's identity: reordering the grid recomputes, by design.
	cache := cacheArms(c.Cache, "downlink/v1", len(specs),
		func(i int, e *resultcache.Enc) {
			encDownlinkCampaignConfig(e, c)
			sp := specs[i]
			e.Float(sp.loss)
			e.Duration(sp.blackout)
			e.Int(int64(sp.policy))
			e.Int(int64(i))
		},
		armCodec[DownlinkTrial]{enc: encDownlinkTrial, dec: decDownlinkTrial})

	trials, err := sched.Map(len(specs), c.Workers, func(i int) (DownlinkTrial, error) {
		return cache.CachedArm(i, func() (DownlinkTrial, error) {
			sp := specs[i]
			seed := c.Seed + 4000 + int64(i)*37
			lossy, err := flyDownlinkArm(c, sp, seed, true)
			if err != nil {
				return DownlinkTrial{}, err
			}
			clean, err := flyDownlinkArm(c, sp, seed, false)
			if err != nil {
				return DownlinkTrial{}, err
			}
			return DownlinkTrial{
				Loss: sp.loss, Blackout: sp.blackout, Policy: sp.policy,
				P0Enqueued: lossy.p0Enq, P0Delivered: lossy.p0Del,
				Enqueued: lossy.enq, Delivered: lossy.del,
				Retransmits: lossy.retx, Timeouts: lossy.timeout,
				Evicted: lossy.evicted, Skipped: lossy.skipped,
				Beacons: lossy.beacons, DrainedAt: lossy.drainedAt,
				CleanDelivered: clean.del, CleanDrainedAt: clean.drainedAt,
				P0Recovered: lossy.p0Del == lossy.p0Enq && lossy.p0Enq > 0,
			}, nil
		})
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, nil, err
	}

	tbl := &Table{
		Title: fmt.Sprintf("Downlink campaign: %v mission + %v drain, %d B/s down, reboot@%v, beacon %v+%v",
			c.Mission, c.Drain, c.Link.RateBps, c.PowerCycleAt, c.BeaconFrom, c.BeaconFor),
		Header: []string{"Loss", "Blackout", "Policy", "p0 d/e", "all d/e", "Retx", "Timeouts",
			"Evicted", "Skipped", "Beacons", "Drained@", "Clean@", "p0 recovered"},
	}
	for _, tr := range trials {
		blk := "none"
		if tr.Blackout > 0 {
			blk = tr.Blackout.String()
		}
		drained := func(d time.Duration) string {
			if d < 0 {
				return "never"
			}
			return d.Round(c.Step).String()
		}
		verdict := "YES"
		if !tr.P0Recovered {
			verdict = "LOST DATA"
		}
		tbl.AddRow(fmt.Sprintf("%g", tr.Loss), blk, tr.Policy.String(),
			fmt.Sprintf("%d/%d", tr.P0Delivered, tr.P0Enqueued),
			fmt.Sprintf("%d/%d", tr.Delivered, tr.Enqueued),
			fmt.Sprint(tr.Retransmits), fmt.Sprint(tr.Timeouts),
			fmt.Sprint(tr.Evicted), fmt.Sprint(tr.Skipped), fmt.Sprint(tr.Beacons),
			drained(tr.DrainedAt), drained(tr.CleanDrainedAt), verdict)
	}
	return trials, tbl, nil
}

// encDownlinkCampaignConfig canonically encodes every campaign
// parameter a trial's result depends on. Workers, Telemetry and Cache
// are deliberately absent; the sweep grid slices are absent too because
// each arm's own grid point (and index) is encoded separately.
func encDownlinkCampaignConfig(e *resultcache.Enc, c DownlinkCampaignConfig) {
	e.Duration(c.Mission)
	e.Duration(c.Drain)
	e.Duration(c.Step)
	e.Duration(c.EventEvery)
	e.Duration(c.HousekeepingEvery)
	e.Duration(c.BulkEvery)
	e.Int(int64(c.Link.RateBps))
	e.Int(int64(c.Link.AckRateBps))
	e.Duration(c.Link.Latency)
	e.Int(int64(c.Window))
	e.Duration(c.RTO)
	e.Int(int64(c.RingCap))
	e.Duration(c.PowerCycleAt)
	e.Duration(c.BeaconFrom)
	e.Duration(c.BeaconFor)
	e.Int(c.Seed)
}

func encDownlinkTrial(e *resultcache.Enc, t DownlinkTrial) {
	e.Float(t.Loss)
	e.Duration(t.Blackout)
	e.Int(int64(t.Policy))
	e.Uint(t.P0Enqueued)
	e.Uint(t.P0Delivered)
	e.Uint(t.Enqueued)
	e.Uint(t.Delivered)
	e.Uint(t.Retransmits)
	e.Uint(t.Timeouts)
	e.Uint(t.Evicted)
	e.Uint(t.Skipped)
	e.Uint(t.Beacons)
	e.Duration(t.DrainedAt)
	e.Uint(t.CleanDelivered)
	e.Duration(t.CleanDrainedAt)
	e.Bool(t.P0Recovered)
}

func decDownlinkTrial(d *resultcache.Dec) DownlinkTrial {
	return DownlinkTrial{
		Loss:           d.Float(),
		Blackout:       d.Duration(),
		Policy:         downlink.Policy(d.Int()),
		P0Enqueued:     d.Uint(),
		P0Delivered:    d.Uint(),
		Enqueued:       d.Uint(),
		Delivered:      d.Uint(),
		Retransmits:    d.Uint(),
		Timeouts:       d.Uint(),
		Evicted:        d.Uint(),
		Skipped:        d.Uint(),
		Beacons:        d.Uint(),
		DrainedAt:      d.Duration(),
		CleanDelivered: d.Uint(),
		CleanDrainedAt: d.Duration(),
		P0Recovered:    d.Bool(),
	}
}

// flyDownlinkArm flies one arm: the flight side enqueues the three
// telemetry classes on their cadences, reboots and degrades on
// schedule, and the ARQ loop runs against the (possibly impaired) link
// until the backlog is acknowledged or time runs out. The two arms of a
// trial differ only in link impairments.
func flyDownlinkArm(c DownlinkCampaignConfig, sp downlinkSpec, seed int64, lossy bool) (downlinkArm, error) {
	arm := downlinkArm{drainedAt: -1}

	lcfg := c.Link
	lcfg.Seed = seed
	link, err := downlink.NewLink(lcfg)
	if err != nil {
		return arm, err
	}
	if lossy {
		if sp.loss > 0 {
			if err := link.ScheduleLinkFault(downlink.LinkFault{
				Start: 0, Duration: 0, // never closes: the drain pass is lossy too
				Drop: sp.loss, Corrupt: sp.loss / 2, Reorder: sp.loss / 4,
			}); err != nil {
				return arm, err
			}
		}
		if sp.blackout > 0 {
			if err := link.ScheduleBlackout(downlink.Blackout{Start: c.Mission / 3, Duration: sp.blackout}); err != nil {
				return arm, err
			}
		}
	}

	tcfg := downlink.DefaultTxConfig(1)
	tcfg.Policy = sp.policy
	if c.Window > 0 {
		tcfg.Window = c.Window
	}
	if c.RTO > 0 {
		tcfg.RTO = c.RTO
	}
	if c.RingCap > 0 {
		tcfg.RingCap = c.RingCap
	}
	tx, err := downlink.NewTransmitter(link, tcfg)
	if err != nil {
		return arm, err
	}
	st := downlink.NewStation(downlink.DefaultStationConfig())

	enqueue := func(vc uint8, payload string, now time.Duration) error {
		if err := tx.Enqueue(vc, []byte(payload), now); err != nil {
			return err
		}
		arm.enq++
		if vc == 0 {
			arm.p0Enq++
		}
		return nil
	}

	nextEvent, nextHk, nextBulk := c.EventEvery, c.HousekeepingEvery, c.BulkEvery
	cycled := false
	end := c.Mission + c.Drain
	for now := c.Step; now <= end; now += c.Step {
		if now <= c.Mission {
			for c.EventEvery > 0 && nextEvent <= now {
				if err := enqueue(0, fmt.Sprintf("evt seq=%d t=%v", arm.p0Enq, nextEvent), now); err != nil {
					return arm, err
				}
				nextEvent += c.EventEvery
			}
			for c.HousekeepingEvery > 0 && nextHk <= now {
				if err := enqueue(1, fmt.Sprintf("hk t=%v mode=nominal", nextHk), now); err != nil {
					return arm, err
				}
				nextHk += c.HousekeepingEvery
			}
			for c.BulkEvery > 0 && nextBulk <= now {
				if err := enqueue(3, fmt.Sprintf("bulk t=%v frame of science payload data", nextBulk), now); err != nil {
					return arm, err
				}
				nextBulk += c.BulkEvery
			}
		}
		if c.PowerCycleAt > 0 && !cycled && now >= c.PowerCycleAt {
			tx.PowerCycle(now)
			cycled = true
		}
		if c.BeaconFor > 0 {
			inBeacon := now >= c.BeaconFrom && now < c.BeaconFrom+c.BeaconFor
			if inBeacon != tx.Beacon() {
				reason := "guard_stepdown"
				if !inBeacon {
					reason = "recovered"
				}
				tx.SetBeacon(inBeacon, now, reason)
			}
		}
		if err := tx.Tick(now); err != nil {
			return arm, err
		}
		var buf []byte
		for _, raw := range link.RecvDown(now) {
			buf = append(buf, raw...)
		}
		if len(buf) > 0 {
			for _, ack := range st.Ingest(buf, now) {
				link.SendUp(ack, now)
			}
		}
		if now > c.Mission && tx.Done() {
			arm.drainedAt = now
			break
		}
	}

	stats := tx.Stats()
	arm.retx = stats.Retransmits
	arm.timeout = stats.Timeouts
	arm.beacons = stats.Beacons
	arm.evicted = tx.Evicted()
	for _, rep := range st.Report() {
		for vc := 0; vc < downlink.NumVC; vc++ {
			arm.del += rep.VC[vc].Delivered
			arm.skipped += rep.VC[vc].Skipped
		}
		arm.p0Del += rep.VC[0].Delivered
	}
	return arm, nil
}
