package experiments

import (
	"strings"
	"testing"
	"time"

	"radshield/internal/machine"
)

// equivOSFault shrinks the OS-fault campaign to test scale: a 12-minute
// mission with the latchup cadence at 5 minutes still exercises the
// fault onset, one SEL reboot inside the fault window, and the
// watchdog/hang-cycle recovery paths.
func equivOSFault(workers int) OSFaultCampaignConfig {
	c := DefaultOSFaultCampaignConfig()
	c.SEL.Duration = 12 * time.Minute
	c.SEL.SELEvery = 5 * time.Minute
	c.SEL.Workers = workers
	c.Onsets = []time.Duration{4 * time.Minute}
	c.FaultDuration = 3 * time.Minute
	return c
}

func TestOSFaultCampaignValidation(t *testing.T) {
	for i, mod := range []func(*OSFaultCampaignConfig){
		func(c *OSFaultCampaignConfig) { c.Classes = nil },
		func(c *OSFaultCampaignConfig) { c.Classes = []machine.OSFaultKind{machine.OSFaultKind(42)} },
		func(c *OSFaultCampaignConfig) { c.Classes = []machine.OSFaultKind{machine.OSFaultNone} },
		func(c *OSFaultCampaignConfig) { c.Onsets = nil },
		func(c *OSFaultCampaignConfig) { c.Onsets = []time.Duration{0} },
		func(c *OSFaultCampaignConfig) { c.FaultDuration = -time.Second },
		func(c *OSFaultCampaignConfig) { c.WatchdogTimeout = 0 },
		func(c *OSFaultCampaignConfig) { c.IOErrorRate = 0 },
		func(c *OSFaultCampaignConfig) { c.IOErrorRate = 1.5 },
		func(c *OSFaultCampaignConfig) { c.SnapshotEvery = 0 },
		func(c *OSFaultCampaignConfig) { c.HousekeepEvery = 0 },
		func(c *OSFaultCampaignConfig) { c.RecorderCap = 0 },
		func(c *OSFaultCampaignConfig) { c.Stall = c.Watchdog.Deadline },
		func(c *OSFaultCampaignConfig) { c.StallExecutor = -1 },
		func(c *OSFaultCampaignConfig) { c.StallExecutor = 1000 },
	} {
		c := DefaultOSFaultCampaignConfig()
		mod(&c)
		if _, _, err := OSFaultCampaign(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestParseOSFaultClasses(t *testing.T) {
	all, err := ParseOSFaultClasses("")
	if err != nil || len(all) != 5 {
		t.Fatalf("empty spec = %v, %v; want the full 5-class grid", all, err)
	}
	got, err := ParseOSFaultClasses("panic, fscorrupt")
	if err != nil {
		t.Fatal(err)
	}
	want := []machine.OSFaultKind{machine.OSFaultKernelPanic, machine.OSFaultFSCorruption}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParseOSFaultClasses = %v, want %v", got, want)
	}
	if _, err := ParseOSFaultClasses("panic,warp"); err == nil ||
		!strings.Contains(err.Error(), "schedstall") {
		t.Fatalf("bad class spec: err = %v, want an error listing the valid ids", err)
	}
}

// TestOSFaultCampaignOutcomes is the ISSUE acceptance shape at test
// scale: for every fault class the guarded arm recovers — bounded
// detection latency, zero missed SELs, no corrupt replay — while the
// bare arm loses the board (panic, hang) or silently drops a strictly
// larger slice of the mission record (ioburst, fscorrupt).
func TestOSFaultCampaignOutcomes(t *testing.T) {
	trials, tbl, err := OSFaultCampaign(equivOSFault(0))
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil || len(trials) != 5 {
		t.Fatalf("got %d trials, want 5", len(trials))
	}
	for _, tr := range trials {
		if tr.DetectLatency < 0 {
			t.Errorf("%v: never detected", tr.Class)
		}
		if !tr.Survived {
			t.Errorf("%v: guarded arm lost the board", tr.Class)
		}
		if tr.MissedSELs != 0 {
			t.Errorf("%v: guarded arm missed %d SELs", tr.Class, tr.MissedSELs)
		}
		if !tr.CleanReplay || !tr.UnguardedCleanReplay {
			t.Errorf("%v: corrupt state replayed (g=%v u=%v)", tr.Class, tr.CleanReplay, tr.UnguardedCleanReplay)
		}
		switch tr.Class {
		case machine.OSFaultKernelPanic:
			if tr.WatchdogResets < 1 {
				t.Errorf("panic: no watchdog reset (got %d)", tr.WatchdogResets)
			}
			if tr.DetectLatency > 2*equivOSFault(0).WatchdogTimeout {
				t.Errorf("panic: detection latency %v not bounded by the watchdog", tr.DetectLatency)
			}
			if tr.UnguardedSurvived {
				t.Error("panic: bare board survived without a watchdog")
			}
		case machine.OSFaultKernelHang:
			if tr.HangCycles < 1 {
				t.Errorf("hang: no supervisor hang cycle (got %d)", tr.HangCycles)
			}
			if tr.UnguardedSurvived {
				t.Error("hang: bare board survived a wedged kernel")
			}
		case machine.OSFaultIOErrorBurst:
			if tr.IOErrors == 0 {
				t.Error("ioburst: no IO errors landed")
			}
			if tr.UnguardedLost <= tr.EventsLost {
				t.Errorf("ioburst: bare arm lost %d records vs guarded %d, want strictly more",
					tr.UnguardedLost, tr.EventsLost)
			}
		case machine.OSFaultFSCorruption:
			if tr.Recoveries == 0 {
				t.Error("fscorrupt: no corrupt pages detected")
			}
			if tr.UnguardedLost <= tr.EventsLost {
				t.Errorf("fscorrupt: bare arm lost %d records vs guarded %d, want strictly more",
					tr.UnguardedLost, tr.EventsLost)
			}
		case machine.OSFaultSchedulerStall:
			if tr.Kills == 0 {
				t.Error("schedstall: watchdog never killed the starved executor")
			}
			if !tr.TMRGolden || !tr.DegradedGolden {
				t.Error("schedstall: EMR outputs diverged from golden")
			}
			if tr.StallOverrun <= 0 {
				t.Errorf("schedstall: bare runtime overrun %v, want positive", tr.StallOverrun)
			}
		}
	}
}
