package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/forest"
	"radshield/internal/ild"
	"radshield/internal/machine"
	"radshield/internal/stats"
	"radshield/internal/telemetry"
	"radshield/internal/trace"
)

// SELConfig parameterizes the SEL-detection experiments. The defaults
// scale the paper's 960-hour campaign down to laptop runtimes while
// keeping sample counts large enough for stable rates; pass a longer
// Duration to approach the paper's scale.
type SELConfig struct {
	Duration    time.Duration // flight-campaign length (paper: 960 h)
	SampleEvery time.Duration // telemetry cadence (paper: 1 ms)
	TrainFor    time.Duration // ground-twin training span
	SELEvery    time.Duration // latchup injection period (paper: 30 min)
	SELAmps     float64       // latchup magnitude (paper: +0.07 A)
	Window      time.Duration // detection window (paper: 3 min)
	Seed        int64

	// Telemetry, when non-nil, receives machine, detector, and campaign
	// metrics (see TELEMETRY.md). Nil means no instrumentation cost.
	Telemetry *telemetry.Registry
}

// DefaultSELConfig returns a campaign that runs in a few seconds.
func DefaultSELConfig() SELConfig {
	return SELConfig{
		Duration:    4 * time.Hour,
		SampleEvery: 10 * time.Millisecond,
		TrainFor:    2 * time.Minute,
		SELEvery:    30 * time.Minute,
		SELAmps:     0.07,
		Window:      3 * time.Minute,
		Seed:        1,
	}
}

// machineConfig builds the testbed board at the experiment cadence.
func (c SELConfig) machineConfig(seed int64) machine.Config {
	mc := machine.DefaultConfig()
	mc.SampleEvery = c.SampleEvery
	mc.SensorSeed = seed
	mc.Telemetry = c.Telemetry
	return mc
}

// ildConfig builds the detector config at the experiment cadence.
func (c SELConfig) ildConfig() ild.Config {
	ic := ild.DefaultConfig()
	ic.SampleEvery = c.SampleEvery
	ic.DetectionWindow = c.Window
	return ic
}

// TrainILD performs the pre-launch procedure: run the ground twin over a
// quiescent trace and fit the linear current model.
func TrainILD(c SELConfig) (*ild.Detector, error) {
	c.Telemetry = nil // ground-twin training stays out of flight metrics
	m := machine.New(c.machineConfig(c.Seed + 100))
	trainer := ild.NewTrainer(c.ildConfig())
	rng := rand.New(rand.NewSource(c.Seed + 101))
	m.RunTrace(trace.Quiescent(rng, c.TrainFor, 10*time.Second), func(tel machine.Telemetry) {
		trainer.Add(tel)
	})
	return trainer.Fit()
}

// trainForestBaseline reproduces the black-box ML baseline exactly as
// the paper describes it (§4.1.2): "a random forest classifier trained
// on current draw under emulated SEL and during quiescence ... trained
// solely on current draw and not on performance counters", with no
// temporal element. Workload currents never appear in training, and the
// orbital thermal drift of the baseline is not a feature it can see —
// both failure modes the paper attributes to black-box detectors.
func trainForestBaseline(c SELConfig) *ild.ForestDetector {
	c.Telemetry = nil // training injections are not flight SELs
	var currents []float64
	var labels []int
	for pass, sel := range []float64{0, c.SELAmps} {
		m := machine.New(c.machineConfig(c.Seed + 200 + int64(pass)))
		if sel > 0 {
			m.InjectSEL(sel)
		}
		rng := rand.New(rand.NewSource(c.Seed + 202))
		tr := trace.Quiescent(rng, 10*time.Minute, 15*time.Second)
		label := 0
		if sel > 0 {
			label = 1
		}
		i := 0
		m.RunTrace(tr, func(tel machine.Telemetry) {
			i++
			if i%8 != 0 { // subsample to keep forest training tractable
				return
			}
			currents = append(currents, tel.CurrentA)
			labels = append(labels, label)
		})
	}
	return ild.TrainForestDetector(currents, labels, forest.Config{Trees: 30, MaxDepth: 8, Seed: c.Seed})
}

// DetectorAccuracyResult is one Table 2 column, extended with detection
// latency (time from SEL onset to first flag, over detected episodes).
type DetectorAccuracyResult struct {
	Name              string
	Episodes          int
	FalseNegativeRate float64
	FalsePositiveRate float64
	MeanLatency       time.Duration
	MaxLatency        time.Duration
}

// Table2 runs the detector-accuracy campaign (paper Table 2): a long
// flight-software trace with periodic +SELAmps latchups, evaluated
// simultaneously by ILD, the current-only random forest, and three
// static thresholds.
func Table2(c SELConfig) ([]DetectorAccuracyResult, *Table, error) {
	det, err := TrainILD(c)
	if err != nil {
		return nil, nil, err
	}
	monitors := []struct {
		name string
		m    ild.Monitor
	}{
		{"ILD", det},
		{"RandomForest", trainForestBaseline(c)},
	}
	for _, level := range []float64{1.75, 1.80, 1.85} {
		st, err := ild.NewStaticThreshold(level)
		if err != nil {
			return nil, nil, err
		}
		monitors = append(monitors, struct {
			name string
			m    ild.Monitor
		}{fmt.Sprintf("Static %.2fA", level), st})
	}

	// Attach instruments to the ILD detector (not the baselines: Table 2
	// compares detectors, but the telemetry story follows the paper's
	// deployed design).
	ins := ild.NewInstruments(c.Telemetry)
	det.SetInstruments(ins)
	var episodesCtr, missedCtr *telemetry.Counter
	if c.Telemetry != nil {
		episodesCtr = c.Telemetry.Counter("ild_episodes_total", "episodes")
		missedCtr = c.Telemetry.Counter("ild_episodes_missed_total", "episodes")
	}

	m := machine.New(c.machineConfig(c.Seed))
	rng := rand.New(rand.NewSource(c.Seed + 1))
	flight := trace.FlightSoftware(rng, c.Duration, 4)
	// Bubbles one second longer than the sustain requirement: the sample
	// straddling the workload→bubble boundary reads as busy and resets
	// the averaging window, so a bare 3 s bubble never quite fills a 3 s
	// window.
	policy := ild.BubblePolicy{BubbleLen: c.ildConfig().SustainFor + time.Second, Pause: 3 * time.Minute, Instruments: ins}
	flight = ild.InjectBubbles(flight, policy)

	type state struct {
		episodeHit []bool // per episode: fired within window
		latencies  []time.Duration
		fpSamples  int
		negSamples int
	}
	states := make([]state, len(monitors))

	var episodeStart time.Duration
	nextSEL := c.SELEvery
	episodeEnd := time.Duration(-1)

	m.RunTrace(flight, func(tel machine.Telemetry) {
		// Episode scheduling.
		if episodeEnd < 0 && tel.T >= nextSEL {
			m.InjectSEL(c.SELAmps)
			episodeStart = tel.T
			episodeEnd = tel.T + c.Window
			for i := range states {
				states[i].episodeHit = append(states[i].episodeHit, false)
			}
		}
		inEpisode := episodeEnd >= 0
		for i, mon := range monitors {
			fired := mon.m.Observe(tel)
			if inEpisode {
				if fired && !states[i].episodeHit[len(states[i].episodeHit)-1] {
					states[i].episodeHit[len(states[i].episodeHit)-1] = true
					states[i].latencies = append(states[i].latencies, tel.T-episodeStart)
					if i == 0 { // ILD is monitors[0]
						ins.ObserveLatency(tel.T - episodeStart)
					}
				}
			} else {
				states[i].negSamples++
				if fired {
					states[i].fpSamples++
					if i == 0 {
						ins.CountFalseTrip()
					}
				}
			}
		}
		if inEpisode && tel.T >= episodeEnd {
			m.ClearSEL()
			episodeEnd = -1
			nextSEL = tel.T + c.SELEvery
			episodesCtr.Inc()
			if !states[0].episodeHit[len(states[0].episodeHit)-1] {
				missedCtr.Inc()
			}
		}
	})

	results := make([]DetectorAccuracyResult, len(monitors))
	tbl := &Table{
		Title:  "Table 2: SEL detector accuracy",
		Header: []string{"Detector", "Episodes", "FalseNegRate", "FalsePosRate", "MeanLatency", "MaxLatency"},
	}
	for i, mon := range monitors {
		st := states[i]
		missed := 0
		for _, hit := range st.episodeHit {
			if !hit {
				missed++
			}
		}
		fnr := 0.0
		if len(st.episodeHit) > 0 {
			fnr = float64(missed) / float64(len(st.episodeHit))
		}
		fpr := 0.0
		if st.negSamples > 0 {
			fpr = float64(st.fpSamples) / float64(st.negSamples)
		}
		var mean, max time.Duration
		for _, l := range st.latencies {
			mean += l
			if l > max {
				max = l
			}
		}
		if len(st.latencies) > 0 {
			mean /= time.Duration(len(st.latencies))
		}
		results[i] = DetectorAccuracyResult{
			Name: mon.name, Episodes: len(st.episodeHit),
			FalseNegativeRate: fnr, FalsePositiveRate: fpr,
			MeanLatency: mean, MaxLatency: max,
		}
		tbl.AddRow(mon.name, fmt.Sprint(len(st.episodeHit)), pct(fnr), pct(fpr),
			mean.Round(time.Millisecond).String(), max.Round(time.Millisecond).String())
	}
	return results, tbl, nil
}

// Fig10 sweeps the latchup magnitude (paper Figure 10): one-minute SEL
// episodes at +0.01 A … +0.10 A during quiescence, reporting the miss
// rate per magnitude. The paper's knee is at ≈0.05 A (ILD's threshold is
// 0.055 A with the rolling-min floor beneath it).
func Fig10(c SELConfig, episodesPer int) (*Figure, error) {
	det, err := TrainILD(c)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		Title:  "Figure 10: misdetection rate vs latchup current",
		XLabel: "additional latchup current (A)",
		YLabel: "false negative rate",
	}
	s := Series{Name: "ILD"}
	for amps := 0.01; amps <= 0.1005; amps += 0.01 {
		m := machine.New(c.machineConfig(c.Seed + int64(amps*1000)))
		rng := rand.New(rand.NewSource(c.Seed + 2))
		missed := 0
		for ep := 0; ep < episodesPer; ep++ {
			det.Reset()
			// One minute latched, one minute clear, all quiescent.
			m.InjectSEL(amps)
			hit := false
			m.RunTrace(trace.Quiescent(rng, time.Minute, 10*time.Second), func(tel machine.Telemetry) {
				if det.Observe(tel) {
					hit = true
				}
			})
			m.ClearSEL()
			det.Reset()
			m.RunTrace(trace.Quiescent(rng, 10*time.Second, 5*time.Second), nil)
			if !hit {
				missed++
			}
		}
		s.Add(amps, float64(missed)/float64(episodesPer))
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Table3 reports ILD's worst-case overhead (paper Table 3): the bubble
// measurement cost per hour of compute and the additional cost of one
// false-positive reboot.
func Table3(rebootCost time.Duration) *Table {
	p := ild.DefaultBubblePolicy()
	meas, reboot := p.WorstCaseOverheadPerHour(rebootCost)
	tbl := &Table{
		Title:  "Table 3: worst-case ILD overhead per hour of compute",
		Header: []string{"Measurement Overhead", "Reboot-Only Overhead"},
	}
	tbl.AddRow(fmt.Sprintf("+%v / hr", meas), fmt.Sprintf("+%v / hr", reboot))
	return tbl
}

// Fig2Result carries the Figure 2 current traces.
type Fig2Result struct {
	Fig            *Figure
	MaxNominalA    float64
	MaxLatchedA    float64
	ThresholdA     float64
	CrossesNominal bool // workload activity alone crosses the trip line
	CrossesLatched bool // quiescent SEL current crosses the trip line
}

// Fig2 reproduces the paper's Figure 2: the current draw of a navigation
// workload before and after a micro-SEL, against the supply's static 4 A
// trip line — demonstrating that the threshold fires on compute and
// never on the latchup.
func Fig2(c SELConfig) *Fig2Result {
	mc := c.machineConfig(c.Seed + 7)
	m := machine.New(mc)
	rng := rand.New(rand.NewSource(c.Seed + 8))

	res := &Fig2Result{ThresholdA: mc.Power.TripThresholdA}
	fig := &Figure{
		Title:  "Figure 2: navigation workload current, before/after SEL",
		XLabel: "time (s)",
		YLabel: "current (A)",
	}
	nominal := Series{Name: "nominal"}
	m.RunTrace(trace.Navigation(rng, time.Minute, 4), func(tel machine.Telemetry) {
		nominal.Add(tel.T.Seconds(), tel.RawA)
		if tel.RawA > res.MaxNominalA {
			res.MaxNominalA = tel.RawA
		}
	})
	m.InjectSEL(c.SELAmps)
	latched := Series{Name: fmt.Sprintf("under SEL (+%.2f A)", c.SELAmps)}
	m.RunTrace(trace.Quiescent(rng, time.Minute, 10*time.Second), func(tel machine.Telemetry) {
		latched.Add(tel.T.Seconds(), tel.RawA)
		if tel.RawA > res.MaxLatchedA {
			res.MaxLatchedA = tel.RawA
		}
	})
	fig.Series = append(fig.Series, nominal, latched)
	res.Fig = fig
	res.CrossesNominal = res.MaxNominalA > res.ThresholdA
	res.CrossesLatched = res.MaxLatchedA > res.ThresholdA
	return res
}

// Fig5Result carries the Figure 5 correlation experiment.
type Fig5Result struct {
	Fig         *Figure
	Correlation float64
}

// Fig5 reproduces the paper's Figure 5: a matrix-multiply workload
// stepped across 0–4 cores and the DVFS range correlates ≈99.7 % with
// measured current.
func Fig5(c SELConfig) *Fig5Result {
	m := machine.New(c.machineConfig(c.Seed + 9))
	tr := trace.MatMulSteps(4, 600e6, 1.4e9, 100e6, 500*time.Millisecond)
	fig := &Figure{
		Title:  "Figure 5: current vs CPU activity under stepped matmul",
		XLabel: "time (s)",
		YLabel: "current (A) / instruction rate",
	}
	cur := Series{Name: "current (A)"}
	instr := Series{Name: "instructions/s (×1e9)"}
	var xs, ys []float64
	m.RunTrace(tr, func(tel machine.Telemetry) {
		cur.Add(tel.T.Seconds(), tel.CurrentA)
		instr.Add(tel.T.Seconds(), tel.TotalInstrPerSec()/1e9)
		xs = append(xs, tel.TotalInstrPerSec())
		ys = append(ys, tel.CurrentA)
	})
	fig.Series = append(fig.Series, cur, instr)
	return &Fig5Result{Fig: fig, Correlation: stats.Correlation(xs, ys)}
}
