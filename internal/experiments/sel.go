package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/forest"
	"radshield/internal/ild"
	"radshield/internal/linmodel"
	"radshield/internal/machine"
	"radshield/internal/resultcache"
	"radshield/internal/sched"
	"radshield/internal/stats"
	"radshield/internal/telemetry"
	"radshield/internal/trace"
)

// SELConfig parameterizes the SEL-detection experiments. The defaults
// scale the paper's 960-hour campaign down to laptop runtimes while
// keeping sample counts large enough for stable rates; pass a longer
// Duration to approach the paper's scale.
type SELConfig struct {
	Duration    time.Duration // flight-campaign length (paper: 960 h)
	SampleEvery time.Duration // telemetry cadence (paper: 1 ms)
	TrainFor    time.Duration // ground-twin training span
	SELEvery    time.Duration // latchup injection period (paper: 30 min)
	SELAmps     float64       // latchup magnitude (paper: +0.07 A)
	Window      time.Duration // detection window (paper: 3 min)
	Seed        int64

	// Workers bounds the campaign scheduler's parallelism for the
	// experiments that fan out independent trials (Table 2 monitors,
	// Fig 10 sweep levels, threshold sweeps, ablation variants); <= 0
	// means one worker per CPU. Output is byte-identical at any width.
	Workers int

	// Telemetry, when non-nil, receives machine, detector, and campaign
	// metrics (see TELEMETRY.md). Nil means no instrumentation cost.
	Telemetry *telemetry.Registry

	// Cache, when non-nil, replays already-computed arms from the
	// content-addressed result store (see RESULTCACHE.md). Output is
	// byte-identical warm or cold.
	Cache *resultcache.Store
}

// DefaultSELConfig returns a campaign that runs in a few seconds.
func DefaultSELConfig() SELConfig {
	return SELConfig{
		Duration:    4 * time.Hour,
		SampleEvery: 10 * time.Millisecond,
		TrainFor:    2 * time.Minute,
		SELEvery:    30 * time.Minute,
		SELAmps:     0.07,
		Window:      3 * time.Minute,
		Seed:        1,
	}
}

// machineConfig builds the testbed board at the experiment cadence.
func (c SELConfig) machineConfig(seed int64) machine.Config {
	mc := machine.DefaultConfig()
	mc.SampleEvery = c.SampleEvery
	mc.SensorSeed = seed
	mc.Telemetry = c.Telemetry
	return mc
}

// ildConfig builds the detector config at the experiment cadence.
func (c SELConfig) ildConfig() ild.Config {
	ic := ild.DefaultConfig()
	ic.SampleEvery = c.SampleEvery
	ic.DetectionWindow = c.Window
	return ic
}

// injectSEL injects a latchup whose magnitude comes from a validated
// experiment config: the machine rejecting it means the config escaped
// validation, which is a bug worth crashing the campaign over.
func injectSEL(m *machine.Machine, amps float64) {
	if err := m.InjectSEL(amps); err != nil {
		//radlint:allow nopanic amps come from validated experiment configs; documented panic contract
		panic(fmt.Sprintf("experiments: %v", err))
	}
}

// TrainILD performs the pre-launch procedure: run the ground twin over a
// quiescent trace and fit the linear current model.
func TrainILD(c SELConfig) (*ild.Detector, error) {
	c.Telemetry = nil // ground-twin training stays out of flight metrics
	m := machine.New(c.machineConfig(c.Seed + 100))
	trainer := ild.NewTrainer(c.ildConfig())
	rng := rand.New(rand.NewSource(c.Seed + 101))
	m.RunTrace(trace.Quiescent(rng, c.TrainFor, 10*time.Second), func(tel machine.Telemetry) {
		trainer.Add(tel)
	})
	return trainer.Fit()
}

// trainForestBaseline reproduces the black-box ML baseline exactly as
// the paper describes it (§4.1.2): "a random forest classifier trained
// on current draw under emulated SEL and during quiescence ... trained
// solely on current draw and not on performance counters", with no
// temporal element. Workload currents never appear in training, and the
// orbital thermal drift of the baseline is not a feature it can see —
// both failure modes the paper attributes to black-box detectors.
func trainForestBaseline(c SELConfig) *ild.ForestDetector {
	c.Telemetry = nil // training injections are not flight SELs
	var currents []float64
	var labels []int
	for pass, sel := range []float64{0, c.SELAmps} {
		m := machine.New(c.machineConfig(c.Seed + 200 + int64(pass)))
		if sel > 0 {
			injectSEL(m, sel)
		}
		rng := rand.New(rand.NewSource(c.Seed + 202))
		tr := trace.Quiescent(rng, 10*time.Minute, 15*time.Second)
		label := 0
		if sel > 0 {
			label = 1
		}
		i := 0
		m.RunTrace(tr, func(tel machine.Telemetry) {
			i++
			if i%8 != 0 { // subsample to keep forest training tractable
				return
			}
			currents = append(currents, tel.CurrentA)
			labels = append(labels, label)
		})
	}
	return ild.TrainForestDetector(currents, labels, forest.Config{Trees: 30, MaxDepth: 8, Seed: c.Seed})
}

// DetectorAccuracyResult is one Table 2 column, extended with detection
// latency (time from SEL onset to first flag, over detected episodes).
type DetectorAccuracyResult struct {
	Name              string
	Episodes          int
	FalseNegativeRate float64
	FalsePositiveRate float64
	MeanLatency       time.Duration
	MaxLatency        time.Duration
}

// table2Episode is one recorded SEL episode: its onset time and the
// sample-index range over which the serial harness would have treated
// samples as in-episode (lastSample is the clearing sample, inclusive,
// or -1 when the campaign ends mid-episode).
type table2Episode struct {
	start       time.Duration
	firstSample int
	lastSample  int
}

// table2Recording is the monitor-independent campaign input: the full
// telemetry stream of the flight trace with latchups injected on the
// paper's schedule, plus the episode windows derived from it. Episode
// scheduling depends only on sample timestamps — never on detector
// output — so every monitor can replay the identical stream in
// parallel. Memory: one machine.Telemetry per sample (~220 B), ≈0.3 GB
// for the paper-scale 4 h / 10 ms campaign; scale Duration accordingly.
type table2Recording struct {
	samples  []machine.Telemetry
	episodes []table2Episode
}

// recordTable2Campaign plays the Table 2 flight trace once, injecting
// and clearing latchups exactly as the serial harness did, and records
// the resulting telemetry stream.
func recordTable2Campaign(c SELConfig) *table2Recording {
	m := machine.New(c.machineConfig(c.Seed))
	rng := rand.New(rand.NewSource(c.Seed + 1))
	flight := trace.FlightSoftware(rng, c.Duration, 4)
	// Bubbles one second longer than the sustain requirement: the sample
	// straddling the workload→bubble boundary reads as busy and resets
	// the averaging window, so a bare 3 s bubble never quite fills a 3 s
	// window.
	policy := ild.BubblePolicy{BubbleLen: c.ildConfig().SustainFor + time.Second, Pause: 3 * time.Minute, Instruments: ild.NewInstruments(c.Telemetry)}
	flight = ild.InjectBubbles(flight, policy)

	rec := &table2Recording{}
	nextSEL := c.SELEvery
	episodeEnd := time.Duration(-1)
	k := 0
	m.RunTrace(flight, func(tel machine.Telemetry) {
		if episodeEnd < 0 && tel.T >= nextSEL {
			injectSEL(m, c.SELAmps)
			episodeEnd = tel.T + c.Window
			rec.episodes = append(rec.episodes, table2Episode{start: tel.T, firstSample: k, lastSample: -1})
		}
		rec.samples = append(rec.samples, tel)
		if episodeEnd >= 0 && tel.T >= episodeEnd {
			m.ClearSEL()
			episodeEnd = -1
			nextSEL = tel.T + c.SELEvery
			rec.episodes[len(rec.episodes)-1].lastSample = k
		}
		k++
	})
	return rec
}

// table2State is one monitor's accumulated campaign statistics.
type table2State struct {
	episodeHit []bool // per episode: fired within window
	latencies  []time.Duration
	fpSamples  int
	negSamples int
}

func encTable2State(e *resultcache.Enc, st table2State) {
	e.Int(int64(len(st.episodeHit)))
	for _, h := range st.episodeHit {
		e.Bool(h)
	}
	e.Int(int64(len(st.latencies)))
	for _, l := range st.latencies {
		e.Duration(l)
	}
	e.Int(int64(st.fpSamples))
	e.Int(int64(st.negSamples))
}

func decTable2State(d *resultcache.Dec) table2State {
	var st table2State
	for n := d.Int(); n > 0; n-- {
		st.episodeHit = append(st.episodeHit, d.Bool())
		if d.Err() != nil {
			return st // malformed length; sticky error ends the decode
		}
	}
	for n := d.Int(); n > 0; n-- {
		st.latencies = append(st.latencies, d.Duration())
		if d.Err() != nil {
			return st
		}
	}
	st.fpSamples = int(d.Int())
	st.negSamples = int(d.Int())
	return st
}

// replayTable2 walks a monitor over the recorded stream, reproducing the
// serial harness's per-sample bookkeeping bit for bit. ildInstruments is
// non-nil only for the ILD trial, which also owns the per-episode
// telemetry counters.
func replayTable2(rec *table2Recording, mon ild.Monitor, ins *ild.Instruments, episodesCtr, missedCtr *telemetry.Counter) table2State {
	var st table2State
	ep := 0
	for k, tel := range rec.samples {
		var cur *table2Episode
		if ep < len(rec.episodes) {
			if e := &rec.episodes[ep]; k >= e.firstSample && (e.lastSample < 0 || k <= e.lastSample) {
				cur = e
				if k == e.firstSample {
					st.episodeHit = append(st.episodeHit, false)
				}
			}
		}
		fired := mon.Observe(tel)
		if cur != nil {
			if fired && !st.episodeHit[len(st.episodeHit)-1] {
				st.episodeHit[len(st.episodeHit)-1] = true
				st.latencies = append(st.latencies, tel.T-cur.start)
				if ins != nil {
					ins.ObserveLatency(tel.T - cur.start)
				}
			}
			if k == cur.lastSample {
				if ins != nil {
					episodesCtr.Inc()
					if !st.episodeHit[len(st.episodeHit)-1] {
						missedCtr.Inc()
					}
				}
				ep++
			}
		} else {
			st.negSamples++
			if fired {
				st.fpSamples++
				if ins != nil {
					ins.CountFalseTrip()
				}
			}
		}
	}
	return st
}

// Table2 runs the detector-accuracy campaign (paper Table 2): a long
// flight-software trace with periodic +SELAmps latchups, evaluated by
// ILD, the current-only random forest, and three static thresholds.
//
// The campaign stream is recorded once (it is monitor-independent), then
// each detector trains and replays it as one scheduler trial, so the
// monitors evaluate in parallel yet the rendered table is byte-identical
// to a workers=1 run.
func Table2(c SELConfig) ([]DetectorAccuracyResult, *Table, error) {
	type monitorSpec struct {
		name  string
		build func() (ild.Monitor, error)
	}

	// Attach instruments to the ILD detector (not the baselines: Table 2
	// compares detectors, but the telemetry story follows the paper's
	// deployed design).
	ins := ild.NewInstruments(c.Telemetry)
	var episodesCtr, missedCtr *telemetry.Counter
	if c.Telemetry != nil {
		episodesCtr = c.Telemetry.Counter("ild_episodes_total", "episodes")
		missedCtr = c.Telemetry.Counter("ild_episodes_missed_total", "episodes")
	}

	specs := []monitorSpec{
		{"ILD", func() (ild.Monitor, error) {
			det, err := TrainILD(c)
			if err != nil {
				return nil, err
			}
			det.SetInstruments(ins)
			return det, nil
		}},
		{"RandomForest", func() (ild.Monitor, error) { return trainForestBaseline(c), nil }},
	}
	for _, level := range []float64{1.75, 1.80, 1.85} {
		level := level
		specs = append(specs, monitorSpec{fmt.Sprintf("Static %.2fA", level), func() (ild.Monitor, error) {
			return ild.NewStaticThreshold(level)
		}})
	}

	cache := cacheArms(c.Cache, "table2/v1", len(specs),
		func(i int, e *resultcache.Enc) {
			encSELConfig(e, c)
			e.Str(specs[i].name)
		},
		armCodec[table2State]{enc: encTable2State, dec: decTable2State})

	// The recorded campaign stream is monitor-independent input for the
	// replay arms; a fully warm cache never replays, so skip recording.
	var rec *table2Recording
	if !cache.AllHit() {
		rec = recordTable2Campaign(c)
	}

	states, err := sched.Map(len(specs), c.Workers, func(i int) (table2State, error) {
		return cache.CachedArm(i, func() (table2State, error) {
			mon, err := specs[i].build()
			if err != nil {
				return table2State{}, err
			}
			if i == 0 { // ILD owns the detector-side telemetry
				return replayTable2(rec, mon, ins, episodesCtr, missedCtr), nil
			}
			return replayTable2(rec, mon, nil, nil, nil), nil
		})
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, nil, err
	}

	results := make([]DetectorAccuracyResult, len(specs))
	tbl := &Table{
		Title:  "Table 2: SEL detector accuracy",
		Header: []string{"Detector", "Episodes", "FalseNegRate", "FalsePosRate", "MeanLatency", "MaxLatency"},
	}
	for i, mon := range specs {
		st := states[i]
		missed := 0
		for _, hit := range st.episodeHit {
			if !hit {
				missed++
			}
		}
		fnr := 0.0
		if len(st.episodeHit) > 0 {
			fnr = float64(missed) / float64(len(st.episodeHit))
		}
		fpr := 0.0
		if st.negSamples > 0 {
			fpr = float64(st.fpSamples) / float64(st.negSamples)
		}
		var mean, max time.Duration
		for _, l := range st.latencies {
			mean += l
			if l > max {
				max = l
			}
		}
		if len(st.latencies) > 0 {
			mean /= time.Duration(len(st.latencies))
		}
		results[i] = DetectorAccuracyResult{
			Name: mon.name, Episodes: len(st.episodeHit),
			FalseNegativeRate: fnr, FalsePositiveRate: fpr,
			MeanLatency: mean, MaxLatency: max,
		}
		tbl.AddRow(mon.name, fmt.Sprint(len(st.episodeHit)), pct(fnr), pct(fpr),
			mean.Round(time.Millisecond).String(), max.Round(time.Millisecond).String())
	}
	return results, tbl, nil
}

// Fig10 sweeps the latchup magnitude (paper Figure 10): one-minute SEL
// episodes at +0.01 A … +0.10 A during quiescence, reporting the miss
// rate per magnitude. The paper's knee is at ≈0.05 A (ILD's threshold is
// 0.055 A with the rolling-min floor beneath it).
func Fig10(c SELConfig, episodesPer int) (*Figure, error) {
	// The sweep iterates integer centiamps (1..10 → +0.01..+0.10 A):
	// floating-point accumulation (amps += 0.01) makes both the level
	// count and the int64(amps*1000) seed derivation depend on rounding
	// drift, whereas integer levels keep the per-level machine seed
	// exact. Each level is one scheduler trial with its own detector
	// instance (same trained model) and its own seeded RNG.
	const levels = 10
	cache := cacheArms(c.Cache, "fig10/v1", levels,
		func(li int, e *resultcache.Enc) {
			encSELConfig(e, c)
			e.Int(int64(episodesPer))
			e.Int(int64(li + 1)) // centiamp level
		},
		armCodec[float64]{
			enc: func(e *resultcache.Enc, v float64) { e.Float(v) },
			dec: func(d *resultcache.Dec) float64 { return d.Float() },
		})

	// Detector training feeds only computed arms; skip it when warm.
	var model *linmodel.Model
	if !cache.AllHit() {
		base, err := TrainILD(c)
		if err != nil {
			return nil, err
		}
		model = base.Model()
	}
	fig := &Figure{
		Title:  "Figure 10: misdetection rate vs latchup current",
		XLabel: "additional latchup current (A)",
		YLabel: "false negative rate",
	}
	fnr, err := sched.Map(levels, c.Workers, func(li int) (float64, error) {
		return cache.CachedArm(li, func() (float64, error) {
			return fig10Level(c, model, li, episodesPer)
		})
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, err
	}
	s := Series{Name: "ILD"}
	for li, y := range fnr {
		s.Add(float64(li+1)/100, y)
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// fig10Level computes one magnitude level of the Figure 10 sweep.
func fig10Level(c SELConfig, model *linmodel.Model, li, episodesPer int) (float64, error) {
	ca := li + 1
	amps := float64(ca) / 100
	det, err := ild.NewDetector(model, c.ildConfig())
	if err != nil {
		return 0, err
	}
	m := machine.New(c.machineConfig(c.Seed + int64(ca)*10))
	rng := rand.New(rand.NewSource(c.Seed + 2))
	missed := 0
	for ep := 0; ep < episodesPer; ep++ {
		det.Reset()
		// One minute latched, one minute clear, all quiescent.
		injectSEL(m, amps)
		hit := false
		m.RunTrace(trace.Quiescent(rng, time.Minute, 10*time.Second), func(tel machine.Telemetry) {
			if det.Observe(tel) {
				hit = true
			}
		})
		m.ClearSEL()
		det.Reset()
		m.RunTrace(trace.Quiescent(rng, 10*time.Second, 5*time.Second), nil)
		if !hit {
			missed++
		}
	}
	return float64(missed) / float64(episodesPer), nil
}

// Table3 reports ILD's worst-case overhead (paper Table 3): the bubble
// measurement cost per hour of compute and the additional cost of one
// false-positive reboot.
func Table3(rebootCost time.Duration) *Table {
	p := ild.DefaultBubblePolicy()
	meas, reboot := p.WorstCaseOverheadPerHour(rebootCost)
	tbl := &Table{
		Title:  "Table 3: worst-case ILD overhead per hour of compute",
		Header: []string{"Measurement Overhead", "Reboot-Only Overhead"},
	}
	tbl.AddRow(fmt.Sprintf("+%v / hr", meas), fmt.Sprintf("+%v / hr", reboot))
	return tbl
}

// Fig2Result carries the Figure 2 current traces.
type Fig2Result struct {
	Fig            *Figure
	MaxNominalA    float64
	MaxLatchedA    float64
	ThresholdA     float64
	CrossesNominal bool // workload activity alone crosses the trip line
	CrossesLatched bool // quiescent SEL current crosses the trip line
}

// Fig2 reproduces the paper's Figure 2: the current draw of a navigation
// workload before and after a micro-SEL, against the supply's static 4 A
// trip line — demonstrating that the threshold fires on compute and
// never on the latchup.
func Fig2(c SELConfig) *Fig2Result {
	mc := c.machineConfig(c.Seed + 7)
	m := machine.New(mc)
	rng := rand.New(rand.NewSource(c.Seed + 8))

	res := &Fig2Result{ThresholdA: mc.Power.TripThresholdA}
	fig := &Figure{
		Title:  "Figure 2: navigation workload current, before/after SEL",
		XLabel: "time (s)",
		YLabel: "current (A)",
	}
	nominal := Series{Name: "nominal"}
	m.RunTrace(trace.Navigation(rng, time.Minute, 4), func(tel machine.Telemetry) {
		nominal.Add(tel.T.Seconds(), tel.RawA)
		if tel.RawA > res.MaxNominalA {
			res.MaxNominalA = tel.RawA
		}
	})
	injectSEL(m, c.SELAmps)
	latched := Series{Name: fmt.Sprintf("under SEL (+%.2f A)", c.SELAmps)}
	m.RunTrace(trace.Quiescent(rng, time.Minute, 10*time.Second), func(tel machine.Telemetry) {
		latched.Add(tel.T.Seconds(), tel.RawA)
		if tel.RawA > res.MaxLatchedA {
			res.MaxLatchedA = tel.RawA
		}
	})
	fig.Series = append(fig.Series, nominal, latched)
	res.Fig = fig
	res.CrossesNominal = res.MaxNominalA > res.ThresholdA
	res.CrossesLatched = res.MaxLatchedA > res.ThresholdA
	return res
}

// Fig5Result carries the Figure 5 correlation experiment.
type Fig5Result struct {
	Fig         *Figure
	Correlation float64
}

// Fig5 reproduces the paper's Figure 5: a matrix-multiply workload
// stepped across 0–4 cores and the DVFS range correlates ≈99.7 % with
// measured current.
func Fig5(c SELConfig) *Fig5Result {
	m := machine.New(c.machineConfig(c.Seed + 9))
	tr := trace.MatMulSteps(4, 600e6, 1.4e9, 100e6, 500*time.Millisecond)
	fig := &Figure{
		Title:  "Figure 5: current vs CPU activity under stepped matmul",
		XLabel: "time (s)",
		YLabel: "current (A) / instruction rate",
	}
	cur := Series{Name: "current (A)"}
	instr := Series{Name: "instructions/s (×1e9)"}
	var xs, ys []float64
	m.RunTrace(tr, func(tel machine.Telemetry) {
		cur.Add(tel.T.Seconds(), tel.CurrentA)
		instr.Add(tel.T.Seconds(), tel.TotalInstrPerSec()/1e9)
		xs = append(xs, tel.TotalInstrPerSec())
		ys = append(ys, tel.CurrentA)
	})
	fig.Series = append(fig.Series, cur, instr)
	return &Fig5Result{Fig: fig, Correlation: stats.Correlation(xs, ys)}
}
