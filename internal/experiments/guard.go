package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/emr"
	"radshield/internal/fault"
	"radshield/internal/guard"
	"radshield/internal/ild"
	"radshield/internal/linmodel"
	"radshield/internal/machine"
	"radshield/internal/power"
	"radshield/internal/resultcache"
	"radshield/internal/sched"
	"radshield/internal/telemetry"
	"radshield/internal/trace"
)

// Guard campaigns: fault injection against Radshield's own dependencies.
// The other experiments assume the current sensor and the executor cores
// are sound; these sweeps break them on a schedule and measure how the
// guard layer (internal/guard) degrades and recovers — detection
// latency, false-healthy time, degraded-mode dwell, and the mission
// survival delta versus an unguarded detector.

// GuardCampaignConfig parameterizes the sensor-fault sweep.
type GuardCampaignConfig struct {
	// SEL supplies the shared campaign parameters: mission Duration,
	// telemetry cadence, latchup period/magnitude, detection Window,
	// Seed, Workers, Telemetry.
	SEL SELConfig
	// The sweep grid: every fault kind × onset × duration combination
	// is one paired trial (guarded and unguarded arms share seeds).
	Kinds          []power.FaultKind
	Onsets         []time.Duration
	FaultDurations []time.Duration // 0 = permanent once started
	// OffsetA is the bias magnitude used for FaultOffset trials.
	OffsetA float64
	// Supervisor tunes the guard ladder. Note RefireWindow must span a
	// few quiescence opportunities (bubble cadence) or a biased sensor's
	// post-cycle refires are never recognized as a storm.
	Supervisor guard.SupervisorConfig
}

// DefaultGuardCampaignConfig sweeps all four sensor-fault models, one
// mid-mission onset, transient and permanent windows.
func DefaultGuardCampaignConfig() GuardCampaignConfig {
	sel := DefaultSELConfig()
	sel.Duration = 30 * time.Minute
	sel.SELEvery = 8 * time.Minute
	sup := guard.DefaultSupervisorConfig()
	sup.RefireWindow = 10 * time.Minute // covers the 3-minute bubble cadence
	return GuardCampaignConfig{
		SEL:            sel,
		Kinds:          []power.FaultKind{power.FaultStuck, power.FaultDropout, power.FaultOffset, power.FaultGarbage},
		Onsets:         []time.Duration{10 * time.Minute},
		FaultDurations: []time.Duration{6 * time.Minute, 0},
		OffsetA:        0.12,
		Supervisor:     sup,
	}
}

// GuardTrial is one paired sweep point: the same mission flown with the
// guard supervisor (guarded arm) and with a bare ILD detector
// (unguarded arm), sharing seeds so the comparison is paired.
type GuardTrial struct {
	Kind          power.FaultKind
	Onset         time.Duration
	FaultDuration time.Duration // 0 = permanent

	// DetectSamples counts telemetry samples from fault onset to the
	// guard's first demotion (-1: the fault was never recognized).
	DetectSamples int
	// FalseHealthy is how long the fault was active while the guard
	// still fully trusted the sensor (linear mode, healthy verdict).
	FalseHealthy time.Duration
	// DegradedDwell is total mission time spent below the linear rung.
	DegradedDwell time.Duration
	BlindCycles   int
	FinalMode     guard.Mode

	// MissedSELs counts latchup episodes that stayed uncleared past the
	// detection window, per arm.
	MissedSELs          int
	UnguardedMissedSELs int
	PowerCycles         int
	UnguardedCycles     int
	Survived            bool
	UnguardedSurvived   bool
}

func encGuardTrial(e *resultcache.Enc, t GuardTrial) {
	e.Int(int64(t.Kind))
	e.Duration(t.Onset)
	e.Duration(t.FaultDuration)
	e.Int(int64(t.DetectSamples))
	e.Duration(t.FalseHealthy)
	e.Duration(t.DegradedDwell)
	e.Int(int64(t.BlindCycles))
	e.Int(int64(t.FinalMode))
	e.Int(int64(t.MissedSELs))
	e.Int(int64(t.UnguardedMissedSELs))
	e.Int(int64(t.PowerCycles))
	e.Int(int64(t.UnguardedCycles))
	e.Bool(t.Survived)
	e.Bool(t.UnguardedSurvived)
}

func decGuardTrial(d *resultcache.Dec) GuardTrial {
	return GuardTrial{
		Kind:                power.FaultKind(d.Int()),
		Onset:               d.Duration(),
		FaultDuration:       d.Duration(),
		DetectSamples:       int(d.Int()),
		FalseHealthy:        d.Duration(),
		DegradedDwell:       d.Duration(),
		BlindCycles:         int(d.Int()),
		FinalMode:           guard.Mode(d.Int()),
		MissedSELs:          int(d.Int()),
		UnguardedMissedSELs: int(d.Int()),
		PowerCycles:         int(d.Int()),
		UnguardedCycles:     int(d.Int()),
		Survived:            d.Bool(),
		UnguardedSurvived:   d.Bool(),
	}
}

// guardArmResult is one arm's raw tallies.
type guardArmResult struct {
	detectSamples       int
	falseHealthySamples int
	degradedSamples     int
	blindCycles         int
	finalMode           guard.Mode
	missedSELs          int
	powerCycles         int
	survived            bool
}

// guardTrialSpec is one grid point.
type guardTrialSpec struct {
	kind  power.FaultKind
	onset time.Duration
	dur   time.Duration
}

// GuardCampaign sweeps sensor faults against the guard layer and
// renders the comparison table. Trials fan out across the campaign
// scheduler; output is byte-identical at any worker width.
func GuardCampaign(c GuardCampaignConfig) ([]GuardTrial, *Table, error) {
	var specs []guardTrialSpec
	for _, k := range c.Kinds {
		for _, on := range c.Onsets {
			for _, du := range c.FaultDurations {
				specs = append(specs, guardTrialSpec{kind: k, onset: on, dur: du})
			}
		}
	}
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty guard sweep grid")
	}

	// The trial index participates in the key (the trial seed derives
	// from it), so reordering the sweep grid recomputes — by design.
	cache := cacheArms(c.SEL.Cache, "guard/v1", len(specs),
		func(i int, e *resultcache.Enc) {
			encSELConfig(e, c.SEL)
			e.Float(c.OffsetA)
			encSupervisorConfig(e, c.Supervisor)
			sp := specs[i]
			e.Int(int64(sp.kind))
			e.Duration(sp.onset)
			e.Duration(sp.dur)
			e.Int(int64(i))
		},
		armCodec[GuardTrial]{enc: encGuardTrial, dec: decGuardTrial})

	var model *linmodel.Model
	if !cache.AllHit() {
		base, err := TrainILD(c.SEL)
		if err != nil {
			return nil, nil, err
		}
		model = base.Model()
	}

	trials, err := sched.Map(len(specs), c.SEL.Workers, func(i int) (GuardTrial, error) {
		return cache.CachedArm(i, func() (GuardTrial, error) {
			sp := specs[i]
			seed := c.SEL.Seed + 1000 + int64(i)*29
			g, err := flyGuardArm(c, sp, model, seed, true)
			if err != nil {
				return GuardTrial{}, err
			}
			u, err := flyGuardArm(c, sp, model, seed, false)
			if err != nil {
				return GuardTrial{}, err
			}
			return GuardTrial{
				Kind: sp.kind, Onset: sp.onset, FaultDuration: sp.dur,
				DetectSamples: g.detectSamples,
				FalseHealthy:  time.Duration(g.falseHealthySamples) * c.SEL.SampleEvery,
				DegradedDwell: time.Duration(g.degradedSamples) * c.SEL.SampleEvery,
				BlindCycles:   g.blindCycles,
				FinalMode:     g.finalMode,
				MissedSELs:    g.missedSELs, UnguardedMissedSELs: u.missedSELs,
				PowerCycles: g.powerCycles, UnguardedCycles: u.powerCycles,
				Survived: g.survived, UnguardedSurvived: u.survived,
			}, nil
		})
	}, sched.WithTelemetry(c.SEL.Telemetry))
	if err != nil {
		return nil, nil, err
	}

	tbl := &Table{
		Title: fmt.Sprintf("Guard campaign: sensor faults over %v missions, SEL every %v, window %v",
			c.SEL.Duration, c.SEL.SELEvery, c.SEL.Window),
		Header: []string{"Fault", "Onset", "For", "Demoted@", "FalseHealthy", "DegradedDwell",
			"BlindCycles", "FinalMode", "MissedSEL g/u", "Cycles g/u", "Survived g/u"},
	}
	for _, tr := range trials {
		demoted := "never"
		if tr.DetectSamples >= 0 {
			demoted = fmt.Sprintf("%d smp", tr.DetectSamples)
		}
		durStr := "permanent"
		if tr.FaultDuration > 0 {
			durStr = tr.FaultDuration.String()
		}
		tbl.AddRow(tr.Kind.String(), tr.Onset.String(), durStr, demoted,
			tr.FalseHealthy.Round(10*time.Millisecond).String(),
			tr.DegradedDwell.Round(10*time.Millisecond).String(),
			fmt.Sprint(tr.BlindCycles), tr.FinalMode.String(),
			fmt.Sprintf("%d/%d", tr.MissedSELs, tr.UnguardedMissedSELs),
			fmt.Sprintf("%d/%d", tr.PowerCycles, tr.UnguardedCycles),
			fmt.Sprintf("%v/%v", tr.Survived, tr.UnguardedSurvived))
	}
	return trials, tbl, nil
}

// flyGuardArm flies one mission arm: flight software with bubbles,
// latchups on the campaign period, and the scheduled sensor fault. The
// guarded arm routes every sample through the supervisor and acts on
// its decisions; the unguarded arm runs the paper's bare detector.
func flyGuardArm(c GuardCampaignConfig, sp guardTrialSpec, model *linmodel.Model, seed int64, guarded bool) (guardArmResult, error) {
	res := guardArmResult{detectSamples: -1}
	det, err := ild.NewDetector(model, c.SEL.ildConfig())
	if err != nil {
		return res, err
	}
	var sup *guard.Supervisor
	if guarded {
		if sup, err = guard.NewSupervisor(det, c.Supervisor); err != nil {
			return res, err
		}
	}

	mc := c.SEL.machineConfig(seed)
	mc.Telemetry = nil // trials run in parallel; per-trial metrics stay local
	m := machine.New(mc)
	if err := m.Sensor().ScheduleFault(power.SensorFault{
		Kind: sp.kind, Start: sp.onset, Duration: sp.dur, OffsetA: c.OffsetA,
	}); err != nil {
		return res, err
	}

	rng := rand.New(rand.NewSource(seed + 3))
	mission := trace.FlightSoftware(rng, c.SEL.Duration, mc.Cores)
	mission = ild.InjectBubbles(mission, ild.BubblePolicy{
		BubbleLen: c.SEL.ildConfig().SustainFor + time.Second,
		Pause:     3 * time.Minute,
	})

	nextSEL := c.SEL.SELEvery
	selSince := time.Duration(-1)
	missedCounted := false
	faultSamples := 0
	m.RunTrace(mission, func(tel machine.Telemetry) {
		// Latchup episode bookkeeping: one SEL at a time, next one
		// scheduled a period after the previous clears (any power cycle
		// clears it; a damaged board never clears).
		if selSince >= 0 && !m.SELActive() {
			selSince = -1
			nextSEL = tel.T + c.SEL.SELEvery
		}
		if selSince < 0 && tel.T >= nextSEL && !m.Damaged() {
			injectSEL(m, c.SEL.SELAmps)
			selSince = tel.T
			missedCounted = false
		}
		if selSince >= 0 && !missedCounted && tel.T-selSince > c.SEL.Window {
			res.missedSELs++
			missedCounted = true
		}

		faultActive := sp.kind != power.FaultNone && tel.T >= sp.onset &&
			(sp.dur <= 0 || tel.T < sp.onset+sp.dur)
		if faultActive {
			faultSamples++
		}

		if !guarded {
			if det.Observe(tel) {
				m.PowerCycle()
				det.Reset()
			}
			return
		}
		d := sup.Observe(tel)
		if faultActive && d.SensorOK && d.Mode == guard.ModeLinearModel {
			res.falseHealthySamples++
		}
		if d.Mode != guard.ModeLinearModel {
			res.degradedSamples++
		}
		if res.detectSamples < 0 && d.Demoted && faultActive {
			res.detectSamples = faultSamples
		}
		if d.Fired || d.BlindCycle {
			m.PowerCycle()
			sup.NotePowerCycle(tel.T)
		}
	})

	if guarded {
		res.blindCycles = sup.BlindCycles()
		res.finalMode = sup.Mode()
	}
	res.powerCycles = m.PowerCycles()
	res.survived = !m.Damaged()
	return res, nil
}

// WatchdogCampaignConfig parameterizes the EMR replica-fault sweep.
type WatchdogCampaignConfig struct {
	Datasets int
	Chunk    int
	Seed     int64
	Workers  int
	Watchdog guard.WatchdogConfig
	// Stall is the injected hang length for "hang" trials; it must
	// exceed Watchdog.Deadline.
	Stall time.Duration
	// Telemetry, when non-nil, receives the campaign scheduler's
	// sched_* metrics.
	Telemetry *telemetry.Registry
	// Cache, when non-nil, replays already-computed trials from the
	// content-addressed result store (see RESULTCACHE.md).
	Cache *resultcache.Store
}

// DefaultWatchdogCampaignConfig sweeps every executor with both failure
// causes under a 10 ms visit deadline.
func DefaultWatchdogCampaignConfig() WatchdogCampaignConfig {
	wd := guard.DefaultWatchdogConfig()
	wd.Deadline = 10 * time.Millisecond
	return WatchdogCampaignConfig{
		Datasets: 4,
		Chunk:    256,
		Seed:     9,
		Watchdog: wd,
		Stall:    time.Second,
	}
}

// WatchdogTrial is one replica-fault sweep point: one executor failing
// persistently with one cause, run under TMR with the watchdog
// attached, then retried under the degraded plan it prescribes.
type WatchdogTrial struct {
	Executor int
	Cause    string // "hang" or "crash"

	Kills      int
	Crashes    int
	Mode       guard.RedundancyMode
	Backoff    time.Duration // deterministic delay before the retry
	TMROutputs bool          // TMR run produced golden outputs despite the bad core
	Degraded   bool          // degraded-plan retry produced golden outputs
}

// errInjectedCrash is the deterministic crash injected into replica
// visits for "crash" trials.
var errInjectedCrash = fmt.Errorf("experiments: injected replica crash")

func encWatchdogTrial(e *resultcache.Enc, t WatchdogTrial) {
	e.Int(int64(t.Executor))
	e.Str(t.Cause)
	e.Int(int64(t.Kills))
	e.Int(int64(t.Crashes))
	e.Int(int64(t.Mode))
	e.Duration(t.Backoff)
	e.Bool(t.TMROutputs)
	e.Bool(t.Degraded)
}

func decWatchdogTrial(d *resultcache.Dec) WatchdogTrial {
	return WatchdogTrial{
		Executor:   int(d.Int()),
		Cause:      d.Str(),
		Kills:      int(d.Int()),
		Crashes:    int(d.Int()),
		Mode:       guard.RedundancyMode(d.Int()),
		Backoff:    d.Duration(),
		TMROutputs: d.Bool(),
		Degraded:   d.Bool(),
	}
}

// WatchdogCampaign sweeps persistent per-executor faults against the
// EMR watchdog and renders the table. Output is byte-identical at any
// worker width.
func WatchdogCampaign(c WatchdogCampaignConfig) ([]WatchdogTrial, *Table, error) {
	if c.Datasets < 1 || c.Chunk < 1 {
		return nil, nil, fmt.Errorf("experiments: watchdog campaign needs datasets and chunk ≥ 1")
	}
	if c.Stall <= c.Watchdog.Deadline {
		return nil, nil, fmt.Errorf("experiments: Stall %v must exceed the watchdog deadline %v", c.Stall, c.Watchdog.Deadline)
	}
	type wdSpec struct {
		executor int
		cause    string
	}
	var specs []wdSpec
	for e := 0; e < emr.DefaultConfig().Executors; e++ {
		for _, cause := range []string{"hang", "crash"} {
			specs = append(specs, wdSpec{executor: e, cause: cause})
		}
	}

	cache := cacheArms(c.Cache, "watchdog/v1", len(specs),
		func(i int, e *resultcache.Enc) {
			e.Int(int64(c.Datasets))
			e.Int(int64(c.Chunk))
			e.Int(c.Seed)
			e.Duration(c.Watchdog.Deadline)
			e.Int(int64(c.Watchdog.MaxStrikes))
			e.Int(int64(c.Watchdog.RetryLimit))
			e.Duration(c.Watchdog.BackoffBase)
			e.Duration(c.Stall)
			e.Int(int64(specs[i].executor))
			e.Str(specs[i].cause)
		},
		armCodec[WatchdogTrial]{enc: encWatchdogTrial, dec: decWatchdogTrial})

	trials, err := sched.Map(len(specs), c.Workers, func(i int) (WatchdogTrial, error) {
		return cache.CachedArm(i, func() (WatchdogTrial, error) {
			return watchdogTrialArm(c, specs[i].executor, specs[i].cause)
		})
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, nil, err
	}

	tbl := &Table{
		Title: fmt.Sprintf("Watchdog campaign: persistent replica faults, %d datasets, deadline %v",
			c.Datasets, c.Watchdog.Deadline),
		Header: []string{"Executor", "Cause", "Kills", "Crashes", "Mode", "Backoff", "TMR outputs", "Degraded retry"},
	}
	okStr := func(ok bool) string {
		if ok {
			return "golden"
		}
		return "WRONG"
	}
	for _, tr := range trials {
		tbl.AddRow(fmt.Sprint(tr.Executor), tr.Cause, fmt.Sprint(tr.Kills), fmt.Sprint(tr.Crashes),
			tr.Mode.String(), tr.Backoff.String(), okStr(tr.TMROutputs), okStr(tr.Degraded))
	}
	return trials, tbl, nil
}

// watchdogTrialArm flies one (executor, cause) sweep point.
func watchdogTrialArm(c WatchdogCampaignConfig, executor int, cause string) (WatchdogTrial, error) {
	sp := struct {
		executor int
		cause    string
	}{executor, cause}
	tr := WatchdogTrial{Executor: sp.executor, Cause: sp.cause}

	golden, err := watchdogGolden(c)
	if err != nil {
		return tr, err
	}
	w, err := guard.NewWatchdog(c.Watchdog)
	if err != nil {
		return tr, err
	}

	// Stage 1: TMR with the bad core. The watchdog kills/strikes it
	// out; the remaining replicas still vote correct outputs.
	cfg := emr.DefaultConfig()
	cfg.Watch = w
	rt, err := emr.New(cfg)
	if err != nil {
		return tr, err
	}
	spec, err := watchdogSpec(rt, c)
	if err != nil {
		return tr, err
	}
	spec.Hook = func(hp *emr.HookPoint) {
		if hp.Phase == emr.PhaseAfterRead && hp.Executor == sp.executor {
			if sp.cause == "hang" {
				hp.Stall = c.Stall
			} else {
				hp.Fail = errInjectedCrash
			}
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		return tr, err
	}
	tr.Kills = w.Kills()
	tr.Crashes = w.Crashes()
	tr.Mode = w.Mode()
	tr.TMROutputs = outputsMatch(res.Outputs, golden)

	// Stage 2: retry under the degraded plan after the deterministic
	// backoff. A checksum-arbiter plan also runs the arbiter pass and
	// requires it to agree.
	tr.Backoff, _ = w.Backoff(0)
	plan := w.Plan()
	cfg2 := emr.DefaultConfig()
	cfg2.Scheme = plan.Scheme
	cfg2.Executors = plan.Executors
	cfg2.Watch = w
	rt2, err := emr.New(cfg2)
	if err != nil {
		return tr, err
	}
	spec2, err := watchdogSpec(rt2, c)
	if err != nil {
		return tr, err
	}
	res2, err := rt2.Run(spec2)
	if err != nil {
		return tr, err
	}
	tr.Degraded = outputsMatch(res2.Outputs, golden)
	if plan.ChecksumArbiter && tr.Degraded {
		ok, err := watchdogArbiter(c, golden)
		if err != nil {
			return tr, err
		}
		tr.Degraded = ok
	}
	return tr, nil
}

// watchdogJob digests its inputs deterministically.
func watchdogJob(inputs [][]byte) ([]byte, error) {
	var sum uint32
	for _, in := range inputs {
		for _, b := range in {
			sum = sum*31 + uint32(b)
		}
	}
	return []byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)}, nil
}

// watchdogSpec stages the campaign's chunked datasets into rt.
func watchdogSpec(rt *emr.Runtime, c WatchdogCampaignConfig) (emr.Spec, error) {
	data := make([]byte, c.Datasets*c.Chunk)
	for i := range data {
		data[i] = byte(int64(i)*7 + c.Seed)
	}
	ref, err := rt.LoadInput("wd", data)
	if err != nil {
		return emr.Spec{}, err
	}
	datasets := make([]emr.Dataset, c.Datasets)
	for i := range datasets {
		s, err := ref.Slice(uint64(i*c.Chunk), uint64(c.Chunk))
		if err != nil {
			return emr.Spec{}, err
		}
		datasets[i] = emr.Dataset{Inputs: []emr.InputRef{s}}
	}
	return emr.Spec{Name: "watchdog", Datasets: datasets, Job: watchdogJob, CyclesPerByte: 10}, nil
}

// watchdogGolden computes the reference outputs with a single
// unprotected run.
func watchdogGolden(c WatchdogCampaignConfig) ([][]byte, error) {
	cfg := emr.DefaultConfig()
	cfg.Scheme = fault.SchemeNone
	cfg.Executors = 1
	rt, err := emr.New(cfg)
	if err != nil {
		return nil, err
	}
	spec, err := watchdogSpec(rt, c)
	if err != nil {
		return nil, err
	}
	res, err := rt.Run(spec)
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// watchdogArbiter runs the checksum-guarded pass a DMR plan pairs with
// its two replicas and reports whether it agrees with the golden
// outputs.
func watchdogArbiter(c WatchdogCampaignConfig, golden [][]byte) (bool, error) {
	cfg := emr.DefaultConfig()
	cfg.Scheme = fault.SchemeChecksum
	cfg.Executors = 1
	rt, err := emr.New(cfg)
	if err != nil {
		return false, err
	}
	spec, err := watchdogSpec(rt, c)
	if err != nil {
		return false, err
	}
	res, err := rt.Run(spec)
	if err != nil {
		return false, err
	}
	return outputsMatch(res.Outputs, golden), nil
}

// outputsMatch reports whether every dataset output equals the golden.
func outputsMatch(got, want [][]byte) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			return false
		}
	}
	return true
}
