package experiments

import (
	"testing"
	"time"
)

// Golden-equivalence tests for the parallel campaign scheduler: every
// converted campaign must render byte-identical output at any worker
// width. Each test runs the campaign serially (workers=1) to produce
// the golden rendering, then re-runs it at widths 2 and 4 and diffs.
//
// The CI determinism job additionally runs this file under -race at
// GOMAXPROCS=1,2,8.

// assertWidthInvariant runs the campaign at widths 1 (golden), 2 and 4
// and fails on the first byte difference.
func assertWidthInvariant(t *testing.T, run func(workers int) (string, error)) {
	t.Helper()
	golden, err := run(1)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if golden == "" {
		t.Fatal("workers=1 rendered nothing")
	}
	for _, w := range []int{2, 4} {
		got, err := run(w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got != golden {
			t.Errorf("workers=%d output differs from serial run\n--- serial ---\n%s\n--- workers=%d ---\n%s", w, golden, w, got)
		}
	}
}

// equivSEL is a short flight campaign: long enough for two SEL episodes
// (SELEvery is 30 min) so Table2's episode bookkeeping is exercised.
func equivSEL(workers int) SELConfig {
	c := DefaultSELConfig()
	c.Duration = 60 * time.Minute
	c.Workers = workers
	return c
}

func TestParallelEquivalenceTable2(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		_, tbl, err := Table2(equivSEL(workers))
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceFig10(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		fig, err := Fig10(equivSEL(workers), 2)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	})
}

func TestParallelEquivalenceThresholdSweep(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		_, tbl, err := ThresholdSweep(equivSEL(workers), 2)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceMissionSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo mission campaign")
	}
	assertWidthInvariant(t, func(workers int) (string, error) {
		c := DefaultMissionConfig()
		c.Missions = 3
		c.Duration = 2 * time.Hour
		c.Workers = workers
		_, _, tbl, err := MissionSurvival(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceTable7(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		cfg := Table7Config{Runs: 4, Size: 16 << 10, Seed: 7, Workers: workers}
		_, tbl, err := Table7(cfg)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceFig11(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		seu := SEUConfig{Size: 16 << 10, Seed: 42, Workers: workers}
		_, tbl, err := Fig11(seu)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceMissionProfiles(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		_, tbl := MissionProfiles(1, workers)
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceOSFaultCampaign(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		_, tbl, err := OSFaultCampaign(equivOSFault(workers))
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceAdaptiveCampaign(t *testing.T) {
	assertWidthInvariant(t, func(workers int) (string, error) {
		_, tbl, err := AdaptiveCampaign(equivAdaptive(workers))
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	})
}

func TestParallelEquivalenceAblations(t *testing.T) {
	sel := equivSEL(0) // width set per run below
	seu := SEUConfig{Size: 32 << 10, Seed: 42}
	assertWidthInvariant(t, func(workers int) (string, error) {
		sel.Workers = workers
		seu.Workers = workers
		out := AblationRollingMin(sel).String()
		gate, err := AblationQuiescenceGate(sel)
		if err != nil {
			return "", err
		}
		out += gate.String()
		ecc, err := AblationCacheECC(seu)
		if err != nil {
			return "", err
		}
		out += ecc.String()
		return out, nil
	})
}
