package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/emr"
	"radshield/internal/fault"
	"radshield/internal/ild"
	"radshield/internal/machine"
	"radshield/internal/resultcache"
	"radshield/internal/sched"
	"radshield/internal/telemetry"
	"radshield/internal/trace"
	"radshield/internal/workloads"
)

// Mission-survival Monte Carlo: the deployment-level question the paper
// motivates but cannot run on the ground — across many simulated
// missions in a given radiation environment, how often does the
// spacecraft survive with and without Radshield?
//
// A mission is lost when (a) a latchup persists past the thermal damage
// horizon, or (b) a silently corrupted payload product is downlinked.
// Detected payload failures are retried (standard flight-software
// behaviour), so only SDC counts against the protected arm.

// MissionConfig parameterizes the campaign.
type MissionConfig struct {
	Environment fault.Environment
	Missions    int
	Duration    time.Duration // per mission
	// RateBoost multiplies event rates so short simulated missions see
	// meaningful event counts (survival statistics need events).
	RateBoost float64
	Seed      int64

	// Workers bounds the campaign scheduler's parallelism; <= 0 means
	// one worker per CPU. Any width produces byte-identical output:
	// each mission is an independently-seeded trial and tallies are
	// accumulated in mission order.
	Workers int

	// Telemetry, when non-nil, receives the campaign scheduler's
	// sched_* metrics (see TELEMETRY.md).
	Telemetry *telemetry.Registry

	// Cache, when non-nil, replays already-flown missions from the
	// content-addressed result store instead of recomputing them (see
	// RESULTCACHE.md). Output is byte-identical warm or cold.
	Cache *resultcache.Store
}

// DefaultMissionConfig runs compressed 12-hour missions at boosted LEO
// rates.
func DefaultMissionConfig() MissionConfig {
	return MissionConfig{
		Environment: fault.LEO,
		Missions:    5,
		Duration:    12 * time.Hour,
		RateBoost:   600,
		Seed:        3,
	}
}

// MissionTally summarizes one arm of the campaign.
type MissionTally struct {
	Survived        int
	LostToLatchup   int
	LostToSDC       int
	LatchupsCleared int
	SEUsOutvoted    int
}

// MissionSurvival runs the campaign for both arms and renders the table.
func MissionSurvival(c MissionConfig) (protected, unprotected MissionTally, tbl *Table, err error) {
	env := c.Environment
	env.SELPerYear *= c.RateBoost
	env.SEUPerDay *= c.RateBoost / 10 // SEUs are already frequent

	// Each mission's key covers everything its pair depends on: the
	// un-boosted environment, the boost, the mission length, and the
	// trial-derived seed. Missions count is deliberately absent —
	// growing the sweep replays the arms already flown.
	cache := cacheArms(c.Cache, "mission/v1", c.Missions,
		func(i int, e *resultcache.Enc) {
			encEnvironment(e, c.Environment)
			e.Float(c.RateBoost)
			e.Duration(c.Duration)
			e.Int(c.Seed)
			e.Int(int64(i))
		},
		armCodec[missionPair]{enc: encMissionPair, dec: decMissionPair})

	// The golden payload run exists only to compare computed arms
	// against; a fully warm cache skips it.
	var golden [][]byte
	if !cache.AllHit() {
		golden, err = missionGolden()
		if err != nil {
			return protected, unprotected, nil, err
		}
	}

	// One trial per mission, both arms: the arms share a seed (identical
	// event schedule) so keeping them in one work item preserves the
	// paired comparison while the scheduler fans missions across CPUs.
	pairs, err := sched.Map(c.Missions, c.Workers, func(i int) (missionPair, error) {
		return cache.CachedArm(i, func() (missionPair, error) {
			seed := c.Seed + int64(i)*17
			// One RNG stream builds the event schedule and the flight-software
			// trace once per pair; both arms replay them read-only. (Each arm
			// used to rebuild identical copies from the shared seed — the
			// campaign's largest per-trial constructions, doubled for nothing.)
			rng := rand.New(rand.NewSource(seed))
			events := env.Schedule(rng, c.Duration)
			mission := trace.FlightSoftware(rng, c.Duration, machine.DefaultConfig().Cores)
			p, err := flyOneMission(c, seed, true, golden, events, mission)
			if err != nil {
				return missionPair{}, err
			}
			u, err := flyOneMission(c, seed, false, golden, events, mission)
			if err != nil {
				return missionPair{}, err
			}
			return missionPair{protected: p, unprotected: u}, nil
		})
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return protected, unprotected, nil, err
	}
	for _, pr := range pairs {
		accumulate(&protected, pr.protected)
		accumulate(&unprotected, pr.unprotected)
	}

	tbl = &Table{
		Title: fmt.Sprintf("Mission survival: %d×%v missions, %s environment (rates ×%.0f)",
			c.Missions, c.Duration, c.Environment.Name, c.RateBoost),
		Header: []string{"Arm", "Survived", "Lost (latchup)", "Lost (SDC)", "SELs cleared", "SEUs outvoted"},
	}
	row := func(name string, t MissionTally) {
		tbl.AddRow(name, fmt.Sprintf("%d/%d", t.Survived, c.Missions),
			fmt.Sprint(t.LostToLatchup), fmt.Sprint(t.LostToSDC),
			fmt.Sprint(t.LatchupsCleared), fmt.Sprint(t.SEUsOutvoted))
	}
	row("Radshield (ILD+EMR)", protected)
	row("unprotected", unprotected)
	return protected, unprotected, tbl, nil
}

type missionResult struct {
	damaged         bool
	sdc             bool
	latchupsCleared int
	seusOutvoted    int
}

// missionPair carries both arms of one mission trial through the
// scheduler (and the result cache) together, preserving the paired
// comparison.
type missionPair struct {
	protected   missionResult
	unprotected missionResult
}

func encMissionResult(e *resultcache.Enc, r missionResult) {
	e.Bool(r.damaged)
	e.Bool(r.sdc)
	e.Int(int64(r.latchupsCleared))
	e.Int(int64(r.seusOutvoted))
}

func decMissionResult(d *resultcache.Dec) missionResult {
	return missionResult{
		damaged:         d.Bool(),
		sdc:             d.Bool(),
		latchupsCleared: int(d.Int()),
		seusOutvoted:    int(d.Int()),
	}
}

func encMissionPair(e *resultcache.Enc, p missionPair) {
	encMissionResult(e, p.protected)
	encMissionResult(e, p.unprotected)
}

func decMissionPair(d *resultcache.Dec) missionPair {
	return missionPair{protected: decMissionResult(d), unprotected: decMissionResult(d)}
}

func accumulate(t *MissionTally, r missionResult) {
	switch {
	case r.damaged:
		t.LostToLatchup++
	case r.sdc:
		t.LostToSDC++
	default:
		t.Survived++
	}
	t.LatchupsCleared += r.latchupsCleared
	t.SEUsOutvoted += r.seusOutvoted
}

// missionGolden computes the reference payload outputs once.
func missionGolden() ([][]byte, error) {
	cfg := emr.DefaultConfig()
	cfg.Scheme = fault.SchemeNone
	rt, err := getRuntime(cfg)
	if err != nil {
		return nil, err
	}
	defer putRuntime(cfg, rt)
	spec, err := workloads.ImageProcessing().Build(rt, 32<<10, 2026)
	if err != nil {
		return nil, err
	}
	res, err := rt.Run(spec)
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// flyOneMission simulates one mission arm. events and mission are the
// pair-shared scaffolding, consumed read-only (the shielded arm derives
// its own bubble-injected copy).
func flyOneMission(c MissionConfig, seed int64, shielded bool, golden [][]byte, events []fault.Event, mission *trace.Trace) (missionResult, error) {
	var out missionResult

	selCfg := DefaultSELConfig()
	selCfg.Seed = seed
	var det *ild.Detector
	if shielded {
		var err error
		det, err = TrainILD(selCfg)
		if err != nil {
			return out, err
		}
	}

	mc := machine.DefaultConfig()
	mc.SampleEvery = selCfg.SampleEvery
	mc.SensorSeed = seed + 1
	m := machine.New(mc)
	if shielded {
		mission = ild.InjectBubbles(mission, ild.BubblePolicy{BubbleLen: 4 * time.Second, Pause: 3 * time.Minute})
	}

	scheme := fault.SchemeUnprotectedParallel
	if shielded {
		scheme = fault.SchemeEMR
	}

	nextEvent := 0
	pendingSEUs := 0
	nextContact := 3 * time.Hour
	var payloadErr error
	m.RunTrace(mission, func(tel machine.Telemetry) {
		for nextEvent < len(events) && events[nextEvent].T <= tel.T {
			ev := events[nextEvent]
			nextEvent++
			if ev.Kind == fault.SEL {
				injectSEL(m, ev.Amps)
			} else {
				pendingSEUs++
			}
		}
		if det != nil && det.Observe(tel) {
			m.PowerCycle()
			det.Reset()
			out.latchupsCleared++
		}
		if tel.T >= nextContact && payloadErr == nil {
			nextContact += 3 * time.Hour
			ok, corrected, err := missionPayload(scheme, seed+int64(tel.T), pendingSEUs, golden)
			if err != nil {
				payloadErr = err
				return
			}
			pendingSEUs = 0
			out.seusOutvoted += corrected
			if !ok {
				out.sdc = true
			}
		}
	})
	if payloadErr != nil {
		return out, payloadErr
	}
	out.damaged = m.Damaged()
	return out, nil
}

// missionPayload runs the localization job under the scheme with the SEU
// backlog striking the cache; detected failures are retried clean.
func missionPayload(scheme fault.Scheme, seed int64, seus int, golden [][]byte) (ok bool, corrected int, err error) {
	cfg := emr.DefaultConfig()
	cfg.Scheme = scheme
	rt, err := getRuntime(cfg)
	if err != nil {
		return false, 0, err
	}
	defer putRuntime(cfg, rt)
	spec, err := workloads.ImageProcessing().Build(rt, 32<<10, 2026)
	if err != nil {
		return false, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	remaining := seus
	spec.Hook = func(hp *emr.HookPoint) {
		if remaining > 0 && hp.Phase == emr.PhaseAfterRead && rng.Float64() < 0.05 {
			reg := hp.Regions[rng.Intn(len(hp.Regions))]
			f := fault.RandomFlip(rng, reg.Len)
			if rt.Cache().FlipBit(reg.Addr+f.Offset, f.Bit) {
				remaining--
			}
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		return false, 0, err
	}
	for i := range golden {
		if res.Outputs[i] == nil {
			continue // detected → retried clean; not SDC
		}
		if !bytes.Equal(res.Outputs[i], golden[i]) {
			return false, res.Report.Votes.Corrected, nil
		}
	}
	return true, res.Report.Votes.Corrected, nil
}
