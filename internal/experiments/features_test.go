package experiments

import (
	"strings"
	"testing"
)

func TestFeatureSelectionRanksRealCountersFirst(t *testing.T) {
	res := FeatureSelection(DefaultSELConfig())
	t.Logf("\n%s", res.Tbl)
	if res.TopCounters < 0.95 {
		t.Fatalf("genuine counters carry %.3f importance, want ≥0.95", res.TopCounters)
	}
	if res.DistractorMass > 0.05 {
		t.Fatalf("distractors carry %.3f importance, want ≈0", res.DistractorMass)
	}
	// The paper singles out instruction rate, bus cycles, and frequency
	// as the features most correlated with total current; at least one
	// must appear in the top 5 ranks.
	foundActivity := false
	for _, row := range res.Tbl.Rows[:5] {
		name := row[1]
		if strings.Contains(name, "instr_per_sec") ||
			strings.Contains(name, "freq_hz") ||
			strings.Contains(name, "bus_cycles") {
			foundActivity = true
		}
	}
	if !foundActivity {
		t.Fatalf("no activity counter in the top 5: %v", res.Tbl.Rows[:5])
	}
}
