package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named (x, y) data series for figure-style results.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// String renders the figure as aligned columns with an ASCII bar per
// point (scaled to the figure-wide y range), one block per series.
func (f *Figure) String() string {
	lo, hi := f.yRange()
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n(%s vs %s)\n", f.Title, f.YLabel, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- %s --\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "  %12.4g  %12.6g  |%s\n", s.X[i], s.Y[i], bar(s.Y[i], lo, hi, 32))
		}
	}
	return b.String()
}

// yRange returns the min/max y across all series.
func (f *Figure) yRange() (lo, hi float64) {
	first := true
	for _, s := range f.Series {
		for _, y := range s.Y {
			if first || y < lo {
				lo = y
			}
			if first || y > hi {
				hi = y
			}
			first = false
		}
	}
	return lo, hi
}

// bar renders a value as a proportional ASCII bar within [lo, hi].
func bar(y, lo, hi float64, width int) string {
	if hi <= lo {
		return ""
	}
	n := int((y - lo) / (hi - lo) * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n)
}

// pct formats a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }
