package experiments

import (
	"testing"

	"radshield/internal/fault"
)

func quickSEU() SEUConfig { return SEUConfig{Size: 64 << 10, Seed: 42} }

func TestFig11ShapeMatchesPaper(t *testing.T) {
	rows, tbl, err := Fig11(quickSEU())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 workloads", len(rows))
	}
	for _, r := range rows {
		// EMR always beats serial 3-MR and always costs something over
		// the unprotected bound (paper: 7–77% slowdown).
		if r.EMRRel >= r.Serial3MRRel {
			t.Errorf("%s: EMR (%.2f) not faster than serial 3-MR (%.2f)", r.Workload, r.EMRRel, r.Serial3MRRel)
		}
		if r.EMRRel < 1.0 {
			t.Errorf("%s: EMR (%.2f) beat the unprotected bound — accounting bug", r.Workload, r.EMRRel)
		}
		if r.EMRRel > 2.6 {
			t.Errorf("%s: EMR rel %.2f far above the paper's band", r.Workload, r.EMRRel)
		}
		if r.Serial3MRRel < 2.0 {
			t.Errorf("%s: serial 3-MR rel %.2f, want ≈3", r.Workload, r.Serial3MRRel)
		}
	}
}

func TestFig12CrossFrontierShape(t *testing.T) {
	fig, err := Fig12(42, 0, []int{64 << 10, 256 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", fig)
	get := func(name string) Series {
		for _, s := range fig.Series {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("series %q missing", name)
		return Series{}
	}
	emrD, mrD := get("EMR/dram"), get("3MR/dram")
	emrS, mrS := get("EMR/disk"), get("3MR/disk")
	for i := range emrD.X {
		// 3-MR consistently slower than EMR on both frontiers.
		if mrD.Y[i] <= emrD.Y[i] {
			t.Errorf("dram size %g: 3MR %.4g ≤ EMR %.4g", emrD.X[i], mrD.Y[i], emrD.Y[i])
		}
		if mrS.Y[i] <= emrS.Y[i] {
			t.Errorf("disk size %g: 3MR %.4g ≤ EMR %.4g", emrS.X[i], mrS.Y[i], emrS.Y[i])
		}
		// Disk frontier slower than DRAM frontier.
		if emrS.Y[i] <= emrD.Y[i] {
			t.Errorf("size %g: disk EMR %.4g ≤ dram EMR %.4g", emrD.X[i], emrS.Y[i], emrD.Y[i])
		}
	}
	// The runtime gap grows with input size.
	gapSmall := mrD.Y[0] - emrD.Y[0]
	gapLarge := mrD.Y[len(mrD.Y)-1] - emrD.Y[len(emrD.Y)-1]
	if gapLarge <= gapSmall {
		t.Errorf("3MR−EMR gap did not grow with size: %.4g → %.4g", gapSmall, gapLarge)
	}
}

func TestFig13SweetSpot(t *testing.T) {
	points, tbl, err := Fig13(quickSEU())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	byWorkload := map[string][]Fig13Point{}
	for _, p := range points {
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	for name, ps := range byWorkload {
		// Points are ordered by descending threshold: 2.0 (no
		// replication), 0.5, 0.01 (shared block), 0.0 (everything).
		none, shared, all := ps[0], ps[2], ps[3]
		if !(none.ReplicaFrac == 0 && shared.ReplicaFrac > 0 && all.ReplicaFrac > shared.ReplicaFrac) {
			t.Errorf("%s: replica fractions not monotone: %v %v %v",
				name, none.ReplicaFrac, shared.ReplicaFrac, all.ReplicaFrac)
		}
		// The shared-block sweet spot beats no replication on runtime.
		if shared.RuntimeSec >= none.RuntimeSec {
			t.Errorf("%s: sweet spot (%.4f s) not faster than no replication (%.4f s)",
				name, shared.RuntimeSec, none.RuntimeSec)
		}
		// Full replication costs the most memory.
		if all.PeakMemBytes <= shared.PeakMemBytes {
			t.Errorf("%s: full replication memory %d ≤ sweet spot %d",
				name, all.PeakMemBytes, shared.PeakMemBytes)
		}
	}
}

func TestTable4MatchesPaperExactly(t *testing.T) {
	tbl := Table4()
	t.Logf("\n%s", tbl)
	want := [][2]string{
		{"None", "0.00%"},
		{"Unprotected parallel 3-MR", "75.00%"},
		{"3-MR", "100.00%"},
		{"EMR", "100.00%"},
	}
	for i, w := range want {
		if tbl.Rows[i][0] != w[0] || tbl.Rows[i][1] != w[1] {
			t.Errorf("row %d = %v, want %v", i, tbl.Rows[i], w)
		}
	}
}

func TestTable6Breakdown(t *testing.T) {
	res, err := Table6(quickSEU())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Tbl)
	// Paper Table 6: EMR total ≈ 40% of 3-MR; serial reads disk 3×;
	// compute dominates both.
	ratio := res.EMR.Makespan.Seconds() / res.Serial.Makespan.Seconds()
	if ratio < 0.25 || ratio > 0.75 {
		t.Errorf("EMR/3MR total = %.2f, want ≈0.4", ratio)
	}
	if res.Serial.DiskReadTime.Seconds() < 2.5*res.EMR.DiskReadTime.Seconds() {
		t.Errorf("serial disk %.4g not ≈3× EMR %.4g",
			res.Serial.DiskReadTime.Seconds(), res.EMR.DiskReadTime.Seconds())
	}
	if res.Serial.ComputeTime < res.Serial.FlushTime {
		t.Error("serial compute does not dominate flush")
	}
	if frac := res.EMR.ComputeTime.Seconds() / res.EMR.Makespan.Seconds(); frac < 0.7 {
		t.Errorf("EMR compute fraction %.2f, want dominant (paper: 96%%)", frac)
	}
}

func TestFig14EnergyShape(t *testing.T) {
	rows, tbl, err := Fig14(quickSEU())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	savings := 0
	for _, r := range rows {
		// Radshield adds only a sliver over EMR (ILD is cheap).
		if r.RadshieldRel < r.EMRRel || r.RadshieldRel > r.EMRRel*1.1 {
			t.Errorf("%s: Radshield %.2f vs EMR %.2f — ILD overhead should be marginal", r.Workload, r.RadshieldRel, r.EMRRel)
		}
		if r.EMRRel < r.Serial3MRRel {
			savings++
		}
	}
	// EMR saves energy on most workloads (the paper's DNN is the
	// conflict-heavy exception).
	if savings < 3 {
		t.Errorf("EMR beat serial 3-MR energy on only %d of 5 workloads", savings)
	}
}

func TestTable7NoSDCUnderProtection(t *testing.T) {
	cfg := DefaultTable7Config()
	cfg.Runs = 12
	cfg.Size = 32 << 10
	tallies, tbl, err := Table7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	for _, name := range []string{"3-MR", "EMR", "EMR + MBU"} {
		if got := tallies[name].Counts[fault.SDC]; got != 0 {
			t.Errorf("%s: %d SDCs, want 0 (paper Table 7)", name, got)
		}
		if tallies[name].Total() != cfg.Runs {
			t.Errorf("%s: %d runs recorded", name, tallies[name].Total())
		}
	}
	// Unprotected runs must show silent corruption (the reason Radshield
	// exists).
	if tallies["None"].Counts[fault.SDC] == 0 {
		t.Error("no SDCs under no protection — injection too weak")
	}
	// Protected schemes actively correct some faults.
	if tallies["EMR"].Counts[fault.Corrected] == 0 {
		t.Error("EMR corrected nothing")
	}
}

func TestTable8Shape(t *testing.T) {
	tbl := Table8()
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestWindowOfVulnerabilityBelowOne(t *testing.T) {
	wov, err := WindowOfVulnerability(quickSEU())
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.2.6: ≈0.8 — EMR is struck less often than serial 3-MR
	// despite using twice the die area.
	if wov <= 0 || wov >= 1.2 {
		t.Fatalf("window of vulnerability = %.2f, want < ≈1 (paper: 0.8)", wov)
	}
}

func TestAblationScheduling(t *testing.T) {
	tbl, err := AblationScheduling(quickSEU())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}
