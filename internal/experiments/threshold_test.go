package experiments

import "testing"

func TestThresholdSweepSelects055(t *testing.T) {
	points, tbl, err := ThresholdSweep(DefaultSELConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(points) != 9 { // 0.040 … 0.080 in 0.005 steps
		t.Fatalf("points = %d, want 9", len(points))
	}
	// The paper's chosen operating point (0.055 A) must show zero false
	// negatives; thresholds at/above the 0.07 A SEL magnitude must miss.
	for _, p := range points {
		switch {
		case p.ThresholdA <= 0.0601:
			if p.FalseNegativeRate != 0 {
				t.Errorf("threshold %.3f: FNR = %v, want 0 (SEL is +0.07 A)", p.ThresholdA, p.FalseNegativeRate)
			}
		case p.ThresholdA >= 0.080:
			// Above the SEL magnitude plus any drift headroom, episodes
			// must be missed. (0.075 straddles: ±0.012 A orbital drift can
			// lift a +0.07 A residual past it in favourable phases.)
			if p.FalseNegativeRate == 0 {
				t.Errorf("threshold %.3f: FNR = 0, expected misses above the SEL magnitude", p.ThresholdA)
			}
		}
	}
	// False positives must be non-increasing in the threshold (higher bar
	// → fewer spurious flags).
	for i := 1; i < len(points); i++ {
		if points[i].FalsePositiveRate > points[i-1].FalsePositiveRate+1e-9 {
			t.Errorf("FPR increased with threshold: %.3f→%.3f (%v→%v)",
				points[i-1].ThresholdA, points[i].ThresholdA,
				points[i-1].FalsePositiveRate, points[i].FalsePositiveRate)
		}
	}
	// At the chosen 0.055 A the detector is clean on both axes.
	chosen := points[3]
	if chosen.ThresholdA < 0.0549 || chosen.ThresholdA > 0.0551 {
		t.Fatalf("point 3 threshold = %v", chosen.ThresholdA)
	}
	if chosen.FalseNegativeRate != 0 || chosen.FalsePositiveRate > 0.001 {
		t.Errorf("0.055 A operating point not clean: FNR=%v FPR=%v",
			chosen.FalseNegativeRate, chosen.FalsePositiveRate)
	}
}
