package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/emr"
	"radshield/internal/fault"
	"radshield/internal/ild"
	"radshield/internal/resultcache"
	"radshield/internal/sched"
	"radshield/internal/telemetry"
	"radshield/internal/workloads"
)

// SEUConfig parameterizes the EMR experiments.
type SEUConfig struct {
	Size int   // input volume per workload in bytes
	Seed int64 // synthetic-data seed

	// Workers bounds the campaign scheduler's parallelism across the
	// independent (workload, scheme) runs; <= 0 means one worker per
	// CPU. Output is byte-identical at any width; with workers > 1 only
	// the interleaving of telemetry *events* may vary (counters are
	// order-independent sums).
	Workers int

	// Telemetry, when non-nil, receives per-run EMR metrics from every
	// runtime the experiment constructs (see TELEMETRY.md).
	Telemetry *telemetry.Registry

	// Cache, when non-nil, replays already-computed arms from the
	// content-addressed result store (see RESULTCACHE.md).
	Cache *resultcache.Store
}

// DefaultSEUConfig returns the default workload sizing.
func DefaultSEUConfig() SEUConfig { return SEUConfig{Size: 256 << 10, Seed: 42} }

// runScheme executes a workload under the given scheme/frontier and
// returns the report.
func runScheme(b workloads.Builder, scheme fault.Scheme, frontier emr.Frontier, c SEUConfig, hook emr.Hook, threshold *float64) (*emr.Result, error) {
	cfg := emr.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Frontier = frontier
	cfg.Telemetry = c.Telemetry
	if frontier == emr.FrontierStorage {
		cfg.DRAMECC = false
	}
	cfg.DRAMSize = 256 << 20
	cfg.StorageSize = 256 << 20
	rt, err := getRuntime(cfg)
	if err != nil {
		return nil, err
	}
	defer putRuntime(cfg, rt)
	spec, err := b.Build(rt, c.Size, c.Seed)
	if err != nil {
		return nil, err
	}
	spec.Hook = hook
	spec.ReplicationThreshold = threshold
	return rt.Run(spec)
}

// Fig11Row is one workload's relative runtimes.
type Fig11Row struct {
	Workload       string
	Serial3MRRel   float64 // makespan / unprotected makespan
	EMRRel         float64
	EMRSlowdownPct float64 // EMR overhead over the unprotected bound
}

// Fig11 reproduces the paper's Figure 11: serial 3-MR and EMR runtimes
// on the DRAM frontier, normalized to unprotected parallel 3-MR.
func Fig11(c SEUConfig) ([]Fig11Row, *Table, error) {
	tbl := &Table{
		Title:  "Figure 11: relative runtime (normalized to unprotected parallel 3-MR, DRAM frontier)",
		Header: []string{"Workload", "Unprotected", "EMR", "Serial 3-MR"},
	}
	// One trial per workload; the three scheme runs inside a trial stay
	// serial so the normalization denominator rides in the same work item.
	wls := workloads.All()
	cache := cacheArms(c.Cache, "fig11/v1", len(wls),
		func(i int, e *resultcache.Enc) {
			e.Int(int64(c.Size))
			e.Int(c.Seed)
			e.Str(wls[i].Name)
		},
		armCodec[Fig11Row]{
			enc: func(e *resultcache.Enc, r Fig11Row) {
				e.Str(r.Workload)
				e.Float(r.Serial3MRRel)
				e.Float(r.EMRRel)
				e.Float(r.EMRSlowdownPct)
			},
			dec: func(d *resultcache.Dec) Fig11Row {
				return Fig11Row{
					Workload:       d.Str(),
					Serial3MRRel:   d.Float(),
					EMRRel:         d.Float(),
					EMRSlowdownPct: d.Float(),
				}
			},
		})
	rows, err := sched.Map(len(wls), c.Workers, func(i int) (Fig11Row, error) {
		return cache.CachedArm(i, func() (Fig11Row, error) {
			b := wls[i]
			base, err := runScheme(b, fault.SchemeUnprotectedParallel, emr.FrontierDRAM, c, nil, nil)
			if err != nil {
				return Fig11Row{}, fmt.Errorf("%s/unprotected: %w", b.Name, err)
			}
			emrRes, err := runScheme(b, fault.SchemeEMR, emr.FrontierDRAM, c, nil, nil)
			if err != nil {
				return Fig11Row{}, fmt.Errorf("%s/emr: %w", b.Name, err)
			}
			ser, err := runScheme(b, fault.SchemeSerial3MR, emr.FrontierDRAM, c, nil, nil)
			if err != nil {
				return Fig11Row{}, fmt.Errorf("%s/serial: %w", b.Name, err)
			}
			den := float64(base.Report.Makespan)
			row := Fig11Row{
				Workload:     b.Name,
				Serial3MRRel: float64(ser.Report.Makespan) / den,
				EMRRel:       float64(emrRes.Report.Makespan) / den,
			}
			row.EMRSlowdownPct = (row.EMRRel - 1) * 100
			return row, nil
		})
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		tbl.AddRow(row.Workload, "1.00", fmt.Sprintf("%.2f", row.EMRRel), fmt.Sprintf("%.2f", row.Serial3MRRel))
	}
	return rows, tbl, nil
}

// Fig12 reproduces the input-size sweep on the encryption workload over
// both frontiers (paper Figure 12). Each (scheme, frontier, size) cell
// is one scheduler trial bounded by workers (<= 0: one per CPU).
func Fig12(seed int64, workers int, sizes []int) (*Figure, error) {
	if len(sizes) == 0 {
		sizes = []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	}
	fig := &Figure{
		Title:  "Figure 12: AES-256 runtime vs input size, by scheme and frontier",
		XLabel: "input size (bytes)",
		YLabel: "virtual runtime (s)",
	}
	b := workloads.Encryption()
	combos := []struct {
		name     string
		scheme   fault.Scheme
		frontier emr.Frontier
	}{
		{"EMR/dram", fault.SchemeEMR, emr.FrontierDRAM},
		{"3MR/dram", fault.SchemeSerial3MR, emr.FrontierDRAM},
		{"EMR/disk", fault.SchemeEMR, emr.FrontierStorage},
		{"3MR/disk", fault.SchemeSerial3MR, emr.FrontierStorage},
	}
	secs, err := sched.Map(len(combos)*len(sizes), workers, func(k int) (float64, error) {
		combo, size := combos[k/len(sizes)], sizes[k%len(sizes)]
		res, err := runScheme(b, combo.scheme, combo.frontier, SEUConfig{Size: size, Seed: seed}, nil, nil)
		if err != nil {
			return 0, fmt.Errorf("%s size %d: %w", combo.name, size, err)
		}
		return res.Report.Makespan.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	for ci, combo := range combos {
		s := Series{Name: combo.name}
		for si, size := range sizes {
			s.Add(float64(size), secs[ci*len(sizes)+si])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig13Point is one replication-threshold sweep sample.
type Fig13Point struct {
	Workload     string
	Threshold    float64
	ReplicaFrac  float64 // replicated bytes / (executors × input bytes)
	RuntimeSec   float64
	PeakMemBytes uint64
	Jobsets      int
}

// Fig13 sweeps the common-data replication threshold for the three
// shared-block workloads (paper Figure 13): threshold > 1 disables
// replication (≈ serial 3-MR), 0 replicates everything (fully-protected
// parallel 3-MR at 3× memory); the sweet spot replicates just the shared
// block.
func Fig13(c SEUConfig) ([]Fig13Point, *Table, error) {
	thresholds := []float64{2.0, 0.5, 0.01, 0.0}
	names := []string{"encryption", "image-processing", "dnn"}
	tbl := &Table{
		Title:  "Figure 13: replication threshold vs runtime and memory (EMR, DRAM frontier)",
		Header: []string{"Workload", "Threshold", "ReplicaFrac", "Runtime(s)", "PeakMem(B)", "Jobsets"},
	}
	points, err := sched.Map(len(names)*len(thresholds), c.Workers, func(k int) (Fig13Point, error) {
		name, th := names[k/len(thresholds)], thresholds[k%len(thresholds)]
		b, err := workloads.ByName(name)
		if err != nil {
			return Fig13Point{}, err
		}
		res, err := runScheme(b, fault.SchemeEMR, emr.FrontierDRAM, c, nil, &th)
		if err != nil {
			return Fig13Point{}, fmt.Errorf("%s thr %v: %w", name, th, err)
		}
		rep := res.Report
		frac := 0.0
		if rep.InputBytes > 0 {
			frac = float64(rep.ReplicaBytes) / float64(3*rep.InputBytes)
		}
		return Fig13Point{
			Workload: name, Threshold: th, ReplicaFrac: frac,
			RuntimeSec: rep.Makespan.Seconds(), PeakMemBytes: rep.PeakMemoryBytes,
			Jobsets: rep.Jobsets,
		}, nil
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, nil, err
	}
	for _, p := range points {
		tbl.AddRow(p.Workload, fmt.Sprintf("%.3f", p.Threshold), pct(p.ReplicaFrac),
			fmt.Sprintf("%.4f", p.RuntimeSec), fmt.Sprint(p.PeakMemBytes), fmt.Sprint(p.Jobsets))
	}
	return points, tbl, nil
}

// Table4 reproduces the protected-die-area table.
func Table4() *Table {
	tbl := &Table{
		Title:  "Table 4: relative protected circuit area (Snapdragon 845 die fractions)",
		Header: []string{"Reliability Scheme", "Relative Area Protected"},
	}
	for _, s := range []fault.Scheme{fault.SchemeNone, fault.SchemeUnprotectedParallel, fault.SchemeSerial3MR, fault.SchemeEMR} {
		tbl.AddRow(s.String(), pct(fault.ProtectedAreaFraction(s, fault.Snapdragon845Areas)))
	}
	return tbl
}

// Table6Result carries the image-processing runtime breakdown.
type Table6Result struct {
	Serial *emr.Report
	EMR    *emr.Report
	Tbl    *Table
}

// Table6 reproduces the operation-level runtime breakdown of the image
// processing workload on the DRAM frontier (paper Table 6).
func Table6(c SEUConfig) (*Table6Result, error) {
	b := workloads.ImageProcessing()
	ser, err := runScheme(b, fault.SchemeSerial3MR, emr.FrontierDRAM, c, nil, nil)
	if err != nil {
		return nil, err
	}
	em, err := runScheme(b, fault.SchemeEMR, emr.FrontierDRAM, c, nil, nil)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title:  "Table 6: image-processing runtime breakdown (DRAM frontier)",
		Header: []string{"Operation", "3-MR", "EMR"},
	}
	f := func(d time.Duration) string { return fmt.Sprintf("%.4fs", d.Seconds()) }
	tbl.AddRow("Disk Read", f(ser.Report.DiskReadTime), f(em.Report.DiskReadTime))
	tbl.AddRow("Memory Allocation", f(ser.Report.AllocTime), f(em.Report.AllocTime))
	tbl.AddRow("Compute", f(ser.Report.ComputeTime), f(em.Report.ComputeTime))
	tbl.AddRow("Cache Clear", f(ser.Report.FlushTime), f(em.Report.FlushTime))
	tbl.AddRow("Total Runtime", f(ser.Report.Makespan), f(em.Report.Makespan))
	return &Table6Result{Serial: &ser.Report, EMR: &em.Report, Tbl: tbl}, nil
}

// Fig14Row is one workload's relative energy figures.
type Fig14Row struct {
	Workload     string
	Serial3MRRel float64
	EMRRel       float64
	RadshieldRel float64 // EMR + ILD bubbles
}

// Fig14 reproduces the energy comparison (paper Figure 14): serial 3-MR,
// EMR, and full Radshield (EMR plus ILD's induced-quiescence overhead),
// normalized to unprotected parallel 3-MR, on the DRAM frontier.
func Fig14(c SEUConfig) ([]Fig14Row, *Table, error) {
	policy := ild.DefaultBubblePolicy()
	idleW := emr.DefaultCostModel().IdleWatts
	tbl := &Table{
		Title:  "Figure 14: relative energy (normalized to unprotected parallel 3-MR, DRAM frontier)",
		Header: []string{"Workload", "3-MR", "EMR", "Radshield (EMR+ILD)"},
	}
	// The scheme×workload matrix fans out one trial per workload (the
	// three scheme runs share the trial so relative energies normalize
	// against their own baseline run).
	wls := workloads.All()
	rows, err := sched.Map(len(wls), c.Workers, func(i int) (Fig14Row, error) {
		b := wls[i]
		base, err := runScheme(b, fault.SchemeUnprotectedParallel, emr.FrontierDRAM, c, nil, nil)
		if err != nil {
			return Fig14Row{}, err
		}
		ser, err := runScheme(b, fault.SchemeSerial3MR, emr.FrontierDRAM, c, nil, nil)
		if err != nil {
			return Fig14Row{}, err
		}
		em, err := runScheme(b, fault.SchemeEMR, emr.FrontierDRAM, c, nil, nil)
		if err != nil {
			return Fig14Row{}, err
		}
		// ILD adds its bubble fraction of the makespan at idle power plus
		// the negligible sampling compute.
		ildExtraJ := policy.OverheadFraction() * em.Report.Makespan.Seconds() * idleW
		den := base.Report.EnergyJ
		return Fig14Row{
			Workload:     b.Name,
			Serial3MRRel: ser.Report.EnergyJ / den,
			EMRRel:       em.Report.EnergyJ / den,
			RadshieldRel: (em.Report.EnergyJ + ildExtraJ) / den,
		}, nil
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		tbl.AddRow(row.Workload, fmt.Sprintf("%.2f", row.Serial3MRRel),
			fmt.Sprintf("%.2f", row.EMRRel), fmt.Sprintf("%.2f", row.RadshieldRel))
	}
	return rows, tbl, nil
}

// Table7Config parameterizes the fault-injection campaign.
type Table7Config struct {
	Runs int // injections per scheme (paper: 20)
	Size int
	Seed int64

	// Workers bounds the scheduler width across the scheme×run matrix;
	// <= 0 means one worker per CPU. Each injection run has its own
	// seeded RNG, so tallies are identical at any width.
	Workers int

	// Telemetry, when non-nil, counts injected faults per target kind and
	// emits a fault_injected event for each strike.
	Telemetry *telemetry.Registry

	// Cache, when non-nil, replays already-classified injection runs
	// from the content-addressed result store (see RESULTCACHE.md).
	Cache *resultcache.Store
}

// DefaultTable7Config matches the paper's 20-run campaign.
func DefaultTable7Config() Table7Config {
	return Table7Config{Runs: 20, Size: 64 << 10, Seed: 7}
}

// Table7 runs the synthetic fault-injection campaign on the image
// processing workload (paper Table 7): one random SEU per run (two
// adjacent bits for the MBU row), targets weighted toward the dominant
// compute phase, classified against a golden run.
func Table7(c Table7Config) (map[string]*fault.Tally, *Table, error) {
	b := workloads.ImageProcessing()

	schemes := []struct {
		name   string
		scheme fault.Scheme
		mbu    bool
	}{
		{"None", fault.SchemeNone, false},
		{"3-MR", fault.SchemeSerial3MR, false},
		{"EMR", fault.SchemeEMR, false},
		{"EMR + MBU", fault.SchemeEMR, true},
		// Extension beyond the paper's table: the §2.2 checksum-guard
		// alternative, which detects memory strikes but not pipeline
		// strikes.
		{"Checksum", fault.SchemeChecksum, false},
	}

	// Each injection run's key is (workload size, seed, scheme, mbu,
	// run index); Runs is deliberately absent so a deeper campaign
	// replays the runs already classified.
	cache := cacheArms(c.Cache, "table7/v1", len(schemes)*c.Runs,
		func(k int, e *resultcache.Enc) {
			sc, run := schemes[k/c.Runs], k%c.Runs
			e.Int(int64(c.Size))
			e.Int(c.Seed)
			e.Str(sc.name)
			e.Bool(sc.mbu)
			e.Int(int64(run))
		},
		armCodec[fault.Outcome]{
			enc: func(e *resultcache.Enc, o fault.Outcome) { e.Int(int64(o)) },
			dec: func(d *resultcache.Dec) fault.Outcome { return fault.Outcome(d.Int()) },
		})

	// The golden outputs only classify computed runs; skip the golden
	// run itself when every arm replays.
	var golden [][]byte
	if !cache.AllHit() {
		goldenRes, err := runScheme(b, fault.SchemeNone, emr.FrontierDRAM, SEUConfig{Size: c.Size, Seed: c.Seed}, nil, nil)
		if err != nil {
			return nil, nil, err
		}
		golden = goldenRes.Outputs
	}

	tallies := make(map[string]*fault.Tally)
	tbl := &Table{
		Title:  "Table 7: fault injection into the image-processing workload",
		Header: []string{"Scheme", "Corrected", "No Effect", "Error", "SDC"},
	}
	// Flatten the scheme×run matrix into independent trials: every
	// injection run draws from rand.NewSource(Seed*1000+run), so trials
	// share nothing but the read-only golden outputs. Outcomes come back
	// in matrix order and are tallied serially below.
	outcomes, err := sched.Map(len(schemes)*c.Runs, c.Workers, func(k int) (fault.Outcome, error) {
		return cache.CachedArm(k, func() (fault.Outcome, error) {
			sc, run := schemes[k/c.Runs], k%c.Runs
			outcome, err := injectOnce(b, sc.scheme, sc.mbu, c, int64(run), golden)
			if err != nil {
				return 0, fmt.Errorf("%s run %d: %w", sc.name, run, err)
			}
			return outcome, nil
		})
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, nil, err
	}
	for si, sc := range schemes {
		tally := &fault.Tally{}
		for run := 0; run < c.Runs; run++ {
			tally.Add(outcomes[si*c.Runs+run])
		}
		tallies[sc.name] = tally
		tbl.AddRow(sc.name,
			fmt.Sprint(tally.Counts[fault.Corrected]),
			fmt.Sprint(tally.Counts[fault.NoEffect]),
			fmt.Sprint(tally.Counts[fault.DetectedError]),
			fmt.Sprint(tally.Counts[fault.SDC]))
	}
	return tallies, tbl, nil
}

// injectOnce runs the workload once under the scheme with a single
// randomly-placed fault and classifies the outcome.
func injectOnce(b workloads.Builder, scheme fault.Scheme, mbu bool, c Table7Config, run int64, golden [][]byte) (fault.Outcome, error) {
	rng := rand.New(rand.NewSource(c.Seed*1000 + run))

	cfg := emr.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Telemetry = c.Telemetry
	cfg.DRAMSize = 256 << 20
	cfg.StorageSize = 256 << 20
	rt, err := getRuntime(cfg)
	if err != nil {
		return 0, err
	}
	defer putRuntime(cfg, rt)
	spec, err := b.Build(rt, c.Size, c.Seed)
	if err != nil {
		return 0, err
	}

	executors := cfg.Executors
	if scheme == fault.SchemeNone || scheme == fault.SchemeChecksum {
		executors = 1
	}
	// Pick an injection point uniformly over (dataset, executor) visits —
	// runtime is dominated by compute, so visits approximate the paper's
	// runtime-weighted uniform placement — and a target by the paper's
	// phase weighting: the cached working set for the 96% compute phase,
	// the executor output for pipeline strikes, the job descriptor for
	// the small allocation phase, the ECC frontier for residency faults.
	targetDataset := rng.Intn(len(spec.Datasets))
	targetExec := rng.Intn(executors)
	targetKind := rng.Float64()
	flipped := false
	disagreed := false

	record := func(target string) {
		if c.Telemetry == nil {
			return
		}
		// One literal name per injection target keeps the whole counter
		// family greppable and listed in TELEMETRY.md (the telemetryname
		// check rejects computed names).
		var ctr *telemetry.Counter
		switch target {
		case "cache":
			ctr = c.Telemetry.Counter("fault_injected_cache_total", "faults")
		case "pipeline":
			ctr = c.Telemetry.Counter("fault_injected_pipeline_total", "faults")
		case "descriptor":
			ctr = c.Telemetry.Counter("fault_injected_descriptor_total", "faults")
		case "frontier":
			ctr = c.Telemetry.Counter("fault_injected_frontier_total", "faults")
		default:
			return
		}
		ctr.Inc()
		c.Telemetry.Emit(telemetry.Event{
			Kind: telemetry.KindFaultInjected,
			Fields: map[string]any{
				"target": target, "scheme": scheme.String(), "mbu": mbu,
				"dataset": targetDataset, "executor": targetExec,
			},
		})
	}

	spec.Hook = func(hp *emr.HookPoint) {
		if flipped || hp.Dataset != targetDataset || hp.Executor != targetExec {
			return
		}
		switch {
		case targetKind < 0.70: // cache working set during compute
			if hp.Phase != emr.PhaseAfterRead {
				return
			}
			reg := hp.Regions[rng.Intn(len(hp.Regions))]
			f := fault.RandomFlip(rng, reg.Len)
			if rt.Cache().FlipBit(reg.Addr+f.Offset, f.Bit) {
				flipped = true
				if mbu {
					rt.Cache().FlipBit(reg.Addr+f.Offset, (f.Bit+1)%8)
				}
				record("cache")
			}
		case targetKind < 0.85: // pipeline: corrupt this executor's output
			if hp.Phase != emr.PhaseAfterJob || len(hp.Output) == 0 {
				return
			}
			f := fault.RandomFlip(rng, uint64(len(hp.Output)))
			hp.Output[f.Offset] ^= 1 << f.Bit
			if mbu {
				hp.Output[f.Offset] ^= 1 << ((f.Bit + 1) % 8)
			}
			flipped = true
			record("pipeline")
		case targetKind < 0.93: // job descriptor: crash this executor
			if hp.Phase != emr.PhaseBeforeRead {
				return
			}
			hp.Fail = fmt.Errorf("SIGSEGV: job descriptor corrupted by SEU")
			flipped = true
			record("descriptor")
		default: // frontier memory (ECC absorbs singles, detects doubles)
			if hp.Phase != emr.PhaseBeforeRead {
				return
			}
			reg := spec.Datasets[targetDataset].Inputs[0].Region
			f := fault.RandomFlip(rng, reg.Len)
			if err := rt.FlipFrontierBit(reg.Addr+f.Offset, f.Bit); err == nil {
				flipped = true
				if mbu {
					_ = rt.FlipFrontierBit(reg.Addr+f.Offset, (f.Bit+1)%8)
				}
				record("frontier")
			}
		}
	}

	res, err := rt.Run(spec)
	if err != nil {
		return 0, err
	}
	for _, pd := range res.PerDataset {
		if pd.Disagreement {
			disagreed = true
		}
	}

	// Classification against the golden outputs (paper Table 7 columns).
	anyError := res.Report.ExecErrors > 0 || res.Report.Votes.Failed > 0
	wrong := false
	for i := range golden {
		if res.Outputs[i] == nil {
			anyError = true
			continue
		}
		if !bytes.Equal(res.Outputs[i], golden[i]) {
			wrong = true
		}
	}
	switch {
	case wrong:
		return fault.SDC, nil
	case res.Report.Votes.Failed > 0:
		return fault.DetectedError, nil
	case anyError && res.Outputs[targetDataset] == nil:
		return fault.DetectedError, nil
	case anyError || disagreed || res.Report.Votes.Corrected > 0:
		return fault.Corrected, nil
	default:
		return fault.NoEffect, nil
	}
}

// Table8 reports the developer-overhead line counts (paper Table 8).
// The numbers are the net line deltas between each workload's EMR
// integration in package workloads (dataset declaration + job signature)
// and the equivalent triple-loop 3-MR driver: the EMR version replaces
// the redundancy loop with InputRef slicing and gains the Spec literal.
func Table8() *Table {
	tbl := &Table{
		Title:  "Table 8: net code changes to adopt EMR from a 3-MR implementation",
		Header: []string{"Operation", "Net line change"},
	}
	// Measured on this repository's workload builders: lines added for
	// InputRef/Dataset declarations and Spec fields, minus the removed
	// triple-execution + vote loop a hand-rolled 3-MR needs.
	rows := []struct {
		name  string
		delta int
	}{
		{"Encryption", 8},
		{"Compression", 7},
		{"Image Processing", 9},
		{"Packet Matching", 8},
		{"DNN", 9},
	}
	for _, r := range rows {
		tbl.AddRow(r.name, fmt.Sprint(r.delta))
	}
	return tbl
}

// WindowOfVulnerability reproduces the §4.2.6 estimate: EMR's relative
// chance of being struck versus serial 3-MR, from measured runtimes and
// the 2× active-area factor.
func WindowOfVulnerability(c SEUConfig) (float64, error) {
	t6, err := Table6(c)
	if err != nil {
		return 0, err
	}
	runtimeRel := t6.EMR.Makespan.Seconds() / t6.Serial.Makespan.Seconds()
	return fault.WindowOfVulnerability(2.0, runtimeRel), nil
}
