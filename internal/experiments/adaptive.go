package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/adapt"
	"radshield/internal/downlink"
	"radshield/internal/emr"
	"radshield/internal/fault"
	"radshield/internal/guard"
	"radshield/internal/ild"
	"radshield/internal/linmodel"
	"radshield/internal/machine"
	"radshield/internal/mission"
	"radshield/internal/resultcache"
	"radshield/internal/sched"
	"radshield/internal/trace"
	"radshield/internal/workloads"
)

// Adaptive campaign: the closed-loop question the static campaigns
// cannot answer — does a controller that relaxes protection during
// quiet cruise and escalates through hot phases match the always-max
// posture's survival while spending measurably less on protection?
//
// Every trial flies one mission profile twice with one seed: a static
// arm pinned at adapt.LevelMax, and an adaptive arm driven by an
// adapt.Controller fed ILD detections/refires, EMR disagreements, and
// watchdog resets. Both arms replay the identical event schedule and
// flight trace (pair-shared scaffolding), so every difference in the
// table is the controller's doing.

// AdaptiveCampaignConfig parameterizes the profile sweep.
type AdaptiveCampaignConfig struct {
	// SEL supplies the shared campaign parameters: telemetry cadence,
	// training span, detection Window, Seed, Workers, Telemetry, Cache.
	// (Duration, SELEvery and SELAmps are unused: the mission profile
	// schedules every event.)
	SEL SELConfig
	// Profiles is the sweep grid: one paired trial per mission profile.
	Profiles []mission.Profile
	// RateBoost compresses mission time the same way the survival
	// campaign does: SEL rates ×RateBoost, SEU rates ×RateBoost/10.
	RateBoost float64
	// Controller tunes the adaptive arm's ladder (see adapt.Config).
	Controller adapt.Config
	// ContactEvery is the payload-contact cadence: each contact runs the
	// EMR payload under the posture's redundancy rung with the accrued
	// SEU backlog striking the cache.
	ContactEvery time.Duration

	// Downlink leg: loss rate over the whole mission (drop = LinkLoss,
	// corrupt = LinkLoss/2, reorder = LinkLoss/4), one blackout of the
	// given length opening at Total/3 (0 disables), bulk-science cadence,
	// and the post-mission drain budget for ARQ to finish.
	LinkLoss  float64
	Blackout  time.Duration
	BulkEvery time.Duration
	Drain     time.Duration
}

// DefaultAdaptiveCampaignConfig flies the full mission catalog with the
// default controller tuning.
func DefaultAdaptiveCampaignConfig() AdaptiveCampaignConfig {
	return AdaptiveCampaignConfig{
		SEL:          DefaultSELConfig(),
		Profiles:     mission.Catalog(),
		RateBoost:    3000,
		Controller:   adapt.DefaultConfig(),
		ContactEvery: 15 * time.Minute,
		LinkLoss:     0.1,
		Blackout:     2 * time.Minute,
		BulkEvery:    30 * time.Second,
		Drain:        10 * time.Minute,
	}
}

// AdaptiveArm is one arm's tallies.
type AdaptiveArm struct {
	Survived   bool
	SDC        bool // a corrupted payload product reached the ground
	MissedSELs int  // latchup episodes uncleared past the window
	Detections int  // ILD firings (each one a power cycle)
	WDResets   int  // watchdog catches of what ILD missed
	Corrected  int  // SEU-corrupted replica outputs outvoted
	Vetoed     int  // detected payload failures, retried clean

	// Protection overhead, bucketed by the phase's Quiet classification:
	// measurement-bubble time the posture schedules, and payload energy
	// under the posture's redundancy rung.
	QuietBubble  time.Duration
	ActiveBubble time.Duration
	QuietJ       float64
	ActiveJ      float64

	// Downlink: priority-0 events enqueued/delivered, everything
	// enqueued/delivered, and when the backlog drained (-1: never).
	P0Enqueued   uint64
	P0Delivered  uint64
	AllEnqueued  uint64
	AllDelivered uint64
	DrainedAt    time.Duration

	// FinalLevel and Dwell describe the posture history (static arms
	// dwell the whole mission at max).
	FinalLevel adapt.Level
	Dwell      [adapt.NumLevels]time.Duration
}

// AdaptiveTrial is one paired sweep point plus the adaptive arm's full
// decision trace.
type AdaptiveTrial struct {
	Profile  string
	Static   AdaptiveArm
	Adaptive AdaptiveArm
	Moves    []adapt.Move
}

func encAdaptiveArm(e *resultcache.Enc, a AdaptiveArm) {
	e.Bool(a.Survived)
	e.Bool(a.SDC)
	e.Int(int64(a.MissedSELs))
	e.Int(int64(a.Detections))
	e.Int(int64(a.WDResets))
	e.Int(int64(a.Corrected))
	e.Int(int64(a.Vetoed))
	e.Duration(a.QuietBubble)
	e.Duration(a.ActiveBubble)
	e.Float(a.QuietJ)
	e.Float(a.ActiveJ)
	e.Uint(a.P0Enqueued)
	e.Uint(a.P0Delivered)
	e.Uint(a.AllEnqueued)
	e.Uint(a.AllDelivered)
	e.Duration(a.DrainedAt)
	e.Int(int64(a.FinalLevel))
	for _, d := range a.Dwell {
		e.Duration(d)
	}
}

func decAdaptiveArm(d *resultcache.Dec) AdaptiveArm {
	a := AdaptiveArm{
		Survived:     d.Bool(),
		SDC:          d.Bool(),
		MissedSELs:   int(d.Int()),
		Detections:   int(d.Int()),
		WDResets:     int(d.Int()),
		Corrected:    int(d.Int()),
		Vetoed:       int(d.Int()),
		QuietBubble:  d.Duration(),
		ActiveBubble: d.Duration(),
		QuietJ:       d.Float(),
		ActiveJ:      d.Float(),
		P0Enqueued:   d.Uint(),
		P0Delivered:  d.Uint(),
		AllEnqueued:  d.Uint(),
		AllDelivered: d.Uint(),
		DrainedAt:    d.Duration(),
		FinalLevel:   adapt.Level(d.Int()),
	}
	for i := range a.Dwell {
		a.Dwell[i] = d.Duration()
	}
	return a
}

func encAdaptiveTrial(e *resultcache.Enc, t AdaptiveTrial) {
	e.Str(t.Profile)
	encAdaptiveArm(e, t.Static)
	encAdaptiveArm(e, t.Adaptive)
	e.Int(int64(len(t.Moves)))
	for _, m := range t.Moves {
		e.Duration(m.T)
		e.Int(int64(m.From))
		e.Int(int64(m.To))
		e.Float(m.Score)
		e.Str(m.Reason)
	}
}

func decAdaptiveTrial(d *resultcache.Dec) AdaptiveTrial {
	t := AdaptiveTrial{
		Profile:  d.Str(),
		Static:   decAdaptiveArm(d),
		Adaptive: decAdaptiveArm(d),
	}
	for n := d.Int(); n > 0; n-- {
		t.Moves = append(t.Moves, adapt.Move{
			T:      d.Duration(),
			From:   adapt.Level(d.Int()),
			To:     adapt.Level(d.Int()),
			Score:  d.Float(),
			Reason: d.Str(),
		})
		if d.Err() != nil {
			return t // malformed length; sticky error ends the decode
		}
	}
	return t
}

// encAdaptConfig canonically encodes the controller tuning.
func encAdaptConfig(e *resultcache.Enc, c adapt.Config) {
	e.Duration(c.Window)
	e.Float(c.EscalateAt)
	e.Float(c.PanicAt)
	e.Float(c.RelaxBelow)
	e.Duration(c.HoldFor)
	for _, w := range c.Weights {
		e.Float(w)
	}
	e.Int(int64(c.Start))
}

// encProfile canonically encodes a mission profile: name, base
// environment, and every phase's kind, duration, and multipliers.
func encProfile(e *resultcache.Enc, p mission.Profile) {
	e.Str(p.Name)
	encEnvironment(e, p.Base)
	e.Int(int64(len(p.Phase)))
	for _, ph := range p.Phase {
		e.Int(int64(ph.Kind))
		e.Duration(ph.Duration)
		e.Float(ph.SEU)
		e.Float(ph.MBU)
		e.Float(ph.SEL)
	}
}

// AdaptiveCampaign flies every profile with paired static/adaptive arms
// and renders the comparison table. Trials fan out across the campaign
// scheduler; output is byte-identical at any worker width.
func AdaptiveCampaign(c AdaptiveCampaignConfig) ([]AdaptiveTrial, *Table, error) {
	if len(c.Profiles) == 0 {
		return nil, nil, fmt.Errorf("experiments: adaptive campaign needs at least one profile")
	}
	if c.RateBoost <= 0 || c.ContactEvery <= 0 {
		return nil, nil, fmt.Errorf("experiments: adaptive campaign needs RateBoost and ContactEvery > 0")
	}
	if c.LinkLoss < 0 || c.LinkLoss >= 1 {
		return nil, nil, fmt.Errorf("experiments: LinkLoss %v out of [0, 1)", c.LinkLoss)
	}
	for _, p := range c.Profiles {
		if err := p.Validate(); err != nil {
			return nil, nil, err
		}
	}
	// The controller config is validated (and zero weights defaulted) by
	// adapt.New; fail the campaign before the scheduler fans out.
	if _, err := adapt.New(c.Controller, nil); err != nil {
		return nil, nil, err
	}

	// Every result-affecting input participates in each trial's key:
	// the shared SEL parameters, the boost, the controller tuning, the
	// downlink knobs, the profile itself, and the trial index (the seed
	// derives from it). Workers/Telemetry/Cache are deliberately absent.
	cache := cacheArms(c.SEL.Cache, "adaptive/v1", len(c.Profiles),
		func(i int, e *resultcache.Enc) {
			encSELConfig(e, c.SEL)
			e.Float(c.RateBoost)
			e.Duration(c.ContactEvery)
			encAdaptConfig(e, c.Controller)
			e.Float(c.LinkLoss)
			e.Duration(c.Blackout)
			e.Duration(c.BulkEvery)
			e.Duration(c.Drain)
			encProfile(e, c.Profiles[i])
			e.Int(int64(i))
		},
		armCodec[AdaptiveTrial]{enc: encAdaptiveTrial, dec: decAdaptiveTrial})

	// Detector training and the golden payload run feed only computed
	// arms; a fully warm cache skips both.
	var model *linmodel.Model
	var golden [][]byte
	if !cache.AllHit() {
		base, err := TrainILD(c.SEL)
		if err != nil {
			return nil, nil, err
		}
		model = base.Model()
		if golden, err = missionGolden(); err != nil {
			return nil, nil, err
		}
	}

	trials, err := sched.Map(len(c.Profiles), c.SEL.Workers, func(i int) (AdaptiveTrial, error) {
		return cache.CachedArm(i, func() (AdaptiveTrial, error) {
			seed := c.SEL.Seed + 9000 + int64(i)*37
			prof := c.Profiles[i].Boosted(c.RateBoost)
			// One RNG stream builds the event schedule and the flight
			// trace once per pair; both arms replay them read-only.
			rng := rand.New(rand.NewSource(seed))
			events, err := prof.Schedule(rng)
			if err != nil {
				return AdaptiveTrial{}, err
			}
			flight := trace.FlightSoftware(rng, prof.Total(), machine.DefaultConfig().Cores)
			// Bubbles are injected once, at the max-posture cadence, so
			// both arms fly the identical trace; each arm is charged for
			// the bubble time its own posture schedules.
			flight = ild.InjectBubbles(flight, ild.BubblePolicy{
				BubbleLen: c.SEL.ildConfig().SustainFor + time.Second,
				Pause:     adapt.PostureFor(adapt.LevelMax).BubbleEvery,
			})
			st, err := flyAdaptiveArm(c, prof, model, golden, events, flight, seed, nil)
			if err != nil {
				return AdaptiveTrial{}, err
			}
			ctrl, err := adapt.New(c.Controller, nil)
			if err != nil {
				return AdaptiveTrial{}, err
			}
			ad, err := flyAdaptiveArm(c, prof, model, golden, events, flight, seed, ctrl)
			if err != nil {
				return AdaptiveTrial{}, err
			}
			return AdaptiveTrial{Profile: c.Profiles[i].Name, Static: st, Adaptive: ad, Moves: ctrl.Trace()}, nil
		})
	}, sched.WithTelemetry(c.SEL.Telemetry))
	if err != nil {
		return nil, nil, err
	}

	tbl := &Table{
		Title: fmt.Sprintf("Adaptive campaign: %d profiles, rates ×%.0f, contact every %v, link loss %g",
			len(c.Profiles), c.RateBoost, c.ContactEvery, c.LinkLoss),
		Header: []string{"Profile", "Arm", "Survived", "MissedSEL", "Detects", "WD", "SDC",
			"Bubble q/a", "Energy q/a (J)", "p0 d/e", "all d/e", "Moves", "Final"},
	}
	for _, tr := range trials {
		row := func(name string, a AdaptiveArm, moves int) {
			tbl.AddRow(tr.Profile, name, fmt.Sprint(a.Survived), fmt.Sprint(a.MissedSELs),
				fmt.Sprint(a.Detections), fmt.Sprint(a.WDResets), fmt.Sprint(a.SDC),
				fmt.Sprintf("%v/%v", a.QuietBubble.Round(time.Second), a.ActiveBubble.Round(time.Second)),
				fmt.Sprintf("%.2f/%.2f", a.QuietJ, a.ActiveJ),
				fmt.Sprintf("%d/%d", a.P0Delivered, a.P0Enqueued),
				fmt.Sprintf("%d/%d", a.AllDelivered, a.AllEnqueued),
				fmt.Sprint(moves), a.FinalLevel.String())
		}
		row("static-max", tr.Static, 0)
		row("adaptive", tr.Adaptive, len(tr.Moves))
	}
	return trials, tbl, nil
}

// refireWindow is how soon after a power cycle a new ILD firing reads
// as a refire (the biased-sensor / persistent-latchup storm signature)
// rather than a fresh detection.
const refireWindow = 5 * time.Minute

// downlinkTick is the comms simulation cadence inside a trial; the
// machine samples far faster, but radio state only needs ~1 Hz.
const downlinkTick = time.Second

// flyAdaptiveArm flies one arm over the pair-shared scaffolding
// (events and flight are read-only). ctrl nil pins the static arm at
// LevelMax; otherwise the controller moves the posture and its trace
// records every decision.
func flyAdaptiveArm(c AdaptiveCampaignConfig, prof mission.Profile, model *linmodel.Model,
	golden [][]byte, events []fault.Event, flight *trace.Trace, seed int64,
	ctrl *adapt.Controller) (AdaptiveArm, error) {
	arm := AdaptiveArm{DrainedAt: -1}
	total := prof.Total()

	// One detector per rung, all sharing the trained model: ThresholdA
	// is fixed at construction, so a level switch swaps detectors (and
	// resets the incoming one) instead of rebuilding.
	var dets [adapt.NumLevels]*ild.Detector
	for l := 0; l < adapt.NumLevels; l++ {
		cfg := c.SEL.ildConfig()
		cfg.ThresholdA = adapt.PostureFor(adapt.Level(l)).ILDThresholdA
		det, err := ild.NewDetector(model, cfg)
		if err != nil {
			return arm, err
		}
		dets[l] = det
	}

	level := adapt.LevelMax
	if ctrl != nil {
		level = ctrl.Level()
	}
	posture := adapt.PostureFor(level)
	bubbleLen := c.SEL.ildConfig().SustainFor + time.Second

	mc := c.SEL.machineConfig(seed + 1)
	mc.Telemetry = nil // trials run in parallel; per-trial metrics stay local
	m := machine.New(mc)
	tracker := mission.NewTracker(prof, nil)

	// Downlink leg: both arms fly the same impaired link (seeds shared).
	lcfg := downlink.DefaultLinkConfig()
	lcfg.Seed = seed + 2
	link, err := downlink.NewLink(lcfg)
	if err != nil {
		return arm, err
	}
	if c.LinkLoss > 0 {
		if err := link.ScheduleLinkFault(downlink.LinkFault{
			Start: 0, Duration: 0, // never closes: the drain pass is lossy too
			Drop: c.LinkLoss, Corrupt: c.LinkLoss / 2, Reorder: c.LinkLoss / 4,
		}); err != nil {
			return arm, err
		}
	}
	if c.Blackout > 0 {
		if err := link.ScheduleBlackout(downlink.Blackout{Start: total / 3, Duration: c.Blackout}); err != nil {
			return arm, err
		}
	}
	tx, err := downlink.NewTransmitter(link, downlink.DefaultTxConfig(1))
	if err != nil {
		return arm, err
	}
	station := downlink.NewStation(downlink.DefaultStationConfig())

	var enqErr error
	enqueue := func(vc uint8, payload string, now time.Duration) {
		if enqErr != nil {
			return
		}
		if err := tx.Enqueue(vc, []byte(payload), now); err != nil {
			enqErr = err
			return
		}
		arm.AllEnqueued++
		if vc == 0 {
			arm.P0Enqueued++
		}
	}
	var lastTick time.Duration
	comms := func(now time.Duration) error {
		lastTick = now
		if err := tx.Tick(now); err != nil {
			return err
		}
		var buf []byte
		for _, raw := range link.RecvDown(now) {
			buf = append(buf, raw...)
		}
		if len(buf) > 0 {
			for _, ack := range station.Ingest(buf, now) {
				link.SendUp(ack, now)
			}
		}
		return nil
	}
	if tx.Beacon() != posture.Beacon {
		tx.SetBeacon(posture.Beacon, 0, "posture "+level.String())
	}

	nextEvent := 0
	pendingSEUs := 0
	selSince := time.Duration(-1)
	missedCounted := false
	lastCycle := time.Duration(-refireWindow) // no refire before the first cycle
	nextContact := c.ContactEvery
	nextHk := posture.HousekeepEvery
	nextBulk := c.BulkEvery
	nextTick := downlinkTick
	var loopErr error

	m.RunTrace(flight, func(tel machine.Telemetry) {
		if loopErr != nil {
			return
		}
		phase, phaseChanged := tracker.Observe(tel.T)
		if phaseChanged {
			enqueue(0, fmt.Sprintf("mission_phase %s t=%v", phase.Kind, tel.T), tel.T)
		}

		for nextEvent < len(events) && events[nextEvent].T <= tel.T {
			ev := events[nextEvent]
			nextEvent++
			if ev.Kind == fault.SEL {
				injectSEL(m, ev.Amps)
			} else {
				pendingSEUs++
			}
		}

		// Latchup episode bookkeeping (guard-campaign pattern): an
		// episode that outlives the detection window is a miss — the
		// hardware watchdog catches it, at reset cost.
		if selSince >= 0 && !m.SELActive() {
			selSince = -1
		}
		if selSince < 0 && m.SELActive() {
			selSince = tel.T
			missedCounted = false
		}
		if selSince >= 0 && !missedCounted && tel.T-selSince > c.SEL.Window {
			arm.MissedSELs++
			missedCounted = true
			arm.WDResets++
			m.PowerCycle()
			dets[level].Reset()
			lastCycle = tel.T
			selSince = -1
			if ctrl != nil {
				ctrl.Note(tel.T, adapt.SignalWatchdogReset)
			}
			enqueue(0, fmt.Sprintf("watchdog_reset t=%v", tel.T), tel.T)
		}

		if dets[level].Observe(tel) {
			arm.Detections++
			m.PowerCycle()
			dets[level].Reset()
			if ctrl != nil {
				sig := adapt.SignalILDDetect
				if tel.T-lastCycle <= refireWindow {
					sig = adapt.SignalILDRefire
				}
				ctrl.Note(tel.T, sig)
			}
			lastCycle = tel.T
			selSince = -1
			enqueue(0, fmt.Sprintf("sel_detected level=%s t=%v", level, tel.T), tel.T)
		}

		if ctrl != nil {
			if d := ctrl.Observe(tel.T); d.Changed {
				level = d.Level
				posture = adapt.PostureFor(level)
				dets[level].Reset()
				if tx.Beacon() != posture.Beacon {
					tx.SetBeacon(posture.Beacon, tel.T, "posture "+level.String())
				}
				enqueue(0, fmt.Sprintf("adapt_level %s t=%v", level, tel.T), tel.T)
			}
		}

		// Charge this sample's share of the posture's measurement-bubble
		// overhead to the phase's quiet/active bucket, and the dwell.
		arm.Dwell[level] += c.SEL.SampleEvery
		share := time.Duration(float64(c.SEL.SampleEvery) * float64(bubbleLen) / float64(posture.BubbleEvery))
		if phase.Quiet() {
			arm.QuietBubble += share
		} else {
			arm.ActiveBubble += share
		}

		if tel.T >= nextHk {
			enqueue(1, fmt.Sprintf("hk t=%v level=%s", tel.T, level), tel.T)
			nextHk = tel.T + posture.HousekeepEvery
		}
		for c.BulkEvery > 0 && nextBulk <= tel.T {
			enqueue(3, fmt.Sprintf("bulk t=%v frame of science payload data", nextBulk), tel.T)
			nextBulk += c.BulkEvery
		}

		if tel.T >= nextContact {
			nextContact += c.ContactEvery
			res, err := adaptivePayload(posture, seed+int64(tel.T), pendingSEUs, golden)
			if err != nil {
				loopErr = err
				return
			}
			pendingSEUs = 0
			arm.Corrected += res.corrected
			arm.Vetoed += res.vetoed
			if phase.Quiet() {
				arm.QuietJ += res.energyJ
			} else {
				arm.ActiveJ += res.energyJ
			}
			if res.sdc {
				arm.SDC = true
			}
			if ctrl != nil && (res.corrected > 0 || res.vetoed > 0) {
				ctrl.Note(tel.T, adapt.SignalEMRMismatch)
			}
		}

		if tel.T >= nextTick {
			if err := comms(tel.T); err != nil {
				loopErr = err
				return
			}
			nextTick = tel.T + downlinkTick
		}
	})
	if loopErr != nil {
		return arm, loopErr
	}
	if enqErr != nil {
		return arm, enqErr
	}

	// Post-mission contact extension: ARQ drains the backlog. Bubble
	// injection stretches the flown trace a little past the nominal
	// mission span, so the drain clock resumes from the last tick, not
	// from the profile total.
	drainEnd := lastTick + c.Drain
	for now := lastTick + downlinkTick; now <= drainEnd; now += downlinkTick {
		if err := comms(now); err != nil {
			return arm, err
		}
		if tx.Done() {
			arm.DrainedAt = now
			break
		}
	}
	for _, rep := range station.Report() {
		for vc := 0; vc < downlink.NumVC; vc++ {
			arm.AllDelivered += rep.VC[vc].Delivered
		}
		arm.P0Delivered += rep.VC[0].Delivered
	}

	arm.Survived = !m.Damaged()
	arm.FinalLevel = level
	return arm, nil
}

// adaptivePayloadResult is one contact's outcome.
type adaptivePayloadResult struct {
	sdc       bool
	corrected int
	vetoed    int
	energyJ   float64
}

// adaptivePayload runs the payload job under the posture's redundancy
// rung with the SEU backlog striking the cache. The ladder's semantics:
// serial+checksum and DMR detect (vetoed output, retried clean), TMR
// corrects (outvoted); only a corrupted output that survives to
// comparison is SDC.
func adaptivePayload(p adapt.Posture, seed int64, seus int, golden [][]byte) (adaptivePayloadResult, error) {
	var out adaptivePayloadResult
	cfg := emr.DefaultConfig()
	switch {
	case p.SerialChecksum:
		cfg.Scheme = fault.SchemeChecksum
		cfg.Executors = 1
	case p.Redundancy == guard.RedundancyDMRChecksum:
		cfg.Scheme = fault.SchemeEMR
		cfg.Executors = 2
	default:
		cfg.Scheme = fault.SchemeEMR
		cfg.Executors = 3
	}
	rt, err := getRuntime(cfg)
	if err != nil {
		return out, err
	}
	defer putRuntime(cfg, rt)
	spec, err := workloads.ImageProcessing().Build(rt, 32<<10, 2026)
	if err != nil {
		return out, err
	}
	rng := rand.New(rand.NewSource(seed))
	remaining := seus
	spec.Hook = func(hp *emr.HookPoint) {
		if remaining > 0 && hp.Phase == emr.PhaseAfterRead && rng.Float64() < 0.05 {
			reg := hp.Regions[rng.Intn(len(hp.Regions))]
			f := fault.RandomFlip(rng, reg.Len)
			if rt.Cache().FlipBit(reg.Addr+f.Offset, f.Bit) {
				remaining--
			}
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		return out, err
	}
	out.corrected = res.Report.Votes.Corrected
	out.energyJ = res.Report.EnergyJ
	for i := range golden {
		if res.Outputs[i] == nil {
			out.vetoed++ // detected → retried clean; not SDC
			continue
		}
		if !bytes.Equal(res.Outputs[i], golden[i]) {
			out.sdc = true
		}
	}
	return out, nil
}
