package experiments

import (
	"radshield/internal/fault"
	"radshield/internal/guard"
	"radshield/internal/resultcache"
)

// Campaign result caching: the seam between the campaigns and
// internal/resultcache.
//
// # Contract: cached ⊆ proven
//
// A cached result is replayed instead of recomputed, so caching is
// sound only for arms that are pure functions of their encoded inputs —
// exactly the determinism contract of DESIGN.md §9, machine-checked by
// radlint's armpurity analyzer. The rule, enforced by
// TestCachedArmSitesAreProven: every CachedArm call site must sit
// either inside a sched.Map/sched.Stream job function or inside an
// exported *Campaign entry point — the two shapes armpurity proves
// transitively deterministic. Code outside the proven set gets no
// caching seam; add the proof first.
//
// # Shape
//
// A campaign builds an armCache up front with one key per trial
// (encArm canonically encodes everything the trial depends on: config
// fields, seed, trial identity — never Workers or Telemetry, which must
// not change results). Construction probes and fully decodes every hit
// serially, before the scheduler fans out, so:
//
//   - expensive campaign-wide setup (golden runs, detector training)
//     can be skipped when AllHit reports a fully warm cache;
//   - scheduler jobs call CachedArm, which replays the decoded value or
//     computes-and-stores, without ever touching the decoder again — a
//     corrupt entry is already a miss by the time jobs run.
//
// Results still stream back through internal/sched's order-preserving
// collector, so campaign output is byte-identical warm or cold at any
// -workers width.
type armCodec[T any] struct {
	enc func(*resultcache.Enc, T)
	dec func(*resultcache.Dec) T
}

// armCache holds the per-trial keys and pre-decoded hits for one
// campaign. A cache built over a nil store never hits and never
// stores — campaigns run exactly as before.
type armCache[T any] struct {
	store *resultcache.Store
	codec armCodec[T]
	keys  []resultcache.Key
	vals  []T
	hit   []bool
}

// cacheArms probes the store for all n arms of domain. encArm must
// write the canonical encoding of arm i's inputs; codec round-trips the
// result type. A decode failure (format drift, torn entry) counts as a
// miss — the arm recomputes and overwrites nothing (first write wins,
// but its key changed with the format version anyway; bump the domain
// suffix on any codec change).
func cacheArms[T any](store *resultcache.Store, domain string, n int,
	encArm func(int, *resultcache.Enc), codec armCodec[T]) *armCache[T] {
	c := &armCache[T]{
		store: store,
		codec: codec,
		keys:  make([]resultcache.Key, n),
		vals:  make([]T, n),
		hit:   make([]bool, n),
	}
	if store == nil {
		return c
	}
	for i := 0; i < n; i++ {
		var e resultcache.Enc
		encArm(i, &e)
		c.keys[i] = store.Key(domain, &e)
		payload, ok := store.Get(c.keys[i])
		if !ok {
			continue
		}
		d := resultcache.NewDec(payload)
		v := codec.dec(d)
		if d.Close() != nil {
			continue
		}
		c.vals[i] = v
		c.hit[i] = true
	}
	return c
}

// AllHit reports whether every arm was replayed from the store —
// campaigns use it to skip setup work (golden runs, ILD training) that
// only computing arms need.
func (c *armCache[T]) AllHit() bool {
	for _, h := range c.hit {
		if !h {
			return false
		}
	}
	return true
}

// CachedArm returns arm i: the pre-decoded replay on a hit, else
// compute's result, stored for next time. Safe for concurrent calls
// from scheduler workers — hits only read, and Store.Put serializes
// appends internally.
func (c *armCache[T]) CachedArm(i int, compute func() (T, error)) (T, error) {
	if c.hit[i] {
		return c.vals[i], nil
	}
	v, err := compute()
	if err != nil {
		var zero T
		return zero, err
	}
	if c.store != nil {
		var e resultcache.Enc
		c.codec.enc(&e, v)
		c.store.Put(c.keys[i], e.Bytes())
	}
	return v, nil
}

// encSELConfig canonically encodes the SEL campaign parameters that
// results depend on. Workers, Telemetry and Cache are deliberately
// absent: they must never change results (that is the scheduler's
// byte-identical-at-any-width contract).
func encSELConfig(e *resultcache.Enc, c SELConfig) {
	e.Duration(c.Duration)
	e.Duration(c.SampleEvery)
	e.Duration(c.TrainFor)
	e.Duration(c.SELEvery)
	e.Float(c.SELAmps)
	e.Duration(c.Window)
	e.Int(c.Seed)
}

// encSupervisorConfig canonically encodes the guard ladder tuning.
func encSupervisorConfig(e *resultcache.Enc, sc guard.SupervisorConfig) {
	e.Float(sc.Health.MinPlausibleA)
	e.Float(sc.Health.MaxPlausibleA)
	e.Int(int64(sc.Health.StuckAfter))
	e.Duration(sc.Health.MaxSampleGap)
	e.Int(int64(sc.BadAfter))
	e.Int(int64(sc.GoodAfter))
	e.Duration(sc.RefireWindow)
	e.Int(int64(sc.RefireLimit))
	e.Duration(sc.BlindCycleEvery)
	e.Float(sc.StaticLevelA)
	e.Int(int64(sc.HangAfter))
	e.Duration(sc.HeartbeatTimeout)
}

// encEnvironment canonically encodes a radiation environment for key
// derivation. Every field participates: changing any rate is a new arm.
func encEnvironment(e *resultcache.Enc, env fault.Environment) {
	e.Str(env.Name)
	e.Float(env.SEUPerDay)
	e.Float(env.MBUFrac)
	e.Float(env.SELPerYear)
	e.Float(env.SELAmpsMin)
	e.Float(env.SELAmpsMax)
}
