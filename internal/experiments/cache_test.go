package experiments

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
	"time"

	"radshield/internal/power"
	"radshield/internal/resultcache"
)

// TestCachedArmSitesAreProven enforces the cached ⊆ proven contract
// from cache.go: every CachedArm call site in this package must sit
// inside a region radlint's armpurity analyzer proves deterministic —
// either a func literal passed as the job argument to sched.Map /
// sched.Stream, or the body of an exported *Campaign entry point.
// Caching an unproven arm would replay results the determinism checker
// never vouched for; add the proof first.
func TestCachedArmSitesAreProven(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var proven []ast.Node // armpurity-proven regions, by source extent
	var sites []*ast.CallExpr
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncDecl:
					if v.Recv == nil && v.Name.IsExported() &&
						strings.HasSuffix(v.Name.Name, "Campaign") && v.Body != nil {
						proven = append(proven, v.Body)
					}
				case *ast.CallExpr:
					sel, ok := v.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sched" &&
						(sel.Sel.Name == "Map" || sel.Sel.Name == "Stream") && len(v.Args) > 2 {
						if fl, ok := v.Args[2].(*ast.FuncLit); ok {
							proven = append(proven, fl)
						}
					}
					if sel.Sel.Name == "CachedArm" {
						sites = append(sites, v)
					}
				}
				return true
			})
		}
	}
	if len(sites) < 11 {
		t.Fatalf("found %d CachedArm call sites, want at least one per cached campaign (11)", len(sites))
	}
	for _, site := range sites {
		covered := false
		for _, r := range proven {
			if site.Pos() >= r.Pos() && site.End() <= r.End() {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("%s: CachedArm call site outside the armpurity-proven set "+
				"(must be inside a sched.Map/sched.Stream job or an exported *Campaign body)",
				fset.Position(site.Pos()))
		}
	}
}

func openCacheStore(t *testing.T, dir string) *resultcache.Store {
	t.Helper()
	s, err := resultcache.Open(dir)
	if err != nil {
		t.Fatalf("open cache store: %v", err)
	}
	return s
}

func closeCacheStore(t *testing.T, s *resultcache.Store) resultcache.Stats {
	t.Helper()
	st := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatalf("close cache store: %v", err)
	}
	return st
}

// cacheCampaigns drives every cached campaign through one seam-agnostic
// runner: run(workers, store) renders the campaign with the given cache
// store (nil = caching disabled).
var cacheCampaigns = []struct {
	name  string
	short bool // run under -short too
	run   func(workers int, store *resultcache.Store) (string, error)
}{
	{"MissionSurvival", false, func(workers int, store *resultcache.Store) (string, error) {
		c := DefaultMissionConfig()
		c.Missions = 2
		c.Duration = time.Hour
		c.Workers = workers
		c.Cache = store
		_, _, tbl, err := MissionSurvival(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"Table2", true, func(workers int, store *resultcache.Store) (string, error) {
		c := equivSEL(workers)
		c.Cache = store
		_, tbl, err := Table2(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"Fig10", true, func(workers int, store *resultcache.Store) (string, error) {
		c := equivSEL(workers)
		c.Cache = store
		fig, err := Fig10(c, 2)
		if err != nil {
			return "", err
		}
		return fig.String(), nil
	}},
	{"ThresholdSweep", true, func(workers int, store *resultcache.Store) (string, error) {
		c := equivSEL(workers)
		c.Cache = store
		_, tbl, err := ThresholdSweep(c, 2)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"Table7", true, func(workers int, store *resultcache.Store) (string, error) {
		c := Table7Config{Runs: 4, Size: 16 << 10, Seed: 7, Workers: workers, Cache: store}
		_, tbl, err := Table7(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"Fig11", true, func(workers int, store *resultcache.Store) (string, error) {
		c := SEUConfig{Size: 16 << 10, Seed: 42, Workers: workers, Cache: store}
		_, tbl, err := Fig11(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"GuardCampaign", false, func(workers int, store *resultcache.Store) (string, error) {
		c := equivGuard(workers)
		c.SEL.Cache = store
		_, tbl, err := GuardCampaign(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"WatchdogCampaign", true, func(workers int, store *resultcache.Store) (string, error) {
		c := DefaultWatchdogCampaignConfig()
		c.Workers = workers
		c.Cache = store
		_, tbl, err := WatchdogCampaign(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"DownlinkCampaign", false, func(workers int, store *resultcache.Store) (string, error) {
		c := equivDownlink(workers)
		c.Cache = store
		_, tbl, err := DownlinkCampaign(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"OSFaultCampaign", false, func(workers int, store *resultcache.Store) (string, error) {
		c := equivOSFault(workers)
		c.SEL.Cache = store
		_, tbl, err := OSFaultCampaign(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
	{"AdaptiveCampaign", false, func(workers int, store *resultcache.Store) (string, error) {
		c := equivAdaptive(workers)
		c.SEL.Cache = store
		_, tbl, err := AdaptiveCampaign(c)
		if err != nil {
			return "", err
		}
		return tbl.String(), nil
	}},
}

// TestCacheEquivalence is the soundness gate for the result cache:
// for every cached campaign, the rendered output must be byte-identical
// across (a) caching disabled, (b) a cold cache populating the store,
// and (c) a warm cache replaying every arm — and the warm run must be
// replays only (zero misses), at a different worker width than the run
// that populated it.
func TestCacheEquivalence(t *testing.T) {
	for _, tc := range cacheCampaigns {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && !tc.short {
				t.Skip("long campaign")
			}
			golden, err := tc.run(1, nil)
			if err != nil {
				t.Fatalf("uncached: %v", err)
			}
			if golden == "" {
				t.Fatal("uncached run rendered nothing")
			}

			dir := t.TempDir()
			s := openCacheStore(t, dir)
			cold, err := tc.run(1, s)
			coldStats := closeCacheStore(t, s)
			if err != nil {
				t.Fatalf("cold cache: %v", err)
			}
			if cold != golden {
				t.Errorf("cold-cache output differs from uncached\n--- uncached ---\n%s\n--- cold ---\n%s", golden, cold)
			}
			if coldStats.Misses == 0 || coldStats.Hits != 0 {
				t.Errorf("cold stats = %+v, want all misses and no hits", coldStats)
			}
			if coldStats.Entries == 0 {
				t.Error("cold run stored no entries")
			}

			s = openCacheStore(t, dir)
			warm, err := tc.run(4, s)
			warmStats := closeCacheStore(t, s)
			if err != nil {
				t.Fatalf("warm cache: %v", err)
			}
			if warm != golden {
				t.Errorf("warm-cache output differs from uncached\n--- uncached ---\n%s\n--- warm ---\n%s", golden, warm)
			}
			if warmStats.Misses != 0 {
				t.Errorf("warm stats = %+v, want zero misses (every arm replayed)", warmStats)
			}
			if warmStats.Hits == 0 {
				t.Error("warm run replayed nothing")
			}
		})
	}
}

// TestCacheChangedConfigRecomputes proves invalidation: warming the
// store under one config must not let a different config replay stale
// arms — changed inputs derive different keys, so every arm recomputes
// and the output matches an uncached run of the new config.
func TestCacheChangedConfigRecomputes(t *testing.T) {
	table7 := func(workers int, seed int64, store *resultcache.Store) string {
		t.Helper()
		c := Table7Config{Runs: 4, Size: 16 << 10, Seed: seed, Workers: workers, Cache: store}
		_, tbl, err := Table7(c)
		if err != nil {
			t.Fatalf("Table7 seed=%d: %v", seed, err)
		}
		return tbl.String()
	}

	dir := t.TempDir()
	s := openCacheStore(t, dir)
	table7(2, 7, s)
	closeCacheStore(t, s)

	goldenB := table7(1, 8, nil)
	s = openCacheStore(t, dir)
	gotB := table7(2, 8, s)
	stats := closeCacheStore(t, s)
	if gotB != goldenB {
		t.Errorf("changed-seed run replayed stale results\n--- uncached ---\n%s\n--- cached ---\n%s", goldenB, gotB)
	}
	if stats.Hits != 0 {
		t.Errorf("changed-seed run hit %d stale entries, want 0", stats.Hits)
	}
	if stats.Misses == 0 {
		t.Error("changed-seed run recorded no misses")
	}

	// The original config still replays fully from the same store.
	goldenA := table7(1, 7, nil)
	s = openCacheStore(t, dir)
	gotA := table7(2, 7, s)
	stats = closeCacheStore(t, s)
	if gotA != goldenA {
		t.Errorf("original config replay differs from uncached run")
	}
	if stats.Misses != 0 {
		t.Errorf("original config re-run missed %d arms, want full replay", stats.Misses)
	}
}

// TestCacheGuardCampaignGridIdentity pins the documented invalidation
// property that trial-index-seeded campaigns key on the grid index:
// shrinking the sweep grid changes arm identities, so a warmed store
// must not replay arms into different grid positions.
func TestCacheGuardCampaignGridIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	run := func(kinds []power.FaultKind, store *resultcache.Store) string {
		t.Helper()
		c := equivGuard(2)
		c.Kinds = kinds
		c.SEL.Cache = store
		_, tbl, err := GuardCampaign(c)
		if err != nil {
			t.Fatalf("GuardCampaign: %v", err)
		}
		return tbl.String()
	}

	dir := t.TempDir()
	s := openCacheStore(t, dir)
	run([]power.FaultKind{power.FaultStuck, power.FaultDropout}, s)
	closeCacheStore(t, s)

	golden := run([]power.FaultKind{power.FaultDropout}, nil)
	s = openCacheStore(t, dir)
	got := run([]power.FaultKind{power.FaultDropout}, s)
	closeCacheStore(t, s)
	if got != golden {
		t.Errorf("reshaped grid replayed stale arms\n--- uncached ---\n%s\n--- cached ---\n%s", golden, got)
	}
}
