package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/ild"
	"radshield/internal/sched"
	"radshield/internal/trace"
)

// ProfileStats quantifies §3.1's premise for one mission profile:
// "quiescent periods occur frequently in spacecraft" — and where they do
// not, bubbles restore them.
type ProfileStats struct {
	Profile           string
	QuiescentFraction float64
	// OpportunitiesPerHour counts natural quiescent stretches long
	// enough for a full detection window (sustain + margin).
	OpportunitiesPerHour float64
	// WorstGap is the longest stretch without a detection opportunity,
	// before and after bubble injection.
	WorstGap        time.Duration
	WorstGapBubbled time.Duration
}

// MissionProfiles analyses the four mission profiles the deployments in
// the paper's §5 span. Each profile is one scheduler trial with its own
// seeded RNG; workers <= 0 means one per CPU.
func MissionProfiles(seed int64, workers int) ([]ProfileStats, *Table) {
	const cores = 4
	minWindow := 4 * time.Second // sustain (3 s) + boundary margin
	policy := ild.BubblePolicy{BubbleLen: minWindow, Pause: 3 * time.Minute}

	profiles := []struct {
		name string
		gen  func(rng *rand.Rand) *trace.Trace
	}{
		{"ground-testbed", func(rng *rand.Rand) *trace.Trace { return trace.GroundTestbed(rng, 6*time.Hour, cores) }},
		{"leo-smallsat", func(rng *rand.Rand) *trace.Trace { return trace.FlightSoftware(rng, 6*time.Hour, cores) }},
		{"mars-sol", func(rng *rand.Rand) *trace.Trace { return trace.MarsSol(rng, cores) }},
		{"deep-space-cruise", func(rng *rand.Rand) *trace.Trace { return trace.DeepSpaceCruise(rng, 6*time.Hour, time.Hour, cores) }},
	}

	tbl := &Table{
		Title:  "Mission profiles: natural detection opportunities (§3.1 premise)",
		Header: []string{"Profile", "Quiescent", "Opportunities/hr", "Worst gap", "Worst gap (bubbled)"},
	}
	// Trace generation never fails, so the scheduler error path is
	// unreachable here; panics still propagate.
	out, _ := sched.Map(len(profiles), workers, func(i int) (ProfileStats, error) {
		p := profiles[i]
		rng := rand.New(rand.NewSource(seed + int64(i)))
		tr := p.gen(rng)
		opps, worst := opportunityStats(tr, minWindow)
		_, worstBubbled := opportunityStats(ild.InjectBubbles(tr, policy), minWindow)
		return ProfileStats{
			Profile:              p.name,
			QuiescentFraction:    tr.QuiescentFraction(),
			OpportunitiesPerHour: float64(opps) / tr.Total().Hours(),
			WorstGap:             worst,
			WorstGapBubbled:      worstBubbled,
		}, nil
	})
	for _, st := range out {
		tbl.AddRow(st.Profile, pct(st.QuiescentFraction),
			fmt.Sprintf("%.1f", st.OpportunitiesPerHour),
			st.WorstGap.Round(time.Second).String(),
			st.WorstGapBubbled.Round(time.Second).String())
	}
	return out, tbl
}

// opportunityStats walks a trace counting disjoint minWindow-long
// detection slots inside quiescent time (housekeeping counts as
// quiescent, matching the detector's CPU-load gate) and the longest
// stretch between completed slots.
func opportunityStats(tr *trace.Trace, minWindow time.Duration) (count int, worstGap time.Duration) {
	var quietRun, sinceOpp time.Duration
	for _, s := range tr.Segments {
		if s.Kind == trace.Workload {
			quietRun = 0
			sinceOpp += s.Duration
			continue
		}
		remaining := s.Duration
		for remaining > 0 {
			need := minWindow - quietRun
			if remaining >= need {
				count++
				quietRun = 0
				remaining -= need
				sinceOpp += need
				if sinceOpp > worstGap {
					worstGap = sinceOpp
				}
				sinceOpp = 0
			} else {
				quietRun += remaining
				sinceOpp += remaining
				remaining = 0
			}
		}
	}
	if sinceOpp > worstGap {
		worstGap = sinceOpp
	}
	return count, worstGap
}
