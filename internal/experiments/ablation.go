package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"radshield/internal/bayes"
	"radshield/internal/emr"
	"radshield/internal/fault"
	"radshield/internal/forest"
	"radshield/internal/ild"
	"radshield/internal/machine"
	"radshield/internal/sched"
	"radshield/internal/stats"
	"radshield/internal/trace"
	"radshield/internal/workloads"
)

// Ablation studies for the design decisions DESIGN.md calls out. Each
// returns a rendered table; the repository benchmarks exercise them.

// AblationRollingMin compares the quiescent current noise floor and the
// resulting micro-SEL separability with and without the ±250 µs
// rolling-minimum filter (paper §3.1: σ 0.14 A → 0.02 A).
func AblationRollingMin(c SELConfig) *Table {
	tbl := &Table{
		Title:  "Ablation: rolling-minimum filter width",
		Header: []string{"FilterK", "Quiescent σ (A)", "σ vs SEL (0.07A) margin"},
	}
	ks := []int{1, 3, 5, 9}
	// Each filter width is an independent trial (own machine, own RNG);
	// σ estimation never fails so the error path is unreachable.
	sigmas, _ := sched.Map(len(ks), c.Workers, func(i int) (float64, error) {
		mc := c.machineConfig(c.Seed + int64(ks[i]))
		mc.FilterK = ks[i]
		m := machine.New(mc)
		rng := rand.New(rand.NewSource(c.Seed))
		var cur []float64
		m.RunTrace(trace.Quiescent(rng, 30*time.Second, 10*time.Second), func(tel machine.Telemetry) {
			cur = append(cur, tel.CurrentA)
		})
		return stats.StdDev(cur), nil
	}, sched.WithTelemetry(c.Telemetry))
	for i, sigma := range sigmas {
		margin := 0.07 / sigma
		tbl.AddRow(fmt.Sprint(ks[i]), fmt.Sprintf("%.4f", sigma), fmt.Sprintf("%.1fσ", margin))
	}
	return tbl
}

// AblationQuiescenceGate compares ILD with its quiescence gate against a
// variant that also trusts measurements under load — the paper's core
// argument for detecting only when idle.
func AblationQuiescenceGate(c SELConfig) (*Table, error) {
	gated, err := TrainILD(c)
	if err != nil {
		return nil, err
	}
	// Ungated variant: the same fitted model, but every sample is
	// considered quiescent — the model must extrapolate to load levels it
	// never saw in (quiescent-only) training.
	ungatedCfg := c.ildConfig()
	ungatedCfg.QuiescentInstrPerSec = math.MaxFloat64
	ungated, err := ild.NewDetector(gated.Model(), ungatedCfg)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		Title:  "Ablation: quiescence gating",
		Header: []string{"Variant", "FP samples under load", "Load samples"},
	}
	variants := []struct {
		name string
		mon  ild.Monitor
	}{{"gated (ILD)", gated}, {"ungated", ungated}}
	// Each variant owns its monitor and replays the same burst trace on
	// its own machine, so the two trials are independent.
	type gateCount struct{ fp, n int }
	counts, _ := sched.Map(len(variants), c.Workers, func(i int) (gateCount, error) {
		m := machine.New(c.machineConfig(c.Seed + 310))
		rng := rand.New(rand.NewSource(c.Seed + 311))
		var gc gateCount
		m.RunTrace(trace.Burst(rng, 2*time.Minute, 4), func(tel machine.Telemetry) {
			gc.n++
			if variants[i].mon.Observe(tel) {
				gc.fp++
			}
		})
		return gc, nil
	}, sched.WithTelemetry(c.Telemetry))
	for i, gc := range counts {
		tbl.AddRow(variants[i].name, fmt.Sprint(gc.fp), fmt.Sprint(gc.n))
	}
	return tbl, nil
}

// AblationBubbleCadence sweeps the bubble policy (paper: 3 s per 180 s),
// reporting runtime overhead against worst-case detection latency.
func AblationBubbleCadence() *Table {
	tbl := &Table{
		Title:  "Ablation: bubble cadence (overhead vs detection latency)",
		Header: []string{"Bubble", "Pause", "Overhead", "Worst-case latency"},
	}
	for _, p := range []ild.BubblePolicy{
		{BubbleLen: 3 * time.Second, Pause: 60 * time.Second},
		{BubbleLen: 3 * time.Second, Pause: 180 * time.Second},
		{BubbleLen: 3 * time.Second, Pause: 600 * time.Second},
		{BubbleLen: 10 * time.Second, Pause: 180 * time.Second},
	} {
		// Worst case: the SEL strikes just after a bubble ends; it is
		// caught at the end of the next bubble.
		latency := p.Pause + p.BubbleLen
		tbl.AddRow(p.BubbleLen.String(), p.Pause.String(), pct(p.OverheadFraction()), latency.String())
	}
	return tbl
}

// AblationClassifier reproduces the paper's rejected alternatives for
// the ILD model (§3.1: naive Bayes and random forest on OS metrics were
// "computationally expensive and imprecise" next to the linear model).
// Classifiers are trained on full feature vectors labelled nominal/SEL
// and evaluated on quiescent telemetry with and without a +0.07 A SEL.
func AblationClassifier(c SELConfig) (*Table, error) {
	// Training data: quiescent features (+ current appended) under both
	// labels.
	var X [][]float64
	var y []int
	for pass, sel := range []float64{0, c.SELAmps} {
		m := machine.New(c.machineConfig(c.Seed + 400 + int64(pass)))
		if sel > 0 {
			injectSEL(m, sel)
		}
		rng := rand.New(rand.NewSource(c.Seed + 402))
		label := 0
		if sel > 0 {
			label = 1
		}
		i := 0
		m.RunTrace(trace.Quiescent(rng, c.TrainFor, 10*time.Second), func(tel machine.Telemetry) {
			i++
			if i%4 != 0 {
				return
			}
			X = append(X, append(ild.Features(tel), tel.CurrentA))
			y = append(y, label)
		})
	}
	rf := forest.Train(X, y, forest.Config{Trees: 20, MaxDepth: 8, Seed: c.Seed})
	nb := bayes.Train(X, y)
	lin, err := TrainILD(c)
	if err != nil {
		return nil, err
	}

	evaluate := func(predict func(machine.Telemetry) bool) (fnr, fpr float64) {
		var conf stats.Confusion
		for pass, sel := range []float64{0, c.SELAmps} {
			m := machine.New(c.machineConfig(c.Seed + 500 + int64(pass)))
			if sel > 0 {
				injectSEL(m, sel)
			}
			rng := rand.New(rand.NewSource(c.Seed + 502 + int64(pass)))
			m.RunTrace(trace.Quiescent(rng, time.Minute, 10*time.Second), func(tel machine.Telemetry) {
				conf.Record(predict(tel), sel > 0)
			})
		}
		return conf.FalseNegativeRate(), conf.FalsePositiveRate()
	}

	tbl := &Table{
		Title:  "Ablation: ILD model choice (per-sample rates during quiescence)",
		Header: []string{"Model", "FalseNegRate", "FalsePosRate"},
	}
	// Training above is shared and serial; evaluation replays identical
	// campaigns per model, so each model is one scheduler trial. The
	// forest and Bayes predictors are pure; the ILD detector is stateful
	// but owned by its trial alone.
	models := []struct {
		name    string
		predict func(machine.Telemetry) bool
	}{
		{"linear+window (ILD)", func(tel machine.Telemetry) bool { return lin.Observe(tel) }},
		{"random forest", func(tel machine.Telemetry) bool {
			return rf.Predict(append(ild.Features(tel), tel.CurrentA)) == 1
		}},
		{"naive bayes", func(tel machine.Telemetry) bool {
			return nb.Predict(append(ild.Features(tel), tel.CurrentA)) == 1
		}},
	}
	type rates struct{ fnr, fpr float64 }
	rows, _ := sched.Map(len(models), c.Workers, func(i int) (rates, error) {
		fnr, fpr := evaluate(models[i].predict)
		return rates{fnr, fpr}, nil
	}, sched.WithTelemetry(c.Telemetry))
	for i, r := range rows {
		tbl.AddRow(models[i].name, pct(r.fnr), pct(r.fpr))
	}
	return tbl, nil
}

// AblationScheduling compares EMR's greedy conflict-aware jobsets with
// forced full serialization and the unprotected free-for-all on the
// image-processing workload.
func AblationScheduling(c SEUConfig) (*Table, error) {
	b := workloads.ImageProcessing()
	tbl := &Table{
		Title:  "Ablation: jobset scheduling (image processing, DRAM frontier)",
		Header: []string{"Variant", "Jobsets", "Runtime(s)", "Protected"},
	}
	// Unprotected parallel (lower bound, leaves shared cache exposed).
	unprot, err := runScheme(b, fault.SchemeUnprotectedParallel, emr.FrontierDRAM, c, nil, nil)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("unprotected parallel", "-", fmt.Sprintf("%.4f", unprot.Report.Makespan.Seconds()), "no")

	// EMR greedy jobsets.
	emrRes, err := runScheme(b, fault.SchemeEMR, emr.FrontierDRAM, c, nil, nil)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("EMR greedy jobsets", fmt.Sprint(emrRes.Report.Jobsets),
		fmt.Sprintf("%.4f", emrRes.Report.Makespan.Seconds()), "yes")

	// Fully serialized: every pair conflicts.
	cfg := emr.DefaultConfig()
	cfg.DRAMSize = 256 << 20
	cfg.StorageSize = 256 << 20
	rt, err := getRuntime(cfg)
	if err != nil {
		return nil, err
	}
	defer putRuntime(cfg, rt)
	spec, err := b.Build(rt, c.Size, c.Seed)
	if err != nil {
		return nil, err
	}
	spec.ExtraConflict = func(i, j int) bool { return true }
	serialized, err := rt.Run(spec)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("all-conflict (serialized)", fmt.Sprint(serialized.Report.Jobsets),
		fmt.Sprintf("%.4f", serialized.Report.Makespan.Seconds()), "yes")
	return tbl, nil
}

// AblationCacheECC compares EMR's software flush discipline against the
// hardware alternative the paper mentions in §3.2: an SECDED-protected
// shared cache, under which EMR "simply reverts to 3-MR". The same cache
// strike is injected under both configurations.
func AblationCacheECC(c SEUConfig) (*Table, error) {
	b := workloads.ImageProcessing()
	tbl := &Table{
		Title:  "Ablation: software flush discipline vs hardware cache ECC",
		Header: []string{"Variant", "Runtime(s)", "Flushes", "Strikes absorbed in HW", "Votes corrected"},
	}
	// Both variants build their own runtime from the shared (stateless)
	// builder; the same strike is injected in each, so they are
	// independent scheduler trials.
	variants := []bool{false, true}
	rows, err := sched.Map(len(variants), c.Workers, func(i int) ([]string, error) {
		ecc := variants[i]
		cfg := emr.DefaultConfig()
		cfg.CacheECC = ecc
		cfg.DRAMSize = 256 << 20
		cfg.StorageSize = 256 << 20
		rt, err := getRuntime(cfg)
		if err != nil {
			return nil, err
		}
		defer putRuntime(cfg, rt)
		spec, err := b.Build(rt, c.Size, c.Seed)
		if err != nil {
			return nil, err
		}
		done := false
		spec.Hook = func(hp *emr.HookPoint) {
			if !done && hp.Phase == emr.PhaseAfterRead && hp.Dataset == 1 && hp.Executor == 0 {
				done = true
				rt.Cache().FlipBit(hp.Regions[0].Addr+64, 3)
			}
		}
		res, err := rt.Run(spec)
		if err != nil {
			return nil, err
		}
		name := "EMR flush discipline"
		if ecc {
			name = "hardware cache ECC (plain 3-MR)"
		}
		return []string{name,
			fmt.Sprintf("%.4f", res.Report.Makespan.Seconds()),
			fmt.Sprint(res.Report.CacheStats.LinesFlushed),
			fmt.Sprint(res.Report.CacheStats.FlipsAbsorbed),
			fmt.Sprint(res.Report.Votes.Corrected)}, nil
	}, sched.WithTelemetry(c.Telemetry))
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		tbl.AddRow(r...)
	}
	return tbl, nil
}
