package experiments

import (
	"testing"
	"time"
)

// quickSEL shrinks the campaign for unit-test latency while keeping
// enough episodes for stable rates.
func quickSEL() SELConfig {
	c := DefaultSELConfig()
	c.Duration = 90 * time.Minute
	return c
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	results, tbl, err := Table2(quickSEL())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	byName := map[string]DetectorAccuracyResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	ild := byName["ILD"]
	if ild.Episodes < 2 {
		t.Fatalf("only %d episodes; campaign too short", ild.Episodes)
	}
	// Paper Table 2: ILD has 0% FN and ~0.02% FP.
	if ild.FalseNegativeRate != 0 {
		t.Errorf("ILD FNR = %v, want 0", ild.FalseNegativeRate)
	}
	if ild.FalsePositiveRate > 0.005 {
		t.Errorf("ILD FPR = %v, want ≈0.0002", ild.FalsePositiveRate)
	}
	// Every baseline is at least an order of magnitude worse on at least
	// one axis (paper: 27–62% rates).
	for _, name := range []string{"RandomForest", "Static 1.75A", "Static 1.80A", "Static 1.85A"} {
		r := byName[name]
		if r.FalseNegativeRate < 0.1 && r.FalsePositiveRate < 0.1 {
			t.Errorf("%s: FNR=%.3f FPR=%.3f — baseline unexpectedly competitive",
				name, r.FalseNegativeRate, r.FalsePositiveRate)
		}
	}
	// Static thresholds: raising the level trades FN up for FP down.
	lo, hi := byName["Static 1.75A"], byName["Static 1.85A"]
	if hi.FalsePositiveRate > lo.FalsePositiveRate {
		t.Errorf("raising threshold increased FPR: %.3f → %.3f", lo.FalsePositiveRate, hi.FalsePositiveRate)
	}
}

func TestFig10KneeNearThreshold(t *testing.T) {
	c := quickSEL()
	fig, err := Fig10(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", fig)
	s := fig.Series[0]
	if len(s.X) != 10 {
		t.Fatalf("sweep points = %d, want 10", len(s.X))
	}
	// Below the 0.055 A decision threshold: missed. Well above: always
	// caught (paper: no FN beyond 0.05 A).
	for i := range s.X {
		switch {
		case s.X[i] <= 0.045:
			if s.Y[i] != 1 {
				t.Errorf("amps %.2f: FNR = %v, want 1 (below threshold)", s.X[i], s.Y[i])
			}
		case s.X[i] >= 0.065:
			if s.Y[i] != 0 {
				t.Errorf("amps %.2f: FNR = %v, want 0", s.X[i], s.Y[i])
			}
		}
	}
}

func TestTable3Overhead(t *testing.T) {
	tbl := Table3(19 * time.Second)
	t.Logf("\n%s", tbl)
	if len(tbl.Rows) != 1 || len(tbl.Rows[0]) != 2 {
		t.Fatalf("unexpected table shape: %+v", tbl.Rows)
	}
}

func TestFig2ThresholdBlindToMicroSEL(t *testing.T) {
	res := Fig2(DefaultSELConfig())
	// The paper's Figure 2 story: workload activity crosses the 4 A trip
	// line, the latched-but-quiescent system never does.
	if !res.CrossesNominal {
		t.Errorf("nominal workload peak %.2f A never crossed the %.1f A trip line", res.MaxNominalA, res.ThresholdA)
	}
	if res.CrossesLatched {
		t.Errorf("quiescent+SEL current %.2f A crossed the trip line — SEL should be invisible to it", res.MaxLatchedA)
	}
	if len(res.Fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(res.Fig.Series))
	}
}

func TestFig5HighCorrelation(t *testing.T) {
	res := Fig5(DefaultSELConfig())
	// Paper: 99.7% correlation between current draw and CPU activity.
	if res.Correlation < 0.95 {
		t.Fatalf("correlation = %.4f, want ≥0.95", res.Correlation)
	}
}

func TestAblationRollingMin(t *testing.T) {
	tbl := AblationRollingMin(DefaultSELConfig())
	t.Logf("\n%s", tbl)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationQuiescenceGate(t *testing.T) {
	c := DefaultSELConfig()
	tbl, err := AblationQuiescenceGate(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	// Row 0 = gated, row 1 = ungated: the gated variant must have zero
	// false positives under load; the ungated variant should misfire.
	if tbl.Rows[0][1] != "0" {
		t.Errorf("gated ILD fired under load: %v", tbl.Rows[0])
	}
	if tbl.Rows[1][1] == "0" {
		t.Errorf("ungated variant never misfired under load — gate appears unnecessary: %v", tbl.Rows[1])
	}
}

func TestAblationBubbleCadence(t *testing.T) {
	tbl := AblationBubbleCadence()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationClassifier(t *testing.T) {
	c := DefaultSELConfig()
	c.TrainFor = time.Minute
	tbl, err := AblationClassifier(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 models", len(tbl.Rows))
	}
	// The linear+window ILD row must be near-clean on both axes (the
	// paper's reason for choosing it). Per-sample accounting charges the
	// 3 s window-fill latency at the start of each episode as misses, so
	// a few percent FN is expected; FP must be zero.
	if tbl.Rows[0][2] != "0.00%" {
		t.Errorf("ILD FPR row = %v, want 0.00%% false positives", tbl.Rows[0])
	}
}
