package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"radshield/internal/forest"
	"radshield/internal/ild"
	"radshield/internal/machine"
	"radshield/internal/stats"
	"radshield/internal/trace"
)

// FeatureSelection reproduces the paper's §3.1 metric-selection step:
// "These counters were chosen by first creating a random forest to model
// current draw, and then selecting the most important features in the
// resulting random forest model."
//
// The candidate set is the Table 1 counters plus deliberately useless
// distractors (sensor noise replayed as a "metric", a constant, a
// counter unrelated to power). The forest is trained to predict the
// current-draw quartile; real activity counters must dominate the
// importance ranking and every distractor must rank near zero.
type FeatureSelectionResult struct {
	Names      []string
	Importance []float64
	// TopCounters is the importance mass carried by genuine counters.
	TopCounters float64
	// DistractorMass is the importance mass carried by distractors.
	DistractorMass float64
	Tbl            *Table
}

// distractor feature count appended after the genuine features.
const nDistractors = 3

// FeatureSelection runs the selection experiment over a stepped compute
// trace.
func FeatureSelection(c SELConfig) *FeatureSelectionResult {
	m := machine.New(c.machineConfig(c.Seed + 900))
	rng := rand.New(rand.NewSource(c.Seed + 901))

	var X [][]float64
	var currents []float64
	tr := trace.MatMulSteps(4, 600e6, 1.4e9, 100e6, 200*time.Millisecond)
	tr.Append(trace.Burst(rng, 10*time.Second, 4).Segments...)
	tr.Append(trace.Quiescent(rng, 10*time.Second, 2*time.Second).Segments...)
	m.RunTrace(tr, func(tel machine.Telemetry) {
		row := ild.Features(tel)
		row = append(row,
			rng.NormFloat64(),      // pure noise
			1.0,                    // constant
			float64(len(row))*0.25, // another constant dressed as a metric
		)
		X = append(X, row)
		currents = append(currents, tel.CurrentA)
	})

	// Quartile-bin the current for the classifier.
	q1 := stats.Quantile(currents, 0.25)
	q2 := stats.Quantile(currents, 0.5)
	q3 := stats.Quantile(currents, 0.75)
	y := make([]int, len(currents))
	for i, cur := range currents {
		switch {
		case cur < q1:
			y[i] = 0
		case cur < q2:
			y[i] = 1
		case cur < q3:
			y[i] = 2
		default:
			y[i] = 3
		}
	}
	// Generous leaves keep the trees from memorizing per-row noise, so a
	// useless distractor cannot buy importance by overfitting.
	f := forest.Train(X, y, forest.Config{Trees: 30, MaxDepth: 8, MinLeaf: 25, FeatureFrac: 1, Seed: c.Seed})

	names := append(ild.FeatureNames(4), "distractor.noise", "distractor.const1", "distractor.const2")
	imp := f.Importance()
	res := &FeatureSelectionResult{Names: names, Importance: imp}
	for i, v := range imp {
		if i >= len(imp)-nDistractors {
			res.DistractorMass += v
		} else {
			res.TopCounters += v
		}
	}

	idx := make([]int, len(names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return imp[idx[a]] > imp[idx[b]] })
	tbl := &Table{
		Title:  "Feature selection: random-forest importance for current prediction (§3.1)",
		Header: []string{"Rank", "Metric", "Importance"},
	}
	for rank, i := range idx {
		if rank >= 10 {
			break
		}
		tbl.AddRow(fmt.Sprint(rank+1), names[i], fmt.Sprintf("%.4f", imp[i]))
	}
	res.Tbl = tbl
	return res
}
