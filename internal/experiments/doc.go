// Package experiments contains one harness per table and figure of the
// paper's evaluation (§4), plus the ablation studies of the design
// choices called out in DESIGN.md. Each harness returns a plain result
// struct and can render itself as the text table / data series the paper
// reports; cmd/radbench and the repository-level benchmarks drive them.
//
// The SEL side (Table 2, Figures 2/5/10, threshold and quiescence
// ablations) is parameterized by SELConfig and runs detector campaigns
// on the machine simulation; the SEU side (Figures 11–14, Tables 6/7,
// scheduling and cache-ECC ablations) is parameterized by SEUConfig and
// Table7Config and runs workloads under the EMR runtime. Table and
// Figure are the plain-text rendering helpers.
//
// Both config types carry an optional Telemetry registry; when set, the
// campaign's machines, detectors, and EMR runtimes record the metrics
// and events documented in TELEMETRY.md. Ground-twin training
// deliberately detaches telemetry so flight metrics are not polluted by
// training traffic.
//
// Campaign loops fan their trials across CPUs through internal/sched;
// the Workers field on each config bounds the width (0 = one worker per
// CPU). Trials are self-contained — own seeded RNG, machine, detector —
// and results are collected in trial order, so rendered output is
// byte-identical at any width (the TestParallelEquivalence tests
// enforce this).
//
// Invariants: every harness is deterministic given its config (seeded
// RNGs, simulated clocks, virtual cost models); scaled-down defaults
// preserve the paper's qualitative shapes (who wins, by what factor)
// rather than absolute values; harnesses never share mutable state, so
// they may run in any order.
package experiments
