package experiments

import (
	"sync"

	"radshield/internal/emr"
)

// Campaigns burn through emr.Runtime devices: every payload contact and
// SEU trial used to build a fresh runtime, and a runtime carries well
// over 100 MB of DRAM, storage, and ECC check arrays. Under the parallel
// campaign scheduler that per-trial construction — really the memclr and
// GC pressure behind it — was a bottleneck shared by every worker (see
// PERFORMANCE.md). Runtimes are instead recycled through Runtime.Reset,
// which restores fresh-equivalent state for a fraction of the cost.

// runtimePool shelves reusable runtimes, one sync.Pool per exact
// emr.Config: a device may only ever be handed back out for the same
// configuration it was built with. sync.Pool (rather than a plain free
// list) lets the GC drop idle devices between campaigns.
type runtimePool struct {
	mu    sync.Mutex
	pools map[emr.Config]*sync.Pool
}

// The pool is mutable package-level state, but observably deterministic
// state: whether getRuntime recycles a device or builds a fresh one is
// invisible in trial outputs (Reset restores fresh-equivalent state),
// so reads through it cannot make two runs diverge.
//
//radlint:pure recycling is output-invariant: Runtime.Reset restores fresh-equivalent state, so trial results are byte-identical whether or not a pooled device was reused
var emrPool = runtimePool{pools: map[emr.Config]*sync.Pool{}}

func (p *runtimePool) lookup(cfg emr.Config) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp, ok := p.pools[cfg]
	if !ok {
		sp = &sync.Pool{}
		p.pools[cfg] = sp
	}
	return sp
}

// getRuntime returns a runtime for cfg, recycling a pooled device when
// one is on the shelf. The result is indistinguishable from emr.New(cfg)
// — Runtime.Reset clears memory contents, allocator watermarks, cache
// lines, and device statistics — so trial outputs are byte-identical
// whether or not a reuse happened. Reuse effectiveness is visible as
// emr_pool_hits_total / emr_pool_misses_total when cfg carries a
// telemetry registry.
//
// Configs with a Watcher attached bypass the pool: watchers are
// per-trial stateful objects, so keyed reuse could never hit (and a
// non-comparable Watcher must not reach the map key).
func getRuntime(cfg emr.Config) (*emr.Runtime, error) {
	if cfg.Watch != nil {
		return emr.New(cfg)
	}
	if rt, _ := emrPool.lookup(cfg).Get().(*emr.Runtime); rt != nil {
		cfg.Telemetry.Counter("emr_pool_hits_total", "runtimes").Inc()
		return rt, nil
	}
	cfg.Telemetry.Counter("emr_pool_misses_total", "runtimes").Inc()
	return emr.New(cfg)
}

// putRuntime resets rt and shelves it for the next getRuntime with the
// same config. Only call it once every pointer into the device is dead;
// run Results hold copies of outputs, never aliases into device memory,
// so returning the runtime after reading a Result is safe.
func putRuntime(cfg emr.Config, rt *emr.Runtime) {
	if cfg.Watch != nil {
		return
	}
	rt.Reset()
	emrPool.lookup(cfg).Put(rt)
}
