package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	s := tbl.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "333") {
		t.Fatalf("render: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
}

func TestFigureRenderingBars(t *testing.T) {
	f := &Figure{Title: "F", XLabel: "x", YLabel: "y"}
	s := Series{Name: "s"}
	s.Add(0, 0)
	s.Add(1, 5)
	s.Add(2, 10)
	f.Series = append(f.Series, s)
	out := f.String()
	if !strings.Contains(out, "-- s --") {
		t.Fatalf("missing series block: %q", out)
	}
	// The max point carries the longest bar; the min point an empty one.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var minBar, maxBar int
	for _, ln := range lines {
		if strings.Contains(ln, "|") {
			n := strings.Count(ln, "█")
			if strings.Contains(ln, " 0  ") || strings.HasSuffix(ln, "|") {
				// fallthrough: counts collected below
			}
			if n > maxBar {
				maxBar = n
			}
		}
	}
	_ = minBar
	if maxBar != 32 {
		t.Fatalf("max bar = %d, want full width 32", maxBar)
	}
}

func TestFigureDegenerateRange(t *testing.T) {
	f := &Figure{Title: "flat"}
	s := Series{Name: "s"}
	s.Add(0, 3)
	s.Add(1, 3)
	f.Series = append(f.Series, s)
	if out := f.String(); !strings.Contains(out, "|") {
		t.Fatalf("flat figure failed to render: %q", out)
	}
}

func TestBarClamping(t *testing.T) {
	if bar(5, 0, 10, 10) != strings.Repeat("█", 5) {
		t.Fatal("mid bar")
	}
	if bar(-1, 0, 10, 10) != "" {
		t.Fatal("below-range bar not clamped")
	}
	if bar(99, 0, 10, 10) != strings.Repeat("█", 10) {
		t.Fatal("above-range bar not clamped")
	}
	if bar(1, 5, 5, 10) != "" {
		t.Fatal("degenerate range")
	}
}
