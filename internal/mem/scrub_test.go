package mem

import (
	"math/rand"
	"testing"
)

func TestScrubberRequiresECC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewScrubber(non-ECC) did not panic")
		}
	}()
	NewScrubber(NewDRAM(64, false))
}

func TestScrubberCorrectsSingleFlips(t *testing.T) {
	d := NewDRAM(1024, true)
	if err := d.Write(0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	// Ten scattered single-bit flips, at most one per word.
	for w := 0; w < 10; w++ {
		d.FlipBit(uint64(w*64), uint(w%8))
	}
	s := NewScrubber(d)
	if bad := s.Step(int(d.Size() / 8)); bad != 0 {
		t.Fatalf("scrub found %d uncorrectable words, want 0", bad)
	}
	if s.Passes() != 1 {
		t.Fatalf("Passes = %d, want 1", s.Passes())
	}
	if got := d.Stats().Corrected; got != 10 {
		t.Fatalf("Corrected = %d, want 10", got)
	}
	// All clean now: a second pass corrects nothing further.
	s.Step(int(d.Size() / 8))
	if got := d.Stats().Corrected; got != 10 {
		t.Fatalf("Corrected after second pass = %d, want still 10", got)
	}
}

func TestScrubberReportsUncorrectable(t *testing.T) {
	d := NewDRAM(256, true)
	d.FlipBit(8, 0)
	d.FlipBit(9, 3) // second flip in the same word: uncorrectable
	s := NewScrubber(d)
	if bad := s.Step(int(d.Size() / 8)); bad != 1 {
		t.Fatalf("uncorrectable = %d, want 1", bad)
	}
	if errs := s.Errors(); len(errs) != 1 {
		t.Fatalf("Errors len = %d", len(errs))
	}
	// The scrubber continued past the poisoned word.
	if s.Visited() != d.Size()/8 {
		t.Fatalf("Visited = %d, want %d", s.Visited(), d.Size()/8)
	}
}

func TestScrubberPreventsAccumulation(t *testing.T) {
	// Without scrubbing, periodic single flips accumulate into
	// uncorrectable pairs; with scrubbing between strikes, every flip is
	// repaired before the next can pair with it.
	strike := func(d *DRAM, rng *rand.Rand) {
		addr := uint64(rng.Intn(int(d.Size())))
		d.FlipBit(addr, uint(rng.Intn(8)))
	}
	run := func(scrub bool) (uncorrectable int) {
		d := NewDRAM(512, true) // small array: collisions are likely
		rng := rand.New(rand.NewSource(7))
		var s *Scrubber
		if scrub {
			s = NewScrubber(d)
		}
		for i := 0; i < 200; i++ {
			strike(d, rng)
			if scrub {
				s.Step(int(d.Size() / 8)) // full patrol between strikes
			}
		}
		// Final audit.
		audit := NewScrubber(d)
		return audit.Step(int(d.Size() / 8))
	}
	if bad := run(true); bad != 0 {
		t.Fatalf("scrubbed array still has %d uncorrectable words", bad)
	}
	if bad := run(false); bad == 0 {
		t.Fatal("unscrubbed array accumulated no uncorrectable words; strike count too low for the test")
	}
}
