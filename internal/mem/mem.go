package mem

import (
	"fmt"

	"radshield/internal/ecc"
)

// Memory is the raw byte-addressed device interface shared by DRAM and
// Storage. Reads and writes are bounds-checked; ECC devices verify and
// scrub on read.
type Memory interface {
	// Read fills dst with len(dst) bytes starting at addr.
	Read(addr uint64, dst []byte) error
	// Write stores src starting at addr.
	Write(addr uint64, src []byte) error
	// Size returns the device capacity in bytes.
	Size() uint64
}

// UncorrectableError reports a double-bit (or worse) error that SECDED
// detected but could not correct — the hardware analogue is a machine
// check / bus abort.
type UncorrectableError struct {
	Device string
	Addr   uint64
}

func (e *UncorrectableError) Error() string {
	return fmt.Sprintf("mem: uncorrectable ECC error on %s at %#x", e.Device, e.Addr)
}

// BoundsError reports an access outside the device.
type BoundsError struct {
	Device string
	Addr   uint64
	Len    int
	Size   uint64
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("mem: %s access [%#x, %#x) outside device of %d bytes",
		e.Device, e.Addr, e.Addr+uint64(e.Len), e.Size)
}

// Stats counts ECC and fault-injection events on a device.
type Stats struct {
	Corrected     uint64 // single-bit errors fixed by SECDED
	Uncorrectable uint64 // double-bit errors detected (read failed)
	FlipsInjected uint64 // bit flips injected by the fault injector
	Reads         uint64 // Read calls
	Writes        uint64 // Write calls
}

const wordSize = 8 // SECDED granule: 64-bit word + 8 check bits

// DRAM is a byte-addressable volatile memory. With ECC enabled every
// 64-bit word carries SECDED check bits that are verified (and scrubbed)
// on read; without ECC, injected bit flips silently corrupt data — the
// paper's unprotected-DRAM configuration (e.g. the Snapdragon 801).
type DRAM struct {
	data    []byte
	check   []byte // one check byte per 8-byte word; nil when ECC disabled
	stats   Stats
	next    uint64 // bump-allocator watermark
	touched uint64 // dirty high-water mark (writes and flips); bounds Reset's zeroing
}

// NewDRAM returns a DRAM of the given size (rounded up to a multiple of
// 8 bytes) with or without SECDED ECC.
func NewDRAM(size uint64, withECC bool) *DRAM {
	size = (size + wordSize - 1) / wordSize * wordSize
	d := &DRAM{data: make([]byte, size)}
	if withECC {
		// Encode(0) == 0, so freshly zeroed check bytes are already valid.
		d.check = make([]byte, size/wordSize)
	}
	return d
}

// HasECC reports whether the device verifies SECDED codes on read.
func (d *DRAM) HasECC() bool { return d.check != nil }

// Size returns the capacity in bytes.
func (d *DRAM) Size() uint64 { return uint64(len(d.data)) }

// Stats returns a snapshot of the device's event counters.
func (d *DRAM) Stats() Stats { return d.stats }

// Alloc reserves n bytes (cache-line aligned) and returns the base
// address. It fails when the device is exhausted. DRAM is the arena the
// EMR runtime allocates datasets, replicas, and output buffers from.
func (d *DRAM) Alloc(n uint64) (uint64, error) {
	const align = 64
	base := (d.next + align - 1) / align * align
	if base+n > d.Size() {
		return 0, fmt.Errorf("mem: DRAM exhausted: need %d bytes at %#x, size %d", n, base, d.Size())
	}
	d.next = base + n
	return base, nil
}

// AllocBytes allocates space for src, copies it in, and returns the base
// address.
func (d *DRAM) AllocBytes(src []byte) (uint64, error) {
	addr, err := d.Alloc(uint64(len(src)))
	if err != nil {
		return 0, err
	}
	if err := d.Write(addr, src); err != nil {
		return 0, err
	}
	return addr, nil
}

// touch raises the dirty high-water mark to cover [addr, addr+n).
func (d *DRAM) touch(addr, n uint64) {
	if end := addr + n; end > d.touched {
		d.touched = end
	}
}

// Reset returns the device to its freshly-constructed state: allocator
// watermark, contents, ECC codes, and event counters are all cleared, so
// a reused device is indistinguishable from a new one (the EMR runtime
// pool depends on this). Only the dirty prefix — bounded by a high-water
// mark maintained on writes and bit flips — is zeroed, so resetting a
// 64 MB arena that held a 32 KB dataset costs microseconds, not a full
// memclr. ECC scrub-on-read corrections rewrite words that were already
// dirtied by the write or flip that corrupted them, so the mark covers
// them too (word-granularity rounding handles the partial-word cases).
func (d *DRAM) Reset() {
	n := (d.touched + wordSize - 1) / wordSize * wordSize
	if n > d.Size() {
		n = d.Size()
	}
	clear(d.data[:n])
	if d.check != nil {
		clear(d.check[:n/wordSize]) // Encode(0) == 0
	}
	d.next, d.touched = 0, 0
	d.stats = Stats{}
}

// Read implements Memory. On an ECC device every touched word is decoded:
// single-bit errors are corrected in place (scrubbing, as DRAM
// controllers do) and counted; double-bit errors abort the read with
// *UncorrectableError.
func (d *DRAM) Read(addr uint64, dst []byte) error {
	if err := d.bounds(addr, len(dst)); err != nil {
		return err
	}
	d.stats.Reads++
	if d.check == nil {
		copy(dst, d.data[addr:addr+uint64(len(dst))])
		return nil
	}
	first := addr / wordSize
	last := (addr + uint64(len(dst)) - 1) / wordSize
	for w := first; w <= last; w++ {
		if err := d.verifyWord(w); err != nil {
			return err
		}
	}
	copy(dst, d.data[addr:addr+uint64(len(dst))])
	return nil
}

// Write implements Memory. On an ECC device the check bytes of every
// touched word are recomputed (after verifying partially-overwritten
// boundary words so pre-existing corruption is not silently re-encoded).
func (d *DRAM) Write(addr uint64, src []byte) error {
	if err := d.bounds(addr, len(src)); err != nil {
		return err
	}
	d.stats.Writes++
	if len(src) == 0 {
		return nil
	}
	d.touch(addr, uint64(len(src)))
	if d.check == nil {
		copy(d.data[addr:], src)
		return nil
	}
	end := addr + uint64(len(src))
	first := addr / wordSize
	last := (end - 1) / wordSize
	// Partial boundary words: verify before read-modify-write.
	if addr%wordSize != 0 {
		if err := d.verifyWord(first); err != nil {
			return err
		}
	}
	if end%wordSize != 0 && last != first {
		if err := d.verifyWord(last); err != nil {
			return err
		}
	}
	copy(d.data[addr:], src)
	for w := first; w <= last; w++ {
		d.check[w] = ecc.Encode(d.word(w))
	}
	return nil
}

// FlipBit inverts one stored bit without touching the ECC code,
// simulating a particle strike on the DRAM array. bit selects within the
// byte (0..7).
func (d *DRAM) FlipBit(addr uint64, bit uint) error {
	if err := d.bounds(addr, 1); err != nil {
		return err
	}
	d.touch(addr, 1)
	d.data[addr] ^= 1 << (bit & 7)
	d.stats.FlipsInjected++
	return nil
}

// word assembles the 64-bit little-endian word at index w.
func (d *DRAM) word(w uint64) uint64 {
	off := w * wordSize
	var v uint64
	for i := 0; i < wordSize; i++ {
		v |= uint64(d.data[off+uint64(i)]) << (8 * uint(i))
	}
	return v
}

func (d *DRAM) setWord(w, v uint64) {
	off := w * wordSize
	for i := 0; i < wordSize; i++ {
		d.data[off+uint64(i)] = byte(v >> (8 * uint(i)))
	}
}

// verifyWord decodes word w, scrubbing single-bit errors.
func (d *DRAM) verifyWord(w uint64) error {
	data, res := ecc.Decode(d.word(w), d.check[w])
	switch res {
	case ecc.OK:
		return nil
	case ecc.CorrectedData:
		d.setWord(w, data)
		d.stats.Corrected++
		return nil
	case ecc.CorrectedCheck:
		d.check[w] = ecc.Encode(data)
		d.stats.Corrected++
		return nil
	default:
		d.stats.Uncorrectable++
		return &UncorrectableError{Device: "dram", Addr: w * wordSize}
	}
}

func (d *DRAM) bounds(addr uint64, n int) error {
	if n < 0 || addr+uint64(n) > d.Size() || addr+uint64(n) < addr {
		return &BoundsError{Device: "dram", Addr: addr, Len: n, Size: d.Size()}
	}
	return nil
}

var _ Memory = (*DRAM)(nil)
