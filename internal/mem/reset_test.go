package mem

import "testing"

// TestResetFreshEquivalence pins the pooling contract: after Reset a
// device must be indistinguishable from a newly constructed one —
// contents, ECC codes, allocator, and statistics all cleared — even
// when writes, injected flips, and scrub corrections dirtied it.
func TestResetFreshEquivalence(t *testing.T) {
	d := NewDRAM(4096, true)
	addr, err := d.AllocBytes([]byte("dirty payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a word past the allocation watermark too (Write only bounds
	// against device size), then flip a bit and scrub it via Read: Reset
	// must cover all of it.
	if err := d.Write(1000, []byte{0xff, 0xee}); err != nil {
		t.Fatal(err)
	}
	if err := d.FlipBit(addr, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(addr, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Corrected == 0 {
		t.Fatal("setup: scrub did not correct the injected flip")
	}

	d.Reset()

	if got := d.Stats(); got != (Stats{}) {
		t.Errorf("post-Reset stats = %+v, want zero", got)
	}
	buf := make([]byte, int(d.Size()))
	if err := d.Read(0, buf); err != nil {
		t.Fatalf("post-Reset full read: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("post-Reset byte %d = %#x, want 0", i, b)
		}
	}
	if a, err := d.Alloc(8); err != nil || a != 0 {
		t.Errorf("post-Reset Alloc = %d, %v; want 0, nil", a, err)
	}
}

// TestResetZeroesBeyondRoundedWatermark guards the high-water-mark
// optimization: a partial-word write near the end of the dirty region
// must still be fully cleared after word-granularity rounding.
func TestResetZeroesBeyondRoundedWatermark(t *testing.T) {
	d := NewDRAM(256, false)
	if err := d.Write(13, []byte{0xaa}); err != nil { // mid-word, off-alignment
		t.Fatal(err)
	}
	d.Reset()
	buf := make([]byte, 256)
	if err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x after Reset, want 0", i, b)
		}
	}
}
