package mem

import "radshield/internal/telemetry"

// Scrubber implements background ECC patrol scrubbing, the standard
// defence against error accumulation in ECC memories: single-bit upsets
// are harmless individually, but two upsets landing in the same 64-bit
// word before anything reads it become uncorrectable. A scrubber walks
// the array continuously, reading (and thereby correcting) every word,
// bounding the window in which a second strike can pair with the first.
//
// The paper's reliability frontier assumes ECC devices absorb upsets;
// patrol scrubbing is what keeps that assumption sound on long missions,
// so this reproduction ships it as an optional extension.
type Scrubber struct {
	dram *DRAM
	next uint64 // next word index to visit

	passes     uint64
	visited    uint64
	lastErrors []error

	reg            *telemetry.Registry
	passesCtr      *telemetry.Counter // mem_scrub_passes_total
	visitedCtr     *telemetry.Counter // mem_scrub_words_visited_total
	correctedCtr   *telemetry.Counter // mem_scrub_corrected_total
	uncorrectedCtr *telemetry.Counter // mem_scrub_uncorrectable_total
}

// SetTelemetry attaches a metrics registry: scrub passes, word visits,
// in-place corrections, and uncorrectable hits are counted, and each
// uncorrectable word emits a scrub_error event. Nil detaches.
func (s *Scrubber) SetTelemetry(reg *telemetry.Registry) {
	s.reg = reg
	if reg == nil {
		s.passesCtr, s.visitedCtr, s.correctedCtr, s.uncorrectedCtr = nil, nil, nil, nil
		return
	}
	s.passesCtr = reg.Counter("mem_scrub_passes_total", "passes")
	s.visitedCtr = reg.Counter("mem_scrub_words_visited_total", "words")
	s.correctedCtr = reg.Counter("mem_scrub_corrected_total", "words")
	s.uncorrectedCtr = reg.Counter("mem_scrub_uncorrectable_total", "words")
}

// NewScrubber returns a scrubber over an ECC DRAM. It panics when the
// device has no ECC — scrubbing a raw array is meaningless.
func NewScrubber(d *DRAM) *Scrubber {
	if !d.HasECC() {
		//radlint:allow nopanic scrubbing a non-ECC device is a wiring bug; documented panic contract
		panic("mem: NewScrubber on non-ECC DRAM")
	}
	return &Scrubber{dram: d}
}

// Step verifies the next n words (correcting any single-bit errors in
// place) and returns how many uncorrectable words it encountered.
// Uncorrectable words are left untouched and reported via Errors; the
// scrubber continues past them.
func (s *Scrubber) Step(n int) int {
	words := s.dram.Size() / wordSize
	if words == 0 {
		return 0
	}
	correctedBefore := s.dram.Stats().Corrected
	uncorrectable := 0
	for i := 0; i < n; i++ {
		if err := s.dram.verifyWord(s.next); err != nil {
			uncorrectable++
			s.lastErrors = append(s.lastErrors, err)
			if len(s.lastErrors) > 16 {
				s.lastErrors = s.lastErrors[1:]
			}
			if s.reg != nil {
				s.uncorrectedCtr.Inc()
				s.reg.Emit(telemetry.Event{
					Kind:   telemetry.KindScrubError,
					Fields: map[string]any{"word": s.next, "error": err.Error()},
				})
			}
		}
		s.visited++
		s.next++
		if s.next == words {
			s.next = 0
			s.passes++
			s.passesCtr.Inc()
		}
	}
	s.visitedCtr.Add(uint64(n))
	s.correctedCtr.Add(s.dram.Stats().Corrected - correctedBefore)
	return uncorrectable
}

// Passes returns how many full sweeps of the array have completed.
func (s *Scrubber) Passes() uint64 { return s.passes }

// Visited returns the total number of word visits.
func (s *Scrubber) Visited() uint64 { return s.visited }

// Errors returns the most recent uncorrectable-word errors (up to 16).
func (s *Scrubber) Errors() []error {
	return append([]error(nil), s.lastErrors...)
}
