// Package mem models the memory devices of a commodity spacecraft
// computer: DRAM (with or without SECDED ECC) and flash storage (always
// SECDED-protected, per the paper's observation about commodity flash).
//
// These devices define the system's reliability frontier: data at rest on
// an ECC-protected device survives single-event upsets (the codec corrects
// them), while data on an unprotected device — or in flight through the
// cache and pipeline — does not. Package emr draws its replication and
// scheduling decisions from exactly this boundary.
//
// Key types: DRAM and Storage implement the Memory interface (bounded
// Read/Write plus FlipBit for fault injection); Bus routes addresses to
// the devices behind one flat physical address space; Region names an
// address range; Scrubber implements background patrol scrubbing over
// an ECC DRAM; Stats counts reads, writes, injected flips, ECC
// corrections, and uncorrectable words; UncorrectableError and
// BoundsError are the two failure modes a read can surface.
//
// Invariants: ECC devices correct any single flipped bit per 64-bit
// word transparently on read (counting it in Stats.Corrected) and
// return UncorrectableError for double flips, leaving the word intact;
// non-ECC DRAM returns whatever was stored, flips included — silent
// corruption by design; FlipBit mutates stored bits without touching
// the ECC check bits, exactly like a radiation strike; addresses are
// validated against device bounds before any access.
package mem
