package mem

import "fmt"

// Bus composes several Memory devices into one flat physical address
// space, the way an SoC interconnect exposes flash and DRAM behind a
// single bus. The shared cache (package cache) sits on top of a Bus so
// cached lines can come from either device.
type Bus struct {
	mappings []busMapping
	size     uint64
}

type busMapping struct {
	base uint64
	dev  Memory
}

// NewBus returns an empty Bus.
func NewBus() *Bus { return &Bus{} }

// Map attaches a device at the next available base address (aligned to
// 4 KiB) and returns that base.
func (b *Bus) Map(dev Memory) uint64 {
	const align = 4096
	base := (b.size + align - 1) / align * align
	b.mappings = append(b.mappings, busMapping{base: base, dev: dev})
	b.size = base + dev.Size()
	return base
}

// Size returns one past the highest mapped address.
func (b *Bus) Size() uint64 { return b.size }

// find locates the mapping covering addr.
func (b *Bus) find(addr uint64, n int) (*busMapping, error) {
	for i := range b.mappings {
		m := &b.mappings[i]
		if addr >= m.base && addr+uint64(n) <= m.base+m.dev.Size() {
			return m, nil
		}
	}
	return nil, &BoundsError{Device: "bus", Addr: addr, Len: n, Size: b.size}
}

// Read implements Memory. An access must fall entirely within one device.
func (b *Bus) Read(addr uint64, dst []byte) error {
	m, err := b.find(addr, len(dst))
	if err != nil {
		return err
	}
	return m.dev.Read(addr-m.base, dst)
}

// Write implements Memory.
func (b *Bus) Write(addr uint64, src []byte) error {
	m, err := b.find(addr, len(src))
	if err != nil {
		return err
	}
	return m.dev.Write(addr-m.base, src)
}

// FlipBit routes a fault-injection flip to the owning device. It fails if
// the device does not expose bit flipping.
func (b *Bus) FlipBit(addr uint64, bit uint) error {
	m, err := b.find(addr, 1)
	if err != nil {
		return err
	}
	f, ok := m.dev.(interface {
		FlipBit(addr uint64, bit uint) error
	})
	if !ok {
		return fmt.Errorf("mem: device at %#x does not support bit flips", addr)
	}
	return f.FlipBit(addr-m.base, bit)
}

var _ Memory = (*Bus)(nil)
