package mem

import "radshield/internal/ecc"

// SectorSize is the IO accounting granule for Storage. Disk read/write IO
// counts (in sectors) are among the OS-visible metrics ILD feeds its
// current-draw model (paper Table 1).
const SectorSize = 512

// Storage models commodity flash with built-in SECDED ECC — per the
// paper, storage is always inside the reliability frontier. It reuses the
// DRAM word/ECC machinery and additionally counts sector-granularity IO
// operations for the performance-counter model.
type Storage struct {
	dram        *DRAM // always with ECC
	readSector  uint64
	writeSector uint64
}

// NewStorage returns a Storage device of the given size.
func NewStorage(size uint64) *Storage {
	return &Storage{dram: NewDRAM(size, true)}
}

// Size returns the capacity in bytes.
func (s *Storage) Size() uint64 { return s.dram.Size() }

// Stats returns the ECC/flip counters of the underlying array.
func (s *Storage) Stats() Stats { return s.dram.Stats() }

// ReadSectors and WriteSectors report cumulative sector IO counts.
func (s *Storage) ReadSectors() uint64  { return s.readSector }
func (s *Storage) WriteSectors() uint64 { return s.writeSector }

// Alloc reserves n bytes and returns the base address.
func (s *Storage) Alloc(n uint64) (uint64, error) { return s.dram.Alloc(n) }

// AllocBytes allocates space for src, copies it in, and returns the base
// address.
func (s *Storage) AllocBytes(src []byte) (uint64, error) { return s.dram.AllocBytes(src) }

// Reset clears contents and the allocator watermark.
func (s *Storage) Reset() {
	s.dram.Reset()
	s.readSector, s.writeSector = 0, 0
}

// Read implements Memory, counting the sectors touched.
func (s *Storage) Read(addr uint64, dst []byte) error {
	if err := s.dram.Read(addr, dst); err != nil {
		return err
	}
	s.readSector += sectors(addr, len(dst))
	return nil
}

// Write implements Memory, counting the sectors touched.
func (s *Storage) Write(addr uint64, src []byte) error {
	if err := s.dram.Write(addr, src); err != nil {
		return err
	}
	s.writeSector += sectors(addr, len(src))
	return nil
}

// FlipBit injects a bit flip into the flash array (it will be corrected
// by SECDED on the next read unless a second flip lands in the same word).
func (s *Storage) FlipBit(addr uint64, bit uint) error { return s.dram.FlipBit(addr, bit) }

// sectors returns how many SectorSize-aligned sectors [addr, addr+n)
// touches.
func sectors(addr uint64, n int) uint64 {
	if n <= 0 {
		return 0
	}
	first := addr / SectorSize
	last := (addr + uint64(n) - 1) / SectorSize
	return last - first + 1
}

var _ Memory = (*Storage)(nil)

// Region names a contiguous [Addr, Addr+Len) span of one device. It is
// the unit EMR datasets are declared in terms of.
type Region struct {
	Addr uint64
	Len  uint64
}

// End returns the exclusive upper bound of the region.
func (r Region) End() uint64 { return r.Addr + r.Len }

// Overlaps reports whether two regions share any byte.
func (r Region) Overlaps(o Region) bool {
	return r.Addr < o.End() && o.Addr < r.End() && r.Len > 0 && o.Len > 0
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Addr && addr < r.End() }

// WordsWithECC is a helper for tests: it encodes src into an ECC word
// sequence, useful for asserting codec integration.
func WordsWithECC(src []byte) []ecc.Word {
	n := (len(src) + wordSize - 1) / wordSize
	words := make([]ecc.Word, n)
	for w := 0; w < n; w++ {
		var v uint64
		for i := 0; i < wordSize; i++ {
			idx := w*wordSize + i
			if idx < len(src) {
				v |= uint64(src[idx]) << (8 * uint(i))
			}
		}
		words[w] = ecc.NewWord(v)
	}
	return words
}
