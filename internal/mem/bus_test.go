package mem

import (
	"bytes"
	"testing"
)

func TestBusMapsTwoDevices(t *testing.T) {
	bus := NewBus()
	flash := NewStorage(8192)
	dram := NewDRAM(8192, true)
	fb := bus.Map(flash)
	db := bus.Map(dram)
	if fb != 0 {
		t.Fatalf("flash base = %#x, want 0", fb)
	}
	if db != 8192 {
		t.Fatalf("dram base = %#x, want 0x2000", db)
	}
	if bus.Size() != 16384 {
		t.Fatalf("Size = %d", bus.Size())
	}

	if err := bus.Write(fb+100, []byte("flash!")); err != nil {
		t.Fatal(err)
	}
	if err := bus.Write(db+100, []byte("dram!!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if err := bus.Read(fb+100, buf); err != nil || string(buf) != "flash!" {
		t.Fatalf("flash read = %q, %v", buf, err)
	}
	if err := bus.Read(db+100, buf); err != nil || string(buf) != "dram!!" {
		t.Fatalf("dram read = %q, %v", buf, err)
	}
	// Devices are independent.
	direct := make([]byte, 6)
	if err := dram.Read(100, direct); err != nil || !bytes.Equal(direct, []byte("dram!!")) {
		t.Fatalf("direct dram read = %q, %v", direct, err)
	}
}

func TestBusAlignment(t *testing.T) {
	bus := NewBus()
	bus.Map(NewDRAM(100, false)) // rounds to 104 bytes internally
	base2 := bus.Map(NewDRAM(100, false))
	if base2%4096 != 0 {
		t.Fatalf("second base %#x not 4K-aligned", base2)
	}
}

func TestBusOutOfRange(t *testing.T) {
	bus := NewBus()
	bus.Map(NewDRAM(1024, false))
	if err := bus.Read(5000, make([]byte, 1)); err == nil {
		t.Fatal("read past bus succeeded")
	}
	// An access straddling the device boundary must fail, not wrap.
	if err := bus.Read(1020, make([]byte, 10)); err == nil {
		t.Fatal("straddling read succeeded")
	}
}

func TestBusFlipBitRouting(t *testing.T) {
	bus := NewBus()
	dram := NewDRAM(1024, false)
	base := bus.Map(dram)
	bus.Write(base+10, []byte{0})
	if err := bus.FlipBit(base+10, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	dram.Read(10, buf)
	if buf[0] != 1 {
		t.Fatalf("flip not routed: %v", buf[0])
	}
}

func TestBusEmpty(t *testing.T) {
	bus := NewBus()
	if bus.Size() != 0 {
		t.Fatal("empty bus has size")
	}
	if err := bus.Read(0, make([]byte, 1)); err == nil {
		t.Fatal("read on empty bus succeeded")
	}
}
