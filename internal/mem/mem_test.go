package mem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDRAMReadWriteRoundTrip(t *testing.T) {
	for _, withECC := range []bool{false, true} {
		d := NewDRAM(1024, withECC)
		src := []byte("the quick brown fox jumps over the lazy dog")
		if err := d.Write(3, src); err != nil {
			t.Fatalf("ecc=%v: Write: %v", withECC, err)
		}
		dst := make([]byte, len(src))
		if err := d.Read(3, dst); err != nil {
			t.Fatalf("ecc=%v: Read: %v", withECC, err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("ecc=%v: round trip mismatch: %q", withECC, dst)
		}
	}
}

func TestDRAMSizeRoundedToWord(t *testing.T) {
	d := NewDRAM(13, true)
	if d.Size() != 16 {
		t.Fatalf("Size = %d, want 16", d.Size())
	}
}

func TestDRAMBounds(t *testing.T) {
	d := NewDRAM(64, false)
	var be *BoundsError
	if err := d.Read(60, make([]byte, 8)); !errors.As(err, &be) {
		t.Fatalf("out-of-bounds Read error = %v, want BoundsError", err)
	}
	if err := d.Write(64, []byte{1}); !errors.As(err, &be) {
		t.Fatalf("out-of-bounds Write error = %v, want BoundsError", err)
	}
	if be.Error() == "" {
		t.Error("BoundsError message empty")
	}
}

func TestECCCorrectsSingleFlip(t *testing.T) {
	d := NewDRAM(128, true)
	src := []byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF, 0x11, 0x22}
	if err := d.Write(8, src); err != nil {
		t.Fatal(err)
	}
	if err := d.FlipBit(10, 3); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 8)
	if err := d.Read(8, dst); err != nil {
		t.Fatalf("Read after single flip: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("single flip not corrected: %x", dst)
	}
	st := d.Stats()
	if st.Corrected != 1 {
		t.Errorf("Corrected = %d, want 1", st.Corrected)
	}
	if st.FlipsInjected != 1 {
		t.Errorf("FlipsInjected = %d, want 1", st.FlipsInjected)
	}
	// Scrubbing: a second read must not re-correct.
	if err := d.Read(8, dst); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Corrected; got != 1 {
		t.Errorf("Corrected after scrub = %d, want still 1", got)
	}
}

func TestECCDetectsDoubleFlip(t *testing.T) {
	d := NewDRAM(128, true)
	if err := d.Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	d.FlipBit(0, 0)
	d.FlipBit(1, 5)
	var ue *UncorrectableError
	err := d.Read(0, make([]byte, 8))
	if !errors.As(err, &ue) {
		t.Fatalf("double flip Read error = %v, want UncorrectableError", err)
	}
	if ue.Addr != 0 || ue.Device != "dram" {
		t.Errorf("UncorrectableError fields = %+v", ue)
	}
	if d.Stats().Uncorrectable != 1 {
		t.Errorf("Uncorrectable = %d, want 1", d.Stats().Uncorrectable)
	}
}

func TestNonECCFlipSilentlyCorrupts(t *testing.T) {
	d := NewDRAM(64, false)
	if err := d.Write(0, []byte{0}); err != nil {
		t.Fatal(err)
	}
	d.FlipBit(0, 7)
	dst := make([]byte, 1)
	if err := d.Read(0, dst); err != nil {
		t.Fatalf("non-ECC read errored: %v", err)
	}
	if dst[0] != 0x80 {
		t.Fatalf("flip not visible: %#x, want 0x80", dst[0])
	}
}

func TestECCUnalignedWriteAfterFlipStillCorrects(t *testing.T) {
	// A partial-word write must not bake pre-existing corruption into a
	// fresh ECC code: the boundary word is verified (and scrubbed) first.
	d := NewDRAM(64, true)
	if err := d.Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	d.FlipBit(7, 0) // corrupt last byte of word 0
	if err := d.Write(1, []byte{99}); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 8)
	if err := d.Read(0, dst); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 99, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(dst, want) {
		t.Fatalf("after unaligned write: %v, want %v", dst, want)
	}
}

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	d := NewDRAM(256, false)
	a1, err := d.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := d.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if a1%64 != 0 || a2%64 != 0 {
		t.Errorf("allocations not 64-byte aligned: %d, %d", a1, a2)
	}
	if a2 <= a1 {
		t.Errorf("allocations overlap: %d then %d", a1, a2)
	}
	if _, err := d.Alloc(1024); err == nil {
		t.Error("oversized Alloc succeeded, want error")
	}
}

func TestAllocBytesAndReset(t *testing.T) {
	d := NewDRAM(256, true)
	addr, err := d.AllocBytes([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 5)
	if err := d.Read(addr, dst); err != nil || string(dst) != "hello" {
		t.Fatalf("AllocBytes round trip = %q, %v", dst, err)
	}
	d.Reset()
	addr2, err := d.Alloc(5)
	if err != nil {
		t.Fatal(err)
	}
	if addr2 != 0 {
		t.Errorf("post-Reset Alloc = %d, want 0", addr2)
	}
	if err := d.Read(0, dst); err != nil {
		t.Fatalf("post-Reset ECC read failed: %v", err)
	}
}

func TestStorageSectorAccounting(t *testing.T) {
	s := NewStorage(4096)
	if err := s.Write(0, make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if got := s.WriteSectors(); got != 2 { // 1000 bytes spans sectors 0,1
		t.Errorf("WriteSectors = %d, want 2", got)
	}
	if err := s.Read(100, make([]byte, 20)); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadSectors(); got != 1 {
		t.Errorf("ReadSectors = %d, want 1", got)
	}
	// A read crossing a sector boundary counts both sectors.
	if err := s.Read(510, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if got := s.ReadSectors(); got != 3 {
		t.Errorf("ReadSectors = %d, want 3", got)
	}
}

func TestStorageECCAlwaysOn(t *testing.T) {
	s := NewStorage(1024)
	if err := s.Write(0, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	s.FlipBit(3, 2)
	dst := make([]byte, 8)
	if err := s.Read(0, dst); err != nil {
		t.Fatalf("storage single flip not absorbed: %v", err)
	}
	if dst[3] != 4 {
		t.Fatalf("storage flip not corrected: %v", dst)
	}
	if s.Stats().Corrected != 1 {
		t.Errorf("Corrected = %d, want 1", s.Stats().Corrected)
	}
}

func TestStorageReset(t *testing.T) {
	s := NewStorage(1024)
	s.Write(0, []byte{1})
	s.Read(0, make([]byte, 1))
	s.Reset()
	if s.ReadSectors() != 0 || s.WriteSectors() != 0 {
		t.Error("Reset did not clear sector counters")
	}
}

func TestRegionOverlaps(t *testing.T) {
	cases := []struct {
		a, b Region
		want bool
	}{
		{Region{0, 10}, Region{5, 10}, true},
		{Region{0, 10}, Region{10, 10}, false},
		{Region{10, 10}, Region{0, 10}, false},
		{Region{0, 10}, Region{0, 10}, true},
		{Region{5, 0}, Region{0, 10}, false}, // empty region never overlaps
		{Region{0, 100}, Region{50, 1}, true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Addr: 10, Len: 5}
	if !r.Contains(10) || !r.Contains(14) {
		t.Error("Contains misses interior points")
	}
	if r.Contains(9) || r.Contains(15) {
		t.Error("Contains includes exterior points")
	}
	if r.End() != 15 {
		t.Errorf("End = %d, want 15", r.End())
	}
}

// Property: for ECC DRAM, any single injected flip in a written range is
// invisible to readers.
func TestPropertyECCMasksAnySingleFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDRAM(512, true)
		src := make([]byte, 64+r.Intn(64))
		r.Read(src)
		off := uint64(r.Intn(32))
		if err := d.Write(off, src); err != nil {
			return false
		}
		flipAt := off + uint64(r.Intn(len(src)))
		d.FlipBit(flipAt, uint(r.Intn(8)))
		dst := make([]byte, len(src))
		if err := d.Read(off, dst); err != nil {
			return false
		}
		return bytes.Equal(dst, src)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWordsWithECC(t *testing.T) {
	words := WordsWithECC([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2})
	if len(words) != 2 {
		t.Fatalf("len = %d, want 2", len(words))
	}
	if d, res := words[0].Read(); d != 1 || res.String() != "ok" {
		t.Errorf("word0 = %d, %v", d, res)
	}
	if d, _ := words[1].Read(); d != 2 {
		t.Errorf("word1 = %d, want 2", d)
	}
}
