package mem

import (
	"strings"
	"testing"
)

func TestStorageAllocators(t *testing.T) {
	s := NewStorage(4096)
	a1, err := s.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.AllocBytes([]byte("persisted"))
	if err != nil {
		t.Fatal(err)
	}
	if a2 <= a1 {
		t.Fatalf("allocations overlap: %d then %d", a1, a2)
	}
	buf := make([]byte, 9)
	if err := s.Read(a2, buf); err != nil || string(buf) != "persisted" {
		t.Fatalf("AllocBytes round trip = %q, %v", buf, err)
	}
	if _, err := s.Alloc(1 << 20); err == nil {
		t.Fatal("oversized storage Alloc succeeded")
	}
}

func TestAllocBytesPropagatesAllocFailure(t *testing.T) {
	d := NewDRAM(64, false)
	if _, err := d.AllocBytes(make([]byte, 1024)); err == nil {
		t.Fatal("oversized AllocBytes succeeded")
	}
}

func TestUncorrectableErrorMessage(t *testing.T) {
	e := &UncorrectableError{Device: "dram", Addr: 0x40}
	if msg := e.Error(); !strings.Contains(msg, "dram") || !strings.Contains(msg, "0x40") {
		t.Fatalf("message = %q", msg)
	}
}

func TestFlipBitBounds(t *testing.T) {
	d := NewDRAM(64, false)
	if err := d.FlipBit(1000, 0); err == nil {
		t.Fatal("out-of-bounds FlipBit succeeded")
	}
	s := NewStorage(64)
	if err := s.FlipBit(1000, 0); err == nil {
		t.Fatal("out-of-bounds storage FlipBit succeeded")
	}
}

func TestStorageBoundsErrors(t *testing.T) {
	s := NewStorage(64)
	if err := s.Read(60, make([]byte, 16)); err == nil {
		t.Fatal("out-of-bounds storage Read succeeded")
	}
	if err := s.Write(60, make([]byte, 16)); err == nil {
		t.Fatal("out-of-bounds storage Write succeeded")
	}
	// Failed IO must not count sectors.
	if s.ReadSectors() != 0 || s.WriteSectors() != 0 {
		t.Fatal("failed IO counted sectors")
	}
}

func TestSectorsZeroLength(t *testing.T) {
	if got := sectors(100, 0); got != 0 {
		t.Fatalf("sectors(_, 0) = %d", got)
	}
}

func TestBusWriteOutOfRange(t *testing.T) {
	b := NewBus()
	b.Map(NewDRAM(64, false))
	if err := b.Write(1000, []byte{1}); err == nil {
		t.Fatal("out-of-range bus Write succeeded")
	}
	if err := b.FlipBit(1000, 0); err == nil {
		t.Fatal("out-of-range bus FlipBit succeeded")
	}
}

func TestBusFlipBitUnsupportedDevice(t *testing.T) {
	b := NewBus()
	b.Map(&noFlipMem{size: 64})
	if err := b.FlipBit(0, 0); err == nil {
		t.Fatal("FlipBit on non-flippable device succeeded")
	}
}

type noFlipMem struct{ size uint64 }

func (m *noFlipMem) Read(addr uint64, dst []byte) error  { return nil }
func (m *noFlipMem) Write(addr uint64, src []byte) error { return nil }
func (m *noFlipMem) Size() uint64                        { return m.size }
