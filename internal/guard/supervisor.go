package guard

import (
	"fmt"
	"time"

	"radshield/internal/ild"
	"radshield/internal/machine"
)

// SupervisorConfig tunes the degradation ladder.
type SupervisorConfig struct {
	Health HealthConfig
	// BadAfter demotes one rung after this many consecutive bad sensor
	// verdicts. Small enough that detection stays well inside the
	// paper's 3-minute window, large enough that a lone corrupt sample
	// does not discard the linear model.
	BadAfter int
	// GoodAfter promotes one rung after this many consecutive healthy
	// verdicts (and a refire-quiet period) — recovery is deliberately
	// slower than demotion.
	GoodAfter int
	// RefireWindow / RefireLimit detect bias/offset faults the
	// per-sample checks cannot see: a biased sensor makes the active
	// detector fire again almost immediately after each power cycle
	// (the latchup "comes back" because it was never real). RefireLimit
	// rising-edge detections, each within RefireWindow of the previous,
	// demote one rung. RefireLimit 0 disables the check.
	RefireWindow time.Duration
	RefireLimit  int
	// BlindCycleEvery issues a precautionary power cycle on this period
	// while the board cannot observe its own current (sensor unhealthy,
	// or ladder fully degraded). It must be shorter than the detection
	// window (3 min) so an SEL struck while blind is still cleared
	// before thermal damage (~5 min). Zero disables blind cycles.
	BlindCycleEvery time.Duration
	// StaticLevelA is the fixed threshold used on the
	// ModeStaticThreshold rung.
	StaticLevelA float64
	// HangAfter commands a power cycle after this many consecutive
	// wedged samples: zero instruction progress on every core with an
	// exactly-repeated current reading. A live board's Gaussian sensor
	// noise never repeats a reading bit-for-bit, so the conjunction
	// only holds when the kernel's syscall surface is latched (a hang).
	// Zero disables hang detection.
	HangAfter int
	// HeartbeatTimeout flags samples that arrive further apart than
	// this gap — the board was silent in between (kernel dead until a
	// watchdog reset brought it back). Zero disables the check.
	HeartbeatTimeout time.Duration
}

// DefaultSupervisorConfig returns the simulated board's operating
// point: demote within 25 samples of a hard sensor fault, re-promote
// after half a second of clean readings, blind-cycle every 2 minutes
// (inside the 3-minute detection requirement). Hang and heartbeat
// detection default off — campaigns that schedule OS faults enable
// them explicitly.
func DefaultSupervisorConfig() SupervisorConfig {
	return SupervisorConfig{
		Health:          DefaultHealthConfig(),
		BadAfter:        25,
		GoodAfter:       500,
		RefireWindow:    30 * time.Second,
		RefireLimit:     3,
		BlindCycleEvery: 2 * time.Minute,
		StaticLevelA:    1.8,
	}
}

// Decision is the Supervisor's per-sample output — the detector output
// surface of the guard layer.
type Decision struct {
	// Mode is the ladder rung in effect for this sample.
	Mode Mode
	// SensorOK is this sample's health verdict; Reason explains a
	// failure ("nan", "range", "stuck", "stale").
	SensorOK bool
	Reason   string
	// Demoted / Promoted flag a ladder move taken on this sample.
	Demoted  bool
	Promoted bool
	// Fired reports the active monitor declaring an SEL. The caller
	// should power cycle and then call NotePowerCycle.
	Fired bool
	// BlindCycle commands a precautionary power cycle: the board has
	// been blind long enough that an unseen latchup could be
	// approaching the damage horizon.
	BlindCycle bool
	// HangCycle commands a power cycle because the kernel's counter
	// surface wedged for HangAfter consecutive samples.
	HangCycle bool
	// HeartbeatGap flags that this sample arrived after a silent gap
	// longer than HeartbeatTimeout (the board was down in between).
	HeartbeatGap bool
}

// Supervisor drives ILD's degradation ladder from sensor-health
// verdicts and detector refire behaviour. Feed every telemetry sample
// to Observe and act on the Decision; call NotePowerCycle after any
// commanded power cycle so detector state restarts cleanly.
type Supervisor struct {
	cfg    SupervisorConfig
	health *SensorHealth
	det    *ild.Detector
	static *ild.StaticThreshold

	mode       Mode
	badStreak  int
	goodStreak int

	// refire tracking (rising-edge detections only)
	prevFired    bool
	lastDetectAt time.Duration
	haveDetect   bool
	refires      int

	// blind-cycle pacing
	blindSince time.Duration
	blind      bool

	// hang / heartbeat tracking
	lastSampleT  time.Duration
	lastCurrentA float64
	haveSample   bool
	wedgedStreak int

	demotions, promotions, blindCycles int
	hangCycles, heartbeatGaps          int

	ins        *Instruments
	modeChange func(t time.Duration, from, to Mode, reason string)
}

// NewSupervisor validates cfg and wraps the trained detector.
func NewSupervisor(det *ild.Detector, cfg SupervisorConfig) (*Supervisor, error) {
	if det == nil {
		return nil, fmt.Errorf("guard: nil detector")
	}
	health, err := NewSensorHealth(cfg.Health)
	if err != nil {
		return nil, err
	}
	if cfg.BadAfter < 1 || cfg.GoodAfter < 1 {
		return nil, fmt.Errorf("guard: BadAfter = %d and GoodAfter = %d must be ≥ 1", cfg.BadAfter, cfg.GoodAfter)
	}
	if cfg.RefireLimit < 0 || cfg.RefireWindow < 0 || cfg.BlindCycleEvery < 0 {
		return nil, fmt.Errorf("guard: refire/blind-cycle settings must be ≥ 0")
	}
	if cfg.RefireLimit > 0 && cfg.RefireWindow == 0 {
		return nil, fmt.Errorf("guard: RefireLimit %d needs a positive RefireWindow", cfg.RefireLimit)
	}
	if cfg.HangAfter < 0 || cfg.HeartbeatTimeout < 0 {
		return nil, fmt.Errorf("guard: HangAfter and HeartbeatTimeout must be ≥ 0")
	}
	static, err := ild.NewStaticThreshold(cfg.StaticLevelA)
	if err != nil {
		return nil, err
	}
	return &Supervisor{cfg: cfg, health: health, det: det, static: static}, nil
}

// SetInstruments attaches telemetry instruments (nil detaches them).
func (s *Supervisor) SetInstruments(ins *Instruments) {
	s.ins = ins
	s.ins.setGuardMode(s.mode)
}

// Mode returns the current ladder rung.
func (s *Supervisor) Mode() Mode { return s.mode }

// OnModeChange registers fn to run synchronously on every ladder move,
// after the Supervisor's own state has settled. It is how downstream
// subsystems follow the degradation ladder without polling — the
// downlink transmitter, for example, drops to beacon mode whenever the
// supervisor steps below the linear model. One callback; registering
// again replaces it, nil detaches.
func (s *Supervisor) OnModeChange(fn func(t time.Duration, from, to Mode, reason string)) {
	s.modeChange = fn
}

// Demotions, Promotions and BlindCycles count ladder moves and
// precautionary cycles since construction.
func (s *Supervisor) Demotions() int   { return s.demotions }
func (s *Supervisor) Promotions() int  { return s.promotions }
func (s *Supervisor) BlindCycles() int { return s.blindCycles }

// HangCycles counts power cycles commanded for a wedged counter
// surface; HeartbeatGaps counts samples that arrived after a silent gap
// longer than HeartbeatTimeout.
func (s *Supervisor) HangCycles() int    { return s.hangCycles }
func (s *Supervisor) HeartbeatGaps() int { return s.heartbeatGaps }

// Detector exposes the wrapped ILD instance (ablation harnesses reach
// through for residuals).
func (s *Supervisor) Detector() *ild.Detector { return s.det }

// Observe consumes one telemetry sample: classify sensor health, move
// the ladder if warranted, run the active monitor, and pace blind
// cycles. Deterministic — state advances only from tel.
func (s *Supervisor) Observe(tel machine.Telemetry) Decision {
	// Kernel-liveness checks run before sensor health: they reason about
	// the sample stream itself, not the values in it.
	gap := s.cfg.HeartbeatTimeout > 0 && s.haveSample &&
		tel.T-s.lastSampleT > s.cfg.HeartbeatTimeout
	if gap {
		s.heartbeatGaps++
		s.ins.heartbeatGap(tel.T, tel.T-s.lastSampleT)
	}
	// A wedged kernel latches every syscall-backed reading: zero counter
	// progress and a bit-for-bit repeated current. Live sensor noise
	// never repeats exactly, so the conjunction is hang-specific. A gap
	// sample restarts the streak — the board just rebooted.
	wedged := s.cfg.HangAfter > 0 && s.haveSample && !gap &&
		tel.TotalInstrPerSec() == 0 && tel.CurrentA == s.lastCurrentA
	if wedged {
		s.wedgedStreak++
	} else {
		s.wedgedStreak = 0
	}
	s.lastSampleT = tel.T
	s.lastCurrentA = tel.CurrentA
	s.haveSample = true

	v := s.health.Observe(tel)
	d := Decision{SensorOK: v.OK, Reason: v.Reason, HeartbeatGap: gap}

	if v.OK {
		s.goodStreak++
		s.badStreak = 0
	} else {
		s.badStreak++
		s.goodStreak = 0
		s.ins.badSensorSample()
	}

	if !v.OK && s.badStreak >= s.cfg.BadAfter && s.mode != ModeHardwareTrip {
		s.demote(tel.T, v.Reason)
		s.badStreak = 0
		d.Demoted = true
	}
	if v.OK && s.mode != ModeLinearModel && s.goodStreak >= s.cfg.GoodAfter && s.refireQuiet(tel.T) {
		s.promote(tel.T)
		s.goodStreak = 0
		d.Promoted = true
	}
	d.Mode = s.mode

	// Run the active monitor. Both monitors tolerate corrupt samples
	// (ILD rejects NaN/Inf outright; NaN never exceeds a threshold), so
	// the sample is fed unconditionally — a biased-but-plausible sensor
	// must keep flowing into the detector for the refire check to see
	// its signature.
	switch s.mode {
	case ModeLinearModel:
		d.Fired = s.det.Observe(tel)
	case ModeStaticThreshold:
		d.Fired = s.static.Observe(tel)
	}
	if d.Fired && !s.prevFired {
		if s.noteDetection(tel.T) {
			d.Demoted = true
			d.Mode = s.mode
		}
	}
	s.prevFired = d.Fired

	if s.cfg.HangAfter > 0 && s.wedgedStreak >= s.cfg.HangAfter {
		s.wedgedStreak = 0
		s.hangCycles++
		s.ins.hangCycle(tel.T)
		d.HangCycle = true
	}

	d.BlindCycle = s.paceBlindCycles(tel.T, v.OK)
	return d
}

// refireQuiet reports whether enough time has passed since the last
// detection that a promotion will not land mid-refire-storm.
func (s *Supervisor) refireQuiet(now time.Duration) bool {
	if !s.haveDetect || s.cfg.RefireWindow == 0 {
		return true
	}
	return now-s.lastDetectAt >= s.cfg.RefireWindow
}

// noteDetection records a rising-edge detection and applies the refire
// demotion rule; it reports whether a demotion was taken.
func (s *Supervisor) noteDetection(t time.Duration) bool {
	demoted := false
	if s.cfg.RefireLimit > 0 && s.haveDetect && t-s.lastDetectAt <= s.cfg.RefireWindow {
		s.refires++
		if s.refires >= s.cfg.RefireLimit && s.mode != ModeHardwareTrip {
			s.demote(t, "refire")
			s.refires = 0
			demoted = true
		}
	} else {
		s.refires = 0
	}
	s.lastDetectAt = t
	s.haveDetect = true
	return demoted
}

// paceBlindCycles returns true when a precautionary power cycle is due.
// The board is blind when the current sample is unusable or the ladder
// has no software monitor left. The period starts at blind onset: a
// just-blinded board cycles BlindCycleEvery later, not immediately.
func (s *Supervisor) paceBlindCycles(now time.Duration, sensorOK bool) bool {
	blind := !sensorOK || s.mode == ModeHardwareTrip
	if !blind || s.cfg.BlindCycleEvery == 0 {
		s.blind = false
		return false
	}
	if !s.blind {
		s.blind = true
		s.blindSince = now
		return false
	}
	if now-s.blindSince >= s.cfg.BlindCycleEvery {
		s.blindSince = now
		s.blindCycles++
		s.ins.blindCycle(now)
		return true
	}
	return false
}

// NotePowerCycle tells the Supervisor the board was power cycled (for a
// detection, a blind cycle, or a supply trip): monitor windows restart
// so pre-cycle residuals cannot leak into the fresh rail.
func (s *Supervisor) NotePowerCycle(t time.Duration) {
	s.det.Reset()
	s.static.Reset()
	s.prevFired = false
	s.wedgedStreak = 0
}

// demote moves one rung down and resets monitor state for the new rung.
func (s *Supervisor) demote(t time.Duration, reason string) {
	from := s.mode
	s.mode++
	s.demotions++
	s.det.Reset()
	s.static.Reset()
	s.prevFired = false
	s.ins.guardModeChange(t, from, s.mode, reason)
	if s.modeChange != nil {
		s.modeChange(t, from, s.mode, reason)
	}
}

// promote moves one rung up.
func (s *Supervisor) promote(t time.Duration) {
	from := s.mode
	s.mode--
	s.promotions++
	s.det.Reset()
	s.static.Reset()
	s.prevFired = false
	s.ins.guardModeChange(t, from, s.mode, "recovered")
	if s.modeChange != nil {
		s.modeChange(t, from, s.mode, "recovered")
	}
}
