// Package guard supervises Radshield's own dependencies: the current
// sensor that ILD trusts and the executor cores that EMR trusts.
//
// The paper's protection layers assume their own inputs are sound — the
// current sensor reports real amps, the redundant executors make
// progress. On orbit neither assumption holds: telemetry ADCs latch up,
// sensor wiring opens, and an irradiated core can hang in a livelock
// instead of computing wrong bytes. This package makes those failure
// modes survivable instead of silent.
//
// Two supervisors:
//
//   - Supervisor watches the current-sensor stream through a
//     SensorHealth monitor and drives ILD down an explicit degradation
//     ladder — full linear-model detection → static current threshold →
//     hardware supply trip only — demoting when the sensor is provably
//     unusable (NaN, out of range, stuck, stale) or when the active
//     detector refires implausibly fast after power cycles (the
//     signature of a bias/offset fault the per-sample checks cannot
//     see). While the board is blind it issues precautionary power
//     cycles on a period shorter than the detection-latency requirement,
//     so a latchup struck during a sensor outage is still cleared before
//     thermal damage. When the sensor recovers, the ladder re-promotes.
//
//   - Watchdog implements emr.Watcher: it bounds every executor visit
//     with a virtual deadline, kills hung replicas, counts per-executor
//     strikes, and degrades the redundancy plan TMR → DMR + checksum
//     arbiter → serial 3-MR as cores go persistently bad. Retry pacing
//     is deterministic (shifted backoff, bounded attempts).
//
// Every decision is deterministic: no wall clock, no unseeded
// randomness, state advanced only by the telemetry/visits fed in. Mode
// changes surface as guard_mode / guard_redundancy_mode gauges and
// structured events (see TELEMETRY.md).
package guard
