package guard

import (
	"math"
	"testing"
	"time"

	"radshield/internal/ild"
	"radshield/internal/telemetry"
)

// trainedDetector fits a tiny ILD instance on clean quiescent samples
// around 1.55 A, with a 3-sample sustain window for fast tests.
func trainedDetector(t *testing.T) *ild.Detector {
	t.Helper()
	cfg := ild.DefaultConfig()
	cfg.SustainFor = 3 * time.Millisecond
	tr := ild.NewTrainer(cfg)
	for i := 0; i < 60; i++ {
		if !tr.Add(variedTel(time.Duration(i)*time.Millisecond, i)) {
			t.Fatalf("training sample %d rejected", i)
		}
	}
	det, err := tr.Fit()
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// fastSupervisorConfig shrinks the ladder constants so tests stay
// small: demote after 5 bad samples, stuck after 10 repeats, promote
// after 50 clean samples.
func fastSupervisorConfig() SupervisorConfig {
	cfg := DefaultSupervisorConfig()
	cfg.Health.StuckAfter = 10
	cfg.BadAfter = 5
	cfg.GoodAfter = 50
	cfg.RefireWindow = 10 * time.Second
	cfg.RefireLimit = 3
	cfg.BlindCycleEvery = 100 * time.Millisecond
	return cfg
}

func newSupervisor(t *testing.T, cfg SupervisorConfig) *Supervisor {
	t.Helper()
	s, err := NewSupervisor(trainedDetector(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSupervisorConfigValidation(t *testing.T) {
	det := trainedDetector(t)
	if _, err := NewSupervisor(nil, DefaultSupervisorConfig()); err == nil {
		t.Error("nil detector accepted")
	}
	for _, mod := range []func(*SupervisorConfig){
		func(c *SupervisorConfig) { c.BadAfter = 0 },
		func(c *SupervisorConfig) { c.GoodAfter = 0 },
		func(c *SupervisorConfig) { c.RefireLimit = -1 },
		func(c *SupervisorConfig) { c.RefireLimit = 3; c.RefireWindow = 0 },
		func(c *SupervisorConfig) { c.BlindCycleEvery = -time.Second },
		func(c *SupervisorConfig) { c.StaticLevelA = 0 },
		func(c *SupervisorConfig) { c.Health.StuckAfter = 0 },
	} {
		cfg := DefaultSupervisorConfig()
		mod(&cfg)
		if _, err := NewSupervisor(det, cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

// TestStuckSensorWalksDownLadder is the ISSUE acceptance shape: a
// stuck-at fault demotes linear → static within a bounded number of
// samples, then (still stuck) static → hardware-trip-only.
func TestStuckSensorWalksDownLadder(t *testing.T) {
	cfg := fastSupervisorConfig()
	s := newSupervisor(t, cfg)

	now := time.Duration(0)
	step := func(raw float64) Decision {
		d := s.Observe(tel(now, raw))
		now += time.Millisecond
		return d
	}
	for i := 0; i < 20; i++ {
		if d := step(1.55 + 0.0001*float64(i%7)); d.Mode != ModeLinearModel || !d.SensorOK {
			t.Fatalf("healthy warm-up sample %d: %+v", i, d)
		}
	}

	// Freeze the sensor. The stuck run needs StuckAfter repeats to be
	// recognised, then BadAfter verdicts to demote — a hard bound of
	// StuckAfter+BadAfter samples per rung.
	bound := cfg.Health.StuckAfter + cfg.BadAfter
	var demotedAt, sample int
	for sample = 1; sample <= bound; sample++ {
		d := step(1.5503)
		if d.Demoted {
			if d.Mode != ModeStaticThreshold {
				t.Fatalf("first demotion landed on %v", d.Mode)
			}
			if d.Reason != "stuck" {
				t.Fatalf("demotion reason %q, want stuck", d.Reason)
			}
			demotedAt = sample
			break
		}
	}
	if demotedAt == 0 {
		t.Fatalf("no demotion within %d stuck samples", bound)
	}
	// Still frozen: the static rung is equally blind to a stuck sensor,
	// so the ladder keeps walking to hardware-trip-only.
	for sample = 1; sample <= cfg.BadAfter+1; sample++ {
		if d := step(1.5503); d.Demoted {
			if d.Mode != ModeHardwareTrip {
				t.Fatalf("second demotion landed on %v", d.Mode)
			}
			break
		}
	}
	if s.Mode() != ModeHardwareTrip {
		t.Fatalf("mode = %v after persistent stuck fault", s.Mode())
	}
	if s.Demotions() != 2 {
		t.Fatalf("Demotions = %d, want 2", s.Demotions())
	}
}

func TestRecoveryPromotesBackToLinear(t *testing.T) {
	cfg := fastSupervisorConfig()
	s := newSupervisor(t, cfg)
	now := time.Duration(0)
	step := func(raw float64) Decision {
		d := s.Observe(tel(now, raw))
		now += time.Millisecond
		return d
	}
	// Drive all the way down with a dropout (NaN) fault.
	for s.Mode() != ModeHardwareTrip {
		step(math.NaN())
	}
	// Sensor recovers: the ladder re-promotes one rung per GoodAfter
	// streak, static first, then linear.
	sawStatic := false
	for i := 0; i < 3*cfg.GoodAfter && s.Mode() != ModeLinearModel; i++ {
		d := step(1.55 + 0.0001*float64(i%7))
		if d.Promoted && d.Mode == ModeStaticThreshold {
			sawStatic = true
		}
	}
	if !sawStatic {
		t.Fatal("promotion skipped the static-threshold rung")
	}
	if s.Mode() != ModeLinearModel {
		t.Fatalf("mode = %v after recovery, want linear", s.Mode())
	}
	if s.Promotions() != 2 {
		t.Fatalf("Promotions = %d, want 2", s.Promotions())
	}
}

// TestBlindCyclesWhileSensorDark: while the sensor is unusable the
// supervisor commands precautionary power cycles on the configured
// period, so a latchup struck during the outage cannot reach the
// thermal damage horizon — the "zero missed SELs" mechanism.
func TestBlindCyclesWhileSensorDark(t *testing.T) {
	cfg := fastSupervisorConfig()
	s := newSupervisor(t, cfg)
	now := time.Duration(0)
	cycles := 0
	for i := 0; i < 350; i++ {
		d := s.Observe(tel(now, math.NaN()))
		if d.BlindCycle {
			cycles++
			s.NotePowerCycle(now)
		}
		now += time.Millisecond
	}
	// 350 ms of blindness at a 100 ms period: cycles at ~100, 200, 300.
	if cycles != 3 {
		t.Fatalf("blind cycles = %d, want 3", cycles)
	}
	if s.BlindCycles() != cycles {
		t.Fatalf("BlindCycles() = %d, want %d", s.BlindCycles(), cycles)
	}
	// A healthy sensor stops the cycling and restarts the period from
	// the next blind onset.
	for i := 0; i < 200; i++ {
		if d := s.Observe(variedTel(now, i)); d.BlindCycle {
			t.Fatal("blind cycle commanded while sensor healthy")
		}
		now += time.Millisecond
	}
}

// TestBiasRefireDemotes: an offset fault produces plausible readings —
// per-sample checks stay green — but the detector refires right after
// every power cycle. The refire rule catches the signature.
func TestBiasRefireDemotes(t *testing.T) {
	cfg := fastSupervisorConfig()
	s := newSupervisor(t, cfg)
	now := time.Duration(0)

	demoted := false
	for i := 0; i < 200 && !demoted; i++ {
		// +0.1 A bias over the trained baseline, with ADC jitter so the
		// stuck check stays quiet.
		d := s.Observe(tel(now, 1.65+0.0001*float64(i%7)))
		if !d.SensorOK {
			t.Fatalf("bias sample %d flagged by per-sample checks: %+v", i, d)
		}
		if d.Fired {
			// Flight response: power cycle, which cannot clear a sensor
			// bias — the detector refires a sustain-window later.
			s.NotePowerCycle(now)
		}
		if d.Demoted {
			demoted = true
			if d.Mode != ModeStaticThreshold {
				t.Fatalf("refire demotion landed on %v", d.Mode)
			}
		}
		now += time.Millisecond
	}
	if !demoted {
		t.Fatal("refire storm never demoted the ladder")
	}
}

func TestSupervisorTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry(64)
	ins := NewInstruments(reg)
	cfg := fastSupervisorConfig()
	s := newSupervisor(t, cfg)
	s.SetInstruments(ins)
	if got := ins.Mode.Value(); got != 0 {
		t.Fatalf("guard_mode = %v at attach, want 0", got)
	}
	now := time.Duration(0)
	for s.Mode() == ModeLinearModel {
		s.Observe(tel(now, math.NaN()))
		now += time.Millisecond
	}
	if got := ins.Mode.Value(); got != float64(ModeStaticThreshold) {
		t.Fatalf("guard_mode = %v, want %v", got, float64(ModeStaticThreshold))
	}
	if ins.Demotions.Value() != 1 {
		t.Fatalf("guard_demotions_total = %d, want 1", ins.Demotions.Value())
	}
	if ins.BadSensorSamples.Value() == 0 {
		t.Fatal("guard_bad_sensor_samples_total never incremented")
	}
	var found bool
	for _, ev := range reg.Events() {
		if ev.Kind == telemetry.KindGuardMode &&
			ev.Fields["from"] == "linear_model" && ev.Fields["to"] == "static_threshold" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no guard_mode_change event; events: %v", reg.Events())
	}
}
