package guard

import (
	"testing"
	"time"
)

// TestSupervisorOnModeChange drives the ladder down (stuck sensor) and
// back up (clean readings) and checks the registered callback sees both
// moves with the right rungs and reasons — the hook the downlink
// transmitter hangs its beacon-mode switch on.
func TestSupervisorOnModeChange(t *testing.T) {
	cfg := fastSupervisorConfig()
	s := newSupervisor(t, cfg)

	type move struct {
		from, to Mode
		reason   string
	}
	var moves []move
	s.OnModeChange(func(_ time.Duration, from, to Mode, reason string) {
		moves = append(moves, move{from, to, reason})
	})

	now := time.Duration(0)
	step := func(raw float64) Decision {
		d := s.Observe(tel(now, raw))
		now += time.Millisecond
		return d
	}
	vstep := func(i int) {
		s.Observe(variedTel(now, i))
		now += time.Millisecond
	}

	// Warm up healthy, then freeze the sensor until a demotion lands.
	for i := 0; i < 20; i++ {
		vstep(i)
	}
	bound := cfg.Health.StuckAfter + cfg.BadAfter
	for i := 0; i < bound; i++ {
		if d := step(1.5503); d.Demoted {
			break
		}
	}
	if len(moves) != 1 {
		t.Fatalf("callback saw %d moves after demotion, want 1", len(moves))
	}
	if moves[0].from != ModeLinearModel || moves[0].to != ModeStaticThreshold || moves[0].reason != "stuck" {
		t.Fatalf("demotion callback %+v", moves[0])
	}

	// Clean samples promote back; the callback reports the recovery.
	for i := 0; i < cfg.GoodAfter+5 && len(moves) < 2; i++ {
		vstep(i)
	}
	if len(moves) != 2 {
		t.Fatalf("callback saw %d moves after recovery, want 2", len(moves))
	}
	if moves[1].from != ModeStaticThreshold || moves[1].to != ModeLinearModel || moves[1].reason != "recovered" {
		t.Fatalf("promotion callback %+v", moves[1])
	}

	// nil detaches: a second demotion must not grow the log.
	s.OnModeChange(nil)
	for i := 0; i < bound && s.Mode() == ModeLinearModel; i++ {
		step(1.5503)
	}
	if s.Mode() == ModeLinearModel {
		t.Fatal("second stuck run never demoted")
	}
	if len(moves) != 2 {
		t.Fatalf("detached callback still invoked: %d moves", len(moves))
	}
}
