package guard

import (
	"testing"
	"time"

	"radshield/internal/machine"
)

// liveTel is a healthy sample: varied current plus visible core
// progress, so neither the stuck check nor the wedge check can trip.
func liveTel(t time.Duration, i int) machine.Telemetry {
	m := tel(t, 1.55+0.0001*float64(i%7))
	m.PerCore[0].InstrPerSec = 2e9
	return m
}

// wedgedTel is what a hung kernel produces: zero retired instructions
// and a current reading latched to exactly the last value.
func wedgedTel(t time.Duration, latched float64) machine.Telemetry {
	return tel(t, latched)
}

func TestSupervisorHangValidation(t *testing.T) {
	det := trainedDetector(t)
	for _, mod := range []func(*SupervisorConfig){
		func(c *SupervisorConfig) { c.HangAfter = -1 },
		func(c *SupervisorConfig) { c.HeartbeatTimeout = -time.Second },
	} {
		cfg := DefaultSupervisorConfig()
		mod(&cfg)
		if _, err := NewSupervisor(det, cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

// TestSupervisorHangCycleDetection pins the wedged-kernel signature:
// zero instruction progress AND a bit-identical current reading,
// sustained for HangAfter samples, commands an external power cycle.
// Either signal alone is innocent — an idle core parks, and a noisy ADC
// never repeats exactly — so the conjunction is hang-specific.
func TestSupervisorHangCycleDetection(t *testing.T) {
	cfg := fastSupervisorConfig()
	cfg.HangAfter = 5
	s := newSupervisor(t, cfg)

	now := time.Duration(0)
	var latched float64
	for i := 0; i < 20; i++ {
		m := liveTel(now, i)
		latched = m.CurrentA
		if d := s.Observe(m); d.HangCycle {
			t.Fatalf("healthy sample %d flagged as hang", i)
		}
		now += time.Millisecond
	}
	// Kernel wedges: readings latch. The cycle must land on exactly the
	// HangAfter'th wedged sample, no sooner.
	for i := 1; i <= cfg.HangAfter; i++ {
		d := s.Observe(wedgedTel(now, latched))
		now += time.Millisecond
		if got, want := d.HangCycle, i == cfg.HangAfter; got != want {
			t.Fatalf("wedged sample %d: HangCycle = %v, want %v", i, got, want)
		}
	}
	if s.HangCycles() != 1 {
		t.Fatalf("HangCycles = %d, want 1", s.HangCycles())
	}
	// The cycle revives the board; a healthy stream must not re-fire.
	s.NotePowerCycle(now)
	for i := 0; i < 20; i++ {
		if d := s.Observe(liveTel(now, i)); d.HangCycle {
			t.Fatal("hang cycle re-fired on a revived board")
		}
		now += time.Millisecond
	}
}

// TestSupervisorHangDisabledByDefault: HangAfter is opt-in; the default
// config must tolerate an idle parked core with a quiet ADC forever.
func TestSupervisorHangDisabledByDefault(t *testing.T) {
	s := newSupervisor(t, fastSupervisorConfig())
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		if d := s.Observe(wedgedTel(now, 1.5501)); d.HangCycle {
			t.Fatalf("hang cycle fired at sample %d with HangAfter = 0", i)
		}
		now += time.Millisecond
	}
}

// TestSupervisorHeartbeatGap: a panicked kernel stops delivering samples
// entirely; the first sample after the watchdog revives the board
// arrives with a tell-tale timestamp gap the supervisor must flag.
func TestSupervisorHeartbeatGap(t *testing.T) {
	cfg := fastSupervisorConfig()
	cfg.HeartbeatTimeout = 10 * time.Millisecond
	s := newSupervisor(t, cfg)

	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		if d := s.Observe(liveTel(now, i)); d.HeartbeatGap {
			t.Fatalf("gap flagged on a %v cadence", time.Millisecond)
		}
		now += time.Millisecond
	}
	now += 50 * time.Millisecond // the board was down: no samples at all
	if d := s.Observe(liveTel(now, 0)); !d.HeartbeatGap {
		t.Fatal("50ms sample gap not flagged")
	}
	if s.HeartbeatGaps() != 1 {
		t.Fatalf("HeartbeatGaps = %d, want 1", s.HeartbeatGaps())
	}
	now += time.Millisecond
	if d := s.Observe(liveTel(now, 1)); d.HeartbeatGap {
		t.Fatal("gap flag stuck after cadence resumed")
	}
}
