package guard

import (
	"fmt"
	"math"
	"time"

	"radshield/internal/machine"
)

// Mode is ILD's position on the guard degradation ladder. Lower values
// are more capable; demotion moves down the list one rung at a time.
type Mode int

const (
	// ModeLinearModel: full ILD — linear current model, residual
	// threshold, quiescence gating (the paper's detector).
	ModeLinearModel Mode = iota
	// ModeStaticThreshold: the sensor is still read but only compared
	// against a fixed level (paper §2.1's classic protection) — no model
	// features needed, so counter glitches cannot blind it.
	ModeStaticThreshold
	// ModeHardwareTrip: the digital sensor path is not trusted at all;
	// only the supply's analog over-current comparator protects the
	// board, backstopped by the Supervisor's blind power cycles.
	ModeHardwareTrip
)

// String names the mode as it appears in telemetry fields.
func (m Mode) String() string {
	switch m {
	case ModeLinearModel:
		return "linear_model"
	case ModeStaticThreshold:
		return "static_threshold"
	case ModeHardwareTrip:
		return "hardware_trip"
	default:
		return "unknown"
	}
}

// HealthConfig tunes the per-sample sensor-health checks.
type HealthConfig struct {
	// MinPlausibleA / MaxPlausibleA bound readings a real board could
	// produce; anything outside (garbage ADC values, negative currents)
	// is an instant bad sample. The bounds must clear legitimate
	// transient spikes, which exceed the supply-trip level.
	MinPlausibleA float64
	MaxPlausibleA float64
	// StuckAfter flags the sensor after this many consecutive
	// bit-identical raw readings. Real readings carry ADC noise and
	// essentially never repeat exactly; a frozen register repeats
	// forever.
	StuckAfter int
	// MaxSampleGap flags staleness when consecutive samples are farther
	// apart than this (a wedged telemetry path). Zero disables the gap
	// check; non-advancing timestamps are always flagged.
	MaxSampleGap time.Duration
}

// DefaultHealthConfig returns bounds sized for the simulated board:
// quiescent draw ~1.55 A, workload draw a few amps, transient spikes to
// several amps, 1 ms telemetry cadence.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		MinPlausibleA: 0.05,
		MaxPlausibleA: 50,
		StuckAfter:    50,
		MaxSampleGap:  20 * time.Millisecond,
	}
}

// Verdict is one sample's health classification.
type Verdict struct {
	OK bool
	// Reason is "" when OK, else one of "nan", "range", "stuck",
	// "stale".
	Reason string
}

// SensorHealth classifies current-sensor samples as usable or not. It
// is purely observational — feed it every telemetry sample in order;
// the Supervisor turns its verdicts into ladder moves.
type SensorHealth struct {
	cfg HealthConfig

	lastT   time.Duration
	haveT   bool
	lastRaw float64
	haveRaw bool
	run     int // consecutive bit-identical raw readings
}

// NewSensorHealth validates cfg and returns a monitor.
func NewSensorHealth(cfg HealthConfig) (*SensorHealth, error) {
	if cfg.MinPlausibleA < 0 || cfg.MaxPlausibleA <= cfg.MinPlausibleA {
		return nil, fmt.Errorf("guard: plausible range [%v, %v] invalid", cfg.MinPlausibleA, cfg.MaxPlausibleA)
	}
	if cfg.StuckAfter < 2 {
		return nil, fmt.Errorf("guard: StuckAfter = %d, want ≥ 2", cfg.StuckAfter)
	}
	if cfg.MaxSampleGap < 0 {
		return nil, fmt.Errorf("guard: MaxSampleGap = %v, want ≥ 0", cfg.MaxSampleGap)
	}
	return &SensorHealth{cfg: cfg}, nil
}

// Observe classifies one telemetry sample. Checks run in order of
// certainty: staleness (the stream itself is wedged), non-finite
// readings, implausible range, then the stuck-at run length.
func (h *SensorHealth) Observe(tel machine.Telemetry) Verdict {
	if h.haveT {
		gap := tel.T - h.lastT
		if gap <= 0 || (h.cfg.MaxSampleGap > 0 && gap > h.cfg.MaxSampleGap) {
			h.lastT = tel.T
			return Verdict{Reason: "stale"}
		}
	}
	h.lastT = tel.T
	h.haveT = true

	raw := tel.RawA
	if math.IsNaN(raw) || math.IsInf(raw, 0) || math.IsNaN(tel.CurrentA) || math.IsInf(tel.CurrentA, 0) {
		h.haveRaw = false
		h.run = 0
		return Verdict{Reason: "nan"}
	}
	if raw < h.cfg.MinPlausibleA || raw > h.cfg.MaxPlausibleA {
		h.haveRaw = false
		h.run = 0
		return Verdict{Reason: "range"}
	}
	if h.haveRaw && raw == h.lastRaw {
		h.run++
	} else {
		h.run = 1
	}
	h.lastRaw = raw
	h.haveRaw = true
	if h.run >= h.cfg.StuckAfter {
		return Verdict{Reason: "stuck"}
	}
	return Verdict{OK: true}
}

// StuckRun returns the current count of consecutive identical raw
// readings (diagnostics/telemetry).
func (h *SensorHealth) StuckRun() int { return h.run }
