package guard

import (
	"math"
	"testing"
	"time"

	"radshield/internal/machine"
)

// tel builds a minimal quiescent telemetry sample at the given raw
// current.
func tel(t time.Duration, rawA float64) machine.Telemetry {
	return machine.Telemetry{
		T:        t,
		CurrentA: rawA,
		RawA:     rawA,
		PerCore:  []machine.CoreTelemetry{{FreqHz: 600e6, CacheHitRate: 0.97}},
	}
}

// variedTel returns a healthy reading with per-sample ADC jitter so the
// stuck-at check never triggers.
func variedTel(t time.Duration, i int) machine.Telemetry {
	return tel(t, 1.55+0.0001*float64(i%7))
}

func newHealth(t *testing.T) *SensorHealth {
	t.Helper()
	h, err := NewSensorHealth(DefaultHealthConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHealthConfigValidation(t *testing.T) {
	for _, mod := range []func(*HealthConfig){
		func(c *HealthConfig) { c.MinPlausibleA = -1 },
		func(c *HealthConfig) { c.MaxPlausibleA = c.MinPlausibleA },
		func(c *HealthConfig) { c.StuckAfter = 1 },
		func(c *HealthConfig) { c.MaxSampleGap = -time.Second },
	} {
		cfg := DefaultHealthConfig()
		mod(&cfg)
		if _, err := NewSensorHealth(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

func TestHealthFlagsNonFinite(t *testing.T) {
	h := newHealth(t)
	h.Observe(variedTel(0, 0))
	for i, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		v := h.Observe(tel(time.Duration(i+1)*time.Millisecond, bad))
		if v.OK || v.Reason != "nan" {
			t.Fatalf("verdict for %v = %+v, want nan", bad, v)
		}
	}
	// Filtered current can be poisoned independently of the raw reading.
	s := tel(5*time.Millisecond, 1.55)
	s.CurrentA = math.NaN()
	if v := h.Observe(s); v.OK || v.Reason != "nan" {
		t.Fatalf("NaN CurrentA verdict = %+v, want nan", v)
	}
}

func TestHealthFlagsOutOfRange(t *testing.T) {
	h := newHealth(t)
	for i, bad := range []float64{-3.2, 0.001, 400, 1e6} {
		v := h.Observe(tel(time.Duration(i)*time.Millisecond, bad))
		if v.OK || v.Reason != "range" {
			t.Fatalf("verdict for %v A = %+v, want range", bad, v)
		}
	}
}

func TestHealthFlagsStuckSensor(t *testing.T) {
	cfg := DefaultHealthConfig()
	cfg.StuckAfter = 10
	h, err := NewSensorHealth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Varying readings never trip the stuck check.
	for i := 0; i < 100; i++ {
		if v := h.Observe(variedTel(time.Duration(i)*time.Millisecond, i)); !v.OK {
			t.Fatalf("varying sample %d flagged: %+v", i, v)
		}
	}
	// A frozen register trips exactly at StuckAfter repeats.
	for i := 0; i < 9; i++ {
		if v := h.Observe(tel(time.Duration(100+i)*time.Millisecond, 1.6)); !v.OK {
			t.Fatalf("repeat %d flagged early: %+v", i, v)
		}
	}
	v := h.Observe(tel(110*time.Millisecond, 1.6))
	if v.OK || v.Reason != "stuck" {
		t.Fatalf("verdict at StuckAfter = %+v, want stuck", v)
	}
	// It stays stuck until the value moves again.
	if v := h.Observe(tel(111*time.Millisecond, 1.6)); v.Reason != "stuck" {
		t.Fatalf("still-frozen verdict = %+v", v)
	}
	if v := h.Observe(tel(112*time.Millisecond, 1.5507)); !v.OK {
		t.Fatalf("recovered sample flagged: %+v", v)
	}
}

func TestHealthFlagsStaleStream(t *testing.T) {
	h := newHealth(t)
	h.Observe(variedTel(time.Millisecond, 1))
	// Non-advancing timestamp.
	if v := h.Observe(variedTel(time.Millisecond, 2)); v.OK || v.Reason != "stale" {
		t.Fatalf("repeated timestamp verdict = %+v, want stale", v)
	}
	// A gap beyond MaxSampleGap.
	if v := h.Observe(variedTel(time.Second, 3)); v.OK || v.Reason != "stale" {
		t.Fatalf("gapped sample verdict = %+v, want stale", v)
	}
	// Stream resumes at normal cadence.
	if v := h.Observe(variedTel(time.Second+time.Millisecond, 4)); !v.OK {
		t.Fatalf("resumed sample flagged: %+v", v)
	}
}
