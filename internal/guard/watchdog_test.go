package guard

import (
	"bytes"
	"testing"
	"time"

	"radshield/internal/emr"
	"radshield/internal/fault"
	"radshield/internal/telemetry"
)

// The watchdog must satisfy the EMR runtime's watcher contract.
var _ emr.Watcher = (*Watchdog)(nil)

func newWatchdog(t *testing.T, cfg WatchdogConfig) *Watchdog {
	t.Helper()
	w, err := NewWatchdog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWatchdogConfigValidation(t *testing.T) {
	for _, mod := range []func(*WatchdogConfig){
		func(c *WatchdogConfig) { c.Deadline = -time.Second },
		func(c *WatchdogConfig) { c.MaxStrikes = 0 },
		func(c *WatchdogConfig) { c.RetryLimit = -1 },
		func(c *WatchdogConfig) { c.BackoffBase = 0 },
	} {
		cfg := DefaultWatchdogConfig()
		mod(&cfg)
		if _, err := NewWatchdog(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

func TestWatchdogKillsHungVisit(t *testing.T) {
	cfg := DefaultWatchdogConfig()
	cfg.Deadline = 10 * time.Millisecond
	w := newWatchdog(t, cfg)
	charged, err := w.VisitDone(1, 0, 50*time.Millisecond, nil)
	if err == nil {
		t.Fatal("hung visit not killed")
	}
	if charged != cfg.Deadline {
		t.Fatalf("charged %v, want the deadline %v", charged, cfg.Deadline)
	}
	if w.Kills() != 1 || w.Strikes(1) != 1 {
		t.Fatalf("kills = %d strikes = %d, want 1/1", w.Kills(), w.Strikes(1))
	}
	// A visit inside the deadline passes through untouched.
	charged, err = w.VisitDone(0, 0, 5*time.Millisecond, nil)
	if err != nil || charged != 5*time.Millisecond {
		t.Fatalf("clean visit altered: %v, %v", charged, err)
	}
}

func TestCleanVisitClearsStreak(t *testing.T) {
	cfg := DefaultWatchdogConfig()
	cfg.Deadline = 10 * time.Millisecond
	cfg.MaxStrikes = 3
	w := newWatchdog(t, cfg)
	w.VisitDone(2, 0, time.Second, nil)
	w.VisitDone(2, 1, time.Second, nil)
	if w.Strikes(2) != 2 {
		t.Fatalf("strikes = %d, want 2", w.Strikes(2))
	}
	w.VisitDone(2, 2, time.Millisecond, nil)
	if w.Strikes(2) != 0 {
		t.Fatalf("clean visit left strikes = %d", w.Strikes(2))
	}
	if w.Mode() != RedundancyTMR {
		t.Fatalf("sporadic hangs demoted the mode to %v", w.Mode())
	}
}

func TestPersistentFailureDegradesTMRToDMRToSerial(t *testing.T) {
	cfg := DefaultWatchdogConfig()
	cfg.Deadline = 10 * time.Millisecond
	cfg.MaxStrikes = 3
	w := newWatchdog(t, cfg)

	for i := 0; i < 3; i++ {
		w.VisitDone(2, i, time.Second, nil) // hung core 2
	}
	if w.Mode() != RedundancyDMRChecksum {
		t.Fatalf("mode = %v after first bad core, want dmr_checksum", w.Mode())
	}
	plan := w.Plan()
	if plan.Scheme != fault.SchemeEMR || plan.Executors != 2 || !plan.ChecksumArbiter {
		t.Fatalf("DMR plan = %+v", plan)
	}
	if got := w.BadExecutors(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("BadExecutors = %v, want [2]", got)
	}

	kill := bytes.ErrTooLarge // any sentinel error: a crashing replica
	for i := 0; i < 3; i++ {
		w.VisitDone(0, i, time.Millisecond, kill)
	}
	if w.Mode() != RedundancySerial {
		t.Fatalf("mode = %v after second bad core, want serial", w.Mode())
	}
	plan = w.Plan()
	if plan.Scheme != fault.SchemeSerial3MR || plan.ChecksumArbiter {
		t.Fatalf("serial plan = %+v", plan)
	}
	if w.Crashes() != 3 {
		t.Fatalf("Crashes = %d, want 3", w.Crashes())
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	cfg := DefaultWatchdogConfig()
	cfg.RetryLimit = 3
	cfg.BackoffBase = 10 * time.Millisecond
	w := newWatchdog(t, cfg)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	for i, wd := range want {
		got, ok := w.Backoff(i)
		if !ok || got != wd {
			t.Fatalf("Backoff(%d) = %v/%v, want %v/true", i, got, ok, wd)
		}
	}
	if _, ok := w.Backoff(3); ok {
		t.Fatal("attempt past RetryLimit allowed")
	}
	if _, ok := w.Backoff(-1); ok {
		t.Fatal("negative attempt allowed")
	}
}

func TestWatchdogTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry(64)
	ins := NewInstruments(reg)
	cfg := DefaultWatchdogConfig()
	cfg.Deadline = 10 * time.Millisecond
	cfg.MaxStrikes = 2
	w := newWatchdog(t, cfg)
	w.SetInstruments(ins)
	w.VisitDone(1, 0, time.Second, nil)
	w.VisitDone(1, 1, time.Second, nil)
	if ins.WatchdogKills.Value() != 2 || ins.WatchdogStrikes.Value() != 2 {
		t.Fatalf("kills/strikes = %d/%d, want 2/2", ins.WatchdogKills.Value(), ins.WatchdogStrikes.Value())
	}
	if got := ins.Redundancy.Value(); got != float64(RedundancyDMRChecksum) {
		t.Fatalf("guard_redundancy_mode = %v, want %v", got, float64(RedundancyDMRChecksum))
	}
	var kills, modes int
	for _, ev := range reg.Events() {
		switch ev.Kind {
		case telemetry.KindReplicaKill:
			kills++
			if ev.Fields["cause"] != "hang" {
				t.Fatalf("kill cause = %v", ev.Fields["cause"])
			}
		case telemetry.KindRedundancyMode:
			modes++
			if ev.Fields["to"] != "dmr_checksum" {
				t.Fatalf("redundancy change to %v", ev.Fields["to"])
			}
		}
	}
	if kills != 2 || modes != 1 {
		t.Fatalf("events: %d kills, %d mode changes, want 2/1", kills, modes)
	}
}

// sumJob mirrors the EMR test workload: a tiny deterministic digest.
func sumJob(inputs [][]byte) ([]byte, error) {
	var sum uint32
	for _, in := range inputs {
		for _, b := range in {
			sum = sum*31 + uint32(b)
		}
	}
	return []byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)}, nil
}

// loadSpec stages n chunked datasets into rt.
func loadSpec(t *testing.T, rt *emr.Runtime, n, chunk int) emr.Spec {
	t.Helper()
	data := make([]byte, n*chunk)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	ref, err := rt.LoadInput("data", data)
	if err != nil {
		t.Fatal(err)
	}
	datasets := make([]emr.Dataset, n)
	for i := 0; i < n; i++ {
		s, err := ref.Slice(uint64(i*chunk), uint64(chunk))
		if err != nil {
			t.Fatal(err)
		}
		datasets[i] = emr.Dataset{Inputs: []emr.InputRef{s}}
	}
	return emr.Spec{Name: "guarded", Datasets: datasets, Job: sumJob, CyclesPerByte: 10}
}

// TestWatchdogGuardsEMRRuntime runs the full degradation loop: a core
// that hangs on every visit is killed each time, TMR still votes 2-of-3
// correct outputs, the watchdog declares the core bad, and the next run
// rebuilt from Plan() completes under DMR.
func TestWatchdogGuardsEMRRuntime(t *testing.T) {
	golden := func() [][]byte {
		cfg := emr.DefaultConfig()
		cfg.Scheme = fault.SchemeNone
		cfg.Executors = 1
		rt, err := emr.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(loadSpec(t, rt, 4, 128))
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}()

	wcfg := DefaultWatchdogConfig()
	wcfg.Deadline = 10 * time.Millisecond
	wcfg.MaxStrikes = 2
	w := newWatchdog(t, wcfg)

	cfg := emr.DefaultConfig()
	cfg.Watch = w
	rt, err := emr.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := loadSpec(t, rt, 4, 128)
	spec.Hook = func(hp *emr.HookPoint) {
		if hp.Phase == emr.PhaseAfterRead && hp.Executor == 2 {
			hp.Stall = time.Second // livelocked core: hangs every visit
		}
	}
	res, err := rt.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range golden {
		if !bytes.Equal(res.Outputs[i], golden[i]) {
			t.Fatalf("dataset %d wrong with hung core", i)
		}
	}
	if w.Kills() != 4 {
		t.Fatalf("kills = %d, want 4 (every visit of core 2)", w.Kills())
	}
	if w.Mode() != RedundancyDMRChecksum {
		t.Fatalf("mode = %v, want dmr_checksum", w.Mode())
	}

	// Rebuild the runtime from the degraded plan and run clean.
	plan := w.Plan()
	cfg2 := emr.DefaultConfig()
	cfg2.Scheme = plan.Scheme
	cfg2.Executors = plan.Executors
	cfg2.Watch = w
	rt2, err := emr.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := rt2.Run(loadSpec(t, rt2, 4, 128))
	if err != nil {
		t.Fatal(err)
	}
	for i := range golden {
		if !bytes.Equal(res2.Outputs[i], golden[i]) {
			t.Fatalf("dataset %d wrong under DMR", i)
		}
	}
}
