package guard

import (
	"time"

	"radshield/internal/telemetry"
)

// Instruments bundles the guard layer's metric handles. Construct with
// NewInstruments and attach to a Supervisor and/or Watchdog; a nil
// *Instruments disables instrumentation. TELEMETRY.md documents every
// name.
type Instruments struct {
	reg *telemetry.Registry

	// Mode mirrors the Supervisor's ladder rung (0 linear_model,
	// 1 static_threshold, 2 hardware_trip).
	Mode *telemetry.Gauge
	// Demotions / Promotions count ladder moves in each direction.
	Demotions  *telemetry.Counter
	Promotions *telemetry.Counter
	// BadSensorSamples counts samples the health monitor rejected.
	BadSensorSamples *telemetry.Counter
	// BlindCycles counts precautionary power cycles commanded while the
	// board could not observe its own current.
	BlindCycles *telemetry.Counter
	// HangCycles counts power cycles commanded for a wedged kernel
	// counter surface; HeartbeatGaps counts samples that arrived after
	// a silent gap longer than the heartbeat timeout.
	HangCycles    *telemetry.Counter
	HeartbeatGaps *telemetry.Counter
	// WatchdogStrikes counts killed or crashed executor visits;
	// WatchdogKills counts the subset killed at the deadline.
	WatchdogStrikes *telemetry.Counter
	WatchdogKills   *telemetry.Counter
	// Redundancy mirrors the Watchdog's mode (0 tmr, 1 dmr_checksum,
	// 2 serial).
	Redundancy *telemetry.Gauge
}

// NewInstruments registers the guard metric set on reg. A nil registry
// yields nil (instrumentation disabled).
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		reg:              reg,
		Mode:             reg.Gauge("guard_mode", "rung"),
		Demotions:        reg.Counter("guard_demotions_total", "transitions"),
		Promotions:       reg.Counter("guard_promotions_total", "transitions"),
		BadSensorSamples: reg.Counter("guard_bad_sensor_samples_total", "samples"),
		BlindCycles:      reg.Counter("guard_blind_cycles_total", "cycles"),
		HangCycles:       reg.Counter("guard_hang_cycles_total", "cycles"),
		HeartbeatGaps:    reg.Counter("guard_heartbeat_gaps_total", "gaps"),
		WatchdogStrikes:  reg.Counter("guard_watchdog_strikes_total", "visits"),
		WatchdogKills:    reg.Counter("guard_watchdog_kills_total", "visits"),
		Redundancy:       reg.Gauge("guard_redundancy_mode", "rung"),
	}
}

// setGuardMode seeds the mode gauge at attach time.
func (ins *Instruments) setGuardMode(m Mode) {
	if ins == nil {
		return
	}
	ins.Mode.Set(float64(m))
}

// guardModeChange records one ladder move.
func (ins *Instruments) guardModeChange(t time.Duration, from, to Mode, reason string) {
	if ins == nil {
		return
	}
	ins.Mode.Set(float64(to))
	if to > from {
		ins.Demotions.Inc()
	} else {
		ins.Promotions.Inc()
	}
	ins.reg.Emit(telemetry.Event{
		T:    t,
		Kind: telemetry.KindGuardMode,
		Fields: map[string]any{
			"from":   from.String(),
			"to":     to.String(),
			"reason": reason,
		},
	})
}

// badSensorSample counts one rejected health verdict.
func (ins *Instruments) badSensorSample() {
	if ins == nil {
		return
	}
	ins.BadSensorSamples.Inc()
}

// blindCycle records one precautionary power cycle.
func (ins *Instruments) blindCycle(t time.Duration) {
	if ins == nil {
		return
	}
	ins.BlindCycles.Inc()
	ins.reg.Emit(telemetry.Event{
		T:    t,
		Kind: telemetry.KindBlindCycle,
	})
}

// hangCycle records one power cycle commanded for a wedged kernel.
func (ins *Instruments) hangCycle(t time.Duration) {
	if ins == nil {
		return
	}
	ins.HangCycles.Inc()
	ins.reg.Emit(telemetry.Event{
		T:    t,
		Kind: telemetry.KindHangCycle,
	})
}

// heartbeatGap records one silent gap in the telemetry stream.
func (ins *Instruments) heartbeatGap(t time.Duration, gap time.Duration) {
	if ins == nil {
		return
	}
	ins.HeartbeatGaps.Inc()
	ins.reg.Emit(telemetry.Event{
		T:      t,
		Kind:   telemetry.KindHeartbeatGap,
		Fields: map[string]any{"gap_ns": int64(gap)},
	})
}

// setRedundancyMode seeds the redundancy gauge at attach time.
func (ins *Instruments) setRedundancyMode(m RedundancyMode) {
	if ins == nil {
		return
	}
	ins.Redundancy.Set(float64(m))
}

// replicaKill records one killed or crashed executor visit. The
// watchdog runs outside simclock (EMR bills virtual time per run), so
// the event timestamp is left zero.
func (ins *Instruments) replicaKill(executor, dataset int, cause string) {
	if ins == nil {
		return
	}
	ins.WatchdogStrikes.Inc()
	if cause == "hang" {
		ins.WatchdogKills.Inc()
	}
	ins.reg.Emit(telemetry.Event{
		Kind: telemetry.KindReplicaKill,
		Fields: map[string]any{
			"executor": executor,
			"dataset":  dataset,
			"cause":    cause,
		},
	})
}

// redundancyChange records one watchdog ladder move; executor is the
// core whose persistent failure triggered it.
func (ins *Instruments) redundancyChange(from, to RedundancyMode, executor int) {
	if ins == nil {
		return
	}
	ins.Redundancy.Set(float64(to))
	ins.reg.Emit(telemetry.Event{
		Kind: telemetry.KindRedundancyMode,
		Fields: map[string]any{
			"from":     from.String(),
			"to":       to.String(),
			"executor": executor,
		},
	})
}
