package guard

import (
	"fmt"
	"sort"
	"time"

	"radshield/internal/fault"
)

// RedundancyMode is the EMR runtime's position on the guard's
// redundancy ladder.
type RedundancyMode int

const (
	// RedundancyTMR: three executors, majority vote corrects any single
	// corruption (the paper's EMR).
	RedundancyTMR RedundancyMode = iota
	// RedundancyDMRChecksum: one core is bad; the two good cores run
	// DMR — disagreement is detected but not correctable by vote — and
	// a checksum pass arbitrates disagreeing datasets.
	RedundancyDMRChecksum
	// RedundancySerial: a second core is bad; all redundant copies run
	// time-multiplexed on the remaining good core (serial 3-MR).
	RedundancySerial
)

// String names the redundancy mode as it appears in telemetry fields.
func (m RedundancyMode) String() string {
	switch m {
	case RedundancyTMR:
		return "tmr"
	case RedundancyDMRChecksum:
		return "dmr_checksum"
	case RedundancySerial:
		return "serial"
	default:
		return "unknown"
	}
}

// Plan is the EMR configuration a redundancy mode calls for. The
// campaign owning the runtime rebuilds it between runs; ChecksumArbiter
// asks for a SchemeChecksum pass over datasets whose DMR vote failed.
type Plan struct {
	Scheme          fault.Scheme
	Executors       int
	ChecksumArbiter bool
}

// Plan maps the mode onto scheme and executor count.
func (m RedundancyMode) Plan() Plan {
	switch m {
	case RedundancyDMRChecksum:
		return Plan{Scheme: fault.SchemeEMR, Executors: 2, ChecksumArbiter: true}
	case RedundancySerial:
		return Plan{Scheme: fault.SchemeSerial3MR, Executors: 3}
	default:
		return Plan{Scheme: fault.SchemeEMR, Executors: 3}
	}
}

// WatchdogConfig tunes the EMR watchdog.
type WatchdogConfig struct {
	// Deadline is the per-visit virtual-time budget; a visit whose
	// elapsed exceeds it is killed (billed at the deadline, errored into
	// the vote). Zero disables deadline kills — crashes still strike.
	Deadline time.Duration
	// MaxStrikes marks an executor bad after this many consecutive
	// killed or crashed visits. A clean visit clears the streak:
	// persistent faults demote, sporadic upsets do not.
	MaxStrikes int
	// RetryLimit bounds how many times a failed dataset may be re-run.
	RetryLimit int
	// BackoffBase paces retries deterministically: attempt i (0-based)
	// waits BackoffBase << i of virtual time.
	BackoffBase time.Duration
}

// DefaultWatchdogConfig returns the simulated board's operating point.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{
		Deadline:    500 * time.Millisecond,
		MaxStrikes:  3,
		RetryLimit:  3,
		BackoffBase: 10 * time.Millisecond,
	}
}

// Watchdog supervises EMR executor visits. It implements emr.Watcher;
// attach it via emr.Config.Watch. The runtime invokes VisitDone on its
// deterministic sequential collection path, so strike counts and mode
// transitions are reproducible run to run.
type Watchdog struct {
	cfg WatchdogConfig

	strikes map[int]int
	bad     map[int]bool
	mode    RedundancyMode

	kills, crashes int

	ins *Instruments
}

// NewWatchdog validates cfg and returns a watchdog in TMR mode.
func NewWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	if cfg.Deadline < 0 {
		return nil, fmt.Errorf("guard: Deadline = %v, want ≥ 0", cfg.Deadline)
	}
	if cfg.MaxStrikes < 1 {
		return nil, fmt.Errorf("guard: MaxStrikes = %d, want ≥ 1", cfg.MaxStrikes)
	}
	if cfg.RetryLimit < 0 {
		return nil, fmt.Errorf("guard: RetryLimit = %d, want ≥ 0", cfg.RetryLimit)
	}
	if cfg.RetryLimit > 0 && cfg.BackoffBase <= 0 {
		return nil, fmt.Errorf("guard: BackoffBase = %v, want > 0 when retries are enabled", cfg.BackoffBase)
	}
	return &Watchdog{
		cfg:     cfg,
		strikes: make(map[int]int),
		bad:     make(map[int]bool),
	}, nil
}

// SetInstruments attaches telemetry instruments (nil detaches them).
func (w *Watchdog) SetInstruments(ins *Instruments) {
	w.ins = ins
	w.ins.setRedundancyMode(w.mode)
}

// VisitDone implements emr.Watcher. A crashed visit strikes its
// executor and propagates. A hung visit (elapsed past the deadline) is
// killed: billed at the deadline and errored so the vote proceeds with
// the remaining replicas. A clean visit clears the executor's streak.
func (w *Watchdog) VisitDone(executor, dataset int, elapsed time.Duration, visitErr error) (time.Duration, error) {
	if visitErr != nil {
		w.crashes++
		w.strike(executor, dataset, "crash")
		return elapsed, visitErr
	}
	if w.cfg.Deadline > 0 && elapsed > w.cfg.Deadline {
		w.kills++
		w.strike(executor, dataset, "hang")
		return w.cfg.Deadline, fmt.Errorf(
			"guard: watchdog killed executor %d on dataset %d: elapsed %v exceeds deadline %v",
			executor, dataset, elapsed, w.cfg.Deadline)
	}
	w.strikes[executor] = 0
	return elapsed, nil
}

// strike records one failed visit and demotes the redundancy mode when
// the executor crosses the persistent-bad threshold.
func (w *Watchdog) strike(executor, dataset int, cause string) {
	w.strikes[executor]++
	w.ins.replicaKill(executor, dataset, cause)
	if w.strikes[executor] < w.cfg.MaxStrikes || w.bad[executor] {
		return
	}
	w.bad[executor] = true
	from := w.mode
	switch len(w.bad) {
	case 0:
		w.mode = RedundancyTMR
	case 1:
		w.mode = RedundancyDMRChecksum
	default:
		w.mode = RedundancySerial
	}
	if w.mode != from {
		w.ins.redundancyChange(from, w.mode, executor)
	}
}

// Mode returns the current redundancy mode.
func (w *Watchdog) Mode() RedundancyMode { return w.mode }

// Plan returns the EMR configuration the current mode calls for.
func (w *Watchdog) Plan() Plan { return w.mode.Plan() }

// BadExecutors returns the persistently-bad executor indices in
// ascending order.
func (w *Watchdog) BadExecutors() []int {
	out := make([]int, 0, len(w.bad))
	for e := range w.bad {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// Strikes returns an executor's current consecutive-failure streak.
func (w *Watchdog) Strikes(executor int) int { return w.strikes[executor] }

// Kills and Crashes count hung visits killed at the deadline and
// crashed visits observed, respectively.
func (w *Watchdog) Kills() int   { return w.kills }
func (w *Watchdog) Crashes() int { return w.crashes }

// Backoff returns the deterministic delay before retry attempt i
// (0-based) and whether that attempt is within the retry budget.
func (w *Watchdog) Backoff(attempt int) (time.Duration, bool) {
	if attempt < 0 || attempt >= w.cfg.RetryLimit {
		return 0, false
	}
	return w.cfg.BackoffBase << uint(attempt), true
}
