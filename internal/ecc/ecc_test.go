package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, data := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEF00D, 1 << 63} {
		got, res := Decode(data, Encode(data))
		if res != OK || got != data {
			t.Errorf("Decode(Encode(%#x)) = %#x, %v; want clean round-trip", data, got, res)
		}
	}
}

func TestSingleDataBitFlipCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		data := rng.Uint64()
		check := Encode(data)
		bit := rng.Intn(64)
		corrupted := data ^ (1 << uint(bit))
		got, res := Decode(corrupted, check)
		if res != CorrectedData {
			t.Fatalf("data=%#x bit=%d: result = %v, want CorrectedData", data, bit, res)
		}
		if got != data {
			t.Fatalf("data=%#x bit=%d: corrected to %#x, want original", data, bit, got)
		}
	}
}

func TestSingleCheckBitFlipCorrected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		data := rng.Uint64()
		check := Encode(data)
		bit := rng.Intn(8)
		got, res := Decode(data, check^(1<<uint(bit)))
		if res != CorrectedCheck {
			t.Fatalf("data=%#x checkbit=%d: result = %v, want CorrectedCheck", data, bit, res)
		}
		if got != data {
			t.Fatalf("data=%#x checkbit=%d: data changed to %#x", data, bit, got)
		}
	}
}

func TestDoubleDataBitFlipDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		data := rng.Uint64()
		check := Encode(data)
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		if b1 == b2 {
			continue
		}
		corrupted := data ^ (1 << uint(b1)) ^ (1 << uint(b2))
		_, res := Decode(corrupted, check)
		if res != Detected {
			t.Fatalf("data=%#x bits=%d,%d: result = %v, want Detected", data, b1, b2, res)
		}
	}
}

func TestDataPlusCheckBitFlipHandled(t *testing.T) {
	// One flip in data and one in check is a double error; SECDED must not
	// silently miscorrect it into wrong data. It may report Detected, or
	// correct-to-original in the rare aliasing-free cases; what it must
	// never do is return OK or return wrong data as CorrectedData.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		data := rng.Uint64()
		check := Encode(data)
		db := rng.Intn(64)
		cb := rng.Intn(8)
		got, res := Decode(data^(1<<uint(db)), check^(1<<uint(cb)))
		switch res {
		case OK:
			t.Fatalf("double error reported OK (data=%#x db=%d cb=%d)", data, db, cb)
		case CorrectedData, CorrectedCheck:
			if got != data {
				t.Fatalf("double error miscorrected to %#x, want %#x or Detected", got, data)
			}
		}
	}
}

func TestDataPositionsAreUniqueNonPowers(t *testing.T) {
	seen := map[uint8]bool{}
	for i, p := range dataPositions {
		if p == 0 || p > 71 {
			t.Fatalf("dataPositions[%d] = %d out of range", i, p)
		}
		if p&(p-1) == 0 {
			t.Fatalf("dataPositions[%d] = %d is a parity position", i, p)
		}
		if seen[p] {
			t.Fatalf("dataPositions[%d] = %d duplicated", i, p)
		}
		seen[p] = true
	}
}

func TestWordHelpers(t *testing.T) {
	w := NewWord(0x0123456789ABCDEF)
	if d, res := w.Read(); res != OK || d != 0x0123456789ABCDEF {
		t.Fatalf("clean Word.Read = %#x, %v", d, res)
	}
	if d, res := w.FlipDataBit(17).Read(); res != CorrectedData || d != 0x0123456789ABCDEF {
		t.Fatalf("FlipDataBit(17).Read = %#x, %v; want corrected", d, res)
	}
	if d, res := w.FlipCheckBit(3).Read(); res != CorrectedCheck || d != 0x0123456789ABCDEF {
		t.Fatalf("FlipCheckBit(3).Read = %#x, %v; want corrected check", d, res)
	}
	if _, res := w.FlipDataBit(1).FlipDataBit(2).Read(); res != Detected {
		t.Fatalf("double flip Read result = %v, want Detected", res)
	}
}

func TestResultString(t *testing.T) {
	cases := map[Result]string{
		OK:             "ok",
		CorrectedData:  "corrected-data",
		CorrectedCheck: "corrected-check",
		Detected:       "detected-uncorrectable",
		Result(99):     "unknown",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Result(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

// Property: every single-bit corruption of (data, check) decodes back to
// the original data.
func TestPropertySingleFlipAlwaysRecoverable(t *testing.T) {
	f := func(data uint64, flip uint8) bool {
		w := NewWord(data)
		pos := int(flip) % 72
		var corrupted Word
		if pos < 64 {
			corrupted = w.FlipDataBit(pos)
		} else {
			corrupted = w.FlipCheckBit(pos - 64)
		}
		got, res := corrupted.Read()
		return got == data && (res == CorrectedData || res == CorrectedCheck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the check bits are a pure function of data (determinism).
func TestPropertyEncodeDeterministic(t *testing.T) {
	f := func(data uint64) bool { return Encode(data) == Encode(data) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	w := NewWord(0xDEADBEEF12345678)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = w.Read()
	}
}
