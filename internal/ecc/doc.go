// Package ecc implements the Hamming SECDED(72,64) error-correcting code
// used by commodity ECC DRAM and flash controllers: every 64-bit data word
// carries 8 check bits that allow single-error correction and double-error
// detection.
//
// The simulated memory hierarchy (package mem) uses this codec to decide
// which injected upsets are absorbed by hardware and which escape to
// software — the paper's "reliability frontier" is drawn exactly at the
// boundary where SECDED protection ends.
//
// Word is one stored (data, check-bits) pair; Encode computes the check
// byte for a data word; Word.Read decodes the pair, returning the data
// (repaired when possible) and a Result classifying the word as clean,
// corrected (single-bit), or detected-uncorrectable (double-bit). The
// FlipDataBit/FlipCheckBit helpers are the injection surface package
// mem uses.
//
// Invariants: any single bit flip — in the data or the check bits — is
// corrected and reported; any two flips are detected but not corrected;
// three or more flips are outside the code's guarantees (as in real
// SECDED hardware, they may alias). Word is a value type and Read never
// mutates the stored pair.
package ecc
