package ecc

import "math/bits"

// Result classifies the outcome of decoding a (data, check) pair.
type Result int

const (
	// OK means the word decoded cleanly with no detectable error.
	OK Result = iota
	// CorrectedData means a single bit flip in the data word was corrected.
	CorrectedData
	// CorrectedCheck means a single bit flip in the check bits was
	// corrected; the data word was already intact.
	CorrectedCheck
	// Detected means an uncorrectable (double-bit) error was detected.
	// The returned data must not be trusted.
	Detected
)

// String returns a short human-readable name for the result.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case Detected:
		return "detected-uncorrectable"
	default:
		return "unknown"
	}
}

// codeword layout: positions 1..71 hold the classic Hamming(71,64)
// codeword — parity bits at the seven power-of-two positions (1, 2, 4, 8,
// 16, 32, 64) and the 64 data bits at the remaining positions in
// ascending order. Bit 0 of the check byte is the overall (extension)
// parity across all 72 bits, giving double-error detection.

// dataPositions[i] is the codeword position of data bit i.
var dataPositions = func() [64]uint8 {
	var pos [64]uint8
	i := 0
	for p := uint8(1); p <= 71; p++ {
		if p&(p-1) == 0 { // power of two: parity position
			continue
		}
		pos[i] = p
		i++
	}
	return pos
}()

// parityIndex maps a power-of-two position to its check-byte bit (1..7).
func parityIndex(pos uint8) uint { return uint(bits.TrailingZeros8(pos)) + 1 }

// syndrome computes the XOR of the codeword positions of all set data
// bits. Parity bits are chosen so that the full-codeword syndrome is zero.
func syndrome(data uint64) uint8 {
	var s uint8
	for data != 0 {
		i := bits.TrailingZeros64(data)
		s ^= dataPositions[i]
		data &= data - 1
	}
	return s
}

// Encode computes the 8 SECDED check bits for a 64-bit data word.
func Encode(data uint64) uint8 {
	s := syndrome(data)
	var check uint8
	// Parity bit at position p covers all positions whose index has bit p
	// set; setting it to the matching syndrome bit zeroes the syndrome.
	for _, p := range [...]uint8{1, 2, 4, 8, 16, 32, 64} {
		if s&p != 0 {
			check |= 1 << parityIndex(p)
		}
	}
	// Overall parity across data and the seven Hamming parity bits.
	total := uint(bits.OnesCount64(data)) + uint(bits.OnesCount8(check>>1))
	if total%2 == 1 {
		check |= 1
	}
	return check
}

// Decode verifies a (data, check) pair and corrects a single-bit error in
// either the data or the check bits. It returns the (possibly corrected)
// data and a Result describing what happened. When Result is Detected the
// returned data is the raw, untrusted input.
func Decode(data uint64, check uint8) (uint64, Result) {
	expected := Encode(data)
	diff := expected ^ check

	// Syndrome: XOR of parity-position values whose stored parity
	// disagrees with the recomputed one.
	var s uint8
	for _, p := range [...]uint8{1, 2, 4, 8, 16, 32, 64} {
		if diff&(1<<parityIndex(p)) != 0 {
			s ^= p
		}
	}
	overallOdd := parityOverall(data, check)

	switch {
	case s == 0 && !overallOdd:
		return data, OK
	case s == 0 && overallOdd:
		// Flip confined to the overall-parity bit itself.
		return data, CorrectedCheck
	case s != 0 && overallOdd:
		// Single-bit error at codeword position s.
		if s&(s-1) == 0 {
			return data, CorrectedCheck // a Hamming parity bit flipped
		}
		if i, ok := dataBitAt(s); ok {
			return data ^ (1 << i), CorrectedData
		}
		// Syndrome points past the codeword: treat as uncorrectable.
		return data, Detected
	default: // s != 0 && !overallOdd
		return data, Detected
	}
}

// parityOverall reports whether the total number of set bits across the
// data word and the full check byte is odd.
func parityOverall(data uint64, check uint8) bool {
	return (bits.OnesCount64(data)+bits.OnesCount8(check))%2 == 1
}

// dataBitAt returns the data-bit index stored at codeword position pos.
func dataBitAt(pos uint8) (int, bool) {
	if pos == 0 || pos > 71 || pos&(pos-1) == 0 {
		return 0, false
	}
	// Data bits fill non-power-of-two positions in order; count how many
	// non-power positions precede pos.
	i := 0
	for p := uint8(1); p < pos; p++ {
		if p&(p-1) != 0 {
			i++
		}
	}
	return i, true
}

// Word is a convenience pairing of a data word with its check bits, the
// unit stored by ECC-protected simulated memory.
type Word struct {
	Data  uint64
	Check uint8
}

// NewWord encodes data into a protected Word.
func NewWord(data uint64) Word { return Word{Data: data, Check: Encode(data)} }

// Read decodes the word, returning corrected data and the decode result.
func (w Word) Read() (uint64, Result) { return Decode(w.Data, w.Check) }

// FlipDataBit returns a copy of w with data bit i (0..63) inverted,
// simulating an SEU striking the stored data.
func (w Word) FlipDataBit(i int) Word {
	w.Data ^= 1 << uint(i&63)
	return w
}

// FlipCheckBit returns a copy of w with check bit i (0..7) inverted,
// simulating an SEU striking the stored ECC metadata.
func (w Word) FlipCheckBit(i int) Word {
	w.Check ^= 1 << uint(i&7)
	return w
}
