package mission

import (
	"fmt"
	"math/rand"
	"time"

	"radshield/internal/fault"
)

// PhaseKind names a mission segment with a characteristic radiation
// climate. The multipliers attached to each kind (see Phase and
// MISSIONS.md) are relative to the profile's base environment, so the
// same kinds compose over LEO or deep-space baselines.
type PhaseKind int

const (
	// PhaseLEO is quiet low-Earth-orbit cruise under geomagnetic
	// shielding — the baseline every other phase is scaled against.
	PhaseLEO PhaseKind = iota
	// PhaseSAA is a South-Atlantic-Anomaly crossing: the inner proton
	// belt dips into the orbit and flux jumps for minutes per pass.
	PhaseSAA
	// PhaseGEO is geostationary cruise outside most of the
	// magnetosphere's shielding.
	PhaseGEO
	// PhaseMarsTransit is interplanetary cruise: unshielded GCR flux.
	PhaseMarsTransit
	// PhaseJupiterFlyby is a pass through Jupiter's radiation belts,
	// the harshest trapped-particle environment in the solar system.
	PhaseJupiterFlyby
	// PhaseSolarStorm is a solar energetic-particle event window: flux
	// rises orders of magnitude for hours.
	PhaseSolarStorm

	numPhaseKinds = int(PhaseSolarStorm) + 1
)

// String returns the phase-kind name used in telemetry and downlink
// payloads.
func (k PhaseKind) String() string {
	switch k {
	case PhaseLEO:
		return "leo_cruise"
	case PhaseSAA:
		return "saa_crossing"
	case PhaseGEO:
		return "geo_cruise"
	case PhaseMarsTransit:
		return "mars_transit"
	case PhaseJupiterFlyby:
		return "jupiter_flyby"
	case PhaseSolarStorm:
		return "solar_storm"
	default:
		return "unknown"
	}
}

// Phase is one mission segment: a duration and the flux multipliers it
// applies over the profile's base environment.
type Phase struct {
	Kind     PhaseKind
	Duration time.Duration
	// SEU, MBU and SEL scale the base environment's SEUPerDay, MBUFrac
	// and SELPerYear for the phase's span.
	SEU float64
	MBU float64
	SEL float64
}

// Quiet reports whether the phase is at or below the baseline climate —
// the spans where an adaptive controller should be earning its keep by
// relaxing protection.
func (p Phase) Quiet() bool { return p.SEU <= 1 && p.SEL <= 1 }

// NewPhase returns a phase of the given kind and duration carrying the
// kind's catalog multipliers (MISSIONS.md). The values trace to the
// spread the paper's sources report: SAA passes raise upset rates by
// one to two orders of magnitude over quiet LEO, solar events by two
// to three, and Jupiter's belts sit near the top of the scale.
func NewPhase(k PhaseKind, dur time.Duration) Phase {
	p := Phase{Kind: k, Duration: dur, SEU: 1, MBU: 1, SEL: 1}
	switch k {
	case PhaseSAA:
		p.SEU, p.MBU, p.SEL = 30, 1.5, 20
	case PhaseGEO:
		p.SEU, p.MBU, p.SEL = 3, 1, 2.5
	case PhaseMarsTransit:
		p.SEU, p.MBU, p.SEL = 4, 1.25, 3
	case PhaseJupiterFlyby:
		p.SEU, p.MBU, p.SEL = 40, 2, 25
	case PhaseSolarStorm:
		p.SEU, p.MBU, p.SEL = 100, 2.5, 60
	}
	return p
}

// Profile is a deterministic mission-phase schedule over a base
// radiation environment. Phases are contiguous, starting at t=0.
type Profile struct {
	Name  string
	Base  fault.Environment
	Phase []Phase
}

// Validate rejects profiles the generator cannot schedule.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("mission: profile needs a name")
	}
	if len(p.Phase) == 0 {
		return fmt.Errorf("mission: profile %q has no phases", p.Name)
	}
	for i, ph := range p.Phase {
		if ph.Kind < 0 || int(ph.Kind) >= numPhaseKinds {
			return fmt.Errorf("mission: profile %q phase %d has unknown kind %d", p.Name, i, int(ph.Kind))
		}
		if ph.Duration <= 0 {
			return fmt.Errorf("mission: profile %q phase %d (%v) needs a positive duration", p.Name, i, ph.Kind)
		}
		if ph.SEU < 0 || ph.MBU < 0 || ph.SEL < 0 {
			return fmt.Errorf("mission: profile %q phase %d (%v) has a negative multiplier", p.Name, i, ph.Kind)
		}
	}
	return nil
}

// Total returns the mission length: the sum of phase durations.
func (p Profile) Total() time.Duration {
	var t time.Duration
	for _, ph := range p.Phase {
		t += ph.Duration
	}
	return t
}

// PhaseAt returns the phase covering mission time t and its index.
// Phases are half-open [start, start+Duration); t at or past the end
// of the mission reports the final phase.
func (p Profile) PhaseAt(t time.Duration) (Phase, int) {
	var start time.Duration
	for i, ph := range p.Phase {
		start += ph.Duration
		if t < start {
			return ph, i
		}
	}
	return p.Phase[len(p.Phase)-1], len(p.Phase) - 1
}

// Windows renders the profile as the piecewise rate schedule
// fault.SchedulePiecewise consumes: one contiguous half-open window per
// phase.
func (p Profile) Windows() []fault.RateWindow {
	out := make([]fault.RateWindow, len(p.Phase))
	var start time.Duration
	for i, ph := range p.Phase {
		out[i] = fault.RateWindow{
			Start:    start,
			Duration: ph.Duration,
			SEU:      ph.SEU,
			MBU:      ph.MBU,
			SEL:      ph.SEL,
		}
		start += ph.Duration
	}
	return out
}

// Schedule turns the profile into a seeded radiation event stream: the
// profile's generator. Deterministic per rng seed.
func (p Profile) Schedule(rng *rand.Rand) ([]fault.Event, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.Base.SchedulePiecewise(rng, p.Windows())
}

// Boosted returns a copy of the profile with the base environment's
// event rates multiplied, the same compression trick the mission
// campaign uses so short simulated flights see meaningful event counts
// (SEUs get a tenth of the boost — they are already frequent).
func (p Profile) Boosted(rateBoost float64) Profile {
	p.Base.SELPerYear *= rateBoost
	p.Base.SEUPerDay *= rateBoost / 10
	return p
}

// Preset profiles: the catalog MISSIONS.md documents. Durations are
// campaign-scale (hours, not months) — the sweeps compress real mission
// time the same way the Monte-Carlo missions do.

// LEOWithSAA is a low-Earth orbit with two SAA crossings per simulated
// flight: quiet cruise, a crossing, recovery, a second crossing, then
// cruise home.
func LEOWithSAA() Profile {
	return Profile{
		Name: "leo-saa",
		Base: fault.LEO,
		Phase: []Phase{
			NewPhase(PhaseLEO, 30*time.Minute),
			NewPhase(PhaseSAA, 10*time.Minute),
			NewPhase(PhaseLEO, 25*time.Minute),
			NewPhase(PhaseSAA, 10*time.Minute),
			NewPhase(PhaseLEO, 45*time.Minute),
		},
	}
}

// GEOTransfer is a transfer from LEO up to geostationary orbit: the
// belts are crossed once (modelled as an SAA-grade span), then the
// mission settles into GEO cruise.
func GEOTransfer() Profile {
	return Profile{
		Name: "geo-transfer",
		Base: fault.LEO,
		Phase: []Phase{
			NewPhase(PhaseLEO, 20*time.Minute),
			NewPhase(PhaseSAA, 15*time.Minute),
			NewPhase(PhaseGEO, 85*time.Minute),
		},
	}
}

// MarsCruise is interplanetary transit over a deep-space baseline with
// a mid-cruise solar-storm window.
func MarsCruise() Profile {
	return Profile{
		Name: "mars-cruise",
		Base: fault.DeepSpace,
		Phase: []Phase{
			NewPhase(PhaseMarsTransit, 40*time.Minute),
			NewPhase(PhaseSolarStorm, 15*time.Minute),
			NewPhase(PhaseMarsTransit, 65*time.Minute),
		},
	}
}

// JupiterFlyby is an outer-planets trajectory: long quiet cruise, a
// belt passage, quiet cruise out.
func JupiterFlyby() Profile {
	return Profile{
		Name: "jupiter-flyby",
		Base: fault.DeepSpace,
		Phase: []Phase{
			NewPhase(PhaseMarsTransit, 45*time.Minute),
			NewPhase(PhaseJupiterFlyby, 12*time.Minute),
			NewPhase(PhaseMarsTransit, 63*time.Minute),
		},
	}
}

// SolarStormDrill is the controller's stress profile: quiet LEO cruise
// interrupted by one long storm window.
func SolarStormDrill() Profile {
	return Profile{
		Name: "solar-storm-drill",
		Base: fault.LEO,
		Phase: []Phase{
			NewPhase(PhaseLEO, 40*time.Minute),
			NewPhase(PhaseSolarStorm, 20*time.Minute),
			NewPhase(PhaseLEO, 60*time.Minute),
		},
	}
}

// Catalog returns the preset profiles, in sweep order.
func Catalog() []Profile {
	return []Profile{LEOWithSAA(), GEOTransfer(), MarsCruise(), JupiterFlyby(), SolarStormDrill()}
}
