package mission

import (
	"math/rand"
	"testing"
	"time"

	"radshield/internal/fault"
)

// FuzzProfileSchedule hammers the profile→event-stream generator with
// arbitrary phase shapes: whatever the fuzzer builds, a profile that
// passes Validate must schedule without error, produce a sorted
// timeline, keep every event inside the mission span and inside a
// phase whose multipliers are non-zero, and replay byte-identically
// for the same seed.
func FuzzProfileSchedule(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(30), uint8(1), uint16(10), uint8(5), uint16(60), 400.0)
	f.Add(int64(7), uint8(5), uint16(20), uint8(2), uint16(90), uint8(0), uint16(45), 2000.0)
	f.Add(int64(42), uint8(4), uint16(1), uint8(4), uint16(1), uint8(4), uint16(1), 1.0)
	f.Add(int64(-3), uint8(3), uint16(600), uint8(1), uint16(0), uint8(2), uint16(15), 0.5)

	f.Fuzz(func(t *testing.T, seed int64, k0 uint8, m0 uint16, k1 uint8, m1 uint16, k2 uint8, m2 uint16, boost float64) {
		mk := func(k uint8, mins uint16) Phase {
			return NewPhase(PhaseKind(int(k)%numPhaseKinds), time.Duration(mins)*time.Minute)
		}
		p := Profile{
			Name:  "fuzz",
			Base:  fault.LEO,
			Phase: []Phase{mk(k0, m0), mk(k1, m1), mk(k2, m2)},
		}
		if boost > 0 && boost < 1e6 {
			p = p.Boosted(boost)
		}
		if err := p.Validate(); err != nil {
			// Zero-duration phases are the only invalid shape this
			// fuzzer can build; Schedule must refuse them, not draw.
			if _, serr := p.Schedule(rand.New(rand.NewSource(seed))); serr == nil {
				t.Fatal("Schedule accepted a profile Validate rejected")
			}
			return
		}
		events, err := p.Schedule(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("valid profile failed to schedule: %v", err)
		}
		total := p.Total()
		for i, ev := range events {
			if i > 0 && ev.T < events[i-1].T {
				t.Fatalf("events out of order at %d", i)
			}
			if ev.T < 0 || ev.T >= total {
				t.Fatalf("event %d at %v outside mission [0, %v)", i, ev.T, total)
			}
			ph, _ := p.PhaseAt(ev.T)
			switch ev.Kind {
			case fault.SEL:
				if ph.SEL == 0 {
					t.Fatalf("SEL at %v inside a zero-SEL phase", ev.T)
				}
				if ev.Amps <= 0 {
					t.Fatalf("SEL at %v with non-positive amps %v", ev.T, ev.Amps)
				}
			default:
				if ph.SEU == 0 {
					t.Fatalf("%v at %v inside a zero-SEU phase", ev.Kind, ev.T)
				}
			}
		}
		again, err := p.Schedule(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(events) {
			t.Fatalf("same seed drew %d then %d events", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("same seed diverged at event %d", i)
			}
		}
	})
}
