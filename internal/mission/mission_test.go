package mission

import (
	"math/rand"
	"testing"
	"time"

	"radshield/internal/fault"
	"radshield/internal/telemetry"
)

func TestCatalogProfilesValidate(t *testing.T) {
	for _, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Total() <= 0 {
			t.Errorf("%s: non-positive total %v", p.Name, p.Total())
		}
		ws := p.Windows()
		if len(ws) != len(p.Phase) {
			t.Fatalf("%s: %d windows for %d phases", p.Name, len(ws), len(p.Phase))
		}
		var start time.Duration
		for i, w := range ws {
			if w.Start != start {
				t.Errorf("%s: window %d starts at %v, want contiguous %v", p.Name, i, w.Start, start)
			}
			start = w.End()
		}
		if start != p.Total() {
			t.Errorf("%s: windows cover %v, total is %v", p.Name, start, p.Total())
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	for i, p := range []Profile{
		{Base: fault.LEO, Phase: []Phase{NewPhase(PhaseLEO, time.Hour)}},
		{Name: "empty", Base: fault.LEO},
		{Name: "zero-dur", Base: fault.LEO, Phase: []Phase{{Kind: PhaseLEO, SEU: 1, MBU: 1, SEL: 1}}},
		{Name: "bad-kind", Base: fault.LEO, Phase: []Phase{{Kind: PhaseKind(99), Duration: time.Hour, SEU: 1, MBU: 1, SEL: 1}}},
		{Name: "neg-mult", Base: fault.LEO, Phase: []Phase{{Kind: PhaseLEO, Duration: time.Hour, SEU: -1, MBU: 1, SEL: 1}}},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestPhaseAtCoversWholeMission(t *testing.T) {
	p := LEOWithSAA()
	var start time.Duration
	for i, ph := range p.Phase {
		if got, idx := p.PhaseAt(start); idx != i || got.Kind != ph.Kind {
			t.Errorf("PhaseAt(%v) = phase %d (%v), want %d (%v)", start, idx, got.Kind, i, ph.Kind)
		}
		if got, idx := p.PhaseAt(start + ph.Duration - time.Nanosecond); idx != i {
			t.Errorf("PhaseAt(end-1ns of phase %d) = %d (%v)", i, idx, got.Kind)
		}
		start += ph.Duration
	}
	// At and past the end: the final phase.
	if _, idx := p.PhaseAt(p.Total() + time.Hour); idx != len(p.Phase)-1 {
		t.Errorf("PhaseAt past the end = %d, want final phase", idx)
	}
}

func TestScheduleDeterministicAndPhaseWeighted(t *testing.T) {
	p := SolarStormDrill().Boosted(2000)
	a, err := p.Schedule(rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Schedule(rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed drew %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}

	// The storm phase must be visibly hotter than quiet cruise: compare
	// per-minute event densities across a handful of seeds.
	var quiet, storm float64
	stormStart, stormEnd := 40*time.Minute, 60*time.Minute
	quietLen := (p.Total() - 20*time.Minute).Minutes()
	for seed := int64(0); seed < 10; seed++ {
		events, err := p.Schedule(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if ev.T >= stormStart && ev.T < stormEnd {
				storm++
			} else {
				quiet++
			}
		}
	}
	stormRate := storm / 20
	quietRate := quiet / quietLen
	if stormRate < 10*quietRate {
		t.Errorf("storm density %.2f/min not ≫ quiet %.2f/min — multipliers not applied?", stormRate, quietRate)
	}
}

func TestTrackerEmitsPhaseTransitions(t *testing.T) {
	reg := telemetry.NewRegistry(256)
	p := LEOWithSAA()
	tr := NewTracker(p, NewInstruments(reg))

	if ph := tr.Phase(); ph.Kind != PhaseLEO {
		t.Fatalf("initial phase %v, want leo_cruise", ph.Kind)
	}
	// Step through the whole mission at one-minute cadence.
	transitions := 0
	for tm := time.Duration(0); tm < p.Total(); tm += time.Minute {
		if _, changed := tr.Observe(tm); changed {
			transitions++
		}
	}
	if want := len(p.Phase) - 1; transitions != want {
		t.Errorf("saw %d transitions, want %d", transitions, want)
	}
	var phaseEvents int
	for _, ev := range reg.Events() {
		if ev.Kind == telemetry.KindMissionPhase {
			phaseEvents++
		}
	}
	if phaseEvents != len(p.Phase)-1 {
		t.Errorf("emitted %d mission_phase events, want %d", phaseEvents, len(p.Phase)-1)
	}

	// A big step across several boundaries still logs every crossing.
	reg2 := telemetry.NewRegistry(256)
	tr2 := NewTracker(p, NewInstruments(reg2))
	if _, changed := tr2.Observe(p.Total() - time.Minute); !changed {
		t.Fatal("jump to final phase reported no change")
	}
	var jumped int
	for _, ev := range reg2.Events() {
		if ev.Kind == telemetry.KindMissionPhase {
			jumped++
		}
	}
	if jumped != len(p.Phase)-1 {
		t.Errorf("jump emitted %d transition events, want the full history %d", jumped, len(p.Phase)-1)
	}
}

func TestQuietClassification(t *testing.T) {
	if !NewPhase(PhaseLEO, time.Hour).Quiet() {
		t.Error("LEO cruise should be quiet")
	}
	for _, k := range []PhaseKind{PhaseSAA, PhaseGEO, PhaseMarsTransit, PhaseJupiterFlyby, PhaseSolarStorm} {
		if NewPhase(k, time.Hour).Quiet() {
			t.Errorf("%v should not be quiet", k)
		}
	}
}
