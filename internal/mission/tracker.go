package mission

import (
	"time"

	"radshield/internal/telemetry"
)

// Tracker walks a profile on the campaign simclock and reports phase
// transitions. Feed it monotonically non-decreasing sim times (one call
// per telemetry sample is the intended cadence); it answers with the
// current phase and emits mission_phase telemetry on every boundary.
type Tracker struct {
	p   Profile
	idx int
	ins *Instruments
}

// Instruments bundles the mission layer's metric handles. A nil
// *Instruments disables instrumentation; TELEMETRY.md documents every
// name.
type Instruments struct {
	reg *telemetry.Registry

	// PhaseIdx mirrors the tracker's current phase index.
	PhaseIdx *telemetry.Gauge
	// Transitions counts phase boundaries crossed.
	Transitions *telemetry.Counter
}

// NewInstruments registers the mission metric set on reg. A nil
// registry yields nil (instrumentation disabled).
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		reg:         reg,
		PhaseIdx:    reg.Gauge("mission_phase_idx", "phase"),
		Transitions: reg.Counter("mission_phase_transitions_total", "transitions"),
	}
}

// phaseChange records one boundary crossing.
func (ins *Instruments) phaseChange(t time.Duration, idx int, from, to Phase) {
	if ins == nil {
		return
	}
	ins.PhaseIdx.Set(float64(idx))
	ins.Transitions.Inc()
	ins.reg.Emit(telemetry.Event{
		T:    t,
		Kind: telemetry.KindMissionPhase,
		Fields: map[string]any{
			"from":  from.Kind.String(),
			"to":    to.Kind.String(),
			"phase": idx,
			"seu_x": to.SEU,
			"sel_x": to.SEL,
		},
	})
}

// NewTracker returns a tracker positioned at the profile's first phase.
// The profile must already be validated.
func NewTracker(p Profile, ins *Instruments) *Tracker {
	if ins != nil {
		ins.PhaseIdx.Set(0)
	}
	return &Tracker{p: p, ins: ins}
}

// Observe advances the tracker to sim time t and returns the covering
// phase plus whether a boundary was crossed since the previous call.
// Crossing several boundaries in one step emits one event per phase
// skipped, keeping the telemetry log a complete transition history.
func (tr *Tracker) Observe(t time.Duration) (Phase, bool) {
	_, idx := tr.p.PhaseAt(t)
	changed := idx != tr.idx
	for idx > tr.idx {
		from := tr.p.Phase[tr.idx]
		tr.idx++
		tr.ins.phaseChange(t, tr.idx, from, tr.p.Phase[tr.idx])
	}
	return tr.p.Phase[tr.idx], changed
}

// Phase returns the tracker's current phase without advancing it.
func (tr *Tracker) Phase() Phase { return tr.p.Phase[tr.idx] }

// Index returns the current phase index.
func (tr *Tracker) Index() int { return tr.idx }
