// Package mission models flight profiles as typed radiation-climate
// phases over the campaign simclock.
//
// The paper's evaluation injects faults at fixed per-arm rates, but a
// real orbit's flux is time-varying: South-Atlantic-Anomaly crossings,
// belt passages and solar-storm windows swing SEU/SEL rates by orders
// of magnitude within one mission. A Profile strings typed Phases —
// each a duration plus flux multipliers over a base fault.Environment —
// into a deterministic schedule; Profile.Schedule turns it into a
// seeded fault.Event stream via fault.SchedulePiecewise, and a Tracker
// walks the profile at sample cadence, emitting mission_phase telemetry
// at every boundary so downstream consumers (the adaptive controller in
// internal/adapt, the downlink housekeeping stream) can follow the
// climate.
//
// Everything is deterministic: phases are data, the generator consumes
// one seeded *rand.Rand sequentially, and the tracker runs on sim time
// only. MISSIONS.md documents the phase catalog and the preset
// profiles.
package mission
