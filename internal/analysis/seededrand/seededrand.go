// Package seededrand implements the radlint analyzer that forbids the
// process-global math/rand generator.
//
// Radshield's fault campaigns (SEL schedules, SEU placement, synthetic
// workload data) replay bit-identically only when every random draw
// comes from a *rand.Rand seeded from the experiment config. The
// global generator breaks that two ways: rand.Seed is process-wide
// state that one experiment can clobber for another, and unseeded
// global draws differ across runs. The rule therefore bans every
// package-level math/rand (and math/rand/v2) function — rand.Intn,
// rand.Float64, rand.Seed, rand.Perm, ... — while leaving the
// constructors (rand.New, rand.NewSource, rand.NewZipf) and all
// *rand.Rand methods free.
package seededrand

import (
	"go/ast"

	"radshield/internal/analysis/radlint"
)

// Analyzer flags uses of the global math/rand generator.
var Analyzer = &radlint.Analyzer{
	Name: "seededrand",
	Doc: "forbid global math/rand top-level calls (rand.Intn, rand.Seed, ...): " +
		"fault campaigns must draw from an injected seeded *rand.Rand",
	Run: run,
}

func run(pass *radlint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; radlint.IsGlobalRandFunc(obj) {
				pass.Reportf(id.Pos(),
					"rand.%s draws from the process-global generator; inject a seeded *rand.Rand so campaigns replay bit-identically",
					id.Name)
			}
			return true
		})
	}
	return nil
}
