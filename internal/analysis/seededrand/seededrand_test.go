package seededrand_test

import (
	"testing"

	"radshield/internal/analysis/radlint/radlinttest"
	"radshield/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), seededrand.Analyzer,
		"radshield/internal/guarddemo",
		"radshield/internal/missiondemo",
		"radshield/internal/randdemo",
	)
}
