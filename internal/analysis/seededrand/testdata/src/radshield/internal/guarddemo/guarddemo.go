// Package guarddemo is a seededrand fixture shaped like the guard
// watchdog: retry backoff must be deterministic. Jitter drawn from the
// process-global generator makes every campaign run unrepeatable.
package guarddemo

import (
	"math/rand"
	"time"
)

// JitteredBackoffWrong spreads retries with global-generator jitter —
// flagged: two runs of the same campaign retry at different times.
func JitteredBackoffWrong(base time.Duration) time.Duration {
	return base + time.Duration(rand.Int63n(int64(base))) // want `rand\.Int63n draws from the process-global generator`
}

// DeterministicBackoff is the sanctioned pattern: pure arithmetic on
// the attempt number, identical on every run.
func DeterministicBackoff(base time.Duration, attempt int) time.Duration {
	return base << attempt
}

// SeededJitter shows the acceptable alternative when spread is really
// needed: an injected seeded generator, owned by the caller.
func SeededJitter(rng *rand.Rand, base time.Duration) time.Duration {
	return base + time.Duration(rng.Int63n(int64(base)))
}
