// Test files are exempt: quick ad-hoc randomness in tests is fine. No
// want annotations.
package randdemo

import (
	"math/rand"
	"testing"
)

func TestGlobalRandIsFineInTests(t *testing.T) {
	if rand.Intn(10) > 9 {
		t.Fatal("impossible")
	}
}
