// Package randdemo is a seededrand fixture mixing global-generator
// draws (flagged) with injected seeded generators (fine).
package randdemo

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// GlobalDraws all hit the process-global generator.
func GlobalDraws() int {
	rand.Seed(42)       // want `rand\.Seed draws from the process-global generator`
	x := rand.Intn(10)  // want `rand\.Intn draws from the process-global generator`
	_ = rand.Float64()  // want `rand\.Float64 draws from the process-global generator`
	_ = rand.Perm(4)    // want `rand\.Perm draws from the process-global generator`
	_ = randv2.IntN(10) // want `rand\.IntN draws from the process-global generator`
	return x
}

// AsValue passes the global function around without calling it.
func AsValue() func() float64 {
	return rand.Float64 // want `rand\.Float64 draws from the process-global generator`
}

// Injected is the sanctioned pattern: construct a seeded generator and
// draw from it. Constructors and methods are never flagged.
func Injected(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Float64()
	_ = rng.Perm(4)
	return rng.Intn(10)
}

// Allowed shows the escape hatch.
func Allowed() int {
	//radlint:allow seededrand fixture: demo of a justified suppression
	return rand.Intn(10)
}
