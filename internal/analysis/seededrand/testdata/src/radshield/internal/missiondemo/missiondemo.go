// Package missiondemo is a seededrand fixture shaped like the mission
// layer's profile→event-stream generator: scheduling radiation events
// from the process-global generator would make every campaign arm
// irreproducible, so the draws must come from an injected seeded
// generator.
package missiondemo

import (
	"math/rand"
	"time"
)

// Event is a scheduled radiation event.
type Event struct {
	T    time.Duration
	Amps float64
}

// Window is one phase of piecewise-constant flux.
type Window struct {
	Duration time.Duration
	RatePerH float64
}

// GlobalSchedule draws arrival times from the global generator — every
// call sees a different mission. Flagged at each draw.
func GlobalSchedule(phases []Window) []Event {
	var out []Event
	var start time.Duration
	for _, w := range phases {
		n := int(w.RatePerH * w.Duration.Hours())
		for i := 0; i < n; i++ {
			out = append(out, Event{
				T:    start + time.Duration(rand.Int63n(int64(w.Duration))), // want `rand\.Int63n draws from the process-global generator`
				Amps: 0.07 + 0.18*rand.Float64(),                            // want `rand\.Float64 draws from the process-global generator`
			})
		}
		start += w.Duration
	}
	return out
}

// SeededSchedule is the sanctioned generator shape: the caller injects
// the seeded source, so the same (profile, seed) always yields the
// same event stream. No findings.
func SeededSchedule(rng *rand.Rand, phases []Window) []Event {
	var out []Event
	var start time.Duration
	for _, w := range phases {
		n := int(w.RatePerH * w.Duration.Hours())
		for i := 0; i < n; i++ {
			out = append(out, Event{
				T:    start + time.Duration(rng.Int63n(int64(w.Duration))),
				Amps: 0.07 + 0.18*rng.Float64(),
			})
		}
		start += w.Duration
	}
	return out
}
