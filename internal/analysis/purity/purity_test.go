package purity

import (
	"go/ast"
	"go/token"
	"testing"
)

func TestTaintString(t *testing.T) {
	cases := []struct {
		taint Taint
		want  string
	}{
		{0, "pure"},
		{WallClock, "wall-clock read"},
		{GlobalRand, "global randomness"},
		{WallClock | GlobalWrite, "wall-clock read, write of package-level state"},
		{CapturedWrite, "write to captured variable"},
	}
	for _, c := range cases {
		if got := c.taint.String(); got != c.want {
			t.Errorf("Taint(%b).String() = %q, want %q", c.taint, got, c.want)
		}
	}
}

func TestCauseDescribe(t *testing.T) {
	direct := Cause{Taint: WallClock, What: "time.Now"}
	if got, want := direct.Describe(), "time.Now (wall-clock read)"; got != want {
		t.Errorf("direct cause: %q, want %q", got, want)
	}
	chained := Cause{Taint: GlobalWrite, What: "package-level variable leaf.runs", Chain: []string{"mid.Count", "leaf.Bump"}}
	want := "package-level variable leaf.runs (write of package-level state) via mid.Count → leaf.Bump"
	if got := chained.Describe(); got != want {
		t.Errorf("chained cause: %q, want %q", got, want)
	}
}

func TestSummaryAddDedupsAndBounds(t *testing.T) {
	s := &Summary{}
	for i := 0; i < 3; i++ {
		s.add(Cause{Taint: WallClock, What: "time.Now"})
	}
	if len(s.Causes) != 1 {
		t.Errorf("duplicate causes recorded: %d", len(s.Causes))
	}
	for i := 0; i < 2*maxCauses; i++ {
		s.add(Cause{Taint: GlobalRead, What: "package-level variable p.v" + string(rune('a'+i))})
	}
	if len(s.Causes) > maxCauses {
		t.Errorf("causes unbounded: %d > %d", len(s.Causes), maxCauses)
	}
	if s.Taints&(WallClock|GlobalRead) != WallClock|GlobalRead {
		t.Errorf("taint bits lost past the cause bound: %v", s.Taints)
	}
	if !s.Pure(GlobalRand) || s.Pure(WallClock) {
		t.Errorf("Pure mask logic wrong: taints %v", s.Taints)
	}
}

func TestPureDirective(t *testing.T) {
	cg := func(lines ...string) *ast.CommentGroup {
		g := &ast.CommentGroup{}
		for _, l := range lines {
			g.List = append(g.List, &ast.Comment{Slash: token.Pos(1), Text: l})
		}
		return g
	}
	cases := []struct {
		name string
		cg   *ast.CommentGroup
		want string
	}{
		{"nil group", nil, ""},
		{"plain doc", cg("// just a comment"), ""},
		{"with reason", cg("// doc line", "//radlint:pure reuse is output-invariant"), "reuse is output-invariant"},
		{"bare directive is inert", cg("//radlint:pure"), ""},
		{"whitespace-only reason is inert", cg("//radlint:pure   "), ""},
		{"prefix collision ignored", cg("//radlint:purely decorative"), ""},
	}
	for _, c := range cases {
		if got := pureDirective(c.cg); got != c.want {
			t.Errorf("%s: pureDirective = %q, want %q", c.name, got, c.want)
		}
	}
}
