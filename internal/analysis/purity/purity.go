// Package purity is radlint's whole-program determinism engine: it
// computes per-function purity summaries — does this function,
// transitively, read the wall clock, draw from the process-global
// random generator, or touch mutable package-level state? — and
// composes them across package boundaries.
//
// The engine is the shared substrate under the emrpurity and armpurity
// analyzers. Summaries are keyed by the type checker's canonical
// function names (types.Func.FullName), so a function observed through
// compiled export data in one package resolves to the summary computed
// from its source in another: the analysis no longer stops at the
// package boundary the way the original emrpurity taint walk did.
//
// # Fact model
//
// Every function in the analysis universe (each package whose source
// was loaded this invocation — for `radlint ./...` that is the whole
// module) gets a Summary: a bitset of Taints plus bounded Causes, each
// carrying the call chain from the summarized function down to the
// primitive nondeterminism. Callees outside the universe (standard
// library, export-data-only dependencies) are assumed deterministic
// unless they are one of the banned primitives (wall clock, global
// rand) — the same contract the per-package analyzers always applied,
// now stated in one place.
//
// # Mutable package-level state
//
// Not every package-level var is state. A var that is written only at
// initialization (its declaration or a func init), never assigned,
// never incremented, never address-taken, and never the receiver of a
// pointer method is configuration: reading it cannot distinguish two
// runs. The engine computes a per-package mutability index with exactly
// that rule, plus the two conventional exemptions emrpurity always had
// (error sentinels, zero-field stateless values like binary.BigEndian).
// Everything else — assigned globals, counters, pools, registries, any
// var whose address escapes — taints its readers and writers.
//
// # Soundness boundary
//
// The engine follows static call edges only: dynamic dispatch through
// interfaces and calls of function-typed values are not resolved, and
// element mutation through a global slice/map that was passed as an
// argument is not tracked. Those limits are deliberate — they keep the
// analysis fast and its findings actionable — and they are documented
// as part of the determinism contract in LINTING.md.
package purity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"radshield/internal/analysis/radlint"
)

// Taint is a bitset of nondeterminism classes a function can carry.
type Taint uint8

const (
	// WallClock: reads the host clock (time.Now, time.Since, timers).
	WallClock Taint = 1 << iota
	// GlobalRand: draws from the process-global math/rand generator.
	GlobalRand
	// GlobalRead: reads mutable package-level state.
	GlobalRead
	// GlobalWrite: writes package-level state (assignment, ++/--,
	// address-taking, pointer-receiver method call).
	GlobalWrite
	// CapturedWrite: writes a variable captured from an enclosing
	// function. Only reported when a closure is summarized directly
	// (a job literal); a named function has no enclosing scope.
	CapturedWrite
)

// Deterministic is the taint set that must be empty for a campaign arm
// to be a pure function of (config, seed).
const Deterministic = WallClock | GlobalRand | GlobalRead | GlobalWrite | CapturedWrite

func (t Taint) String() string {
	var parts []string
	if t&WallClock != 0 {
		parts = append(parts, "wall-clock read")
	}
	if t&GlobalRand != 0 {
		parts = append(parts, "global randomness")
	}
	if t&GlobalRead != 0 {
		parts = append(parts, "read of mutable package-level state")
	}
	if t&GlobalWrite != 0 {
		parts = append(parts, "write of package-level state")
	}
	if t&CapturedWrite != 0 {
		parts = append(parts, "write to captured variable")
	}
	if len(parts) == 0 {
		return "pure"
	}
	return strings.Join(parts, ", ")
}

// A Cause is one concrete reason a taint bit is set.
type Cause struct {
	// Taint is the single bit this cause explains.
	Taint Taint
	// Pos is where the taint enters the summarized function: the
	// offending expression for a direct cause, the call site for a
	// propagated one.
	Pos token.Pos
	// What names the primitive nondeterminism, e.g. "time.Now" or
	// "package-level variable emr.seedCounter".
	What string
	// Chain is the call path from the summarized function down to the
	// function containing the primitive; empty for direct causes.
	Chain []string
}

// Describe renders the cause for a diagnostic: "time.Now (wall-clock
// read) via flyGuardArm → machine.New".
func (c Cause) Describe() string {
	s := c.What + " (" + c.Taint.String() + ")"
	if len(c.Chain) > 0 {
		s += " via " + strings.Join(c.Chain, " → ")
	}
	return s
}

// maxCauses bounds the causes recorded per summary; beyond it only the
// taint bits accumulate. Enough to fix findings one sweep at a time
// without unbounded diagnostics.
const maxCauses = 8

// A Summary is the purity fact for one function.
type Summary struct {
	Taints Taint
	Causes []Cause
}

// Pure reports whether the function carries none of the given taints.
func (s *Summary) Pure(mask Taint) bool { return s.Taints&mask == 0 }

// CausesFor returns the recorded causes matching the mask.
func (s *Summary) CausesFor(mask Taint) []Cause {
	var out []Cause
	for _, c := range s.Causes {
		if c.Taint&mask != 0 {
			out = append(out, c)
		}
	}
	return out
}

func (s *Summary) add(c Cause) {
	s.Taints |= c.Taint
	if len(s.Causes) >= maxCauses {
		return
	}
	for _, have := range s.Causes {
		if have.Taint == c.Taint && have.What == c.What {
			return
		}
	}
	s.Causes = append(s.Causes, c)
}

// merge propagates a callee summary into caller at the given call site.
func (s *Summary) merge(callee *Summary, calleeName string, site token.Pos) {
	for _, c := range callee.Causes {
		s.add(Cause{
			Taint: c.Taint,
			Pos:   site,
			What:  c.What,
			Chain: append([]string{calleeName}, c.Chain...),
		})
	}
	s.Taints |= callee.Taints
}

// declSite locates one function's source.
type declSite struct {
	pkg  *radlint.Package
	decl *ast.FuncDecl
}

// Facts is the whole-program fact store for one radlint invocation.
type Facts struct {
	pkgs  map[string]*radlint.Package // import path → source package
	decls map[string]declSite         // types.Func.FullName → source

	sums     map[string]*Summary // memoized per function
	inflight map[string]bool     // recursion guard

	writes map[string]map[string]bool // pkg path → var name → mutated

	// pure holds //radlint:pure declarations: func FullName or
	// "pkgpath.varname" → the written-down justification. A declared
	// function summarizes as deterministic; a declared var's reads and
	// writes are exempt. The directive is inert without a reason.
	pure map[string]string
}

// sharedKey memoizes the fact store across analyzers and packages.
const sharedKey = "purity/facts"

// Of returns the invocation-wide fact store, building it on first use.
// Every analyzer and every package pass shares one store, so the
// whole-program summary work is paid once per radlint run.
func Of(pass *radlint.Pass) *Facts {
	v, _ := pass.Shared.Memo(sharedKey, func() (any, error) {
		return newFacts(pass.Universe), nil
	})
	return v.(*Facts)
}

func newFacts(universe []*radlint.Package) *Facts {
	f := &Facts{
		pkgs:     map[string]*radlint.Package{},
		decls:    map[string]declSite{},
		sums:     map[string]*Summary{},
		inflight: map[string]bool{},
		writes:   map[string]map[string]bool{},
		pure:     map[string]string{},
	}
	for _, pkg := range universe {
		f.pkgs[pkg.Path] = pkg
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					if fn, ok := pkg.TypesInfo.Defs[d.Name].(*types.Func); ok {
						f.decls[fn.FullName()] = declSite{pkg, d}
						if reason := pureDirective(d.Doc); reason != "" {
							f.pure[fn.FullName()] = reason
						}
					}
				case *ast.GenDecl:
					if d.Tok != token.VAR {
						continue
					}
					f.recordPureVars(pkg, d)
				}
			}
		}
	}
	return f
}

// recordPureVars indexes //radlint:pure declarations on package-level
// vars: the directive may sit in the spec's doc, its trailing comment,
// or the enclosing var block's doc.
func (f *Facts) recordPureVars(pkg *radlint.Package, gd *ast.GenDecl) {
	blockReason := pureDirective(gd.Doc)
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		reason := pureDirective(vs.Doc)
		if reason == "" {
			reason = pureDirective(vs.Comment)
		}
		if reason == "" {
			reason = blockReason
		}
		if reason == "" {
			continue
		}
		for _, name := range vs.Names {
			if v, ok := pkg.TypesInfo.Defs[name].(*types.Var); ok {
				f.pure[pkg.Path+"."+v.Name()] = reason
			}
		}
	}
}

// pureDirective extracts the justification from a //radlint:pure
// comment in cg, or "" when absent. A bare directive with no reason is
// deliberately inert: the declaration IS the written argument.
func pureDirective(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//radlint:pure")
		if !ok {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. //radlint:purex — not ours
		}
		return strings.TrimSpace(rest)
	}
	return ""
}

// PureReason returns the //radlint:pure justification recorded for a
// function, or "" when it carries none.
func (f *Facts) PureReason(fn *types.Func) string {
	return f.pure[fn.FullName()]
}

// HasSource reports whether fn's body is in the analysis universe.
func (f *Facts) HasSource(fn *types.Func) bool {
	_, ok := f.decls[fn.FullName()]
	return ok
}

// Function returns the purity summary for a named function or method.
// Functions outside the universe get the out-of-universe contract: pure
// unless they are a banned primitive.
func (f *Facts) Function(fn *types.Func) *Summary {
	if s := f.primitive(fn, fn.Pos()); s != nil {
		return s
	}
	key := fn.FullName()
	if s, ok := f.sums[key]; ok {
		return s
	}
	if _, declared := f.pure[key]; declared {
		// Declared deterministic by a //radlint:pure directive: the
		// justification is written at the declaration, so the body is
		// not summarized.
		s := &Summary{}
		f.sums[key] = s
		return s
	}
	site, ok := f.decls[key]
	if !ok {
		return &Summary{} // out of universe: assumed deterministic
	}
	if f.inflight[key] {
		// Recursion back-edge: the root's own taints are already being
		// collected on its frame, so skipping the edge loses nothing
		// for the root (taint union is idempotent). The intermediate
		// summary is not memoized — see summarize.
		return &Summary{}
	}
	f.inflight[key] = true
	sum, complete := f.summarize(site.pkg, site.decl.Body, site.decl.Type, false)
	delete(f.inflight, key)
	if complete {
		f.sums[key] = sum
	}
	return sum
}

// Expr resolves a function-valued expression — a func literal, a named
// function, or a method value — and returns its summary plus a short
// description for diagnostics. The bool reports whether the expression
// was resolvable; unresolvable values (a function-typed variable, a
// call result) return false and must be handled by caller policy.
func (f *Facts) Expr(pkg *radlint.Package, expr ast.Expr) (*Summary, string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		sum, _ := f.summarize(pkg, e.Body, e.Type, true)
		return sum, "function literal", true
	case *ast.Ident, *ast.SelectorExpr:
		id := identOf(e)
		if fn, ok := pkg.TypesInfo.Uses[id].(*types.Func); ok {
			return f.Function(fn), fn.Name(), true
		}
	}
	return nil, "", false
}

// primitive returns a synthetic summary when fn itself is a banned
// nondeterminism primitive, nil otherwise.
func (f *Facts) primitive(fn *types.Func, pos token.Pos) *Summary {
	if radlint.IsWallClockFunc(fn) {
		s := &Summary{}
		s.add(Cause{Taint: WallClock, Pos: pos, What: "time." + fn.Name()})
		return s
	}
	if radlint.IsGlobalRandFunc(fn) {
		s := &Summary{}
		s.add(Cause{Taint: GlobalRand, Pos: pos, What: "rand." + fn.Name()})
		return s
	}
	return nil
}

// summarize walks one function body. asClosure additionally reports
// writes to variables captured from the enclosing scope. The bool
// result is false when a recursion back-edge was skipped, in which case
// the summary must not be memoized (an outer frame's taints may be
// missing from it).
func (f *Facts) summarize(pkg *radlint.Package, body *ast.BlockStmt, ftype *ast.FuncType, asClosure bool) (*Summary, bool) {
	w := &walker{
		facts:     f,
		pkg:       pkg,
		sum:       &Summary{},
		complete:  true,
		asClosure: asClosure,
		body:      body,
		ftype:     ftype,
	}
	ast.Inspect(body, w.visit)
	return w.sum, w.complete
}

type walker struct {
	facts     *Facts
	pkg       *radlint.Package
	sum       *Summary
	complete  bool
	asClosure bool
	body      *ast.BlockStmt
	ftype     *ast.FuncType

	// writeRoots marks identifiers already reported as write targets so
	// the generic use check does not double-report them as reads.
	writeRoots map[*ast.Ident]bool
}

// local reports whether obj is declared inside the summarized function
// (parameters and named results included).
func (w *walker) local(obj types.Object) bool {
	pos := obj.Pos()
	if w.ftype != nil && w.ftype.Pos() <= pos && pos < w.body.Pos() {
		return true
	}
	return w.body.Pos() <= pos && pos < w.body.End()
}

func (w *walker) visit(n ast.Node) bool {
	info := w.pkg.TypesInfo
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			w.checkWrite(lhs)
		}
	case *ast.IncDecStmt:
		w.checkWrite(n.X)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			w.checkAddr(n.X)
		}
	case *ast.Ident:
		obj := info.Uses[n]
		if obj == nil {
			return true
		}
		switch obj := obj.(type) {
		case *types.Var:
			if w.writeRoots[n] {
				return true
			}
			if isPackageLevel(obj) && !w.facts.exempt(obj) {
				w.sum.add(Cause{Taint: GlobalRead, Pos: n.Pos(), What: "package-level variable " + varName(obj)})
			}
		case *types.Func:
			if s := w.facts.primitive(obj, n.Pos()); s != nil {
				for _, c := range s.Causes {
					w.sum.add(Cause{Taint: c.Taint, Pos: n.Pos(), What: c.What})
				}
				return true
			}
			if w.facts.HasSource(obj) {
				key := obj.FullName()
				if w.facts.inflight[key] {
					w.complete = false // back-edge skipped; do not memoize
					return true
				}
				sub := w.facts.Function(obj)
				if sub.Taints != 0 {
					w.sum.merge(sub, callName(obj), n.Pos())
				}
			}
		}
	}
	return true
}

// checkWrite handles an assignment/inc-dec target: package-level roots
// are GlobalWrite, captured roots are CapturedWrite (closure mode).
func (w *walker) checkWrite(lhs ast.Expr) {
	id := rootIdent(lhs)
	if id == nil {
		return
	}
	v, ok := w.pkg.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if isPackageLevel(v) {
		w.markWriteRoot(id)
		if !w.facts.declaredPure(v) {
			w.sum.add(Cause{Taint: GlobalWrite, Pos: id.Pos(), What: "package-level variable " + varName(v)})
		}
		return
	}
	if w.asClosure && !w.local(v) {
		w.markWriteRoot(id)
		w.sum.add(Cause{Taint: CapturedWrite, Pos: id.Pos(), What: "captured variable " + v.Name()})
	}
}

// checkAddr handles &x: taking the address of a package-level var (or a
// field/element of one) lets it escape into mutable aliasing.
func (w *walker) checkAddr(x ast.Expr) {
	id := rootIdent(x)
	if id == nil {
		return
	}
	if v, ok := w.pkg.TypesInfo.Uses[id].(*types.Var); ok && isPackageLevel(v) && !w.facts.exempt(v) {
		w.markWriteRoot(id)
		w.sum.add(Cause{Taint: GlobalWrite, Pos: id.Pos(), What: "address of package-level variable " + varName(v)})
	}
}

func (w *walker) markWriteRoot(id *ast.Ident) {
	if w.writeRoots == nil {
		w.writeRoots = map[*ast.Ident]bool{}
	}
	w.writeRoots[id] = true
}

// declaredPure reports whether v carries a //radlint:pure directive
// with a written reason.
func (f *Facts) declaredPure(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	_, ok := f.pure[v.Pkg().Path()+"."+v.Name()]
	return ok
}

// exempt reports whether reading package-level var v cannot make two
// runs diverge: error sentinels, zero-field stateless values, vars that
// are provably never mutated after initialization, and vars declared
// observably deterministic by a //radlint:pure directive. The
// declaration covers writes as well — mutating a recycling pool is the
// very behavior the written justification vouches for.
func (f *Facts) exempt(v *types.Var) bool {
	if isErrorSentinel(v) || isStateless(v) || f.declaredPure(v) {
		return true
	}
	return !f.mutated(v)
}

// mutated reports whether v is written, incremented, address-taken, or
// pointer-method-called anywhere in its defining package outside
// initialization. Vars defined outside the universe are assumed
// mutable (their source is not visible).
func (f *Facts) mutated(v *types.Var) bool {
	if v.Pkg() == nil {
		return true
	}
	path := v.Pkg().Path()
	pkg, ok := f.pkgs[path]
	if !ok {
		return true
	}
	set, ok := f.writes[path]
	if !ok {
		set = buildWriteSet(pkg)
		f.writes[path] = set
	}
	return set[v.Name()]
}

// buildWriteSet scans a package's non-test sources for mutations of its
// package-level vars. Writes inside func init are initialization: init
// runs exactly once, before main, in a deterministic order, so a var
// written only there is configuration, not state.
func buildWriteSet(pkg *radlint.Package) map[string]bool {
	set := map[string]bool{}
	info := pkg.TypesInfo
	mark := func(x ast.Expr) {
		id := rootIdent(x)
		if id == nil {
			return
		}
		if v, ok := info.Uses[id].(*types.Var); ok && isPackageLevel(v) && v.Pkg() == pkg.Types {
			set[v.Name()] = true
		}
	}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "init" {
				continue // initialization, not mutation
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						mark(lhs)
					}
				case *ast.IncDecStmt:
					mark(n.X)
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						mark(n.X)
					}
				case *ast.CallExpr:
					// v.M() where M has a pointer receiver implicitly
					// takes &v.
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						break
					}
					selection := info.Selections[sel]
					if selection == nil || selection.Kind() != types.MethodVal {
						break
					}
					if fn, ok := selection.Obj().(*types.Func); ok {
						if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
							if _, ptr := sig.Recv().Type().(*types.Pointer); ptr {
								mark(sel.X)
							}
						}
					}
				}
				return true
			})
		}
	}
	return set
}

// rootIdent unwraps selectors, indexes, stars, and parens down to the
// base identifier of an lvalue-ish expression, or nil.
func rootIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.ParenExpr:
			x = e.X
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.SliceExpr:
			x = e.X
		default:
			return nil
		}
	}
}

func identOf(e ast.Expr) *ast.Ident {
	switch e := e.(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// callName renders a callee for taint chains: pkg-qualified for
// cross-package calls, bare for same-package ones would need caller
// context, so always qualify with the package base name.
func callName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := recvTypeName(fn); recv != "" {
		return fn.Pkg().Name() + "." + recv + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// varName renders a package-level var pkg-qualified for diagnostics.
func varName(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// isPackageLevel reports whether v is declared at some package's scope.
func isPackageLevel(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isErrorSentinel reports whether v is an error-typed package variable
// (io.EOF style), conventionally immutable and safe to compare against.
func isErrorSentinel(v *types.Var) bool {
	return types.Implements(v.Type(), types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

// isStateless reports whether v's type is a zero-field struct: values
// like binary.BigEndian are namespaces for methods, carry no state, and
// cannot make replicas diverge.
func isStateless(v *types.Var) bool {
	s, ok := v.Type().Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}
