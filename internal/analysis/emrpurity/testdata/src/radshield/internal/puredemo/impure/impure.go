// Package impure is an emrpurity fixture dependency: its impurity is
// only visible to cross-package purity facts.
package impure

import "time"

// Stamp appends a wall-clock timestamp — nondeterministic across
// replicas.
func Stamp(b []byte) []byte {
	return append(b, []byte(time.Now().String())...)
}
