// Package puredemo is an emrpurity fixture: job functions handed to
// the EMR replica runner, pure and impure. Findings are reported at
// the site where the job is handed over, with the call chain from the
// job down to the primitive nondeterminism.
package puredemo

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"time"

	"radshield/internal/emr"
	"radshield/internal/puredemo/impure"
)

// hits is mutable package-level state no replica may touch.
var hits int

// errCorrupt is an error sentinel — package-level, but conventionally
// immutable, so jobs may compare against it.
var errCorrupt = errors.New("puredemo: corrupt input")

// xorTable is package-level but written by nothing after its
// declaration: configuration, not state, so jobs may read it.
var xorTable = [4]byte{0x1d, 0x2e, 0x3f, 0x40}

// PureSpec builds a spec whose job touches nothing but its inputs and
// immutable package data.
func PureSpec() emr.Spec {
	return emr.Spec{
		Name: "pure",
		Job: func(inputs [][]byte) ([]byte, error) {
			if len(inputs) == 0 {
				return nil, errCorrupt
			}
			sum := byte(0)
			for i, b := range inputs[0] {
				sum ^= b ^ xorTable[i%len(xorTable)]
			}
			return []byte{sum}, nil
		},
	}
}

// CountingSpec captures package state — healthy replicas disagree.
func CountingSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) { // want `emr job function literal is not replica-deterministic: package-level variable puredemo\.hits \(write of package-level state\)`
			hits++
			return nil, nil
		},
	}
}

// ClockSpec stamps outputs with the wall clock.
func ClockSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) { // want `emr job function literal is not replica-deterministic: time\.Now \(wall-clock read\)`
			t := time.Now()
			return []byte(t.String()), nil
		},
	}
}

// randomJob draws from the global generator.
func randomJob(inputs [][]byte) ([]byte, error) {
	return []byte{byte(rand.Intn(256))}, nil
}

// NamedSpec hands a named package function to the runner; the purity
// engine summarizes its body wherever it is declared.
func NamedSpec() emr.Spec {
	return emr.Spec{Job: randomJob} // want `emr job randomJob is not replica-deterministic: rand\.Intn \(global randomness\)`
}

// bumpHits is a helper reached transitively from a job.
func bumpHits() {
	hits++
}

// TransitiveSpec shows same-package callees are followed; the chain
// names the helper carrying the impurity.
func TransitiveSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) { // want `emr job function literal is not replica-deterministic: package-level variable puredemo\.hits \(write of package-level state\) via puredemo\.bumpHits`
			bumpHits()
			return nil, nil
		},
	}
}

// CrossPackageSpec calls into a sibling fixture package whose impurity
// is invisible to a per-package walk: the cross-package facts carry it
// back to this job.
func CrossPackageSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) { // want `emr job function literal is not replica-deterministic: time\.Now \(wall-clock read\) via impure\.Stamp`
			return impure.Stamp(inputs[0]), nil
		},
	}
}

// CaptureSpec mutates a variable captured from the enclosing function.
func CaptureSpec() emr.Spec {
	count := 0
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) { // want `emr job function literal is not replica-deterministic: captured variable count \(write to captured variable\)`
			count++
			return []byte{byte(count)}, nil
		},
	}
}

// AssignedSpec exercises the spec.Job = f assignment form.
func AssignedSpec() emr.Spec {
	var spec emr.Spec
	spec.Name = "assigned"
	spec.Job = randomJob // want `emr job randomJob is not replica-deterministic: rand\.Intn \(global randomness\)`
	return spec
}

// EndianSpec uses binary.BigEndian — a package-level variable, but a
// zero-field struct namespace with no state, so it is exempt.
func EndianSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) {
			out := make([]byte, 4)
			binary.BigEndian.PutUint32(out, uint32(len(inputs[0])))
			return out, nil
		},
	}
}

// LocalAccumulatorSpec shows the sanctioned pattern for state: keep it
// local to the job invocation.
func LocalAccumulatorSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) {
			acc := 0
			for _, b := range inputs[0] {
				acc += int(b)
			}
			return []byte{byte(acc)}, nil
		},
	}
}
