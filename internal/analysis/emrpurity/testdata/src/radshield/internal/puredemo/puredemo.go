// Package puredemo is an emrpurity fixture: job functions handed to
// the EMR replica runner, pure and impure.
package puredemo

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"time"

	"radshield/internal/emr"
)

// hits is mutable package-level state no replica may touch.
var hits int

// errCorrupt is an error sentinel — package-level, but conventionally
// immutable, so jobs may compare against it.
var errCorrupt = errors.New("puredemo: corrupt input")

// PureSpec builds a spec whose job touches nothing but its inputs.
func PureSpec() emr.Spec {
	return emr.Spec{
		Name: "pure",
		Job: func(inputs [][]byte) ([]byte, error) {
			if len(inputs) == 0 {
				return nil, errCorrupt
			}
			sum := byte(0)
			for _, b := range inputs[0] {
				sum ^= b
			}
			return []byte{sum}, nil
		},
	}
}

// CountingSpec captures package state — healthy replicas disagree.
func CountingSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) {
			hits++ // want `emr job job literal references package-level variable hits`
			return nil, nil
		},
	}
}

// ClockSpec stamps outputs with the wall clock.
func ClockSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) {
			t := time.Now() // want `emr job job literal calls time\.Now`
			return []byte(t.String()), nil
		},
	}
}

// randomJob draws from the global generator.
func randomJob(inputs [][]byte) ([]byte, error) {
	return []byte{byte(rand.Intn(256))}, nil // want `emr job randomJob calls global rand\.Intn`
}

// NamedSpec hands a named package function to the runner; its body is
// inspected wherever it is declared.
func NamedSpec() emr.Spec {
	return emr.Spec{Job: randomJob}
}

// bumpHits is a helper reached transitively from a job.
func bumpHits() {
	hits++ // want `emr job bumpHits references package-level variable hits`
}

// TransitiveSpec shows same-package callees are followed.
func TransitiveSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) {
			bumpHits()
			return nil, nil
		},
	}
}

// CaptureSpec mutates a variable captured from the enclosing function.
func CaptureSpec() emr.Spec {
	count := 0
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) {
			count++ // want `emr job job literal writes to captured variable count`
			return []byte{byte(count)}, nil
		},
	}
}

// AssignedSpec exercises the spec.Job = f assignment form.
func AssignedSpec() emr.Spec {
	var spec emr.Spec
	spec.Name = "assigned"
	spec.Job = randomJob // body already reported at its declaration
	return spec
}

// EndianSpec uses binary.BigEndian — a package-level variable, but a
// zero-field struct namespace with no state, so it is exempt.
func EndianSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) {
			out := make([]byte, 4)
			binary.BigEndian.PutUint32(out, uint32(len(inputs[0])))
			return out, nil
		},
	}
}

// LocalAccumulatorSpec shows the sanctioned pattern for state: keep it
// local to the job invocation.
func LocalAccumulatorSpec() emr.Spec {
	return emr.Spec{
		Job: func(inputs [][]byte) ([]byte, error) {
			acc := 0
			for _, b := range inputs[0] {
				acc += int(b)
			}
			return []byte{byte(acc)}, nil
		},
	}
}
