package emrpurity_test

import (
	"testing"

	"radshield/internal/analysis/emrpurity"
	"radshield/internal/analysis/radlint/radlinttest"
)

func TestEMRPurity(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), emrpurity.Analyzer,
		"radshield/internal/puredemo",
	)
}
