// Package emrpurity implements the radlint analyzer that checks
// functions handed to the EMR replica runner for replica determinism.
//
// EMR's conflict-aware TMR voting (paper §3.2) assumes that running
// the same JobFunc on the same input bytes yields the same output: a
// disagreement between executors is attributed to a radiation upset
// and outvoted. A job that reads mutable package-level state, mutates
// variables captured from an enclosing scope, or calls a
// nondeterministic API (wall clock, global math/rand) can make healthy
// replicas disagree — the vote then "corrects" a phantom fault, and
// the paper's Table 7 outcome taxonomy stops meaning anything.
//
// The analyzer finds every function value assigned to emr.Spec's Job
// field (composite literal or assignment) and asks the shared purity
// engine (internal/analysis/purity) for its whole-program summary:
// the job and everything it transitively calls — same-package helpers
// and cross-package callees alike, resolved through export-data facts
// — must be free of wall-clock reads, global randomness, mutable
// package-level state, and writes to captured variables. Diagnostics
// carry the call chain from the job down to the primitive
// nondeterminism.
package emrpurity

import (
	"go/ast"
	"go/types"

	"radshield/internal/analysis/purity"
	"radshield/internal/analysis/radlint"
)

// Analyzer flags impure EMR job functions.
var Analyzer = &radlint.Analyzer{
	Name: "emrpurity",
	Doc: "functions handed to the EMR replica runner must be deterministic: " +
		"no mutable package-level state, no wall clock, no global rand — " +
		"proven transitively across package boundaries by the purity engine",
	Run: run,
}

const (
	emrPkgPath  = "radshield/internal/emr"
	specTypeObj = "Spec"
)

func run(pass *radlint.Pass) error {
	facts := purity.Of(pass)
	self := pass.PackageFor(pass.Pkg.Path())
	if self == nil {
		return nil // package not in universe (cannot happen via Run)
	}
	check := func(expr ast.Expr) {
		sum, desc, ok := facts.Expr(self, expr)
		if !ok || sum.Pure(purity.Deterministic) {
			return
		}
		for _, c := range sum.CausesFor(purity.Deterministic) {
			pass.Reportf(expr.Pos(),
				"emr job %s is not replica-deterministic: %s", desc, c.Describe())
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isEMRSpec(pass.TypesInfo.Types[n].Type) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Job" {
						check(kv.Value)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // x, y = f() never assigns a Job field directly
					}
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					selection := pass.TypesInfo.Selections[sel]
					if selection == nil || selection.Kind() != types.FieldVal {
						continue
					}
					field, ok := selection.Obj().(*types.Var)
					if !ok || field.Name() != "Job" || !isEMRSpec(selection.Recv()) {
						continue
					}
					check(n.Rhs[i])
				}
			}
			return true
		})
	}
	return nil
}

// isEMRSpec reports whether t is (a pointer to) emr.Spec.
func isEMRSpec(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == specTypeObj && obj.Pkg() != nil && obj.Pkg().Path() == emrPkgPath
}
