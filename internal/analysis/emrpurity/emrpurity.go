// Package emrpurity implements the radlint analyzer that checks
// functions handed to the EMR replica runner for replica determinism.
//
// EMR's conflict-aware TMR voting (paper §3.2) assumes that running
// the same JobFunc on the same input bytes yields the same output: a
// disagreement between executors is attributed to a radiation upset
// and outvoted. A job that reads mutable package-level state, mutates
// variables captured from an enclosing scope, or calls a
// nondeterministic API (wall clock, global math/rand) can make healthy
// replicas disagree — the vote then "corrects" a phantom fault, and
// the paper's Table 7 outcome taxonomy stops meaning anything.
//
// The analyzer finds every function value assigned to emr.Spec's Job
// field (composite literal or assignment) and inspects its body — and,
// transitively, the bodies of same-package functions it calls — for:
//
//   - references to package-level variables (error-typed sentinels are
//     exempt: comparing against io.EOF-style values is conventional
//     and immutable in practice);
//   - writes to variables captured from an enclosing function;
//   - calls to wall-clock time functions or the global math/rand
//     generator.
//
// Cross-package callees are not inspected (their source is not loaded
// in this pass); keeping jobs self-contained is part of the contract.
package emrpurity

import (
	"go/ast"
	"go/types"

	"radshield/internal/analysis/radlint"
)

// Analyzer flags impure EMR job functions.
var Analyzer = &radlint.Analyzer{
	Name: "emrpurity",
	Doc: "functions handed to the EMR replica runner must be deterministic: " +
		"no mutable package-level state, no wall clock, no global rand",
	Run: run,
}

const (
	emrPkgPath  = "radshield/internal/emr"
	specTypeObj = "Spec"
)

func run(pass *radlint.Pass) error {
	c := &checker{
		pass:    pass,
		decls:   map[*types.Func]*ast.FuncDecl{},
		visited: map[*types.Func]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isEMRSpec(pass.TypesInfo.Types[n].Type) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Job" {
						c.checkJobValue(kv.Value)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // x, y = f() never assigns a Job field directly
					}
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					selection := pass.TypesInfo.Selections[sel]
					if selection == nil || selection.Kind() != types.FieldVal {
						continue
					}
					field, ok := selection.Obj().(*types.Var)
					if !ok || field.Name() != "Job" || !isEMRSpec(selection.Recv()) {
						continue
					}
					c.checkJobValue(n.Rhs[i])
				}
			}
			return true
		})
	}
	return nil
}

// isEMRSpec reports whether t is (a pointer to) emr.Spec.
func isEMRSpec(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == specTypeObj && obj.Pkg() != nil && obj.Pkg().Path() == emrPkgPath
}

type checker struct {
	pass    *radlint.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

// checkJobValue resolves the expression assigned as a Job to a function
// body in this package and inspects it. Function values that cross a
// package boundary cannot be inspected here and are skipped.
func (c *checker) checkJobValue(expr ast.Expr) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		c.inspectBody("job literal", e.Body, e.Type)
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := e.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = e.(*ast.Ident)
		}
		if fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func); ok {
			c.checkNamed(fn)
		}
	}
}

func (c *checker) checkNamed(fn *types.Func) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	if fd := c.decls[fn]; fd != nil && fd.Body != nil {
		c.inspectBody(fn.Name(), fd.Body, fd.Type)
	}
}

// inspectBody walks one function body looking for impurities. desc
// names the job (or job-reachable helper) in diagnostics.
func (c *checker) inspectBody(desc string, body *ast.BlockStmt, ftype *ast.FuncType) {
	info := c.pass.TypesInfo
	local := func(obj types.Object) bool {
		pos := obj.Pos()
		if ftype != nil && ftype.Pos() <= pos && pos < body.Pos() {
			return true // parameter or named result
		}
		return body.Pos() <= pos && pos < body.End()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil {
				return true
			}
			if v, ok := obj.(*types.Var); ok && isPackageLevel(v) && !isErrorSentinel(v) && !isStateless(v) {
				c.pass.Reportf(n.Pos(),
					"emr job %s references package-level variable %s: replicas must not capture mutable shared state",
					desc, v.Name())
				return true
			}
			if radlint.IsWallClockFunc(obj) {
				c.pass.Reportf(n.Pos(),
					"emr job %s calls time.%s: replica execution must be deterministic", desc, n.Name)
				return true
			}
			if radlint.IsGlobalRandFunc(obj) {
				c.pass.Reportf(n.Pos(),
					"emr job %s calls global rand.%s: replica execution must be deterministic", desc, n.Name)
				return true
			}
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() == c.pass.Pkg {
				c.checkNamed(fn) // follow same-package helpers
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkWrite(desc, lhs, local)
			}
		case *ast.IncDecStmt:
			c.checkWrite(desc, n.X, local)
		}
		return true
	})
}

// checkWrite flags writes to variables captured from an enclosing
// function (package-level writes are already flagged as uses).
func (c *checker) checkWrite(desc string, lhs ast.Expr, local func(types.Object) bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() || isPackageLevel(v) || local(v) {
		return
	}
	c.pass.Reportf(id.Pos(),
		"emr job %s writes to captured variable %s: replicas must not mutate shared state",
		desc, v.Name())
}

// isPackageLevel reports whether v is declared at some package's scope.
func isPackageLevel(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isErrorSentinel reports whether v is an error-typed package variable
// (io.EOF style), conventionally immutable and safe to compare against.
func isErrorSentinel(v *types.Var) bool {
	return types.Implements(v.Type(), types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

// isStateless reports whether v's type is a zero-field struct: values
// like binary.BigEndian are namespaces for methods, carry no state, and
// cannot make replicas diverge.
func isStateless(v *types.Var) bool {
	s, ok := v.Type().Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}
