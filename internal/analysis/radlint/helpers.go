package radlint

import (
	"go/types"
	"strings"
)

// PathIsInternal reports whether an import path names library code
// under an internal/ tree (e.g. radshield/internal/emr).
func PathIsInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// PathIsCommand reports whether an import path names a command under a
// cmd/ tree (e.g. radshield/cmd/radbench).
func PathIsCommand(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// bannedTimeFuncs are the package time functions that read or schedule
// against the host clock. Deterministic simulation code must route time
// through internal/simclock instead; time.Duration arithmetic and
// formatting remain free.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

// IsWallClockFunc reports whether obj is one of the banned package time
// functions (time.Now, time.Sleep, time.Since, time.Tick, ...).
func IsWallClockFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return bannedTimeFuncs[fn.Name()]
}

// IsGlobalRandFunc reports whether obj is a package-level math/rand (or
// math/rand/v2) function drawing from the process-global generator
// (rand.Intn, rand.Float64, rand.Seed, ...). Constructors (rand.New,
// rand.NewSource, rand.NewZipf, ...) and *rand.Rand methods are fine:
// the rule is that randomness must flow through an injected, seeded
// generator so fault campaigns replay bit-identically.
func IsGlobalRandFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return !strings.HasPrefix(fn.Name(), "New")
}
