// Package radlinttest runs radlint analyzers against golden fixture
// packages, in the style of golang.org/x/tools/go/analysis/analysistest:
// fixture sources live under testdata/src/<importpath>/ and annotate
// the lines where findings are expected with trailing comments of the
// form
//
//	time.Now() // want `use simclock\.Clock`
//
// Each string after "want" is a regular expression; the harness
// requires a one-to-one match between expected and reported findings
// per line. Lines without a want comment must produce no finding —
// which is how the negative fixtures (internal/simclock exemption,
// *_test.go exemption, //radlint:allow suppression) assert silence.
package radlinttest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"radshield/internal/analysis/radlint"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads testdata/src/<path> for each path, runs the analyzer on the
// resulting package, and checks reported findings against the want
// annotations.
func Run(t *testing.T, testdata string, a *radlint.Analyzer, paths ...string) {
	t.Helper()
	loader := &radlint.Loader{
		// Imports that are not module packages resolve from sibling
		// fixture directories, so fixtures can exercise cross-package
		// analysis; documents like TELEMETRY.md resolve from the
		// fixture testdata root.
		FixtureDir: filepath.Join(testdata, "src"),
		RepoRoot:   testdata,
	}
	for _, path := range paths {
		pkg, err := loader.LoadDir(filepath.Join(testdata, "src", filepath.FromSlash(path)), path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		res, err := radlint.Run([]*radlint.Analyzer{a}, []*radlint.Package{pkg}, &radlint.Options{
			Universe: loader.Universe(),
			RepoRoot: loader.Root(),
		})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, pkg, res.Findings)
	}
}

// lineKey identifies one fixture source line.
type lineKey struct {
	file string
	line int
}

func checkWants(t *testing.T, pkg *radlint.Package, diags []radlint.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range pkg.AllFiles {
		collectWants(t, pkg, f, wants)
	}

	got := map[lineKey][]string{}
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d.Message)
	}

	for k, msgs := range got {
		patterns := wants[k]
		for _, msg := range msgs {
			matched := -1
			for i, re := range patterns {
				if re != nil && re.MatchString(msg) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: unexpected finding: %s", k.file, k.line, msg)
				continue
			}
			patterns[matched] = nil // consume
		}
	}
	for k, patterns := range wants {
		for _, re := range patterns {
			if re != nil {
				gotHere := strings.Join(got[k], "; ")
				if gotHere == "" {
					gotHere = "nothing"
				}
				t.Errorf("%s:%d: want finding matching %q, got %s", k.file, k.line, re, gotHere)
			}
		}
	}
}

// collectWants scans a file's comments for `// want "re" ...`
// annotations.
func collectWants(t *testing.T, pkg *radlint.Package, f *ast.File, wants map[lineKey][]*regexp.Regexp) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			// Only literal-bearing comments are annotations; prose that
			// happens to start with "want" is not.
			if rest := strings.TrimSpace(strings.TrimPrefix(text, "want ")); len(rest) == 0 || (rest[0] != '"' && rest[0] != '`') {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			k := lineKey{pos.Filename, pos.Line}
			for _, lit := range wantLiterals(t, k, strings.TrimPrefix(text, "want ")) {
				re, err := regexp.Compile(lit)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, lit, err)
				}
				wants[k] = append(wants[k], re)
			}
		}
	}
}

var wantLiteral = regexp.MustCompile("^\\s*(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// wantLiterals parses the space-separated Go string literals following
// a want keyword.
func wantLiterals(t *testing.T, k lineKey, s string) []string {
	t.Helper()
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		m := wantLiteral.FindStringSubmatch(s)
		if m == nil {
			t.Fatalf("%s:%d: malformed want annotation near %q", k.file, k.line, s)
		}
		lit, err := strconv.Unquote(m[1])
		if err != nil {
			t.Fatalf("%s:%d: malformed want literal %s: %v", k.file, k.line, m[1], err)
		}
		out = append(out, lit)
		s = s[len(m[0]):]
	}
	return out
}
