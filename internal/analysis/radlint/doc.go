// Package radlint is the core of Radshield's domain-specific static
// analysis suite: a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) plus a package loader and a suppression mechanism.
//
// Why not x/tools? The repository is deliberately dependency-free (see
// DESIGN.md), and everything the five Radshield analyzers need —
// parsed ASTs, full type information, and export data for imported
// packages — is available from the standard library: go/parser and
// go/types do the analysis, and `go list -export` supplies compiled
// export data for every dependency so each target package can be
// type-checked from source in isolation.
//
// The analyzers themselves live in sibling packages
// (internal/analysis/simclocktime, seededrand, telemetryname,
// emrpurity, nopanic) and are registered by cmd/radlint. Each enforces
// one reproducibility or robustness invariant that Radshield's
// evaluation depends on; LINTING.md is the user-facing catalog.
//
// # Suppression
//
// A finding is suppressed by an allow comment on the same line or the
// line directly above:
//
//	//radlint:allow nopanic invariant: negative duration is a caller bug
//	panic("...")
//
// The comment names one analyzer (or a comma-separated list) and MUST
// carry a justification after the name; an allow comment without a
// reason is ignored, so every suppression in the tree documents why
// the invariant does not apply.
//
// # Exemptions
//
// Test files (*_test.go) are never analyzed: campaigns replay
// production code, not test scaffolding, and tests legitimately use
// wall clocks, ad-hoc randomness, and panics. Individual analyzers
// additionally exempt whole packages (for example internal/simclock is
// exempt from simclocktime — it is the abstraction the rule points
// users at).
package radlint
