package radlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
	"time"
)

// An Analyzer describes one named analysis and how to run it. The shape
// deliberately mirrors golang.org/x/tools/go/analysis so the analyzers
// could migrate to the upstream framework if the repository ever takes
// the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //radlint:allow comments. Lowercase, no spaces.
	Name string

	// Doc is the one-paragraph description shown by `radlint -list`.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Reportf and returns an error only for analysis failures
	// (not for findings).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset *token.FileSet

	// Files holds the package's analyzable syntax trees. Test files
	// (*_test.go) are excluded here — they type-check as part of the
	// package but are exempt from every analyzer by policy.
	Files []*ast.File

	// AllFiles additionally includes test files, for analyzers (and
	// the suppression scanner) that need whole-package syntax.
	AllFiles []*ast.File

	Pkg       *types.Package
	TypesInfo *types.Info

	// Universe holds every package whose source was loaded and
	// type-checked in this invocation — the analyzed targets plus any
	// fixture dependency packages. Cross-package analyses (the purity
	// fact engine) resolve callee bodies through it.
	Universe []*Package

	// Shared is the invocation-wide memo: expensive whole-program
	// computations (purity facts, the TELEMETRY.md catalog) are built
	// once here and reused by every analyzer and every package pass.
	Shared *Shared

	// RepoRoot is the module root directory (or, under radlinttest,
	// the fixture testdata root). Analyzers that consult repository
	// documents (TELEMETRY.md) resolve them against it.
	RepoRoot string

	diagnostics *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PackageFor returns the loaded source package for an import path, or
// nil when the path was only ever seen as export data. Analyzers use it
// to decide whether a cross-package callee can be inspected.
func (p *Pass) PackageFor(path string) *Package {
	for _, pkg := range p.Universe {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// Shared is the cross-analyzer memoization table for one Run. Values
// are computed at most once per invocation no matter how many analyzers
// or packages consult them — this is what keeps the whole-program
// purity analysis from scaling with analyzer count.
type Shared struct {
	mu   sync.Mutex
	vals map[string]any
	errs map[string]error
}

// NewShared returns an empty memo table.
func NewShared() *Shared {
	return &Shared{vals: map[string]any{}, errs: map[string]error{}}
}

// Memo returns the value cached under key, computing and caching it
// (value or error) on first use.
func (s *Shared) Memo(key string, compute func() (any, error)) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err, ok := s.errs[key]; ok {
		return nil, err
	}
	if v, ok := s.vals[key]; ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		s.errs[key] = err
		return nil, err
	}
	s.vals[key] = v
	return v, nil
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Suppression records one finding that fired but was waived by a
// //radlint:allow comment, together with the written reason. radlint
// -json reports these so audits can see what was waived, not just what
// survived.
type Suppression struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Reason   string
}

func (s Suppression) String() string {
	return fmt.Sprintf("%s: %s: suppressed: %s (reason: %s)", s.Pos, s.Analyzer, s.Message, s.Reason)
}

// Timing is the accumulated wall time one analyzer spent across every
// package in a Run, surfaced by the radlint -timing flag.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// Result is everything one Run produced: the surviving findings, the
// suppressions that were honored, and per-analyzer timings.
type Result struct {
	Findings   []Diagnostic
	Suppressed []Suppression
	Timings    []Timing
}

// Options configures a Run beyond the target packages.
type Options struct {
	// Universe is every source-loaded package available for
	// cross-package analysis; nil means the targets themselves.
	// Loader.Universe() supplies it, including fixture dependencies.
	Universe []*Package

	// RepoRoot is the repository root for document-consulting
	// analyzers; empty disables them gracefully only in tests that opt
	// out (the Loader always resolves one).
	RepoRoot string
}

// Run applies every analyzer to every target package and returns the
// surviving findings (deduplicated, allow-comment suppressions applied,
// sorted by position) along with the honored suppressions and timings.
// The error aggregates analyzer failures, not findings.
func Run(analyzers []*Analyzer, targets []*Package, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	universe := opts.Universe
	if universe == nil {
		universe = targets
	}
	shared := NewShared()
	elapsed := make(map[string]time.Duration, len(analyzers))

	var diags []Diagnostic
	var suppressed []Suppression
	var errs []string
	for _, pkg := range targets {
		allow := buildAllowIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				AllFiles:    pkg.AllFiles,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				Universe:    universe,
				Shared:      shared,
				RepoRoot:    opts.RepoRoot,
				diagnostics: &diags,
			}
			before := len(diags)
			//radlint:allow simclocktime analyzer timing measures the linter itself, not simulated state; radlint never runs inside a campaign
			start := time.Now()
			err := a.Run(pass)
			//radlint:allow simclocktime see above: wall time of the analysis process is the measurement, simclock does not apply
			elapsed[a.Name] += time.Since(start)
			if err != nil {
				errs = append(errs, fmt.Sprintf("%s: %s: %v", a.Name, pkg.Path, err))
			}
			diags, suppressed = allow.filter(diags, suppressed, before)
		}
	}
	sortDiags(diags)
	diags = dedup(diags)
	sort.SliceStable(suppressed, func(i, j int) bool {
		return lessPos(suppressed[i].Pos, suppressed[j].Pos, suppressed[i].Analyzer, suppressed[j].Analyzer)
	})

	res := &Result{Findings: diags, Suppressed: suppressed}
	for _, a := range analyzers {
		res.Timings = append(res.Timings, Timing{Analyzer: a.Name, Elapsed: elapsed[a.Name]})
	}
	if len(errs) > 0 {
		return res, fmt.Errorf("radlint: %s", strings.Join(errs, "; "))
	}
	return res, nil
}

func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		return lessPos(diags[i].Pos, diags[j].Pos, diags[i].Analyzer, diags[j].Analyzer)
	})
}

func lessPos(a, b token.Position, aname, bname string) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.Column != b.Column {
		return a.Column < b.Column
	}
	return aname < bname
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// allowEntry is one analyzer name + reason pair from an allow comment.
type allowEntry struct {
	name   string
	reason string
}

// allowIndex maps filename → line → suppression entries active there.
type allowIndex map[string]map[int][]allowEntry

// AllowPrefix introduces a suppression comment. The full grammar is
//
//	//radlint:allow name[,name...] <reason>
//
// and the reason is mandatory: a bare //radlint:allow nopanic does not
// suppress anything.
const AllowPrefix = "radlint:allow"

// buildAllowIndex scans every comment in the package (test files too —
// a fixture may place wants there) for allow comments. A comment on
// line L suppresses findings on lines L and L+1, covering both the
// trailing-comment and the own-line-above styles.
func buildAllowIndex(pkg *Package) allowIndex {
	idx := allowIndex{}
	for _, f := range pkg.AllFiles {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				names, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if names == "" || reason == "" {
					continue // no analyzer or no justification: not an allowlisting
				}
				pos := pkg.Fset.Position(c.Pos())
				file := idx[pos.Filename]
				if file == nil {
					file = map[int][]allowEntry{}
					idx[pos.Filename] = file
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					file[pos.Line] = append(file[pos.Line], allowEntry{name, reason})
					file[pos.Line+1] = append(file[pos.Line+1], allowEntry{name, reason})
				}
			}
		}
	}
	return idx
}

// filter drops diags[from:] entries suppressed by the index, recording
// each honored suppression (with its reason) in the suppressed list.
func (idx allowIndex) filter(diags []Diagnostic, suppressed []Suppression, from int) ([]Diagnostic, []Suppression) {
	out := diags[:from]
	for _, d := range diags[from:] {
		if reason, ok := idx.allows(d); ok {
			suppressed = append(suppressed, Suppression{
				Pos:      d.Pos,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Reason:   reason,
			})
			continue
		}
		out = append(out, d)
	}
	return out, suppressed
}

func (idx allowIndex) allows(d Diagnostic) (string, bool) {
	for _, e := range idx[d.Pos.Filename][d.Pos.Line] {
		if e.name == d.Analyzer {
			return e.reason, true
		}
	}
	return "", false
}
