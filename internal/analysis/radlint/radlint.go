package radlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one named analysis and how to run it. The shape
// deliberately mirrors golang.org/x/tools/go/analysis so the analyzers
// could migrate to the upstream framework if the repository ever takes
// the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //radlint:allow comments. Lowercase, no spaces.
	Name string

	// Doc is the one-paragraph description shown by `radlint -list`.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Reportf and returns an error only for analysis failures
	// (not for findings).
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset *token.FileSet

	// Files holds the package's analyzable syntax trees. Test files
	// (*_test.go) are excluded here — they type-check as part of the
	// package but are exempt from every analyzer by policy.
	Files []*ast.File

	// AllFiles additionally includes test files, for analyzers (and
	// the suppression scanner) that need whole-package syntax.
	AllFiles []*ast.File

	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings: deduplicated, allow-comment suppressions applied, sorted by
// position. The error aggregates analyzer failures, not findings.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	var errs []string
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				AllFiles:    pkg.AllFiles,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				diagnostics: &diags,
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %s: %v", a.Name, pkg.Path, err))
			}
			diags = allow.filter(diags, before)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	diags = dedup(diags)
	if len(errs) > 0 {
		return diags, fmt.Errorf("radlint: %s", strings.Join(errs, "; "))
	}
	return diags, nil
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// allowIndex maps filename → line → analyzer names suppressed there.
type allowIndex map[string]map[int][]string

// AllowPrefix introduces a suppression comment. The full grammar is
//
//	//radlint:allow name[,name...] <reason>
//
// and the reason is mandatory: a bare //radlint:allow nopanic does not
// suppress anything.
const AllowPrefix = "radlint:allow"

// buildAllowIndex scans every comment in the package (test files too —
// a fixture may place wants there) for allow comments. A comment on
// line L suppresses findings on lines L and L+1, covering both the
// trailing-comment and the own-line-above styles.
func buildAllowIndex(pkg *Package) allowIndex {
	idx := allowIndex{}
	for _, f := range pkg.AllFiles {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				names, reason, _ := strings.Cut(rest, " ")
				if names == "" || strings.TrimSpace(reason) == "" {
					continue // no analyzer or no justification: not an allowlisting
				}
				pos := pkg.Fset.Position(c.Pos())
				file := idx[pos.Filename]
				if file == nil {
					file = map[int][]string{}
					idx[pos.Filename] = file
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					file[pos.Line] = append(file[pos.Line], name)
					file[pos.Line+1] = append(file[pos.Line+1], name)
				}
			}
		}
	}
	return idx
}

// filter drops diags[from:] entries suppressed by the index.
func (idx allowIndex) filter(diags []Diagnostic, from int) []Diagnostic {
	out := diags[:from]
	for _, d := range diags[from:] {
		if !idx.allows(d) {
			out = append(out, d)
		}
	}
	return out
}

func (idx allowIndex) allows(d Diagnostic) bool {
	for _, name := range idx[d.Pos.Filename][d.Pos.Line] {
		if name == d.Analyzer {
			return true
		}
	}
	return false
}
