package radlint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path string
	Fset *token.FileSet

	// Files are the type-checked, analyzable (non-test) syntax trees.
	Files []*ast.File

	// AllFiles additionally holds in-package *_test.go trees. Test
	// files are parsed (so allow comments and exemption policy can see
	// them) but never type-checked: they are exempt from analysis, and
	// skipping them avoids needing test-variant export data.
	AllFiles []*ast.File

	Types     *types.Package
	TypesInfo *types.Info
}

// A Loader turns package patterns or fixture directories into
// type-checked Packages. Imports are satisfied from compiled export
// data located via `go list -export`, so each target is type-checked
// from source in isolation — the standard-library equivalent of
// golang.org/x/tools/go/packages in LoadAllSyntax mode for the targets
// and LoadTypes mode for their dependencies.
//
// One Loader lists export data and type-checks each package exactly
// once per process, no matter how many analyzers later run over the
// result: the analyzer suite shares the Loader's output rather than
// reloading per analyzer.
type Loader struct {
	// Dir is the working directory for go list; it must be inside the
	// module. Empty means the current directory.
	Dir string

	// FixtureDir, when set, is a testdata/src-style root: an import
	// path that go list cannot resolve is satisfied by type-checking
	// the sources under FixtureDir/<import path> instead. This is how
	// radlinttest fixtures exercise cross-package analysis — a fixture
	// entry package can import sibling fixture packages that exist
	// nowhere in the module.
	FixtureDir string

	// RepoRoot overrides repo-root detection (radlinttest points it at
	// the fixture testdata directory so document-consulting analyzers
	// read fixture documents). When empty, Load resolves the module
	// root via go list.
	RepoRoot string

	fset     *token.FileSet
	exports  map[string]string // import path → export data file
	srcPkgs  map[string]*types.Package
	universe []*Package
	loading  map[string]bool // fixture import paths currently type-checking (cycle guard)
	gc       types.Importer
	repoRoot string
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	Export       string
	Standard     bool
	DepOnly      bool
	Incomplete   bool
	Error        *struct{ Err string }
	DepsErrors   []*struct{ Err string }
	ForTest      string
	IgnoredFiles []string
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.exports = map[string]string{}
		l.srcPkgs = map[string]*types.Package{}
		l.loading = map[string]bool{}
		l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	}
}

// Universe returns every package this Loader has type-checked from
// source — Load/LoadDir targets plus fixture dependencies — for use as
// the cross-package analysis universe.
func (l *Loader) Universe() []*Package {
	return l.universe
}

// Root returns the repository root for document-consulting analyzers:
// the RepoRoot override if set, else the module root resolved from the
// first Load, else the loader's working directory.
func (l *Loader) Root() string {
	if l.RepoRoot != "" {
		return l.RepoRoot
	}
	if l.repoRoot != "" {
		return l.repoRoot
	}
	if l.Dir != "" {
		return l.Dir
	}
	dir, _ := os.Getwd()
	return dir
}

// Load lists, parses, and type-checks every package matching the
// patterns (e.g. "./..."). Test-only and empty packages are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	if l.repoRoot == "" {
		l.repoRoot = l.moduleRoot()
	}
	listed, err := l.goList(append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.Export != "" {
			l.exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly || lp.Standard || lp.ForTest != "" || len(lp.GoFiles)+len(lp.CgoFiles) == 0 {
			continue
		}
		pkg, err := l.typecheck(lp.ImportPath, lp.Dir, append(lp.GoFiles, lp.CgoFiles...), lp.TestGoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single package from the .go files directly inside
// dir, assigning it the given import path. This is the fixture-loading
// mode used by radlinttest: the directory need not be a real package in
// the module, but its imports must resolve (standard library, packages
// of this module, or — with FixtureDir set — sibling fixture packages).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	l.init()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var sources, testSources []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if strings.HasSuffix(e.Name(), "_test.go") {
			testSources = append(testSources, e.Name())
		} else {
			sources = append(sources, e.Name())
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("radlint: no .go files in %s", dir)
	}
	return l.typecheck(path, dir, sources, testSources)
}

// typecheck parses sources (plus parse-only testSources) from dir and
// type-checks them as one package named by path.
func (l *Loader) typecheck(path, dir string, sources, testSources []string) (*Package, error) {
	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(sources)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(testSources)
	if err != nil {
		return nil, err
	}
	if err := l.resolveImports(files); err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	cfg := &types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type errors: %v", typeErrs[0])
	}
	pkg := &Package{
		Path:      path,
		Fset:      l.fset,
		Files:     files,
		AllFiles:  append(append([]*ast.File(nil), files...), testFiles...),
		Types:     tpkg,
		TypesInfo: info,
	}
	l.srcPkgs[path] = tpkg
	l.universe = append(l.universe, pkg)
	return pkg, nil
}

// resolveImports ensures every import of the given files can be
// satisfied: from already-known export data, from a fixture directory
// (type-checked recursively), or by fetching export data with one go
// list call. Load pre-populates the export map via -deps, so this only
// does work in fixture mode.
func (l *Loader) resolveImports(files []*ast.File) error {
	var missing []string
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath, err := strconv.Unquote(imp.Path.Value)
			if err != nil || ipath == "unsafe" || ipath == "C" {
				continue
			}
			if _, ok := l.exports[ipath]; ok {
				continue
			}
			if _, ok := l.srcPkgs[ipath]; ok {
				continue
			}
			if l.loadFixtureImport(ipath) {
				continue
			}
			missing = append(missing, ipath)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	missing = uniq(missing)
	listed, err := l.goList(append([]string{"-deps", "-export"}, missing...))
	if err != nil {
		return err
	}
	for _, lp := range listed {
		if lp.Export != "" {
			l.exports[lp.ImportPath] = lp.Export
		}
	}
	return nil
}

// loadFixtureImport satisfies an import from the fixture tree when
// possible, type-checking FixtureDir/<path> from source so its bodies
// participate in cross-package analysis. Reports whether the path was
// handled.
func (l *Loader) loadFixtureImport(ipath string) bool {
	if l.FixtureDir == "" || l.loading[ipath] {
		return false
	}
	dir := filepath.Join(l.FixtureDir, filepath.FromSlash(ipath))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return false
	}
	l.loading[ipath] = true
	defer delete(l.loading, ipath)
	if _, err := l.LoadDir(dir, ipath); err != nil {
		return false
	}
	return true
}

// goList runs `go list -json` with the given extra args and decodes the
// object stream.
func (l *Loader) goList(args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = l.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// moduleRoot resolves the module root directory for RepoRoot-relative
// documents; empty on failure (analyzers then fall back to Dir).
func (l *Loader) moduleRoot() string {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = l.Dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// lookup feeds compiled export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("radlint: no export data for %q", path)
	}
	return os.Open(file)
}

// Import implements types.Importer: source-checked packages (targets
// and fixture dependencies) are served directly so downstream packages
// type-check against the same *types.Package the analysis universe
// holds; everything else comes from compiled export data, with
// "unsafe" special-cased (it has no export file).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.srcPkgs[path]; ok {
		return pkg, nil
	}
	return l.gc.Import(path)
}

func uniq(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i > 0 && s == sorted[i-1] {
			continue
		}
		out = append(out, s)
	}
	return out
}
