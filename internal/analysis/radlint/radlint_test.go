package radlint_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"radshield/internal/analysis/radlint"
)

// TestLoadModulePackage exercises the go list -export loading path on a
// real package of this module, including intra-module imports resolved
// from export data.
func TestLoadModulePackage(t *testing.T) {
	loader := &radlint.Loader{Dir: "../../.."} // module root
	pkgs, err := loader.Load("radshield/internal/emr")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "radshield/internal/emr" {
		t.Fatalf("path = %q", pkg.Path)
	}
	if len(pkg.Files) == 0 || pkg.Types == nil {
		t.Fatal("package loaded without syntax or types")
	}
	// Test files are parsed into AllFiles but excluded from Files.
	if len(pkg.AllFiles) <= len(pkg.Files) {
		t.Fatalf("expected test files in AllFiles: %d vs %d", len(pkg.AllFiles), len(pkg.Files))
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Fatalf("test file %s leaked into analyzable Files", name)
		}
	}
	// Spec must resolve with full type info (emrpurity depends on it).
	if obj := pkg.Types.Scope().Lookup("Spec"); obj == nil {
		t.Fatal("emr.Spec not in package scope")
	}
}

func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunSuppression checks the //radlint:allow grammar end to end: a
// justified comment suppresses its own line and the next, an
// unjustified one suppresses nothing, and unrelated analyzers are
// unaffected.
func TestRunSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package allowdemo

// F has four findings; two are suppressed.
func F() {
	bad() //radlint:allow flagall justified trailing suppression
	//radlint:allow flagall justified preceding suppression
	bad()
	//radlint:allow flagall
	bad()
	bad() //radlint:allow otherlint wrong analyzer name
}

func bad() {}
`
	writeFixture(t, dir, "allow.go", src)
	loader := &radlint.Loader{}
	pkg, err := loader.LoadDir(dir, "radshield/internal/allowdemo")
	if err != nil {
		t.Fatal(err)
	}
	// flagall reports every call to bad().
	flagall := &radlint.Analyzer{
		Name: "flagall",
		Doc:  "test analyzer flagging calls to bad",
		Run: func(pass *radlint.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
							pass.Reportf(call.Pos(), "call to bad")
						}
					}
					return true
				})
			}
			return nil
		},
	}
	res, err := radlint.Run([]*radlint.Analyzer{flagall}, []*radlint.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range res.Findings {
		lines = append(lines, d.Pos.Line)
	}
	// Lines 5 and 7 are suppressed; 9 (no reason) and 10 (other
	// analyzer) survive.
	if len(lines) != 2 || lines[0] != 9 || lines[1] != 10 {
		t.Fatalf("surviving finding lines = %v, want [9 10]", lines)
	}
	// The two honored suppressions are reported with their reasons.
	if len(res.Suppressed) != 2 {
		t.Fatalf("suppressions = %v, want 2", res.Suppressed)
	}
	wantReasons := []string{"justified trailing suppression", "justified preceding suppression"}
	for i, s := range res.Suppressed {
		if s.Analyzer != "flagall" || s.Reason != wantReasons[i] {
			t.Errorf("suppression %d = %+v, want reason %q", i, s, wantReasons[i])
		}
	}
	// Timings carry one entry per analyzer.
	if len(res.Timings) != 1 || res.Timings[0].Analyzer != "flagall" {
		t.Fatalf("timings = %v", res.Timings)
	}
}

// TestDiagnosticOrdering checks findings sort by position regardless of
// report order.
func TestDiagnosticOrdering(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "a.go", "package orderdemo\n\nfunc A() {}\n\nfunc B() {}\n")
	loader := &radlint.Loader{}
	pkg, err := loader.LoadDir(dir, "radshield/internal/orderdemo")
	if err != nil {
		t.Fatal(err)
	}
	backwards := &radlint.Analyzer{
		Name: "backwards",
		Doc:  "reports declarations in reverse",
		Run: func(pass *radlint.Pass) error {
			decls := pass.Files[0].Decls
			for i := len(decls) - 1; i >= 0; i-- {
				pass.Reportf(decls[i].Pos(), "decl %d", i)
			}
			return nil
		},
	}
	res, err := radlint.Run([]*radlint.Analyzer{backwards}, []*radlint.Package{pkg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 2 || res.Findings[0].Pos.Line > res.Findings[1].Pos.Line {
		t.Fatalf("diagnostics not position-sorted: %v", res.Findings)
	}
}
