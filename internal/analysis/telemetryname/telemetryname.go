// Package telemetryname implements the radlint analyzer that checks
// metric names handed to the telemetry registry.
//
// TELEMETRY.md is the contract between the simulation and the paper's
// tables: every metric is a lowercase snake_case name (e.g.
// ild_detections_total) catalogued with its unit and the figure it
// feeds. Two failure modes defeat that contract — dynamic names built
// at runtime (string concatenation means the catalog can never be
// complete, and snapshot schemas stop being stable across runs) and
// ad-hoc spellings (CamelCase or dotted names that split one family
// across incompatible keys). The analyzer therefore requires the name
// argument of Registry.Counter/Gauge/GaugeFunc/Histogram to be a
// compile-time constant matching ^[a-z][a-z0-9]*(_[a-z0-9]+)*$.
package telemetryname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"radshield/internal/analysis/radlint"
)

// Analyzer flags dynamic or unconventional telemetry metric names.
var Analyzer = &radlint.Analyzer{
	Name: "telemetryname",
	Doc: "telemetry metric names must be compile-time constant lowercase " +
		"snake_case literals so TELEMETRY.md can catalog the full schema",
	Run: run,
}

// namePattern is the TELEMETRY.md naming convention.
var namePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// registryMethods are the (*telemetry.Registry) methods whose first
// argument is a metric name.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

const registryType = "radshield/internal/telemetry.Registry"

func run(pass *radlint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !registryMethods[fn.Name()] || fn.FullName() != "(*"+registryType+")."+fn.Name() {
				return true
			}
			arg := call.Args[0]
			tv := pass.TypesInfo.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(),
					"dynamic metric name passed to Registry.%s: names must be compile-time constants so TELEMETRY.md stays complete",
					fn.Name())
				return true
			}
			if name := constant.StringVal(tv.Value); !namePattern.MatchString(name) {
				pass.Reportf(arg.Pos(),
					"metric name %q violates the TELEMETRY.md convention (lowercase snake_case: %s)",
					name, namePattern)
			}
			return true
		})
	}
	return nil
}
