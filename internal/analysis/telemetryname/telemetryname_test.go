package telemetryname_test

import (
	"testing"

	"radshield/internal/analysis/radlint/radlinttest"
	"radshield/internal/analysis/telemetryname"
)

func TestTelemetryName(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), telemetryname.Analyzer,
		"radshield/internal/downlinkdemo",
		"radshield/internal/teldemo",
	)
}
