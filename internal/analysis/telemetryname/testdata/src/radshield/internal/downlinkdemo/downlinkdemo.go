// Package downlinkdemo is a telemetryname fixture for the comms
// subsystem's metric families: downlink_* on the flight side and
// groundstation_* on the ground side, per the TELEMETRY.md catalog.
package downlinkdemo

import "radshield/internal/telemetry"

// framesSent mirrors the real instruments' constant-name indirection.
const framesSent = "downlink_frames_sent_total"

// Register exercises conformant and non-conformant downlink names.
func Register(reg *telemetry.Registry, linkName string) {
	reg.Counter(framesSent, "frames")
	reg.Counter("downlink_retransmits_total", "frames")
	reg.Counter("downlink_beacons_total", "frames")
	reg.Gauge("downlink_pending_frames", "frames")
	reg.Counter("groundstation_frames_delivered_total", "frames")
	reg.Counter("groundstation_frames_skipped_total", "frames")
	reg.Histogram("groundstation_ingest_latency_seconds", "seconds", telemetry.LatencyBuckets())

	reg.Counter("downlink_Frames_total", "frames")        // want `metric name "downlink_Frames_total" violates the TELEMETRY\.md convention`
	reg.Gauge("downlink__pending", "frames")              // want `metric name "downlink__pending" violates the TELEMETRY\.md convention`
	reg.Counter("downlink."+"frames", "frames")           // want `metric name "downlink\.frames" violates the TELEMETRY\.md convention`
	reg.Counter("downlink_"+linkName+"_total", "frames")  // want `dynamic metric name passed to Registry\.Counter`
	reg.Gauge("groundstation_"+linkName+"_seq", "frames") // want `dynamic metric name passed to Registry\.Gauge`
}
