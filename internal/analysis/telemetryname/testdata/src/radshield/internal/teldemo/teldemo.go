// Package teldemo is a telemetryname fixture exercising the
// TELEMETRY.md naming contract against the real registry type.
package teldemo

import "radshield/internal/telemetry"

// goodName is a compile-time constant, so it passes even through a
// variable-free indirection.
const goodName = "demo_requests_total"

// Register exercises conformant and non-conformant names.
func Register(reg *telemetry.Registry, kind string) {
	reg.Counter("demo_hits_total", "hits")
	reg.Counter(goodName, "requests")
	reg.Counter("demo_"+"joined_total", "joins") // constant folding is fine
	reg.Gauge("demo_current_amps", "amps")
	reg.Histogram("demo_latency_seconds", "seconds", telemetry.LatencyBuckets())
	reg.GaugeFunc("demo_energy_joules", "joules", func() float64 { return 0 })

	reg.Counter("DemoHits", "hits")            // want `metric name "DemoHits" violates the TELEMETRY\.md convention`
	reg.Counter("demo.dotted.total", "hits")   // want `metric name "demo\.dotted\.total" violates the TELEMETRY\.md convention`
	reg.Gauge("demo__double", "x")             // want `metric name "demo__double" violates the TELEMETRY\.md convention`
	reg.Counter("demo_"+kind+"_total", "hits") // want `dynamic metric name passed to Registry\.Counter`
	reg.GaugeFunc(kind, "x", nil)              // want `dynamic metric name passed to Registry\.GaugeFunc`
}

// lookalike has methods shadowing the registry's names; they are not
// the telemetry registry, so nothing here is checked.
type lookalike struct{}

func (lookalike) Counter(name, unit string) {}

// NotTheRegistry proves the analyzer matches on the receiver type, not
// the method name.
func NotTheRegistry(kind string) {
	var l lookalike
	l.Counter(kind, "x")
	l.Counter("Whatever.Goes", "x")
}
