// Package maporder implements the radlint analyzer that keeps Go's
// randomized map iteration order out of campaign output.
//
// Go randomizes the iteration order of every `range` over a map, per
// run, by design. A campaign that appends rows, prints, encodes, or
// records order-sensitive telemetry from inside such a loop produces
// output whose byte order differs between two otherwise identical
// runs — the one nondeterminism class that survives perfect seed and
// clock discipline, because it comes from the runtime rather than from
// an API call a taint engine could spot.
//
// The analyzer flags a `range` over a map whose body reaches an
// order-sensitive sink:
//
//   - append — unless the destination slice is passed to a sort
//     function later in the same enclosing function (the sorted-keys
//     idiom: collect, sort, then iterate the sorted slice);
//   - printing/encoding (the fmt family, json/binary encoders);
//   - writes to builders, buffers, and io.Writers (Write* methods);
//   - channel sends;
//   - order-sensitive telemetry (gauge Set/Add last-write-wins,
//     event-ring Append) — counters and histograms are commutative
//     and stay exempt.
//
// Commutative loop bodies — counting, integer accumulation, building
// another map or set — are clean: they cannot observe the order.
package maporder

import (
	"go/ast"
	"go/types"

	"radshield/internal/analysis/radlint"
)

// Analyzer flags order-dependent map iteration.
var Analyzer = &radlint.Analyzer{
	Name: "maporder",
	Doc: "range over a map must not feed campaign output (appends, encoders, " +
		"writers, telemetry) without an intervening key sort: map iteration " +
		"order is randomized per run",
	Run: run,
}

func run(pass *radlint.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			checkMapRange(pass, rs, enclosingBody(stack))
			return true
		})
	}
	return nil
}

// isMapRange reports whether rs ranges over a map value.
func isMapRange(pass *radlint.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// enclosingBody returns the innermost function body on the walk stack
// (excluding the top node itself), or nil at file scope.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// checkMapRange scans one map-range body for order-sensitive sinks.
func checkMapRange(pass *radlint.Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	mapName := types.ExprString(rs.X)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs && isMapRange(pass, n) {
				return false // nested map range reported on its own
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"range over map %s sends on a channel: map iteration order is randomized per run; iterate sorted keys instead",
				mapName)
		case *ast.CallExpr:
			if dst, path, ok := appendDest(pass, n); ok {
				if dst == nil || !sortedAfter(pass, encl, rs, dst, path) {
					pass.Reportf(n.Pos(),
						"range over map %s appends in iteration order without a later sort: map order is randomized per run; sort the collected values or iterate sorted keys",
						mapName)
				}
				return true
			}
			if kind := sinkCall(pass, n); kind != "" {
				pass.Reportf(n.Pos(),
					"range over map %s feeds %s: map iteration order is randomized per run; iterate sorted keys instead",
					mapName, kind)
			}
		}
		return true
	})
}

// appendDest reports whether call is the append builtin, returning the
// destination's root object (nil when unresolvable) and its rendered
// access path ("keys", "s.Gauges") for field-level comparison.
func appendDest(pass *radlint.Pass, call *ast.CallExpr) (types.Object, string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || id.Name != "append" {
		return nil, "", false
	}
	if len(call.Args) == 0 {
		return nil, "", true
	}
	dst := ast.Unparen(call.Args[0])
	if root := rootIdent(dst); root != nil {
		return pass.TypesInfo.Uses[root], types.ExprString(dst), true
	}
	return nil, "", true
}

// sortedAfter reports whether the append destination is passed to a
// sort function after the range statement, within the enclosing
// function body — the sorted-keys idiom. Both the root object and the
// full access path must match: sorting s.Events does not make appends
// to s.Gauges deterministic.
func sortedAfter(pass *radlint.Pass, encl *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object, path string) bool {
	if encl == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			arg = ast.Unparen(arg)
			// Unwrap one conversion/wrapper layer: sort.Sort(byName(keys)).
			if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
				arg = ast.Unparen(inner.Args[0])
			}
			root := rootIdent(arg)
			if root != nil && pass.TypesInfo.Uses[root] == obj && types.ExprString(arg) == path {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sortFuncs are the package-level sorters that make collected map keys
// or values deterministic.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func isSortCall(pass *radlint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return sortFuncs[fn.Pkg().Path()][fn.Name()]
}

// fmtSinks are the fmt-family functions that emit to an output stream
// in call order. The Sprint/Errorf family is deliberately absent: those
// return values, and ordering only enters through what the caller does
// with the value (an append, a write) — which is flagged there.
var fmtSinks = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// writeMethods are output-stream method names (strings.Builder,
// bytes.Buffer, io.Writer implementations).
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true,
}

const telemetryPkgPath = "radshield/internal/telemetry"

// telemetrySinks maps telemetry receiver type → order-sensitive
// methods. Counter.Inc/Add and Histogram.Observe are commutative and
// deliberately absent.
var telemetrySinks = map[string]map[string]bool{
	"Gauge": {"Set": true, "Add": true},
	"Ring":  {"Append": true},
}

// sinkCall classifies an order-sensitive call, returning a description
// for the diagnostic ("" when the call is order-safe).
func sinkCall(pass *radlint.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg() == nil {
			return ""
		}
		switch fn.Pkg().Path() {
		case "fmt":
			if fmtSinks[fn.Name()] {
				return "fmt." + fn.Name()
			}
		case "encoding/binary":
			if fn.Name() == "Write" {
				return "binary.Write"
			}
		}
		return ""
	}
	recv := recvTypeName(sig)
	if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/json" && fn.Name() == "Encode" {
		return "(*json.Encoder).Encode"
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == telemetryPkgPath {
		if telemetrySinks[recv][fn.Name()] {
			return "order-sensitive telemetry (telemetry." + recv + ")." + fn.Name()
		}
		return ""
	}
	if writeMethods[fn.Name()] {
		return "an output writer (" + recv + ")." + fn.Name()
	}
	return ""
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// rootIdent unwraps selectors, indexes, stars, slices, and parens down
// to the base identifier, or nil.
func rootIdent(x ast.Expr) *ast.Ident {
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.ParenExpr:
			x = e.X
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.SliceExpr:
			x = e.X
		default:
			return nil
		}
	}
}
