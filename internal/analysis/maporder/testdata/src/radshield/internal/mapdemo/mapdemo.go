// Package mapdemo is the maporder fixture: map iterations that feed
// output (flagged) and the commutative or sorted idioms (clean).
package mapdemo

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"radshield/internal/telemetry"
)

// RenderUnsorted appends rows straight out of map order — the bytes
// differ between two identical runs.
func RenderUnsorted(scores map[string]int) []string {
	var rows []string
	for name, s := range scores {
		rows = append(rows, fmt.Sprintf("%s=%d", name, s)) // want `range over map scores appends in iteration order without a later sort`
	}
	return rows
}

// RenderSortedKeys is the sanctioned idiom: collect the keys, sort,
// iterate the sorted slice. The collection append is recognized as
// clean because keys is sorted after the loop.
func RenderSortedKeys(scores map[string]int) []string {
	keys := make([]string, 0, len(scores))
	for name := range scores {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	rows := make([]string, 0, len(keys))
	for _, name := range keys {
		rows = append(rows, fmt.Sprintf("%s=%d", name, scores[name]))
	}
	return rows
}

// RenderSortAfter collects rows in map order but sorts the result
// before it can reach output — equally deterministic, equally clean.
func RenderSortAfter(scores map[string]int) []string {
	var rows []string
	for name, s := range scores {
		rows = append(rows, fmt.Sprintf("%s=%d", name, s))
	}
	sort.Strings(rows)
	return rows
}

// SlicesSorted uses the slices package sorter; same idiom, same
// exemption.
func SlicesSorted(scores map[string]int) []string {
	var keys []string
	for name := range scores {
		keys = append(keys, name)
	}
	slices.Sort(keys)
	return keys
}

// PrintDirect streams rows in map order.
func PrintDirect(scores map[string]int) {
	for name, s := range scores {
		fmt.Printf("%s=%d\n", name, s) // want `range over map scores feeds fmt\.Printf`
	}
}

// BuildString writes to a builder in map order.
func BuildString(scores map[string]int) string {
	var b strings.Builder
	for name := range scores {
		b.WriteString(name) // want `range over map scores feeds an output writer \(Builder\)\.WriteString`
	}
	return b.String()
}

// SendKeys emits keys on a channel in map order.
func SendKeys(scores map[string]int, ch chan<- string) {
	for name := range scores {
		ch <- name // want `range over map scores sends on a channel`
	}
}

// GaugeLastWriteWins sets a gauge per key: the surviving value is
// whichever key iterated last.
func GaugeLastWriteWins(reg *telemetry.Registry, scores map[string]int) {
	g := reg.Gauge("mapdemo_last", "score")
	for _, s := range scores {
		g.Set(float64(s)) // want `range over map scores feeds order-sensitive telemetry \(telemetry\.Gauge\)\.Set`
	}
}

// report holds two output fields to exercise field-level sort
// matching.
type report struct {
	Names []string
	Rows  []string
}

// FieldSorted appends to a struct field and sorts that same field —
// the idiom holds at field granularity.
func FieldSorted(scores map[string]int) report {
	var rep report
	for name := range scores {
		rep.Names = append(rep.Names, name)
	}
	sort.Strings(rep.Names)
	return rep
}

// FieldMismatch sorts a *different* field of the same struct: the
// appended field still leaves in map order, so it is flagged.
func FieldMismatch(scores map[string]int) report {
	var rep report
	for name := range scores {
		rep.Rows = append(rep.Rows, name) // want `range over map scores appends in iteration order without a later sort`
	}
	sort.Strings(rep.Names)
	return rep
}

// CountClean accumulates integers — commutative, order cannot be
// observed.
func CountClean(scores map[string]int) int {
	total := 0
	for _, s := range scores {
		total += s
	}
	return total
}

// InvertClean builds another map — also order-free.
func InvertClean(scores map[string]int) map[int]string {
	inv := make(map[int]string, len(scores))
	for name, s := range scores {
		inv[s] = name
	}
	return inv
}

// CounterClean bumps a commutative counter per entry: exempt.
func CounterClean(reg *telemetry.Registry, scores map[string]int) {
	c := reg.Counter("mapdemo_total", "entries")
	for _, s := range scores {
		c.Add(uint64(s))
	}
}
