package maporder_test

import (
	"testing"

	"radshield/internal/analysis/maporder"
	"radshield/internal/analysis/radlint/radlinttest"
)

func TestMapOrder(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), maporder.Analyzer,
		"radshield/internal/mapdemo",
	)
}
