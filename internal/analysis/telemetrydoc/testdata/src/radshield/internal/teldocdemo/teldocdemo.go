// Package teldocdemo is the telemetrydoc fixture: registry metrics
// that are (and are not) documented in the fixture TELEMETRY.md.
package teldocdemo

import "radshield/internal/telemetry"

const latencyMetric = "teldoc_latency_ms"

// Wire registers one metric per constructor. Documented names are
// clean; the undocumented ones are flagged at the name argument.
func Wire(reg *telemetry.Registry) {
	reg.Counter("teldoc_documented_total", "events")
	reg.Gauge("teldoc_level", "ratio")
	reg.Histogram(latencyMetric, "ms", []float64{1, 10, 100})

	reg.Counter("teldoc_missing_total", "events")                       // want `metric "teldoc_missing_total" is not documented in TELEMETRY\.md`
	reg.GaugeFunc("teldoc_ghost", "ratio", func() float64 { return 0 }) // want `metric "teldoc_ghost" is not documented in TELEMETRY\.md`
}

// WireDynamic builds the name at run time: that is telemetryname's
// finding, not ours, so telemetrydoc stays silent.
func WireDynamic(reg *telemetry.Registry, suffix string) {
	reg.Counter("teldoc_"+suffix, "events") //radlint:allow telemetryname fixture exercises the dynamic-name path
}
