package telemetrydoc_test

import (
	"testing"

	"radshield/internal/analysis/radlint/radlinttest"
	"radshield/internal/analysis/telemetrydoc"
)

func TestTelemetryDoc(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), telemetrydoc.Analyzer,
		"radshield/internal/teldocdemo",
	)
}
