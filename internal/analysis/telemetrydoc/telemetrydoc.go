// Package telemetrydoc implements the radlint analyzer that closes the
// telemetry catalog loop: every literal metric name handed to a
// telemetry.Registry constructor must be documented in TELEMETRY.md.
//
// telemetryname enforces half of the catalog promise — names are
// compile-time snake_case constants, so the catalog is *possible*.
// This analyzer enforces the other half: the catalog is *complete*. A
// metric that exists in code but not in TELEMETRY.md is invisible to
// anyone auditing which paper table a number feeds, which defeats the
// reason the registry requires constant names in the first place.
//
// The documented-name set is every `backtick-quoted` snake_case token
// in TELEMETRY.md (resolved against the repository root; fixtures get
// their own TELEMETRY.md under testdata). The set is parsed once per
// radlint invocation and shared across packages.
package telemetrydoc

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"regexp"

	"radshield/internal/analysis/radlint"
)

// Analyzer flags metric names missing from TELEMETRY.md.
var Analyzer = &radlint.Analyzer{
	Name: "telemetrydoc",
	Doc: "every literal metric name passed to a telemetry.Registry " +
		"constructor must be documented in TELEMETRY.md, keeping the " +
		"catalog complete",
	Run: run,
}

// registryMethods are the (*telemetry.Registry) constructors whose
// first argument is a metric name — the same set telemetryname checks.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

const registryType = "radshield/internal/telemetry.Registry"

// catalogFile is the repository document holding the metric catalog.
const catalogFile = "TELEMETRY.md"

// nameToken matches the snake_case metric names the catalog documents
// in backticks.
var nameToken = regexp.MustCompile("`([a-z][a-z0-9]*(?:_[a-z0-9]+)*)`")

// catalog loads and memoizes the documented-name set for this
// invocation.
func catalog(pass *radlint.Pass) (map[string]bool, error) {
	path := filepath.Join(pass.RepoRoot, catalogFile)
	v, err := pass.Shared.Memo("telemetrydoc/"+path, func() (any, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("telemetrydoc: reading catalog: %w", err)
		}
		names := map[string]bool{}
		for _, m := range nameToken.FindAllStringSubmatch(string(data), -1) {
			names[m[1]] = true
		}
		return names, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(map[string]bool), nil
}

func run(pass *radlint.Pass) error {
	names, err := catalog(pass)
	if err != nil {
		return err
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || !registryMethods[fn.Name()] || fn.FullName() != "(*"+registryType+")."+fn.Name() {
				return true
			}
			arg := call.Args[0]
			tv := pass.TypesInfo.Types[arg]
			if tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic names are telemetryname's finding
			}
			if name := constant.StringVal(tv.Value); !names[name] {
				pass.Reportf(arg.Pos(),
					"metric %q is not documented in %s: add it to the catalog (name, unit, and the table or figure it feeds)",
					name, catalogFile)
			}
			return true
		})
	}
	return nil
}
