package schedonly_test

import (
	"testing"

	"radshield/internal/analysis/radlint/radlinttest"
	"radshield/internal/analysis/schedonly"
)

func TestSchedOnly(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), schedonly.Analyzer,
		"radshield/internal/godemo",
		"radshield/cmd/gotool",
	)
}

// TestSanctionedPackagesClean proves the negative fixtures: goroutines
// inside the sanctioned concurrency boundaries produce no findings.
func TestSanctionedPackagesClean(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), schedonly.Analyzer,
		"radshield/internal/sched",
		"radshield/cmd/groundstation",
	)
}
