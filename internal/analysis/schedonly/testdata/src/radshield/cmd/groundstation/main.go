// The groundstation command is a sanctioned concurrency boundary: its
// goroutines serve real sockets, outside campaign output.
package main

func main() {
	go serve() // sanctioned package: no finding
	select {}
}

func serve() {}
