// gotool is an unsanctioned command: its goroutines are flagged.
package main

func main() {
	ch := make(chan int)
	go produce(ch) // want `raw goroutine outside the sanctioned concurrency boundaries`
	<-ch
}

func produce(ch chan<- int) { ch <- 1 }
