// Package sched stands in for the real deterministic pool: goroutines
// here ARE the sanctioned concurrency boundary.
package sched

// Pool spawns workers; sanctioned, so no findings.
func Pool(n int, fn func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
