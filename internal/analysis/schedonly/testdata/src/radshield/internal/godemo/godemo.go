// Package godemo is the schedonly positive fixture: raw goroutines in
// an unsanctioned internal package.
package godemo

import "sync"

// Fire launches a bare goroutine — scheduling nondeterminism the
// deterministic pool cannot replay.
func Fire(done chan<- struct{}) {
	go func() { // want `raw goroutine outside the sanctioned concurrency boundaries`
		done <- struct{}{}
	}()
}

// FanOut launches one goroutine per shard.
func FanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go work(&wg, i) // want `raw goroutine outside the sanctioned concurrency boundaries`
	}
	wg.Wait()
}

func work(wg *sync.WaitGroup, _ int) { wg.Done() }

// Watchdog is allowed to spawn: it only observes, never touches
// campaign state, and the justification is written down.
func Watchdog(stop <-chan struct{}) {
	go func() { //radlint:allow schedonly watchdog only blocks on stop; it never writes campaign state or output
		<-stop
	}()
}
