// Package schedonly implements the radlint analyzer that confines raw
// goroutines to the sanctioned concurrency boundaries.
//
// The deterministic campaign scheduler (internal/sched) exists so that
// parallel campaigns render byte-identical output at any worker count:
// all concurrency is funneled through one pool whose collection order
// is defined. A raw `go` statement anywhere else in the simulation
// reintroduces scheduling nondeterminism that no seed can replay — and
// it does so silently, because the output is only *usually* reordered.
//
// The analyzer flags every `go` statement in `internal/...` and
// `cmd/...` outside the sanctioned boundaries:
//
//   - internal/sched — the deterministic pool itself;
//   - internal/downlink — real-I/O ground link (its concurrency is
//     against sockets, not campaign state, and its delivery order is
//     sequenced by the protocol);
//   - internal/telemetry — the HTTP snapshot endpoint;
//   - cmd/groundstation — the concurrent ground segment server.
//
// Code elsewhere that genuinely needs a goroutine and can argue
// determinism (or operates strictly outside campaign output) carries a
// //radlint:allow schedonly comment with the argument written down.
package schedonly

import (
	"go/ast"

	"radshield/internal/analysis/radlint"
)

// Analyzer flags raw goroutines outside the sanctioned packages.
var Analyzer = &radlint.Analyzer{
	Name: "schedonly",
	Doc: "raw go statements are confined to the sanctioned concurrency " +
		"boundaries (internal/sched, internal/downlink, internal/telemetry, " +
		"cmd/groundstation): campaign concurrency must flow through the " +
		"deterministic pool",
	Run: run,
}

// sanctioned are the packages whose goroutines are part of the
// concurrency design rather than a leak around it.
var sanctioned = map[string]bool{
	"radshield/internal/sched":     true,
	"radshield/internal/downlink":  true,
	"radshield/internal/telemetry": true,
	"radshield/cmd/groundstation":  true,
}

func run(pass *radlint.Pass) error {
	path := pass.Pkg.Path()
	if sanctioned[path] {
		return nil
	}
	if !radlint.PathIsInternal(path) && !radlint.PathIsCommand(path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw goroutine outside the sanctioned concurrency boundaries: campaign concurrency must flow through the deterministic sched pool (or justify with //radlint:allow schedonly)")
			}
			return true
		})
	}
	return nil
}
