package nopanic_test

import (
	"testing"

	"radshield/internal/analysis/nopanic"
	"radshield/internal/analysis/radlint/radlinttest"
)

func TestNoPanic(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), nopanic.Analyzer,
		"radshield/internal/panicdemo",
		"radshield/cmd/panictool",
	)
}
