// Package nopanic implements the radlint analyzer that forbids panic
// in internal/... library code.
//
// A panic in flight software is an unplanned power cycle: the paper's
// availability argument (§4.3) counts recovery time against the
// protection scheme, so library code must surface failures as errors
// the caller can vote on, journal, or retry. Two escape hatches exist,
// both deliberate and visible in the diff:
//
//   - invariant-violation helpers: a function whose name starts with
//     "must" (or "Must") and whose doc comment documents that it
//     panics is exempt — that is the repo's mustf idiom;
//   - //radlint:allow nopanic <reason> on the offending line, used for
//     constructor argument validation where the caller is trusted
//     code and an error return would only move the crash.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"radshield/internal/analysis/radlint"
)

// Analyzer flags panic calls in internal library code.
var Analyzer = &radlint.Analyzer{
	Name: "nopanic",
	Doc: "forbid panic in internal/... library code: return errors so callers " +
		"can vote/journal/retry; documented must* helpers are exempt",
	Run: run,
}

func run(pass *radlint.Pass) error {
	if !radlint.PathIsInternal(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		var exempt []*ast.FuncDecl
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && isDocumentedMust(fd) {
				exempt = append(exempt, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || !isBuiltinPanic(pass.TypesInfo, id) {
				return true
			}
			for _, fd := range exempt {
				if fd.Pos() <= call.Pos() && call.Pos() < fd.End() {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"panic in internal library code: return an error, or wrap the invariant in a documented must* helper")
			return true
		})
	}
	return nil
}

// isBuiltinPanic reports whether id resolves to the predeclared panic.
func isBuiltinPanic(info *types.Info, id *ast.Ident) bool {
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isDocumentedMust reports whether fd is an invariant-violation helper:
// named must*/Must* with a doc comment that says it panics.
func isDocumentedMust(fd *ast.FuncDecl) bool {
	if !strings.HasPrefix(strings.ToLower(fd.Name.Name), "must") {
		return false
	}
	return fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
}
