// Package panicdemo is a nopanic fixture: internal library code where
// panic must become an error, a documented must* helper, or a
// justified allowlisting.
package panicdemo

import "fmt"

// Validate panics on bad input — flagged: library code returns errors.
func Validate(n int) {
	if n < 0 {
		panic("negative") // want `panic in internal library code`
	}
}

// mustPositive panics when n is not positive. It is a documented
// invariant-violation helper, so its panic is exempt.
func mustPositive(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("panicdemo: %d must be positive", n))
	}
	return n
}

// mustNoDoc is named like a helper but its doc comment never states
// the crash contract, so it is not exempt.
func mustNoDoc(n int) int {
	if n <= 0 {
		panic("undocumented") // want `panic in internal library code`
	}
	return n
}

// Uses keeps the helpers referenced.
func Uses(n int) int {
	return mustPositive(n) + mustNoDoc(n)
}

// Allowed shows the constructor-validation escape hatch.
func Allowed(capacity int) {
	if capacity <= 0 {
		//radlint:allow nopanic fixture: trusted-caller constructor validation
		panic("capacity must be positive")
	}
}
