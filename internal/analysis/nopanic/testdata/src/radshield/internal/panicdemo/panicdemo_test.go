// Test files are exempt: t.Fatal-adjacent panics in tests are not
// library crashes. No want annotations.
package panicdemo

import "testing"

func TestPanicIsFineInTests(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	panic("test-only panic")
}
