// Command panictool shows that nopanic scopes to internal/ library
// code only: a command crashing on startup misconfiguration is the
// process exiting, not flight software losing availability. No want
// annotations.
package main

func main() {
	panic("commands may crash")
}
