// Package experiments is the armpurity fixture shaped like the
// mission/adapt layer's adaptive campaign: a profile→event-stream
// generator, a posture controller, and a paired static-vs-adaptive
// arm. Each way the real campaign could silently lose its
// (config, seed) → result contract appears here once, next to the
// sanctioned shape.
package experiments

import (
	"math/rand"
	"time"

	"radshield/internal/sched"
)

// Phase is one leg of a mission profile: piecewise-constant flux.
type Phase struct {
	Dur  time.Duration
	Rate float64
}

// Config is the (config, seed) tuple an adaptive campaign must be a
// function of.
type Config struct {
	Seed   int64
	Phases []Phase
}

// lastReason is mutable package-level state: a controller trace that
// outlives the campaign call.
var lastReason string

// GlobalScheduleCampaign derives the event schedule from the
// process-global generator — two runs with the same (config, seed)
// fly different missions.
func GlobalScheduleCampaign(cfg Config) int {
	return schedule(cfg.Phases) // want `campaign entry point GlobalScheduleCampaign must be a pure function of \(config, seed\): rand\.Int63n \(global randomness\) via experiments\.schedule`
}

// schedule draws one arrival per phase from the global source.
func schedule(phases []Phase) int {
	n := 0
	for _, p := range phases {
		n += int(rand.Int63n(int64(p.Dur) + 1))
	}
	return n
}

// WallTraceCampaign stamps controller moves with the host clock
// through a method two frames down.
func WallTraceCampaign(cfg Config) time.Duration {
	var c controller
	c.note() // want `campaign entry point WallTraceCampaign must be a pure function of \(config, seed\): time\.Now \(wall-clock read\) via experiments\.controller\.note`
	return c.lastMove + time.Duration(len(cfg.Phases))
}

// controller is an adaptive-posture controller whose move timestamps
// must come from the sim clock, not the host.
type controller struct {
	lastMove time.Duration
}

func (c *controller) note() {
	c.lastMove = time.Duration(time.Now().UnixNano())
}

// TraceLeakCampaign records the controller's last escalation reason in
// package state: the write couples runs to each other.
func TraceLeakCampaign(cfg Config) int {
	record("ild_detect") // want `campaign entry point TraceLeakCampaign must be a pure function of \(config, seed\): package-level variable experiments\.lastReason \(write of package-level state\) via experiments\.record`
	return len(cfg.Phases)
}

func record(reason string) {
	lastReason = reason
}

// AdaptiveDemoCampaign is the sanctioned shape: the schedule and the
// controller both flow from the explicit seed and sim durations. No
// finding.
func AdaptiveDemoCampaign(cfg Config) int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var c controller
	events := 0
	var t time.Duration
	for _, p := range cfg.Phases {
		events += int(rng.Int63n(int64(p.Dur) + 1))
		t += p.Dur
		c.lastMove = t
	}
	return events + int(c.lastMove/time.Hour)
}

// PairedArmsCampaign runs static and adaptive arms through the
// deterministic scheduler, one seeded generator per trial. No finding.
func PairedArmsCampaign(cfg Config) ([]int, error) {
	return sched.Map(2*len(cfg.Phases), 1, func(i int) (int, error) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		return int(rng.Int63n(16)), nil
	})
}
