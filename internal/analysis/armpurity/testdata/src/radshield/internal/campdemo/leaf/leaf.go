// Package leaf is the bottom of the armpurity fixture call chain: it
// holds the primitive impurities (and one provably-immutable table)
// that must surface two packages up, at the campaign entry points.
package leaf

import "time"

// gains is package-level but never written after its declaration:
// configuration, not state. Reading it is deterministic.
var gains = []float64{0.25, 0.5, 1.0, 2.0}

// runs is mutable package-level state.
var runs int

// Tick reads the wall clock — the canonical nondeterminism.
func Tick() int64 {
	return time.Now().UnixNano()
}

// Bump mutates package state.
func Bump() {
	runs++
}

// Gain reads the immutable table — deterministic.
func Gain(i int) float64 {
	return gains[i%len(gains)]
}

// scratch is genuinely mutable, but declared observably deterministic:
// the recycled buffers are wiped before reuse, so reads through the
// shelf cannot distinguish two runs.
//
//radlint:pure buffers are zeroed before reuse; whether a Borrow recycles or allocates is invisible in outputs
var scratch [][]byte

// Borrow hands out a zeroed buffer, recycling through the declared-pure
// shelf. Deterministic by declaration.
func Borrow() []byte {
	if n := len(scratch); n > 0 {
		b := scratch[n-1]
		scratch = scratch[:n-1]
		clear(b)
		return b
	}
	return make([]byte, 64)
}

// Stamp reads the wall clock but is declared pure with a written
// reason, so callers summarize it as deterministic.
//
//radlint:pure fixture exercises the function-level pure declaration
func Stamp() int64 {
	return time.Now().Unix()
}

// hits carries a bare directive with no justification: inert, so hits
// remains mutable state and Hit still taints its callers.
//
//radlint:pure
var hits int

// Hit mutates package state behind the inert directive.
func Hit() {
	hits++
}
