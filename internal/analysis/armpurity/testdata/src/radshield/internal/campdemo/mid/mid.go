// Package mid is the middle of the armpurity fixture call chain: it
// contains no impurity of its own, so a per-package analysis would
// call it clean — only cross-package facts carry leaf's taints through.
package mid

import (
	"math/rand"

	"radshield/internal/campdemo/leaf"
)

// Sim is impure only transitively, via leaf.Tick.
func Sim(steps int) int64 {
	var acc int64
	for i := 0; i < steps; i++ {
		acc += leaf.Tick()
	}
	return acc
}

// Pure is the sanctioned pattern: explicit seed, injected generator,
// immutable package data.
func Pure(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64() * leaf.Gain(3)
}

// Count is impure transitively via leaf.Bump's state write.
func Count() {
	leaf.Bump()
}
