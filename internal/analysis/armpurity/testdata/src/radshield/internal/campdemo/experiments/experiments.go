// Package experiments is the armpurity fixture entry-point package:
// exported *Campaign functions are checked transitively, with the
// impurities living two packages below in campdemo/leaf.
package experiments

import (
	"radshield/internal/campdemo/leaf"
	"radshield/internal/campdemo/mid"
	"radshield/internal/sched"
)

// Config is the (config, seed) tuple a campaign must be a function of.
type Config struct {
	Steps int
	Seed  int64
}

// DemoCampaign reaches time.Now through mid.Sim → leaf.Tick — neither
// this package nor mid contains the impurity.
func DemoCampaign(cfg Config) int64 {
	return mid.Sim(cfg.Steps) // want `campaign entry point DemoCampaign must be a pure function of \(config, seed\): time\.Now \(wall-clock read\) via mid\.Sim → leaf\.Tick`
}

// CounterCampaign reaches a package-state write through mid.Count →
// leaf.Bump.
func CounterCampaign(cfg Config) int {
	mid.Count() // want `campaign entry point CounterCampaign must be a pure function of \(config, seed\): package-level variable leaf\.runs \(write of package-level state\) via mid\.Count → leaf\.Bump`
	return cfg.Steps
}

// CleanCampaign is the sanctioned shape: everything flows from the
// explicit config and seed, randomness is injected, package reads are
// provably immutable. No finding.
func CleanCampaign(cfg Config) float64 {
	return mid.Pure(cfg.Seed)
}

// JobsCampaign submits a deterministic job to the scheduler. No
// finding: seeded randomness and immutable reads are the contract.
func JobsCampaign(cfg Config) ([]float64, error) {
	return sched.Map(cfg.Steps, 1, func(i int) (float64, error) {
		return mid.Pure(cfg.Seed + int64(i)), nil
	})
}

// PoolCampaign recycles buffers through the declared-pure shelf and
// calls the declared-pure function: deterministic by declaration, with
// the justification written at the declarations in leaf. No finding.
func PoolCampaign(cfg Config) int {
	b := leaf.Borrow()
	return len(b) + int(leaf.Stamp()) + cfg.Steps
}

// InertCampaign reaches a bare //radlint:pure with no reason: the
// directive is inert, so the state write still surfaces here.
func InertCampaign(cfg Config) int {
	leaf.Hit() // want `campaign entry point InertCampaign must be a pure function of \(config, seed\): package-level variable leaf\.hits \(write of package-level state\) via leaf\.Hit`
	return cfg.Steps
}

// helperCampaign is unexported: not an entry point, not checked.
func helperCampaign() int64 {
	return mid.Sim(1)
}

// WallJob submits a wall-clock-tainted job to the scheduler; the
// finding lands at the taint's entry into the job body.
func WallJob() {
	_, _ = sched.Map(4, 1, func(i int) (int64, error) {
		return mid.Sim(i), nil // want `job function literal passed to sched\.Map must be deterministic: time\.Now \(wall-clock read\) via mid\.Sim → leaf\.Tick`
	})
}

// CaptureJob writes a captured variable from concurrent trials — a
// race and an ordering dependence at once.
func CaptureJob() {
	total := 0
	_, _ = sched.Map(4, 1, func(i int) (int, error) {
		total += i // want `job function literal passed to sched\.Map must be deterministic: captured variable total \(write to captured variable\)`
		return total, nil
	})
}

// DynamicJob cannot be proven: the job is a function-typed parameter.
func DynamicJob(fn func(int) (int, error)) {
	_, _ = sched.Map(4, 1, fn) // want `job passed to sched\.Map is not statically resolvable: pass a func literal or named function so determinism can be proven`
}
