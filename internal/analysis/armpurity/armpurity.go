// Package armpurity implements the radlint analyzer that proves every
// campaign arm is a pure function of (config, seed).
//
// Every golden table in EXPERIMENTS.md — and the content-addressed
// campaign result cache the ROADMAP plans — rests on the claim that
// re-running a campaign arm with the same configuration and seed
// reproduces the same bytes. This analyzer turns that claim from "the
// goldens happen to be byte-identical" into a compile-time proof
// obligation, using the whole-program purity engine
// (internal/analysis/purity):
//
//   - every exported *Campaign function in an experiments package must
//     be transitively free of wall-clock reads, global randomness, and
//     reads/writes of mutable package-level state — through every
//     callee in the module, across package boundaries;
//   - every job function submitted to the deterministic scheduler
//     (sched.Map, sched.Stream) must satisfy the same contract, plus
//     never write variables captured from the enclosing scope (trials
//     run concurrently; a captured write is a race and an ordering
//     dependence at once);
//   - a scheduler job that cannot be statically resolved (a
//     function-typed variable, a call result) is itself a finding: the
//     contract must be provable, not plausible.
//
// Diagnostics carry the call chain from the entry point down to the
// primitive nondeterminism, so an impurity two packages below the
// campaign reads like:
//
//	campaign entry point DemoCampaign must be a pure function of
//	(config, seed): time.Now (wall-clock read) via mid.Sim → leaf.Tick
package armpurity

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"radshield/internal/analysis/purity"
	"radshield/internal/analysis/radlint"
)

// Analyzer proves campaign arms deterministic.
var Analyzer = &radlint.Analyzer{
	Name: "armpurity",
	Doc: "campaign entry points (experiments.*Campaign) and scheduler jobs " +
		"(sched.Map/Stream) must be transitively deterministic: no wall clock, " +
		"no global rand, no mutable package-level state — the (config, seed) → " +
		"result contract the campaign result cache keys on",
	Run: run,
}

const schedPkgPath = "radshield/internal/sched"

// entryTaints is the contract for named campaign entry points; jobs
// submitted to the concurrent scheduler additionally must not write
// captured variables.
const entryTaints = purity.WallClock | purity.GlobalRand | purity.GlobalRead | purity.GlobalWrite
const jobTaints = entryTaints | purity.CapturedWrite

func run(pass *radlint.Pass) error {
	facts := purity.Of(pass)
	self := pass.PackageFor(pass.Pkg.Path())
	if self == nil {
		return nil
	}

	if isExperimentsPackage(pass.Pkg.Path()) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !isCampaignEntry(fd.Name.Name) || fd.Body == nil {
					continue
				}
				fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sum := facts.Function(fn)
				for _, c := range sum.CausesFor(entryTaints) {
					pass.Reportf(causePos(c, fd),
						"campaign entry point %s must be a pure function of (config, seed): %s",
						fd.Name.Name, c.Describe())
				}
			}
		}
	}

	// Scheduler jobs: the fn argument of sched.Map / sched.Stream,
	// wherever submitted.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, argIdx := schedJobArg(pass, call)
			if name == "" || argIdx >= len(call.Args) {
				return true
			}
			job := call.Args[argIdx]
			sum, desc, resolved := facts.Expr(self, job)
			if !resolved {
				pass.Reportf(job.Pos(),
					"job passed to sched.%s is not statically resolvable: pass a func literal or named function so determinism can be proven",
					name)
				return true
			}
			for _, c := range sum.CausesFor(jobTaints) {
				pass.Reportf(c.Pos,
					"job %s passed to sched.%s must be deterministic: %s", desc, name, c.Describe())
			}
			return true
		})
	}
	return nil
}

// causePos picks the diagnostic position: the cause site when it lies
// inside the entry point's file scope (direct causes and top-frame call
// sites always do), else the declaration name.
func causePos(c purity.Cause, fd *ast.FuncDecl) token.Pos {
	if !c.Pos.IsValid() {
		return fd.Name.Pos()
	}
	return c.Pos
}

// isExperimentsPackage reports whether path names a campaign package:
// the module's internal/experiments or any fixture package ending in
// /experiments.
func isExperimentsPackage(path string) bool {
	return path == "experiments" || strings.HasSuffix(path, "/experiments")
}

// isCampaignEntry reports whether an exported function name declares a
// campaign entry point.
func isCampaignEntry(name string) bool {
	return ast.IsExported(name) && strings.HasSuffix(name, "Campaign")
}

// schedJobArg recognizes sched.Map / sched.Stream calls and returns the
// scheduler function name and the index of the job argument; "" when
// the call is not a scheduler submission.
func schedJobArg(pass *radlint.Pass, call *ast.CallExpr) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != schedPkgPath {
		return "", 0
	}
	switch fn.Name() {
	case "Map", "Stream":
		// Map[T](n, workers, fn, opts...) / Stream[T](n, workers, fn, emit, opts...):
		// the trial function is argument 2. Stream's emit callback runs
		// serially in the caller's goroutine in trial order, so it may
		// touch caller state freely.
		return fn.Name(), 2
	}
	return "", 0
}
