package armpurity_test

import (
	"testing"

	"radshield/internal/analysis/armpurity"
	"radshield/internal/analysis/radlint/radlinttest"
)

// TestArmPurity drives the cross-package fixture: the entry-point
// package is analyzed, with the impurities two packages below it
// (campdemo/experiments → campdemo/mid → campdemo/leaf) resolved
// through the purity engine's whole-program facts.
func TestArmPurity(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), armpurity.Analyzer,
		"radshield/internal/campdemo/experiments",
	)
}

// TestArmPurityAdaptive drives the mission/adapt-shaped fixture: a
// profile event generator, a posture controller and a paired-arm
// campaign, with the impurities (global schedule draws, wall-clock
// move stamps, package-level trace state) inside the entry package.
func TestArmPurityAdaptive(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), armpurity.Analyzer,
		"radshield/internal/adaptcampdemo/experiments",
	)
}

// TestArmPurityHelpersClean asserts the analyzer stays silent on the
// helper packages themselves: mid and leaf define no campaign entry
// points and submit no scheduler jobs, so taints are reported only
// where the contract binds.
func TestArmPurityHelpersClean(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), armpurity.Analyzer,
		"radshield/internal/campdemo/mid",
		"radshield/internal/campdemo/leaf",
	)
}
