// Package simclocktime implements the radlint analyzer that forbids
// host-clock reads (time.Now, time.Sleep, time.Since, time.Tick, and
// friends) in Radshield's library and command code.
//
// The paper's SEL/SEU campaigns — and the telemetry snapshots PR 1
// layered on top of them — are only reproducible because every
// component measures time against the manually-advanced
// internal/simclock. A single stray time.Now makes two runs of the
// same seed diverge, which silently invalidates any A/B comparison
// between schemes. Code that genuinely needs the host clock (e.g.
// radbench's -wallclock profiling mode) carries a //radlint:allow
// simclocktime comment with its justification.
package simclocktime

import (
	"go/ast"
	"strings"

	"radshield/internal/analysis/radlint"
)

// Analyzer flags uses of wall-clock time functions.
var Analyzer = &radlint.Analyzer{
	Name: "simclocktime",
	Doc: "forbid time.Now/Sleep/Since/Tick etc. in internal/... and cmd/...: " +
		"deterministic simulation must route time through simclock.Clock",
	Run: run,
}

func run(pass *radlint.Pass) error {
	path := pass.Pkg.Path()
	if !radlint.PathIsInternal(path) && !radlint.PathIsCommand(path) {
		return nil
	}
	if strings.HasSuffix(path, "internal/simclock") {
		return nil // the sanctioned abstraction itself
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; radlint.IsWallClockFunc(obj) {
				pass.Reportf(id.Pos(),
					"time.%s reads the host clock; use simclock.Clock so runs replay deterministically",
					id.Name)
			}
			return true
		})
	}
	return nil
}
