// Package demo is a simclocktime fixture: library code under
// internal/ that reaches for the host clock.
package demo

import (
	"time"
)

// Elapsed measures with the wall clock — every call site here must be
// flagged.
func Elapsed() time.Duration {
	start := time.Now()            // want `time\.Now reads the host clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the host clock`
	<-time.Tick(time.Millisecond)  // want `time\.Tick reads the host clock`
	<-time.After(time.Millisecond) // want `time\.After reads the host clock`
	return time.Since(start)       // want `time\.Since reads the host clock`
}

// AsValue passes the function around without calling it — still a use.
func AsValue() func() time.Time {
	return time.Now // want `time\.Now reads the host clock`
}

// DurationsAreFine exercises the allowed surface of package time:
// durations, constants, and formatting never touch the host clock.
func DurationsAreFine(d time.Duration) string {
	d = d.Round(time.Second)
	return d.String()
}

// Allowed demonstrates the escape hatch: a justified allow comment on
// the preceding line suppresses the finding.
func Allowed() time.Time {
	//radlint:allow simclocktime fixture: documented wall-clock site
	return time.Now()
}

// AllowedTrailing demonstrates the same-line comment style.
func AllowedTrailing() time.Time {
	return time.Now() //radlint:allow simclocktime fixture: documented wall-clock site
}

// NotAllowed shows that an allow comment without a justification does
// not suppress anything.
func NotAllowed() time.Time {
	//radlint:allow simclocktime
	return time.Now() // want `time\.Now reads the host clock`
}
