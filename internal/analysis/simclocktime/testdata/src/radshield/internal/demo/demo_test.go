// Test files are exempt from every analyzer: benches and tests may
// legitimately read the host clock. No want annotations here — the
// harness fails if any of these lines is flagged.
package demo

import (
	"testing"
	"time"
)

func TestWallClockIsFineInTests(t *testing.T) {
	start := time.Now()
	time.Sleep(time.Microsecond)
	if time.Since(start) < 0 {
		t.Fatal("time went backwards")
	}
}
