// Package adaptdemo is a simclocktime fixture shaped like the adaptive
// protection controller: posture decisions must be clocked by the
// simulated mission time the caller observes, never the host clock —
// a wall-clock controller would flap differently on every machine.
package adaptdemo

import "time"

// Level is a protection posture rung.
type Level int

// WallClockController timestamps its signal window with the host
// clock. Every read is flagged.
type WallClockController struct {
	level    Level
	lastMove time.Time
}

// Note records a detection against host time.
func (c *WallClockController) Note(hold time.Duration) {
	if time.Since(c.lastMove) > hold { // want `time\.Since reads the host clock`
		c.level++
		c.lastMove = time.Now() // want `time\.Now reads the host clock`
	}
}

// SimClockController is the sanctioned shape: the caller passes the
// simulated mission time with every observation, so decisions replay
// byte-identically. Durations and comparisons never touch the host
// clock — no findings.
type SimClockController struct {
	level    Level
	lastMove time.Duration
}

// Observe advances the controller to sim time t.
func (c *SimClockController) Observe(t, hold time.Duration) Level {
	if t-c.lastMove > hold && c.level > 0 {
		c.level--
		c.lastMove = t
	}
	return c.level
}
