// Package guarddemo is a simclocktime fixture shaped like the guard
// supervisor: sensor-health staleness must be judged from the
// telemetry stream's own timestamps, never the host clock — a guard
// that reads time.Now gives different verdicts on every replay.
package guarddemo

import "time"

// Sample is a stand-in for machine.Telemetry: simulated mission time
// plus a reading.
type Sample struct {
	T    time.Duration
	RawA float64
}

// StaleWrong judges staleness with the wall clock — flagged: replaying
// the same telemetry tomorrow would yield different verdicts.
func StaleWrong(lastSeen time.Time) bool {
	return time.Since(lastSeen) > time.Second // want `time\.Since reads the host clock`
}

// DeadlineWrong arms a host-clock timer for the watchdog deadline.
func DeadlineWrong(deadline time.Duration) <-chan time.Time {
	return time.After(deadline) // want `time\.After reads the host clock`
}

// StaleRight is the sanctioned pattern: the verdict depends only on the
// fed samples, so a replay is bit-identical.
func StaleRight(prev, cur Sample, maxGap time.Duration) bool {
	return cur.T-prev.T > maxGap
}

// DeadlineRight bills a visit against its deadline from the elapsed
// simulated time the runtime hands over — pure arithmetic on durations.
func DeadlineRight(elapsed, deadline time.Duration) (time.Duration, bool) {
	if elapsed > deadline {
		return deadline, false
	}
	return elapsed, true
}
