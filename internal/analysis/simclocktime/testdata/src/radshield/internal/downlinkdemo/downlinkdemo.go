// Package downlinkdemo is a simclocktime fixture shaped like the
// downlink transmitter: retransmission deadlines and beacon cadence
// must come from the explicit simulated timestamps the caller feeds
// in, never the host clock — an ARQ machine that reads time.Now
// retransmits differently on every replay and can never be driven
// through a power-cycle boundary deterministically.
package downlinkdemo

import "time"

// pending is a stand-in for one in-flight frame.
type pending struct {
	sentAt   time.Duration
	attempts int
}

// RetransmitWrong arms the retransmission timer off the wall clock —
// flagged: replaying the same link trace tomorrow fires different
// timeouts.
func RetransmitWrong(p pending, rto time.Duration) bool {
	return time.Now().UnixNano() > int64(p.sentAt+rto) // want `time\.Now reads the host clock`
}

// BackoffWrong sleeps between retransmission attempts.
func BackoffWrong(rto time.Duration) {
	time.Sleep(rto) // want `time\.Sleep reads the host clock`
}

// RetransmitRight is the sanctioned pattern: the timeout verdict is
// pure arithmetic on the simulated clock the tick loop passes in.
func RetransmitRight(p pending, now, rto time.Duration) bool {
	return now-p.sentAt >= rto<<p.attempts
}

// BeaconDue paces heartbeats the same way — by comparing explicit
// simulated timestamps, so a beacon trace replays bit-identically.
func BeaconDue(lastBeacon, now, every time.Duration) bool {
	return now-lastBeacon >= every
}
