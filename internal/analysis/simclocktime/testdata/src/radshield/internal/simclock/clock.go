// Package simclock mirrors the real internal/simclock import path: the
// one internal package exempt from the simclocktime analyzer, since it
// is the abstraction the rule points everyone at. No want annotations —
// the harness fails if anything below is flagged.
package simclock

import "time"

// HostNow would be a violation anywhere else under internal/.
func HostNow() time.Time {
	return time.Now()
}
