// Package free sits outside internal/ and cmd/, where simclocktime
// does not apply (examples and exported library shims profile against
// the host clock legitimately). No want annotations.
package free

import "time"

// Stamp is fine here.
func Stamp() time.Time {
	return time.Now()
}
