package simclocktime_test

import (
	"testing"

	"radshield/internal/analysis/radlint/radlinttest"
	"radshield/internal/analysis/simclocktime"
)

func TestSimclockTime(t *testing.T) {
	radlinttest.Run(t, radlinttest.TestData(t), simclocktime.Analyzer,
		"radshield/internal/adaptdemo",
		"radshield/internal/demo",
		"radshield/internal/downlinkdemo",
		"radshield/internal/guarddemo",
		"radshield/internal/simclock",
		"radshield/pkg/free",
	)
}
