package forest

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls forest training.
type Config struct {
	Trees       int     // number of trees (default 50)
	MaxDepth    int     // per-tree depth cap (default 12)
	MinLeaf     int     // minimum samples per leaf (default 2)
	FeatureFrac float64 // fraction of features tried per split (default sqrt(d)/d)
	Seed        int64
}

func (c Config) withDefaults(d int) Config {
	if c.Trees <= 0 {
		c.Trees = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.FeatureFrac <= 0 || c.FeatureFrac > 1 {
		c.FeatureFrac = math.Sqrt(float64(d)) / float64(d)
	}
	return c
}

type node struct {
	feature int // -1 for leaf
	thresh  float64
	left    *node
	right   *node
	class   int // majority class at leaf
}

// Forest is a trained random-forest classifier.
type Forest struct {
	trees      []*node
	classes    int
	features   int
	importance []float64
}

// Train fits a random forest on X (row-major) with integer class labels
// 0..k-1. It panics on malformed input: training data is produced by
// experiment code, not end users.
func Train(X [][]float64, y []int, cfg Config) *Forest {
	n := len(X)
	if n == 0 || n != len(y) {
		//radlint:allow nopanic malformed training data is a programming error; the doc contract says panic
		panic(fmt.Sprintf("forest: %d samples vs %d labels", n, len(y)))
	}
	d := len(X[0])
	classes := 0
	for i, label := range y {
		if len(X[i]) != d {
			//radlint:allow nopanic malformed training data is a programming error; the doc contract says panic
			panic(fmt.Sprintf("forest: row %d has %d features, want %d", i, len(X[i]), d))
		}
		if label < 0 {
			//radlint:allow nopanic malformed training data is a programming error; the doc contract says panic
			panic(fmt.Sprintf("forest: negative label %d", label))
		}
		if label+1 > classes {
			classes = label + 1
		}
	}
	cfg = cfg.withDefaults(d)
	rng := rand.New(rand.NewSource(cfg.Seed))

	f := &Forest{classes: classes, features: d, importance: make([]float64, d)}
	mtry := int(math.Ceil(cfg.FeatureFrac * float64(d)))
	if mtry < 1 {
		mtry = 1
	}
	for t := 0; t < cfg.Trees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tr := &trainer{
			X: X, y: y, classes: classes, cfg: cfg, rng: rng,
			mtry: mtry, importance: f.importance,
		}
		f.trees = append(f.trees, tr.build(idx, 0))
	}
	// Normalize importance to sum to 1 (when any split happened).
	var total float64
	for _, v := range f.importance {
		total += v
	}
	if total > 0 {
		for i := range f.importance {
			f.importance[i] /= total
		}
	}
	return f
}

type trainer struct {
	X          [][]float64
	y          []int
	classes    int
	cfg        Config
	rng        *rand.Rand
	mtry       int
	importance []float64
}

func (t *trainer) build(idx []int, depth int) *node {
	counts := make([]int, t.classes)
	for _, i := range idx {
		counts[t.y[i]]++
	}
	majority, best := 0, -1
	pure := true
	for c, k := range counts {
		if k > best {
			best, majority = k, c
		}
		if k != 0 && k != len(idx) {
			pure = false
		}
	}
	if pure || depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinLeaf {
		return &node{feature: -1, class: majority}
	}

	parentGini := gini(counts, len(idx))
	bestFeature, bestThresh := -1, 0.0
	bestGain := 0.0
	var bestLeft, bestRight []int

	// Random feature subset.
	feats := t.rng.Perm(len(t.X[0]))[:t.mtry]
	for _, feat := range feats {
		vals := make([]float64, len(idx))
		for i, r := range idx {
			vals[i] = t.X[r][feat]
		}
		sort.Float64s(vals)
		// Candidate thresholds: midpoints of distinct adjacent values
		// (subsampled for speed on large nodes).
		stride := 1
		if len(vals) > 64 {
			stride = len(vals) / 64
		}
		for i := stride; i < len(vals); i += stride {
			if vals[i] == vals[i-1] {
				continue
			}
			thresh := (vals[i] + vals[i-1]) / 2
			lc := make([]int, t.classes)
			rc := make([]int, t.classes)
			ln := 0
			for _, r := range idx {
				if t.X[r][feat] <= thresh {
					lc[t.y[r]]++
					ln++
				} else {
					rc[t.y[r]]++
				}
			}
			rn := len(idx) - ln
			if ln < t.cfg.MinLeaf || rn < t.cfg.MinLeaf {
				continue
			}
			g := parentGini -
				(float64(ln)*gini(lc, ln)+float64(rn)*gini(rc, rn))/float64(len(idx))
			if g > bestGain {
				bestGain, bestFeature, bestThresh = g, feat, thresh
			}
		}
	}
	if bestFeature < 0 {
		return &node{feature: -1, class: majority}
	}
	for _, r := range idx {
		if t.X[r][bestFeature] <= bestThresh {
			bestLeft = append(bestLeft, r)
		} else {
			bestRight = append(bestRight, r)
		}
	}
	t.importance[bestFeature] += bestGain * float64(len(idx))
	return &node{
		feature: bestFeature,
		thresh:  bestThresh,
		left:    t.build(bestLeft, depth+1),
		right:   t.build(bestRight, depth+1),
	}
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, k := range counts {
		p := float64(k) / float64(n)
		g -= p * p
	}
	return g
}

// Predict returns the majority vote of the trees for x.
func (f *Forest) Predict(x []float64) int {
	if len(x) != f.features {
		//radlint:allow nopanic feature-count mismatch is a plumbing bug; documented panic contract
		panic(fmt.Sprintf("forest: Predict with %d features, model has %d", len(x), f.features))
	}
	votes := make([]int, f.classes)
	for _, t := range f.trees {
		votes[classify(t, x)]++
	}
	best, cls := -1, 0
	for c, v := range votes {
		if v > best {
			best, cls = v, c
		}
	}
	return cls
}

// PredictProb returns the fraction of trees voting for class 1 — useful
// for threshold sweeps in detector comparisons.
func (f *Forest) PredictProb(x []float64) float64 {
	if f.classes < 2 {
		return 0
	}
	ones := 0
	for _, t := range f.trees {
		if classify(t, x) == 1 {
			ones++
		}
	}
	return float64(ones) / float64(len(f.trees))
}

func classify(n *node, x []float64) int {
	for n.feature >= 0 {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Importance returns normalized per-feature Gini importance (sums to 1
// when the forest made any split).
func (f *Forest) Importance() []float64 {
	return append([]float64(nil), f.importance...)
}

// TopFeatures returns the indices of the k most important features in
// descending importance order — the paper's feature-selection step.
func (f *Forest) TopFeatures(k int) []int {
	idx := make([]int, f.features)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return f.importance[idx[a]] > f.importance[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
