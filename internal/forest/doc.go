// Package forest implements CART decision trees and random-forest
// classification from scratch.
//
// It plays two roles in the reproduction:
//
//  1. The black-box baseline of Table 2: a random forest trained on
//     current draw alone (the state of the art ILD is compared against,
//     after Dorise et al.), which cannot distinguish compute-induced
//     current from latchup current.
//  2. The feature-selection step of §3.1: the paper chose ILD's Table 1
//     counters by training a random forest on all candidate metrics and
//     keeping the most important features; Forest.Importance reproduces
//     that (mean Gini-decrease importance).
//
// Config sets the ensemble shape (tree count, depth, per-split feature
// sampling, seed); Train grows the ensemble on bootstrap samples;
// Predict majority-votes the trees; Importance averages each feature's
// Gini decrease across all splits.
//
// Invariants: training is deterministic given Config.Seed (bootstrap
// and feature sampling use a private seeded RNG); trees never exceed
// MaxDepth; Predict is pure — the forest is immutable after Train, so
// concurrent prediction is safe.
package forest
