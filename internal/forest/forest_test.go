package forest

import (
	"math/rand"
	"testing"
)

// separableDataset returns a 2D dataset where class = 1 iff x0 > 5.
func separableDataset(rng *rand.Rand, n int) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 10 // noise feature
		X[i] = []float64{x0, x1}
		if x0 > 5 {
			y[i] = 1
		}
	}
	return X, y
}

func TestLearnsSeparableBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := separableDataset(rng, 500)
	f := Train(X, y, Config{Trees: 20, Seed: 2})
	correct := 0
	for i := 0; i < 200; i++ {
		x0 := rng.Float64() * 10
		want := 0
		if x0 > 5 {
			want = 1
		}
		if f.Predict([]float64{x0, rng.Float64() * 10}) == want {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.95 {
		t.Fatalf("accuracy = %.3f, want ≥0.95", acc)
	}
}

func TestImportanceIdentifiesSignalFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := separableDataset(rng, 500)
	f := Train(X, y, Config{Trees: 20, Seed: 4, FeatureFrac: 1})
	imp := f.Importance()
	if imp[0] <= imp[1] {
		t.Fatalf("importance = %v, want feature 0 dominant", imp)
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importance sum = %v, want 1", sum)
	}
	top := f.TopFeatures(1)
	if len(top) != 1 || top[0] != 0 {
		t.Fatalf("TopFeatures = %v, want [0]", top)
	}
}

func TestTopFeaturesClampsK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := separableDataset(rng, 100)
	f := Train(X, y, Config{Trees: 5, Seed: 6})
	if got := f.TopFeatures(10); len(got) != 2 {
		t.Fatalf("TopFeatures(10) len = %d, want 2", len(got))
	}
}

func TestPredictProb(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := separableDataset(rng, 400)
	f := Train(X, y, Config{Trees: 21, Seed: 8})
	if p := f.PredictProb([]float64{9.5, 5}); p < 0.8 {
		t.Errorf("PredictProb(clear positive) = %v, want high", p)
	}
	if p := f.PredictProb([]float64{0.5, 5}); p > 0.2 {
		t.Errorf("PredictProb(clear negative) = %v, want low", p)
	}
}

func TestPureNodeShortCircuits(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{0, 0, 0}
	f := Train(X, y, Config{Trees: 3, Seed: 1})
	if got := f.Predict([]float64{99}); got != 0 {
		t.Fatalf("single-class forest predicted %d", got)
	}
}

func TestMinLeafRespected(t *testing.T) {
	// With MinLeaf = n, no split is legal: the tree must be a leaf that
	// predicts the majority class everywhere.
	X := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}}
	y := []int{0, 0, 0, 0, 1, 1}
	f := Train(X, y, Config{Trees: 5, MinLeaf: 6, Seed: 2})
	for _, v := range []float64{0, 5} {
		if got := f.Predict([]float64{v}); got != 0 {
			t.Fatalf("Predict(%v) = %d, want majority 0", v, got)
		}
	}
}

func TestTrainPanicsOnMalformedInput(t *testing.T) {
	cases := []func(){
		func() { Train(nil, nil, Config{}) },
		func() { Train([][]float64{{1}}, []int{0, 1}, Config{}) },
		func() { Train([][]float64{{1}, {1, 2}}, []int{0, 1}, Config{}) },
		func() { Train([][]float64{{1}}, []int{-1}, Config{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPredictDimensionPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X, y := separableDataset(rng, 50)
	f := Train(X, y, Config{Trees: 3, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	f.Predict([]float64{1})
}

func TestDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	X, y := separableDataset(rng, 300)
	a := Train(X, y, Config{Trees: 10, Seed: 42})
	b := Train(X, y, Config{Trees: 10, Seed: 42})
	for i := 0; i < 50; i++ {
		x := []float64{float64(i) / 5, float64(50-i) / 5}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed forests diverged")
		}
	}
}

func TestMulticlass(t *testing.T) {
	// Three bands on one feature.
	rng := rand.New(rand.NewSource(13))
	var X [][]float64
	var y []int
	for i := 0; i < 600; i++ {
		v := rng.Float64() * 30
		X = append(X, []float64{v})
		y = append(y, int(v/10))
	}
	f := Train(X, y, Config{Trees: 25, Seed: 3})
	cases := map[float64]int{2: 0, 15: 1, 28: 2}
	for v, want := range cases {
		if got := f.Predict([]float64{v}); got != want {
			t.Errorf("Predict(%v) = %d, want %d", v, got, want)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X, y := separableDataset(rng, 1000)
	f := Train(X, y, Config{Trees: 50, Seed: 1})
	x := []float64{3.3, 7.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Predict(x)
	}
}
