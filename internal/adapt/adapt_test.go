package adapt

import (
	"testing"
	"time"

	"radshield/internal/guard"
	"radshield/internal/telemetry"
)

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.EscalateAt = 0 },
		func(c *Config) { c.RelaxBelow = 0 },
		func(c *Config) { c.RelaxBelow = c.EscalateAt }, // no hysteresis band
		func(c *Config) { c.PanicAt = c.EscalateAt / 2 },
		func(c *Config) { c.HoldFor = -time.Second },
		func(c *Config) { c.Weights[SignalILDDetect] = -1 },
		func(c *Config) { c.Start = Level(NumLevels) },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEscalateOnSignalBurst(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	if c.Level() != LevelNominal {
		t.Fatalf("start level %v, want nominal", c.Level())
	}
	// One detection (weight 1) is below EscalateAt=2: no move.
	c.Note(time.Minute, SignalILDDetect)
	if d := c.Observe(time.Minute); d.Changed {
		t.Fatalf("single detection escalated: %+v", d)
	}
	// A second inside the window crosses the bar.
	c.Note(2*time.Minute, SignalILDDetect)
	d := c.Observe(2 * time.Minute)
	if !d.Changed || d.Level != LevelElevated {
		t.Fatalf("burst did not escalate one rung: %+v", d)
	}
	// The move consumed the evidence: next sample holds steady.
	if d := c.Observe(3 * time.Minute); d.Changed || d.Score != 0 {
		t.Fatalf("escalation did not clear the window: %+v", d)
	}
	tr := c.Trace()
	if len(tr) != 1 || tr[0].Reason != "escalate" || tr[0].From != LevelNominal || tr[0].To != LevelElevated {
		t.Fatalf("trace %+v", tr)
	}
}

func TestPanicJumpsToMax(t *testing.T) {
	c := mustNew(t, DefaultConfig())
	// Two watchdog resets (weight 3 each) score 6 ≥ PanicAt.
	c.Note(time.Minute, SignalWatchdogReset)
	c.Note(time.Minute+time.Second, SignalWatchdogReset)
	d := c.Observe(2 * time.Minute)
	if !d.Changed || d.Level != LevelMax {
		t.Fatalf("storm burst did not panic to max: %+v", d)
	}
	if tr := c.Trace(); len(tr) != 1 || tr[0].Reason != "panic" {
		t.Fatalf("trace %+v", tr)
	}
}

func TestRelaxRequiresQuietWindowAndDwell(t *testing.T) {
	cfg := DefaultConfig()
	c := mustNew(t, cfg)
	c.Note(time.Minute, SignalILDRefire) // weight 2 → escalate
	if d := c.Observe(time.Minute); d.Level != LevelElevated {
		t.Fatalf("setup escalation failed: %+v", d)
	}
	// Quiet, but inside HoldFor: must not relax yet.
	if d := c.Observe(time.Minute + cfg.HoldFor - time.Second); d.Changed {
		t.Fatalf("relaxed before the dwell floor: %+v", d)
	}
	// Past the dwell floor with an empty window: one rung down.
	d := c.Observe(time.Minute + cfg.HoldFor)
	if !d.Changed || d.Level != LevelNominal {
		t.Fatalf("quiet dwell did not relax: %+v", d)
	}
	// Relaxing restarts the dwell clock: the next rung needs HoldFor again.
	if d := c.Observe(time.Minute + cfg.HoldFor + time.Minute); d.Changed {
		t.Fatalf("second relax skipped the dwell floor: %+v", d)
	}
	at := time.Minute + 2*cfg.HoldFor
	if d := c.Observe(at); !d.Changed || d.Level != LevelRelaxed {
		t.Fatalf("dwell elapsed but no relax: %+v", d)
	}
	// At the floor there is nowhere lower to go.
	if d := c.Observe(at + 2*cfg.HoldFor); d.Changed {
		t.Fatalf("relaxed below the floor: %+v", d)
	}
}

func TestHysteresisBandHoldsLevel(t *testing.T) {
	cfg := DefaultConfig() // EscalateAt 2, RelaxBelow 1
	c := mustNew(t, cfg)
	// A lone detection per window keeps the score at 1 — inside the band
	// [RelaxBelow, EscalateAt): the level must not flap either way.
	for i := 1; i <= 6; i++ {
		at := time.Duration(i) * (cfg.Window + 2*time.Minute)
		c.Note(at, SignalILDDetect)
		if d := c.Observe(at); d.Changed {
			t.Fatalf("score-1 trickle moved the level at %v: %+v", at, d)
		}
	}
	if c.Level() != LevelNominal {
		t.Fatalf("level drifted to %v", c.Level())
	}
}

func TestWindowExpiryDropsScore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HoldFor = 0
	c := mustNew(t, cfg)
	c.Note(time.Minute, SignalILDDetect)
	c.Observe(time.Minute)
	// After the window slides past the signal the score is exactly zero
	// and (HoldFor=0) the controller relaxes.
	d := c.Observe(time.Minute + cfg.Window + time.Second)
	if d.Score != 0 {
		t.Fatalf("expired signal still scored: %+v", d)
	}
	if !d.Changed || d.Level != LevelRelaxed {
		t.Fatalf("quiet window with zero dwell floor did not relax: %+v", d)
	}
}

func TestDwellAccounting(t *testing.T) {
	cfg := DefaultConfig()
	c := mustNew(t, cfg)
	c.Observe(10 * time.Minute) // 10m at nominal
	c.Note(10*time.Minute, SignalILDRefire)
	c.Observe(10 * time.Minute) // escalates at t=10m
	c.Observe(25 * time.Minute) // 15m at elevated
	if got := c.Dwell(LevelNominal); got != 10*time.Minute {
		t.Errorf("nominal dwell %v, want 10m", got)
	}
	if got := c.Dwell(LevelElevated); got != 15*time.Minute {
		t.Errorf("elevated dwell %v, want 15m", got)
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() []Move {
		c := mustNew(t, DefaultConfig())
		for i := 0; i < 200; i++ {
			at := time.Duration(i) * 30 * time.Second
			switch {
			case i%17 == 3:
				c.Note(at, SignalILDDetect)
			case i%29 == 7:
				c.Note(at, SignalWatchdogReset)
			case i%11 == 5:
				c.Note(at, SignalEMRMismatch)
			}
			c.Observe(at)
		}
		return c.Trace()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("scripted signal pattern produced no moves")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at move %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestZeroWeightsGetDefaults(t *testing.T) {
	cfg := Config{Window: 10 * time.Minute, EscalateAt: 2, RelaxBelow: 1, Start: LevelNominal}
	c := mustNew(t, cfg)
	c.Note(time.Minute, SignalILDRefire) // default weight 2
	if d := c.Observe(time.Minute); !d.Changed {
		t.Fatalf("default weights not applied: %+v", d)
	}
}

func TestInstrumentsRecordMoves(t *testing.T) {
	reg := telemetry.NewRegistry(64)
	c, err := New(DefaultConfig(), NewInstruments(reg))
	if err != nil {
		t.Fatal(err)
	}
	c.Note(time.Minute, SignalILDRefire)
	c.Observe(time.Minute)
	var events int
	for _, ev := range reg.Events() {
		if ev.Kind == telemetry.KindAdaptLevel {
			events++
			if ev.Fields["reason"] != "escalate" {
				t.Errorf("event fields %+v", ev.Fields)
			}
		}
	}
	if events != 1 {
		t.Errorf("emitted %d adapt_level_change events, want 1", events)
	}
}

// TestPostureLadderMonotone pins the knobs the campaign's overhead claim
// rests on: ascending the ladder, thresholds only tighten, bubbles only
// densify, redundancy cost only grows, and only the cheapest rung runs
// serial-with-checksum.
func TestPostureLadderMonotone(t *testing.T) {
	redundancyCost := func(p Posture) int {
		if p.SerialChecksum {
			return 1 // single checksum-guarded run
		}
		switch p.Redundancy {
		case guard.RedundancyDMRChecksum:
			return 2
		default: // TMR
			return 3
		}
	}
	prev := PostureFor(LevelRelaxed)
	if !prev.SerialChecksum || prev.Beacon {
		t.Fatalf("relaxed posture %+v", prev)
	}
	for l := LevelNominal; l <= LevelMax; l++ {
		p := PostureFor(l)
		if p.Level != l {
			t.Errorf("PostureFor(%v).Level = %v", l, p.Level)
		}
		if p.ILDThresholdA >= prev.ILDThresholdA {
			t.Errorf("%v threshold %v not tighter than %v's %v", l, p.ILDThresholdA, prev.Level, prev.ILDThresholdA)
		}
		if p.BubbleEvery >= prev.BubbleEvery {
			t.Errorf("%v bubble cadence %v not denser than %v's %v", l, p.BubbleEvery, prev.Level, prev.BubbleEvery)
		}
		if redundancyCost(p) < redundancyCost(prev) {
			t.Errorf("%v redundancy cheaper than %v", l, prev.Level)
		}
		if p.HousekeepEvery >= prev.HousekeepEvery {
			t.Errorf("%v housekeeping %v not faster than %v's %v", l, p.HousekeepEvery, prev.Level, prev.HousekeepEvery)
		}
		if p.SerialChecksum {
			t.Errorf("%v claims the serial rung", l)
		}
		prev = p
	}
	// Every rung's threshold stays below the smallest SEL amplitude the
	// fault presets generate (70 mA) — a latchup is detectable anywhere
	// on the ladder.
	for l := LevelRelaxed; l <= LevelMax; l++ {
		if th := PostureFor(l).ILDThresholdA; th >= 0.07 {
			t.Errorf("%v threshold %v cannot see a 70 mA latchup", l, th)
		}
	}
}
