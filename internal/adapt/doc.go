// Package adapt closes the protection loop: a deterministic controller
// reads live error-rate telemetry — ILD detections and refires, EMR
// vote disagreements, guard sensor verdicts, watchdog resets — over a
// sliding simclock window and moves a four-rung protection posture
// (relaxed → nominal → elevated → max) with hysteresis.
//
// Each rung maps, via PostureFor, onto knobs the existing layers
// already expose: the ILD threshold profile, the measurement-bubble
// cadence, the payload redundancy ladder (serial+checksum → DMR+
// checksum → TMR, the guard watchdog's vocabulary), the downlink
// housekeeping cadence and beacon policy. The controller itself never
// touches those layers — it is a pure decision function; callers apply
// the posture through the hooks in ild/emr/guard/downlink.
//
// Determinism is the contract: signals carry sim times, the window is a
// slice pruned in order (never a map), and every transition lands in a
// decision trace (Trace) the adaptive campaign replays byte-identically
// at any worker width. MISSIONS.md documents the ladder and the
// hysteresis rationale; TELEMETRY.md the adapt_* metric names.
package adapt
