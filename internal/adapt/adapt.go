package adapt

import (
	"fmt"
	"time"

	"radshield/internal/guard"
)

// Level is a rung on the protection-posture ladder. Higher levels buy
// detection speed and redundancy with energy and bandwidth; the
// controller's job is to sit as low as the observed error climate
// allows.
type Level int

const (
	// LevelRelaxed is the quiet-cruise posture: sparse measurement
	// bubbles, the paper's stock ILD threshold loosened, payload runs
	// serially under the checksum guard only.
	LevelRelaxed Level = iota
	// LevelNominal is the paper's operating point with dual-modular
	// payload redundancy.
	LevelNominal
	// LevelElevated adds TMR and denser bubbles — the posture for a
	// known-hot phase or a rising error rate.
	LevelElevated
	// LevelMax is full battle stations: densest bubbles, the most
	// sensitive threshold, TMR, priority-only downlink beaconing.
	LevelMax

	// NumLevels is the ladder height.
	NumLevels = int(LevelMax) + 1
)

// String returns the level name used in telemetry and downlink
// payloads.
func (l Level) String() string {
	switch l {
	case LevelRelaxed:
		return "relaxed"
	case LevelNominal:
		return "nominal"
	case LevelElevated:
		return "elevated"
	case LevelMax:
		return "max"
	default:
		return "unknown"
	}
}

// Signal is one error-rate observation kind the controller ingests.
type Signal int

const (
	// SignalILDDetect: the latchup detector fired.
	SignalILDDetect Signal = iota
	// SignalILDRefire: the detector fired again shortly after a power
	// cycle — the classic biased-sensor storm signature.
	SignalILDRefire
	// SignalEMRMismatch: payload replicas disagreed (a vote was
	// corrected or failed) or the checksum guard rejected an input.
	SignalEMRMismatch
	// SignalGuardSensorBad: the guard supervisor demoted the detector
	// ladder (sensor health lost).
	SignalGuardSensorBad
	// SignalWatchdogReset: the hardware watchdog (or the supply's own
	// over-current trip) power cycled the board.
	SignalWatchdogReset

	numSignals = int(SignalWatchdogReset) + 1
)

// String returns the signal name.
func (s Signal) String() string {
	switch s {
	case SignalILDDetect:
		return "ild_detect"
	case SignalILDRefire:
		return "ild_refire"
	case SignalEMRMismatch:
		return "emr_mismatch"
	case SignalGuardSensorBad:
		return "guard_sensor_bad"
	case SignalWatchdogReset:
		return "watchdog_reset"
	default:
		return "unknown"
	}
}

// Config tunes the controller. The escalate/relax pair plus the dwell
// floor implement hysteresis: the escalation threshold is crossed by a
// burst of weighted signals inside the sliding window, but relaxing
// additionally requires the score to fall strictly below a lower bar
// AND a minimum dwell at the current level — so one quiet window after
// a storm never bounces the posture straight back down (MISSIONS.md
// records the rationale).
type Config struct {
	// Window is the sliding simclock span over which signal weights are
	// summed into the score.
	Window time.Duration
	// EscalateAt escalates one rung when the windowed score reaches it.
	EscalateAt float64
	// PanicAt jumps straight to LevelMax (storm response). Zero
	// disables the jump.
	PanicAt float64
	// RelaxBelow relaxes one rung when the score falls strictly below
	// it. Must be < EscalateAt — the gap is the hysteresis band.
	RelaxBelow float64
	// HoldFor is the minimum dwell at a level before the controller may
	// relax out of it. Escalation is never held back.
	HoldFor time.Duration
	// Weights maps each Signal to its score contribution; a zero array
	// is replaced by DefaultConfig's weights. A fixed-size array (not a
	// map) keeps iteration order deterministic.
	Weights [numSignals]float64
	// Start is the initial level.
	Start Level
}

// DefaultConfig returns the campaign operating point: a 10-minute
// window, escalation on roughly two detector-grade signals, relaxation
// only after a fully quiet window and a 15-minute dwell.
func DefaultConfig() Config {
	return Config{
		Window:     10 * time.Minute,
		EscalateAt: 2,
		PanicAt:    6,
		RelaxBelow: 1,
		HoldFor:    15 * time.Minute,
		Weights: [numSignals]float64{
			SignalILDDetect:      1,
			SignalILDRefire:      2,
			SignalEMRMismatch:    1,
			SignalGuardSensorBad: 2,
			SignalWatchdogReset:  3,
		},
		Start: LevelNominal,
	}
}

// Validate rejects configurations the controller cannot run.
func (c Config) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("adapt: Window must be positive")
	}
	if c.EscalateAt <= 0 {
		return fmt.Errorf("adapt: EscalateAt must be positive")
	}
	if c.RelaxBelow <= 0 || c.RelaxBelow >= c.EscalateAt {
		return fmt.Errorf("adapt: RelaxBelow %v must sit in (0, EscalateAt %v) — the gap is the hysteresis band",
			c.RelaxBelow, c.EscalateAt)
	}
	if c.PanicAt != 0 && c.PanicAt < c.EscalateAt {
		return fmt.Errorf("adapt: PanicAt %v must be ≥ EscalateAt %v (or zero to disable)", c.PanicAt, c.EscalateAt)
	}
	if c.HoldFor < 0 {
		return fmt.Errorf("adapt: HoldFor must be non-negative")
	}
	for s, w := range c.Weights {
		if w < 0 {
			return fmt.Errorf("adapt: negative weight for signal %v", Signal(s))
		}
	}
	if c.Start < 0 || int(c.Start) >= NumLevels {
		return fmt.Errorf("adapt: Start level %d out of range", int(c.Start))
	}
	return nil
}

// Move is one decision-trace entry: a posture change and why.
type Move struct {
	T     time.Duration
	From  Level
	To    Level
	Score float64
	// Reason is "escalate", "panic" or "relax".
	Reason string
}

// Decision is what Observe reports for the current sample.
type Decision struct {
	Level   Level
	Changed bool
	Score   float64
}

// sigEvent is one noted signal occurrence inside the sliding window.
type sigEvent struct {
	t time.Duration
	w float64
}

// Controller is the closed loop: Note feeds it error-rate signals,
// Observe advances sim time, prunes the window, and moves the posture
// with hysteresis. Everything is deterministic — sim time in, decisions
// out, and the full decision trace is kept for the campaign to render.
type Controller struct {
	cfg   Config
	level Level
	// lastMove is when the level last changed (dwell accounting).
	lastMove time.Duration
	lastSeen time.Duration
	window   []sigEvent
	score    float64
	trace    []Move
	dwell    [NumLevels]time.Duration
	ins      *Instruments
}

// New returns a controller at the configured start level. ins may be
// nil (instrumentation disabled).
func New(cfg Config, ins *Instruments) (*Controller, error) {
	zero := [numSignals]float64{}
	if cfg.Weights == zero {
		cfg.Weights = DefaultConfig().Weights
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, level: cfg.Start, ins: ins}
	ins.setLevel(cfg.Start)
	return c, nil
}

// Level returns the current posture level.
func (c *Controller) Level() Level { return c.level }

// Trace returns the decision trace, oldest move first. The returned
// slice is the controller's own; treat it as read-only.
func (c *Controller) Trace() []Move { return c.trace }

// Dwell returns the total sim time spent at level l so far (through
// the last Observe call).
func (c *Controller) Dwell(l Level) time.Duration { return c.dwell[l] }

// Note records one signal occurrence at sim time t. Signals arriving
// between Observe calls accumulate; out-of-range signals are ignored.
func (c *Controller) Note(t time.Duration, s Signal) {
	if s < 0 || int(s) >= numSignals {
		return
	}
	w := c.cfg.Weights[s]
	if w == 0 {
		return
	}
	c.window = append(c.window, sigEvent{t: t, w: w})
	c.score += w
	c.ins.signal(s)
}

// Observe advances the controller to sim time t: expire signals older
// than the window, charge dwell, and move the posture if the hysteresis
// rules allow. Call it once per telemetry sample.
func (c *Controller) Observe(t time.Duration) Decision {
	if t > c.lastSeen {
		c.dwell[c.level] += t - c.lastSeen
		c.lastSeen = t
	}
	cutoff := t - c.cfg.Window
	drop := 0
	for drop < len(c.window) && c.window[drop].t < cutoff {
		c.score -= c.window[drop].w
		drop++
	}
	if drop > 0 {
		c.window = c.window[drop:]
		if len(c.window) == 0 {
			c.score = 0 // resorb float drift at the natural zero
		}
	}

	d := Decision{Level: c.level, Score: c.score}
	switch {
	case c.cfg.PanicAt > 0 && c.score >= c.cfg.PanicAt && c.level < LevelMax:
		c.move(t, LevelMax, "panic")
	case c.score >= c.cfg.EscalateAt && c.level < LevelMax:
		c.move(t, c.level+1, "escalate")
	case c.score < c.cfg.RelaxBelow && c.level > LevelRelaxed && t-c.lastMove >= c.cfg.HoldFor:
		c.move(t, c.level-1, "relax")
	default:
		return d
	}
	d.Level = c.level
	d.Changed = true
	return d
}

// move performs one ladder transition and records it.
func (c *Controller) move(t time.Duration, to Level, reason string) {
	from := c.level
	c.level = to
	c.lastMove = t
	c.trace = append(c.trace, Move{T: t, From: from, To: to, Score: c.score, Reason: reason})
	c.ins.levelChange(t, from, to, c.score, reason)
	// An escalation consumes the evidence that drove it: the window
	// restarts so the new posture is judged on fresh signals, not
	// re-escalated by the same burst next sample.
	c.window = c.window[:0]
	c.score = 0
}

// Posture is the concrete protection configuration a level maps to —
// the knobs the existing ild/emr/guard/downlink hooks accept.
type Posture struct {
	Level Level
	// ILDThresholdA is the detector threshold profile for the level.
	// Every rung stays below fault.Environment SEL amplitudes (≥ 70 mA
	// in all presets) so a latchup is detectable at any posture; the
	// ladder trades false-positive power cycles against sensitivity.
	ILDThresholdA float64
	// BubbleEvery is the measurement-bubble cadence (ild.BubblePolicy
	// Pause): how often the flight software pays for a quiescent
	// detection window.
	BubbleEvery time.Duration
	// Redundancy is the payload execution rung: serial (single
	// checksum-guarded run) → DMR+checksum → TMR, reusing the guard
	// watchdog's ladder vocabulary.
	Redundancy guard.RedundancyMode
	// SerialChecksum marks the bottom rung: run the payload once under
	// the read-path checksum guard instead of any replication.
	SerialChecksum bool
	// HousekeepEvery is the downlink housekeeping cadence.
	HousekeepEvery time.Duration
	// Beacon requests priority-only downlink beaconing (the transmitter
	// protects the p0 backlog at the cost of bulk science).
	Beacon bool
}

// PostureFor maps a level onto its protection configuration. The table
// is the controller ladder MISSIONS.md documents; the campaign and the
// flight examples both read it, so the posture a level implies is
// defined in exactly one place.
func PostureFor(l Level) Posture {
	switch l {
	case LevelRelaxed:
		return Posture{Level: l, ILDThresholdA: 0.060, BubbleEvery: 6 * time.Minute,
			Redundancy: guard.RedundancySerial, SerialChecksum: true, HousekeepEvery: 40 * time.Second}
	case LevelElevated:
		return Posture{Level: l, ILDThresholdA: 0.045, BubbleEvery: 2 * time.Minute,
			Redundancy: guard.RedundancyTMR, HousekeepEvery: 10 * time.Second, Beacon: true}
	case LevelMax:
		return Posture{Level: l, ILDThresholdA: 0.040, BubbleEvery: time.Minute,
			Redundancy: guard.RedundancyTMR, HousekeepEvery: 5 * time.Second, Beacon: true}
	default: // LevelNominal — the paper's operating point
		return Posture{Level: l, ILDThresholdA: 0.055, BubbleEvery: 3 * time.Minute,
			Redundancy: guard.RedundancyDMRChecksum, HousekeepEvery: 20 * time.Second}
	}
}
