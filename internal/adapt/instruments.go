package adapt

import (
	"time"

	"radshield/internal/telemetry"
)

// Instruments bundles the controller's metric handles. Construct with
// NewInstruments and pass to New; a nil *Instruments disables
// instrumentation. TELEMETRY.md documents every name.
type Instruments struct {
	reg *telemetry.Registry

	// Level mirrors the controller's posture rung (0 relaxed …
	// 3 max).
	Level *telemetry.Gauge
	// Escalations / Relaxations count ladder moves in each direction
	// (a panic jump counts as one escalation).
	Escalations *telemetry.Counter
	Relaxations *telemetry.Counter
	// Signals counts every weighted signal the controller ingested.
	Signals *telemetry.Counter
}

// NewInstruments registers the adapt metric set on reg. A nil registry
// yields nil (instrumentation disabled).
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		reg:         reg,
		Level:       reg.Gauge("adapt_level", "rung"),
		Escalations: reg.Counter("adapt_escalations_total", "transitions"),
		Relaxations: reg.Counter("adapt_relaxations_total", "transitions"),
		Signals:     reg.Counter("adapt_signals_total", "signals"),
	}
}

// setLevel seeds the gauge at construction time.
func (ins *Instruments) setLevel(l Level) {
	if ins == nil {
		return
	}
	ins.Level.Set(float64(l))
}

// signal counts one ingested signal.
func (ins *Instruments) signal(Signal) {
	if ins == nil {
		return
	}
	ins.Signals.Inc()
}

// levelChange records one ladder move.
func (ins *Instruments) levelChange(t time.Duration, from, to Level, score float64, reason string) {
	if ins == nil {
		return
	}
	ins.Level.Set(float64(to))
	if to > from {
		ins.Escalations.Inc()
	} else {
		ins.Relaxations.Inc()
	}
	ins.reg.Emit(telemetry.Event{
		T:    t,
		Kind: telemetry.KindAdaptLevel,
		Fields: map[string]any{
			"from":   from.String(),
			"to":     to.String(),
			"score":  score,
			"reason": reason,
		},
	})
}
