package power

import (
	"testing"

	"radshield/internal/stats"
)

func fullLoadState() BoardState {
	cores := make([]CoreState, 4)
	for i := range cores {
		cores[i] = CoreState{FreqHz: 1.4e9, Util: 1, IPC: 2.2}
	}
	return BoardState{Cores: cores, DRAMBytesPerSec: 1.6e9, DiskSectorsPerSec: 0}
}

func TestIdleCurrentMatchesCalibration(t *testing.T) {
	m := NewModel(DefaultParams())
	idle := m.TrueCurrent(BoardState{Cores: make([]CoreState, 4)})
	if idle != DefaultParams().IdleCurrentA {
		t.Fatalf("idle current = %v, want %v", idle, DefaultParams().IdleCurrentA)
	}
}

func TestFullLoadWithinPaperEnvelope(t *testing.T) {
	// Paper: commodity ARM SoC ranges 1.7–4.5 A under load.
	m := NewModel(DefaultParams())
	full := m.TrueCurrent(fullLoadState())
	if full < 4.0 || full > 4.6 {
		t.Fatalf("full-load current = %.3f A, want within [4.0, 4.6]", full)
	}
}

func TestCurrentMonotoneInActivity(t *testing.T) {
	m := NewModel(DefaultParams())
	low := m.TrueCurrent(BoardState{Cores: []CoreState{{FreqHz: 1e9, Util: 0.2, IPC: 1}}})
	high := m.TrueCurrent(BoardState{Cores: []CoreState{{FreqHz: 1e9, Util: 0.9, IPC: 1}}})
	if high <= low {
		t.Fatalf("current not monotone in util: %v vs %v", low, high)
	}
	slow := m.TrueCurrent(BoardState{Cores: []CoreState{{FreqHz: 6e8, Util: 1, IPC: 1}}})
	fast := m.TrueCurrent(BoardState{Cores: []CoreState{{FreqHz: 1.4e9, Util: 1, IPC: 1}}})
	if fast <= slow {
		t.Fatalf("current not monotone in frequency: %v vs %v", slow, fast)
	}
}

func TestDiskAndDRAMContribute(t *testing.T) {
	m := NewModel(DefaultParams())
	base := m.TrueCurrent(BoardState{})
	dram := m.TrueCurrent(BoardState{DRAMBytesPerSec: 2e9})
	disk := m.TrueCurrent(BoardState{DiskSectorsPerSec: 4000})
	if dram-base <= 0 || disk-base <= 0 {
		t.Fatalf("DRAM/disk contributions missing: base=%v dram=%v disk=%v", base, dram, disk)
	}
}

func TestSELOffsetVisibleInSamples(t *testing.T) {
	s := NewSensor(NewModel(DefaultParams()), 1)
	state := BoardState{Cores: make([]CoreState, 4)}
	s.SetSELOffset(0.07)
	if got := s.SELOffset(); got != 0.07 {
		t.Fatalf("SELOffset = %v", got)
	}
	want := DefaultParams().IdleCurrentA + 0.07
	if got := s.TrueCurrent(state); got != want {
		t.Fatalf("TrueCurrent with SEL = %v, want %v", got, want)
	}
}

func TestQuiescentSigmaCalibration(t *testing.T) {
	// Raw quiescent samples should show σ in the ~0.1–0.2 A range (the
	// paper reports 0.14 A); the min-of-5 filtered stream should drop to
	// ≈0.02 A (paper value after rolling min).
	s := NewSensor(NewModel(DefaultParams()), 42)
	state := BoardState{Cores: make([]CoreState, 4)}
	const n = 20000
	raw := make([]float64, n)
	filtered := make([]float64, n)
	for i := 0; i < n; i++ {
		raw[i] = s.Sample(state)
		filtered[i] = s.SampleFiltered(state, 5)
	}
	rawSigma := stats.StdDev(raw)
	filtSigma := stats.StdDev(filtered)
	if rawSigma < 0.08 || rawSigma > 0.25 {
		t.Errorf("raw quiescent σ = %.4f A, want ≈0.14 A", rawSigma)
	}
	if filtSigma > 0.03 {
		t.Errorf("filtered quiescent σ = %.4f A, want ≤0.03 A", filtSigma)
	}
	if filtSigma >= rawSigma {
		t.Errorf("filter did not reduce σ: raw %.4f vs filtered %.4f", rawSigma, filtSigma)
	}
}

func TestFilteredSampleResolvesMicroSEL(t *testing.T) {
	// The acid test of ILD's premise: a +0.07 A SEL must be clearly
	// separable from quiescent baseline in the filtered stream.
	s := NewSensor(NewModel(DefaultParams()), 7)
	state := BoardState{Cores: make([]CoreState, 4)}
	const n = 3000
	baseline := make([]float64, n)
	for i := range baseline {
		baseline[i] = s.SampleFiltered(state, 5)
	}
	s.SetSELOffset(0.07)
	latched := make([]float64, n)
	for i := range latched {
		latched[i] = s.SampleFiltered(state, 5)
	}
	gap := stats.Mean(latched) - stats.Mean(baseline)
	if gap < 0.05 || gap > 0.09 {
		t.Fatalf("SEL-induced mean shift = %.4f A, want ≈0.07 A", gap)
	}
}

func TestSampleNeverNegative(t *testing.T) {
	p := DefaultParams()
	p.NoiseSigmaA = 5 // absurd noise to force negative excursions
	s := NewSensor(NewModel(p), 3)
	for i := 0; i < 1000; i++ {
		if v := s.Sample(BoardState{}); v < 0 {
			t.Fatalf("negative sample: %v", v)
		}
	}
}

func TestSampleFilteredDegenerateK(t *testing.T) {
	s := NewSensor(NewModel(DefaultParams()), 9)
	if v := s.SampleFiltered(BoardState{}, 0); v < 0 {
		t.Fatalf("k=0 sample invalid: %v", v)
	}
}

func TestTripThreshold(t *testing.T) {
	s := NewSensor(NewModel(DefaultParams()), 1)
	if s.Tripped(3.9) {
		t.Error("3.9 A tripped a 4 A supply")
	}
	if !s.Tripped(4.1) {
		t.Error("4.1 A did not trip a 4 A supply")
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a := NewSensor(NewModel(DefaultParams()), 123)
	b := NewSensor(NewModel(DefaultParams()), 123)
	state := fullLoadState()
	for i := 0; i < 100; i++ {
		if a.Sample(state) != b.Sample(state) {
			t.Fatal("same-seed sensors diverged")
		}
	}
}

func TestFullLoadClearsQuiescentByPaperMargin(t *testing.T) {
	// Paper: workload σ ≈ 0.96 A and the load/quiescent contrast spans
	// the 1.7–4.5 A envelope. At minimum, full load must exceed idle by
	// well over an ampere so static thresholds tuned near idle misfire.
	m := NewModel(DefaultParams())
	idle := m.TrueCurrent(BoardState{Cores: make([]CoreState, 4)})
	full := m.TrueCurrent(fullLoadState())
	if full-idle < 2 {
		t.Fatalf("load contrast = %.3f A, want > 2 A", full-idle)
	}
}
