package power

import "testing"

func TestModelParamsAccessor(t *testing.T) {
	p := DefaultParams()
	m := NewModel(p)
	if m.Params() != p {
		t.Fatal("Params accessor mismatch")
	}
}

func TestBaselineOffsetShiftsCurrent(t *testing.T) {
	s := NewSensor(NewModel(DefaultParams()), 1)
	base := s.TrueCurrent(BoardState{})
	s.SetBaselineOffset(0.03)
	if got := s.BaselineOffset(); got != 0.03 {
		t.Fatalf("BaselineOffset = %v", got)
	}
	if got := s.TrueCurrent(BoardState{}); got != base+0.03 {
		t.Fatalf("TrueCurrent with drift = %v, want %v", got, base+0.03)
	}
	// Drift and SEL offsets stack independently.
	s.SetSELOffset(0.07)
	if got := s.TrueCurrent(BoardState{}); got != base+0.10 {
		t.Fatalf("stacked offsets = %v, want %v", got, base+0.10)
	}
	s.SetBaselineOffset(-0.03)
	if got := s.TrueCurrent(BoardState{}); got != base+0.04 {
		t.Fatalf("negative drift = %v, want %v", got, base+0.04)
	}
}
