package power

import (
	"math"
	"math/rand"
	"time"
)

// Params are the coefficients of the board current model and sensor.
type Params struct {
	// IdleCurrentA is the board draw with all cores idle (regulators,
	// radios disabled but SoC powered).
	IdleCurrentA float64
	// CoreAPerGHz is amps one core adds per GHz at Util=1, IPC-independent
	// part (clock tree, fetch).
	CoreAPerGHz float64
	// IPCAPerGHz is additional amps per GHz per unit of IPC (execution
	// units switching).
	IPCAPerGHz float64
	// DRAMAPerGBps is amps the memory system adds per GB/s of traffic.
	DRAMAPerGBps float64
	// DiskAPerKSectors is amps the storage device adds per 1000 sectors/s.
	DiskAPerKSectors float64
	// NoiseSigmaA is the Gaussian measurement noise of the current sensor.
	NoiseSigmaA float64
	// SpikeProb is the probability that any raw sensor draw lands on a
	// microsecond-scale transient spike (power-state switches, interrupt
	// bursts).
	SpikeProb float64
	// SpikeMaxA is the maximum transient spike amplitude; spikes are
	// uniform in (0.05, SpikeMaxA].
	SpikeMaxA float64
	// TripThresholdA is the supply's hardware over-current trip (the
	// paper's Figure 2 draws it at 4 A); it catches classic ampere-scale
	// latchups but never micro-SELs.
	TripThresholdA float64
	// ThermalDriftA is the amplitude of the slow sinusoidal baseline
	// drift caused by the orbital thermal cycle (sun/eclipse): regulator
	// efficiency and leakage currents track board temperature. The drift
	// is invisible to performance counters, which is what defeats
	// black-box detectors trained on absolute current.
	ThermalDriftA float64
	// ThermalDriftPeriodSec is the drift period (a LEO orbit ≈ 90 min).
	ThermalDriftPeriodSec float64
}

// DefaultParams returns coefficients calibrated so a 4-core, 1.4 GHz
// board reproduces the paper's observed envelope (≈1.55 A quiescent,
// ≈4.3–4.5 A at full compute load, raw quiescent σ ≈ 0.14 A).
func DefaultParams() Params {
	return Params{
		IdleCurrentA:          1.55,
		CoreAPerGHz:           0.35,
		IPCAPerGHz:            0.06,
		DRAMAPerGBps:          0.05,
		DiskAPerKSectors:      0.05,
		NoiseSigmaA:           0.02,
		SpikeProb:             0.025,
		SpikeMaxA:             1.0,
		TripThresholdA:        4.0,
		ThermalDriftA:         0.012,
		ThermalDriftPeriodSec: 5400, // one LEO orbit
	}
}

// CoreState is the electrical view of one core.
type CoreState struct {
	FreqHz float64
	Util   float64
	IPC    float64
}

// BoardState is the electrical view of the whole board at an instant.
type BoardState struct {
	Cores             []CoreState
	DRAMBytesPerSec   float64
	DiskSectorsPerSec float64
}

// Model converts a BoardState into the board's true (noise-free) current.
type Model struct {
	p Params
}

// NewModel returns a Model with the given coefficients.
func NewModel(p Params) *Model { return &Model{p: p} }

// Params returns the model coefficients.
func (m *Model) Params() Params { return m.p }

// TrueCurrent returns the physical current draw in amps for the state.
func (m *Model) TrueCurrent(s BoardState) float64 {
	cur := m.p.IdleCurrentA
	for _, c := range s.Cores {
		ghz := c.FreqHz / 1e9
		cur += c.Util * ghz * (m.p.CoreAPerGHz + m.p.IPCAPerGHz*c.IPC)
	}
	cur += s.DRAMBytesPerSec / 1e9 * m.p.DRAMAPerGBps
	cur += s.DiskSectorsPerSec / 1e3 * m.p.DiskAPerKSectors
	return cur
}

// Sensor is the current-measurement device (INA3221-class). It adds the
// SEL offset injected by the fault layer, Gaussian noise, and transient
// spikes. A deterministic seed keeps experiments reproducible.
type Sensor struct {
	model      *Model
	rng        *rand.Rand
	seed       int64
	selOffset  float64
	baseOffset float64 // thermal-drift offset, updated by the machine

	// Sensor-fault state (see faults.go). now is the simulated instant,
	// advanced by the machine; lastHealthy freezes the stuck-at value;
	// analogRaw carries the most recent pre-fault raw reading for the
	// supply's independent analog trip comparator; frng feeds garbage
	// values without perturbing the nominal noise stream.
	faults      []SensorFault
	now         time.Duration
	lastHealthy float64
	haveHealthy bool
	analogRaw   float64
	frng        *rand.Rand
}

// SetBaselineOffset installs the current thermal-drift offset. The
// machine recomputes it from simulated time each step.
func (s *Sensor) SetBaselineOffset(amps float64) { s.baseOffset = amps }

// BaselineOffset returns the present drift offset.
func (s *Sensor) BaselineOffset() float64 { return s.baseOffset }

// NewSensor returns a sensor over the model with a deterministic RNG.
func NewSensor(model *Model, seed int64) *Sensor {
	return &Sensor{model: model, rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// SetSELOffset installs a persistent additional current draw, the
// signature of a (micro-)latchup. A power cycle clears it (see machine).
func (s *Sensor) SetSELOffset(amps float64) { s.selOffset = amps }

// SELOffset returns the currently injected latchup current.
func (s *Sensor) SELOffset() float64 { return s.selOffset }

// TrueCurrent returns the noise-free current including any SEL offset
// and the present thermal-drift offset.
func (s *Sensor) TrueCurrent(state BoardState) float64 {
	return s.TrueCurrentFrom(s.model.TrueCurrent(state))
}

// TrueCurrentFrom is TrueCurrent with the board-model current already
// evaluated. The machine's sampling loop computes the model term once per
// electrical state change (it only moves when a trace segment or DVFS
// point changes) instead of re-walking the core array on every draw —
// the measured per-sample hot spot the campaign scheduler work removed
// (see PERFORMANCE.md).
func (s *Sensor) TrueCurrentFrom(modelCur float64) float64 {
	return modelCur + s.selOffset + s.baseOffset
}

// Sample returns one raw sensor reading: true current + SEL offset +
// Gaussian noise, possibly landing on a transient spike, then passed
// through the active sensor-fault model (identity when healthy).
func (s *Sensor) Sample(state BoardState) float64 {
	return s.SampleFrom(s.model.TrueCurrent(state))
}

// SampleFrom is Sample with the board-model current precomputed.
func (s *Sensor) SampleFrom(modelCur float64) float64 {
	h := s.healthySampleFrom(modelCur)
	s.analogRaw = h
	return s.applyFault(h)
}

// healthySampleFrom draws one fault-free raw reading from a precomputed
// model current. The RNG consumption order (one normal draw, one uniform
// draw, plus one more uniform on a spike) is part of the repository's
// determinism contract: experiment goldens replay these exact streams.
func (s *Sensor) healthySampleFrom(modelCur float64) float64 {
	cur := s.TrueCurrentFrom(modelCur) + s.rng.NormFloat64()*s.model.p.NoiseSigmaA
	if s.rng.Float64() < s.model.p.SpikeProb {
		cur += 0.05 + s.rng.Float64()*(s.model.p.SpikeMaxA-0.05)
	}
	if cur < 0 {
		cur = 0
	}
	return cur
}

// AnalogRaw returns the healthy raw value behind the most recent Sample
// call. The power supply's own over-current comparator is an analog
// circuit wired to the shunt directly — a digital sensor fault (stuck
// register, dead I2C bus) does not blind it — so the machine's supply
// trip path reads this instead of the possibly-faulted sample.
func (s *Sensor) AnalogRaw() float64 { return s.analogRaw }

// SampleFiltered returns the minimum of k raw draws, modelling ILD's
// ±250 µs rolling-minimum filter: transient spikes are positive
// excursions, so the windowed minimum tracks the true baseline with far
// lower variance (paper: σ 0.14 A → 0.02 A during quiescence). The
// fault model transforms the filtered result: a stuck or dead ADC
// corrupts every draw in the window identically.
func (s *Sensor) SampleFiltered(state BoardState, k int) float64 {
	return s.SampleFilteredFrom(s.model.TrueCurrent(state), k)
}

// SampleFilteredFrom is SampleFiltered with the board-model current
// precomputed.
func (s *Sensor) SampleFilteredFrom(modelCur float64, k int) float64 {
	if k < 1 {
		k = 1
	}
	min := math.Inf(1)
	for i := 0; i < k; i++ {
		if v := s.healthySampleFrom(modelCur); v < min {
			min = v
		}
	}
	return s.applyFault(min)
}

// Tripped reports whether a reading exceeds the supply's hardware
// over-current threshold.
func (s *Sensor) Tripped(reading float64) bool {
	return reading > s.model.p.TripThresholdA
}
