package power

import (
	"math"
	"testing"
	"time"
)

func quietSensor(seed int64) *Sensor {
	p := DefaultParams()
	p.NoiseSigmaA = 0
	p.SpikeProb = 0
	return NewSensor(NewModel(p), seed)
}

func idleState() BoardState { return BoardState{} }

func TestScheduleFaultValidation(t *testing.T) {
	s := quietSensor(1)
	cases := []SensorFault{
		{Kind: FaultNone},
		{Kind: FaultKind(99)},
		{Kind: FaultDropout, Start: -time.Second},
		{Kind: FaultStuck, Duration: -time.Second},
		{Kind: FaultOffset, OffsetA: math.NaN()},
		{Kind: FaultOffset, OffsetA: math.Inf(1)},
	}
	for i, f := range cases {
		if err := s.ScheduleFault(f); err == nil {
			t.Errorf("case %d: ScheduleFault(%+v) accepted, want error", i, f)
		}
	}
	if len(s.Faults()) != 0 {
		t.Fatalf("rejected faults were recorded: %v", s.Faults())
	}
	if err := s.ScheduleFault(SensorFault{Kind: FaultDropout, Start: time.Second, Duration: time.Second}); err != nil {
		t.Fatalf("valid fault rejected: %v", err)
	}
}

func TestFaultDropoutReturnsNaN(t *testing.T) {
	s := quietSensor(2)
	if err := s.ScheduleFault(SensorFault{Kind: FaultDropout, Start: time.Second, Duration: time.Second}); err != nil {
		t.Fatal(err)
	}
	if v := s.Sample(idleState()); math.IsNaN(v) {
		t.Fatal("healthy sample is NaN before fault onset")
	}
	s.AdvanceTo(1500 * time.Millisecond)
	if v := s.Sample(idleState()); !math.IsNaN(v) {
		t.Fatalf("dropout sample = %v, want NaN", v)
	}
	s.AdvanceTo(2500 * time.Millisecond)
	if v := s.Sample(idleState()); math.IsNaN(v) {
		t.Fatal("sample still NaN after fault window closed")
	}
}

func TestFaultStuckFreezesLastHealthy(t *testing.T) {
	s := quietSensor(3)
	if err := s.ScheduleFault(SensorFault{Kind: FaultStuck, Start: time.Second}); err != nil {
		t.Fatal(err)
	}
	healthy := s.Sample(idleState())
	s.AdvanceTo(2 * time.Second)
	// The frozen value must track the last healthy reading even as the
	// true current changes underneath.
	busy := BoardState{Cores: []CoreState{{FreqHz: 1.4e9, Util: 1, IPC: 2}}}
	for i := 0; i < 3; i++ {
		if v := s.Sample(busy); v != healthy {
			t.Fatalf("stuck sample %d = %v, want frozen %v", i, v, healthy)
		}
	}
}

func TestFaultStuckBeforeAnyHealthyReadIsZero(t *testing.T) {
	s := quietSensor(4)
	if err := s.ScheduleFault(SensorFault{Kind: FaultStuck}); err != nil {
		t.Fatal(err)
	}
	if v := s.Sample(idleState()); v != 0 {
		t.Fatalf("stuck-from-boot sample = %v, want 0", v)
	}
}

func TestFaultOffsetAddsBias(t *testing.T) {
	s := quietSensor(5)
	base := s.Sample(idleState())
	if err := s.ScheduleFault(SensorFault{Kind: FaultOffset, OffsetA: 0.25}); err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(time.Millisecond)
	if v := s.Sample(idleState()); v != base+0.25 {
		t.Fatalf("offset sample = %v, want %v", v, base+0.25)
	}
}

func TestFaultGarbageIsDeterministicAndWild(t *testing.T) {
	draw := func(seed int64) []float64 {
		s := quietSensor(seed)
		if err := s.ScheduleFault(SensorFault{Kind: FaultGarbage}); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 20)
		for i := range out {
			out[i] = s.Sample(idleState())
		}
		return out
	}
	a, b := draw(6), draw(6)
	sawNaN, sawNeg, sawHuge := false, false, false
	for i := range a {
		if math.IsNaN(a[i]) != math.IsNaN(b[i]) || (!math.IsNaN(a[i]) && a[i] != b[i]) {
			t.Fatalf("garbage stream not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		switch {
		case math.IsNaN(a[i]):
			sawNaN = true
		case a[i] < 0:
			sawNeg = true
		case a[i] > 100:
			sawHuge = true
		}
	}
	if !sawNaN || !sawNeg || !sawHuge {
		t.Fatalf("garbage stream missing a mode: NaN=%v neg=%v huge=%v", sawNaN, sawNeg, sawHuge)
	}
}

// TestFaultScheduleDoesNotPerturbHealthyStream is the determinism
// contract the guard campaigns lean on: scheduling a fault must leave
// every reading outside the fault window bit-identical to an unfaulted
// run with the same seed.
func TestFaultScheduleDoesNotPerturbHealthyStream(t *testing.T) {
	run := func(schedule bool) []float64 {
		s := NewSensor(NewModel(DefaultParams()), 7) // noisy: exercises the RNG stream
		if schedule {
			if err := s.ScheduleFault(SensorFault{Kind: FaultGarbage, Start: 10 * time.Millisecond, Duration: 10 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
		}
		var out []float64
		for i := 0; i < 40; i++ {
			s.AdvanceTo(time.Duration(i) * time.Millisecond)
			out = append(out, s.Sample(idleState()))
		}
		return out
	}
	plain, faulted := run(false), run(true)
	for i := range plain {
		in := i >= 10 && i < 20
		if !in && plain[i] != faulted[i] {
			t.Fatalf("healthy sample %d perturbed by fault schedule: %v vs %v", i, plain[i], faulted[i])
		}
		if in && plain[i] == faulted[i] {
			t.Fatalf("sample %d inside garbage window unchanged: %v", i, plain[i])
		}
	}
}

func TestAnalogRawUnaffectedByFault(t *testing.T) {
	s := quietSensor(8)
	healthy := s.Sample(idleState())
	if err := s.ScheduleFault(SensorFault{Kind: FaultDropout}); err != nil {
		t.Fatal(err)
	}
	if v := s.Sample(idleState()); !math.IsNaN(v) {
		t.Fatalf("digital sample = %v, want NaN under dropout", v)
	}
	if got := s.AnalogRaw(); got != healthy {
		t.Fatalf("AnalogRaw = %v, want healthy %v", got, healthy)
	}
}

func TestSampleFilteredFaultedOnce(t *testing.T) {
	s := quietSensor(9)
	base := s.SampleFiltered(idleState(), 5)
	if err := s.ScheduleFault(SensorFault{Kind: FaultOffset, OffsetA: 0.1}); err != nil {
		t.Fatal(err)
	}
	// The bias applies to the filtered result exactly once, not per draw.
	if v := s.SampleFiltered(idleState(), 5); math.Abs(v-(base+0.1)) > 1e-12 {
		t.Fatalf("filtered offset sample = %v, want %v", v, base+0.1)
	}
}

func TestActiveFaultEarliestScheduledWins(t *testing.T) {
	s := quietSensor(10)
	if err := s.ScheduleFault(SensorFault{Kind: FaultStuck, Start: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleFault(SensorFault{Kind: FaultDropout, Start: 0}); err != nil {
		t.Fatal(err)
	}
	f, ok := s.ActiveFault()
	if !ok || f.Kind != FaultStuck {
		t.Fatalf("ActiveFault = %+v/%v, want earliest-scheduled stuck", f, ok)
	}
}
