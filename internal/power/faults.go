package power

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// This file holds the sensor-fault models: deterministic, schedulable
// failures of the current sensor itself. The paper assumes the INA3221
// always answers; "Where Linux Breaks Under Radiation" (PAPERS.md)
// shows proton-induced failures on COTS boards are dominated by hangs,
// stalls, and peripheral/driver faults — the measurement path is as
// vulnerable as the compute it watches. These models let campaigns ask
// what Radshield does when its own eyes fail (see internal/guard).

// FaultKind classifies a sensor fault model.
type FaultKind int

const (
	// FaultNone is the healthy sensor (no transformation).
	FaultNone FaultKind = iota
	// FaultDropout models a dead measurement path (I2C bus hang, driver
	// timeout): reads return no data, represented as NaN readings.
	FaultDropout
	// FaultStuck models a frozen ADC or wedged driver buffer: every read
	// returns the last value the sensor produced while healthy.
	FaultStuck
	// FaultOffset models a calibration upset (shunt reference drift): a
	// constant bias is added to every reading.
	FaultOffset
	// FaultGarbage models a corrupted register file: reads return
	// deterministic garbage — NaN, negative, or implausibly large values.
	FaultGarbage
)

// String names the fault kind for tables and telemetry fields.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDropout:
		return "dropout"
	case FaultStuck:
		return "stuck"
	case FaultOffset:
		return "offset"
	case FaultGarbage:
		return "garbage"
	default:
		return "unknown"
	}
}

// SensorFault is one scheduled fault window on the sensor, in simulated
// time. A zero Duration means the fault is permanent once it starts.
type SensorFault struct {
	Kind     FaultKind
	Start    time.Duration
	Duration time.Duration
	// OffsetA is the added bias for FaultOffset (ignored otherwise).
	OffsetA float64
}

// active reports whether the fault covers the instant now.
func (f SensorFault) active(now time.Duration) bool {
	if f.Kind == FaultNone || now < f.Start {
		return false
	}
	return f.Duration <= 0 || now < f.Start+f.Duration
}

// ScheduleFault adds a fault window to the sensor's schedule. When
// windows overlap, the earliest-scheduled fault wins. Faults are part of
// the experiment configuration, so invalid ones are rejected with an
// error rather than silently ignored.
func (s *Sensor) ScheduleFault(f SensorFault) error {
	switch f.Kind {
	case FaultDropout, FaultStuck, FaultOffset, FaultGarbage:
	default:
		return fmt.Errorf("power: ScheduleFault: invalid kind %d", int(f.Kind))
	}
	if f.Start < 0 {
		return fmt.Errorf("power: ScheduleFault: negative start %v", f.Start)
	}
	if f.Duration < 0 {
		return fmt.Errorf("power: ScheduleFault: negative duration %v", f.Duration)
	}
	if f.Kind == FaultOffset && (math.IsNaN(f.OffsetA) || math.IsInf(f.OffsetA, 0)) {
		return fmt.Errorf("power: ScheduleFault: non-finite offset %v", f.OffsetA)
	}
	s.faults = append(s.faults, f)
	return nil
}

// Faults returns the scheduled fault windows.
func (s *Sensor) Faults() []SensorFault { return append([]SensorFault(nil), s.faults...) }

// AdvanceTo installs the current simulated instant; the machine calls it
// every step so the fault schedule activates at the right time.
func (s *Sensor) AdvanceTo(now time.Duration) { s.now = now }

// ActiveFault returns the fault covering the present instant, if any.
func (s *Sensor) ActiveFault() (SensorFault, bool) {
	for _, f := range s.faults {
		if f.active(s.now) {
			return f, true
		}
	}
	return SensorFault{}, false
}

// faultSeedSalt decorrelates the garbage-value stream from the nominal
// noise stream: scheduling a fault must never perturb the healthy
// samples outside the fault window, so garbage values draw from their
// own generator.
const faultSeedSalt = 0x5eed

// applyFault transforms one healthy reading through the active fault
// model (identity when the sensor is healthy). The healthy value is
// always computed first — the nominal noise stream burns the same RNG
// draws whether or not a fault is scheduled, so the readings outside the
// fault window are bit-identical to an unfaulted run with the same seed.
func (s *Sensor) applyFault(healthy float64) float64 {
	f, ok := s.ActiveFault()
	if !ok {
		s.lastHealthy = healthy
		s.haveHealthy = true
		return healthy
	}
	switch f.Kind {
	case FaultDropout:
		return math.NaN()
	case FaultStuck:
		if s.haveHealthy {
			return s.lastHealthy
		}
		return 0
	case FaultOffset:
		return healthy + f.OffsetA
	case FaultGarbage:
		return s.garbageValue()
	default:
		return healthy
	}
}

// garbageValue draws one deterministic corrupted reading: a third NaN, a
// third negative, a third implausibly large.
func (s *Sensor) garbageValue() float64 {
	if s.frng == nil {
		s.frng = rand.New(rand.NewSource(s.seed + faultSeedSalt))
	}
	switch s.frng.Intn(3) {
	case 0:
		return math.NaN()
	case 1:
		return -s.frng.Float64() * 100
	default:
		return 100 + s.frng.Float64()*1e6
	}
}
