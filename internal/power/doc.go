// Package power models the electrical side of the simulated spacecraft
// computer: the board's true current draw as a function of compute
// activity, the INA3221-class sensor the flight power supply exposes
// (complete with measurement noise and microsecond transient spikes), and
// the supply's coarse over-current trip circuit.
//
// Calibration follows the paper's measurements on a commodity ARM SoC:
// quiescent draw ≈ 1.55 A with σ ≈ 0.14 A raw (σ ≈ 0.02 A after the
// rolling-minimum filter), full-load draw up to ≈ 4.5 A, SELs adding as
// little as +0.07 A — two orders of magnitude below workload variation,
// which is why static thresholds fail (paper Figure 2).
//
// Key types: Params calibrates the board (idle draw, per-core dynamic
// draw, DVFS exponent, sensor noise, trip threshold); Model maps a
// BoardState (per-core CoreState activity plus any latchup current) to
// true amps; Sensor wraps the model with seeded measurement noise,
// transient spikes, and the rolling-minimum filter the paper uses to
// tame both.
//
// Invariants: true current is a deterministic function of BoardState;
// sensor noise is deterministic given the seed; the rolling-minimum
// filter never reports below the true floor — it suppresses upward
// noise and transients, which is why a persistent +0.07 A latchup
// survives filtering while spikes do not; the trip circuit fires only
// above Params.TripThresholdA (≈4 A), far beyond any micro-SEL.
package power
