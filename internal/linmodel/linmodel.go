package linmodel

import (
	"errors"
	"fmt"
	"math"
)

// Model is a fitted linear regression.
type Model struct {
	Weights   []float64
	Intercept float64
}

// ErrSingular is returned when the normal-equation system cannot be
// solved (e.g. perfectly collinear features and no ridge penalty).
var ErrSingular = errors.New("linmodel: singular system; add ridge regularization or drop collinear features")

// Fit solves min_w Σ (y - Xw - b)² + ridge·‖w‖². X is row-major samples ×
// features; all rows must share a length. ridge ≥ 0 (the intercept is not
// penalized).
func Fit(X [][]float64, y []float64, ridge float64) (*Model, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("linmodel: %d samples vs %d targets", n, len(y))
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("linmodel: row %d has %d features, want %d", i, len(row), d)
		}
	}
	if ridge < 0 {
		return nil, fmt.Errorf("linmodel: negative ridge %v", ridge)
	}

	// Augment with an intercept column: solve (A'A + λI*) w = A'y where
	// A = [X | 1] and λ is zero on the intercept diagonal entry.
	k := d + 1
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	aty := make([]float64, k)
	for r := 0; r < n; r++ {
		for i := 0; i < k; i++ {
			xi := 1.0
			if i < d {
				xi = X[r][i]
			}
			aty[i] += xi * y[r]
			for j := i; j < k; j++ {
				xj := 1.0
				if j < d {
					xj = X[r][j]
				}
				ata[i][j] += xi * xj
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	for i := 0; i < d; i++ {
		ata[i][i] += ridge
	}

	w, err := solve(ata, aty)
	if err != nil {
		return nil, err
	}
	return &Model{Weights: w[:d], Intercept: w[d]}, nil
}

// Predict evaluates the model on one feature vector. It panics on a
// dimension mismatch: feature plumbing bugs should fail loudly in tests.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != len(m.Weights) {
		//radlint:allow nopanic feature-count mismatch is a plumbing bug; documented panic contract
		panic(fmt.Sprintf("linmodel: Predict with %d features, model has %d", len(x), len(m.Weights)))
	}
	sum := m.Intercept
	for i, w := range m.Weights {
		sum += w * x[i]
	}
	return sum
}

// PredictBatch evaluates the model over many rows.
func (m *Model) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = m.Predict(row)
	}
	return out
}

// RMSE returns the root-mean-square prediction error over a dataset.
func (m *Model) RMSE(X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	var sum float64
	for i, row := range X {
		e := m.Predict(row) - y[i]
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(X)))
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// (a, b), returning x with a·x = b.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies: callers may reuse their matrices.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for c := col + 1; c < n; c++ {
			sum -= m[col][c] * x[c]
		}
		x[col] = sum / m[col][col]
	}
	return x, nil
}
