// Package linmodel implements ordinary/ridge least-squares linear
// regression, solved by normal equations with Gaussian elimination.
//
// This is the model ILD settled on after rejecting heavier classifiers
// (paper §3.1: "we adopted a simple linear model which was both efficient
// and accurate"): current_draw ≈ w · features + b, trained on quiescent
// ground data before launch, evaluated every millisecond on orbit.
//
// Model is the single type: Fit solves for the weight vector and
// intercept (with optional ridge regularization to keep collinear
// counter features stable), Predict evaluates one feature vector in
// O(dim) — cheap enough for the paper's 1 ms sampling cadence.
//
// Invariants: Fit returns ErrSingular rather than producing garbage
// when the normal equations are rank-deficient and unregularized;
// fitting is deterministic (no stochastic optimizer); a fitted Model is
// immutable, so concurrent Predict calls are safe.
package linmodel
