package linmodel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitExactLine(t *testing.T) {
	// y = 3x + 2, noiseless.
	var X [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		X = append(X, []float64{float64(i)})
		y = append(y, 3*float64(i)+2)
	}
	m, err := Fit(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 1e-9 || math.Abs(m.Intercept-2) > 1e-9 {
		t.Fatalf("fit = %+v, want w=3 b=2", m)
	}
	if got := m.Predict([]float64{100}); math.Abs(got-302) > 1e-6 {
		t.Fatalf("Predict(100) = %v, want 302", got)
	}
}

func TestFitMultivariate(t *testing.T) {
	// y = 1.5a − 2b + 0.5c + 4 with small noise.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b, c := rng.Float64()*10, rng.Float64()*5, rng.Float64()*20
		X = append(X, []float64{a, b, c})
		y = append(y, 1.5*a-2*b+0.5*c+4+rng.NormFloat64()*0.01)
	}
	m, err := Fit(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -2, 0.5}
	for i, w := range want {
		if math.Abs(m.Weights[i]-w) > 0.01 {
			t.Errorf("weight[%d] = %v, want %v", i, m.Weights[i], w)
		}
	}
	if math.Abs(m.Intercept-4) > 0.05 {
		t.Errorf("intercept = %v, want 4", m.Intercept)
	}
	if rmse := m.RMSE(X, y); rmse > 0.05 {
		t.Errorf("RMSE = %v, want tiny", rmse)
	}
}

func TestCollinearWithoutRidgeFails(t *testing.T) {
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := Fit(X, y, 0); !errors.Is(err, ErrSingular) {
		t.Fatalf("collinear fit error = %v, want ErrSingular", err)
	}
	// Ridge makes it solvable.
	m, err := Fit(X, y, 1e-3)
	if err != nil {
		t.Fatalf("ridge fit failed: %v", err)
	}
	if got := m.Predict([]float64{5, 10}); math.Abs(got-5) > 0.05 {
		t.Fatalf("ridge Predict = %v, want ≈5", got)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, 0); err == nil {
		t.Error("empty fit succeeded")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Error("negative ridge accepted")
	}
}

func TestPredictDimensionMismatchPanics(t *testing.T) {
	m := &Model{Weights: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestPredictBatch(t *testing.T) {
	m := &Model{Weights: []float64{2}, Intercept: 1}
	got := m.PredictBatch([][]float64{{0}, {1}, {2}})
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PredictBatch = %v, want %v", got, want)
		}
	}
}

func TestRMSEEmpty(t *testing.T) {
	m := &Model{Weights: []float64{1}}
	if got := m.RMSE(nil, nil); got != 0 {
		t.Fatalf("RMSE(empty) = %v", got)
	}
}

// Property: fitting recovers a random linear function exactly (no noise,
// well-conditioned inputs).
func TestPropertyExactRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(6)
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.NormFloat64() * 5
		}
		b := rng.NormFloat64() * 3
		n := d*3 + 10
		X := make([][]float64, n)
		y := make([]float64, n)
		for r := 0; r < n; r++ {
			X[r] = make([]float64, d)
			y[r] = b
			for i := 0; i < d; i++ {
				X[r][i] = rng.NormFloat64() * 10
				y[r] += w[i] * X[r][i]
			}
		}
		m, err := Fit(X, y, 0)
		if err != nil {
			return false
		}
		for i := range w {
			if math.Abs(m.Weights[i]-w[i]) > 1e-6 {
				return false
			}
		}
		return math.Abs(m.Intercept-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPredict22Features(b *testing.B) {
	// The ILD model size: 4 cores × 5 features + 2 disk features.
	w := make([]float64, 22)
	x := make([]float64, 22)
	for i := range w {
		w[i] = float64(i) * 0.1
		x[i] = float64(i)
	}
	m := &Model{Weights: w, Intercept: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(x)
	}
}
