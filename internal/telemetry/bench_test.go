package telemetry

import "testing"

// The instruments sit on the EMR and ILD hot paths; these benchmarks
// bound the per-operation cost that the repository-level <2% overhead
// budget is built on.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry(0).Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry(0).Histogram("bench_seconds", "seconds", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%300) / 10)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry(0).Histogram("bench_par_seconds", "seconds", LatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i % 100))
			i++
		}
	})
}

func BenchmarkRingAppend(b *testing.B) {
	r := NewRing(1024)
	ev := Event{Kind: KindVoteMismatch}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Append(ev)
	}
}
