package telemetry

import "testing"

func TestRingSince(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 6; i++ { // seqs 0..5; 0 and 1 overwritten
		ring.Append(Event{Kind: Kind(rune('a' + i))})
	}
	if got := ring.Since(4); len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("Since(4) = %+v, want seqs 4,5", got)
	}
	if got := ring.Since(6); got != nil {
		t.Fatalf("Since past the end = %+v, want nil", got)
	}
	// A cursor pointing at overwritten history returns everything left;
	// the caller detects the loss because the first seq is above the
	// cursor.
	got := ring.Since(0)
	if len(got) != 4 || got[0].Seq != 2 {
		t.Fatalf("Since(0) after overwrite = %+v, want seqs 2..5", got)
	}
}

func TestRingSinceIncrementalDrain(t *testing.T) {
	ring := NewRing(8)
	cursor := uint64(0)
	var drained []uint64
	for round := 0; round < 3; round++ {
		ring.Append(Event{Kind: "x"})
		ring.Append(Event{Kind: "y"})
		for _, ev := range ring.Since(cursor) {
			drained = append(drained, ev.Seq)
			cursor = ev.Seq + 1
		}
	}
	if len(drained) != 6 {
		t.Fatalf("drained %d events, want 6", len(drained))
	}
	for i, seq := range drained {
		if seq != uint64(i) {
			t.Fatalf("drained[%d] = %d: incremental drain repeated or skipped", i, seq)
		}
	}
}

func TestEventsSinceNilRegistry(t *testing.T) {
	var reg *Registry
	if got := reg.EventsSince(0); got != nil {
		t.Fatalf("nil registry EventsSince = %v", got)
	}
	reg = NewRegistry(4)
	reg.Emit(Event{Kind: "a"})
	reg.Emit(Event{Kind: "b"})
	if got := reg.EventsSince(1); len(got) != 1 || got[0].Kind != "b" {
		t.Fatalf("EventsSince(1) = %+v", got)
	}
}
